package atomicflow

// The pipelined simulator's contract is bit-identical Reports: prep(t)
// depends only on prep(t-1) and time(t) only on prep(t)+time(t-1), so
// overlapping them must not move a single value. These tests pin that
// contract across the whole model zoo at GOMAXPROCS 1 and 4 (CI also
// runs them under -race), and pin the no-goroutine-leak property of
// mid-pipeline cancellation.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// parityWorkload builds one model's atom DAG and Greedy schedule at the
// short matrix profile (the parity property is mesh-size independent,
// and the small search keeps 14 models x 2 proc counts affordable under
// the race detector).
func parityWorkload(t *testing.T, model string, cfg sim.Config) (*atom.DAG, *schedule.Schedule) {
	t.Helper()
	g, err := LoadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	res := anneal.SA(g, cfg.Engine, cfg.Dataflow, anneal.Options{
		MaxIters: 60, Seed: 1, MaxTilesPerLay: 64,
	})
	d, err := atom.Build(g, 1, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: cfg.Mesh.Engines(), Mode: schedule.Greedy,
		EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

// TestSimPipelineParity runs every bundled model through sim.Run twice —
// Pipeline off (the serial reference) and on — and requires the full
// Report structs to be identical, at GOMAXPROCS 1 and 4.
func TestSimPipelineParity(t *testing.T) {
	names := ModelNames()
	sort.Strings(names)
	for _, model := range names {
		t.Run(model, func(t *testing.T) {
			hw := DefaultHardware()
			hw.Mesh = NewMesh(4, 4, hw.Mesh.LinkBytes)
			hw.Oracle = cost.Default()
			d, s := parityWorkload(t, model, hw)

			serial := hw
			serial.Pipeline = false
			want, err := sim.Run(d, s, serial)
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 4} {
				t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					piped := hw
					piped.Pipeline = true
					got, err := sim.Run(d, s, piped)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("pipelined Report diverged from serial:\n  got  %+v\n  want %+v", got, want)
					}
				})
			}
		})
	}
}

// TestSimPipelineCancelNoLeak cancels a pipelined run from its own Trace
// hook (so the prep goroutine is guaranteed to be in flight, several
// Rounds ahead) and checks that sim.Run surfaces context.Canceled and
// that the prep goroutine is reaped — Run must never leak it.
func TestSimPipelineCancelNoLeak(t *testing.T) {
	hw := DefaultHardware()
	hw.Oracle = cost.Default()
	d, s := parityWorkload(t, "resnet50", hw)
	if s.NumRounds() < 4 {
		t.Fatalf("want a multi-round schedule, got %d rounds", s.NumRounds())
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := hw
		cfg.Pipeline = true
		cfg.Ctx = ctx
		rounds := 0
		cfg.Trace = func(sim.RoundTrace) {
			rounds++
			if rounds == 2 {
				cancel()
			}
		}
		_, err := sim.Run(d, s, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}

	// The timing goroutine returns before the prep goroutine notices the
	// closed stop channel, so allow a short settle window.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak after cancelled pipelined runs: %d -> %d", before, n)
	}
}
