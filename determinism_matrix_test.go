package atomicflow

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
)

var updateDigests = flag.Bool("update-digests", false,
	"rewrite testdata/zoo_digests.json from the current pipeline")

var verifyDelta = flag.Bool("verify-delta", false,
	"run the matrix with incremental-vs-full search cross-checking (the verify-delta CI leg)")

var dashProgress = flag.Bool("dash-progress", false,
	"run the matrix with a dashboard progress hook attached; the hook is "+
		"observation-only, so every pinned digest must stay byte-identical")

// matrixProfile is one (search, hardware) size the matrix is pinned at.
// Both profiles run the complete anneal → schedule → map → simulate
// pipeline; "short" only shrinks the mesh and the search so `go test
// -short` stays fast, and "full" keeps the paper's 8x8 platform with a
// search budget that keeps the race-detector job affordable.
type matrixProfile struct {
	name     string
	saIters  int
	maxTiles int
	meshSide int // 0 = default 8x8
}

func (p matrixProfile) run(t *testing.T, model string) *Solution {
	t.Helper()
	g, err := LoadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, SAIters: p.saIters, MaxTilesPerLayer: p.maxTiles,
		VerifyDelta: *verifyDelta}
	if *dashProgress {
		// The hook the serving layer's dashboard installs, reduced to its
		// essence: it observes every sample batch (exactly what serve's
		// adapter does) and must not move a single digest.
		opt.Progress = func(samples []SearchSample) {
			for _, s := range samples {
				_ = s.CV()
			}
		}
	}
	if p.meshSide > 0 {
		hw := DefaultHardware()
		hw.Mesh = NewMesh(p.meshSide, p.meshSide, hw.Mesh.LinkBytes)
		opt.Hardware = &hw
	}
	sol, err := Orchestrate(g, opt)
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	return sol
}

// TestZooDeterminismMatrix runs every bundled model through the full
// pipeline at a fixed seed and pins the digest of the resulting
// solution. Any future change that perturbs atom generation, schedule,
// mapping, buffering or simulation fails this test loudly instead of
// silently shifting every figure the repo reproduces. Intentional model
// changes regenerate the table with:
//
//	go test -run TestZooDeterminismMatrix -update-digests
//	go test -run TestZooDeterminismMatrix -update-digests -short
//
// The pinned values are produced on amd64; other architectures may fuse
// floating-point operations differently, so they check run-to-run
// determinism instead of the golden bytes.
func TestZooDeterminismMatrix(t *testing.T) {
	profile := matrixProfile{name: "full", saIters: 200, maxTiles: 128}
	if testing.Short() {
		profile = matrixProfile{name: "short", saIters: 60, maxTiles: 64, meshSide: 4}
	}

	golden := loadDigests(t)
	if golden[profile.name] == nil {
		golden[profile.name] = map[string]string{}
	}
	table := golden[profile.name]

	names := ModelNames()
	sort.Strings(names)
	got := make(map[string]string, len(names))
	for _, model := range names {
		t.Run(model, func(t *testing.T) {
			digest := profile.run(t, model).Digest()
			got[model] = digest
			if *updateDigests {
				return
			}
			want, ok := table[model]
			if !ok {
				t.Fatalf("no pinned digest for %s/%s — run with -update-digests", profile.name, model)
			}
			if runtime.GOARCH != "amd64" {
				// Pinned on amd64; elsewhere assert the weaker property.
				if again := profile.run(t, model).Digest(); again != digest {
					t.Errorf("nondeterministic on %s: %s vs %s", runtime.GOARCH, digest, again)
				}
				t.Skipf("golden digests are pinned on amd64 (have %s)", runtime.GOARCH)
			}
			if digest != want {
				t.Errorf("solution digest drifted:\n  got  %s\n  want %s\n"+
					"If this change is intentional, regenerate with -update-digests.",
					digest, want)
			}
		})
	}

	if *updateDigests {
		golden[profile.name] = got
		saveDigests(t, golden)
		t.Logf("rewrote testdata/zoo_digests.json (%s profile, %d models)", profile.name, len(got))
	}
}

func loadDigests(t *testing.T) map[string]map[string]string {
	t.Helper()
	data, err := os.ReadFile("testdata/zoo_digests.json")
	if os.IsNotExist(err) {
		return map[string]map[string]string{}
	}
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func saveDigests(t *testing.T, m map[string]map[string]string) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/zoo_digests.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
