package atomicflow

import (
	"flag"
	"sort"
	"testing"
)

var surrogateFullZoo = flag.Bool("surrogate", false,
	"run the surrogate parity check over the complete zoo (the surrogate-parity CI leg); default is a representative subset")

// runSurrogate is matrixProfile.run with the two-tier oracle switched on.
func (p matrixProfile) runSurrogate(t *testing.T, model string) *Solution {
	t.Helper()
	g, err := LoadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, SAIters: p.saIters, MaxTilesPerLayer: p.maxTiles,
		Surrogate: true}
	if p.meshSide > 0 {
		hw := DefaultHardware()
		hw.Mesh = NewMesh(p.meshSide, p.meshSide, hw.Mesh.LinkBytes)
		opt.Hardware = &hw
	}
	sol, err := Orchestrate(g, opt)
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	return sol
}

// TestSurrogateParityZoo bounds the accuracy cost of the two-tier
// oracle: for every zoo model, the surrogate-filtered search's final
// simulated cycles must land within 2% of the exact search's at the same
// seed. (Exactly 2% is the acceptance bar; the filter changes which
// candidates exist, so bit-identity is not expected — that property is
// pinned for surrogate-OFF runs by TestZooDeterminismMatrix.) The
// default run covers a representative subset; CI passes -surrogate to
// sweep the complete zoo.
func TestSurrogateParityZoo(t *testing.T) {
	profile := matrixProfile{name: "full", saIters: 200, maxTiles: 128}
	if testing.Short() {
		profile = matrixProfile{name: "short", saIters: 60, maxTiles: 64, meshSide: 4}
	}
	models := []string{"inceptionv3", "mobilenetv2", "resnet50", "resnet152", "vgg19"}
	if *surrogateFullZoo {
		models = ModelNames()
		sort.Strings(models)
	}
	for _, model := range models {
		t.Run(model, func(t *testing.T) {
			exact := profile.run(t, model)
			filt := profile.runSurrogate(t, model)
			rel := (float64(filt.Report.Cycles) - float64(exact.Report.Cycles)) /
				float64(exact.Report.Cycles)
			t.Logf("cycles: exact %d surrogate %d (%+.3f%%); model %+v",
				exact.Report.Cycles, filt.Report.Cycles, 100*rel, filt.SurrogateStats)
			// One-sided: the refinement pass sometimes finds a strictly
			// better schedule than the exact search (denser lists near the
			// final unified cycle) — only a regression is a failure.
			if rel > 0.02 {
				t.Errorf("surrogate cycles %d vs exact %d: %.2f%% worse, want within 2%%",
					filt.Report.Cycles, exact.Report.Cycles, 100*rel)
			}
			if filt.SurrogateStats.Samples == 0 {
				t.Error("surrogate run reports no training samples")
			}
			if exact.SurrogateStats != (SurrogateStats{}) {
				t.Error("exact run carries surrogate stats")
			}
		})
	}
}
