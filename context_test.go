package atomicflow

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOrchestrateCancelled pins the facade's cancellation contract: a
// context cancelled before (or during) the search aborts the pipeline
// with an error wrapping context.Canceled, and a deadline in the past
// wraps context.DeadlineExceeded.
func TestOrchestrateCancelled(t *testing.T) {
	g, err := LoadModel("tinyconv")
	if err != nil {
		t.Fatal(err)
	}
	hw := smallHW()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Orchestrate(g, Options{Hardware: &hw, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := Orchestrate(g, Options{Hardware: &hw, Context: dctx}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestOrchestratePromptCancel starts a search on a large workload and
// cancels mid-flight: Orchestrate must return well before the ~multi-
// second uncancelled search would.
func TestOrchestratePromptCancel(t *testing.T) {
	g, err := LoadModel("nasnet")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Orchestrate(g, Options{Context: ctx})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Uncancelled, nasnet takes ~700ms+; prompt abort should be far
	// under that even on a loaded machine.
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestOrchestrateContextNoEffect guards determinism: supplying an
// uncancelled context must not perturb the solution.
func TestOrchestrateContextNoEffect(t *testing.T) {
	g, err := LoadModel("tinyresnet")
	if err != nil {
		t.Fatal(err)
	}
	hw := smallHW()
	plain, err := Orchestrate(g, Options{Hardware: &hw, SAIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	hw2 := smallHW()
	withCtx, err := Orchestrate(g, Options{Hardware: &hw2, SAIters: 80, Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest() != withCtx.Digest() {
		t.Errorf("context changed the solution: %s vs %s", plain.Digest(), withCtx.Digest())
	}
}
