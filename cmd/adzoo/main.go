// Command adzoo inspects the bundled DNN workload zoo: it prints Table
// I-style characterization rows, and can dump a model's layer list or its
// Graphviz DOT rendering.
//
// Usage:
//
//	adzoo                      # characterization of every bundled model
//	adzoo -model pnasnet       # per-layer dump
//	adzoo -model pnascell -dot # DOT graph on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	af "github.com/atomic-dataflow/atomicflow"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func main() {
	var (
		model    = flag.String("model", "", "dump one model's layers instead of the summary table")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT for -model")
		export   = flag.Bool("export", false, "emit the JSON exchange document for -model")
		jsonDump = flag.Bool("json", false, "emit the characterization table as JSON (machine-readable)")
	)
	flag.Parse()

	if *model != "" {
		g, err := af.LoadModel(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adzoo:", err)
			os.Exit(1)
		}
		if *export {
			if err := af.WriteModel(os.Stdout, g); err != nil {
				fmt.Fprintln(os.Stderr, "adzoo:", err)
				os.Exit(1)
			}
			return
		}
		if *dot {
			fmt.Print(g.DOT())
			return
		}
		fmt.Println(g.Summary())
		for _, l := range g.Layers {
			s := l.Shape
			fmt.Printf("  %4d %-16s %-8s in %3dx%3dx%4d out %3dx%3dx%4d k%dx%d s%d depth %d\n",
				l.ID, l.Name, l.Kind, s.Hi, s.Wi, s.Ci, s.Ho, s.Wo, s.Co, s.Kh, s.Kw, s.Stride, l.Depth)
		}
		return
	}

	if *jsonDump {
		type row struct {
			Model   string `json:"model"`
			Layers  int    `json:"layers"`
			Compute int    `json:"compute_layers"`
			Params  int64  `json:"params"`
			MACs    int64  `json:"macs"`
			Depth   int    `json:"depth"`
		}
		var rows []row
		for _, name := range models.Names() {
			g := models.MustBuild(name)
			rows = append(rows, row{
				Model: name, Layers: g.NumLayers(), Compute: len(g.ComputeLayers()),
				Params: g.TotalParams(), MACs: g.TotalMACs(), Depth: g.MaxDepth(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, "adzoo:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%-14s %7s %8s %9s %8s %6s\n", "model", "layers", "compute", "params", "GMACs", "depth")
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		fmt.Printf("%-14s %7d %8d %8.1fM %8.1f %6d\n",
			name, g.NumLayers(), len(g.ComputeLayers()),
			float64(g.TotalParams())/1e6, float64(g.TotalMACs())/1e9, g.MaxDepth())
	}
}
