// Command adserve runs the orchestration-as-a-service HTTP server: it
// accepts workload graphs (the JSON exchange format, or bundled zoo
// names) plus a hardware spec on POST /solve and returns the full
// atomic-dataflow solution — schedule shape, predicted cycles/energy and
// an optional execution trace. Identical concurrent requests are
// deduplicated, repeat requests are answered from an LRU solution cache,
// and a bounded admission queue sheds load with 429 + Retry-After.
// A live fleet dashboard — active solves with per-chain convergence
// sparklines, session history, and an SSE event stream — is embedded at
// /debug/dash.
//
// With -fleet-listen the server also acts as a solve-fleet coordinator:
// adworker processes dial in over TCP and each runs a shard of the
// annealing chain portfolio, with results bit-identical to the
// in-process search. With -store DIR finished solves persist across
// restarts (exact replay for repeated requests) and -warm-start seeds
// new searches from prior solutions of the same graph.
//
// Usage:
//
//	adserve -addr :8080 -fleet-listen :9090 -store /var/lib/adserve
//	adworker -coordinator localhost:9090 &
//	curl -s localhost:8080/solve -d '{"model":"resnet50","sa_iters":200}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	open http://localhost:8080/debug/dash
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	af "github.com/atomic-dataflow/atomicflow"
	"github.com/atomic-dataflow/atomicflow/internal/fleet"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/serve"
	"github.com/atomic-dataflow/atomicflow/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solve worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
		cache   = flag.Int("cache", 256, "solution cache entries (LRU)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request solve deadline")
		chains  = flag.Int("chains", 0, "default annealing chains for requests that omit the field (0 = 1)")
		verify  = flag.Bool("verify-delta", false, "cross-check every incremental SA move against a full recomputation on all requests (correctness harness; slower)")
		surr    = flag.Bool("surrogate", false, "default surrogate mode for requests that omit the field (participates in the cache key)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")

		fleetListen = flag.String("fleet-listen", "", "TCP address to accept adworker connections on (empty = no fleet; all solves run in-process)")
		storeDir    = flag.String("store", "", "directory for the persistent solution store (empty = no persistence)")
		warm        = flag.Bool("warm-start", false, "default warm-start mode for requests that omit the field (participates in the cache key; needs -store)")
		simPipe     = flag.Bool("sim-pipeline", true, "overlap round t+1 prep with round t timing in the simulator (bit-identical reports, so not part of the cache key; see DESIGN.md \u00a713)")
	)
	flag.Parse()

	reg := obs.New()
	baseHW := af.DefaultHardware()
	baseHW.Pipeline = *simPipe
	cfg := serve.Config{
		Hardware:         &baseHW,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		RequestTimeout:   *timeout,
		DefaultChains:    *chains,
		DefaultSurrogate: *surr,
		DefaultWarmStart: *warm,
		VerifyDelta:      *verify,
		Metrics:          reg,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
		fmt.Fprintf(os.Stderr, "adserve: store %s (%d records)\n", *storeDir, st.Len())
	}
	var co *fleet.Coordinator
	if *fleetListen != "" {
		ln, err := net.Listen("tcp", *fleetListen)
		if err != nil {
			fatal(err)
		}
		co = fleet.NewCoordinator(fleet.Options{Metrics: reg})
		go func() {
			if err := co.Serve(ln); err != nil {
				fmt.Fprintf(os.Stderr, "adserve: fleet listener: %v\n", err)
			}
		}()
		cfg.Fleet = co
		fmt.Fprintf(os.Stderr, "adserve: fleet coordinator on %s\n", *fleetListen)
	}
	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adserve: listening on %s (POST /solve, /healthz, /metrics, /debug/dash)\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adserve: %v: draining (budget %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain the solve pipeline first so accepted requests finish,
		// then close the listener and idle connections.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "adserve: drain incomplete: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "adserve: http shutdown: %v\n", err)
		}
		if co != nil {
			co.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adserve:", err)
	os.Exit(1)
}
