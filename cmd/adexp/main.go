// Command adexp regenerates the paper's evaluation tables and figures
// (Sec. V) on this repository's simulator.
//
// Usage:
//
//	adexp -exp table1                 # one experiment
//	adexp -exp fig8 -workloads resnet50,vgg19
//	adexp -exp all -fast              # everything, reduced workload set
//
// Experiment ids: fig2 fig5a fig5b fig8 fig9 fig10 fig11 fig12 fig13
// table1 table2 fpga all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/experiments"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/trace"
)

// fastWorkloads is the reduced set used with -fast: one representative of
// each structural class, keeping runtimes minutes instead of hours.
var fastWorkloads = []string{"vgg19", "resnet50", "inceptionv3", "efficientnet"}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig2..fig13, table1, table2, fpga, all)")
		workloads = flag.String("workloads", "", "comma-separated workload override")
		batch     = flag.Int("batch", 0, "batch-size override (0 = experiment default)")
		saIters   = flag.Int("sa-iters", 400, "SA iterations")
		seed      = flag.Int64("seed", 1, "search seed")
		chains    = flag.Int("chains", 1, "parallel annealing chains per search (deterministic for a fixed seed)")
		verifyDlt = flag.Bool("verify-delta", false, "cross-check every incremental SA move against a full recomputation (correctness harness; slower)")
		surr      = flag.Bool("surrogate", false, "filter candidate generation with the online-learned cost model (exact final cycles; search may differ slightly)")
		dp        = flag.Bool("dp", false, "use DP scheduling everywhere (slower; Fig 10 measures it explicitly)")
		fast      = flag.Bool("fast", false, "reduced workload set for quick runs")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		execTrace = flag.String("exectrace", "", "write a runtime/trace execution trace to this file (view with go tool trace)")
		metAddr   = flag.String("metrics-addr", "", "serve live /metrics, /metrics.json and /debug/pprof on this address (e.g. :8080)")
		metJSON   = flag.String("metrics-json", "", "write the final metrics snapshot as JSON to this file")
		simPipe   = flag.Bool("sim-pipeline", true, "overlap round t+1 prep with round t timing in the simulator (bit-identical reports; see DESIGN.md \u00a713)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "adexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adexp: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "adexp: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adexp: -exectrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "adexp: -exectrace: %v\n", err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}

	// One registry for the whole invocation: experiments accumulate into
	// shared counters, served live via -metrics-addr and snapshotted at
	// exit via -metrics-json.
	var reg *obs.Registry
	if *metAddr != "" || *metJSON != "" {
		reg = obs.New()
	}
	if *metAddr != "" {
		addr, _, err := obs.Serve(*metAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adexp: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "adexp: serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}
	if *metJSON != "" {
		defer func() {
			f, err := os.Create(*metJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adexp: -metrics-json: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := reg.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "adexp: -metrics-json: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	// One instrumented memoizing oracle for the whole invocation: later
	// experiments hit entries cached by earlier ones, and each experiment
	// reports its own evaluations/hits/misses delta below.
	orc := cost.Default()
	cfg := experiments.Config{
		Batch:       *batch,
		SAIters:     *saIters,
		Seed:        *seed,
		Chains:      *chains,
		VerifyDelta: *verifyDlt,
		Surrogate:   *surr,
		Mode:        schedule.Greedy,
		Out:         os.Stdout,
		Oracle:      orc,
		Metrics:     reg,
		SerialSim:   !*simPipe,
	}
	if *dp {
		cfg.Mode = schedule.DP
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	} else if *fast {
		cfg.Workloads = fastWorkloads
	}

	runners := map[string]func(experiments.Config) error{
		"fig2":   wrap(experiments.Fig2),
		"fig5a":  wrap(experiments.Fig5a),
		"fig5b":  func(c experiments.Config) error { _, err := experiments.Fig5b(c); return err },
		"fig8":   wrap(experiments.Fig8),
		"fig9":   wrap(experiments.Fig9),
		"fig10":  wrap(experiments.Fig10),
		"fig11":  wrap(experiments.Fig11),
		"fig12":  wrap(experiments.Fig12),
		"fig13":  wrap(experiments.Fig13),
		"table1": func(c experiments.Config) error { _, err := experiments.Table1(c); return err },
		"table2": func(c experiments.Config) error { _, err := experiments.Table2(c); return err },
		"fpga":   func(c experiments.Config) error { _, err := experiments.FPGA(c); return err },
		// Ablations beyond the paper's figures (see DESIGN.md).
		"topology":  wrap(experiments.Topologies),
		"mapping":   wrap(experiments.MappingAblation),
		"lookahead": wrap(experiments.LookaheadAblation),
		"flex":      wrap(experiments.FlexDataflow),
		"search":    wrap(experiments.SearchOverhead),
	}
	order := []string{"table1", "fig2", "fig5a", "fig5b", "fig8", "fig9",
		"fig10", "fig11", "table2", "fig12", "fig13", "fpga",
		"topology", "mapping", "lookahead", "flex", "search"}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "adexp: unknown experiment %q (have %s, all)\n",
				id, strings.Join(order, ", "))
			os.Exit(1)
		}
		start := time.Now()
		before := orc.Stats()
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "adexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		trace.WriteOracleStats(os.Stdout, id, orc.Stats().Sub(before))
		fmt.Printf("  [%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// wrap adapts a typed experiment runner to the common signature.
func wrap[T any](f func(experiments.Config) (T, error)) func(experiments.Config) error {
	return func(c experiments.Config) error {
		_, err := f(c)
		return err
	}
}
