// Command adworker runs one solve-fleet worker: it dials an adserve
// coordinator (started with -fleet-listen), runs the shard of annealing
// chains the coordinator assigns it, and exchanges best states at the
// portfolio's deterministic barriers. Workers are stateless between
// solves — kill one mid-solve and the coordinator degrades the
// portfolio to the survivors; restart it and it rejoins for the next
// solve. The process reconnects with backoff until interrupted.
//
// Usage:
//
//	adworker -coordinator localhost:9090
//	adworker -coordinator localhost:9090 -name rack3-slot7 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/atomic-dataflow/atomicflow/internal/fleet"
)

func main() {
	var (
		addr    = flag.String("coordinator", "localhost:9090", "coordinator fleet address (adserve -fleet-listen)")
		name    = flag.String("name", "", "worker name advertised in the handshake (default: coordinator-assigned)")
		verbose = flag.Bool("v", false, "log session lifecycle to stderr")
	)
	flag.Parse()

	opt := fleet.WorkerOptions{Name: *name}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "adworker: "+format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "adworker: dialing coordinator %s\n", *addr)
	if err := fleet.RunWorker(ctx, *addr, opt); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "adworker:", err)
		os.Exit(1)
	}
}
