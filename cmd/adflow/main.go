// Command adflow orchestrates one DNN workload on a configurable scalable
// accelerator using atomic dataflow, and optionally compares against the
// baseline strategies.
//
// Usage:
//
//	adflow -model resnet50 -batch 1 -engines 8 -pes 16 -buffer 131072 \
//	       -dataflow kc -mode dp -baselines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	var (
		model     = flag.String("model", "resnet50", "workload: one of "+strings.Join(af.ModelNames(), ", "))
		modelFile = flag.String("model-file", "", "load the workload from a JSON exchange document instead of the zoo")
		batch     = flag.Int("batch", 1, "inference batch size gathered into one atomic DAG")
		engines   = flag.Int("engines", 8, "engine mesh side (engines x engines grid)")
		pes       = flag.Int("pes", 16, "PE array side per engine")
		buffer    = flag.Int("buffer", 128<<10, "per-engine buffer bytes")
		freq      = flag.Float64("freq", 500, "engine clock in MHz")
		dataflow  = flag.String("dataflow", "kc", "engine dataflow: kc (NVDLA-style) or yx (ShiDianNao-style)")
		mode      = flag.String("mode", "greedy", "scheduler: dp or greedy")
		saIters   = flag.Int("sa-iters", 400, "simulated-annealing iterations for atom generation")
		seed      = flag.Int64("seed", 1, "search seed")
		chains    = flag.Int("chains", 1, "parallel annealing chains (deterministic for a fixed seed)")
		verifyDlt = flag.Bool("verify-delta", false, "cross-check every incremental SA move against a full recomputation (correctness harness; slower)")
		surr      = flag.Bool("surrogate", false, "filter candidate generation with the online-learned cost model (exact final cycles; search may differ slightly)")
		baselines = flag.Bool("baselines", false, "also run LS, CNN-P, IL-Pipe and Rammer")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON of the AD execution to this file")
		perfetto  = flag.String("perfetto", "", "write a full-span Perfetto trace (engine/NoC/DRAM lanes) to this file")
		metJSON   = flag.String("metrics-json", "", "write the run's metrics snapshot as JSON to this file")
		simPipe   = flag.Bool("sim-pipeline", true, "overlap round t+1 prep with round t timing in the simulator (bit-identical reports; see DESIGN.md \u00a713)")
	)
	flag.Parse()

	var g *af.Graph
	var err error
	if *modelFile != "" {
		f, ferr := os.Open(*modelFile)
		if ferr != nil {
			fatal(ferr)
		}
		g, err = af.ReadModel(f)
		f.Close()
	} else {
		g, err = af.LoadModel(*model)
	}
	if err != nil {
		fatal(err)
	}
	hw := af.DefaultHardware()
	hw.Pipeline = *simPipe
	hw.Mesh = af.NewMesh(*engines, *engines, hw.Mesh.LinkBytes)
	hw.Engine.PEx, hw.Engine.PEy = *pes, *pes
	hw.Engine.BufferBytes = *buffer
	hw.BufferBytes = int64(*buffer)
	hw.Engine.FreqMHz = *freq
	switch *dataflow {
	case "kc":
		hw.Dataflow = af.KCPartition
	case "yx":
		hw.Dataflow = af.YXPartition
	default:
		fatal(fmt.Errorf("unknown dataflow %q", *dataflow))
	}
	schedMode := af.ModeGreedy
	if *mode == "dp" {
		schedMode = af.ModeDP
	}

	fmt.Printf("workload:  %s\n", g.Summary())
	fmt.Printf("hardware:  %dx%d engines x %dx%d PEs, %d KB/engine, %s, %.0f MHz\n",
		*engines, *engines, *pes, *pes, *buffer>>10, hw.Dataflow, *freq)

	opts := af.Options{
		Batch: *batch, Hardware: &hw, Mode: schedMode,
		SAIters: *saIters, Seed: *seed, Chains: *chains, VerifyDelta: *verifyDlt,
		Surrogate: *surr,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.TraceWriter = f
		defer fmt.Printf("trace written to %s (open in chrome://tracing)\n", *traceFile)
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.PerfettoWriter = f
		defer fmt.Printf("full-span trace written to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
	if *metJSON != "" {
		opts.Metrics = af.NewMetrics()
	}
	sol, err := af.Orchestrate(g, opts)
	if err != nil {
		fatal(err)
	}
	printReport("atomic dataflow", sol.Report)
	fmt.Printf("  atoms %d, rounds %d, atom-cycle CV %.3f, search %v\n",
		sol.Atoms, sol.Rounds, sol.AtomCycleCV, sol.SearchTime.Round(1e6))
	if *surr {
		ss := sol.SurrogateStats
		fmt.Printf("  surrogate: %d samples, %d refits, %d predictions, %d exact evals skipped, R2 %.4f, MAE %.1f\n",
			ss.Samples, ss.Refits, ss.Predictions, ss.ExactEvalsSkipped, ss.R2, ss.MAE)
	}
	if *metJSON != "" {
		f, err := os.Create(*metJSON)
		if err != nil {
			fatal(err)
		}
		if err := opts.Metrics.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("metrics snapshot written to %s\n", *metJSON)
	}

	if *baselines {
		for _, b := range []struct {
			name string
			run  func(*af.Graph, int, af.HardwareConfig) (af.Report, error)
		}{
			{"LS", af.RunLS}, {"CNN-P", af.RunCNNP},
			{"IL-Pipe", af.RunILPipe}, {"Rammer", af.RunRammer},
		} {
			rep, err := b.run(g, *batch, hw)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", b.name, err))
			}
			printReport(b.name, rep)
			fmt.Printf("  AD speedup: %.2fx\n", rep.TimeMS/sol.Report.TimeMS)
		}
	}
}

func printReport(name string, r af.Report) {
	fmt.Printf("%-16s %10.3f ms  util %5.1f%%  (compute-only %5.1f%%)\n",
		name+":", r.TimeMS, 100*r.PEUtilization, 100*r.ComputeUtil)
	fmt.Printf("  cycles %d (compute %d, NoC-blocked %d, DRAM-blocked %d)\n",
		r.Cycles, r.ComputeCycles, r.NoCBlockedCycles, r.DRAMBlockedCycles)
	fmt.Printf("  DRAM %0.1f MB read / %0.1f MB written, NoC %0.1f MB-hops, reuse %.1f%%\n",
		float64(r.DRAMReadBytes)/1e6, float64(r.DRAMWriteBytes)/1e6,
		float64(r.NoCByteHops)/1e6, 100*r.OnChipReuseRatio)
	fmt.Printf("  energy %.2f mJ (MAC %.2f, SRAM %.2f, NoC %.2f, DRAM %.2f, static %.2f)\n",
		r.Energy.TotalMJ(), r.Energy.MAC/1e9, r.Energy.SRAM/1e9, r.Energy.NoC/1e9,
		r.Energy.DRAM/1e9, r.Energy.Static/1e9)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adflow:", err)
	os.Exit(1)
}
