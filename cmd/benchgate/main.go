// Command benchgate is the bench-regression gate: it parses `go test
// -bench` output, normalizes the gated benchmarks' ns/op against a
// checked-in baseline using a machine-speed calibration benchmark, and
// fails (exit 1) when any gated benchmark regressed beyond the
// threshold. It also writes the full comparison as a JSON artifact
// (BENCH_sim.json in CI) so every run leaves an inspectable record.
//
// Usage:
//
//	go test -run xxx -bench 'SimRun|PlaceRound|Calibration' . | tee bench.txt
//	benchgate -baseline testdata/bench_baseline.json -out BENCH_sim.json bench.txt
//	benchgate -baseline testdata/bench_baseline.json -update bench.txt   # re-pin
//
// Normalization: raw ns/op is not comparable across CI runner
// generations, so the baseline stores the recording machine's
// BenchmarkCalibration ns/op (a fixed pure-integer kernel). A gated
// benchmark's expected value on the current machine is
//
//	baseline_ns x current_calibration_ns / baseline_calibration_ns
//
// and the gate fails when measured ns/op exceeds expected x (1+threshold).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// calibration is the yardstick benchmark's canonical (suffix-stripped) name.
const calibration = "Calibration"

// gated lists the benchmarks the gate enforces; others found in the
// input are recorded in the artifact but never fail the build.
var gated = []string{"SimRun", "SimRunDeep", "PlaceRound"}

// baseline is the checked-in reference (testdata/bench_baseline.json).
type baseline struct {
	// CalibrationNS is BenchmarkCalibration ns/op on the machine that
	// recorded the baseline.
	CalibrationNS float64            `json:"calibration_ns"`
	Benchmarks    map[string]float64 `json:"benchmarks"` // name -> ns/op
}

// result is one benchmark's verdict in the JSON artifact.
type result struct {
	Name       string  `json:"name"`
	NSPerOp    float64 `json:"ns_per_op"`
	BaselineNS float64 `json:"baseline_ns,omitempty"`
	ExpectedNS float64 `json:"expected_ns,omitempty"` // baseline scaled by calibration
	Ratio      float64 `json:"ratio,omitempty"`       // measured / expected
	Gated      bool    `json:"gated"`
	Regressed  bool    `json:"regressed"`
}

// artifact is the BENCH_sim.json schema.
type artifact struct {
	CalibrationNS float64  `json:"calibration_ns"`
	ScaleFactor   float64  `json:"scale_factor"` // current/baseline calibration
	Threshold     float64  `json:"threshold"`
	Results       []result `json:"results"`
	Pass          bool     `json:"pass"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSimRun-4   28   84292486 ns/op   9000668 B/op   17463 allocs/op
//	BenchmarkSimRunPipelined/4-4   44   53053706 ns/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		basePath  = flag.String("baseline", "testdata/bench_baseline.json", "checked-in baseline JSON")
		outPath   = flag.String("out", "", "write the comparison artifact JSON here")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
		threshold = flag.Float64("threshold", 0.10, "relative ns/op regression that fails the gate")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	calib, ok := measured[calibration]
	if !ok {
		fatal(fmt.Errorf("no Benchmark%s in input — the gate cannot normalize for machine speed", calibration))
	}

	if *update {
		b := baseline{CalibrationNS: calib, Benchmarks: map[string]float64{}}
		for _, name := range gated {
			ns, ok := measured[name]
			if !ok {
				fatal(fmt.Errorf("gated benchmark %s missing from input", name))
			}
			b.Benchmarks[name] = ns
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline rewritten (%s, calibration %.0f ns/op)\n", *basePath, calib)
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}
	if base.CalibrationNS <= 0 {
		fatal(fmt.Errorf("%s: calibration_ns missing or non-positive", *basePath))
	}
	scale := calib / base.CalibrationNS

	art := artifact{CalibrationNS: calib, ScaleFactor: scale, Threshold: *threshold, Pass: true}
	isGated := map[string]bool{}
	for _, g := range gated {
		isGated[g] = true
	}
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := result{Name: name, NSPerOp: measured[name], Gated: isGated[name]}
		if bns, ok := base.Benchmarks[name]; ok {
			r.BaselineNS = bns
			r.ExpectedNS = bns * scale
			r.Ratio = r.NSPerOp / r.ExpectedNS
			r.Regressed = r.Gated && r.Ratio > 1+*threshold
		}
		art.Results = append(art.Results, r)
	}
	for _, name := range gated {
		ns, ok := measured[name]
		if !ok {
			fatal(fmt.Errorf("gated benchmark %s missing from input", name))
		}
		bns, ok := base.Benchmarks[name]
		if !ok {
			fatal(fmt.Errorf("gated benchmark %s missing from baseline %s — re-pin with -update", name, *basePath))
		}
		expected := bns * scale
		ratio := ns / expected
		verdict := "ok"
		if ratio > 1+*threshold {
			verdict = "REGRESSED"
			art.Pass = false
		}
		fmt.Printf("benchgate: %-12s %12.0f ns/op  expected %12.0f  ratio %.3f  %s\n",
			name, ns, expected, ratio, verdict)
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if !art.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: ns/op regression beyond %.0f%% — investigate or re-pin the baseline with -update\n", 100**threshold)
		os.Exit(1)
	}
}

// parseBench extracts name -> ns/op from `go test -bench` output. The
// -<GOMAXPROCS> suffix is stripped so names are machine-independent;
// sub-benchmark paths (SimRunPipelined/4) are kept as-is. Duplicate
// names (e.g. -count>1) keep the LAST measurement.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the trailing -N procs suffix from the last path element.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		out[name] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
