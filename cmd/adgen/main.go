// Command adgen lowers an atomic-dataflow solution to per-engine
// instruction streams — the compile-time configurations the paper's
// engine controllers execute (Sec. II-A) — and prints one engine's
// listing plus aggregate statistics.
//
// Usage:
//
//	adgen -model resnet50 -engines 4 -engine-id 0 | head -50
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/codegen"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

func main() {
	var (
		model    = flag.String("model", "tinyresnet", "workload name from the zoo")
		batch    = flag.Int("batch", 1, "batch size")
		engines  = flag.Int("engines", 4, "engine mesh side (engines x engines)")
		engineID = flag.Int("engine-id", 0, "engine whose stream to print (-1: stats only)")
		saIters  = flag.Int("sa-iters", 300, "SA iterations")
		metJSON  = flag.String("metrics-json", "", "write the SA search metrics as JSON to this file")
	)
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		fatal(err)
	}
	hw := sim.DefaultConfig()
	hw.Mesh = noc.NewMesh(*engines, *engines, hw.Mesh.LinkBytes)

	var reg *obs.Registry
	if *metJSON != "" {
		reg = obs.New()
	}
	res := anneal.SA(g, hw.Engine, hw.Dataflow, anneal.Options{MaxIters: *saIters, Metrics: reg})
	if *metJSON != "" {
		f, err := os.Create(*metJSON)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	d, err := atom.Build(g, *batch, res.Spec)
	if err != nil {
		fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: hw.Mesh.Engines(), Mode: schedule.Greedy,
		EngineCfg: hw.Engine, Dataflow: hw.Dataflow,
	})
	if err != nil {
		fatal(err)
	}
	p, err := codegen.Generate(d, s, hw.Mesh, hw.UsableBufferBytes())
	if err != nil {
		fatal(err)
	}
	if err := p.Verify(d); err != nil {
		fatal(fmt.Errorf("stream verification: %w", err))
	}

	st := p.Stats()
	fmt.Printf("; %s batch=%d on %dx%d engines: %d instructions, %d computes, "+
		"%d sends/%d recvs, %0.1f MB loaded, %0.1f MB stored, %d rounds\n",
		*model, *batch, *engines, *engines,
		st.Instructions, st.Computes, st.Sends, st.Recvs,
		float64(st.LoadBytes)/1e6, float64(st.StoreBytes)/1e6, p.Rounds)
	if *engineID >= 0 {
		if err := p.Dump(os.Stdout, *engineID); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adgen:", err)
	os.Exit(1)
}
