package atomicflow

import (
	"runtime"
	"testing"
)

// chainsProfile keeps the portfolio determinism tests fast: a small mesh
// and search still cross every pipeline stage, and the digest covers the
// complete solution (schedule, mapping, simulated report).
func chainsOrchestrate(t *testing.T, model string, chains int) string {
	t.Helper()
	g, err := LoadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHardware()
	hw.Mesh = NewMesh(4, 4, hw.Mesh.LinkBytes)
	sol, err := Orchestrate(g, Options{
		Seed: 1, SAIters: 80, MaxTilesPerLayer: 64, Chains: chains, Hardware: &hw,
	})
	if err != nil {
		t.Fatalf("%s chains=%d: %v", model, chains, err)
	}
	return sol.Digest()
}

// TestOrchestrateChainsDeterministic pins the end-to-end tentpole
// property: with Chains: 4 the full pipeline digest is identical whether
// the portfolio runs on one OS thread or actually interleaves — goroutine
// scheduling must never leak into the solution.
func TestOrchestrateChainsDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	serial := chainsOrchestrate(t, "tinyresnet", 4)
	runtime.GOMAXPROCS(4)
	parallel := chainsOrchestrate(t, "tinyresnet", 4)
	again := chainsOrchestrate(t, "tinyresnet", 4)
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Errorf("digest differs across GOMAXPROCS:\n  1: %s\n  4: %s", serial, parallel)
	}
	if parallel != again {
		t.Errorf("digest differs run-to-run at GOMAXPROCS 4:\n  %s\n  %s", parallel, again)
	}
}

// TestOrchestrateChainsOneIsBaseline: the Chains knob at 1 (or unset)
// must not perturb the classic sequential trajectory — the digests the
// determinism matrix pins are exactly the chains=1 digests.
func TestOrchestrateChainsOneIsBaseline(t *testing.T) {
	explicit := chainsOrchestrate(t, "tinyconv", 1)
	unset := chainsOrchestrate(t, "tinyconv", 0)
	if explicit != unset {
		t.Errorf("Chains:1 drifted from the default path:\n  1: %s\n  0: %s", explicit, unset)
	}
}

// TestOrchestrateChainsMatchesMatrix re-runs one model of the pinned
// determinism matrix with an explicit Chains: 1 and requires the golden
// digest: the portfolio plumbing is invisible until the knob is turned.
func TestOrchestrateChainsMatchesMatrix(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden digests are pinned on amd64 (have %s)", runtime.GOARCH)
	}
	profile := matrixProfile{name: "full", saIters: 200, maxTiles: 128}
	if testing.Short() {
		profile = matrixProfile{name: "short", saIters: 60, maxTiles: 64, meshSide: 4}
	}
	table := loadDigests(t)[profile.name]
	const model = "tinyconv"
	want, ok := table[model]
	if !ok {
		t.Skipf("no pinned digest for %s/%s", profile.name, model)
	}
	g, err := LoadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, SAIters: profile.saIters, MaxTilesPerLayer: profile.maxTiles, Chains: 1}
	if profile.meshSide > 0 {
		hw := DefaultHardware()
		hw.Mesh = NewMesh(profile.meshSide, profile.meshSide, hw.Mesh.LinkBytes)
		opt.Hardware = &hw
	}
	sol, err := Orchestrate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Digest(); got != want {
		t.Errorf("Chains:1 digest drifted from the pinned matrix:\n  got  %s\n  want %s", got, want)
	}
}
