package atomicflow

import (
	"strings"
	"testing"
)

// smallHW returns a 2x2-engine accelerator that keeps API tests fast.
func smallHW() HardwareConfig {
	hw := DefaultHardware()
	hw.Mesh = NewMesh(2, 2, hw.Mesh.LinkBytes)
	return hw
}

func TestLoadModelAndNames(t *testing.T) {
	names := ModelNames()
	if len(names) < 10 {
		t.Fatalf("only %d models", len(names))
	}
	for _, n := range PaperWorkloads() {
		g, err := LoadModel(n)
		if err != nil {
			t.Fatalf("LoadModel(%s): %v", n, err)
		}
		if g.NumLayers() == 0 {
			t.Errorf("%s empty", n)
		}
	}
	if _, err := LoadModel("not-a-model"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestOrchestrateDefaults(t *testing.T) {
	g, err := LoadModel("tinyresnet")
	if err != nil {
		t.Fatal(err)
	}
	hw := smallHW()
	sol, err := Orchestrate(g, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Cycles <= 0 || sol.Atoms <= 0 || sol.Rounds <= 0 {
		t.Errorf("degenerate solution: %+v", sol)
	}
	if sol.Report.MACs != g.TotalMACs() {
		t.Errorf("MACs = %d, want %d", sol.Report.MACs, g.TotalMACs())
	}
	if len(sol.SATrace) == 0 {
		t.Error("no SA trace")
	}
	if sol.SearchTime <= 0 {
		t.Error("no search time recorded")
	}
}

func TestOrchestrateNilGraph(t *testing.T) {
	if _, err := Orchestrate(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestOrchestrateInvalidHardware(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	hw := smallHW()
	hw.Engine.PEx = 0
	if _, err := Orchestrate(g, Options{Hardware: &hw}); err == nil {
		t.Error("invalid hardware accepted")
	}
}

func TestOrchestrateBatchAndModes(t *testing.T) {
	g, _ := LoadModel("tinybranch")
	hw := smallHW()
	greedy, err := Orchestrate(g, Options{Batch: 3, Hardware: &hw, Mode: ModeGreedy})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Orchestrate(g, Options{Batch: 3, Hardware: &hw, Mode: ModeDP})
	if err != nil {
		t.Fatal(err)
	}
	if float64(dp.Report.Cycles) > 1.05*float64(greedy.Report.Cycles) {
		t.Errorf("DP cycles %d much worse than greedy %d", dp.Report.Cycles, greedy.Report.Cycles)
	}
}

func TestBaselineWrappers(t *testing.T) {
	g, _ := LoadModel("tinyresnet")
	hw := smallHW()
	for name, run := range map[string]func(*Graph, int, HardwareConfig) (Report, error){
		"LS": RunLS, "CNNP": RunCNNP, "ILPipe": RunILPipe, "Rammer": RunRammer,
	} {
		rep, err := run(g, 0, hw) // batch 0 coerces to 1
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Cycles <= 0 {
			t.Errorf("%s: no cycles", name)
		}
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g := NewGraph("api")
	in := g.AddLayer("input", OpInput, Shape{Hi: 8, Wi: 8, Ci: 4, Ho: 8, Wo: 8, Co: 4})
	c := g.AddLayer("conv", OpConv, ConvShape(8, 8, 4, 8, 3, 1, 1), in)
	p := g.AddLayer("pool", OpPool, PoolShape(8, 8, 8, 2, 2, 0), c)
	g.AddLayer("fc", OpFC, FCShape(8, 10), p)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	hw := smallHW()
	sol, err := Orchestrate(g, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.Cycles <= 0 {
		t.Error("no cycles")
	}
	if !strings.Contains(g.Summary(), "api") {
		t.Errorf("Summary = %q", g.Summary())
	}
}

func TestSolutionReproducible(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	hw := smallHW()
	a, err := Orchestrate(g, Options{Hardware: &hw, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Orchestrate(g, Options{Hardware: &hw, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Cycles != b.Report.Cycles || a.Atoms != b.Atoms || a.Rounds != b.Rounds {
		t.Errorf("same seed diverged: %+v vs %+v", a.Report, b.Report)
	}
}

func TestUnionGraphsOrchestration(t *testing.T) {
	a, _ := LoadModel("tinyconv")
	b, _ := LoadModel("tinybranch")
	u, err := UnionGraphs("pair", a, b)
	if err != nil {
		t.Fatal(err)
	}
	hw := smallHW()
	sol, err := Orchestrate(u, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Report.MACs != a.TotalMACs()+b.TotalMACs() {
		t.Errorf("union MACs = %d, want %d", sol.Report.MACs, a.TotalMACs()+b.TotalMACs())
	}
	// Co-locating two tenants must not exceed serving them sequentially
	// by more than scheduling noise.
	sa, err := Orchestrate(a, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Orchestrate(b, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	seq := sa.Report.Cycles + sb.Report.Cycles
	if float64(sol.Report.Cycles) > 1.1*float64(seq) {
		t.Errorf("union cycles %d >> sequential %d", sol.Report.Cycles, seq)
	}
}

func TestModelRoundTripThroughAPI(t *testing.T) {
	g, _ := LoadModel("tinyresnet")
	var buf strings.Builder
	if err := WriteModel(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadModel(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.TotalMACs() != g.TotalMACs() {
		t.Error("round trip changed the model")
	}
}

func TestDataflowOption(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	kc := smallHW()
	kc.Dataflow = KCPartition
	yx := smallHW()
	yx.Dataflow = YXPartition
	a, err := Orchestrate(g, Options{Hardware: &kc})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Orchestrate(g, Options{Hardware: &yx})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Cycles == b.Report.Cycles {
		t.Error("dataflow option had no effect")
	}
}

func TestOrchestrateOracleStats(t *testing.T) {
	g, _ := LoadModel("resnet50")
	sol, err := Orchestrate(g, Options{SAIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.OracleStats
	if st.Evaluations == 0 || st.Hits+st.Misses != st.Evaluations {
		t.Fatalf("inconsistent oracle stats %+v", st)
	}
	// The SA search, the scheduler and the simulator price the same few
	// dozen distinct tasks thousands of times; the shared cache must
	// absorb well over half of that (acceptance: > 50% on ResNet-50).
	if hr := st.HitRate(); hr <= 0.5 {
		t.Errorf("end-to-end hit rate %.1f%%, want > 50%%", 100*hr)
	}

	// A caller-supplied oracle is used as-is and keeps its counts across
	// runs (the second run starts warm).
	orc := NewCostOracle()
	hw := DefaultHardware()
	hw.Oracle = orc
	first, err := Orchestrate(g, Options{SAIters: 200, Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Orchestrate(g, Options{SAIters: 200, Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	if second.OracleStats.Evaluations <= first.OracleStats.Evaluations {
		t.Errorf("shared oracle counts not cumulative: %d then %d",
			first.OracleStats.Evaluations, second.OracleStats.Evaluations)
	}
	if second.Report.Cycles != first.Report.Cycles {
		t.Errorf("warm cache changed the result: %d vs %d cycles",
			second.Report.Cycles, first.Report.Cycles)
	}
}
