package atomicflow

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Sec. V). Each benchmark regenerates its experiment
// through internal/experiments and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. The workload set per bench is a representative subset (one
// per structural class) so the full sweep completes in minutes; run
// `cmd/adexp` for the complete Table-I workload list.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/experiments"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/mapping"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// benchCfg is the shared experiment configuration for benches.
func benchCfg(workloads ...string) experiments.Config {
	return experiments.Config{
		Workloads: workloads,
		SAIters:   300,
		Mode:      schedule.Greedy,
	}
}

// BenchmarkFig2_NaiveLSUtilization regenerates Fig. 2 (naive LS layer-wise
// PE utilization; paper averages 13.5-26.9%).
func BenchmarkFig2_NaiveLSUtilization(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Average
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(100*avg, "%util-LS-avg")
}

// BenchmarkFig5a_AtomCycleDistribution regenerates Fig. 5(a).
func BenchmarkFig5a_AtomCycleDistribution(b *testing.B) {
	var cv float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5a(benchCfg("resnet50"))
		if err != nil {
			b.Fatal(err)
		}
		cv = rows[0].CV
	}
	b.ReportMetric(cv, "atom-cycle-CV")
}

// BenchmarkFig5b_SAvsGA regenerates Fig. 5(b): the SA and GA searches
// themselves (this also measures the search overhead the paper reports
// for its Xeon host).
func BenchmarkFig5b_SAvsGA(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5b(benchCfg("resnet50"))
		if err != nil {
			b.Fatal(err)
		}
		if res.SAFinal > 0 {
			ratio = res.GAFinal / res.SAFinal
		}
	}
	b.ReportMetric(ratio, "GA/SA-final-var")
}

// BenchmarkFig8_Latency regenerates Fig. 8 (batch-1 latency, both
// dataflows) on one cascade and one residual workload, and reports AD's
// speedup over LS (paper: 1.45-2.30x over CNN-P which equals LS here).
func BenchmarkFig8_Latency(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(benchCfg("resnet50", "vgg19"))
		if err != nil {
			b.Fatal(err)
		}
		var ad, ls float64
		for _, r := range rows {
			if r.Workload == "resnet50" && r.Dataflow == "KC-P" {
				switch r.Strategy {
				case "AD":
					ad = r.Report.TimeMS
				case "LS":
					ls = r.Report.TimeMS
				}
			}
		}
		speedup = ls / ad
	}
	b.ReportMetric(speedup, "AD/LS-speedup")
}

// BenchmarkFig9_Throughput regenerates Fig. 9 (batch-20 throughput) and
// reports AD's gain over CNN-P (paper: 1.12-1.38x on KC-P).
func BenchmarkFig9_Throughput(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 20
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ad, cp float64
		for _, r := range rows {
			if r.Workload == "resnet50" && r.Dataflow == "KC-P" {
				switch r.Strategy {
				case "AD":
					ad = r.Report.TimeMS
				case "CNN-P":
					cp = r.Report.TimeMS
				}
			}
		}
		gain = cp / ad
	}
	b.ReportMetric(gain, "AD/CNN-P-gain")
}

// BenchmarkFig10_Ablation regenerates Fig. 10 (per-stage improvements;
// paper: DP 1.17-1.42x, SA 1.06-1.21x, reuse 1.07-1.17x).
func BenchmarkFig10_Ablation(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 2
		rows, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = rows[0].TotalGain
	}
	b.ReportMetric(total, "total-stage-gain")
}

// BenchmarkFig11_Energy regenerates Fig. 11 (batch-20 energy) and reports
// LS/AD energy ratio (>1 means AD is more efficient).
func BenchmarkFig11_Energy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 8
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ad, ls float64
		for _, r := range rows {
			if r.Workload == "resnet50" && r.Dataflow == "KC-P" {
				switch r.Strategy {
				case "AD":
					ad = r.Report.Energy.TotalMJ()
				case "LS":
					ls = r.Report.Energy.TotalMJ()
				}
			}
		}
		ratio = ls / ad
	}
	b.ReportMetric(ratio, "LS/AD-energy")
}

// BenchmarkFig12_EngineSweep regenerates Fig. 12 (U-shaped curves over
// engine counts at fixed total PEs/buffer) and reports the sweet-spot
// grid side (paper: 4x4-8x8).
func BenchmarkFig12_EngineSweep(b *testing.B) {
	var sweet float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 1
		points, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g, _ := experiments.SweetSpot(points, "resnet50", 1)
		sweet = float64(g)
	}
	b.ReportMetric(sweet, "sweet-spot-grid")
}

// BenchmarkFig13_BufferSweep regenerates Fig. 13 (latency vs per-engine
// buffer) and reports the 32KB/512KB latency ratio (diminishing returns).
func BenchmarkFig13_BufferSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13(benchCfg("resnet50"))
		if err != nil {
			b.Fatal(err)
		}
		byKB := map[int]float64{}
		for _, p := range points {
			byKB[p.BufferKB] = p.TimeMS
		}
		ratio = byKB[32] / byKB[512]
	}
	b.ReportMetric(ratio, "32KB/512KB-latency")
}

// BenchmarkTable1_Characterization regenerates Table I.
func BenchmarkTable1_Characterization(b *testing.B) {
	var params float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		params = 0
		for _, r := range rows {
			params += r.ParamsMillions
		}
	}
	b.ReportMetric(params, "total-Mparams")
}

// BenchmarkTable2_Utilization regenerates Table II (PE utilization w/o
// memory delay, NoC overhead, reuse ratio) and reports AD's utilization
// (paper: 78.8-95.0%).
func BenchmarkTable2_Utilization(b *testing.B) {
	var adUtil float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 8
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		adUtil = rows[0].ComputeUtil["AD"]
	}
	b.ReportMetric(100*adUtil, "%util-AD")
}

// BenchmarkFPGA_Prototype regenerates the Sec. V-D prototype comparison
// and reports AD's fps gain over LS on ResNet-50 (paper: 1.43x).
func BenchmarkFPGA_Prototype(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Batch = 4
		rows, err := experiments.FPGA(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ad, ls float64
		for _, r := range rows {
			if r.Workload == "resnet50" {
				switch r.Strategy {
				case "AD":
					ad = r.FPS
				case "LS":
					ls = r.FPS
				}
			}
		}
		gain = ad / ls
	}
	b.ReportMetric(gain, "AD/LS-fps")
}

// BenchmarkAblationTopology compares AD on mesh, torus and H-tree
// interconnects (the families named in Sec. IV-C) and reports the
// torus/mesh byte-hop ratio.
func BenchmarkAblationTopology(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 2
		rows, err := experiments.Topologies(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mesh, torus int64
		for _, r := range rows {
			switch r.Topology {
			case "mesh":
				mesh = r.ByteHops
			case "torus":
				torus = r.ByteHops
			}
		}
		if mesh > 0 {
			ratio = float64(torus) / float64(mesh)
		}
	}
	b.ReportMetric(ratio, "torus/mesh-byte-hops")
}

// BenchmarkAblationMapping isolates the TransferCost mapping stage
// (optimized vs naive placement) and reports the DRAM traffic saved.
func BenchmarkAblationMapping(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("resnet50")
		cfg.Batch = 2
		rows, err := experiments.MappingAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var naive, opt int64
		for _, r := range rows {
			if r.Optimized {
				opt = r.DRAMBytes
			} else {
				naive = r.DRAMBytes
			}
		}
		if naive > 0 {
			saved = 1 - float64(opt)/float64(naive)
		}
	}
	b.ReportMetric(100*saved, "%DRAM-saved")
}

// BenchmarkAblationLookahead sweeps the DP recursion depth of
// Algorithm 2 and reports the depth-3 over depth-1 makespan improvement.
func BenchmarkAblationLookahead(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("pnascell")
		cfg.Batch = 4
		rows, err := experiments.LookaheadAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(rows[0].MakespanLB) / float64(rows[2].MakespanLB)
	}
	b.ReportMetric(gain, "depth3/depth1-gain")
}

// BenchmarkDiscussionFlexArray compares AD on the planar and
// 3D-flexible arrays (paper Sec. VI-A) on the depthwise-heavy workload.
func BenchmarkDiscussionFlexArray(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FlexDataflow(benchCfg("efficientnet"))
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].TimeMS / rows[1].TimeMS // planar / flex
	}
	b.ReportMetric(ratio, "planar/flex-time")
}

// modelSchedule builds a model's atom DAG and Greedy schedule used by
// the hot-path benchmarks, outside the timed region.
func modelSchedule(b *testing.B, model string, cfg sim.Config) (*atom.DAG, *schedule.Schedule) {
	b.Helper()
	g, err := LoadModel(model)
	if err != nil {
		b.Fatal(err)
	}
	res := anneal.SA(g, cfg.Engine, cfg.Dataflow, anneal.Options{MaxIters: 300, Seed: 1})
	d, err := atom.Build(g, 1, res.Spec)
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: cfg.Mesh.Engines(), Mode: schedule.Greedy,
		EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d, s
}

// BenchmarkSimRun measures one end-to-end sim.Run of ResNet-50 on the
// paper's 8x8 system — the inner loop of every figure and sweep. The
// shared oracle keeps atom pricing out of the measurement so the NoC,
// mapping and buffer hot paths dominate. Allocations per op are the
// regression guard for the zero-allocation flow-simulation arena.
func BenchmarkSimRun(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Oracle = cost.Default()
	d, s := modelSchedule(b, "resnet50", cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(d, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlaceSink keeps the compiler from eliding placements.
var benchPlaceSink mapping.Result

// BenchmarkPlaceRound measures one PlaceRoundWeighted call on the fullest
// ResNet-50 Round (engines occupied by the previous Round's outputs), the
// permutation-search hot path of the mapping stage.
func BenchmarkPlaceRound(b *testing.B) {
	cfg := sim.DefaultConfig()
	d, s := modelSchedule(b, "resnet50", cfg)
	mesh := noc.NewMesh(8, 8, 32)
	mapper := mapping.New(mesh, d)
	// The fullest Round (preferring a non-first one so locate is realistic).
	best := 1
	for r := 1; r < s.NumRounds(); r++ {
		if len(s.Rounds[r].Atoms) > len(s.Rounds[best].Atoms) {
			best = r
		}
	}
	prev := mapper.PlaceRound(s.Rounds[best-1].Atoms, func(int) int { return -1 })
	locate := prev.Engine
	round := s.Rounds[best].Atoms
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPlaceSink = mapper.PlaceRoundWeighted(round, locate, nil)
		mapper.Recycle(&benchPlaceSink) // steady-state: the simulator recycles every Round
	}
	b.ReportMetric(float64(len(round)), "atoms/round")
}

// benchSink keeps the compiler from eliding oracle evaluations.
var benchSink engine.Cost

// BenchmarkCostOracle compares pricing the ResNet-50 atom set through the
// raw engine model against the memoized oracle. The atom set is what the
// simulator evaluates every run: thousands of atoms drawn from a few dozen
// distinct tasks, which is exactly the redundancy the cache exploits. The
// memo variant reports the first-pass hit rate as a custom metric
// (acceptance: well above 50% on ResNet-50).
func BenchmarkCostOracle(b *testing.B) {
	g, err := LoadModel("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	hw := DefaultHardware()
	res := anneal.SA(g, hw.Engine, hw.Dataflow, anneal.Options{MaxIters: 300, Seed: 1})
	d, err := atom.Build(g, 1, res.Spec)
	if err != nil {
		b.Fatal(err)
	}
	var tasks []engine.Task
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput {
			tasks = append(tasks, a.Task)
		}
	}

	b.Run("direct", func(b *testing.B) {
		orc := cost.Direct{}
		for i := 0; i < b.N; i++ {
			for _, t := range tasks {
				benchSink = orc.Evaluate(hw.Engine, hw.Dataflow, t)
			}
		}
		b.ReportMetric(float64(len(tasks)), "atoms/op")
	})
	b.Run("memo", func(b *testing.B) {
		// A fresh cache for the hit-rate metric; the timed loop then
		// reflects the steady state (everything cached after pass one).
		fresh := cost.NewMemo(cost.Direct{})
		for _, t := range tasks {
			benchSink = fresh.Evaluate(hw.Engine, hw.Dataflow, t)
		}
		firstPass := fresh.Stats()

		orc := cost.NewMemo(cost.Direct{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range tasks {
				benchSink = orc.Evaluate(hw.Engine, hw.Dataflow, t)
			}
		}
		b.ReportMetric(100*firstPass.HitRate(), "%hit-rate-first-pass")
		b.ReportMetric(float64(len(tasks)), "atoms/op")
	})
}

// BenchmarkSearchOverhead_ResNet50 measures the compile-time search cost
// of the full AD pipeline (paper: 66.5 s for ResNet-50 on a Xeon E5-2620;
// this implementation is orders of magnitude faster because the Cycle()
// oracle is a closed-form model rather than an external tool).
func BenchmarkSearchOverhead_ResNet50(b *testing.B) {
	g, err := LoadModel("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Orchestrate(g, Options{Batch: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchOverhead_InceptionV3 is the paper's 406.9 s point.
func BenchmarkSearchOverhead_InceptionV3(b *testing.B) {
	g, err := LoadModel("inceptionv3")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Orchestrate(g, Options{Batch: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealChains measures the SA search at portfolio widths 1, 2,
// 4 and 8 on a mid-size workload. The iteration budget is fixed, so the
// portfolio splits the same Metropolis work across chains: on a K-core
// runner the K-chain point should approach a K-fold wall-clock reduction
// over /1 while final-cv (the solution quality) stays comparable. Each
// iteration prices atoms through a fresh memo so every width pays the
// same cold-oracle cost.
func BenchmarkAnnealChains(b *testing.B) {
	g, err := LoadModel("inceptionv3")
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Default()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(k), func(b *testing.B) {
			var cv float64
			for i := 0; i < b.N; i++ {
				res := anneal.SA(g, cfg, engine.KCPartition, anneal.Options{
					MaxIters: 4000, Seed: 1, Chains: k,
					Oracle: cost.NewMemo(cost.Direct{}),
				})
				cv = res.FinalCV
			}
			b.ReportMetric(cv, "final-cv")
		})
	}
}

// BenchmarkAnnealDeep measures the SA search alone on the synthetic
// 1000+-compute-layer workload — the stress case for O(Δ) incremental
// move evaluation. iters/sec is the headline metric: with full
// per-iteration recomputation it decays linearly with graph depth; with
// delta evaluation a move costs only the layers whose candidate pick
// actually changes.
func BenchmarkAnnealDeep(b *testing.B) {
	g, err := LoadModel("deepchain1k")
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Default()
	orc := cost.NewMemo(cost.Direct{})
	// Warm the oracle so candidate pricing is out of the measurement.
	anneal.SA(g, cfg, engine.KCPartition, anneal.Options{MaxIters: 1, Seed: 1, Oracle: orc})
	var iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := anneal.SA(g, cfg, engine.KCPartition, anneal.Options{
			MaxIters: 2000, Seed: 1, Oracle: orc,
		})
		iters = res.Iters
	}
	b.ReportMetric(float64(iters)*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
}

// BenchmarkOrchestrateScaling exercises the pipeline end to end on the
// deepest workload (ResNet-1001) to demonstrate scalability of the
// greedy scheduling path.
func BenchmarkOrchestrateScaling(b *testing.B) {
	g, err := LoadModel("resnet152")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Orchestrate(g, Options{Batch: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunDeep measures sim.Run on the synthetic 1000-layer
// chain: ~1 atom per Round, thousands of Rounds. This is the pipeline's
// worst case (no intra-Round work to overlap, maximal per-Round fixed
// cost), so it guards the "not slower at GOMAXPROCS=1" half of the
// pipelining contract the same way BenchmarkSimRun guards the speedup.
func BenchmarkSimRunDeep(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Oracle = cost.Default()
	d, s := modelSchedule(b, "deepchain1k", cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(d, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.NumRounds()), "rounds")
}

// BenchmarkSimRunPipelined runs the ResNet-50 simulation with the
// two-stage pipeline pinned at GOMAXPROCS 1 and 4. The /1 point shows
// the pipeline's scheduling overhead when prep and timing must share a
// core; the /4 point is where prep(t+1) genuinely overlaps time(t).
func BenchmarkSimRunPipelined(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Oracle = cost.Default()
	d, s := modelSchedule(b, "resnet50", cfg)
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprint(procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(d, s, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCalibSink keeps the calibration kernel from being elided.
var benchCalibSink uint64

// BenchmarkCalibration is the machine-speed yardstick of the bench
// regression gate (cmd/benchgate): a fixed pure-integer xorshift kernel
// with no allocations, no memory traffic and no dependence on this
// repository's code. The gate scales every gated benchmark's baseline
// ns/op by the calibration ratio between the recording machine and the
// current one, so the >10% regression threshold tracks real code
// regressions instead of runner hardware differences.
func BenchmarkCalibration(b *testing.B) {
	acc := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1<<14; j++ {
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
		}
	}
	benchCalibSink = acc
}
