// Package codegen lowers an orchestrated solution (atomic DAG + Round
// schedule + placement + buffering decisions) into per-engine command
// streams — the compile-time "instructions (or configurations) loaded
// before execution" of the paper's engine controller (Sec. II-A).
//
// The instruction set is deliberately small and matches what the
// simulator models:
//
//	LOAD_W   dst=self            fetch a weight slice from DRAM
//	LOAD_IN  dst=self            fetch an input region from DRAM
//	RECV     src=engine          receive a tensor region over the NoC
//	SEND     dst=engine          forward a resident tensor region
//	COMPUTE  atom                run one atom on the PE array/vector unit
//	STORE    —                   keep the produced tile in the local buffer
//	WRITEBK  —                   write a tile back to DRAM (eviction/final)
//	SYNC     round               barrier at the end of each Round
//
// Streams are verified for global consistency (every RECV pairs with a
// SEND in the same Round, COMPUTE appears exactly once per atom, SYNC
// indices agree across engines), which doubles as an end-to-end check of
// the scheduler/mapper/buffer pipeline.
package codegen

import (
	"fmt"
	"io"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/mapping"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// Op is an engine-controller opcode.
type Op int

const (
	OpLoadW Op = iota
	OpLoadIn
	OpRecv
	OpSend
	OpCompute
	OpStore
	OpWriteback
	OpSync
)

var opNames = [...]string{"LOAD_W", "LOAD_IN", "RECV", "SEND", "COMPUTE", "STORE", "WRITEBK", "SYNC"}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one engine-controller instruction.
type Instr struct {
	Op    Op
	Atom  int   // COMPUTE/STORE/WRITEBK: atom whose tile is involved
	Peer  int   // RECV: source engine; SEND: destination engine
	Bytes int64 // tensor bytes moved (0 for COMPUTE/SYNC)
	Round int   // owning Round (SYNC: the Round being closed)
}

// String renders the instruction in listing form.
func (i Instr) String() string {
	switch i.Op {
	case OpCompute:
		return fmt.Sprintf("%-8s atom=%d", i.Op, i.Atom)
	case OpRecv:
		return fmt.Sprintf("%-8s src=E%d bytes=%d", i.Op, i.Peer, i.Bytes)
	case OpSend:
		return fmt.Sprintf("%-8s dst=E%d bytes=%d", i.Op, i.Peer, i.Bytes)
	case OpSync:
		return fmt.Sprintf("%-8s round=%d", i.Op, i.Round)
	default:
		return fmt.Sprintf("%-8s atom=%d bytes=%d", i.Op, i.Atom, i.Bytes)
	}
}

// Program is the lowered solution: one instruction stream per engine.
type Program struct {
	Streams [][]Instr // engine -> instructions
	Rounds  int
	Atoms   int
}

// Generate replays the schedule through the mapper and buffer manager and
// emits per-engine streams.
func Generate(d *atom.DAG, s *schedule.Schedule, mesh *noc.Mesh, bufferBytes int64) (*Program, error) {
	n := mesh.Engines()
	man, err := buffer.New(d, s, n, bufferBytes)
	if err != nil {
		return nil, err
	}
	mapper := mapping.New(mesh, d)
	p := &Program{Streams: make([][]Instr, n), Rounds: s.NumRounds()}

	for t, round := range s.Rounds {
		placed := mapper.PlaceRoundWeighted(round.Atoms, man.Locate, man.HasWeights)

		// Emit receives/sends from the Round's IO.
		io, err := man.ExecuteRound(t, placed)
		if err != nil {
			return nil, err
		}
		for _, f := range io.Flows {
			p.Streams[f.Src] = append(p.Streams[f.Src],
				Instr{Op: OpSend, Peer: f.Dst, Bytes: f.Bytes, Round: t})
			p.Streams[f.Dst] = append(p.Streams[f.Dst],
				Instr{Op: OpRecv, Peer: f.Src, Bytes: f.Bytes, Round: t})
		}
		for e := 0; e < n; e++ {
			if b := io.DRAMReadBytes[e]; b > 0 {
				p.Streams[e] = append(p.Streams[e],
					Instr{Op: OpLoadIn, Bytes: b, Round: t})
			}
		}
		for _, id := range round.Atoms {
			e := placed.Engine(id)
			p.Streams[e] = append(p.Streams[e],
				Instr{Op: OpCompute, Atom: id, Round: t},
				Instr{Op: OpStore, Atom: id, Bytes: d.Atoms[id].OutputBytes(), Round: t})
			p.Atoms++
		}
		for e := 0; e < n; e++ {
			if b := io.DRAMWriteBytes[e]; b > 0 {
				p.Streams[e] = append(p.Streams[e],
					Instr{Op: OpWriteback, Bytes: b, Round: t})
			}
			p.Streams[e] = append(p.Streams[e], Instr{Op: OpSync, Round: t})
		}
		mapper.Recycle(&placed)
	}
	return p, nil
}

// Verify checks global stream consistency.
func (p *Program) Verify(d *atom.DAG) error {
	computed := make(map[int]bool)
	for e, stream := range p.Streams {
		round := -1
		for _, in := range stream {
			if in.Round < round {
				return fmt.Errorf("codegen: engine %d: round regressed %d -> %d", e, round, in.Round)
			}
			round = in.Round
			if in.Op == OpCompute {
				if computed[in.Atom] {
					return fmt.Errorf("codegen: atom %d computed twice", in.Atom)
				}
				computed[in.Atom] = true
			}
		}
	}
	// Every scheduled atom computed exactly once.
	want := 0
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput {
			want++
		}
	}
	if len(computed) != want || p.Atoms != want {
		return fmt.Errorf("codegen: %d COMPUTEs for %d schedulable atoms", len(computed), want)
	}
	// SEND/RECV pairing per Round.
	type key struct{ src, dst, round int }
	balance := make(map[key]int64)
	for e, stream := range p.Streams {
		for _, in := range stream {
			switch in.Op {
			case OpSend:
				balance[key{e, in.Peer, in.Round}] += in.Bytes
			case OpRecv:
				balance[key{in.Peer, e, in.Round}] -= in.Bytes
			}
		}
	}
	for k, v := range balance {
		if v != 0 {
			return fmt.Errorf("codegen: unmatched transfer E%d->E%d round %d: %d bytes", k.src, k.dst, k.round, v)
		}
	}
	// SYNC count equals Rounds on every engine.
	for e, stream := range p.Streams {
		syncs := 0
		for _, in := range stream {
			if in.Op == OpSync {
				syncs++
			}
		}
		if syncs != p.Rounds {
			return fmt.Errorf("codegen: engine %d has %d SYNCs, want %d", e, syncs, p.Rounds)
		}
	}
	return nil
}

// Dump writes a human-readable listing of one engine's stream.
func (p *Program) Dump(w io.Writer, engineID int) error {
	if engineID < 0 || engineID >= len(p.Streams) {
		return fmt.Errorf("codegen: engine %d out of range", engineID)
	}
	fmt.Fprintf(w, "; engine %d — %d instructions, %d rounds\n",
		engineID, len(p.Streams[engineID]), p.Rounds)
	round := -1
	for _, in := range p.Streams[engineID] {
		if in.Round != round {
			round = in.Round
			fmt.Fprintf(w, ".round %d\n", round)
		}
		fmt.Fprintf(w, "    %s\n", in)
	}
	return nil
}

// Stats summarizes a program.
type Stats struct {
	Instructions int
	Computes     int
	Sends        int
	Recvs        int
	LoadBytes    int64
	StoreBytes   int64
}

// Stats aggregates instruction counts across all engines.
func (p *Program) Stats() Stats {
	var st Stats
	for _, stream := range p.Streams {
		for _, in := range stream {
			st.Instructions++
			switch in.Op {
			case OpCompute:
				st.Computes++
			case OpSend:
				st.Sends++
			case OpRecv:
				st.Recvs++
			case OpLoadIn, OpLoadW:
				st.LoadBytes += in.Bytes
			case OpStore, OpWriteback:
				st.StoreBytes += in.Bytes
			}
		}
	}
	return st
}
