package codegen

import (
	"strings"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

func program(t *testing.T, model string, batch int, mesh *noc.Mesh) (*Program, *atom.DAG) {
	t.Helper()
	g := models.MustBuild(model)
	cfg := engine.Default()
	res := anneal.SA(g, cfg, engine.KCPartition, anneal.Options{MaxIters: 80})
	d, err := atom.Build(g, batch, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: mesh.Engines(), Mode: schedule.Greedy,
		EngineCfg: cfg, Dataflow: engine.KCPartition,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(d, s, mesh, int64(cfg.BufferBytes))
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestGenerateAndVerify(t *testing.T) {
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell"} {
		mesh := noc.NewMesh(2, 2, 32)
		p, d := program(t, model, 2, mesh)
		if err := p.Verify(d); err != nil {
			t.Errorf("%s: %v", model, err)
		}
		if len(p.Streams) != 4 {
			t.Errorf("%s: %d streams", model, len(p.Streams))
		}
	}
}

func TestStreamsCoverAllAtoms(t *testing.T) {
	mesh := noc.NewMesh(2, 2, 32)
	p, d := program(t, "tinybranch", 3, mesh)
	seen := make(map[int]bool)
	for _, stream := range p.Streams {
		for _, in := range stream {
			if in.Op == OpCompute {
				seen[in.Atom] = true
			}
		}
	}
	for _, a := range d.Atoms {
		virtual := len(a.Deps) == 0 && !a.Task.Kind.IsCompute() && a.Layer == 0
		if virtual {
			continue
		}
		if !seen[a.ID] && a.Task.Kind.String() != "Input" {
			t.Errorf("atom %d never computed", a.ID)
		}
	}
}

func TestSendRecvBalance(t *testing.T) {
	mesh := noc.NewMesh(2, 2, 32)
	p, _ := program(t, "tinyresnet", 2, mesh)
	var sends, recvs int
	var sentBytes, recvBytes int64
	for _, stream := range p.Streams {
		for _, in := range stream {
			switch in.Op {
			case OpSend:
				sends++
				sentBytes += in.Bytes
			case OpRecv:
				recvs++
				recvBytes += in.Bytes
			}
		}
	}
	if sends != recvs || sentBytes != recvBytes {
		t.Errorf("SEND/RECV imbalance: %d/%d ops, %d/%d bytes", sends, recvs, sentBytes, recvBytes)
	}
}

func TestDumpListing(t *testing.T) {
	mesh := noc.NewMesh(2, 2, 32)
	p, _ := program(t, "tinyconv", 1, mesh)
	var sb strings.Builder
	if err := p.Dump(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine 0", ".round 0", "SYNC"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	if err := p.Dump(&sb, 99); err == nil {
		t.Error("out-of-range engine accepted")
	}
}

func TestStats(t *testing.T) {
	mesh := noc.NewMesh(2, 2, 32)
	p, d := program(t, "tinyresnet", 2, mesh)
	st := p.Stats()
	if st.Computes != p.Atoms {
		t.Errorf("Computes = %d, want %d", st.Computes, p.Atoms)
	}
	if st.Instructions <= st.Computes {
		t.Error("instruction stream suspiciously small")
	}
	if st.LoadBytes <= 0 || st.StoreBytes <= 0 {
		t.Error("no load/store traffic recorded")
	}
	_ = d
}

func TestOpString(t *testing.T) {
	for op := OpLoadW; op <= OpSync; op++ {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Errorf("missing mnemonic for op %d", int(op))
		}
	}
}
