package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic.
	c.Add(5)
	c.Inc()
	g.Set(1.5)
	g.Max(2)
	h.Observe(1)
	h.ObserveInt(3)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition: %q", buf.String())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter registration not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("gauge registration not idempotent")
	}
	if r.Histogram("x", []float64{1}) != r.Histogram("x", []float64{5, 6}) {
		t.Error("histogram registration not idempotent")
	}
}

func TestInstruments(t *testing.T) {
	r := New()
	c := r.Counter("reqs")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("temp")
	g.Set(0.5)
	g.Max(0.25) // lower: ignored
	if g.Value() != 0.5 {
		t.Errorf("gauge = %v, want 0.5", g.Value())
	}
	g.Max(0.75)
	if g.Value() != 0.75 {
		t.Errorf("gauge after Max = %v, want 0.75", g.Value())
	}
	h := r.Histogram("lat", []float64{10, 100})
	h.ObserveInt(5)
	h.ObserveInt(10) // le boundary is inclusive
	h.ObserveInt(50)
	h.ObserveInt(1000)
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 1065 {
		t.Errorf("sum = %v, want 1065", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	want := []int64{2, 1, 1}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (%v)", i, b, want[i], hs.Buckets)
		}
	}
}

func TestSpan(t *testing.T) {
	r := New()
	h := r.Histogram("span_seconds", ExpBuckets(1e-6, 10, 8))
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span not recorded")
	}
	if h.Sum() <= 0 {
		t.Fatalf("span sum = %v", h.Sum())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(float64(j))
				r.Histogram("h", []float64{500}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8*999*1000/2 {
		t.Errorf("histogram sum = %v, want %v", got, 8*999*1000/2)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(7)
	r.Counter(Name("b_total", "engine", 3)).Add(2)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h_cycles", []float64{10, 100})
	h.ObserveInt(5)
	h.ObserveInt(500)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 7\n",
		"# TYPE b_total counter\n" + `b_total{engine="3"} 2` + "\n",
		"# TYPE g gauge\ng 1.5\n",
		"# TYPE h_cycles histogram\n",
		`h_cycles_bucket{le="10"} 1`,
		`h_cycles_bucket{le="100"} 1`,
		`h_cycles_bucket{le="+Inf"} 2`,
		"h_cycles_sum 505",
		"h_cycles_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := New()
	r.Histogram(Name("h_cycles", "engine", 1), []float64{10}).ObserveInt(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_cycles_bucket{engine="1",le="10"} 1`,
		`h_cycles_sum{engine="1"} 3`,
		`h_cycles_count{engine="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Add(9)
	r.Gauge("g").Set(2.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("c") != 9 || snap.Gauge("g") != 2.25 {
		t.Errorf("round-trip snapshot: %+v", snap)
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("histogram lost in round-trip: %+v", snap.Histograms)
	}
}

func TestFormatFloatInf(t *testing.T) {
	if formatFloat(math.Inf(1)) != "+Inf" || formatFloat(math.Inf(-1)) != "-Inf" {
		t.Error("Inf formatting")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := New()
	r.Counter("served_total").Add(11)
	addr, srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "served_total 11") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"served_total": 11`) {
		t.Errorf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}
