package dash

import (
	"embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

//go:embed web
var webFS embed.FS

// fleetGauges and fleetCounters are the serve_* instruments the
// dashboard's header tiles read. The dash package renders them but the
// serving layer owns their names; state.json simply mirrors whichever
// exist in the registry at snapshot time.
var fleetGauges = []string{
	"serve_queue_depth", "serve_queue_capacity",
	"serve_workers", "serve_workers_busy",
	"serve_cache_hit_ratio", "serve_uptime_seconds",
	"surrogate_segments_ready",
}

var fleetCounters = []string{
	"serve_requests_total", "serve_solves_total", "serve_solve_errors_total",
	"serve_cache_hits_total", "serve_cache_misses_total",
	"serve_dedup_joined_total", "serve_queue_rejected_total",
}

// stateDoc is the full /debug/dash/state.json body: the live solves plus
// the fleet tiles' instrument readings.
type stateDoc struct {
	State
	Gauges   map[string]float64 `json:"gauges"`
	Counters map[string]int64   `json:"counters"`
}

// Handler mounts the dashboard at /debug/dash:
//
//	/debug/dash               the embedded web UI
//	/debug/dash/state.json    active solves + fleet gauges (poll-friendly)
//	/debug/dash/sessions.json recent session history, newest first
//	/debug/dash/events        server-sent-event stream of the event ring
//
// reg supplies the fleet tiles (queue depth, worker occupancy, cache hit
// ratio); nil is allowed and leaves those tiles empty. Every endpoint is
// GET-only and sets an explicit charset.
func Handler(st *Store, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/dash", guard(serveAsset("web/index.html", "text/html; charset=utf-8")))
	mux.HandleFunc("/debug/dash/", guard(serveAsset("web/index.html", "text/html; charset=utf-8")))
	mux.HandleFunc("/debug/dash/dash.js", guard(serveAsset("web/dash.js", "application/javascript; charset=utf-8")))
	mux.HandleFunc("/debug/dash/state.json", guard(func(w http.ResponseWriter, r *http.Request) {
		doc := stateDoc{
			State:    st.StateSnapshot(),
			Gauges:   map[string]float64{},
			Counters: map[string]int64{},
		}
		if reg != nil {
			snap := reg.Snapshot()
			for _, n := range fleetGauges {
				if v, ok := snap.Gauges[n]; ok {
					doc.Gauges[n] = v
				}
			}
			for _, n := range fleetCounters {
				if v, ok := snap.Counters[n]; ok {
					doc.Counters[n] = v
				}
			}
		}
		writeJSON(w, doc)
	}))
	mux.HandleFunc("/debug/dash/sessions.json", guard(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"sessions": st.Sessions()})
	}))
	mux.HandleFunc("/debug/dash/events", guard(st.serveEvents))
	return mux
}

func guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func serveAsset(path, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		b, err := webFS.ReadFile(path)
		if err != nil {
			http.Error(w, "asset missing", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(b)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// serveEvents is the SSE endpoint. It replays the retained backlog
// (filtered by an optional ?since=<seq> or Last-Event-ID header), then
// streams live events until the client goes away. Heartbeat comments
// keep idle connections alive through proxies. A slow client loses
// events rather than blocking publishers; the Seq field exposes gaps.
func (s *Store) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}

	// Subscribe before replaying the backlog so no event falls between
	// the two; the seq guard below drops the overlap.
	ch, cancel := s.Subscribe(256)
	defer cancel()

	last := since
	for _, ev := range s.Recent(0) {
		if ev.Seq <= last {
			continue
		}
		writeEvent(w, ev)
		last = ev.Seq
	}
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.Seq <= last {
				continue
			}
			writeEvent(w, ev)
			last = ev.Seq
			// Drain whatever queued behind it before flushing once.
			for more := true; more; {
				select {
				case ev, ok = <-ch:
					if !ok {
						more = false
						break
					}
					if ev.Seq > last {
						writeEvent(w, ev)
						last = ev.Seq
					}
				default:
					more = false
				}
			}
			fl.Flush()
		}
	}
}

func writeEvent(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}
