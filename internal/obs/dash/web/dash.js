// Fleet dashboard client: polls state.json / sessions.json and follows
// the SSE event stream. Stdlib server, no framework client — fetch,
// EventSource and hand-rolled SVG sparklines.
"use strict";

const $ = (id) => document.getElementById(id);
const SERIES = 8; // categorical slots defined in index.html CSS

function chainColor(i) {
  return i < SERIES ? `var(--series-${i + 1})` : "var(--series-other)";
}

function fmt(v, digits = 0) {
  if (v === undefined || v === null || Number.isNaN(v)) return "–";
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (Math.abs(v) >= 1e4) return (v / 1e3).toFixed(1) + "k";
  return v.toFixed(digits);
}

function fmtDur(ms) {
  if (ms < 1000) return ms + "ms";
  if (ms < 60000) return (ms / 1000).toFixed(1) + "s";
  return Math.floor(ms / 60000) + "m" + Math.round((ms % 60000) / 1000) + "s";
}

function esc(s) {
  return String(s).replace(/[&<>"]/g, (c) =>
    ({ "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c]));
}

// ---- fleet tiles -----------------------------------------------------

function renderTiles(doc) {
  const g = doc.gauges || {}, c = doc.counters || {};
  const hit = g.serve_cache_hit_ratio;
  const tiles = [
    [String(doc.active.length), "active solves"],
    [`${fmt(g.serve_workers_busy)} / ${fmt(g.serve_workers)}`, "workers busy"],
    [`${fmt(g.serve_queue_depth)} / ${fmt(g.serve_queue_capacity)}`, "queue depth"],
    [hit === undefined ? "–" : (100 * hit).toFixed(1) + "%", "cache hit ratio"],
    [fmt(c.serve_requests_total), "requests"],
    [fmt(c.serve_solves_total), "solves"],
    [fmt(c.serve_queue_rejected_total), "rejected (429)"],
    [g.serve_uptime_seconds === undefined ? "–" : fmtDur(1000 * g.serve_uptime_seconds), "uptime"],
  ];
  $("tiles").innerHTML = tiles
    .map(([v, l]) => `<div class="tile"><div class="v">${esc(v)}</div><div class="l">${esc(l)}</div></div>`)
    .join("");
}

// ---- sparklines ------------------------------------------------------

// One sparkline per solve, one 2px line per chain (best CV over chain
// iterations, log-y so early convergence doesn't flatten the tail).
function sparkline(series) {
  const W = 352, H = 84, PAD = 4;
  let maxIter = 1, lo = Infinity, hi = -Infinity;
  for (const pts of series) {
    for (const p of pts) {
      maxIter = Math.max(maxIter, p.iter);
      const v = Math.max(p.best_cv, 1e-6);
      lo = Math.min(lo, v); hi = Math.max(hi, v);
    }
  }
  if (!isFinite(lo)) return `<svg class="spark" viewBox="0 0 ${W} ${H}"></svg>`;
  if (hi / lo < 1.05) { hi *= 1.1; lo /= 1.1; }
  const lx = (it) => PAD + (W - 2 * PAD) * (it / maxIter);
  const ly = (v) => {
    const t = (Math.log(Math.max(v, 1e-6)) - Math.log(lo)) / (Math.log(hi) - Math.log(lo));
    return H - PAD - (H - 2 * PAD) * t;
  };
  let out = `<svg class="spark" viewBox="0 0 ${W} ${H}" role="img" aria-label="per-chain best CV trajectory">`;
  // Recessive grid: three horizontal rules.
  for (const f of [0.25, 0.5, 0.75]) {
    const y = PAD + (H - 2 * PAD) * f;
    out += `<line x1="${PAD}" y1="${y}" x2="${W - PAD}" y2="${y}" stroke="var(--grid)" stroke-width="1"/>`;
  }
  series.forEach((pts, i) => {
    if (!pts.length) return;
    const d = pts.map((p) => `${lx(p.iter).toFixed(1)},${ly(p.best_cv).toFixed(1)}`).join(" ");
    out += `<polyline points="${d}" fill="none" stroke="${chainColor(i)}" ` +
      `stroke-width="2" stroke-linejoin="round" stroke-linecap="round">` +
      `<title>chain ${i}</title></polyline>`;
  });
  return out + "</svg>";
}

function renderActive(doc) {
  const el = $("active");
  if (!doc.active.length) { el.innerHTML = `<span class="empty">none</span>`; return; }
  el.innerHTML = doc.active.map((a) => {
    const legend = a.series.length > 1
      ? `<div class="legend">` + a.series.map((_, i) =>
          `<span><span class="chip" style="background:${chainColor(i)}"></span>chain ${i}</span>`
        ).join("") + `</div>`
      : "";
    return `<div class="card">
      <div class="head"><span class="model">${esc(a.model || "inline graph")}</span>
        <span class="id">${esc(a.id)}</span></div>
      <div class="nums">
        ${fmtDur(a.elapsed_ms)} elapsed · ${a.chains} chain${a.chains > 1 ? "s" : ""}
        · ${a.exchanges} adoptions · best CV ${a.best_cv ? a.best_cv.toFixed(4) : "–"}
      </div>
      ${sparkline(a.series)}${legend}
    </div>`;
  }).join("");
}

// ---- sessions --------------------------------------------------------

function renderSessions(doc) {
  const ss = doc.sessions || [];
  if (!ss.length) { $("sessions").innerHTML = `<span class="empty">none yet</span>`; return; }
  const rows = ss.map((s) => `<tr>
    <td>${esc(s.model || "inline graph")}</td>
    <td class="id">${esc(s.id)}</td>
    <td>${s.chains}</td>
    <td>${fmtDur(s.dur_ms)}</td>
    <td>${s.final_cv ? s.final_cv.toFixed(4) : "–"}</td>
    <td>${s.rounds || "–"}</td>
    ${s.error
      ? `<td class="err">✕ ${esc(s.error)}</td>`
      : `<td class="ok digest">✓ ${esc((s.digest || "").slice(0, 16))}</td>`}
  </tr>`).join("");
  $("sessions").innerHTML = `<table>
    <thead><tr><th>model</th><th>solve</th><th>chains</th><th>duration</th>
    <th>final CV</th><th>rounds</th><th>outcome</th></tr></thead>
    <tbody>${rows}</tbody></table>`;
}

// ---- event log -------------------------------------------------------

const MAX_EVENTS = 100;
function addEvent(ev) {
  const li = document.createElement("li");
  const t = new Date(ev.time_ms).toLocaleTimeString();
  li.innerHTML = `<span class="t">${esc(t)}</span><span class="ty">${esc(ev.type)}</span> ` +
    `${esc(ev.model || "")} <span class="t">${esc(ev.solve || "")}</span> ${esc(ev.detail || "")}`;
  const ul = $("events");
  ul.insertBefore(li, ul.firstChild);
  while (ul.children.length > MAX_EVENTS) ul.removeChild(ul.lastChild);
}

// ---- wiring ----------------------------------------------------------

async function refreshState() {
  try {
    const doc = await (await fetch("/debug/dash/state.json")).json();
    renderTiles(doc);
    renderActive(doc);
  } catch { /* transient; next poll retries */ }
}

async function refreshSessions() {
  try {
    renderSessions(await (await fetch("/debug/dash/sessions.json")).json());
  } catch { /* transient */ }
}

const es = new EventSource("/debug/dash/events");
es.onopen = () => { const c = $("conn"); c.textContent = "live"; c.className = "ok"; };
es.onerror = () => { const c = $("conn"); c.textContent = "reconnecting…"; c.className = "bad"; };
for (const t of ["request_admitted", "request_dedup_joined", "request_cached",
                 "request_rejected", "solve_started", "solve_finished",
                 "solve_failed", "chain_exchange", "surrogate_gate",
                 "request_store_hit", "solve_warm_started",
                 "fleet_worker", "fleet_degraded"]) {
  es.addEventListener(t, (e) => {
    addEvent(JSON.parse(e.data));
    if (t === "solve_finished" || t === "solve_failed") refreshSessions();
    if (t === "solve_started" || t === "solve_finished" || t === "solve_failed") refreshState();
  });
}

refreshState();
refreshSessions();
setInterval(refreshState, 2000);
setInterval(refreshSessions, 10000);
