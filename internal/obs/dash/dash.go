// Package dash is the serving layer's live-observability store: a
// bounded in-memory record of what the fleet is doing right now and what
// it just did, plus the HTTP surface (see http.go) that renders it as an
// embedded web dashboard, JSON snapshots and a server-sent-event stream.
//
// Three bounded structures, all guarded by one mutex:
//
//   - an event ring: typed, sequence-numbered events (request admitted /
//     dedup-joined / cached / rejected, solve started / finished /
//     failed, chain exchanges, surrogate gate flips), fanned out to SSE
//     subscribers as they are published;
//   - an active-solve store: per in-flight solve, the request identity
//     and a per-chain series of (iteration, temperature, best energy)
//     samples fed by the annealer's progress hook;
//   - a session history ring: final digests and timings of recently
//     finished solves.
//
// Everything is observation-only and bounded: publishing costs a ring
// append plus a non-blocking send per subscriber, per-chain series are
// decimated in place once they hit their cap, and a slow SSE client
// loses events rather than ever back-pressuring a solve.
package dash

import (
	"sync"
	"time"
)

// EventType tags one dashboard event.
type EventType string

// The event vocabulary. Request-stage events carry the request's short
// key; solve-stage events carry the solve id (the same short key).
const (
	EvAdmitted  EventType = "request_admitted"     // queued for a worker
	EvDedup     EventType = "request_dedup_joined" // joined an identical in-flight solve
	EvCached    EventType = "request_cached"       // answered from the solution cache
	EvRejected  EventType = "request_rejected"     // shed by queue backpressure
	EvStarted   EventType = "solve_started"        // worker began the search
	EvFinished  EventType = "solve_finished"       // solution produced
	EvFailed    EventType = "solve_failed"         // search errored or was abandoned
	EvExchange  EventType = "chain_exchange"       // annealing portfolio barrier
	EvSurrogate EventType = "surrogate_gate"       // learned-oracle readiness flipped
	EvStoreHit  EventType = "request_store_hit"    // answered from the persistent store
	EvWarmStart EventType = "solve_warm_started"   // search seeded from a stored donor
	EvFleet     EventType = "fleet_worker"         // a fleet worker joined or was lost
	EvDegraded  EventType = "fleet_degraded"       // a distributed solve dropped chains
)

// Event is one dashboard event. Seq increases by one per published
// event, so SSE clients can detect gaps after reconnecting.
type Event struct {
	Seq    uint64    `json:"seq"`
	TimeMS int64     `json:"time_ms"` // unix milliseconds
	Type   EventType `json:"type"`
	Solve  string    `json:"solve,omitempty"` // short request key
	Model  string    `json:"model,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// ChainPoint is one recorded progress sample of one annealing chain.
type ChainPoint struct {
	Iter   int     `json:"iter"`
	Temp   float64 `json:"temp"`
	BestE  float64 `json:"best_e"`
	BestCV float64 `json:"best_cv"`
}

// ChainSample is one chain's progress observation as delivered by the
// search hook; the store appends it to the solve's per-chain series.
type ChainSample struct {
	Chain   int
	Iters   int
	Temp    float64
	BestE   float64
	BestCV  float64
	Adopted bool // adopted the global best at this barrier
}

// Session is one finished solve in the history ring.
type Session struct {
	ID      string  `json:"id"`
	Model   string  `json:"model"`
	Chains  int     `json:"chains"`
	StartMS int64   `json:"start_ms"`
	DurMS   int64   `json:"dur_ms"`
	Digest  string  `json:"digest,omitempty"`
	Error   string  `json:"error,omitempty"`
	Rounds  int     `json:"rounds,omitempty"`
	Atoms   int     `json:"atoms,omitempty"`
	FinalCV float64 `json:"final_cv,omitempty"`
}

// ActiveSnapshot is one in-flight solve as exported by State.
type ActiveSnapshot struct {
	ID        string         `json:"id"`
	Model     string         `json:"model"`
	Chains    int            `json:"chains"`
	StartMS   int64          `json:"start_ms"`
	ElapsedMS int64          `json:"elapsed_ms"`
	Exchanges int64          `json:"exchanges"` // barrier adoptions so far
	BestE     float64        `json:"best_e"`
	BestCV    float64        `json:"best_cv"`
	Series    [][]ChainPoint `json:"series"` // per-chain sample series
}

// State is the /debug/dash/state.json snapshot: the in-flight solves
// plus the newest event sequence number (so a poller can tell whether it
// missed events without holding an SSE connection).
type State struct {
	NowMS   int64            `json:"now_ms"`
	LastSeq uint64           `json:"last_seq"`
	Active  []ActiveSnapshot `json:"active"`
}

// Config bounds the store. Zero values select the defaults.
type Config struct {
	EventCap   int // event ring capacity (default 512)
	HistoryCap int // session history capacity (default 64)
	PointCap   int // per-chain sample cap before decimation (default 256)
}

func (c Config) eventCap() int {
	if c.EventCap > 0 {
		return c.EventCap
	}
	return 512
}

func (c Config) historyCap() int {
	if c.HistoryCap > 0 {
		return c.HistoryCap
	}
	return 64
}

func (c Config) pointCap() int {
	if c.PointCap > 0 {
		return c.PointCap
	}
	return 256
}

// chainSeries is one chain's bounded sample trail. When the series hits
// its cap it halves its own resolution: every other retained point is
// dropped and the recording stride doubles, so memory stays bounded
// while the trajectory keeps its full extent (start to now) at
// progressively coarser sampling — exactly what a sparkline wants.
type chainSeries struct {
	pts    []ChainPoint
	stride int // record every stride-th offered sample
	tick   int
}

func (cs *chainSeries) add(p ChainPoint, max int) {
	if cs.stride == 0 {
		cs.stride = 1
	}
	cs.tick++
	if (cs.tick-1)%cs.stride != 0 {
		return
	}
	cs.pts = append(cs.pts, p)
	if len(cs.pts) >= max {
		kept := cs.pts[:0]
		for i := 0; i < len(cs.pts); i += 2 {
			kept = append(kept, cs.pts[i])
		}
		cs.pts = kept
		cs.stride *= 2
	}
}

type activeSolve struct {
	id        string
	model     string
	chains    int
	startMS   int64
	exchanges int64
	series    []chainSeries
}

// subscriber is one attached SSE client. Publishing never blocks: a full
// channel drops the event for that client only (dashboards want the
// present, not guaranteed delivery — gaps are visible in Seq).
type subscriber struct {
	ch chan Event
}

// Store holds the fleet's live observability state. Safe for concurrent
// use; the zero value is not usable — construct with NewStore.
type Store struct {
	cfg Config

	mu     sync.Mutex
	seq    uint64
	events []Event // ring, events[(head+i)%cap] for i < n
	head   int
	n      int
	subs   map[*subscriber]struct{}
	active map[string]*activeSolve
	order  []string // active solve ids, insertion-ordered
	hist   []Session
	hHead  int
	hN     int
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:    cfg,
		events: make([]Event, cfg.eventCap()),
		subs:   make(map[*subscriber]struct{}),
		active: make(map[string]*activeSolve),
		hist:   make([]Session, cfg.historyCap()),
	}
}

func nowMS() int64 { return time.Now().UnixMilli() }

// Publish appends a typed event to the ring and fans it out to every
// subscriber (non-blocking: slow clients lose events, never stall the
// producer). Returns the event's sequence number.
func (s *Store) Publish(t EventType, solve, model, detail string) uint64 {
	s.mu.Lock()
	s.seq++
	ev := Event{Seq: s.seq, TimeMS: nowMS(), Type: t, Solve: solve, Model: model, Detail: detail}
	if s.n < len(s.events) {
		s.events[(s.head+s.n)%len(s.events)] = ev
		s.n++
	} else {
		s.events[s.head] = ev
		s.head = (s.head + 1) % len(s.events)
	}
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
		}
	}
	s.mu.Unlock()
	return ev.Seq
}

// Recent returns up to max of the newest events, oldest first (all
// retained events when max <= 0).
func (s *Store) Recent(max int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if max > 0 && n > max {
		n = max
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = s.events[(s.head+s.n-n+i)%len(s.events)]
	}
	return out
}

// Subscribe attaches an event listener with the given channel buffer
// (default 64) and returns the channel plus a cancel function. After
// cancel returns, nothing more is sent and the channel is closed.
func (s *Store) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	sub := &subscriber{ch: make(chan Event, buf)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[sub]; ok {
			delete(s.subs, sub)
			close(sub.ch)
		}
		s.mu.Unlock()
	}
	return sub.ch, cancel
}

// Subscribers reports the attached SSE client count (leak checks).
func (s *Store) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// SolveStarted registers an in-flight solve and publishes EvStarted. A
// restarted id (same request solved again after an abandonment) resets
// its series.
func (s *Store) SolveStarted(id, model string, chains int) {
	if chains < 1 {
		chains = 1
	}
	s.mu.Lock()
	if _, ok := s.active[id]; !ok {
		s.order = append(s.order, id)
	}
	s.active[id] = &activeSolve{
		id: id, model: model, chains: chains,
		startMS: nowMS(),
		series:  make([]chainSeries, chains),
	}
	s.mu.Unlock()
	s.Publish(EvStarted, id, model, "")
}

// SolveProgress appends one barrier's chain samples to the solve's
// series. Unknown ids are ignored (the solve may have been evicted).
func (s *Store) SolveProgress(id string, samples []ChainSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.active[id]
	if a == nil {
		return
	}
	for _, sm := range samples {
		if sm.Chain < 0 {
			continue
		}
		for sm.Chain >= len(a.series) {
			// The GA slot (or a widened portfolio) appears lazily.
			a.series = append(a.series, chainSeries{})
		}
		a.series[sm.Chain].add(ChainPoint{
			Iter: sm.Iters, Temp: sm.Temp, BestE: sm.BestE, BestCV: sm.BestCV,
		}, s.cfg.pointCap())
		if sm.Adopted {
			a.exchanges++
		}
	}
}

// SolveFinished retires an active solve into the history ring and
// publishes EvFinished (or EvFailed when sess.Error is set). The solve
// id is taken from sess.ID; StartMS and DurMS are filled from the active
// record when zero.
func (s *Store) SolveFinished(sess Session) {
	s.mu.Lock()
	if a := s.active[sess.ID]; a != nil {
		if sess.StartMS == 0 {
			sess.StartMS = a.startMS
		}
		if sess.DurMS == 0 {
			sess.DurMS = nowMS() - a.startMS
		}
		if sess.Chains == 0 {
			sess.Chains = a.chains
		}
		if sess.Model == "" {
			sess.Model = a.model
		}
		delete(s.active, sess.ID)
		for i, id := range s.order {
			if id == sess.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	if s.hN < len(s.hist) {
		s.hist[(s.hHead+s.hN)%len(s.hist)] = sess
		s.hN++
	} else {
		s.hist[s.hHead] = sess
		s.hHead = (s.hHead + 1) % len(s.hist)
	}
	s.mu.Unlock()
	t, detail := EvFinished, sess.Digest
	if sess.Error != "" {
		t, detail = EvFailed, sess.Error
	}
	s.Publish(t, sess.ID, sess.Model, detail)
}

// StateSnapshot copies the in-flight solves (insertion order).
func (s *Store) StateSnapshot() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := nowMS()
	st := State{NowMS: now, LastSeq: s.seq, Active: make([]ActiveSnapshot, 0, len(s.active))}
	for _, id := range s.order {
		a := s.active[id]
		if a == nil {
			continue
		}
		snap := ActiveSnapshot{
			ID: a.id, Model: a.model, Chains: a.chains,
			StartMS: a.startMS, ElapsedMS: now - a.startMS,
			Exchanges: a.exchanges,
			Series:    make([][]ChainPoint, len(a.series)),
		}
		first := true
		for i := range a.series {
			snap.Series[i] = append([]ChainPoint(nil), a.series[i].pts...)
			if n := len(a.series[i].pts); n > 0 {
				last := a.series[i].pts[n-1]
				if first || last.BestE < snap.BestE {
					snap.BestE, snap.BestCV = last.BestE, last.BestCV
					first = false
				}
			}
		}
		st.Active = append(st.Active, snap)
	}
	return st
}

// Sessions returns the history ring, newest first.
func (s *Store) Sessions() []Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Session, s.hN)
	for i := 0; i < s.hN; i++ {
		out[i] = s.hist[(s.hHead+s.hN-1-i)%len(s.hist)]
	}
	return out
}
