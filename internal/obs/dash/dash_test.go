package dash

import (
	"fmt"
	"sync"
	"testing"
)

func TestEventRingOverflow(t *testing.T) {
	st := NewStore(Config{EventCap: 8})
	for i := 0; i < 20; i++ {
		st.Publish(EvAdmitted, fmt.Sprintf("k%d", i), "m", "")
	}
	evs := st.Recent(0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring cap 8", len(evs))
	}
	// Oldest retained is #13 (seq 13): events 1..12 were evicted.
	for i, ev := range evs {
		want := uint64(13 + i)
		if ev.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.Solve != fmt.Sprintf("k%d", 12+i) {
			t.Fatalf("evs[%d].Solve = %q, want k%d", i, ev.Solve, 12+i)
		}
	}
	// Recent with a max returns the newest slice, still oldest-first.
	tail := st.Recent(3)
	if len(tail) != 3 || tail[0].Seq != 18 || tail[2].Seq != 20 {
		t.Fatalf("Recent(3) = %+v, want seqs 18..20", tail)
	}
}

func TestConcurrentProducersAndSubscriber(t *testing.T) {
	st := NewStore(Config{EventCap: 64})
	const producers, perProducer = 8, 200

	ch, cancel := st.Subscribe(producers * perProducer)
	defer cancel()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("solve-%d", p)
			st.SolveStarted(id, "model", 2)
			for i := 0; i < perProducer; i++ {
				st.Publish(EvExchange, id, "model", "")
				st.SolveProgress(id, []ChainSample{
					{Chain: 0, Iters: i, BestE: float64(i)},
					{Chain: 1, Iters: i, BestE: float64(i), Adopted: i%3 == 0},
				})
			}
			st.SolveFinished(Session{ID: id, Digest: "d"})
		}(p)
	}
	// A concurrent reader exercises snapshot paths under the race
	// detector while producers are live.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			st.StateSnapshot()
			st.Sessions()
			st.Recent(16)
		}
	}()
	wg.Wait()
	<-done
	cancel()

	// Every producer's lifecycle must land in history exactly once.
	sessions := st.Sessions()
	if len(sessions) != producers {
		t.Fatalf("history has %d sessions, want %d", len(sessions), producers)
	}
	for _, sess := range sessions {
		if sess.Digest != "d" || sess.Chains != 2 {
			t.Fatalf("bad session %+v", sess)
		}
	}
	if n := len(st.StateSnapshot().Active); n != 0 {
		t.Fatalf("%d solves still active after finish", n)
	}
	// The subscriber channel was closed by cancel; drain confirms
	// delivered events are well-formed and strictly ordered.
	var lastSeq uint64
	for ev := range ch {
		if ev.Seq <= lastSeq {
			t.Fatalf("subscriber saw non-increasing seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	st := NewStore(Config{EventCap: 16})
	ch, cancel := st.Subscribe(2) // tiny buffer, never read
	defer cancel()
	for i := 0; i < 50; i++ {
		st.Publish(EvAdmitted, "k", "", "") // must not block
	}
	if len(ch) != 2 {
		t.Fatalf("slow subscriber buffered %d events, want 2", len(ch))
	}
}

func TestSeriesDecimation(t *testing.T) {
	st := NewStore(Config{PointCap: 8})
	st.SolveStarted("s", "m", 1)
	const total = 1000
	for i := 1; i <= total; i++ {
		st.SolveProgress("s", []ChainSample{{Chain: 0, Iters: i * 100, BestE: float64(i)}})
	}
	snap := st.StateSnapshot()
	if len(snap.Active) != 1 {
		t.Fatalf("want 1 active solve, got %d", len(snap.Active))
	}
	pts := snap.Active[0].Series[0]
	if len(pts) == 0 || len(pts) >= 8 {
		t.Fatalf("decimated series has %d points, want (0, 8)", len(pts))
	}
	// Full extent preserved: first sample survives every halving and the
	// trail stays strictly increasing in iteration.
	if pts[0].Iter != 100 {
		t.Fatalf("first retained point is iter %d, want 100", pts[0].Iter)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Iter <= pts[i-1].Iter {
			t.Fatalf("series not increasing at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].Iter < total*100/4 {
		t.Fatalf("decimation lost the tail: last retained iter %d of %d", pts[len(pts)-1].Iter, total*100)
	}
}

func TestSolveProgressGrowsLazySlots(t *testing.T) {
	st := NewStore(Config{})
	st.SolveStarted("s", "m", 2)
	// The GA refiner reports as chain index 2 on a 2-chain portfolio.
	st.SolveProgress("s", []ChainSample{{Chain: 2, Iters: 5, BestE: 1}})
	snap := st.StateSnapshot()
	if got := len(snap.Active[0].Series); got != 3 {
		t.Fatalf("series slots = %d, want lazily-grown 3", got)
	}
	// Unknown ids are ignored, not resurrected.
	st.SolveProgress("ghost", []ChainSample{{Chain: 0}})
	if n := len(st.StateSnapshot().Active); n != 1 {
		t.Fatalf("ghost progress created an active solve (%d active)", n)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	st := NewStore(Config{HistoryCap: 4})
	for i := 0; i < 10; i++ {
		st.SolveFinished(Session{ID: fmt.Sprintf("s%d", i), DurMS: 1})
	}
	sessions := st.Sessions()
	if len(sessions) != 4 {
		t.Fatalf("history retained %d, want 4", len(sessions))
	}
	// Newest first: s9, s8, s7, s6.
	for i, sess := range sessions {
		if want := fmt.Sprintf("s%d", 9-i); sess.ID != want {
			t.Fatalf("sessions[%d].ID = %q, want %q", i, sess.ID, want)
		}
	}
}

func TestSolveFinishedFillsFromActive(t *testing.T) {
	st := NewStore(Config{})
	st.SolveStarted("s", "resnet50", 4)
	st.SolveFinished(Session{ID: "s", Digest: "abc"})
	sessions := st.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("want 1 session, got %d", len(sessions))
	}
	sess := sessions[0]
	if sess.Model != "resnet50" || sess.Chains != 4 || sess.StartMS == 0 {
		t.Fatalf("active-record fill missing: %+v", sess)
	}
	// The failure path publishes EvFailed with the error as detail.
	st.SolveStarted("f", "m", 1)
	st.SolveFinished(Session{ID: "f", Error: "boom"})
	evs := st.Recent(1)
	if evs[0].Type != EvFailed || evs[0].Detail != "boom" {
		t.Fatalf("failure event = %+v, want %s/boom", evs[0], EvFailed)
	}
}

func TestStateSnapshotBestAcrossChains(t *testing.T) {
	st := NewStore(Config{})
	st.SolveStarted("s", "m", 2)
	st.SolveProgress("s", []ChainSample{
		{Chain: 0, Iters: 10, BestE: 9.0, BestCV: 0.9},
		{Chain: 1, Iters: 10, BestE: 4.0, BestCV: 0.4},
	})
	a := st.StateSnapshot().Active[0]
	if a.BestE != 4.0 || a.BestCV != 0.4 {
		t.Fatalf("best across chains = (%g, %g), want chain 1's (4, 0.4)", a.BestE, a.BestCV)
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	st := NewStore(Config{})
	_, cancel := st.Subscribe(1)
	cancel()
	cancel() // second cancel must not panic (double close)
	if st.Subscribers() != 0 {
		t.Fatalf("subscriber count %d after cancel", st.Subscribers())
	}
}
