package dash

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDashEndpointsContentTypes(t *testing.T) {
	st := NewStore(Config{})
	reg := obs.New()
	reg.Gauge("serve_workers").Set(4)
	reg.Counter("serve_requests_total").Add(7)
	srv := httptest.NewServer(Handler(st, reg))
	defer srv.Close()

	cases := []struct{ path, ct, body string }{
		{"/debug/dash", "text/html; charset=utf-8", "<!doctype html"},
		{"/debug/dash/", "text/html; charset=utf-8", "<!doctype html"},
		{"/debug/dash/dash.js", "application/javascript; charset=utf-8", "EventSource"},
		{"/debug/dash/state.json", "application/json; charset=utf-8", `"active"`},
		{"/debug/dash/sessions.json", "application/json; charset=utf-8", `"sessions"`},
	}
	for _, c := range cases {
		res, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatalf("GET %s: %v", c.path, err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", c.path, res.StatusCode)
		}
		if got := res.Header.Get("Content-Type"); got != c.ct {
			t.Fatalf("GET %s: Content-Type %q, want %q", c.path, got, c.ct)
		}
		var sb strings.Builder
		sc := bufio.NewScanner(res.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
		}
		res.Body.Close()
		if !strings.Contains(strings.ToLower(sb.String()), strings.ToLower(c.body)) {
			t.Fatalf("GET %s: body missing %q", c.path, c.body)
		}
	}
}

func TestDashRejectsNonGET(t *testing.T) {
	st := NewStore(Config{})
	srv := httptest.NewServer(Handler(st, nil))
	defer srv.Close()
	for _, path := range []string{"/debug/dash", "/debug/dash/state.json", "/debug/dash/sessions.json", "/debug/dash/events"} {
		res, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", path, res.StatusCode)
		}
		if res.Header.Get("Allow") != "GET" {
			t.Fatalf("POST %s: Allow = %q, want GET", path, res.Header.Get("Allow"))
		}
	}
}

func TestStateJSONMirrorsRegistry(t *testing.T) {
	st := NewStore(Config{})
	reg := obs.New()
	reg.Gauge("serve_workers").Set(4)
	reg.Gauge("unrelated_gauge").Set(99) // not on the allowlist
	reg.Counter("serve_requests_total").Add(7)
	st.SolveStarted("abc", "vgg16", 2)
	srv := httptest.NewServer(Handler(st, reg))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/debug/dash/state.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Active []struct {
			ID     string `json:"id"`
			Model  string `json:"model"`
			Chains int    `json:"chains"`
		} `json:"active"`
		Gauges   map[string]float64 `json:"gauges"`
		Counters map[string]int64   `json:"counters"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Active) != 1 || doc.Active[0].ID != "abc" || doc.Active[0].Model != "vgg16" || doc.Active[0].Chains != 2 {
		t.Fatalf("active = %+v", doc.Active)
	}
	if doc.Gauges["serve_workers"] != 4 || doc.Counters["serve_requests_total"] != 7 {
		t.Fatalf("instruments not mirrored: %+v / %+v", doc.Gauges, doc.Counters)
	}
	if _, leaked := doc.Gauges["unrelated_gauge"]; leaked {
		t.Fatal("state.json leaked a gauge outside the fleet allowlist")
	}
}

// sseClient collects parsed events from one /debug/dash/events stream.
type sseClient struct {
	res    *http.Response
	events chan Event
}

func dialSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	res, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatalf("dial SSE: %v", err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream; charset=utf-8" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	c := &sseClient{res: res, events: make(chan Event, 256)}
	go func() {
		defer close(c.events)
		sc := bufio.NewScanner(res.Body)
		var id, typ, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				id = line[4:]
			case strings.HasPrefix(line, "event: "):
				typ = line[7:]
			case strings.HasPrefix(line, "data: "):
				data = line[6:]
			case line == "" && data != "":
				var ev Event
				if json.Unmarshal([]byte(data), &ev) == nil {
					// The frame must agree with its payload.
					if id != "" && typ == string(ev.Type) {
						c.events <- ev
					}
				}
				id, typ, data = "", "", ""
			}
		}
	}()
	return c
}

func (c *sseClient) close() { c.res.Body.Close() }

func TestSSEDeliversLiveAndBacklog(t *testing.T) {
	st := NewStore(Config{})
	srv := httptest.NewServer(Handler(st, nil))
	defer srv.Close()

	// Backlog published before the client connects must be replayed.
	st.Publish(EvStarted, "s1", "m", "")
	c := dialSSE(t, srv.URL+"/debug/dash/events")
	defer c.close()

	ev := <-c.events
	if ev.Type != EvStarted || ev.Solve != "s1" || ev.Seq != 1 {
		t.Fatalf("backlog event = %+v", ev)
	}

	// Live events flow through the same stream, in order.
	st.Publish(EvExchange, "s1", "m", "iters=64 adopted=1")
	st.Publish(EvFinished, "s1", "m", "digest")
	got := []Event{<-c.events, <-c.events}
	if got[0].Type != EvExchange || got[1].Type != EvFinished {
		t.Fatalf("live events = %+v", got)
	}
	if got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("live seqs = %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[0].Detail != "iters=64 adopted=1" {
		t.Fatalf("detail = %q", got[0].Detail)
	}
}

func TestSSESinceSkipsReplayed(t *testing.T) {
	st := NewStore(Config{})
	srv := httptest.NewServer(Handler(st, nil))
	defer srv.Close()
	st.Publish(EvStarted, "s1", "m", "")
	st.Publish(EvFinished, "s1", "m", "")

	c := dialSSE(t, srv.URL+"/debug/dash/events?since=1")
	defer c.close()
	ev := <-c.events
	if ev.Seq != 2 || ev.Type != EvFinished {
		t.Fatalf("first event after since=1 = %+v, want seq 2", ev)
	}
}

func TestSSEClientDisconnectReleasesSubscriber(t *testing.T) {
	st := NewStore(Config{})
	srv := httptest.NewServer(Handler(st, nil))
	defer srv.Close()

	c := dialSSE(t, srv.URL+"/debug/dash/events")
	waitFor(t, "subscriber attach", func() bool { return st.Subscribers() == 1 })

	// Drop the connection mid-stream; the handler goroutine must notice
	// via the request context and unsubscribe — no goroutine leak, no
	// dangling subscriber slowing future publishes.
	c.close()
	st.Publish(EvAdmitted, "k", "", "") // nudge past any blocking write
	waitFor(t, "subscriber detach", func() bool { return st.Subscribers() == 0 })
}
