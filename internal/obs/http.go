package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// get wraps a handler so only GET/HEAD reach it; anything else is
// answered 405 with an Allow header, per RFC 9110. The metrics endpoints
// are read-only by definition, and answering 200 to a POST (as earlier
// versions did) confuses scrapers' health probes.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
//	/debug/pprof/  the standard Go profiling endpoints
//
// Mount it on a loopback listener during long sweeps so progress and
// profiles are observable without stopping the run. The metrics
// endpoints are GET-only and always state an explicit charset.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", get(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}))
	mux.HandleFunc("/metrics.json", get(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts Handler(r) on addr in a background goroutine and returns
// the bound address (useful with ":0") and the server for shutdown. The
// caller owns the server; errors after startup are dropped, matching the
// fire-and-forget role of a diagnostics endpoint.
func Serve(addr string, r *Registry) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}
