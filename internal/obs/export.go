package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`  // bucket upper bounds (+Inf implicit)
	Buckets []int64   `json:"buckets"` // per-bucket counts, len(Bounds)+1
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable with
// deterministic key order (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the snapshot's value for name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshot's value for name (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Snapshot copies the registry's current state. A nil registry yields the
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds:  append([]float64(nil), h.bounds...),
				Buckets: make([]int64, len(h.buckets)),
				Count:   h.Count(),
				Sum:     h.Sum(),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[n] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// baseName strips a Name()-style label suffix for # TYPE lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeledBucket splices an le label into a (possibly labeled) histogram
// name: x -> x_bucket{le="10"}, x{e="3"} -> x_bucket{e="3",le="10"}.
func labeledBucket(name, le string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "_bucket" + name[i:len(name)-1] + `,le="` + le + `"}`
	}
	return name + `_bucket{le="` + le + `"}`
}

// suffixed appends a suffix to a histogram's base name, preserving labels.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), sorted by instrument name so scrapes and golden
// tests are deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	typed := make(map[string]bool) // base names that already got a TYPE line
	typeLine := func(base, kind string) string {
		if typed[base] {
			return ""
		}
		typed[base] = true
		return "# TYPE " + base + " " + kind + "\n"
	}

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, typeLine(baseName(n), "counter")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, typeLine(baseName(n), "gauge")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(snap.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		if _, err := io.WriteString(w, typeLine(baseName(n), "histogram")); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", labeledBucket(n, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", labeledBucket(n, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixed(n, "_sum"), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixed(n, "_count"), h.Count); err != nil {
			return err
		}
	}
	return nil
}
