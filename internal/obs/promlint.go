package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is a `promtool check metrics`-equivalent linter for the text
// exposition format this package emits. CI scrapes a live server and
// feeds the body through LintPrometheus, so an exporter regression (bad
// escaping, duplicate series, non-cumulative buckets) fails a test with
// the offending line instead of silently breaking scrapes in the field.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintPrometheus validates a Prometheus text-exposition document:
// metric and label name syntax, parseable sample values, TYPE comments
// preceding their first sample (at most one per metric), no duplicate
// series, and — for histograms — cumulative non-decreasing buckets whose
// +Inf count equals _count. It returns the first violation found, with
// its 1-based line number.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	typed := map[string]string{}    // base metric -> declared type
	sampled := map[string]bool{}    // base metrics that already have samples
	seen := map[string]bool{}       // full series (name+labels) seen
	bucketCum := map[string]int64{} // histogram series prefix -> last cumulative count
	bucketInf := map[string]int64{} // histogram series prefix -> +Inf count
	counts := map[string]int64{}    // histogram series prefix -> _count value

	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := lintComment(text, line, typed, sampled); err != nil {
				return err
			}
			continue
		}
		name, labels, value, err := splitSample(text, line)
		if err != nil {
			return err
		}
		series := name
		if labels != "" {
			series += "{" + labels + "}"
		}
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		sampled[baseName(name)] = true

		if strings.HasSuffix(name, "_bucket") {
			prefix := strings.TrimSuffix(name, "_bucket") + "{" + stripLE(labels) + "}"
			le, ok := labelValue(labels, "le")
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label: %s", line, text)
			}
			n := int64(value)
			if le == "+Inf" {
				bucketInf[prefix] = n
			}
			if last, ok := bucketCum[prefix]; ok && n < last {
				return fmt.Errorf("line %d: non-cumulative histogram bucket %s (le=%s: %d < %d)",
					line, name, le, n, last)
			}
			bucketCum[prefix] = n
		}
		if strings.HasSuffix(name, "_count") {
			prefix := strings.TrimSuffix(name, "_count") + "{" + labels + "}"
			counts[prefix] = int64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Histogram closure: every bucket family must end in +Inf matching
	// its _count. Iterate sorted for a deterministic first error.
	prefixes := make([]string, 0, len(bucketCum))
	for p := range bucketCum {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		inf, ok := bucketInf[p]
		if !ok {
			return fmt.Errorf("histogram %s has no +Inf bucket", p)
		}
		if c, ok := counts[p]; ok && c != inf {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", p, inf, c)
		}
	}
	return nil
}

func lintComment(text string, line int, typed map[string]string, sampled map[string]bool) error {
	if !strings.HasPrefix(text, "# TYPE ") {
		return nil // HELP and free comments are unconstrained
	}
	fields := strings.Fields(text)
	if len(fields) != 4 {
		return fmt.Errorf("line %d: malformed TYPE comment: %s", line, text)
	}
	name, kind := fields[2], fields[3]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("line %d: invalid metric name in TYPE: %q", line, name)
	}
	switch kind {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("line %d: unknown metric type %q", line, kind)
	}
	if _, dup := typed[name]; dup {
		return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
	}
	if sampled[name] {
		return fmt.Errorf("line %d: TYPE for %s after its first sample", line, name)
	}
	typed[name] = kind
	return nil
}

// splitSample parses `name{labels} value [timestamp]`, validating name,
// label and value syntax.
func splitSample(text string, line int) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		name = text[:i]
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("line %d: unbalanced braces: %s", line, text)
		}
		labels = text[i+1 : j]
		rest = strings.TrimSpace(text[j+1:])
		if err := lintLabels(labels, line); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.SplitN(text, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("line %d: sample without value: %s", line, text)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !metricNameRe.MatchString(name) {
		return "", "", 0, fmt.Errorf("line %d: invalid metric name %q", line, name)
	}
	vf := strings.Fields(rest)
	if len(vf) < 1 || len(vf) > 2 {
		return "", "", 0, fmt.Errorf("line %d: want `value [timestamp]`, got %q", line, rest)
	}
	value, perr := strconv.ParseFloat(vf[0], 64)
	if perr != nil && vf[0] != "+Inf" && vf[0] != "-Inf" && vf[0] != "NaN" {
		return "", "", 0, fmt.Errorf("line %d: unparseable value %q", line, vf[0])
	}
	if vf[0] == "+Inf" {
		value = math.Inf(1)
	}
	return name, labels, value, nil
}

// lintLabels validates a comma-separated k="v" list (values may contain
// escaped quotes).
func lintLabels(labels string, line int) error {
	for _, pair := range splitLabelPairs(labels) {
		if pair == "" {
			continue
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("line %d: label without '=': %q", line, pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !labelNameRe.MatchString(k) {
			return fmt.Errorf("line %d: invalid label name %q", line, k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("line %d: label value not quoted: %q", line, pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(labels string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(labels):
			b.WriteByte(c)
			i++
			b.WriteByte(labels[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, strings.TrimSpace(b.String()))
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, strings.TrimSpace(b.String()))
	}
	return out
}

// stripLE removes the le pair from a bucket's label list, yielding the
// series identity shared by its histogram's _sum/_count.
func stripLE(labels string) string {
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if eq := strings.IndexByte(pair, '='); eq > 0 && pair[:eq] == "le" {
			continue
		}
		if pair != "" {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

// labelValue extracts one label's (unquoted) value from a label list.
func labelValue(labels, key string) (string, bool) {
	for _, pair := range splitLabelPairs(labels) {
		if eq := strings.IndexByte(pair, '='); eq > 0 && pair[:eq] == key {
			v := pair[eq+1:]
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}
