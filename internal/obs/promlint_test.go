package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLintRealExposition is the promtool-check-metrics-equivalent gate:
// a registry exercising every instrument shape (plain counter, labeled
// counter, gauge, histogram, labeled histogram, infinities) must emit a
// document the linter accepts.
func TestLintRealExposition(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(7)
	r.Counter(Name("b_total", "engine", 3)).Add(2)
	r.Gauge("g").Set(1.5)
	r.Gauge(`build_info{go_version="go1.22.0",gomaxprocs="8",version="dev"}`).Set(1)
	h := r.Histogram("h_cycles", []float64{10, 100})
	h.ObserveInt(5)
	h.ObserveInt(500)
	r.Histogram(Name("l_cycles", "engine", 1), []float64{10}).ObserveInt(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("lint rejected the registry's own exposition: %v\n%s", err, buf.String())
	}
}

func TestLintRejectsCorruptDocuments(t *testing.T) {
	cases := []struct{ name, doc, wantErr string }{
		{"bad metric name", "1bad_name 3\n", "invalid metric name"},
		{"bad TYPE kind", "# TYPE x flavor\nx 1\n", "unknown metric type"},
		{"TYPE after sample", "x 1\n# TYPE x counter\n", "after its first sample"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"duplicate series", "x 1\nx 2\n", "duplicate series"},
		{"duplicate labeled series", `x{a="1"} 1` + "\n" + `x{a="1"} 2` + "\n", "duplicate series"},
		{"missing value", "x\n", "sample without value"},
		{"unparseable value", "x banana\n", "unparseable value"},
		{"unbalanced braces", "x}y 1\n", "invalid metric name"},
		{"bad label name", `x{1a="v"} 1` + "\n", "invalid label name"},
		{"unquoted label value", `x{a=v} 1` + "\n", "not quoted"},
		{"bucket without le", `x_bucket{a="1"} 1` + "\n", "without le"},
		{
			"non-cumulative buckets",
			`x_bucket{le="1"} 5` + "\n" + `x_bucket{le="2"} 3` + "\n" + `x_bucket{le="+Inf"} 5` + "\nx_count 5\n",
			"non-cumulative",
		},
		{
			"no +Inf bucket",
			`x_bucket{le="1"} 5` + "\nx_count 5\n",
			"no +Inf bucket",
		},
		{
			"+Inf disagrees with count",
			`x_bucket{le="+Inf"} 4` + "\nx_count 5\n",
			"!= _count",
		},
	}
	for _, c := range cases {
		err := LintPrometheus(strings.NewReader(c.doc))
		if err == nil {
			t.Errorf("%s: lint accepted\n%s", c.name, c.doc)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestLintAcceptsValidCorners(t *testing.T) {
	doc := "# HELP x free text here\n" +
		"# a bare comment\n" +
		"# TYPE x counter\n" +
		"x 1\n" +
		`y{a="with \"escaped\", comma"} 2.5e-3` + "\n" +
		"z +Inf\n" +
		`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 3\nh_count 2\n"
	if err := LintPrometheus(strings.NewReader(doc)); err != nil {
		t.Fatalf("lint rejected a valid document: %v", err)
	}
}

// TestMetricsMethodGuard is the regression test for the fix where the
// metrics endpoints answered 200 to any method: non-GET must now be 405
// with an Allow header, and every 200 carries an explicit charset.
func TestMetricsMethodGuard(t *testing.T) {
	r := New()
	r.Counter("x_total").Add(1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	cases := []struct{ path, ct string }{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics.json", "application/json; charset=utf-8"},
	}
	for _, c := range cases {
		res, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", c.path, res.StatusCode)
		}
		if got := res.Header.Get("Content-Type"); got != c.ct {
			t.Fatalf("GET %s: Content-Type %q, want %q", c.path, got, c.ct)
		}

		res, err = http.Post(srv.URL+c.path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: %d, want 405", c.path, res.StatusCode)
		}
		if res.Header.Get("Allow") != "GET" {
			t.Fatalf("POST %s: Allow %q, want GET", c.path, res.Header.Get("Allow"))
		}
	}
}
