// Package obs is the repository's metrics layer: a stdlib-only registry
// of counters, gauges and fixed-bucket histograms with Prometheus-text
// and JSON exporters, plus an optional net/http endpoint (see http.go).
//
// The design contract is that instrumentation may live on hot paths
// permanently. Every instrument is nil-safe: methods on a nil *Counter,
// *Gauge, *Histogram or a zero Span are no-ops, and a nil *Registry hands
// out nil instruments — so code compiled against the instrumented path
// pays one predictable nil check when metrics are disabled (verified by
// BenchmarkCounterDisabled in bench_test.go). Enabled instruments update
// via atomics and are safe for concurrent use.
//
// Instruments are identified by a Prometheus-style name, optionally with
// a label suffix built by Name ("sim_engine_busy_cycles{engine=\"3\"}").
// Registration is idempotent: asking for an existing name returns the
// same instrument, so long-lived registries accumulate across runs.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The nil Counter discards
// updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (set-only semantics: last
// write wins). The nil Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value (no-op on nil).
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Max raises the gauge to v if v exceeds the current value (no-op on
// nil) — high-water marks.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative,
// Prometheus-style: bucket i counts observations <= Bounds[i], with an
// implicit +Inf bucket at the end). The nil Histogram discards
// observations.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveInt records one integer value (no-op on nil).
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Span measures one timed section into a histogram of seconds. The zero
// Span (from a nil histogram) costs nothing, not even a clock read.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing into h. A nil h yields a free no-op Span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed seconds (no-op on the zero Span).
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Seconds())
}

// Registry holds named instruments. The nil Registry hands out nil
// instruments, making every consumer's disabled path free. Safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use (nil on
// a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use (nil on a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the given bucket upper
// bounds (sorted ascending; +Inf is implicit), registering it on first
// use (nil on a nil registry). Later calls with the same name reuse the
// first registration's buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Name builds a labeled instrument name: Name("x", "engine", 3) returns
// `x{engine="3"}`. Use at registration time, not on hot paths.
func Name(base, label string, value any) string {
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case int:
		v = strconv.Itoa(x)
	case int64:
		v = strconv.FormatInt(x, 10)
	default:
		v = fmt.Sprint(x)
	}
	return base + `{` + label + `="` + v + `"}`
}

// ExpBuckets returns n histogram bounds growing geometrically from start
// by factor — the standard shape for cycle and byte distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}
