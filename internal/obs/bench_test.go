package obs

import "testing"

// The overhead contract (see package doc): instrumented hot paths must
// cost one nil check when metrics are disabled and stay allocation-free
// either way. These benchmarks pin both sides; DESIGN.md quotes them.

var sinkCounter *Counter
var sinkHist *Histogram

// BenchmarkCounterDisabled measures the disabled path: a nil counter.
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled measures the enabled path: one atomic add.
func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	sinkCounter = c
}

// BenchmarkHistogramDisabled measures a nil histogram observation.
func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveInt(int64(i))
	}
}

// BenchmarkHistogramEnabled measures a 16-bucket observation.
func BenchmarkHistogramEnabled(b *testing.B) {
	h := New().Histogram("h", ExpBuckets(1, 2, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveInt(int64(i & 0xffff))
	}
	sinkHist = h
}

// BenchmarkSpanDisabled proves the zero Span skips the clock read.
func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(nil).End()
	}
}
