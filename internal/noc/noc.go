// Package noc models the on-chip interconnect of the scalable accelerator:
// a 2D-mesh static network in the style of the TILE64 STN (paper Sec. IV-C),
// with single-cycle hop latency between adjacent engines, full-crossbar
// switches, and dimension-ordered (X-then-Y) routing. Credit-based flow
// control is approximated by per-link serialization: flows crossing the
// same directed link within a scheduling Round are serialized on it.
package noc

import (
	"fmt"
	"sync"
	"time"
)

// Mesh is a W x H grid of engines. Engine e sits at (e % W, e / W).
// The zero kind is the 2D mesh; NewTorus and NewHTree select the other
// topologies while keeping the same interface (see topology.go).
//
// Meshes must be built with NewMesh, NewTorus or NewHTree: every mesh
// lazily caches a dense all-pairs route table (see routes.go) keyed on
// its construction-time geometry, so W and H must not change afterwards.
// LinkBytes and HopCycles stay free to tune — they price routes but do
// not shape them.
type Mesh struct {
	W, H      int
	LinkBytes int   // bytes a link forwards per cycle (paper port: 8 B)
	HopCycles int64 // latency per hop (paper: 1)
	kind      Kind

	routeOnce sync.Once
	routes    *routeTable
	buildTime time.Duration // wall time of the one-time table build
}

// NewMesh builds a mesh; linkBytes is the per-cycle link bandwidth.
func NewMesh(w, h, linkBytes int) *Mesh {
	if w <= 0 || h <= 0 || linkBytes <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d link %d", w, h, linkBytes))
	}
	return &Mesh{W: w, H: h, LinkBytes: linkBytes, HopCycles: 1}
}

// Engines returns the number of engines on the mesh.
func (m *Mesh) Engines() int { return m.W * m.H }

// Coord returns the (x, y) position of engine e.
func (m *Mesh) Coord(e int) (x, y int) { return e % m.W, e / m.W }

// EngineAt returns the engine index at (x, y).
func (m *Mesh) EngineAt(x, y int) int { return y*m.W + x }

// Hops returns the minimal hop count between engines i and j — the
// D(i,j) of the paper's TransferCost (Manhattan distance on the mesh,
// wrap-aware on the torus, tree distance on the H-tree). It reads the
// dense all-pairs matrix of the route table, so after the first call on
// a mesh it is one array load regardless of topology.
func (m *Mesh) Hops(i, j int) int {
	rt := m.table()
	return int(rt.hops[i*rt.n+j])
}

// hopsDirect computes the hop count arithmetically; buildTable checks the
// route walk against it, and tests use it as an independent reference.
func (m *Mesh) hopsDirect(i, j int) int {
	switch m.kind {
	case KindTorus:
		return m.hopsTorus(i, j)
	case KindHTree:
		return m.hopsHTree(i, j)
	}
	xi, yi := m.Coord(i)
	xj, yj := m.Coord(j)
	return abs(xi-xj) + abs(yi-yj)
}

// Link identifies a directed mesh link from engine From to adjacent
// engine To.
type Link struct{ From, To int }

// Path returns the route from i to j as a sequence of directed links
// (empty when i == j): XY dimension-ordered on the mesh, shorter-way XY
// on the torus, up-over-down through switches on the H-tree.
func (m *Mesh) Path(i, j int) []Link {
	switch m.kind {
	case KindTorus:
		return m.pathTorus(i, j)
	case KindHTree:
		return m.pathHTree(i, j)
	}
	if i == j {
		return nil
	}
	xi, yi := m.Coord(i)
	xj, yj := m.Coord(j)
	path := make([]Link, 0, abs(xi-xj)+abs(yi-yj))
	cur := i
	for x := xi; x != xj; {
		next := x + sign(xj-x)
		ne := m.EngineAt(next, yi)
		path = append(path, Link{From: cur, To: ne})
		cur, x = ne, next
	}
	for y := yi; y != yj; {
		next := y + sign(yj-y)
		ne := m.EngineAt(xj, next)
		path = append(path, Link{From: cur, To: ne})
		cur, y = ne, next
	}
	return path
}

// TransferCycles returns the uncontended latency of moving bytes from i
// to j: wormhole pipeline of hop latency plus serialization on one link.
func (m *Mesh) TransferCycles(i, j int, bytes int64) int64 {
	if i == j || bytes == 0 {
		return 0
	}
	hops := int64(m.Hops(i, j))
	return hops*m.HopCycles + ceilDiv(bytes, int64(m.LinkBytes))
}

// Traffic accumulates the flows of one scheduling Round and estimates the
// Round's communication time under per-link contention. Link state is a
// link-ID-indexed slice over the mesh's route table, so recording a flow
// allocates nothing.
type Traffic struct {
	mesh     *Mesh
	linkLoad []int64 // bytes crossing each directed link, by link ID
	byteHops int64   // Σ bytes x hops, the energy-relevant volume
	maxHops  int
	flows    int
}

// NewTraffic returns an empty per-Round traffic accumulator.
func (m *Mesh) NewTraffic() *Traffic {
	return &Traffic{mesh: m, linkLoad: make([]int64, m.NumLinks())}
}

// Reset clears the accumulator for reuse across Rounds.
func (t *Traffic) Reset() {
	clear(t.linkLoad)
	t.byteHops, t.maxHops, t.flows = 0, 0, 0
}

// Add records a flow of bytes from engine src to engine dst.
func (t *Traffic) Add(src, dst int, bytes int64) {
	if src == dst || bytes == 0 {
		return
	}
	route := t.mesh.RouteIDs(src, dst)
	for _, id := range route {
		t.linkLoad[id] += bytes
	}
	h := len(route)
	t.byteHops += bytes * int64(h)
	if h > t.maxHops {
		t.maxHops = h
	}
	t.flows++
}

// ByteHops returns the Σ bytes x hops volume (drives NoC energy).
func (t *Traffic) ByteHops() int64 { return t.byteHops }

// Flows returns the number of distinct flows recorded.
func (t *Traffic) Flows() int { return t.flows }

// FinishCycles estimates when all recorded flows complete, assuming they
// start together: the bottleneck link's serialized load plus the longest
// route's hop latency.
func (t *Traffic) FinishCycles() int64 {
	var worst int64
	for _, load := range t.linkLoad {
		if c := ceilDiv(load, int64(t.mesh.LinkBytes)); c > worst {
			worst = c
		}
	}
	if worst == 0 {
		return 0
	}
	return worst + int64(t.maxHops)*t.mesh.HopCycles
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func sign(a int) int {
	if a < 0 {
		return -1
	}
	return 1
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
