package noc

import (
	"testing"
	"testing/quick"
)

func TestTorusWraparound(t *testing.T) {
	m := NewTorus(8, 8, 8)
	// Opposite corners are 2 hops on a torus (one wrap per dimension).
	if got := m.Hops(0, m.EngineAt(7, 7)); got != 2 {
		t.Errorf("corner-to-corner torus hops = %d, want 2", got)
	}
	// Half-way around is the worst case: 8 hops.
	if got := m.Hops(0, m.EngineAt(4, 4)); got != 8 {
		t.Errorf("half-way torus hops = %d, want 8", got)
	}
	// Torus never exceeds mesh distance.
	mesh := NewMesh(8, 8, 8)
	for i := 0; i < 64; i += 7 {
		for j := 0; j < 64; j += 5 {
			if m.Hops(i, j) > mesh.Hops(i, j) {
				t.Errorf("torus hops(%d,%d)=%d > mesh %d", i, j, m.Hops(i, j), mesh.Hops(i, j))
			}
		}
	}
}

func TestTorusPathContinuity(t *testing.T) {
	m := NewTorus(5, 3, 8)
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw) % m.Engines()
		j := int(jRaw) % m.Engines()
		path := m.Path(i, j)
		if len(path) != m.Hops(i, j) {
			return false
		}
		cur := i
		for _, l := range path {
			if l.From != cur {
				return false
			}
			// Each link connects torus-adjacent engines.
			if m.Hops(l.From, l.To) != 1 {
				return false
			}
			cur = l.To
		}
		return i == j || cur == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHTreeDistances(t *testing.T) {
	m := NewHTree(16, 8)
	// Leaves 0..3 share a first-level switch: distance 2.
	if got := m.Hops(0, 3); got != 2 {
		t.Errorf("Hops(0,3) = %d, want 2", got)
	}
	// Leaves in different quads go through the root: distance 4 on a
	// 16-leaf 4-ary tree.
	if got := m.Hops(0, 15); got != 4 {
		t.Errorf("Hops(0,15) = %d, want 4", got)
	}
	if got := m.Hops(5, 5); got != 0 {
		t.Errorf("self distance = %d", got)
	}
}

func TestHTreePathEndsAtDestination(t *testing.T) {
	m := NewHTree(16, 8)
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw) % 16
		j := int(jRaw) % 16
		path := m.Path(i, j)
		if i == j {
			return len(path) == 0
		}
		if len(path) != m.Hops(i, j) {
			return false
		}
		cur := i
		for _, l := range path {
			if l.From != cur {
				return false
			}
			cur = l.To
		}
		return cur == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHTreeRootContention(t *testing.T) {
	// Cross-quad flows share the root switch links — the H-tree's known
	// bisection bottleneck. Two same-quad flows must not contend.
	m := NewHTree(16, 8)
	tr := m.NewTraffic()
	tr.Add(0, 1, 800)
	tr.Add(2, 3, 800)
	sameQuad := tr.FinishCycles()
	tr2 := m.NewTraffic()
	tr2.Add(0, 15, 800)
	tr2.Add(1, 14, 800)
	crossQuad := tr2.FinishCycles()
	if crossQuad <= sameQuad {
		t.Errorf("cross-quad flows (%d cycles) should exceed same-quad (%d)", crossQuad, sameQuad)
	}
}

func TestKindString(t *testing.T) {
	if KindMesh.String() != "mesh" || KindTorus.String() != "torus" || KindHTree.String() != "htree" {
		t.Error("kind names wrong")
	}
	if NewTorus(2, 2, 8).Kind() != KindTorus {
		t.Error("torus kind not set")
	}
	if NewHTree(7, 8).Kind() != KindHTree {
		t.Error("htree kind not set")
	}
	// n rounded up to a square power of four side.
	if m := NewHTree(7, 8); m.Engines() < 7 {
		t.Errorf("htree engines = %d < requested", m.Engines())
	}
}

// Property: all three topologies produce metric-consistent Hops
// (symmetric, zero iff equal) and Path lengths equal to Hops.
func TestTopologyMetricProperty(t *testing.T) {
	tops := []*Mesh{NewMesh(4, 4, 8), NewTorus(4, 4, 8), NewHTree(16, 8)}
	f := func(iRaw, jRaw, kRaw uint8) bool {
		for _, m := range tops {
			i := int(iRaw) % 16
			j := int(jRaw) % 16
			if m.Hops(i, j) != m.Hops(j, i) {
				return false
			}
			if (m.Hops(i, j) == 0) != (i == j) {
				return false
			}
			if len(m.Path(i, j)) != m.Hops(i, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
