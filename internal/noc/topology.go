package noc

import "fmt"

// Kind selects the interconnect topology. The paper's evaluation uses the
// 2D mesh (TILE64 STN), and names torus and H-tree as the other common
// scalable-accelerator interconnects (Sec. IV-C); all three are modeled
// so the mapping stage and the topology ablation bench can compare them.
type Kind int

const (
	// KindMesh is the 2D mesh with XY dimension-ordered routing.
	KindMesh Kind = iota
	// KindTorus adds wrap-around links in both dimensions; routing takes
	// the shorter direction per dimension.
	KindTorus
	// KindHTree connects engines as leaves of a balanced 4-ary tree of
	// switches (internal nodes are addressed above the engine range).
	KindHTree
)

// String names the topology.
func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	case KindHTree:
		return "htree"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NewTorus builds a W x H torus. All Mesh methods apply; routes wrap
// around whenever the wrapped direction is shorter.
func NewTorus(w, h, linkBytes int) *Mesh {
	m := NewMesh(w, h, linkBytes)
	m.kind = KindTorus
	return m
}

// NewHTree builds an H-tree (hierarchical 4-ary switch tree) over n
// engines; n is rounded up to a power of four. Engine coordinates keep a
// square layout for zig-zag placement, but distances and routes follow
// the tree.
func NewHTree(n, linkBytes int) *Mesh {
	side := 1
	for side*side < n {
		side *= 2
	}
	m := NewMesh(side, side, linkBytes)
	m.kind = KindHTree
	return m
}

// Kind reports the mesh's topology.
func (m *Mesh) Kind() Kind { return m.kind }

// torusDelta returns the signed per-step move and hop count along one
// dimension of size n from a to b, taking the shorter way around.
func torusDelta(a, b, n int) (step, hops int) {
	fwd := (b - a + n) % n
	bwd := (a - b + n) % n
	if fwd <= bwd {
		return 1, fwd
	}
	return -1, bwd
}

// hopsTorus is the wrap-aware Manhattan distance.
func (m *Mesh) hopsTorus(i, j int) int {
	xi, yi := m.Coord(i)
	xj, yj := m.Coord(j)
	_, hx := torusDelta(xi, xj, m.W)
	_, hy := torusDelta(yi, yj, m.H)
	return hx + hy
}

// pathTorus routes X-then-Y taking the shorter direction per dimension.
func (m *Mesh) pathTorus(i, j int) []Link {
	if i == j {
		return nil
	}
	xi, yi := m.Coord(i)
	xj, yj := m.Coord(j)
	var path []Link
	cur := i
	sx, hx := torusDelta(xi, xj, m.W)
	x := xi
	for s := 0; s < hx; s++ {
		x = (x + sx + m.W) % m.W
		ne := m.EngineAt(x, yi)
		path = append(path, Link{From: cur, To: ne})
		cur = ne
	}
	sy, hy := torusDelta(yi, yj, m.H)
	y := yi
	for s := 0; s < hy; s++ {
		y = (y + sy + m.H) % m.H
		ne := m.EngineAt(xj, y)
		path = append(path, Link{From: cur, To: ne})
		cur = ne
	}
	return path
}

// H-tree addressing: leaves are engines 0..n-1 (in zig-zag-compatible
// row-major order); internal switch nodes are numbered from n upward,
// level by level toward the root. Each switch has up to four children.

// htreePathUp lists the switch nodes from a leaf to the root.
func (m *Mesh) htreePathUp(leaf int) []int {
	n := m.Engines()
	var up []int
	idx := leaf
	width := n
	base := n
	for width > 1 {
		idx = idx / 4
		width = (width + 3) / 4
		up = append(up, base+idx)
		base += width
		if width == 1 {
			break
		}
	}
	return up
}

// hopsHTree is the tree distance between two leaves.
func (m *Mesh) hopsHTree(i, j int) int {
	if i == j {
		return 0
	}
	ui, uj := m.htreePathUp(i), m.htreePathUp(j)
	// Find the lowest common switch.
	for d := 0; d < len(ui); d++ {
		if ui[d] == uj[d] {
			return 2 * (d + 1)
		}
	}
	return 2 * len(ui)
}

// pathHTree routes leaf i up to the lowest common switch and down to j.
func (m *Mesh) pathHTree(i, j int) []Link {
	if i == j {
		return nil
	}
	ui, uj := m.htreePathUp(i), m.htreePathUp(j)
	lca := len(ui) - 1
	for d := 0; d < len(ui); d++ {
		if ui[d] == uj[d] {
			lca = d
			break
		}
	}
	var path []Link
	cur := i
	for d := 0; d <= lca; d++ {
		path = append(path, Link{From: cur, To: ui[d]})
		cur = ui[d]
	}
	for d := lca - 1; d >= 0; d-- {
		path = append(path, Link{From: cur, To: uj[d]})
		cur = uj[d]
	}
	path = append(path, Link{From: cur, To: j})
	return path
}
