package noc

import (
	"fmt"
	"time"
)

// routeTable is the dense all-pairs routing state of a Mesh, built lazily
// once per mesh (mesh, torus and H-tree alike) and shared by every
// consumer afterwards. Directed links get stable integer IDs 0..L-1 in
// the order they are first traversed when walking routes (i-major, then
// j), so the table — and everything derived from it — is deterministic.
//
// The table is what makes the simulator and mapper hot paths allocation
// free: routes become shared []int32 slices instead of per-call []Link
// garbage, link state becomes ID-indexed slices instead of map[Link]
// hashing, and hop distances become one array load.
type routeTable struct {
	n        int     // engines (table side)
	numLinks int     // distinct directed links across all routes
	linkOf   []Link  // link ID -> directed link
	hops     []int32 // n*n minimal hop counts (hops[i*n+j])
	off      []int32 // n*n+1 offsets into ids, route (i,j) = ids[off[i*n+j]:off[i*n+j+1]]
	ids      []int32 // all routes concatenated as link IDs
}

// table returns the mesh's route table, building it on first use. Safe
// for concurrent use: parallel sweeps share one mesh across sim runs.
func (m *Mesh) table() *routeTable {
	m.routeOnce.Do(m.buildTable)
	return m.routes
}

func (m *Mesh) buildTable() {
	start := time.Now()
	defer func() { m.buildTime = time.Since(start) }()
	n := m.Engines()
	rt := &routeTable{
		n:    n,
		hops: make([]int32, n*n),
		off:  make([]int32, n*n+1),
	}
	idOf := make(map[Link]int32)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			path := m.Path(i, j)
			if len(path) != m.hopsDirect(i, j) {
				panic(fmt.Sprintf("noc: route %d->%d has %d links, want %d hops",
					i, j, len(path), m.hopsDirect(i, j)))
			}
			rt.hops[i*n+j] = int32(len(path))
			for _, l := range path {
				id, ok := idOf[l]
				if !ok {
					id = int32(len(rt.linkOf))
					idOf[l] = id
					rt.linkOf = append(rt.linkOf, l)
				}
				rt.ids = append(rt.ids, id)
			}
			rt.off[i*n+j+1] = int32(len(rt.ids))
		}
	}
	rt.numLinks = len(rt.linkOf)
	m.routes = rt
}

// NumLinks returns the number of distinct directed links any route on the
// mesh traverses — the index space of RouteIDs and Traffic link state.
func (m *Mesh) NumLinks() int { return m.table().numLinks }

// RouteBuildTime returns how long the all-pairs route table took to
// build, forcing the build if it has not happened yet. The one-time cost
// is the quantity the metrics layer reports as noc_route_build_seconds.
func (m *Mesh) RouteBuildTime() time.Duration {
	m.table()
	return m.buildTime
}

// RouteIDs returns the route from i to j as link IDs into 0..NumLinks()-1.
// The slice aliases the shared route table: callers must not modify it.
// It is the allocation-free counterpart of Path.
func (m *Mesh) RouteIDs(i, j int) []int32 {
	rt := m.table()
	k := i*rt.n + j
	return rt.ids[rt.off[k]:rt.off[k+1]]
}

// LinkByID returns the directed link with the given ID.
func (m *Mesh) LinkByID(id int32) Link { return m.table().linkOf[id] }

// HopsRow returns the dense hop-count row from engine i to every engine.
// The slice aliases the route table: callers must not modify it. Hot
// loops that price many destinations against one source fetch the row
// once instead of paying the table lookup per pair.
func (m *Mesh) HopsRow(i int) []int32 {
	rt := m.table()
	return rt.hops[i*rt.n : (i+1)*rt.n]
}
