package noc

import (
	"testing"
	"testing/quick"
)

func TestHopsManhattan(t *testing.T) {
	m := NewMesh(8, 8, 8)
	cases := []struct {
		i, j, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 8, 1},
		{0, 9, 2},
		{0, 63, 14},
		{7, 56, 14},
	}
	for _, c := range cases {
		if got := m.Hops(c.i, c.j); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestPathIsXYOrdered(t *testing.T) {
	m := NewMesh(4, 4, 8)
	// From (0,0) to (2,3): X moves first.
	path := m.Path(0, m.EngineAt(2, 3))
	if len(path) != 5 {
		t.Fatalf("path length = %d, want 5", len(path))
	}
	// First two links travel along y=0.
	for i := 0; i < 2; i++ {
		_, y := m.Coord(path[i].To)
		if y != 0 {
			t.Errorf("link %d ends at row %d, want 0 (XY routing)", i, y)
		}
	}
	// Remaining links travel along x=2.
	for i := 2; i < 5; i++ {
		x, _ := m.Coord(path[i].To)
		if x != 2 {
			t.Errorf("link %d ends at col %d, want 2", i, x)
		}
	}
}

func TestPathContinuity(t *testing.T) {
	m := NewMesh(5, 3, 8)
	f := func(iRaw, jRaw uint8) bool {
		i := int(iRaw) % m.Engines()
		j := int(jRaw) % m.Engines()
		path := m.Path(i, j)
		if len(path) != m.Hops(i, j) {
			return false
		}
		cur := i
		for _, l := range path {
			if l.From != cur || m.Hops(l.From, l.To) != 1 {
				return false
			}
			cur = l.To
		}
		return i == j || cur == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransferCycles(t *testing.T) {
	m := NewMesh(4, 4, 8)
	if got := m.TransferCycles(0, 0, 1000); got != 0 {
		t.Errorf("self transfer = %d, want 0", got)
	}
	// 3 hops + 1024/8 serialization.
	if got, want := m.TransferCycles(0, 3, 1024), int64(3+128); got != want {
		t.Errorf("TransferCycles = %d, want %d", got, want)
	}
}

func TestTrafficContention(t *testing.T) {
	m := NewMesh(4, 1, 8)
	tr := m.NewTraffic()
	// Two flows share link 0->1: 800 and 800 bytes serialize.
	tr.Add(0, 2, 800)
	tr.Add(0, 3, 800)
	want := int64(1600/8) + 3 // bottleneck link + max hops
	if got := tr.FinishCycles(); got != want {
		t.Errorf("FinishCycles = %d, want %d", got, want)
	}
	if got, want := tr.ByteHops(), int64(800*2+800*3); got != want {
		t.Errorf("ByteHops = %d, want %d", got, want)
	}
	if tr.Flows() != 2 {
		t.Errorf("Flows = %d, want 2", tr.Flows())
	}
}

func TestDisjointFlowsDontContend(t *testing.T) {
	m := NewMesh(4, 4, 8)
	tr := m.NewTraffic()
	// Opposite corners moving to adjacent engines: no shared links.
	tr.Add(0, 1, 640)
	tr.Add(15, 14, 640)
	want := int64(640/8) + 1
	if got := tr.FinishCycles(); got != want {
		t.Errorf("FinishCycles = %d, want %d (no contention)", got, want)
	}
}

func TestEmptyTraffic(t *testing.T) {
	m := NewMesh(2, 2, 8)
	tr := m.NewTraffic()
	tr.Add(1, 1, 4096) // self-flow ignored
	if tr.FinishCycles() != 0 || tr.ByteHops() != 0 || tr.Flows() != 0 {
		t.Error("self-flow should be free")
	}
}

// TestRouteTableMatchesPath pins the dense route table to the allocating
// Path walk on all three topologies: same links, same order, same hop
// counts, and hop counts equal to the arithmetic reference.
func TestRouteTableMatchesPath(t *testing.T) {
	for _, m := range []*Mesh{NewMesh(4, 3, 8), NewTorus(4, 4, 8), NewHTree(16, 8)} {
		n := m.Engines()
		if m.NumLinks() <= 0 {
			t.Fatalf("%v: NumLinks = %d", m.Kind(), m.NumLinks())
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				path := m.Path(i, j)
				ids := m.RouteIDs(i, j)
				if len(path) != len(ids) {
					t.Fatalf("%v: route %d->%d: %d ids, %d links", m.Kind(), i, j, len(ids), len(path))
				}
				for k, id := range ids {
					if id < 0 || int(id) >= m.NumLinks() {
						t.Fatalf("%v: link ID %d out of range [0,%d)", m.Kind(), id, m.NumLinks())
					}
					if m.LinkByID(id) != path[k] {
						t.Fatalf("%v: route %d->%d link %d: ID %d = %v, want %v",
							m.Kind(), i, j, k, id, m.LinkByID(id), path[k])
					}
				}
				if m.Hops(i, j) != len(path) || m.Hops(i, j) != m.hopsDirect(i, j) {
					t.Fatalf("%v: Hops(%d,%d) = %d, path %d, direct %d",
						m.Kind(), i, j, m.Hops(i, j), len(path), m.hopsDirect(i, j))
				}
			}
		}
	}
}

// TestRouteTableConcurrentBuild exercises the lazy build from many
// goroutines (parallel sweeps share meshes across sim runs); run with
// -race in CI.
func TestRouteTableConcurrentBuild(t *testing.T) {
	m := NewTorus(4, 4, 8)
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			s := 0
			for i := 0; i < m.Engines(); i++ {
				s += len(m.RouteIDs(i, (i*7+3)%m.Engines())) + m.Hops(0, i)
			}
			done <- s
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent route walks disagree: %d vs %d", got, first)
		}
	}
}

// TestTrafficReset pins Reset to a fully cleared accumulator.
func TestTrafficReset(t *testing.T) {
	m := NewMesh(4, 1, 8)
	tr := m.NewTraffic()
	tr.Add(0, 3, 800)
	tr.Reset()
	if tr.FinishCycles() != 0 || tr.ByteHops() != 0 || tr.Flows() != 0 {
		t.Error("Reset left residual traffic state")
	}
	tr.Add(0, 2, 800)
	fresh := m.NewTraffic()
	fresh.Add(0, 2, 800)
	if tr.FinishCycles() != fresh.FinishCycles() || tr.ByteHops() != fresh.ByteHops() {
		t.Error("reused accumulator differs from a fresh one")
	}
}

// Property: Hops is symmetric and satisfies the triangle inequality.
func TestHopsMetricProperty(t *testing.T) {
	m := NewMesh(8, 8, 8)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw)%64, int(bRaw)%64, int(cRaw)%64
		if m.Hops(a, b) != m.Hops(b, a) {
			return false
		}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRouteBuildTimeRecorded(t *testing.T) {
	m := NewMesh(4, 4, 8)
	d := m.RouteBuildTime()
	if d <= 0 {
		t.Fatalf("RouteBuildTime = %v, want > 0", d)
	}
	if again := m.RouteBuildTime(); again != d {
		t.Errorf("RouteBuildTime changed across calls: %v then %v", d, again)
	}
}
