// Package dram models the off-chip memory of the accelerator: a 4-layer
// HBM stack with 4 GB capacity and 128 GB/s peak bandwidth (paper Sec.
// V-A). It stands in for the Ramulator traces the paper feeds with access
// streams: the simulator only needs request completion times under
// bandwidth contention, which a channel-interleaved queue model provides.
package dram

import "fmt"

// Config describes the HBM stack.
type Config struct {
	CapacityBytes  int64   // total capacity (4 GB)
	PeakGBps       float64 // aggregate peak bandwidth (128 GB/s)
	Channels       int     // independent channels (HBM: 8)
	AccessLatency  int64   // fixed per-request latency in engine cycles
	EngineClockMHz float64 // clock used to convert bandwidth to bytes/cycle
}

// Default returns the paper's HBM configuration at a 500 MHz engine clock.
func Default() Config {
	return Config{
		CapacityBytes:  4 << 30,
		PeakGBps:       128,
		Channels:       8,
		AccessLatency:  60, // ~120 ns row activate + CAS at 500 MHz
		EngineClockMHz: 500,
	}
}

// BytesPerCycle returns the aggregate bandwidth in bytes per engine cycle.
func (c Config) BytesPerCycle() float64 {
	return c.PeakGBps * 1e3 / c.EngineClockMHz // GB/s / MHz = bytes/cycle x 1e3
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 || c.PeakGBps <= 0 || c.Channels <= 0 || c.EngineClockMHz <= 0 {
		return fmt.Errorf("dram: invalid config %+v", c)
	}
	return nil
}

// HBM is a stateful bandwidth/queue model. Requests are assigned to the
// least-loaded channel (idealized address interleaving) and served at the
// per-channel bandwidth; a request issued while channels are busy waits.
type HBM struct {
	cfg          Config
	chanFree     []int64 // absolute cycle at which each channel is next free
	bytesRead    int64
	bytesWritten int64
}

// New returns an idle HBM model.
func New(cfg Config) *HBM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &HBM{cfg: cfg, chanFree: make([]int64, cfg.Channels)}
}

// Config returns the model's configuration.
func (h *HBM) Config() Config { return h.cfg }

// perChannelBytesPerCycle is the bandwidth of one channel.
func (h *HBM) perChannelBytesPerCycle() float64 {
	return h.cfg.BytesPerCycle() / float64(h.cfg.Channels)
}

// Read issues a read of n bytes at absolute cycle `now` and returns the
// completion cycle.
func (h *HBM) Read(now, n int64) int64 {
	h.bytesRead += n
	return h.serve(now, n)
}

// Write issues a write of n bytes at absolute cycle `now` and returns the
// completion cycle.
func (h *HBM) Write(now, n int64) int64 {
	h.bytesWritten += n
	return h.serve(now, n)
}

func (h *HBM) serve(now, n int64) int64 {
	if n <= 0 {
		return now
	}
	// Pick the earliest-free channel.
	best := 0
	for i, f := range h.chanFree {
		if f < h.chanFree[best] {
			best = i
		}
	}
	start := now
	if h.chanFree[best] > start {
		start = h.chanFree[best]
	}
	xfer := int64(float64(n)/h.perChannelBytesPerCycle()) + 1
	done := start + h.cfg.AccessLatency + xfer
	h.chanFree[best] = done
	return done
}

// StreamCycles returns the time to move n bytes at full aggregate
// bandwidth — the lower bound used for coarse round-level accounting.
func (h *HBM) StreamCycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return h.cfg.AccessLatency + int64(float64(n)/h.cfg.BytesPerCycle()) + 1
}

// Traffic returns cumulative bytes read and written.
func (h *HBM) Traffic() (read, written int64) { return h.bytesRead, h.bytesWritten }

// Reset clears all queue state and counters.
func (h *HBM) Reset() {
	for i := range h.chanFree {
		h.chanFree[i] = 0
	}
	h.bytesRead, h.bytesWritten = 0, 0
}
