// Package dram models the off-chip memory of the accelerator: a 4-layer
// HBM stack with 4 GB capacity and 128 GB/s peak bandwidth (paper Sec.
// V-A). It stands in for the Ramulator traces the paper feeds with access
// streams: the simulator only needs request completion times under
// bandwidth contention, which a channel-interleaved queue model provides.
package dram

import "fmt"

// Config describes the HBM stack.
type Config struct {
	CapacityBytes  int64   // total capacity (4 GB)
	PeakGBps       float64 // aggregate peak bandwidth (128 GB/s)
	Channels       int     // independent channels (HBM: 8)
	AccessLatency  int64   // fixed per-request latency in engine cycles
	EngineClockMHz float64 // clock used to convert bandwidth to bytes/cycle
	// RowBytes is the DRAM row-buffer size used for row hit/miss
	// accounting (default 2 KB when zero). It prices nothing — requests
	// are streaming, so the timing model already amortizes activations
	// into AccessLatency — but the hit/miss split is the observability
	// signal Ramulator would report for the same access stream.
	RowBytes int64
}

// Default returns the paper's HBM configuration at a 500 MHz engine clock.
func Default() Config {
	return Config{
		CapacityBytes:  4 << 30,
		PeakGBps:       128,
		Channels:       8,
		AccessLatency:  60, // ~120 ns row activate + CAS at 500 MHz
		EngineClockMHz: 500,
		RowBytes:       2 << 10,
	}
}

// burstBytes is the transfer granularity of the hit/miss accounting: one
// 32 B access per burst, the HBM pseudo-channel burst length.
const burstBytes = 32

// rowBytes returns the effective row-buffer size.
func (c Config) rowBytes() int64 {
	if c.RowBytes > 0 {
		return c.RowBytes
	}
	return 2 << 10
}

// BytesPerCycle returns the aggregate bandwidth in bytes per engine cycle.
func (c Config) BytesPerCycle() float64 {
	return c.PeakGBps * 1e3 / c.EngineClockMHz // GB/s / MHz = bytes/cycle x 1e3
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 || c.PeakGBps <= 0 || c.Channels <= 0 || c.EngineClockMHz <= 0 {
		return fmt.Errorf("dram: invalid config %+v", c)
	}
	if c.RowBytes < 0 {
		return fmt.Errorf("dram: negative RowBytes %d", c.RowBytes)
	}
	return nil
}

// HBM is a stateful bandwidth/queue model. Requests are assigned to the
// least-loaded channel (idealized address interleaving) and served at the
// per-channel bandwidth; a request issued while channels are busy waits.
type HBM struct {
	cfg          Config
	chanFree     []int64 // absolute cycle at which each channel is next free
	bytesRead    int64
	bytesWritten int64
	stats        Stats
}

// Stats is the HBM model's cumulative accounting — the quantities a
// Ramulator trace of the same access stream would expose. Row hits and
// misses follow an open-row streaming model: a request of n bytes makes
// ceil(n/burstBytes) accesses of which ceil(n/RowBytes) activate a new
// row (misses) and the rest stream from the open row (hits).
type Stats struct {
	Reads           int64 // read requests served
	Writes          int64 // write requests served
	RowHits         int64
	RowMisses       int64
	QueueWaitCycles int64 // Σ cycles requests waited for a free channel
	QueueDepthPeak  int64 // most channels simultaneously busy at any issue
}

// RowHitRate returns RowHits/(RowHits+RowMisses), 0 when idle.
func (s Stats) RowHitRate() float64 {
	if s.RowHits+s.RowMisses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.RowHits+s.RowMisses)
}

// New returns an idle HBM model.
func New(cfg Config) *HBM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &HBM{cfg: cfg, chanFree: make([]int64, cfg.Channels)}
}

// Config returns the model's configuration.
func (h *HBM) Config() Config { return h.cfg }

// perChannelBytesPerCycle is the bandwidth of one channel.
func (h *HBM) perChannelBytesPerCycle() float64 {
	return h.cfg.BytesPerCycle() / float64(h.cfg.Channels)
}

// Read issues a read of n bytes at absolute cycle `now` and returns the
// completion cycle.
func (h *HBM) Read(now, n int64) int64 {
	h.bytesRead += n
	if n > 0 {
		h.stats.Reads++
	}
	return h.serve(now, n)
}

// Write issues a write of n bytes at absolute cycle `now` and returns the
// completion cycle.
func (h *HBM) Write(now, n int64) int64 {
	h.bytesWritten += n
	if n > 0 {
		h.stats.Writes++
	}
	return h.serve(now, n)
}

func (h *HBM) serve(now, n int64) int64 {
	if n <= 0 {
		return now
	}
	// Row hit/miss accounting (timing is unaffected; see Stats).
	bursts := (n + burstBytes - 1) / burstBytes
	misses := (n + h.cfg.rowBytes() - 1) / h.cfg.rowBytes()
	if misses > bursts {
		misses = bursts
	}
	h.stats.RowMisses += misses
	h.stats.RowHits += bursts - misses
	// Queue depth at issue: channels still busy at `now`.
	depth := int64(0)
	for _, f := range h.chanFree {
		if f > now {
			depth++
		}
	}
	if depth > h.stats.QueueDepthPeak {
		h.stats.QueueDepthPeak = depth
	}
	// Pick the earliest-free channel.
	best := 0
	for i, f := range h.chanFree {
		if f < h.chanFree[best] {
			best = i
		}
	}
	start := now
	if h.chanFree[best] > start {
		start = h.chanFree[best]
		h.stats.QueueWaitCycles += start - now
	}
	xfer := int64(float64(n)/h.perChannelBytesPerCycle()) + 1
	done := start + h.cfg.AccessLatency + xfer
	h.chanFree[best] = done
	return done
}

// StreamCycles returns the time to move n bytes at full aggregate
// bandwidth — the lower bound used for coarse round-level accounting.
func (h *HBM) StreamCycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return h.cfg.AccessLatency + int64(float64(n)/h.cfg.BytesPerCycle()) + 1
}

// Traffic returns cumulative bytes read and written.
func (h *HBM) Traffic() (read, written int64) { return h.bytesRead, h.bytesWritten }

// Stats returns the cumulative request accounting.
func (h *HBM) Stats() Stats { return h.stats }

// Reset clears all queue state and counters.
func (h *HBM) Reset() {
	for i := range h.chanFree {
		h.chanFree[i] = 0
	}
	h.bytesRead, h.bytesWritten = 0, 0
	h.stats = Stats{}
}
