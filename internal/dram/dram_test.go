package dram

import (
	"testing"
	"testing/quick"
)

func TestBytesPerCycle(t *testing.T) {
	cfg := Default()
	// 128 GB/s at 500 MHz = 256 B/cycle.
	if got := cfg.BytesPerCycle(); got != 256 {
		t.Errorf("BytesPerCycle = %v, want 256", got)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	h := New(Default())
	// One channel serves 32 B/cycle; 3200 bytes = 100 cycles + latency.
	done := h.Read(0, 3200)
	want := Default().AccessLatency + 100 + 1
	if done != want {
		t.Errorf("Read completion = %d, want %d", done, want)
	}
}

func TestChannelParallelism(t *testing.T) {
	h := New(Default())
	// 8 equal requests at t=0 spread over 8 channels: all finish at the
	// single-request time.
	var worst int64
	for i := 0; i < 8; i++ {
		if d := h.Read(0, 3200); d > worst {
			worst = d
		}
	}
	single := New(Default()).Read(0, 3200)
	if worst != single {
		t.Errorf("8 parallel requests finish at %d, want %d", worst, single)
	}
	// A 9th request must queue behind one of them.
	if d := h.Read(0, 3200); d <= single {
		t.Errorf("9th request finished at %d, want > %d (queued)", d, single)
	}
}

func TestTrafficAccounting(t *testing.T) {
	h := New(Default())
	h.Read(0, 1000)
	h.Write(0, 500)
	r, w := h.Traffic()
	if r != 1000 || w != 500 {
		t.Errorf("Traffic = %d/%d, want 1000/500", r, w)
	}
	h.Reset()
	if r, w := h.Traffic(); r != 0 || w != 0 {
		t.Errorf("Traffic after Reset = %d/%d", r, w)
	}
}

func TestZeroByteRequestFree(t *testing.T) {
	h := New(Default())
	if d := h.Read(42, 0); d != 42 {
		t.Errorf("zero-byte read completes at %d, want 42", d)
	}
}

func TestStreamCycles(t *testing.T) {
	h := New(Default())
	if got := h.StreamCycles(0); got != 0 {
		t.Errorf("StreamCycles(0) = %d", got)
	}
	// 256 KB at 256 B/cycle = 1024 cycles + latency + 1.
	if got, want := h.StreamCycles(256<<10), Default().AccessLatency+1024+1; got != want {
		t.Errorf("StreamCycles = %d, want %d", got, want)
	}
}

// Property: completion times never precede issue time and are monotone in
// request size.
func TestServeMonotone(t *testing.T) {
	f := func(nRaw uint16, nowRaw uint8) bool {
		h := New(Default())
		now := int64(nowRaw)
		n := int64(nRaw) + 1
		d1 := h.Read(now, n)
		h2 := New(Default())
		d2 := h2.Read(now, n*2)
		return d1 > now && d2 >= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := Default()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 channels accepted")
	}
	bad = Default()
	bad.RowBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative RowBytes accepted")
	}
}

func TestRowHitMissAccounting(t *testing.T) {
	h := New(Default())
	// One 2 KB row = 64 bursts of 32 B: reading exactly one row is 1
	// activation (miss) + 63 open-row hits.
	h.Read(0, 2<<10)
	st := h.Stats()
	if st.Reads != 1 || st.RowMisses != 1 || st.RowHits != 63 {
		t.Errorf("one-row read stats = %+v, want 1 read, 1 miss, 63 hits", st)
	}
	// A 4-row streaming read activates 4 rows.
	h.Read(0, 8<<10)
	st = h.Stats()
	if st.RowMisses != 5 {
		t.Errorf("RowMisses = %d, want 5", st.RowMisses)
	}
	if got, want := st.RowHitRate(), float64(st.RowHits)/float64(st.RowHits+st.RowMisses); got != want {
		t.Errorf("RowHitRate = %v, want %v", got, want)
	}
	// A sub-burst request is a single miss, never negative hits.
	h2 := New(Default())
	h2.Read(0, 8)
	if st := h2.Stats(); st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("tiny read stats = %+v", st)
	}
}

func TestQueueStats(t *testing.T) {
	h := New(Default())
	// Saturate all 8 channels, then one more request must wait.
	for i := 0; i < 8; i++ {
		h.Read(0, 3200)
	}
	if st := h.Stats(); st.QueueWaitCycles != 0 {
		t.Errorf("parallel requests waited %d cycles", st.QueueWaitCycles)
	}
	h.Read(0, 3200)
	st := h.Stats()
	if st.QueueWaitCycles <= 0 {
		t.Error("queued request recorded no wait")
	}
	if st.QueueDepthPeak != 8 {
		t.Errorf("QueueDepthPeak = %d, want 8", st.QueueDepthPeak)
	}
	h.Reset()
	if st := h.Stats(); st != (Stats{}) {
		t.Errorf("stats after Reset = %+v", st)
	}
}

func TestRowBytesZeroDefaults(t *testing.T) {
	cfg := Default()
	cfg.RowBytes = 0 // legacy configs predate the field
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	h := New(cfg)
	h.Read(0, 2<<10)
	if st := h.Stats(); st.RowMisses != 1 {
		t.Errorf("zero RowBytes: misses = %d, want 1 (2 KB default)", st.RowMisses)
	}
}
