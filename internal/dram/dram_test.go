package dram

import (
	"testing"
	"testing/quick"
)

func TestBytesPerCycle(t *testing.T) {
	cfg := Default()
	// 128 GB/s at 500 MHz = 256 B/cycle.
	if got := cfg.BytesPerCycle(); got != 256 {
		t.Errorf("BytesPerCycle = %v, want 256", got)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	h := New(Default())
	// One channel serves 32 B/cycle; 3200 bytes = 100 cycles + latency.
	done := h.Read(0, 3200)
	want := Default().AccessLatency + 100 + 1
	if done != want {
		t.Errorf("Read completion = %d, want %d", done, want)
	}
}

func TestChannelParallelism(t *testing.T) {
	h := New(Default())
	// 8 equal requests at t=0 spread over 8 channels: all finish at the
	// single-request time.
	var worst int64
	for i := 0; i < 8; i++ {
		if d := h.Read(0, 3200); d > worst {
			worst = d
		}
	}
	single := New(Default()).Read(0, 3200)
	if worst != single {
		t.Errorf("8 parallel requests finish at %d, want %d", worst, single)
	}
	// A 9th request must queue behind one of them.
	if d := h.Read(0, 3200); d <= single {
		t.Errorf("9th request finished at %d, want > %d (queued)", d, single)
	}
}

func TestTrafficAccounting(t *testing.T) {
	h := New(Default())
	h.Read(0, 1000)
	h.Write(0, 500)
	r, w := h.Traffic()
	if r != 1000 || w != 500 {
		t.Errorf("Traffic = %d/%d, want 1000/500", r, w)
	}
	h.Reset()
	if r, w := h.Traffic(); r != 0 || w != 0 {
		t.Errorf("Traffic after Reset = %d/%d", r, w)
	}
}

func TestZeroByteRequestFree(t *testing.T) {
	h := New(Default())
	if d := h.Read(42, 0); d != 42 {
		t.Errorf("zero-byte read completes at %d, want 42", d)
	}
}

func TestStreamCycles(t *testing.T) {
	h := New(Default())
	if got := h.StreamCycles(0); got != 0 {
		t.Errorf("StreamCycles(0) = %d", got)
	}
	// 256 KB at 256 B/cycle = 1024 cycles + latency + 1.
	if got, want := h.StreamCycles(256<<10), Default().AccessLatency+1024+1; got != want {
		t.Errorf("StreamCycles = %d, want %d", got, want)
	}
}

// Property: completion times never precede issue time and are monotone in
// request size.
func TestServeMonotone(t *testing.T) {
	f := func(nRaw uint16, nowRaw uint8) bool {
		h := New(Default())
		now := int64(nowRaw)
		n := int64(nRaw) + 1
		d1 := h.Read(now, n)
		h2 := New(Default())
		d2 := h2.Read(now, n*2)
		return d1 > now && d2 >= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := Default()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 channels accepted")
	}
}
