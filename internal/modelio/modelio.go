// Package modelio serializes workload graphs to and from a JSON exchange
// format — this repository's analogue of the paper's ONNX front end
// (Sec. III: "DNN models imported from mainstream deep learning
// frameworks are transformed into uniform ONNX format"). The format
// carries exactly what the scheduler consumes: operator kinds, tensor
// shapes, and data-dependency edges; anything else in a real ONNX file is
// irrelevant to orchestration.
//
// The format is stable and human-editable:
//
//	{
//	  "name": "mynet",
//	  "layers": [
//	    {"name": "input", "op": "Input", "shape": {"ho":224, "wo":224, "co":3}},
//	    {"name": "conv1", "op": "Conv", "inputs": ["input"],
//	     "shape": {"hi":224, "wi":224, "ci":3, "ho":112, "wo":112, "co":64,
//	               "kh":7, "kw":7, "stride":2, "pad":3}}
//	  ]
//	}
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// File is the on-disk model document.
type File struct {
	Name   string  `json:"name"`
	Layers []Layer `json:"layers"`
}

// Layer is one serialized graph vertex.
type Layer struct {
	Name   string   `json:"name"`
	Op     string   `json:"op"`
	Inputs []string `json:"inputs,omitempty"`
	Shape  Shape    `json:"shape"`
}

// Shape mirrors graph.Shape with lowercase JSON keys; zero fields are
// omitted for readability.
type Shape struct {
	Hi     int `json:"hi,omitempty"`
	Wi     int `json:"wi,omitempty"`
	Ci     int `json:"ci,omitempty"`
	Ho     int `json:"ho,omitempty"`
	Wo     int `json:"wo,omitempty"`
	Co     int `json:"co,omitempty"`
	Kh     int `json:"kh,omitempty"`
	Kw     int `json:"kw,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
}

var opNames = map[graph.OpKind]string{
	graph.OpInput:         "Input",
	graph.OpConv:          "Conv",
	graph.OpDepthwiseConv: "DepthwiseConv",
	graph.OpFC:            "FC",
	graph.OpPool:          "Pool",
	graph.OpEltwise:       "Eltwise",
	graph.OpConcat:        "Concat",
	graph.OpActivation:    "Activation",
	graph.OpGlobalPool:    "GlobalPool",
}

var opKinds = func() map[string]graph.OpKind {
	m := make(map[string]graph.OpKind, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// Encode renders a finalized graph as the JSON exchange document.
func Encode(g *graph.Graph) ([]byte, error) {
	f := File{Name: g.Name}
	for _, l := range g.Layers {
		op, ok := opNames[l.Kind]
		if !ok {
			return nil, fmt.Errorf("modelio: layer %q: unknown op kind %v", l.Name, l.Kind)
		}
		jl := Layer{Name: l.Name, Op: op, Shape: fromShape(l.Shape)}
		for _, in := range l.Inputs {
			jl.Inputs = append(jl.Inputs, g.Layer(in).Name)
		}
		f.Layers = append(f.Layers, jl)
	}
	return json.MarshalIndent(f, "", "  ")
}

// Decode parses an exchange document into a finalized graph.
func Decode(data []byte) (*graph.Graph, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	if f.Name == "" {
		return nil, fmt.Errorf("modelio: missing model name")
	}
	g := graph.New(f.Name)
	ids := make(map[string]int, len(f.Layers))
	for _, jl := range f.Layers {
		kind, ok := opKinds[jl.Op]
		if !ok {
			return nil, fmt.Errorf("modelio: layer %q: unknown op %q", jl.Name, jl.Op)
		}
		inputs := make([]int, 0, len(jl.Inputs))
		for _, name := range jl.Inputs {
			id, ok := ids[name]
			if !ok {
				return nil, fmt.Errorf("modelio: layer %q: input %q not defined before use",
					jl.Name, name)
			}
			inputs = append(inputs, id)
		}
		if _, dup := ids[jl.Name]; dup {
			return nil, fmt.Errorf("modelio: duplicate layer %q", jl.Name)
		}
		ids[jl.Name] = g.AddLayer(jl.Name, kind, toShape(jl.Shape), inputs...)
	}
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	return g, nil
}

// Write encodes g to w.
func Write(w io.Writer, g *graph.Graph) error {
	data, err := Encode(g)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Read decodes a graph from r.
func Read(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	return Decode(data)
}

func fromShape(s graph.Shape) Shape {
	return Shape{Hi: s.Hi, Wi: s.Wi, Ci: s.Ci, Ho: s.Ho, Wo: s.Wo, Co: s.Co,
		Kh: s.Kh, Kw: s.Kw, Stride: s.Stride, Pad: s.Pad}
}

func toShape(s Shape) graph.Shape {
	return graph.Shape{Hi: s.Hi, Wi: s.Wi, Ci: s.Ci, Ho: s.Ho, Wo: s.Wo, Co: s.Co,
		Kh: s.Kh, Kw: s.Kw, Stride: s.Stride, Pad: s.Pad}
}
