package modelio

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// FuzzDecode exercises the exchange-format parser with arbitrary bytes:
// it must never panic, and whatever it accepts must be a valid finalized
// graph that re-encodes cleanly.
func FuzzDecode(f *testing.F) {
	for _, name := range []string{"tinyconv", "tinybranch"} {
		data, err := Encode(models.MustBuild(name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","layers":[]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent.
		if g.NumLayers() == 0 {
			t.Fatal("accepted empty graph")
		}
		if _, err := Encode(g); err != nil {
			t.Fatalf("accepted graph failed to re-encode: %v", err)
		}
	})
}
