package modelio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func TestRoundTripAllModels(t *testing.T) {
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		data, err := Encode(g)
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		g2, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if g2.NumLayers() != g.NumLayers() {
			t.Errorf("%s: layers %d != %d", name, g2.NumLayers(), g.NumLayers())
		}
		if g2.TotalMACs() != g.TotalMACs() {
			t.Errorf("%s: MACs %d != %d", name, g2.TotalMACs(), g.TotalMACs())
		}
		if g2.TotalParams() != g.TotalParams() {
			t.Errorf("%s: params %d != %d", name, g2.TotalParams(), g.TotalParams())
		}
		if g2.MaxDepth() != g.MaxDepth() {
			t.Errorf("%s: depth %d != %d", name, g2.MaxDepth(), g.MaxDepth())
		}
		// Edge structure preserved: same consumer counts per layer name.
		for _, l := range g.Layers {
			l2 := g2.Layer(l.ID)
			if l2.Name != l.Name || l2.Kind != l.Kind || len(l2.Inputs) != len(l.Inputs) {
				t.Fatalf("%s: layer %d mismatch", name, l.ID)
			}
		}
	}
}

func TestWriteRead(t *testing.T) {
	g := models.MustBuild("tinybranch")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name {
		t.Errorf("name %q != %q", g2.Name, g.Name)
	}
}

func TestDecodeHandEdited(t *testing.T) {
	doc := `{
	  "name": "mini",
	  "layers": [
	    {"name": "input", "op": "Input", "shape": {"ho": 8, "wo": 8, "co": 3}},
	    {"name": "conv1", "op": "Conv", "inputs": ["input"],
	     "shape": {"hi": 8, "wi": 8, "ci": 3, "ho": 8, "wo": 8, "co": 16,
	               "kh": 3, "kw": 3, "stride": 1, "pad": 1}},
	    {"name": "gap", "op": "GlobalPool", "inputs": ["conv1"],
	     "shape": {"hi": 8, "wi": 8, "ci": 16, "ho": 1, "wo": 1, "co": 16, "kh": 8, "kw": 8, "stride": 1}},
	    {"name": "fc", "op": "FC", "inputs": ["gap"],
	     "shape": {"hi": 1, "wi": 1, "ci": 16, "ho": 1, "wo": 1, "co": 10, "kh": 1, "kw": 1, "stride": 1}}
	  ]
	}`
	g, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLayers() != 4 || g.MaxDepth() != 3 {
		t.Errorf("layers=%d depth=%d", g.NumLayers(), g.MaxDepth())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"missing name":   `{"layers":[]}`,
		"unknown op":     `{"name":"x","layers":[{"name":"a","op":"Wat","shape":{"ho":1,"wo":1,"co":1}}]}`,
		"forward ref":    `{"name":"x","layers":[{"name":"a","op":"Conv","inputs":["b"],"shape":{"hi":1,"wi":1,"ci":1,"ho":1,"wo":1,"co":1,"kh":1,"kw":1,"stride":1}}]}`,
		"duplicate name": `{"name":"x","layers":[{"name":"a","op":"Input","shape":{"ho":1,"wo":1,"co":1}},{"name":"a","op":"Input","shape":{"ho":1,"wo":1,"co":1}}]}`,
		"invalid graph":  `{"name":"x","layers":[{"name":"a","op":"Conv","shape":{"ho":1,"wo":1,"co":1}}]}`,
	}
	for label, doc := range cases {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestEncodeIsHumanReadable(t *testing.T) {
	g := models.MustBuild("tinyconv")
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name": "tinyconv"`, `"op": "Conv"`, `"inputs"`} {
		if !strings.Contains(s, want) {
			t.Errorf("document missing %q", want)
		}
	}
}
