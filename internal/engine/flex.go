package engine

// FlexPartition implements the paper's Discussion (Sec. VI-A): arrays
// that spatially map more than two loop parameters. Beyond KC-Partition's
// input/output channels, a third array dimension PEz unrolls the output
// width, so atom sizes become [c0, c1*PEz, c2*PEx, c3*PEy] exactly as the
// paper sketches. Atomic dataflow adapts by only changing the coefficient
// quantization in the SA search — which is what internal/anneal does when
// it sees this dataflow.
const FlexPartition Dataflow = 2

// PEzOf returns the effective third array dimension (1 when unset).
func (c Config) PEzOf() int {
	if c.PEz <= 0 {
		return 1
	}
	return c.PEz
}

// flexConvCycles prices a dense convolution on a 3D-spatial array:
// Ci -> PEx rows, Cop -> PEy columns, Wp -> PEz planes; Hp and the kernel
// iterate temporally.
func flexConvCycles(cfg Config, t Task) int64 {
	nCi := ceilDiv(t.Ci, cfg.PEx)
	nCo := ceilDiv(t.Cop, cfg.PEy)
	nW := ceilDiv(t.Wp, cfg.PEzOf())
	perPass := int64(t.Hp)*int64(t.Kh)*int64(t.Kw)/int64(cfg.MACsPerPE) + cfg.fillDrain()
	return int64(nCi) * int64(nCo) * int64(nW) * perPass
}

// flexDepthwiseCycles prices a depthwise convolution on the 3D array:
// the kernel window takes the rows, channels the columns, width the
// planes.
func flexDepthwiseCycles(cfg Config, t Task) int64 {
	nK := ceilDiv(t.Kh*t.Kw, cfg.PEx)
	nCo := ceilDiv(t.Cop, cfg.PEy)
	nW := ceilDiv(t.Wp, cfg.PEzOf())
	perPass := int64(t.Hp)/int64(cfg.MACsPerPE) + cfg.fillDrain()
	if perPass <= cfg.fillDrain() {
		perPass = 1 + cfg.fillDrain()
	}
	return int64(nK) * int64(nCo) * int64(nW) * perPass
}

// FlexDefault returns a flexible-array engine with the same MAC count as
// Default() (16x16 = 8x8x4), for like-for-like dataflow comparisons.
func FlexDefault() Config {
	c := Default()
	c.PEx, c.PEy, c.PEz = 8, 8, 4
	return c
}
