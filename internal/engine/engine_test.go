package engine

import (
	"testing"
	"testing/quick"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

func convTask(hp, wp, ci, cop, k int) Task {
	return Task{Kind: graph.OpConv, Hp: hp, Wp: wp, Ci: ci, Cop: cop,
		Kh: k, Kw: k, Stride: 1}
}

func TestPerfectlyMatchedTileHighUtil(t *testing.T) {
	cfg := Default()
	// Ci=16 rows, Cop=16 cols, big spatial extent: near-perfect KC-P fit.
	c := Evaluate(cfg, KCPartition, convTask(32, 32, 16, 16, 3))
	if c.Utilization < 0.95 {
		t.Errorf("matched KC-P tile utilization = %.3f, want >= 0.95", c.Utilization)
	}
	// Hp=Wp=32 multiples of 16: near-perfect YX-P fit.
	c = Evaluate(cfg, YXPartition, convTask(32, 32, 64, 64, 3))
	if c.Utilization < 0.95 {
		t.Errorf("matched YX-P tile utilization = %.3f, want >= 0.95", c.Utilization)
	}
}

func TestMismatchedTileLowUtil(t *testing.T) {
	cfg := Default()
	// Only 4 output channels on a 16-wide column dim: <= 25% + fill loss.
	c := Evaluate(cfg, KCPartition, convTask(32, 32, 16, 4, 3))
	if c.Utilization > 0.26 {
		t.Errorf("co=4 KC-P utilization = %.3f, want <= 0.26", c.Utilization)
	}
	// Single output pixel rows: YX-P wastes nearly the whole array.
	c = Evaluate(cfg, YXPartition, convTask(1, 1, 256, 256, 3))
	if c.Utilization > 1.0/float64(cfg.NumPEs())+1e-9 {
		t.Errorf("1x1-tile YX-P utilization = %.4f, want <= 1/%d", c.Utilization, cfg.NumPEs())
	}
}

func TestFillDrainDominatesTinyTiles(t *testing.T) {
	cfg := Default()
	// A 1x1 spatial tile of a 1x1 conv: per-pass work is 1 cycle but
	// fill/drain is 32, so utilization must be tiny even with matched
	// channels.
	c := Evaluate(cfg, KCPartition, convTask(1, 1, 16, 16, 1))
	if c.Utilization > 0.05 {
		t.Errorf("tiny-tile utilization = %.3f, want <= 0.05", c.Utilization)
	}
}

func TestFCDataflowAsymmetry(t *testing.T) {
	cfg := Default()
	fc := Task{Kind: graph.OpFC, Hp: 1, Wp: 1, Ci: 4096, Cop: 4096, Kh: 1, Kw: 1, Stride: 1}
	kc := Evaluate(cfg, KCPartition, fc)
	yx := Evaluate(cfg, YXPartition, fc)
	if kc.Cycles >= yx.Cycles {
		t.Errorf("FC should favor KC-P: kc=%d cycles, yx=%d cycles", kc.Cycles, yx.Cycles)
	}
}

func TestEarlyLayerDataflowAsymmetry(t *testing.T) {
	cfg := Default()
	// First conv of an ImageNet model: Ci=3 starves KC-P rows while YX-P
	// thrives on the large spatial extent.
	early := convTask(112, 112, 3, 64, 7)
	kc := Evaluate(cfg, KCPartition, early)
	yx := Evaluate(cfg, YXPartition, early)
	if yx.Utilization <= kc.Utilization {
		t.Errorf("Ci=3 layer: YX util %.3f should exceed KC util %.3f",
			yx.Utilization, kc.Utilization)
	}
}

func TestDepthwiseCheaperThanDense(t *testing.T) {
	cfg := Default()
	dw := Task{Kind: graph.OpDepthwiseConv, Hp: 28, Wp: 28, Ci: 1, Cop: 144,
		Kh: 3, Kw: 3, Stride: 1}
	dense := convTask(28, 28, 144, 144, 3)
	for _, df := range []Dataflow{KCPartition, YXPartition} {
		cd := Evaluate(cfg, df, dw)
		cc := Evaluate(cfg, df, dense)
		if cd.Cycles >= cc.Cycles {
			t.Errorf("%v: depthwise %d cycles >= dense %d cycles", df, cd.Cycles, cc.Cycles)
		}
		if cd.MACs >= cc.MACs {
			t.Errorf("%v: depthwise MACs %d >= dense %d", df, cd.MACs, cc.MACs)
		}
	}
}

func TestVectorUnitOps(t *testing.T) {
	cfg := Default()
	add := Task{Kind: graph.OpEltwise, Hp: 8, Wp: 8, Ci: 32, Cop: 32, Kh: 1, Kw: 1, Stride: 1}
	c := Evaluate(cfg, KCPartition, add)
	if want := int64(8 * 8 * 32 / 16); c.Cycles != want {
		t.Errorf("eltwise cycles = %d, want %d", c.Cycles, want)
	}
	if c.MACs != 0 || c.Utilization != 0 {
		t.Errorf("eltwise should report no MACs/util, got %d/%f", c.MACs, c.Utilization)
	}
	concat := Task{Kind: graph.OpConcat, Hp: 8, Wp: 8, Cop: 64}
	if c := Evaluate(cfg, KCPartition, concat); c.Cycles != 0 {
		t.Errorf("concat cycles = %d, want 0 (zero-copy)", c.Cycles)
	}
}

func TestReplicasScaleLinearly(t *testing.T) {
	cfg := Default()
	base := convTask(16, 16, 32, 32, 3)
	rep := base
	rep.Replicas = 5
	c1 := Evaluate(cfg, KCPartition, base)
	c5 := Evaluate(cfg, KCPartition, rep)
	if c5.Cycles != 5*c1.Cycles || c5.MACs != 5*c1.MACs {
		t.Errorf("replicas: got %d cycles/%d MACs, want %d/%d",
			c5.Cycles, c5.MACs, 5*c1.Cycles, 5*c1.MACs)
	}
}

func TestFootprints(t *testing.T) {
	tk := convTask(8, 8, 32, 64, 3)
	// Input halo: (8-1)*1+3 = 10 per dim.
	if got, want := tk.InputBytes(), int64(10*10*32); got != want {
		t.Errorf("InputBytes = %d, want %d", got, want)
	}
	if got, want := tk.WeightBytes(), int64(32*64*3*3); got != want {
		t.Errorf("WeightBytes = %d, want %d", got, want)
	}
	if got, want := tk.OutputBytes(), int64(8*8*64); got != want {
		t.Errorf("OutputBytes = %d, want %d", got, want)
	}
	if tk.MinBufferBytes() != tk.InputBytes()+tk.WeightBytes()+tk.OutputBytes() {
		t.Error("MinBufferBytes != sum of components")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := Default()
	bad.PEx = 0
	if err := bad.Validate(); err == nil {
		t.Error("PEx=0 accepted")
	}
	bad = Default()
	bad.BufferBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative buffer accepted")
	}
}

// Property: utilization is always in [0,1] and cycles are positive for any
// valid conv task under both dataflows.
func TestEvaluateBoundsProperty(t *testing.T) {
	cfg := Default()
	f := func(hp, wp, ci, cop, kRaw uint8) bool {
		tk := convTask(int(hp%64)+1, int(wp%64)+1, int(ci)*2+1, int(cop)*2+1, int(kRaw%3)*2+1)
		for _, df := range []Dataflow{KCPartition, YXPartition} {
			c := Evaluate(cfg, df, tk)
			if c.Cycles <= 0 || c.Utilization < 0 || c.Utilization > 1 {
				return false
			}
			if c.MACs != tk.MACs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: doubling the spatially-unrolled extents of a perfectly
// aligned tile cannot decrease utilization under KC-P.
func TestAlignedScalingProperty(t *testing.T) {
	cfg := Default()
	f := func(m uint8) bool {
		mult := int(m%4) + 1
		small := convTask(16, 16, 16*mult, 16*mult, 3)
		big := convTask(16, 16, 32*mult, 32*mult, 3)
		cs := Evaluate(cfg, KCPartition, small)
		cb := Evaluate(cfg, KCPartition, big)
		return cb.Utilization >= cs.Utilization-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: cycles are monotone in output-channel count (more work never
// takes fewer cycles), for both dataflows.
func TestMonotonicityProperty(t *testing.T) {
	cfg := Default()
	f := func(coRaw uint8) bool {
		co := int(coRaw) + 1
		a := convTask(14, 14, 64, co, 3)
		b := convTask(14, 14, 64, co+16, 3)
		for _, df := range []Dataflow{KCPartition, YXPartition} {
			if Evaluate(cfg, df, a).Cycles > Evaluate(cfg, df, b).Cycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
