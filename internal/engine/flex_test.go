package engine

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

func TestFlexConfigPEs(t *testing.T) {
	c := FlexDefault()
	if c.NumPEs() != 256 {
		t.Errorf("FlexDefault NumPEs = %d, want 256 (8x8x4)", c.NumPEs())
	}
	if Default().NumPEs() != 256 {
		t.Errorf("planar default changed: %d", Default().NumPEs())
	}
	if Default().PEzOf() != 1 {
		t.Errorf("unset PEz should read as 1")
	}
}

func TestFlexMatchedTile(t *testing.T) {
	cfg := FlexDefault()
	// Ci=8 rows, Cop=8 cols, Wp=4 planes, long Hp temporal: near-full.
	tk := Task{Kind: graph.OpConv, Hp: 64, Wp: 4, Ci: 8, Cop: 8, Kh: 3, Kw: 3, Stride: 1}
	c := Evaluate(cfg, FlexPartition, tk)
	if c.Utilization < 0.9 {
		t.Errorf("matched flex tile util = %.3f, want >= 0.9", c.Utilization)
	}
}

func TestFlexHelpsShallowChannelLayers(t *testing.T) {
	// The Discussion's motivation: shapes that starve a planar KC array
	// — e.g. an ImageNet stem conv with Ci=3 filling 3 of 16 rows — keep
	// a 3D-spatial array busier, because the width planes absorb the
	// unroll the channel rows cannot.
	planar := Default()   // 16x16
	flex := FlexDefault() // 8x8x4, same MAC count
	stem := Task{Kind: graph.OpConv, Hp: 112, Wp: 112, Ci: 3, Cop: 64, Kh: 7, Kw: 7, Stride: 2}
	kc := Evaluate(planar, KCPartition, stem)
	fx := Evaluate(flex, FlexPartition, stem)
	if fx.MACs != kc.MACs {
		t.Fatalf("MAC mismatch: %d vs %d", fx.MACs, kc.MACs)
	}
	if fx.Cycles >= kc.Cycles {
		t.Errorf("flex %d cycles >= planar KC %d on a Ci=3 stem", fx.Cycles, kc.Cycles)
	}
	if fx.Utilization <= kc.Utilization {
		t.Errorf("flex util %.3f <= planar %.3f", fx.Utilization, kc.Utilization)
	}
}

func TestFlexDepthwise(t *testing.T) {
	cfg := FlexDefault()
	tk := Task{Kind: graph.OpDepthwiseConv, Hp: 28, Wp: 28, Ci: 1, Cop: 144, Kh: 3, Kw: 3, Stride: 1}
	c := Evaluate(cfg, FlexPartition, tk)
	if c.Cycles <= 0 || c.Utilization <= 0 || c.Utilization > 1 {
		t.Errorf("flex depthwise degenerate: %+v", c)
	}
}

func TestFlexString(t *testing.T) {
	if FlexPartition.String() != "Flex-P" {
		t.Errorf("String = %q", FlexPartition.String())
	}
}
