// Package engine is the single-engine analytical cost model — this
// repository's substitute for the MAESTRO tool the paper uses as its
// Cycle(atom) oracle (Algorithm 1, Sec. V-A).
//
// An engine is a PEx x PEy MAC array plus a vector unit (Fig. 1a). Two
// spatial dataflows from the paper are modeled:
//
//   - KCPartition (NVDLA-style): input channels unrolled along PE rows,
//     output channels along PE columns; H/W/K iterated temporally.
//   - YXPartition (ShiDianNao-style): output rows along PE rows, output
//     columns along PE columns; channels and kernel iterated temporally.
//
// The model reproduces the first-order effects the paper's optimization
// rests on: utilization collapses when the spatially-unrolled extents do
// not fill (or divide by) the array dims, and small temporal tiles are
// dominated by array fill/drain latency. Absolute cycle counts are
// calibrated to be plausible, not to match MAESTRO bit-for-bit.
package engine

import (
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// Dataflow selects the spatial unrolling strategy of the PE array.
type Dataflow int

const (
	// KCPartition unrolls Ci to PE rows and Co to PE columns (NVDLA).
	KCPartition Dataflow = iota
	// YXPartition unrolls Ho to PE rows and Wo to PE columns (ShiDianNao).
	YXPartition
)

// String returns the paper's name for the dataflow.
func (d Dataflow) String() string {
	switch d {
	case KCPartition:
		return "KC-P"
	case YXPartition:
		return "YX-P"
	case FlexPartition:
		return "Flex-P"
	}
	return fmt.Sprintf("Dataflow(%d)", int(d))
}

// Config describes one tensor engine's microarchitecture.
type Config struct {
	PEx, PEy    int     // PE array rows, columns
	PEz         int     // third spatial dimension for FlexPartition (0/1 = planar array)
	VectorLanes int     // element-wise ops per cycle on the vector unit
	BufferBytes int     // per-engine global buffer (SRAM) capacity
	PortBytes   int     // SRAM port width in bytes per cycle (paper: 64b = 8B)
	FreqMHz     float64 // engine clock
	MACsPerPE   int     // MACs issued per PE per cycle (INT8: 1)
}

// Default returns the paper's engine configuration (Sec. V-A): 16x16 PEs,
// 128 KB SRAM with 64-bit port, 500 MHz.
func Default() Config {
	return Config{PEx: 16, PEy: 16, VectorLanes: 16, BufferBytes: 128 << 10,
		PortBytes: 8, FreqMHz: 500, MACsPerPE: 1}
}

// NumPEs returns the MAC array size across all spatial dimensions.
func (c Config) NumPEs() int { return c.PEx * c.PEy * c.PEzOf() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PEx <= 0 || c.PEy <= 0 {
		return fmt.Errorf("engine: non-positive PE array %dx%d", c.PEx, c.PEy)
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("engine: non-positive buffer size %d", c.BufferBytes)
	}
	if c.VectorLanes <= 0 || c.PortBytes <= 0 || c.MACsPerPE <= 0 || c.FreqMHz <= 0 {
		return fmt.Errorf("engine: invalid config %+v", c)
	}
	return nil
}

// fillDrain is the systolic pipeline fill + drain latency charged per
// array pass: operands propagate across PEx rows and results drain across
// PEy columns. This term is what makes tiny tiles inefficient (paper
// Sec. II-B "mismatch").
func (c Config) fillDrain() int64 { return int64(c.PEx + c.PEy) }

// Task describes a unit of work to run on one engine: a sub-tile (atom) of
// one layer. Hp x Wp x Cop is the produced output tile; Ci is the input
// channel extent consumed (atoms always span the full input-channel range,
// see DESIGN.md §3).
type Task struct {
	Kind     graph.OpKind
	Hp, Wp   int // output tile spatial extent
	Ci       int // input channels consumed
	Cop      int // output channels produced
	Kh, Kw   int // kernel dims
	Stride   int
	Replicas int // identical tiles batched back-to-back (>=1; 0 means 1)
}

// TaskFromLayer builds the Task describing a full layer on one engine.
func TaskFromLayer(l *graph.Layer) Task {
	s := l.Shape
	return Task{Kind: l.Kind, Hp: s.Ho, Wp: s.Wo, Ci: s.Ci, Cop: s.Co,
		Kh: s.Kh, Kw: s.Kw, Stride: s.Stride}
}

// MACs returns the multiply-accumulate count of the task.
func (t Task) MACs() int64 {
	n := t.reps()
	switch t.Kind {
	case graph.OpConv, graph.OpFC:
		return n * int64(t.Hp) * int64(t.Wp) * int64(t.Cop) * int64(t.Ci) * int64(t.Kh) * int64(t.Kw)
	case graph.OpDepthwiseConv:
		return n * int64(t.Hp) * int64(t.Wp) * int64(t.Cop) * int64(t.Kh) * int64(t.Kw)
	}
	return 0
}

func (t Task) reps() int64 {
	if t.Replicas <= 1 {
		return 1
	}
	return int64(t.Replicas)
}

// InputBytes returns the input-tile footprint (INT8), including the
// receptive-field halo of strided/kernelled ops.
func (t Task) InputBytes() int64 {
	stride := t.Stride
	if stride <= 0 {
		stride = 1
	}
	hi := (t.Hp-1)*stride + t.Kh
	wi := (t.Wp-1)*stride + t.Kw
	ci := t.Ci
	if t.Kind == graph.OpDepthwiseConv {
		ci = t.Cop
	}
	if t.Kind == graph.OpEltwise {
		return 2 * int64(t.Hp) * int64(t.Wp) * int64(t.Cop)
	}
	return int64(hi) * int64(wi) * int64(ci)
}

// WeightBytes returns the weight footprint needed by the task (INT8).
func (t Task) WeightBytes() int64 {
	switch t.Kind {
	case graph.OpConv, graph.OpFC:
		return int64(t.Ci) * int64(t.Cop) * int64(t.Kh) * int64(t.Kw)
	case graph.OpDepthwiseConv:
		return int64(t.Cop) * int64(t.Kh) * int64(t.Kw)
	}
	return 0
}

// OutputBytes returns the produced tile footprint (INT8).
func (t Task) OutputBytes() int64 {
	return int64(t.Hp) * int64(t.Wp) * int64(t.Cop)
}

// MinBufferBytes returns the working set the engine must hold to execute
// the task: input tile + weights + output tile.
func (t Task) MinBufferBytes() int64 {
	return t.InputBytes() + t.WeightBytes() + t.OutputBytes()
}

// Cost is the engine model's verdict on one task.
type Cost struct {
	Cycles      int64   // compute cycles on this engine, excluding data movement
	MACs        int64   // useful MAC operations
	Utilization float64 // MACs / (Cycles * array size), in [0,1]
}

// Evaluate prices a task on an engine under the given dataflow.
// This is the Cycle() oracle of the paper's Algorithm 1.
func Evaluate(cfg Config, df Dataflow, t Task) Cost {
	var cycles int64
	switch t.Kind {
	case graph.OpConv, graph.OpFC:
		cycles = convCycles(cfg, df, t)
	case graph.OpDepthwiseConv:
		cycles = depthwiseCycles(cfg, df, t)
	case graph.OpPool, graph.OpEltwise, graph.OpActivation, graph.OpGlobalPool:
		cycles = vectorCycles(cfg, t)
	case graph.OpConcat, graph.OpInput:
		cycles = 0
	default:
		cycles = vectorCycles(cfg, t)
	}
	cycles *= t.reps()
	macs := t.MACs()
	util := 0.0
	if cycles > 0 {
		util = float64(macs) / (float64(cycles) * float64(cfg.NumPEs()*cfg.MACsPerPE))
		if util > 1 {
			util = 1
		}
	}
	return Cost{Cycles: cycles, MACs: macs, Utilization: util}
}

// convCycles models a (possibly degenerate FC) convolution.
func convCycles(cfg Config, df Dataflow, t Task) int64 {
	switch df {
	case KCPartition:
		// Ci on rows, Cop on columns; each array pass iterates the
		// output pixels and kernel positions temporally.
		nCi := ceilDiv(t.Ci, cfg.PEx)
		nCo := ceilDiv(t.Cop, cfg.PEy)
		perPass := int64(t.Hp)*int64(t.Wp)*int64(t.Kh)*int64(t.Kw)/int64(cfg.MACsPerPE) + cfg.fillDrain()
		return int64(nCi) * int64(nCo) * perPass
	case YXPartition:
		// Hp on rows, Wp on columns; channels and kernel temporal.
		nH := ceilDiv(t.Hp, cfg.PEx)
		nW := ceilDiv(t.Wp, cfg.PEy)
		perPass := int64(t.Ci)*int64(t.Cop)*int64(t.Kh)*int64(t.Kw)/int64(cfg.MACsPerPE) + cfg.fillDrain()
		return int64(nH) * int64(nW) * perPass
	case FlexPartition:
		return flexConvCycles(cfg, t)
	}
	panic(fmt.Sprintf("engine: unknown dataflow %v", df))
}

// depthwiseCycles models a depthwise convolution, which offers no
// cross-channel reuse. Under KC-P the kernel window is unrolled along the
// rows (the input-channel direction degenerates to 1); under YX-P the
// spatial unrolling is unaffected but the channel loop carries no Ci
// factor.
func depthwiseCycles(cfg Config, df Dataflow, t Task) int64 {
	switch df {
	case KCPartition:
		nK := ceilDiv(t.Kh*t.Kw, cfg.PEx)
		nCo := ceilDiv(t.Cop, cfg.PEy)
		perPass := int64(t.Hp)*int64(t.Wp)/int64(cfg.MACsPerPE) + cfg.fillDrain()
		return int64(nK) * int64(nCo) * perPass
	case YXPartition:
		nH := ceilDiv(t.Hp, cfg.PEx)
		nW := ceilDiv(t.Wp, cfg.PEy)
		perPass := int64(t.Cop)*int64(t.Kh)*int64(t.Kw)/int64(cfg.MACsPerPE) + cfg.fillDrain()
		return int64(nH) * int64(nW) * perPass
	case FlexPartition:
		return flexDepthwiseCycles(cfg, t)
	}
	panic(fmt.Sprintf("engine: unknown dataflow %v", df))
}

// vectorCycles models element-wise work on the vector unit.
func vectorCycles(cfg Config, t Task) int64 {
	elems := int64(t.Hp) * int64(t.Wp) * int64(t.Cop)
	if t.Kind == graph.OpPool || t.Kind == graph.OpGlobalPool {
		// Pooling reads Kh*Kw inputs per output element.
		elems *= int64(t.Kh) * int64(t.Kw)
	}
	return ceilDiv64(elems, int64(cfg.VectorLanes))
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("engine: ceilDiv by non-positive")
	}
	return (a + b - 1) / b
}

func ceilDiv64(a, b int64) int64 {
	return (a + b - 1) / b
}
