package sim

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Mesh = noc.NewMesh(2, 2, 8)
	return c
}

func pipeline(t *testing.T, model string, batch int, cfg Config, mode schedule.Mode) (*atom.DAG, *schedule.Schedule) {
	t.Helper()
	g := models.MustBuild(model)
	res := anneal.SA(g, cfg.Engine, cfg.Dataflow, anneal.Options{MaxIters: 80})
	d, err := atom.Build(g, batch, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: cfg.Mesh.Engines(), Mode: mode,
		EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "tinyconv", 1, cfg, schedule.Greedy)
	rep, err := Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 {
		t.Fatalf("Cycles = %d", rep.Cycles)
	}
	if rep.Cycles < rep.ComputeCycles {
		t.Errorf("total %d < compute-only %d", rep.Cycles, rep.ComputeCycles)
	}
	if rep.Cycles != rep.ComputeCycles+rep.NoCBlockedCycles+rep.DRAMBlockedCycles {
		t.Errorf("cycle decomposition: %d != %d + %d + %d",
			rep.Cycles, rep.ComputeCycles, rep.NoCBlockedCycles, rep.DRAMBlockedCycles)
	}
	if rep.PEUtilization <= 0 || rep.PEUtilization > 1 {
		t.Errorf("PEUtilization = %v", rep.PEUtilization)
	}
	if rep.ComputeUtil < rep.PEUtilization {
		t.Errorf("memory-free util %v < end-to-end util %v", rep.ComputeUtil, rep.PEUtilization)
	}
	if rep.OnChipReuseRatio < 0 || rep.OnChipReuseRatio > 1 {
		t.Errorf("reuse ratio = %v", rep.OnChipReuseRatio)
	}
	if rep.Energy.TotalPJ() <= 0 {
		t.Error("no energy accounted")
	}
	// MACs must equal the model's ground truth.
	g := models.MustBuild("tinyconv")
	if rep.MACs != g.TotalMACs() {
		t.Errorf("MACs = %d, want %d", rep.MACs, g.TotalMACs())
	}
}

func TestBatchIncreasesWorkNotLatencyLinearly(t *testing.T) {
	cfg := smallConfig()
	d1, s1 := pipeline(t, "tinyconv", 1, cfg, schedule.Greedy)
	d4, s4 := pipeline(t, "tinyconv", 4, cfg, schedule.Greedy)
	r1, err := Run(d1, s1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(d4, s4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r4.MACs != 4*r1.MACs {
		t.Errorf("batch-4 MACs = %d, want %d", r4.MACs, 4*r1.MACs)
	}
	// Batch parallelism fills idle engines: time grows sublinearly.
	if r4.Cycles >= 4*r1.Cycles {
		t.Errorf("batch-4 cycles %d >= 4x batch-1 cycles %d (no batch parallelism)",
			r4.Cycles, 4*r1.Cycles)
	}
	if r4.PEUtilization <= r1.PEUtilization {
		t.Errorf("batch-4 util %.3f <= batch-1 util %.3f", r4.PEUtilization, r1.PEUtilization)
	}
}

func TestSmallerBufferMoreDRAM(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "tinyresnet", 2, cfg, schedule.Greedy)
	big := cfg
	big.BufferBytes = 4 << 20
	small := cfg
	small.BufferBytes = 4 << 10
	rb, err := Run(d, s, big)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(d, s, small)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DRAMReadBytes <= rb.DRAMReadBytes {
		t.Errorf("small-buffer DRAM reads %d <= big-buffer %d", rs.DRAMReadBytes, rb.DRAMReadBytes)
	}
	if rs.OnChipReuseRatio >= rb.OnChipReuseRatio {
		t.Errorf("small-buffer reuse %.3f >= big-buffer %.3f",
			rs.OnChipReuseRatio, rb.OnChipReuseRatio)
	}
	if rs.Energy.DRAM <= rb.Energy.DRAM {
		t.Error("small buffer should cost more DRAM energy")
	}
}

func TestDoubleBufferHelps(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "tinyconv", 2, cfg, schedule.Greedy)
	on := cfg
	on.DoubleBuffer = true
	off := cfg
	off.DoubleBuffer = false
	ron, err := Run(d, s, on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(d, s, off)
	if err != nil {
		t.Fatal(err)
	}
	if ron.Cycles > roff.Cycles {
		t.Errorf("double buffering made it slower: %d > %d", ron.Cycles, roff.Cycles)
	}
}

// runFlows executes the Round's flows through BOTH the dense arena path
// and the map-based reference path, asserts they agree exactly, and
// returns the (shared) result.
func runFlows(t *testing.T, mesh *noc.Mesh, flows []buffer.Flow, start int64) (map[int]int64, int64) {
	t.Helper()
	refReady, refHops := simulateFlowsReference(mesh, flows, start)
	a := newArena(mesh)
	a.beginRound()
	hops := a.simulateFlows(flows, start)
	ready := make(map[int]int64)
	for e := 0; e < mesh.Engines(); e++ {
		if r, ok := a.getNoCReady(e); ok {
			ready[e] = r
		}
	}
	if hops != refHops {
		t.Fatalf("byteHops: dense %d, reference %d", hops, refHops)
	}
	if len(ready) != len(refReady) {
		t.Fatalf("arrivals: dense %v, reference %v", ready, refReady)
	}
	for e, r := range refReady {
		if ready[e] != r {
			t.Fatalf("engine %d arrival: dense %d, reference %d", e, ready[e], r)
		}
	}
	return ready, hops
}

func TestSimulateFlowsContention(t *testing.T) {
	mesh := noc.NewMesh(4, 1, 8)
	// Two flows over the shared 0->1 link.
	flows := []buffer.Flow{
		{Src: 0, Dst: 2, Bytes: 800},
		{Src: 0, Dst: 3, Bytes: 800},
	}
	ready, byteHops := runFlows(t, mesh, flows, 100)
	// First flow: link0 busy [100,200), arrives 2 hops later.
	if got := ready[2]; got != 100+100+2*1 {
		t.Errorf("flow to 2 arrives at %d, want 202", got)
	}
	// Second flow waits for link 0->1: starts at 200.
	if got := ready[3]; got <= ready[2] {
		t.Errorf("contended flow arrives at %d, want after %d", got, ready[2])
	}
	if want := int64(800*2 + 800*3); byteHops != want {
		t.Errorf("byteHops = %d, want %d", byteHops, want)
	}
}

func TestSimulateFlowsMulticast(t *testing.T) {
	mesh := noc.NewMesh(4, 1, 8)
	// Tagged broadcast from 0 to 1,2,3: bytes serialize once per link of
	// the shared route, not once per destination.
	flows := []buffer.Flow{
		{Src: 0, Dst: 1, Bytes: 800, Tag: 7},
		{Src: 0, Dst: 2, Bytes: 800, Tag: 7},
		{Src: 0, Dst: 3, Bytes: 800, Tag: 7},
	}
	ready, byteHops := runFlows(t, mesh, flows, 0)
	if want := int64(800 * 3); byteHops != want { // 3 tree links
		t.Errorf("multicast byteHops = %d, want %d", byteHops, want)
	}
	// Compare against unicast: source link serializes 3x.
	for i := range flows {
		flows[i].Tag = 0
	}
	_, uniHops := runFlows(t, mesh, flows, 0)
	if uniHops <= byteHops {
		t.Errorf("unicast byteHops %d should exceed multicast %d", uniHops, byteHops)
	}
	if ready[3] <= ready[1] {
		t.Errorf("farther destination should arrive later: %v", ready)
	}
}

func TestSimulateFlowsEmpty(t *testing.T) {
	mesh := noc.NewMesh(2, 2, 8)
	got, bh := runFlows(t, mesh, nil, 5)
	if len(got) != 0 || bh != 0 {
		t.Errorf("empty flows produced arrivals: %v hops %d", got, bh)
	}
}

func TestValidation(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "tinyconv", 1, cfg, schedule.Greedy)
	bad := cfg
	bad.Mesh = nil
	if _, err := Run(d, s, bad); err == nil {
		t.Error("nil mesh accepted")
	}
	bad2 := cfg
	bad2.Engine.PEx = 0
	if _, err := Run(d, s, bad2); err == nil {
		t.Error("bad engine accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "pnascell", 2, cfg, schedule.Greedy)
	a, err := Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.DRAMReadBytes != b.DRAMReadBytes || a.NoCByteHops != b.NoCByteHops {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEnergyBreakdownComplete(t *testing.T) {
	cfg := smallConfig()
	d, s := pipeline(t, "tinyresnet", 1, cfg, schedule.Greedy)
	rep, err := Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Energy
	for name, v := range map[string]float64{
		"MAC": e.MAC, "SRAM": e.SRAM, "DRAM": e.DRAM, "Static": e.Static,
	} {
		if v <= 0 {
			t.Errorf("energy component %s = %v, want > 0", name, v)
		}
	}
}

func TestEngineTaskUsesDataflow(t *testing.T) {
	// The same schedule simulated under YX vs KC pricing differs: use a
	// model whose first layer has tiny Ci (KC-hostile).
	kc := smallConfig()
	kc.Dataflow = engine.KCPartition
	yx := smallConfig()
	yx.Dataflow = engine.YXPartition
	dk, sk := pipeline(t, "tinyconv", 1, kc, schedule.Greedy)
	dy, sy := pipeline(t, "tinyconv", 1, yx, schedule.Greedy)
	rk, err := Run(dk, sk, kc)
	if err != nil {
		t.Fatal(err)
	}
	ry, err := Run(dy, sy, yx)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Cycles == ry.Cycles {
		t.Error("KC and YX dataflows produced identical cycles; dataflow ignored?")
	}
}
