package sim

import (
	"cmp"
	"slices"

	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// arena is the per-Run scratch state of the simulator's hot loop. All
// link and engine state lives in dense slices indexed by the mesh's link
// IDs and engine indices, and is invalidated by bumping an epoch stamp
// instead of clearing or reallocating, so simulating a Round's flows
// allocates nothing after the first Round.
//
// Two stamp counters partition the state by lifetime:
//
//   - roundStamp guards state that resets every Round: linkFree (when a
//     link finishes its last tensor), ready (per-engine NoC arrival) and
//     dramReady (per-engine DRAM arrival).
//   - groupStamp guards state that resets every multicast group:
//     linkStart (when a link begins forwarding the group's tensor).
//
// A slot is live only when its stamp equals the current counter; stale
// slots read as absent. Both counters are monotonically increasing
// int64s, so stamps never collide across Rounds or groups. Determinism
// is preserved by construction: flows are sorted by a total order
// (Src, |key|, key, Dst) before link claiming, which is exactly the
// order the map-based reference path iterates in.
type arena struct {
	mesh *noc.Mesh

	// Link state, indexed by link ID (see noc.RouteIDs).
	linkFree   []int64
	freeStamp  []int64
	linkStart  []int64
	startStamp []int64

	// Engine state, indexed by engine.
	ready      []int64
	readyStamp []int64
	dramReady  []int64
	dramStamp  []int64

	roundStamp int64
	groupStamp int64

	flows   []keyedFlow // sort scratch for simulateFlows
	engines []int       // per-Round engine list scratch

	// linkTraffic, when non-nil, accumulates bytes per link ID across the
	// whole Run (metrics scratch owned by simMetrics; nil when disabled).
	linkTraffic []int64
}

// keyedFlow pairs a flow with its precomputed multicast-group key.
type keyedFlow struct {
	key int64
	f   buffer.Flow
}

// newArena sizes the scratch for the mesh.
func newArena(mesh *noc.Mesh) *arena {
	nl := mesh.NumLinks()
	ne := mesh.Engines()
	return &arena{
		mesh:       mesh,
		linkFree:   make([]int64, nl),
		freeStamp:  make([]int64, nl),
		linkStart:  make([]int64, nl),
		startStamp: make([]int64, nl),
		ready:      make([]int64, ne),
		readyStamp: make([]int64, ne),
		dramReady:  make([]int64, ne),
		dramStamp:  make([]int64, ne),
	}
}

// beginRound invalidates all per-Round state.
func (a *arena) beginRound() { a.roundStamp++ }

// setDRAMReady records engine e's DRAM arrival time for this Round.
func (a *arena) setDRAMReady(e int, at int64) {
	a.dramReady[e] = at
	a.dramStamp[e] = a.roundStamp
}

// getDRAMReady returns engine e's DRAM arrival this Round, if any.
func (a *arena) getDRAMReady(e int) (int64, bool) {
	return a.dramReady[e], a.dramStamp[e] == a.roundStamp
}

// setNoCReady records engine e's NoC arrival time (reference-path shim).
func (a *arena) setNoCReady(e int, at int64) {
	a.ready[e] = at
	a.readyStamp[e] = a.roundStamp
}

// getNoCReady returns engine e's NoC arrival this Round, if any.
func (a *arena) getNoCReady(e int) (int64, bool) {
	return a.ready[e], a.readyStamp[e] == a.roundStamp
}

// simulateFlows is the dense counterpart of simulateFlowsReference: it
// serializes the Round's flows on shared links in the same deterministic
// order and records per-destination arrival times in a.ready, returning
// the Round's byte-hop volume. beginRound must have been called.
func (a *arena) simulateFlows(flows []buffer.Flow, start int64) int64 {
	kf := a.flows[:0]
	for _, f := range flows {
		kf = append(kf, keyedFlow{key: f.GroupKey(), f: f})
	}
	a.flows = kf
	slices.SortFunc(kf, func(x, y keyedFlow) int {
		if x.f.Src != y.f.Src {
			return cmp.Compare(x.f.Src, y.f.Src)
		}
		ax, ay := x.key, y.key
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		if ax != ay {
			return cmp.Compare(ax, ay)
		}
		if x.key != y.key {
			return cmp.Compare(x.key, y.key)
		}
		return cmp.Compare(x.f.Dst, y.f.Dst)
	})

	hop := a.mesh.HopCycles
	linkBytes := int64(a.mesh.LinkBytes)
	var byteHops int64
	for gi := 0; gi < len(kf); {
		gj := gi + 1
		for gj < len(kf) && kf[gj].f.Src == kf[gi].f.Src && kf[gj].key == kf[gi].key {
			gj++
		}
		group := kf[gi:gj]
		bytes := group[0].f.Bytes
		for _, e := range group[1:] {
			if e.f.Bytes > bytes {
				bytes = e.f.Bytes
			}
		}
		ser := (bytes + linkBytes - 1) / linkBytes
		// Walk each destination's route; a link is claimed once per tree
		// (switch-level replication). A link cannot start forwarding
		// before the stream's head reaches it from the upstream link
		// (cut-through), nor while a previous tensor occupies it.
		a.groupStamp++
		treeLinks := int64(0)
		for _, e := range group {
			f := e.f
			head := start
			lastStart := start
			route := a.mesh.RouteIDs(f.Src, f.Dst)
			for _, id := range route {
				var s int64
				if a.startStamp[id] == a.groupStamp {
					s = a.linkStart[id]
				} else {
					s = head
					if a.freeStamp[id] == a.roundStamp && a.linkFree[id] > s {
						s = a.linkFree[id]
					}
					a.linkStart[id] = s
					a.startStamp[id] = a.groupStamp
					a.linkFree[id] = s + ser
					a.freeStamp[id] = a.roundStamp
					treeLinks++
					if a.linkTraffic != nil {
						a.linkTraffic[id] += bytes
					}
				}
				head = s + hop
				lastStart = s
			}
			arrive := start
			if len(route) > 0 {
				arrive = lastStart + ser + hop
			}
			if r, ok := a.getNoCReady(f.Dst); !ok || arrive > r {
				a.setNoCReady(f.Dst, arrive)
			}
		}
		byteHops += bytes * treeLinks
		gi = gj
	}
	return byteHops
}
