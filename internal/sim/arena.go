package sim

import (
	"slices"

	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// arena is the per-Run scratch state of the simulator's hot loop. All
// link and engine state lives in dense slices indexed by the mesh's link
// IDs and engine indices, and is invalidated by bumping an epoch stamp
// instead of clearing or reallocating, so simulating a Round's flows
// allocates nothing after the first Round.
//
// Two stamp counters partition the state by lifetime:
//
//   - roundStamp guards state that resets every Round: linkFree (when a
//     link finishes its last tensor), ready (per-engine NoC arrival) and
//     dramReady (per-engine DRAM arrival).
//   - groupStamp guards state that resets every multicast group:
//     linkStart (when a link begins forwarding the group's tensor).
//
// A slot is live only when its stamp equals the current counter; stale
// slots read as absent. Both counters are monotonically increasing
// int64s, so stamps never collide across Rounds or groups. Determinism
// is preserved by construction: flows are sorted by a total order
// (Src, |key|, key, Dst) before link claiming, which is exactly the
// order the map-based reference path iterates in.
type arena struct {
	mesh *noc.Mesh

	// Link state, indexed by link ID (see noc.RouteIDs).
	linkFree   []int64
	freeStamp  []int64
	linkStart  []int64
	startStamp []int64

	// Engine state, indexed by engine.
	ready      []int64
	readyStamp []int64
	dramReady  []int64
	dramStamp  []int64

	roundStamp int64
	groupStamp int64

	// Stamp values when the current run acquired this arena — pooled
	// arenas keep counting monotonically, so per-run epoch metrics are
	// the deltas against these.
	runRound0 int64
	runGroup0 int64

	sorter flowSorter // sort scratch for simulateFlows

	// linkTraffic, when non-nil, accumulates bytes per link ID across the
	// whole Run (metrics scratch owned by simMetrics; nil when disabled).
	linkTraffic []int64
}

// keyedFlow is one entry of the deterministic link-claim order: the
// flow's index plus its precomputed sort key. okey encodes (|key|, key)
// in one word — |key|<<1 with the low bit set for positive keys — so the
// sort comparator is three integer compares instead of recomputing
// absolute values per comparison. The element is 24 bytes (vs 40 for a
// key + embedded Flow), which also cuts swap traffic during the sort.
type keyedFlow struct {
	okey     uint64
	src, dst int32
	idx      int32
}

// newArena sizes the scratch for the mesh.
func newArena(mesh *noc.Mesh) *arena {
	nl := mesh.NumLinks()
	ne := mesh.Engines()
	return &arena{
		mesh:       mesh,
		linkFree:   make([]int64, nl),
		freeStamp:  make([]int64, nl),
		linkStart:  make([]int64, nl),
		startStamp: make([]int64, nl),
		ready:      make([]int64, ne),
		readyStamp: make([]int64, ne),
		dramReady:  make([]int64, ne),
		dramStamp:  make([]int64, ne),
	}
}

// reset re-targets a pooled arena at a new mesh. The pool key guarantees
// the new mesh has the same link and engine counts, so the dense slices
// keep their sizes, and the epoch stamps are monotonic — stale slots from
// the previous run read as absent without any clearing.
func (a *arena) reset(mesh *noc.Mesh) {
	a.mesh = mesh
	a.linkTraffic = nil
	a.runRound0 = a.roundStamp
	a.runGroup0 = a.groupStamp
}

// beginRound invalidates all per-Round state.
func (a *arena) beginRound() { a.roundStamp++ }

// setDRAMReady records engine e's DRAM arrival time for this Round.
func (a *arena) setDRAMReady(e int, at int64) {
	a.dramReady[e] = at
	a.dramStamp[e] = a.roundStamp
}

// getDRAMReady returns engine e's DRAM arrival this Round, if any.
func (a *arena) getDRAMReady(e int) (int64, bool) {
	return a.dramReady[e], a.dramStamp[e] == a.roundStamp
}

// setNoCReady records engine e's NoC arrival time (reference-path shim).
func (a *arena) setNoCReady(e int, at int64) {
	a.ready[e] = at
	a.readyStamp[e] = a.roundStamp
}

// getNoCReady returns engine e's NoC arrival this Round, if any.
func (a *arena) getNoCReady(e int) (int64, bool) {
	return a.ready[e], a.readyStamp[e] == a.roundStamp
}

// flowSorter holds the reusable scratch of sortFlows: the keyed order,
// an unsorted staging buffer and the per-source bucket offsets of the
// counting pass.
type flowSorter struct {
	kf  []keyedFlow
	tmp []keyedFlow
	off []int32
}

// cmpKeyed orders two same-source keyed flows: ascending (|key|, key)
// via the okey encoding, then Dst.
func cmpKeyed(x, y keyedFlow) int {
	if x.okey != y.okey {
		if x.okey < y.okey {
			return -1
		}
		return 1
	}
	return int(x.dst - y.dst)
}

// sort builds the deterministic link-claim order of a Round's flows:
// ascending (Src, |key|, key, Dst), exactly the order the map-based
// reference path iterates in. Sources are engine indices, so flows are
// first scattered into per-source buckets by one counting pass, and
// only each bucket is comparison-sorted (by the remaining two-field
// key) — many small cache-resident sorts instead of one large one. The
// order is a pure function of the flow list, so the pipeline runs this
// in the prep stage.
func (fs *flowSorter) sort(flows []buffer.Flow) []keyedFlow {
	tmp := fs.tmp[:0]
	maxSrc := int32(-1)
	for i, f := range flows {
		k := f.GroupKey()
		ok := uint64(k)<<1 | 1
		if k < 0 {
			ok = uint64(-k) << 1
		}
		src := int32(f.Src)
		if src > maxSrc {
			maxSrc = src
		}
		tmp = append(tmp, keyedFlow{okey: ok, src: src, dst: int32(f.Dst), idx: int32(i)})
	}
	fs.tmp = tmp
	if len(tmp) == 0 {
		return fs.kf[:0]
	}

	nb := int(maxSrc) + 2
	if cap(fs.off) < nb {
		fs.off = make([]int32, nb)
	}
	off := fs.off[:nb]
	for i := range off {
		off[i] = 0
	}
	for _, e := range tmp {
		off[e.src+1]++
	}
	for s := 1; s < nb; s++ {
		off[s] += off[s-1]
	}
	if cap(fs.kf) < len(tmp) {
		fs.kf = make([]keyedFlow, len(tmp))
	}
	kf := fs.kf[:len(tmp)]
	for _, e := range tmp {
		kf[off[e.src]] = e
		off[e.src]++
	}
	// After the scatter, off[s] is the END of bucket s.
	lo := int32(0)
	for s := 0; s <= int(maxSrc); s++ {
		hi := off[s]
		if hi-lo > 1 {
			slices.SortFunc(kf[lo:hi], cmpKeyed)
		}
		lo = hi
	}
	return kf
}

// simulateFlows sorts and walks in one call — the single-stage entry
// point used by tests; the pipeline calls flowSorter.sort and walkFlows
// from their respective stages.
func (a *arena) simulateFlows(flows []buffer.Flow, start int64) int64 {
	return a.walkFlows(flows, a.sorter.sort(flows), start)
}

// walkFlows is the dense counterpart of simulateFlowsReference: it
// serializes the Round's flows on shared links in the order kf (from
// sortFlows) and records per-destination arrival times in a.ready,
// returning the Round's byte-hop volume. beginRound must have been
// called.
func (a *arena) walkFlows(flows []buffer.Flow, kf []keyedFlow, start int64) int64 {
	hop := a.mesh.HopCycles
	linkBytes := int64(a.mesh.LinkBytes)
	var byteHops int64
	for gi := 0; gi < len(kf); {
		gj := gi + 1
		for gj < len(kf) && kf[gj].src == kf[gi].src && kf[gj].okey == kf[gi].okey {
			gj++
		}
		group := kf[gi:gj]
		bytes := flows[group[0].idx].Bytes
		for _, e := range group[1:] {
			if b := flows[e.idx].Bytes; b > bytes {
				bytes = b
			}
		}
		ser := (bytes + linkBytes - 1) / linkBytes
		// Walk each destination's route; a link is claimed once per tree
		// (switch-level replication). A link cannot start forwarding
		// before the stream's head reaches it from the upstream link
		// (cut-through), nor while a previous tensor occupies it.
		a.groupStamp++
		treeLinks := int64(0)
		for _, e := range group {
			head := start
			lastStart := start
			route := a.mesh.RouteIDs(int(e.src), int(e.dst))
			for _, id := range route {
				var s int64
				if a.startStamp[id] == a.groupStamp {
					s = a.linkStart[id]
				} else {
					s = head
					if a.freeStamp[id] == a.roundStamp && a.linkFree[id] > s {
						s = a.linkFree[id]
					}
					a.linkStart[id] = s
					a.startStamp[id] = a.groupStamp
					a.linkFree[id] = s + ser
					a.freeStamp[id] = a.roundStamp
					treeLinks++
					if a.linkTraffic != nil {
						a.linkTraffic[id] += bytes
					}
				}
				head = s + hop
				lastStart = s
			}
			arrive := start
			if len(route) > 0 {
				arrive = lastStart + ser + hop
			}
			if r, ok := a.getNoCReady(int(e.dst)); !ok || arrive > r {
				a.setNoCReady(int(e.dst), arrive)
			}
		}
		byteHops += bytes * treeLinks
		gi = gj
	}
	return byteHops
}
