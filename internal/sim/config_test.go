package sim

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
)

// TestDefaultConfigPinned pins the fields of DefaultConfig: every
// experiment and the paper-comparison numbers in EXPERIMENTS.md assume
// this exact hardware model, so a drive-by change must fail a test.
func TestDefaultConfigPinned(t *testing.T) {
	c := DefaultConfig()
	if c.Mesh == nil || c.Mesh.W != 8 || c.Mesh.H != 8 {
		t.Errorf("Mesh = %+v, want 8x8", c.Mesh)
	}
	if c.Mesh.LinkBytes != 32 {
		t.Errorf("Mesh.LinkBytes = %d, want 32", c.Mesh.LinkBytes)
	}
	if c.Engine != engine.Default() {
		t.Errorf("Engine = %+v, want engine.Default()", c.Engine)
	}
	if c.Dataflow != engine.KCPartition {
		t.Errorf("Dataflow = %v, want KCPartition", c.Dataflow)
	}
	if !c.DoubleBuffer {
		t.Error("DoubleBuffer = false, want true")
	}
	if c.BufferBytes != 0 {
		t.Errorf("BufferBytes = %d, want 0 (engine default)", c.BufferBytes)
	}
	if c.Oracle != nil {
		t.Error("Oracle non-nil: the default must be per-run memoization")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("DefaultConfig does not validate: %v", err)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	c := DefaultConfig()
	c.BufferBytes = -1
	if err := c.Validate(); err == nil {
		t.Error("negative BufferBytes validated")
	}
	c = DefaultConfig()
	c.Mesh = nil
	if err := c.Validate(); err == nil {
		t.Error("nil mesh validated")
	}
}
