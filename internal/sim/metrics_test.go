package sim

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// runInstrumented simulates a small model twice — once bare, once with a
// fresh registry — and returns both Reports plus the metrics snapshot.
func runInstrumented(t *testing.T) (bare, metered Report, snap obs.Snapshot) {
	t.Helper()
	g := models.MustBuild("tinyresnet")
	cfg := DefaultConfig()
	cfg.Mesh = noc.NewMesh(2, 2, 32)
	res := anneal.SA(g, cfg.Engine, cfg.Dataflow, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, 2, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: 4, Mode: schedule.Greedy, EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow,
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err = Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg.Metrics = reg
	metered, err = Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bare, metered, reg.Snapshot()
}

func TestRunMetricsPopulated(t *testing.T) {
	_, rep, snap := runInstrumented(t)

	if got := snap.Counter("sim_rounds_total"); got != int64(rep.Rounds) {
		t.Errorf("sim_rounds_total = %d, want %d", got, rep.Rounds)
	}
	if got := snap.Counter("sim_cycles_total"); got != rep.Cycles {
		t.Errorf("sim_cycles_total = %d, want %d", got, rep.Cycles)
	}

	// Per-engine busy cycles: at least one engine computed, and the busy
	// total equals the sum of per-Round compute across engines.
	var busy int64
	for e := 0; e < 4; e++ {
		busy += snap.Counter(obs.Name("sim_engine_busy_cycles", "engine", e))
	}
	if busy == 0 {
		t.Error("no engine busy cycles recorded")
	}

	// Busy + idle must tile the Rounds exactly: engines x Σ span.
	var spanSum int64
	for e := 0; e < 4; e++ {
		spanSum += snap.Counter(obs.Name("sim_engine_busy_cycles", "engine", e))
		spanSum += snap.Counter(obs.Name("sim_engine_idle_cycles", "engine", e))
	}
	if want := 4 * rep.Cycles; spanSum != want {
		t.Errorf("busy+idle = %d, want engines x cycles = %d", spanSum, want)
	}

	if got := snap.Counter("noc_link_bytes_total"); got == 0 {
		t.Error("noc_link_bytes_total = 0, want > 0")
	}
	if got := snap.Counter("noc_byte_hops_total"); got != rep.NoCByteHops {
		t.Errorf("noc_byte_hops_total = %d, want %d", got, rep.NoCByteHops)
	}
	if got := snap.Counter("dram_row_hits_total"); got == 0 {
		t.Error("dram_row_hits_total = 0, want > 0")
	}
	if got := snap.Counter("dram_read_bytes_total"); got != rep.DRAMReadBytes {
		t.Errorf("dram_read_bytes_total = %d, want %d", got, rep.DRAMReadBytes)
	}
	hw := snap.Gauge("buffer_occupancy_highwater_bytes")
	if hw <= 0 {
		t.Errorf("buffer high-water = %v, want > 0", hw)
	}
	if cap := snap.Gauge("buffer_capacity_bytes"); hw > cap {
		t.Errorf("high-water %v exceeds capacity %v", hw, cap)
	}

	// Barrier-wait histogram observed one value per atom execution.
	bw, ok := snap.Histograms["sim_barrier_wait_cycles"]
	if !ok || bw.Count == 0 {
		t.Fatalf("barrier wait histogram missing or empty: %+v", bw)
	}
	if got := snap.Gauge("sim_pe_utilization"); got != rep.PEUtilization {
		t.Errorf("sim_pe_utilization = %v, want %v", got, rep.PEUtilization)
	}
	if got := snap.Gauge("cost_oracle_evaluations"); got <= 0 {
		t.Errorf("cost_oracle_evaluations = %v, want > 0", got)
	}
	if got := snap.Counter("sim_arena_round_epochs_total"); got != int64(rep.Rounds) {
		t.Errorf("arena round epochs = %d, want %d", got, rep.Rounds)
	}
}

// TestRunMetricsDoNotPerturb pins the determinism contract: enabling the
// registry must not change a single Report field.
func TestRunMetricsDoNotPerturb(t *testing.T) {
	bare, metered, _ := runInstrumented(t)
	if bare != metered {
		t.Errorf("instrumented Report differs:\nbare:    %+v\nmetered: %+v", bare, metered)
	}
}
