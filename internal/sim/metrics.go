package sim

import (
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// simMetrics holds the simulator's pre-registered instruments plus the
// per-run scratch the arena fills. All registration happens once at Run
// start; the Round loop touches only resolved instrument pointers, and
// with metrics disabled (cfg.Metrics == nil) newSimMetrics returns nil so
// the loop's single `sm != nil` checks are the whole cost.
type simMetrics struct {
	rounds         *obs.Counter
	flows          *obs.Counter
	mapPerms       *obs.Counter
	mapByteHops    *obs.Counter
	pipelineStalls *obs.Counter // Rounds where timing waited on prep
	poolReuse      *obs.Counter // Runs served from the runState pool
	roundSpan      *obs.Histogram
	barrierWait    *obs.Histogram
	nocBlockHist   *obs.Histogram
	dramBlockHist  *obs.Histogram

	busy []*obs.Counter // per-engine compute cycles
	idle []*obs.Counter // per-engine cycles not computing within Rounds

	linkBytes []int64 // per-link traffic this Run, folded by finish
	compOf    []int64 // per-engine compute scratch, cleared each Round

	reg  *obs.Registry
	mesh *noc.Mesh
}

// cycleBuckets spans 1 cycle to ~1G cycles geometrically.
func cycleBuckets() []float64 { return obs.ExpBuckets(1, 4, 16) }

// byteBuckets spans 64 B to ~2 GB geometrically.
func byteBuckets() []float64 { return obs.ExpBuckets(64, 4, 13) }

// newSimMetrics resolves every instrument the Round loop needs. Returns
// nil when reg is nil — the disabled fast path.
func newSimMetrics(reg *obs.Registry, mesh *noc.Mesh) *simMetrics {
	if reg == nil {
		return nil
	}
	n := mesh.Engines()
	sm := &simMetrics{
		rounds:         reg.Counter("sim_rounds_total"),
		flows:          reg.Counter("noc_flows_total"),
		mapPerms:       reg.Counter("mapping_permutations_total"),
		mapByteHops:    reg.Counter("mapping_byte_hops_total"),
		pipelineStalls: reg.Counter("sim_pipeline_stalls_total"),
		poolReuse:      reg.Counter("sim_pool_reuse_total"),
		roundSpan:      reg.Histogram("sim_round_span_cycles", cycleBuckets()),
		barrierWait:    reg.Histogram("sim_barrier_wait_cycles", cycleBuckets()),
		nocBlockHist:   reg.Histogram("sim_round_noc_block_cycles", cycleBuckets()),
		dramBlockHist:  reg.Histogram("sim_round_dram_block_cycles", cycleBuckets()),
		busy:           make([]*obs.Counter, n),
		idle:           make([]*obs.Counter, n),
		linkBytes:      make([]int64, mesh.NumLinks()),
		compOf:         make([]int64, n),
		reg:            reg,
		mesh:           mesh,
	}
	for e := 0; e < n; e++ {
		sm.busy[e] = reg.Counter(obs.Name("sim_engine_busy_cycles", "engine", e))
		sm.idle[e] = reg.Counter(obs.Name("sim_engine_idle_cycles", "engine", e))
	}
	return sm
}

// observeRound records one Round's metrics. endAll/endNoNoC/endNoMem are
// the Round's barrier times (see Run); engineEnd returns the cycle engine
// e's atom finished (compute and data both arrived).
func (sm *simMetrics) observeRound(span, nocBlock, dramBlock int64, perms int, mapHops int64, nFlows int) {
	sm.rounds.Inc()
	sm.roundSpan.ObserveInt(span)
	sm.nocBlockHist.ObserveInt(nocBlock)
	sm.dramBlockHist.ObserveInt(dramBlock)
	sm.mapPerms.Add(int64(perms))
	sm.mapByteHops.Add(mapHops)
	sm.flows.Add(int64(nFlows))
}

// finish folds the end-of-run state of every hardware model into the
// registry: per-link NoC traffic, DRAM row/queue stats, buffer occupancy,
// the cost-oracle cache and the Report's headline quantities.
func (sm *simMetrics) finish(rep *Report, man *buffer.Manager, hbm *dram.HBM, orc cost.Oracle, ar *arena) {
	reg := sm.reg

	// NoC: per-link distribution of this run's traffic, peak and total.
	linkHist := reg.Histogram("noc_link_bytes", byteBuckets())
	var total, peak int64
	for _, b := range sm.linkBytes {
		if b == 0 {
			continue
		}
		linkHist.ObserveInt(b)
		total += b
		if b > peak {
			peak = b
		}
	}
	reg.Counter("noc_link_bytes_total").Add(total)
	reg.Gauge("noc_link_bytes_peak").Max(float64(peak))
	reg.Counter("noc_byte_hops_total").Add(rep.NoCByteHops)
	reg.Gauge("noc_route_build_seconds").Set(sm.mesh.RouteBuildTime().Seconds())
	reg.Gauge("noc_links").SetInt(int64(sm.mesh.NumLinks()))

	// DRAM: row locality, queueing and traffic.
	ds := hbm.Stats()
	reg.Counter("dram_requests_total").Add(ds.Reads + ds.Writes)
	reg.Counter("dram_row_hits_total").Add(ds.RowHits)
	reg.Counter("dram_row_misses_total").Add(ds.RowMisses)
	reg.Counter("dram_queue_wait_cycles_total").Add(ds.QueueWaitCycles)
	reg.Gauge("dram_queue_depth_peak").Max(float64(ds.QueueDepthPeak))
	reg.Gauge("dram_row_hit_rate").Set(ds.RowHitRate())
	reg.Counter("dram_read_bytes_total").Add(rep.DRAMReadBytes)
	reg.Counter("dram_write_bytes_total").Add(rep.DRAMWriteBytes)

	// Buffer: evictions and occupancy high-water.
	reg.Counter("buffer_evictions_total").Add(man.Evictions())
	reg.Gauge("buffer_occupancy_highwater_bytes").Max(float64(man.HighWater()))
	reg.Gauge("buffer_capacity_bytes").SetInt(man.Capacity())

	// Simulator totals and the arena's epoch reuse (stamp bumps instead
	// of clears — each counted Round/group reused the same backing
	// slices).
	reg.Counter("sim_cycles_total").Add(rep.Cycles)
	reg.Counter("sim_compute_cycles_total").Add(rep.ComputeCycles)
	reg.Counter("sim_noc_blocked_cycles_total").Add(rep.NoCBlockedCycles)
	reg.Counter("sim_dram_blocked_cycles_total").Add(rep.DRAMBlockedCycles)
	reg.Counter("sim_macs_total").Add(rep.MACs)
	reg.Counter("sim_arena_round_epochs_total").Add(ar.roundStamp - ar.runRound0)
	reg.Counter("sim_arena_group_epochs_total").Add(ar.groupStamp - ar.runGroup0)
	reg.Gauge("sim_pe_utilization").Set(rep.PEUtilization)
	reg.Gauge("sim_compute_utilization").Set(rep.ComputeUtil)
	reg.Gauge("sim_onchip_reuse_ratio").Set(rep.OnChipReuseRatio)

	// Cost oracle: snapshot of the shared cache (gauges — the oracle is
	// cumulative across runs, so deltas belong to the caller).
	var st cost.Stats
	switch o := orc.(type) {
	case *cost.Instrumented:
		st = o.Stats()
	case *cost.Memo:
		st = o.Stats()
	default:
		return
	}
	reg.Gauge("cost_oracle_evaluations").SetInt(st.Evaluations)
	reg.Gauge("cost_oracle_hits").SetInt(st.Hits)
	reg.Gauge("cost_oracle_misses").SetInt(st.Misses)
	reg.Gauge("cost_oracle_hit_rate").Set(st.HitRate())
}
