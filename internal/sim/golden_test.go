package sim

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// TestGoldenReportDeterminism is the regression gate for the dense
// route-table/arena hot paths: for one cascade, one residual and one
// NAS-irregular zoo model, sim.Run must produce bit-identical Reports
// (a) across repeated runs and (b) across the dense arena path and the
// map-based reference path. The perf PR is a representation change, not
// a model change — any drift here is a bug.
func TestGoldenReportDeterminism(t *testing.T) {
	models := []struct {
		name   string
		batch  int
		bufDiv int64 // shrink BufferBytes by this factor (0 = default)
	}{
		{"tinyconv", 2, 0},    // cascade
		{"tinyresnet", 2, 0},  // residual bypasses
		{"pnascell", 2, 0},    // NAS-generated irregular cell
		{"tinyresnet", 2, 64}, // starved buffers: exercises eviction ranking
	}
	for _, mc := range models {
		t.Run(mc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mesh = noc.NewMesh(4, 4, 16)
			if mc.bufDiv > 0 {
				cfg.BufferBytes = int64(cfg.Engine.BufferBytes) / mc.bufDiv
			}
			d, s := pipeline(t, mc.name, mc.batch, cfg, schedule.Greedy)

			run := func(reference bool) Report {
				t.Helper()
				old := useReferenceFlows
				useReferenceFlows = reference
				defer func() { useReferenceFlows = old }()
				rep, err := Run(d, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}

			dense1 := run(false)
			dense2 := run(false)
			if dense1 != dense2 {
				t.Errorf("dense path not deterministic:\n  %+v\nvs\n  %+v", dense1, dense2)
			}
			ref := run(true)
			if dense1 != ref {
				t.Errorf("dense and reference flow paths disagree:\n  dense %+v\n  ref   %+v", dense1, ref)
			}
		})
	}
}
