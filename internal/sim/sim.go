// Package sim is the event-driven system simulator of the scalable
// accelerator (paper Sec. V-A): it executes a Round schedule with an
// atom-engine mapping against the engine, NoC, DRAM, buffer and energy
// models, and reports execution time, utilization, NoC-blocked fraction,
// on-chip reuse ratio, DRAM traffic and the energy breakdown.
//
// Rounds are barrier-synchronized (Sec. III). Within a Round the simulator
// is event-driven at flow granularity: DRAM requests queue on HBM channels,
// NoC flows serialize on shared mesh links along their XY routes, and each
// engine starts computing when its last input arrives. Eviction write-backs
// post to the HBM write queue without blocking the Round (write-buffer
// semantics), but they do delay later reads through channel occupancy.
package sim

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/energy"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/mapping"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// Config assembles the hardware models.
type Config struct {
	Mesh     *noc.Mesh
	Engine   engine.Config
	Dataflow engine.Dataflow
	DRAM     dram.Config
	Energy   energy.Model

	// BufferBytes overrides the per-engine buffer capacity used by the
	// buffer manager (default Engine.BufferBytes).
	BufferBytes int64
	// DoubleBuffer overlaps a Round's DRAM fetches with the previous
	// Round's compute (default true via DefaultConfig).
	DoubleBuffer bool
	// NaiveMapping places Rounds in plain zig-zag order without the
	// TransferCost permutation search or weight-affinity refinement —
	// the placement a reuse-oblivious runtime (e.g. Rammer) would use.
	NaiveMapping bool
	// Trace, when non-nil, receives one RoundTrace per executed Round
	// (see internal/trace for exporters).
	Trace func(RoundTrace)
	// Oracle prices atoms (default: a fresh memoized oracle per Run).
	// Pass one shared oracle across the annealer, scheduler, baselines and
	// simulator so identical tasks are evaluated once for the whole run.
	Oracle cost.Oracle
	// Metrics, when non-nil, receives the run's counters and histograms:
	// per-engine busy/idle cycles, barrier waits, per-link NoC traffic,
	// DRAM row hits/queueing, buffer occupancy and the cost-oracle cache
	// (see internal/obs). The nil default adds one predicted-not-taken
	// branch per Round — nothing on the flow hot path (pinned by
	// BenchmarkSimRun).
	Metrics *obs.Registry

	// Ctx, when non-nil, lets callers abandon a simulation: Run polls it
	// between Rounds and returns the context's error once cancelled. An
	// uncancelled context never changes the Report produced.
	Ctx context.Context
}

// AtomTrace records one atom's execution within a Round.
type AtomTrace struct {
	Atom   int
	Layer  int
	Sample int
	Engine int
	Cycles int64 // compute cycles on its engine
}

// RoundTrace records the timing of one Round for trace exporters.
type RoundTrace struct {
	Round      int
	Start, End int64 // absolute cycles
	ComputeEnd int64 // end if neither NoC nor DRAM ever blocked
	Atoms      []AtomTrace
	Flows      int
	DRAMRead   int64
	DRAMWrite  int64

	// Full-span lanes (Perfetto export): the DRAM prefetch window and
	// the Round end with NoC contention excluded, so exporters can draw
	// distinct DRAM-block [ComputeEnd, DRAMEnd] and NoC-block
	// [DRAMEnd, End] spans plus a DRAM read lane [DRAMIssue, DRAMReady].
	DRAMEnd   int64 // end if the NoC never blocked (compute + DRAM only)
	DRAMIssue int64 // cycle the Round's DRAM reads were issued (prefetch)
	DRAMReady int64 // cycle the last engine's DRAM data arrived
	FlowBytes int64 // Σ bytes of the Round's on-chip flows
}

// DefaultConfig returns the paper's 8x8-engine system (Sec. V-A). Mesh
// links carry 32 B/cycle (256-bit channels at 500 MHz = 16 GB/s per link),
// the common width for tensor-engine meshes.
func DefaultConfig() Config {
	return Config{
		Mesh:         noc.NewMesh(8, 8, 32),
		Engine:       engine.Default(),
		Dataflow:     engine.KCPartition,
		DRAM:         dram.Default(),
		Energy:       energy.Default(),
		DoubleBuffer: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mesh == nil {
		return fmt.Errorf("sim: nil mesh")
	}
	if c.BufferBytes < 0 {
		return fmt.Errorf("sim: negative BufferBytes %d", c.BufferBytes)
	}
	if err := c.Engine.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// UsableBufferBytes returns the per-engine buffer capacity in effect:
// the BufferBytes override when set, else the engine's configured SRAM.
func (c Config) UsableBufferBytes() int64 {
	if c.BufferBytes > 0 {
		return c.BufferBytes
	}
	return int64(c.Engine.BufferBytes)
}

// Report is the simulation outcome.
type Report struct {
	Cycles        int64   // total execution cycles
	TimeMS        float64 // Cycles at the engine clock
	Rounds        int
	ComputeCycles int64 // Σ per-Round slowest compute (memory-free time)

	NoCBlockedCycles  int64 // added by on-chip transfer waits
	DRAMBlockedCycles int64 // added by off-chip access waits

	MACs             int64
	PEUtilization    float64 // MACs / (Cycles x total PEs) — end-to-end
	ComputeUtil      float64 // MACs / (ComputeCycles x total PEs) — w/o memory delay
	DRAMReadBytes    int64
	DRAMWriteBytes   int64
	NoCByteHops      int64
	OnChipReuseRatio float64 // fraction of input bytes served from distributed buffers
	Evictions        int64

	Energy energy.Breakdown
}

// NoCOverheadFraction returns the share of total time the NoC blocks
// computation (Table II row "NoC Overhead").
func (r Report) NoCOverheadFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.NoCBlockedCycles) / float64(r.Cycles)
}

// Run simulates the schedule on the configured hardware.
func Run(d *atom.DAG, s *schedule.Schedule, cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	n := cfg.Mesh.Engines()
	man, err := buffer.New(d, s, n, cfg.UsableBufferBytes())
	if err != nil {
		return Report{}, err
	}
	mapper := mapping.New(cfg.Mesh, d)
	hbm := dram.New(cfg.DRAM)
	orc := cost.Or(cfg.Oracle)
	ar := newArena(cfg.Mesh)
	sm := newSimMetrics(cfg.Metrics, cfg.Mesh)
	if sm != nil {
		ar.linkTraffic = sm.linkBytes
	}

	var rep Report
	rep.Rounds = s.NumRounds()
	var totalInputs, onChipInputs int64
	now := int64(0) // current time (Round start)
	prevStart := int64(0)
	for t, round := range s.Rounds {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return Report{}, fmt.Errorf("sim: %w", err)
			}
		}
		var placed mapping.Result
		if cfg.NaiveMapping {
			placed = mapper.PlaceRound(round.Atoms, func(int) int { return -1 })
		} else {
			placed = mapper.PlaceRoundWeighted(round.Atoms, man.Locate, man.HasWeights)
		}
		io, err := man.ExecuteRound(t, placed.EngineOf)
		if err != nil {
			return Report{}, err
		}

		// --- DRAM reads: one aggregate request per engine. With double
		// buffering the request is issued at the previous Round's start
		// (prefetch); data is usable no earlier than this Round's start.
		ar.beginRound()
		issueAt := now
		if cfg.DoubleBuffer {
			issueAt = prevStart
		}
		// Deterministic engine order.
		engines := ar.engines[:0]
		for _, id := range round.Atoms {
			engines = append(engines, placed.EngineOf[id])
		}
		slices.Sort(engines)
		ar.engines = engines
		for _, e := range engines {
			if b := io.DRAMReadBytes[e]; b > 0 {
				done := hbm.Read(issueAt, b)
				if done < now {
					done = now
				}
				ar.setDRAMReady(e, done)
			}
		}

		// --- NoC flows: link-level serialization along XY routes, with
		// tagged weight broadcasts delivered as multicast trees.
		var roundByteHops int64
		if useReferenceFlows {
			ready, bh := simulateFlowsReference(cfg.Mesh, io.Flows, now)
			for e, at := range ready {
				ar.setNoCReady(e, at)
			}
			roundByteHops = bh
		} else {
			roundByteHops = ar.simulateFlows(io.Flows, now)
		}

		// --- Compute: engines stream inputs concurrently with execution
		// (tile-level double buffering), so an engine finishes when both
		// its compute time has elapsed and its last input byte has
		// arrived — the Round is bounded by the slower of computation and
		// data delivery rather than their sum.
		var endAll, endNoNoC, maxComp int64
		for _, id := range round.Atoms {
			e := placed.EngineOf[id]
			comp := s.ComputeCycles[id]
			if comp > maxComp {
				maxComp = comp
			}
			end := now + comp
			if r, ok := ar.getDRAMReady(e); ok && r > end {
				end = r
			}
			if end > endNoNoC {
				endNoNoC = end
			}
			if r, ok := ar.getNoCReady(e); ok && r > end {
				end = r
			}
			if end > endAll {
				endAll = end
			}
		}
		endNoMem := now + maxComp
		if endNoNoC < endNoMem {
			endNoNoC = endNoMem
		}
		if endAll < endNoNoC {
			endAll = endNoNoC
		}

		// --- Write-backs post at Round end without blocking it.
		for _, e := range engines {
			if b := io.DRAMWriteBytes[e]; b > 0 {
				hbm.Write(endAll, b)
			}
		}

		// --- Metrics (one branch when disabled). The barrier-wait pass
		// recomputes each atom's finish time against the Round barrier;
		// busy/idle split the Round span per engine.
		if sm != nil {
			span := endAll - now
			sm.observeRound(span, endAll-endNoNoC, endNoNoC-endNoMem,
				placed.Perms, placed.ByteHops, len(io.Flows))
			for _, id := range round.Atoms {
				e := placed.EngineOf[id]
				comp := s.ComputeCycles[id]
				end := now + comp
				if r, ok := ar.getDRAMReady(e); ok && r > end {
					end = r
				}
				if r, ok := ar.getNoCReady(e); ok && r > end {
					end = r
				}
				sm.barrierWait.ObserveInt(endAll - end)
				sm.busy[e].Add(comp)
				sm.compOf[e] = comp
			}
			for e := 0; e < n; e++ {
				sm.idle[e].Add(span - sm.compOf[e])
				sm.compOf[e] = 0
			}
		}

		// --- Accounting.
		rep.ComputeCycles += maxComp
		rep.NoCBlockedCycles += endAll - endNoNoC
		rep.DRAMBlockedCycles += endNoNoC - endNoMem
		for _, id := range round.Atoms {
			c := orc.Evaluate(cfg.Engine, cfg.Dataflow, d.Atoms[id].Task)
			rep.MACs += c.MACs
		}
		rep.NoCByteHops += roundByteHops
		rep.Energy.AddNoC(cfg.Energy, roundByteHops)
		var sramR, sramW int64
		for e := 0; e < n; e++ {
			sramR += io.SRAMReadBytes[e]
			sramW += io.SRAMWriteBytes[e]
		}
		rep.Energy.AddSRAM(cfg.Energy, sramR, sramW)
		rep.DRAMReadBytes += sumSlice(io.DRAMReadBytes)
		rep.DRAMWriteBytes += sumSlice(io.DRAMWriteBytes)
		totalInputs += io.InputBytesTotal
		onChipInputs += io.InputBytesOnChip

		if cfg.Trace != nil {
			tr := RoundTrace{
				Round: t, Start: now, End: endAll, ComputeEnd: endNoMem,
				Flows:     len(io.Flows),
				DRAMRead:  sumSlice(io.DRAMReadBytes),
				DRAMWrite: sumSlice(io.DRAMWriteBytes),
				DRAMEnd:   endNoNoC,
				DRAMIssue: issueAt,
				DRAMReady: now,
			}
			for _, e := range engines {
				if r, ok := ar.getDRAMReady(e); ok && r > tr.DRAMReady {
					tr.DRAMReady = r
				}
			}
			for _, f := range io.Flows {
				tr.FlowBytes += f.Bytes
			}
			for _, id := range round.Atoms {
				a := d.Atoms[id]
				tr.Atoms = append(tr.Atoms, AtomTrace{
					Atom: id, Layer: a.Layer, Sample: a.Sample,
					Engine: placed.EngineOf[id], Cycles: s.ComputeCycles[id],
				})
			}
			cfg.Trace(tr)
		}

		prevStart = now
		now = endAll
	}

	rep.Cycles = now
	rep.TimeMS = float64(now) / (cfg.Engine.FreqMHz * 1e3)
	rep.Evictions = man.Evictions()
	if totalInputs > 0 {
		rep.OnChipReuseRatio = float64(onChipInputs) / float64(totalInputs)
	}
	totalPEs := int64(n * cfg.Engine.NumPEs() * cfg.Engine.MACsPerPE)
	if rep.Cycles > 0 {
		rep.PEUtilization = float64(rep.MACs) / (float64(rep.Cycles) * float64(totalPEs))
	}
	if rep.ComputeCycles > 0 {
		rep.ComputeUtil = float64(rep.MACs) / (float64(rep.ComputeCycles) * float64(totalPEs))
	}
	rep.Energy.AddMACs(cfg.Energy, rep.MACs)
	rep.Energy.AddDRAM(cfg.Energy, rep.DRAMReadBytes+rep.DRAMWriteBytes)
	rep.Energy.AddStatic(cfg.Energy, rep.Cycles*int64(n))
	if sm != nil {
		sm.finish(&rep, man, hbm, orc, ar)
	}
	return rep, nil
}

// useReferenceFlows routes Run through the map-based reference NoC path
// below instead of the dense arena path (a test hook: the golden
// determinism test proves both paths produce bit-identical Reports).
var useReferenceFlows = false

// simulateFlowsReference serializes the Round's flows on shared links
// (deterministic order) and returns per-destination-engine arrival times
// plus the Round's byte-hop volume. Unicast flows each occupy every link
// of their XY route; flows sharing (Src, Tag != 0) carry one tensor to
// many engines and occupy the union of their routes once (switch-level
// replication, as in weight broadcast).
//
// This is the executable specification of the NoC contention model; the
// production path is arena.simulateFlows, which replays the same walk
// over link-ID-indexed epoch-stamped slices without allocating.
func simulateFlowsReference(mesh *noc.Mesh, flows []buffer.Flow, start int64) (map[int]int64, int64) {
	type mkey struct {
		src int
		tag int64
	}
	groups := make(map[mkey][]buffer.Flow)
	var order []mkey
	for _, f := range flows {
		k := mkey{src: f.Src, tag: f.GroupKey()}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], f)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].src != order[j].src {
			return order[i].src < order[j].src
		}
		ti, tj := order[i].tag, order[j].tag
		ai, aj := ti, tj
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai < aj
		}
		return ti < tj
	})

	linkFree := make(map[noc.Link]int64)
	ready := make(map[int]int64)
	var byteHops int64
	for _, k := range order {
		fs := groups[k]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Dst < fs[j].Dst })
		bytes := fs[0].Bytes
		for _, f := range fs {
			if f.Bytes > bytes {
				bytes = f.Bytes
			}
		}
		ser := (bytes + int64(mesh.LinkBytes) - 1) / int64(mesh.LinkBytes)
		// Walk each destination's route; a link is claimed once per tree
		// (switch-level replication). A link cannot start forwarding
		// before the stream's head reaches it from the upstream link
		// (cut-through), nor while a previous tensor occupies it.
		linkStart := make(map[noc.Link]int64)
		for _, f := range fs {
			head := start
			var lastStart int64 = start
			path := mesh.Path(f.Src, f.Dst)
			for _, l := range path {
				s, claimed := linkStart[l]
				if !claimed {
					s = head
					if lf := linkFree[l]; lf > s {
						s = lf
					}
					linkStart[l] = s
					linkFree[l] = s + ser
				}
				head = s + mesh.HopCycles
				lastStart = s
			}
			arrive := start
			if len(path) > 0 {
				arrive = lastStart + ser + mesh.HopCycles
			}
			if arrive > ready[f.Dst] {
				ready[f.Dst] = arrive
			}
		}
		byteHops += bytes * int64(len(linkStart))
	}
	return ready, byteHops
}

func sumSlice(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
