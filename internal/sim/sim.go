// Package sim is the event-driven system simulator of the scalable
// accelerator (paper Sec. V-A): it executes a Round schedule with an
// atom-engine mapping against the engine, NoC, DRAM, buffer and energy
// models, and reports execution time, utilization, NoC-blocked fraction,
// on-chip reuse ratio, DRAM traffic and the energy breakdown.
//
// Rounds are barrier-synchronized (Sec. III). Within a Round the simulator
// is event-driven at flow granularity: DRAM requests queue on HBM channels,
// NoC flows serialize on shared mesh links along their XY routes, and each
// engine starts computing when its last input arrives. Eviction write-backs
// post to the HBM write queue without blocking the Round (write-buffer
// semantics), but they do delay later reads through channel occupancy.
package sim

import (
	"context"
	"fmt"
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/energy"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// Config assembles the hardware models.
type Config struct {
	Mesh     *noc.Mesh
	Engine   engine.Config
	Dataflow engine.Dataflow
	DRAM     dram.Config
	Energy   energy.Model

	// BufferBytes overrides the per-engine buffer capacity used by the
	// buffer manager (default Engine.BufferBytes).
	BufferBytes int64
	// DoubleBuffer overlaps a Round's DRAM fetches with the previous
	// Round's compute (default true via DefaultConfig).
	DoubleBuffer bool
	// Pipeline runs Round t+1's placement and buffer replay on a second
	// goroutine while Round t is being timed (default true via
	// DefaultConfig). The two stages share no mutable state, so the
	// Report is bit-identical with the pipeline on or off — pinned by
	// TestSimPipelineParity and the zoo digest matrix.
	Pipeline bool
	// NaiveMapping places Rounds in plain zig-zag order without the
	// TransferCost permutation search or weight-affinity refinement —
	// the placement a reuse-oblivious runtime (e.g. Rammer) would use.
	NaiveMapping bool
	// Trace, when non-nil, receives one RoundTrace per executed Round
	// (see internal/trace for exporters).
	Trace func(RoundTrace)
	// Oracle prices atoms (default: a fresh memoized oracle per Run).
	// Pass one shared oracle across the annealer, scheduler, baselines and
	// simulator so identical tasks are evaluated once for the whole run.
	Oracle cost.Oracle
	// Metrics, when non-nil, receives the run's counters and histograms:
	// per-engine busy/idle cycles, barrier waits, per-link NoC traffic,
	// DRAM row hits/queueing, buffer occupancy and the cost-oracle cache
	// (see internal/obs). The nil default adds one predicted-not-taken
	// branch per Round — nothing on the flow hot path (pinned by
	// BenchmarkSimRun).
	Metrics *obs.Registry

	// Ctx, when non-nil, lets callers abandon a simulation: Run polls it
	// between Rounds and returns the context's error once cancelled. An
	// uncancelled context never changes the Report produced.
	Ctx context.Context
}

// AtomTrace records one atom's execution within a Round.
type AtomTrace struct {
	Atom   int
	Layer  int
	Sample int
	Engine int
	Cycles int64 // compute cycles on its engine
}

// RoundTrace records the timing of one Round for trace exporters.
type RoundTrace struct {
	Round      int
	Start, End int64 // absolute cycles
	ComputeEnd int64 // end if neither NoC nor DRAM ever blocked
	Atoms      []AtomTrace
	Flows      int
	DRAMRead   int64
	DRAMWrite  int64

	// Full-span lanes (Perfetto export): the DRAM prefetch window and
	// the Round end with NoC contention excluded, so exporters can draw
	// distinct DRAM-block [ComputeEnd, DRAMEnd] and NoC-block
	// [DRAMEnd, End] spans plus a DRAM read lane [DRAMIssue, DRAMReady].
	DRAMEnd   int64 // end if the NoC never blocked (compute + DRAM only)
	DRAMIssue int64 // cycle the Round's DRAM reads were issued (prefetch)
	DRAMReady int64 // cycle the last engine's DRAM data arrived
	FlowBytes int64 // Σ bytes of the Round's on-chip flows
}

// DefaultConfig returns the paper's 8x8-engine system (Sec. V-A). Mesh
// links carry 32 B/cycle (256-bit channels at 500 MHz = 16 GB/s per link),
// the common width for tensor-engine meshes.
func DefaultConfig() Config {
	return Config{
		Mesh:         noc.NewMesh(8, 8, 32),
		Engine:       engine.Default(),
		Dataflow:     engine.KCPartition,
		DRAM:         dram.Default(),
		Energy:       energy.Default(),
		DoubleBuffer: true,
		Pipeline:     true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mesh == nil {
		return fmt.Errorf("sim: nil mesh")
	}
	if c.BufferBytes < 0 {
		return fmt.Errorf("sim: negative BufferBytes %d", c.BufferBytes)
	}
	if err := c.Engine.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// UsableBufferBytes returns the per-engine buffer capacity in effect:
// the BufferBytes override when set, else the engine's configured SRAM.
func (c Config) UsableBufferBytes() int64 {
	if c.BufferBytes > 0 {
		return c.BufferBytes
	}
	return int64(c.Engine.BufferBytes)
}

// Report is the simulation outcome.
type Report struct {
	Cycles        int64   // total execution cycles
	TimeMS        float64 // Cycles at the engine clock
	Rounds        int
	ComputeCycles int64 // Σ per-Round slowest compute (memory-free time)

	NoCBlockedCycles  int64 // added by on-chip transfer waits
	DRAMBlockedCycles int64 // added by off-chip access waits

	MACs             int64
	PEUtilization    float64 // MACs / (Cycles x total PEs) — end-to-end
	ComputeUtil      float64 // MACs / (ComputeCycles x total PEs) — w/o memory delay
	DRAMReadBytes    int64
	DRAMWriteBytes   int64
	NoCByteHops      int64
	OnChipReuseRatio float64 // fraction of input bytes served from distributed buffers
	Evictions        int64

	Energy energy.Breakdown
}

// NoCOverheadFraction returns the share of total time the NoC blocks
// computation (Table II row "NoC Overhead").
func (r Report) NoCOverheadFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.NoCBlockedCycles) / float64(r.Cycles)
}

// Run simulates the schedule on the configured hardware.
//
// The Round loop is a two-stage software pipeline (see pipeline.go):
// round t+1's placement and buffer replay can run on a second goroutine
// while round t is timed, and the mapper/buffer-manager/arena trio is
// pooled across Run calls keyed by mesh shape. Neither changes the
// Report by a single bit — Reports are pinned by the golden and zoo
// digest tests with the pipeline both on and off.
func Run(d *atom.DAG, s *schedule.Schedule, cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	n := cfg.Mesh.Engines()
	st, reused, err := acquireState(cfg, d, s)
	if err != nil {
		return Report{}, err
	}
	defer releaseState(cfg.Mesh, st)
	hbm := dram.New(cfg.DRAM)
	orc := cost.Or(cfg.Oracle)
	sm := newSimMetrics(cfg.Metrics, cfg.Mesh)
	if sm != nil {
		st.ar.linkTraffic = sm.linkBytes
		if reused {
			sm.poolReuse.Inc()
		}
	}

	r := &runner{
		cfg: cfg, d: d, s: s, n: n,
		man: st.man, mapper: st.mapper, ar: st.ar,
		hbm: hbm, orc: orc, sm: sm,
	}
	r.rep.Rounds = s.NumRounds()
	if cfg.Pipeline && s.NumRounds() > 1 {
		err = r.runPipelined()
	} else {
		err = r.runSerial()
	}
	if err != nil {
		return Report{}, err
	}

	rep := &r.rep
	rep.Cycles = r.now
	rep.TimeMS = float64(r.now) / (cfg.Engine.FreqMHz * 1e3)
	rep.Evictions = st.man.Evictions()
	if r.totalInputs > 0 {
		rep.OnChipReuseRatio = float64(r.onChipInputs) / float64(r.totalInputs)
	}
	totalPEs := int64(n * cfg.Engine.NumPEs() * cfg.Engine.MACsPerPE)
	if rep.Cycles > 0 {
		rep.PEUtilization = float64(rep.MACs) / (float64(rep.Cycles) * float64(totalPEs))
	}
	if rep.ComputeCycles > 0 {
		rep.ComputeUtil = float64(rep.MACs) / (float64(rep.ComputeCycles) * float64(totalPEs))
	}
	rep.Energy.AddMACs(cfg.Energy, rep.MACs)
	rep.Energy.AddDRAM(cfg.Energy, rep.DRAMReadBytes+rep.DRAMWriteBytes)
	rep.Energy.AddStatic(cfg.Energy, rep.Cycles*int64(n))
	if sm != nil {
		sm.finish(rep, st.man, hbm, orc, st.ar)
	}
	return r.rep, nil
}

// useReferenceFlows routes Run through the map-based reference NoC path
// below instead of the dense arena path (a test hook: the golden
// determinism test proves both paths produce bit-identical Reports).
var useReferenceFlows = false

// simulateFlowsReference serializes the Round's flows on shared links
// (deterministic order) and returns per-destination-engine arrival times
// plus the Round's byte-hop volume. Unicast flows each occupy every link
// of their XY route; flows sharing (Src, Tag != 0) carry one tensor to
// many engines and occupy the union of their routes once (switch-level
// replication, as in weight broadcast).
//
// This is the executable specification of the NoC contention model; the
// production path is arena.simulateFlows, which replays the same walk
// over link-ID-indexed epoch-stamped slices without allocating.
func simulateFlowsReference(mesh *noc.Mesh, flows []buffer.Flow, start int64) (map[int]int64, int64) {
	type mkey struct {
		src int
		tag int64
	}
	groups := make(map[mkey][]buffer.Flow)
	var order []mkey
	for _, f := range flows {
		k := mkey{src: f.Src, tag: f.GroupKey()}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], f)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].src != order[j].src {
			return order[i].src < order[j].src
		}
		ti, tj := order[i].tag, order[j].tag
		ai, aj := ti, tj
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai < aj
		}
		return ti < tj
	})

	linkFree := make(map[noc.Link]int64)
	ready := make(map[int]int64)
	var byteHops int64
	for _, k := range order {
		fs := groups[k]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Dst < fs[j].Dst })
		bytes := fs[0].Bytes
		for _, f := range fs {
			if f.Bytes > bytes {
				bytes = f.Bytes
			}
		}
		ser := (bytes + int64(mesh.LinkBytes) - 1) / int64(mesh.LinkBytes)
		// Walk each destination's route; a link is claimed once per tree
		// (switch-level replication). A link cannot start forwarding
		// before the stream's head reaches it from the upstream link
		// (cut-through), nor while a previous tensor occupies it.
		linkStart := make(map[noc.Link]int64)
		for _, f := range fs {
			head := start
			var lastStart int64 = start
			path := mesh.Path(f.Src, f.Dst)
			for _, l := range path {
				s, claimed := linkStart[l]
				if !claimed {
					s = head
					if lf := linkFree[l]; lf > s {
						s = lf
					}
					linkStart[l] = s
					linkFree[l] = s + ser
				}
				head = s + mesh.HopCycles
				lastStart = s
			}
			arrive := start
			if len(path) > 0 {
				arrive = lastStart + ser + mesh.HopCycles
			}
			if arrive > ready[f.Dst] {
				ready[f.Dst] = arrive
			}
		}
		byteHops += bytes * int64(len(linkStart))
	}
	return ready, byteHops
}

func sumSlice(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
