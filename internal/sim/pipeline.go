package sim

import (
	"fmt"
	"slices"
	"sync"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/buffer"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/mapping"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// The simulator's Round loop is two dependency chains glued together:
//
//	prep(t):  placement (mapper) + buffer replay (manager) — depends
//	          only on prep(t-1), because the buffer state a placement
//	          reads is exactly the state ExecuteRound(t-1) committed.
//	time(t):  DRAM queueing, NoC flows, the compute barrier and all
//	          accounting — depends on prep(t) and time(t-1) (the HBM
//	          channel clocks and `now`), never on prep(t+1).
//
// So prep may run ahead of time on its own goroutine: a bounded ring of
// prepSlots carries each Round's placement and IO from the prep stage to
// the timing stage, and because each stage remains internally sequential
// the interleaving cannot change a single value either stage computes —
// the pipelined Report is bit-identical to the serial one by
// construction (and pinned by TestSimPipelineParity and the zoo digest
// matrix).

// pipelineDepth is the prep-slot ring size: how many Rounds prep may run
// ahead of timing. Small — each slot holds a RoundIO — and enough to
// ride out prep-cost jitter between Rounds.
const pipelineDepth = 4

// prepSlot carries one prepared Round from the prep stage to the timing
// stage. Slots are recycled through the ring, so their RoundIO slices and
// engine lists stop allocating after the first few Rounds.
type prepSlot struct {
	t       int
	placed  mapping.Result
	io      buffer.RoundIO
	engines []int       // engines of the Round's atoms, sorted (DRAM issue order)
	keyed   []keyedFlow // io.Flows in deterministic link-claim order
	sorter  flowSorter
	err     error
}

// runner is one sim.Run in flight: the hardware models plus the timing
// stage's running accumulators. The prep stage touches only man and
// mapper; the timing stage touches everything else — the disjointness is
// what legalizes the pipeline.
type runner struct {
	cfg    Config
	d      *atom.DAG
	s      *schedule.Schedule
	n      int
	man    *buffer.Manager
	mapper *mapping.Mapper
	hbm    *dram.HBM
	orc    cost.Oracle
	ar     *arena
	sm     *simMetrics

	rep          Report
	totalInputs  int64
	onChipInputs int64
	now          int64 // current time (Round start)
	prevStart    int64
}

// pollCtx returns the configured context's error, if any.
func (r *runner) pollCtx() error {
	if r.cfg.Ctx != nil {
		if err := r.cfg.Ctx.Err(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// prep runs the pipeline's first stage for Round t into slot: placement,
// buffer replay and the sorted engine list. Only the mapper and the
// buffer manager are touched.
func (r *runner) prep(t int, slot *prepSlot) {
	slot.t = t
	round := r.s.Rounds[t]
	if r.cfg.NaiveMapping {
		slot.placed = r.mapper.PlaceRound(round.Atoms, func(int) int { return -1 })
	} else {
		slot.placed = r.mapper.PlaceRoundWeighted(round.Atoms, r.man.Locate, r.man.HasWeights)
	}
	if slot.err = r.man.ExecuteRoundInto(t, slot.placed, &slot.io); slot.err != nil {
		return
	}
	engines := slot.engines[:0]
	for _, id := range round.Atoms {
		engines = append(engines, slot.placed.Engine(id))
	}
	slices.Sort(engines)
	slot.engines = engines
	if !useReferenceFlows {
		slot.keyed = slot.sorter.sort(slot.io.Flows)
	}
}

// time runs the pipeline's second stage on a prepared Round: DRAM reads,
// NoC flows, the compute barrier, write-backs, metrics and accounting.
func (r *runner) time(slot *prepSlot) {
	t := slot.t
	round := r.s.Rounds[t]
	cfg := &r.cfg
	s := r.s
	ar := r.ar
	io := &slot.io
	placed := slot.placed
	engines := slot.engines
	now := r.now

	// --- DRAM reads: one aggregate request per engine. With double
	// buffering the request is issued at the previous Round's start
	// (prefetch); data is usable no earlier than this Round's start.
	ar.beginRound()
	issueAt := now
	if cfg.DoubleBuffer {
		issueAt = r.prevStart
	}
	for _, e := range engines {
		if b := io.DRAMReadBytes[e]; b > 0 {
			done := r.hbm.Read(issueAt, b)
			if done < now {
				done = now
			}
			ar.setDRAMReady(e, done)
		}
	}

	// --- NoC flows: link-level serialization along XY routes, with
	// tagged weight broadcasts delivered as multicast trees.
	var roundByteHops int64
	if useReferenceFlows {
		ready, bh := simulateFlowsReference(cfg.Mesh, io.Flows, now)
		for e, at := range ready {
			ar.setNoCReady(e, at)
		}
		roundByteHops = bh
	} else {
		roundByteHops = ar.walkFlows(io.Flows, slot.keyed, now)
	}

	// --- Compute: engines stream inputs concurrently with execution
	// (tile-level double buffering), so an engine finishes when both
	// its compute time has elapsed and its last input byte has
	// arrived — the Round is bounded by the slower of computation and
	// data delivery rather than their sum.
	var endAll, endNoNoC, maxComp int64
	for _, id := range round.Atoms {
		e := placed.Engine(id)
		comp := s.ComputeCycles[id]
		if comp > maxComp {
			maxComp = comp
		}
		end := now + comp
		if rr, ok := ar.getDRAMReady(e); ok && rr > end {
			end = rr
		}
		if end > endNoNoC {
			endNoNoC = end
		}
		if rr, ok := ar.getNoCReady(e); ok && rr > end {
			end = rr
		}
		if end > endAll {
			endAll = end
		}
	}
	endNoMem := now + maxComp
	if endNoNoC < endNoMem {
		endNoNoC = endNoMem
	}
	if endAll < endNoNoC {
		endAll = endNoNoC
	}

	// --- Write-backs post at Round end without blocking it.
	for _, e := range engines {
		if b := io.DRAMWriteBytes[e]; b > 0 {
			r.hbm.Write(endAll, b)
		}
	}

	// --- Metrics (one branch when disabled). The barrier-wait pass
	// recomputes each atom's finish time against the Round barrier;
	// busy/idle split the Round span per engine.
	if sm := r.sm; sm != nil {
		span := endAll - now
		sm.observeRound(span, endAll-endNoNoC, endNoNoC-endNoMem,
			placed.Perms, placed.ByteHops, len(io.Flows))
		for _, id := range round.Atoms {
			e := placed.Engine(id)
			comp := s.ComputeCycles[id]
			end := now + comp
			if rr, ok := ar.getDRAMReady(e); ok && rr > end {
				end = rr
			}
			if rr, ok := ar.getNoCReady(e); ok && rr > end {
				end = rr
			}
			sm.barrierWait.ObserveInt(endAll - end)
			sm.busy[e].Add(comp)
			sm.compOf[e] = comp
		}
		for e := 0; e < r.n; e++ {
			sm.idle[e].Add(span - sm.compOf[e])
			sm.compOf[e] = 0
		}
	}

	// --- Accounting.
	rep := &r.rep
	rep.ComputeCycles += maxComp
	rep.NoCBlockedCycles += endAll - endNoNoC
	rep.DRAMBlockedCycles += endNoNoC - endNoMem
	for _, id := range round.Atoms {
		c := r.orc.Evaluate(cfg.Engine, cfg.Dataflow, r.d.Atoms[id].Task)
		rep.MACs += c.MACs
	}
	rep.NoCByteHops += roundByteHops
	rep.Energy.AddNoC(cfg.Energy, roundByteHops)
	var sramR, sramW int64
	for e := 0; e < r.n; e++ {
		sramR += io.SRAMReadBytes[e]
		sramW += io.SRAMWriteBytes[e]
	}
	rep.Energy.AddSRAM(cfg.Energy, sramR, sramW)
	rep.DRAMReadBytes += sumSlice(io.DRAMReadBytes)
	rep.DRAMWriteBytes += sumSlice(io.DRAMWriteBytes)
	r.totalInputs += io.InputBytesTotal
	r.onChipInputs += io.InputBytesOnChip

	if cfg.Trace != nil {
		tr := RoundTrace{
			Round: t, Start: now, End: endAll, ComputeEnd: endNoMem,
			Flows:     len(io.Flows),
			DRAMRead:  sumSlice(io.DRAMReadBytes),
			DRAMWrite: sumSlice(io.DRAMWriteBytes),
			DRAMEnd:   endNoNoC,
			DRAMIssue: issueAt,
			DRAMReady: now,
		}
		for _, e := range engines {
			if rr, ok := ar.getDRAMReady(e); ok && rr > tr.DRAMReady {
				tr.DRAMReady = rr
			}
		}
		for _, f := range io.Flows {
			tr.FlowBytes += f.Bytes
		}
		for _, id := range round.Atoms {
			a := r.d.Atoms[id]
			tr.Atoms = append(tr.Atoms, AtomTrace{
				Atom: id, Layer: a.Layer, Sample: a.Sample,
				Engine: placed.Engine(id), Cycles: s.ComputeCycles[id],
			})
		}
		cfg.Trace(tr)
	}

	r.prevStart = now
	r.now = endAll
}

// runSerial executes prep and time back to back on the calling goroutine
// — the cfg.Pipeline=false path, and the reference the pipelined path is
// tested against.
func (r *runner) runSerial() error {
	var slot prepSlot
	for t := range r.s.Rounds {
		if err := r.pollCtx(); err != nil {
			return err
		}
		r.prep(t, &slot)
		if slot.err != nil {
			return slot.err
		}
		r.time(&slot)
		r.mapper.Recycle(&slot.placed)
	}
	return nil
}

// runPipelined overlaps prep(t+1) with time(t). One goroutine runs the
// prep chain in Round order, feeding prepared slots through a bounded
// ring; the calling goroutine times them in the same order. Cancellation
// (ctx or a replay error) closes stop, which unblocks the prep goroutine
// from either channel operation; the deferred drain then waits for it to
// exit, so Run never leaks the goroutine.
func (r *runner) runPipelined() error {
	free := make(chan *prepSlot, pipelineDepth)
	ready := make(chan *prepSlot, pipelineDepth)
	for i := 0; i < pipelineDepth; i++ {
		free <- &prepSlot{}
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	go func() {
		defer close(ready)
		for t := range r.s.Rounds {
			var slot *prepSlot
			select {
			case slot = <-free:
			case <-stop:
				return
			}
			r.prep(t, slot)
			bad := slot.err != nil
			select {
			case ready <- slot:
			case <-stop:
				return
			}
			if bad {
				return
			}
		}
	}()
	defer func() {
		halt()
		for range ready { // wait for the prep goroutine to exit
		}
	}()

	for range r.s.Rounds {
		if err := r.pollCtx(); err != nil {
			return err
		}
		var slot *prepSlot
		select {
		case slot = <-ready:
		default:
			// Timing is ahead of prep: account the bubble, then block.
			if r.sm != nil {
				r.sm.pipelineStalls.Inc()
			}
			slot = <-ready
		}
		if slot == nil {
			return fmt.Errorf("sim: pipeline stopped unexpectedly")
		}
		if slot.err != nil {
			return slot.err
		}
		r.time(slot)
		r.mapper.Recycle(&slot.placed)
		free <- slot // never blocks: the ring holds at most pipelineDepth slots
	}
	return nil
}

// runState is the pooled per-mesh-shape trio rebuilt by every sim.Run
// before this PR: the buffer manager, the mapper and the timing arena.
// All three have O(atoms) or O(links) footprints and cheap Reset paths,
// so serve requests and sweep iterations reuse them instead of
// reallocating (counted by sim_pool_reuse_total).
type runState struct {
	man    *buffer.Manager
	mapper *mapping.Mapper
	ar     *arena
}

// poolKey keys the state pools by what fixes the pooled slices' sizes:
// engine count and directed link count. Two meshes agreeing on both can
// swap states after a Reset (which re-derives zig-zag order and routes
// from the actual mesh).
type poolKey struct {
	engines int
	links   int
}

var statePools sync.Map // poolKey -> *sync.Pool of *runState

func statePool(k poolKey) *sync.Pool {
	if p, ok := statePools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := statePools.LoadOrStore(k, &sync.Pool{})
	return p.(*sync.Pool)
}

// acquireState pops a pooled runState for the mesh shape and resets it
// for this DAG/schedule/config, or builds a fresh one. The second result
// reports whether a pooled state was reused.
func acquireState(cfg Config, d *atom.DAG, s *schedule.Schedule) (*runState, bool, error) {
	k := poolKey{engines: cfg.Mesh.Engines(), links: cfg.Mesh.NumLinks()}
	if v := statePool(k).Get(); v != nil {
		st := v.(*runState)
		if err := st.man.Reset(d, s, k.engines, cfg.UsableBufferBytes()); err != nil {
			return nil, false, err
		}
		st.mapper.Reset(cfg.Mesh, d)
		st.ar.reset(cfg.Mesh)
		return st, true, nil
	}
	man, err := buffer.New(d, s, k.engines, cfg.UsableBufferBytes())
	if err != nil {
		return nil, false, err
	}
	return &runState{
		man:    man,
		mapper: mapping.New(cfg.Mesh, d),
		ar:     newArena(cfg.Mesh),
	}, false, nil
}

// releaseState returns st to its mesh-shape pool. The arena's metrics
// hook is detached first so a pooled state never writes into a finished
// run's registry.
func releaseState(mesh *noc.Mesh, st *runState) {
	st.ar.linkTraffic = nil
	statePool(poolKey{engines: mesh.Engines(), links: mesh.NumLinks()}).Put(st)
}
