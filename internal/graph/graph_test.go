package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds input -> A -> (B, C) -> Add, a minimal branching graph.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	in := g.AddLayer("input", OpInput, Shape{Ho: 8, Wo: 8, Co: 3})
	a := g.AddLayer("a", OpConv, ConvShape(8, 8, 3, 16, 3, 1, 1), in)
	b := g.AddLayer("b", OpConv, ConvShape(8, 8, 16, 16, 3, 1, 1), a)
	c := g.AddLayer("c", OpConv, ConvShape(8, 8, 16, 16, 1, 1, 0), a)
	g.AddLayer("add", OpEltwise, EltwiseShape(8, 8, 16), b, c)
	if err := g.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return g
}

func TestDepthComputation(t *testing.T) {
	g := diamond(t)
	want := map[string]int{"input": 0, "a": 1, "b": 2, "c": 2, "add": 3}
	for _, l := range g.Layers {
		if l.Depth != want[l.Name] {
			t.Errorf("layer %s depth = %d, want %d", l.Name, l.Depth, want[l.Name])
		}
	}
	if g.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", g.MaxDepth())
	}
}

func TestConsumers(t *testing.T) {
	g := diamond(t)
	cons := g.Consumers(1) // layer "a"
	if len(cons) != 2 {
		t.Fatalf("consumers of a = %v, want 2 entries", cons)
	}
	if len(g.Consumers(4)) != 0 {
		t.Errorf("sink layer has consumers: %v", g.Consumers(4))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond(t)
	pos := make(map[int]int)
	for i, id := range g.Topo() {
		pos[id] = i
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			if pos[in] >= pos[l.ID] {
				t.Errorf("topo order violates edge %d -> %d", in, l.ID)
			}
		}
	}
}

func TestConvShapeArithmetic(t *testing.T) {
	cases := []struct {
		hi, k, stride, pad int
		wantHo             int
	}{
		{224, 7, 2, 3, 112},
		{56, 3, 1, 1, 56},
		{56, 1, 1, 0, 56},
		{28, 3, 2, 1, 14},
		{7, 7, 1, 0, 1},
	}
	for _, c := range cases {
		s := ConvShape(c.hi, c.hi, 3, 8, c.k, c.stride, c.pad)
		if s.Ho != c.wantHo || s.Wo != c.wantHo {
			t.Errorf("ConvShape(hi=%d,k=%d,s=%d,p=%d): Ho=%d, want %d",
				c.hi, c.k, c.stride, c.pad, s.Ho, c.wantHo)
		}
	}
}

func TestMACsAndParams(t *testing.T) {
	g := New("m")
	in := g.AddLayer("input", OpInput, Shape{Ho: 4, Wo: 4, Co: 2})
	g.AddLayer("conv", OpConv, ConvShape(4, 4, 2, 8, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	conv := g.Layer(1)
	// 4*4 output positions * 8 out channels * 2 in channels * 3*3 kernel
	if got, want := conv.MACs(), int64(4*4*8*2*3*3); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
	if got, want := conv.WeightBytes(), int64(2*8*3*3); got != want {
		t.Errorf("WeightBytes = %d, want %d", got, want)
	}
	if got, want := conv.OutputBytes(), int64(4*4*8); got != want {
		t.Errorf("OutputBytes = %d, want %d", got, want)
	}
}

func TestDepthwiseMACs(t *testing.T) {
	g := New("dw")
	in := g.AddLayer("input", OpInput, Shape{Ho: 8, Wo: 8, Co: 16})
	s := ConvShape(8, 8, 16, 16, 3, 1, 1)
	g.AddLayer("dw", OpDepthwiseConv, s, in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Layer(1).MACs(), int64(8*8*16*3*3); got != want {
		t.Errorf("depthwise MACs = %d, want %d", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := New("e").Finalize(); err == nil {
			t.Error("empty graph finalized without error")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		g := New("d")
		in := g.AddLayer("x", OpInput, Shape{Ho: 1, Wo: 1, Co: 1})
		g.AddLayer("x", OpConv, ConvShape(1, 1, 1, 1, 1, 1, 0), in)
		if err := g.Finalize(); err == nil {
			t.Error("duplicate names accepted")
		}
	})
	t.Run("orphan layer", func(t *testing.T) {
		g := New("o")
		g.AddLayer("in", OpInput, Shape{Ho: 1, Wo: 1, Co: 1})
		g.Layers = append(g.Layers, &Layer{ID: 1, Name: "orphan", Kind: OpConv,
			Shape: ConvShape(1, 1, 1, 1, 1, 1, 0)})
		if err := g.Finalize(); err == nil {
			t.Error("orphan conv accepted")
		}
	})
	t.Run("eltwise single input", func(t *testing.T) {
		g := New("e1")
		in := g.AddLayer("in", OpInput, Shape{Ho: 2, Wo: 2, Co: 2})
		g.AddLayer("add", OpEltwise, EltwiseShape(2, 2, 2), in)
		if err := g.Finalize(); err == nil {
			t.Error("single-input eltwise accepted")
		}
	})
}

func TestAddLayerPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddLayer with future input ID did not panic")
		}
	}()
	g := New("p")
	g.AddLayer("bad", OpConv, ConvShape(1, 1, 1, 1, 1, 1, 0), 5)
}

func TestDOTAndSummary(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "n1 -> n2", "n3 -> n4"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	sum := g.Summary()
	if !strings.Contains(sum, "5 layers") || !strings.Contains(sum, "depth 3") {
		t.Errorf("Summary = %q", sum)
	}
}

// Property: for any chain length n, depth of layer i equals i and
// MaxDepth equals n.
func TestChainDepthProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		g := New("chain")
		prev := g.AddLayer("input", OpInput, Shape{Ho: 8, Wo: 8, Co: 4})
		for i := 0; i < n; i++ {
			prev = g.AddLayer(
				"conv"+string(rune('a'+i%26))+string(rune('0'+i/26)),
				OpConv, ConvShape(8, 8, 4, 4, 3, 1, 1), prev)
		}
		if err := g.Finalize(); err != nil {
			return false
		}
		for i, l := range g.Layers {
			if l.Depth != i {
				return false
			}
		}
		return g.MaxDepth() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ConvShape output dims are always positive for valid configs
// and shrink monotonically with stride.
func TestConvShapeProperty(t *testing.T) {
	f := func(hiRaw, kRaw, sRaw uint8) bool {
		hi := int(hiRaw%128) + 8
		k := int(kRaw%5)*2 + 1 // odd kernel 1..9
		if k > hi {
			k = 1
		}
		pad := k / 2
		s1 := ConvShape(hi, hi, 3, 8, k, 1, pad)
		s2 := ConvShape(hi, hi, 3, 8, k, 2, pad)
		return s1.Ho == hi && s2.Ho <= s1.Ho && s2.Ho > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
