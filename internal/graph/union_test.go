package graph

import "testing"

func small(t *testing.T, name string, co int) *Graph {
	t.Helper()
	g := New(name)
	in := g.AddLayer("input", OpInput, Shape{Ho: 8, Wo: 8, Co: 3})
	g.AddLayer("conv", OpConv, ConvShape(8, 8, 3, co, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUnionDisjoint(t *testing.T) {
	a := small(t, "a", 8)
	b := small(t, "b", 16)
	u, err := Union("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumLayers() != a.NumLayers()+b.NumLayers() {
		t.Fatalf("layers = %d", u.NumLayers())
	}
	if u.TotalMACs() != a.TotalMACs()+b.TotalMACs() {
		t.Errorf("MACs not additive")
	}
	// No cross-graph edges: every layer's inputs come from its own half.
	half := a.NumLayers()
	for _, l := range u.Layers {
		for _, in := range l.Inputs {
			if (l.ID < half) != (in < half) {
				t.Fatalf("cross-tenant edge %d -> %d", in, l.ID)
			}
		}
	}
	// Depth is the max, not the sum (tenants are parallel).
	if u.MaxDepth() != max(a.MaxDepth(), b.MaxDepth()) {
		t.Errorf("union depth = %d", u.MaxDepth())
	}
}

func TestUnionNamePrefixing(t *testing.T) {
	a := small(t, "a", 8)
	b := small(t, "b", 8)
	u, err := Union("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Layer(0).Name != "a/input" || u.Layer(2).Name != "b/input" {
		t.Errorf("names: %q, %q", u.Layer(0).Name, u.Layer(2).Name)
	}
	// Self-union works thanks to prefixes... but identical prefixes
	// collide, which must error cleanly.
	if _, err := Union("aa", a, a); err == nil {
		t.Error("union with duplicate graph names accepted")
	}
}

func TestUnionErrors(t *testing.T) {
	if _, err := Union("empty"); err == nil {
		t.Error("empty union accepted")
	}
	raw := New("raw")
	raw.AddLayer("input", OpInput, Shape{Ho: 1, Wo: 1, Co: 1})
	if _, err := Union("u", raw); err == nil {
		t.Error("unfinalized input accepted")
	}
}
