// Package graph defines the layer-level representation of a DNN inference
// workload: a directed acyclic graph whose vertices are tensor-producing
// layers (CONV, FC, pooling, element-wise ops, ...) and whose edges are
// tensor data dependencies.
//
// This is the input representation of the atomic-dataflow framework
// (paper Sec. III): the front end — in the paper an ONNX parser, here the
// programmatic model zoo in internal/models — produces a *Graph, and all
// later stages (atom generation, scheduling, mapping) consume it.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates the layer operator types the framework understands.
type OpKind int

const (
	// OpInput is a pseudo-layer holding the network input tensor.
	OpInput OpKind = iota
	// OpConv is a standard 2D convolution.
	OpConv
	// OpDepthwiseConv is a depthwise (per-channel) 2D convolution.
	OpDepthwiseConv
	// OpFC is a fully-connected layer. Per the paper (Sec. IV-A footnote)
	// it is treated as a CONV with Ho=Hi=Wo=Wi=Kh=Kw=1.
	OpFC
	// OpPool is max/average pooling (executed by the vector unit).
	OpPool
	// OpEltwise is an element-wise binary op such as residual addition.
	OpEltwise
	// OpConcat concatenates inputs along the channel dimension.
	OpConcat
	// OpActivation covers ReLU/sigmoid/BN-style element-wise unary layers.
	OpActivation
	// OpGlobalPool reduces the spatial dimensions to 1x1.
	OpGlobalPool
)

var opKindNames = map[OpKind]string{
	OpInput:         "Input",
	OpConv:          "Conv",
	OpDepthwiseConv: "DWConv",
	OpFC:            "FC",
	OpPool:          "Pool",
	OpEltwise:       "Eltwise",
	OpConcat:        "Concat",
	OpActivation:    "Act",
	OpGlobalPool:    "GlobalPool",
}

// String returns the mnemonic name of the operator kind.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsCompute reports whether the kind runs on the PE array (MAC-dominated).
// Non-compute kinds run on the vector unit and are cheap by comparison.
func (k OpKind) IsCompute() bool {
	switch k {
	case OpConv, OpDepthwiseConv, OpFC:
		return true
	}
	return false
}

// Shape describes the tensor computation of one layer using the paper's
// CONV parameter convention (Fig. 1b): input feature map Hi x Wi x Ci,
// output feature map Ho x Wo x Co, kernels Kh x Kw, stride S.
type Shape struct {
	Hi, Wi, Ci int // input fmap height, width, channels
	Ho, Wo, Co int // output fmap height, width, channels
	Kh, Kw     int // kernel height, width
	Stride     int // spatial stride (same in both dims)
	Pad        int // symmetric zero padding
}

// MACs returns the number of multiply-accumulate operations of the layer.
// Element-wise and pooling layers return 0 (they run on the vector unit).
func (l *Layer) MACs() int64 {
	s := l.Shape
	switch l.Kind {
	case OpConv, OpFC:
		return int64(s.Ho) * int64(s.Wo) * int64(s.Co) * int64(s.Ci) * int64(s.Kh) * int64(s.Kw)
	case OpDepthwiseConv:
		return int64(s.Ho) * int64(s.Wo) * int64(s.Co) * int64(s.Kh) * int64(s.Kw)
	}
	return 0
}

// WeightBytes returns the weight footprint of the layer in bytes,
// assuming an INT8 (1 byte/element) datapath as in the paper's prototype.
func (l *Layer) WeightBytes() int64 {
	s := l.Shape
	switch l.Kind {
	case OpConv, OpFC:
		return int64(s.Ci) * int64(s.Co) * int64(s.Kh) * int64(s.Kw)
	case OpDepthwiseConv:
		return int64(s.Co) * int64(s.Kh) * int64(s.Kw)
	}
	return 0
}

// OutputBytes returns the output feature-map footprint in bytes (INT8).
func (l *Layer) OutputBytes() int64 {
	s := l.Shape
	return int64(s.Ho) * int64(s.Wo) * int64(s.Co)
}

// InputBytes returns the input feature-map footprint in bytes (INT8),
// counting each distinct producer tensor once.
func (l *Layer) InputBytes() int64 {
	s := l.Shape
	return int64(s.Hi) * int64(s.Wi) * int64(s.Ci)
}

// Layer is one vertex of the workload graph.
type Layer struct {
	ID     int    // dense index, assigned by the Graph
	Name   string // human-readable name, unique within the graph
	Kind   OpKind
	Shape  Shape
	Inputs []int // IDs of producer layers, in argument order

	// Depth is the longest path (in edges) from the graph source to this
	// layer; computed by Finalize. Layers at equal depth have no
	// dependency on each other and may run in parallel (paper Fig. 6a).
	Depth int
}

// Graph is a DNN inference workload: a DAG of layers.
// Build one with New/AddLayer and call Finalize before use.
type Graph struct {
	Name   string
	Layers []*Layer

	consumers [][]int // layer ID -> consumer layer IDs
	topo      []int   // topological order of layer IDs
	finalized bool
}

// New returns an empty workload graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddLayer appends a layer and returns its assigned ID.
// Input IDs must refer to already-added layers (this enforces acyclicity
// by construction).
func (g *Graph) AddLayer(name string, kind OpKind, shape Shape, inputs ...int) int {
	if g.finalized {
		panic("graph: AddLayer after Finalize")
	}
	for _, in := range inputs {
		if in < 0 || in >= len(g.Layers) {
			panic(fmt.Sprintf("graph: layer %q references unknown input %d", name, in))
		}
	}
	id := len(g.Layers)
	g.Layers = append(g.Layers, &Layer{
		ID:     id,
		Name:   name,
		Kind:   kind,
		Shape:  shape,
		Inputs: append([]int(nil), inputs...),
	})
	return id
}

// Finalize validates the graph, computes consumer lists, the topological
// order, and per-layer depths. It must be called once after construction.
func (g *Graph) Finalize() error {
	if g.finalized {
		return nil
	}
	if len(g.Layers) == 0 {
		return fmt.Errorf("graph %q: no layers", g.Name)
	}
	if err := g.validate(); err != nil {
		return err
	}
	g.consumers = make([][]int, len(g.Layers))
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			g.consumers[in] = append(g.consumers[in], l.ID)
		}
	}
	// Layers were added producers-first, so ID order is already a valid
	// topological order.
	g.topo = make([]int, len(g.Layers))
	for i := range g.topo {
		g.topo[i] = i
	}
	for _, id := range g.topo {
		l := g.Layers[id]
		d := 0
		for _, in := range l.Inputs {
			if pd := g.Layers[in].Depth + 1; pd > d {
				d = pd
			}
		}
		l.Depth = d
	}
	g.finalized = true
	return nil
}

func (g *Graph) validate() error {
	names := make(map[string]bool, len(g.Layers))
	for _, l := range g.Layers {
		if names[l.Name] {
			return fmt.Errorf("graph %q: duplicate layer name %q", g.Name, l.Name)
		}
		names[l.Name] = true
		s := l.Shape
		if l.Kind == OpInput {
			if len(l.Inputs) != 0 {
				return fmt.Errorf("layer %q: input layer cannot have producers", l.Name)
			}
			continue
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("layer %q: non-input layer has no producers", l.Name)
		}
		if s.Ho <= 0 || s.Wo <= 0 || s.Co <= 0 {
			return fmt.Errorf("layer %q: non-positive output shape %dx%dx%d", l.Name, s.Ho, s.Wo, s.Co)
		}
		if l.Kind.IsCompute() && (s.Kh <= 0 || s.Kw <= 0 || s.Ci <= 0) {
			return fmt.Errorf("layer %q: invalid kernel/channel params", l.Name)
		}
		if l.Kind == OpEltwise && len(l.Inputs) < 2 {
			return fmt.Errorf("layer %q: eltwise needs >=2 inputs", l.Name)
		}
	}
	return nil
}

// Consumers returns the IDs of the layers that read the given layer's
// output. The returned slice must not be modified.
func (g *Graph) Consumers(id int) []int {
	g.mustFinal()
	return g.consumers[id]
}

// Topo returns layer IDs in topological (producer-before-consumer) order.
// The returned slice must not be modified.
func (g *Graph) Topo() []int {
	g.mustFinal()
	return g.topo
}

// MaxDepth returns the largest layer depth in the graph.
func (g *Graph) MaxDepth() int {
	g.mustFinal()
	d := 0
	for _, l := range g.Layers {
		if l.Depth > d {
			d = l.Depth
		}
	}
	return d
}

// Layer returns the layer with the given ID.
func (g *Graph) Layer(id int) *Layer { return g.Layers[id] }

// NumLayers returns the number of layers including the input pseudo-layer.
func (g *Graph) NumLayers() int { return len(g.Layers) }

// ComputeLayers returns the IDs of PE-array (MAC-dominated) layers in
// topological order.
func (g *Graph) ComputeLayers() []int {
	g.mustFinal()
	var ids []int
	for _, id := range g.topo {
		if g.Layers[id].Kind.IsCompute() {
			ids = append(ids, id)
		}
	}
	return ids
}

// TotalMACs sums MACs over all layers.
func (g *Graph) TotalMACs() int64 {
	var t int64
	for _, l := range g.Layers {
		t += l.MACs()
	}
	return t
}

// TotalParams sums weight elements over all layers (INT8: 1 byte each).
func (g *Graph) TotalParams() int64 {
	var t int64
	for _, l := range g.Layers {
		t += l.WeightBytes()
	}
	return t
}

// LayersAtDepth groups compute-relevant layer IDs by depth, index = depth.
func (g *Graph) LayersAtDepth() [][]int {
	g.mustFinal()
	byDepth := make([][]int, g.MaxDepth()+1)
	for _, l := range g.Layers {
		byDepth[l.Depth] = append(byDepth[l.Depth], l.ID)
	}
	return byDepth
}

// DOT renders the graph in Graphviz DOT format, useful for debugging
// irregular NAS topologies.
func (g *Graph) DOT() string {
	g.mustFinal()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, l := range g.Layers {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s %dx%dx%d\"];\n",
			l.ID, l.Name, l.Kind, l.Shape.Ho, l.Shape.Wo, l.Shape.Co)
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in, l.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary returns a short human-readable description of the graph.
func (g *Graph) Summary() string {
	g.mustFinal()
	kinds := make(map[OpKind]int)
	for _, l := range g.Layers {
		kinds[l.Kind]++
	}
	keys := make([]OpKind, 0, len(kinds))
	for k := range kinds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, kinds[k]))
	}
	return fmt.Sprintf("%s: %d layers (%s), depth %d, %.1f GMACs, %.1fM params",
		g.Name, len(g.Layers), strings.Join(parts, " "), g.MaxDepth(),
		float64(g.TotalMACs())/1e9, float64(g.TotalParams())/1e6)
}

func (g *Graph) mustFinal() {
	if !g.finalized {
		panic("graph: use before Finalize")
	}
}

// ConvShape is a convenience constructor for CONV layer shapes: it derives
// the output spatial dims from input dims, kernel, stride and padding.
func ConvShape(hi, wi, ci, co, k, stride, pad int) Shape {
	ho := (hi+2*pad-k)/stride + 1
	wo := (wi+2*pad-k)/stride + 1
	return Shape{Hi: hi, Wi: wi, Ci: ci, Ho: ho, Wo: wo, Co: co, Kh: k, Kw: k, Stride: stride, Pad: pad}
}

// FCShape builds the degenerate CONV shape of a fully-connected layer.
func FCShape(ci, co int) Shape {
	return Shape{Hi: 1, Wi: 1, Ci: ci, Ho: 1, Wo: 1, Co: co, Kh: 1, Kw: 1, Stride: 1}
}

// PoolShape builds the shape of a pooling layer.
func PoolShape(hi, wi, c, k, stride, pad int) Shape {
	ho := (hi+2*pad-k)/stride + 1
	wo := (wi+2*pad-k)/stride + 1
	return Shape{Hi: hi, Wi: wi, Ci: c, Ho: ho, Wo: wo, Co: c, Kh: k, Kw: k, Stride: stride, Pad: pad}
}

// EltwiseShape builds the shape of an element-wise layer over HxWxC tensors.
func EltwiseShape(h, w, c int) Shape {
	return Shape{Hi: h, Wi: w, Ci: c, Ho: h, Wo: w, Co: c, Kh: 1, Kw: 1, Stride: 1}
}
