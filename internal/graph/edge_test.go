package graph

import (
	"strings"
	"testing"
)

func TestOpKindStrings(t *testing.T) {
	for k := OpInput; k <= OpGlobalPool; k++ {
		if strings.HasPrefix(k.String(), "OpKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(OpKind(99).String(), "OpKind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

func TestIsCompute(t *testing.T) {
	compute := map[OpKind]bool{OpConv: true, OpDepthwiseConv: true, OpFC: true}
	for k := OpInput; k <= OpGlobalPool; k++ {
		if k.IsCompute() != compute[k] {
			t.Errorf("%v IsCompute = %v", k, k.IsCompute())
		}
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	g := New("idem")
	in := g.AddLayer("input", OpInput, Shape{Ho: 4, Wo: 4, Co: 2})
	g.AddLayer("c", OpConv, ConvShape(4, 4, 2, 4, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatalf("second Finalize: %v", err)
	}
}

func TestAddLayerAfterFinalizePanics(t *testing.T) {
	g := New("sealed")
	g.AddLayer("input", OpInput, Shape{Ho: 1, Wo: 1, Co: 1})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddLayer after Finalize did not panic")
		}
	}()
	g.AddLayer("late", OpConv, ConvShape(1, 1, 1, 1, 1, 1, 0), 0)
}

func TestUseBeforeFinalizePanics(t *testing.T) {
	g := New("raw")
	g.AddLayer("input", OpInput, Shape{Ho: 1, Wo: 1, Co: 1})
	defer func() {
		if recover() == nil {
			t.Error("Topo before Finalize did not panic")
		}
	}()
	g.Topo()
}

func TestLayersAtDepth(t *testing.T) {
	g := New("d")
	in := g.AddLayer("input", OpInput, Shape{Ho: 4, Wo: 4, Co: 2})
	a := g.AddLayer("a", OpConv, ConvShape(4, 4, 2, 2, 1, 1, 0), in)
	b := g.AddLayer("b", OpConv, ConvShape(4, 4, 2, 2, 1, 1, 0), in)
	g.AddLayer("add", OpEltwise, EltwiseShape(4, 4, 2), a, b)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	byDepth := g.LayersAtDepth()
	if len(byDepth) != 3 {
		t.Fatalf("depths = %d, want 3", len(byDepth))
	}
	if len(byDepth[1]) != 2 {
		t.Errorf("depth-1 layers = %v, want the two siblings", byDepth[1])
	}
}

func TestPoolAndFCShapes(t *testing.T) {
	p := PoolShape(8, 8, 16, 2, 2, 0)
	if p.Ho != 4 || p.Co != 16 || p.Ci != 16 {
		t.Errorf("PoolShape = %+v", p)
	}
	f := FCShape(128, 10)
	if f.Ci != 128 || f.Co != 10 || f.Ho != 1 || f.Kh != 1 {
		t.Errorf("FCShape = %+v", f)
	}
}
