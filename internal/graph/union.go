package graph

import "fmt"

// Union builds the disjoint union of several finalized workload graphs:
// one combined DAG whose sub-graphs share no edges. Scheduling a union
// co-locates multiple DNNs on one accelerator (multi-tenant serving in
// the style of HDA/PREMA, which the paper cites as the multi-DNN use
// case); the atomic-dataflow scheduler then interleaves their atoms
// exactly as it interleaves batch samples. Layer names are prefixed with
// their source graph's name to stay unique.
func Union(name string, gs ...*Graph) (*Graph, error) {
	if len(gs) == 0 {
		return nil, fmt.Errorf("graph: union of nothing")
	}
	u := New(name)
	for _, g := range gs {
		if !g.finalized {
			return nil, fmt.Errorf("graph: union input %q not finalized", g.Name)
		}
		offset := len(u.Layers)
		for _, l := range g.Layers {
			inputs := make([]int, len(l.Inputs))
			for i, in := range l.Inputs {
				inputs[i] = in + offset
			}
			u.AddLayer(g.Name+"/"+l.Name, l.Kind, l.Shape, inputs...)
		}
	}
	if err := u.Finalize(); err != nil {
		return nil, err
	}
	return u, nil
}
