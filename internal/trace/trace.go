// Package trace collects per-Round execution traces from the simulator
// and exports them for inspection: the Chrome trace-event JSON format
// (load in chrome://tracing or Perfetto; one lane per engine) and a
// plain-text Gantt summary for terminals. Traces make the scheduler's
// behaviour visible — which layers share Rounds, where the barriers
// stretch, which engines idle.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// WriteOracleStats prints one cost-oracle accounting line — evaluations,
// cache hits/misses and hit rate — tagged with a label. With a shared
// long-lived oracle, pass the Stats.Sub delta of the span to report (e.g.
// cmd/adexp snapshots around each experiment).
func WriteOracleStats(w io.Writer, label string, s cost.Stats) {
	fmt.Fprintf(w, "  [oracle %s: %s]\n", label, s)
}

// Collector accumulates RoundTraces; its Hook method plugs into
// sim.Config.Trace.
type Collector struct {
	Rounds []sim.RoundTrace
}

// Hook records one Round. Pass it as sim.Config.Trace.
func (c *Collector) Hook(rt sim.RoundTrace) { c.Rounds = append(c.Rounds, rt) }

// TotalCycles returns the traced execution span.
func (c *Collector) TotalCycles() int64 {
	if len(c.Rounds) == 0 {
		return 0
	}
	return c.Rounds[len(c.Rounds)-1].End
}

// chromeEvent is one Chrome trace-event entry ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON. Engines map
// to threads; timestamps are cycles. The graph names each atom's layer.
func (c *Collector) WriteChrome(w io.Writer, g *graph.Graph) error {
	var events []chromeEvent
	for _, rt := range c.Rounds {
		for _, at := range rt.Atoms {
			name := fmt.Sprintf("L%d", at.Layer)
			if g != nil {
				name = g.Layer(at.Layer).Name
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: rt.Start, Dur: at.Cycles,
				Pid: 0, Tid: at.Engine,
				Args: map[string]any{
					"atom": at.Atom, "sample": at.Sample, "round": rt.Round,
				},
			})
		}
		// Barrier slack after the last compute, on a synthetic lane.
		if rt.End > rt.ComputeEnd {
			events = append(events, chromeEvent{
				Name: "mem-block", Ph: "X",
				Ts: rt.ComputeEnd, Dur: rt.End - rt.ComputeEnd,
				Pid: 0, Tid: -1,
				Args: map[string]any{"round": rt.Round},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteGantt renders a coarse text Gantt: one row per Round, showing the
// busy share of the Round and the layers it mixes.
func (c *Collector) WriteGantt(w io.Writer, g *graph.Graph, maxRounds int) error {
	if maxRounds <= 0 || maxRounds > len(c.Rounds) {
		maxRounds = len(c.Rounds)
	}
	for _, rt := range c.Rounds[:maxRounds] {
		span := rt.End - rt.Start
		if span <= 0 {
			span = 1
		}
		layers := map[string]bool{}
		var busy int64
		for _, at := range rt.Atoms {
			busy += at.Cycles
			if g != nil {
				layers[g.Layer(at.Layer).Name] = true
			} else {
				layers[fmt.Sprintf("L%d", at.Layer)] = true
			}
		}
		names := make([]string, 0, len(layers))
		for n := range layers {
			names = append(names, n)
		}
		if len(names) > 4 {
			names = append(names[:4], "...")
		}
		bar := int(16 * float64(busy) / float64(span*int64(maxAtoms(rt))))
		if bar > 16 {
			bar = 16
		}
		fmt.Fprintf(w, "round %5d [%-16s] %8d cycles  %2d atoms  %s\n",
			rt.Round, strings.Repeat("#", bar), span, len(rt.Atoms),
			strings.Join(names, ","))
	}
	return nil
}

func maxAtoms(rt sim.RoundTrace) int {
	if len(rt.Atoms) == 0 {
		return 1
	}
	return len(rt.Atoms)
}

// Stats summarizes barrier efficiency over the trace.
type Stats struct {
	Rounds          int
	MeanOccupancy   float64 // atoms per round / engines (needs engines)
	MemBlockedFrac  float64 // share of span beyond compute-only time
	TotalCycles     int64
	TotalComputeMax int64
}

// Summarize computes trace statistics for n engines.
func (c *Collector) Summarize(engines int) Stats {
	var st Stats
	st.Rounds = len(c.Rounds)
	if st.Rounds == 0 {
		return st
	}
	var occ float64
	var blocked int64
	for _, rt := range c.Rounds {
		occ += float64(len(rt.Atoms)) / float64(engines)
		blocked += rt.End - rt.ComputeEnd
		st.TotalComputeMax += rt.ComputeEnd - rt.Start
	}
	st.MeanOccupancy = occ / float64(st.Rounds)
	st.TotalCycles = c.TotalCycles()
	if st.TotalCycles > 0 {
		st.MemBlockedFrac = float64(blocked) / float64(st.TotalCycles)
	}
	return st
}
