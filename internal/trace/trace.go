// Package trace collects per-Round execution traces from the simulator
// and exports them for inspection: the Chrome trace-event JSON format
// (load in chrome://tracing or Perfetto; one lane per engine) and a
// plain-text Gantt summary for terminals. Traces make the scheduler's
// behaviour visible — which layers share Rounds, where the barriers
// stretch, which engines idle.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// WriteOracleStats prints one cost-oracle accounting line — evaluations,
// cache hits/misses and hit rate — tagged with a label. With a shared
// long-lived oracle, pass the Stats.Sub delta of the span to report (e.g.
// cmd/adexp snapshots around each experiment).
func WriteOracleStats(w io.Writer, label string, s cost.Stats) {
	fmt.Fprintf(w, "  [oracle %s: %s]\n", label, s)
}

// Collector accumulates RoundTraces; its Hook method plugs into
// sim.Config.Trace. Hook is safe for concurrent use — parallel sweeps
// may share one collector — but interleaved runs arrive out of order:
// call Sort before exporting if more than one goroutine recorded.
type Collector struct {
	mu     sync.Mutex
	Rounds []sim.RoundTrace
}

// Hook records one Round. Pass it as sim.Config.Trace.
func (c *Collector) Hook(rt sim.RoundTrace) {
	c.mu.Lock()
	c.Rounds = append(c.Rounds, rt)
	c.mu.Unlock()
}

// Sort orders the recorded Rounds by Round index, restoring export order
// after concurrent collection.
func (c *Collector) Sort() {
	c.mu.Lock()
	sort.SliceStable(c.Rounds, func(i, j int) bool {
		return c.Rounds[i].Round < c.Rounds[j].Round
	})
	c.mu.Unlock()
}

// TotalCycles returns the traced execution span.
func (c *Collector) TotalCycles() int64 {
	if len(c.Rounds) == 0 {
		return 0
	}
	return c.Rounds[len(c.Rounds)-1].End
}

// chromeEvent is one Chrome trace-event entry ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON. Engines map
// to threads; timestamps are cycles. The graph names each atom's layer.
func (c *Collector) WriteChrome(w io.Writer, g *graph.Graph) error {
	var events []chromeEvent
	for _, rt := range c.Rounds {
		for _, at := range rt.Atoms {
			name := fmt.Sprintf("L%d", at.Layer)
			if g != nil {
				name = g.Layer(at.Layer).Name
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: rt.Start, Dur: at.Cycles,
				Pid: 0, Tid: at.Engine,
				Args: map[string]any{
					"atom": at.Atom, "sample": at.Sample, "round": rt.Round,
				},
			})
		}
		// Barrier slack after the last compute, on a synthetic lane.
		if rt.End > rt.ComputeEnd {
			events = append(events, chromeEvent{
				Name: "mem-block", Ph: "X",
				Ts: rt.ComputeEnd, Dur: rt.End - rt.ComputeEnd,
				Pid: 0, Tid: -1,
				Args: map[string]any{"round": rt.Round},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// metaEvent builds a Chrome "M" metadata record naming a process or
// thread lane.
func metaEvent(kind string, pid, tid int, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// WritePerfetto renders the full-span trace for the Perfetto UI. On top
// of WriteChrome's per-engine compute lanes (pid 0) it adds a NoC process
// (pid 1) and a DRAM process (pid 2):
//
//   - noc/blocked — spans [DRAMEnd, End] where link contention held the
//     Round barrier open, tagged with the Round's flow count and bytes.
//   - noc/bytes — a counter track of each Round's on-chip flow volume.
//   - dram/reads — spans [DRAMIssue, DRAMReady] covering each Round's
//     aggregate read (issued a Round early under double buffering).
//   - dram/blocked — spans [ComputeEnd, DRAMEnd] where off-chip latency
//     held the barrier open.
//
// All lanes are named via metadata records so the UI labels them.
func (c *Collector) WritePerfetto(w io.Writer, g *graph.Graph) error {
	events := []chromeEvent{
		metaEvent("process_name", 0, 0, "engines"),
		metaEvent("process_name", 1, 0, "noc"),
		metaEvent("process_name", 2, 0, "dram"),
		metaEvent("thread_name", 1, 0, "blocked"),
		metaEvent("thread_name", 1, 1, "bytes"),
		metaEvent("thread_name", 2, 0, "blocked"),
		metaEvent("thread_name", 2, 1, "reads"),
	}
	maxEngine := 0
	for _, rt := range c.Rounds {
		for _, at := range rt.Atoms {
			if at.Engine > maxEngine {
				maxEngine = at.Engine
			}
		}
	}
	for e := 0; e <= maxEngine; e++ {
		events = append(events, metaEvent("thread_name", 0, e, fmt.Sprintf("engine %d", e)))
	}
	for _, rt := range c.Rounds {
		for _, at := range rt.Atoms {
			name := fmt.Sprintf("L%d", at.Layer)
			if g != nil {
				name = g.Layer(at.Layer).Name
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: rt.Start, Dur: at.Cycles,
				Pid: 0, Tid: at.Engine,
				Args: map[string]any{
					"atom": at.Atom, "sample": at.Sample, "round": rt.Round,
				},
			})
		}
		if rt.End > rt.DRAMEnd {
			events = append(events, chromeEvent{
				Name: "noc-block", Ph: "X",
				Ts: rt.DRAMEnd, Dur: rt.End - rt.DRAMEnd,
				Pid: 1, Tid: 0,
				Args: map[string]any{
					"round": rt.Round, "flows": rt.Flows, "bytes": rt.FlowBytes,
				},
			})
		}
		events = append(events, chromeEvent{
			Name: "flow_bytes", Ph: "C",
			Ts: rt.Start, Pid: 1, Tid: 1,
			Args: map[string]any{"bytes": rt.FlowBytes},
		})
		if rt.DRAMRead > 0 && rt.DRAMReady > rt.DRAMIssue {
			events = append(events, chromeEvent{
				Name: "dram-read", Ph: "X",
				Ts: rt.DRAMIssue, Dur: rt.DRAMReady - rt.DRAMIssue,
				Pid: 2, Tid: 1,
				Args: map[string]any{"round": rt.Round, "bytes": rt.DRAMRead},
			})
		}
		if rt.DRAMEnd > rt.ComputeEnd {
			events = append(events, chromeEvent{
				Name: "dram-block", Ph: "X",
				Ts: rt.ComputeEnd, Dur: rt.DRAMEnd - rt.ComputeEnd,
				Pid: 2, Tid: 0,
				Args: map[string]any{"round": rt.Round},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteGantt renders a coarse text Gantt: one row per Round, showing the
// busy share of the Round and the layers it mixes.
func (c *Collector) WriteGantt(w io.Writer, g *graph.Graph, maxRounds int) error {
	if maxRounds <= 0 || maxRounds > len(c.Rounds) {
		maxRounds = len(c.Rounds)
	}
	for _, rt := range c.Rounds[:maxRounds] {
		span := rt.End - rt.Start
		if span <= 0 {
			span = 1
		}
		layers := map[string]bool{}
		var busy int64
		for _, at := range rt.Atoms {
			busy += at.Cycles
			if g != nil {
				layers[g.Layer(at.Layer).Name] = true
			} else {
				layers[fmt.Sprintf("L%d", at.Layer)] = true
			}
		}
		names := make([]string, 0, len(layers))
		for n := range layers {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(names) > 4 {
			names = append(names[:4], "...")
		}
		bar := int(16 * float64(busy) / float64(span*int64(maxAtoms(rt))))
		if bar > 16 {
			bar = 16
		}
		fmt.Fprintf(w, "round %5d [%-16s] %8d cycles  %2d atoms  %s\n",
			rt.Round, strings.Repeat("#", bar), span, len(rt.Atoms),
			strings.Join(names, ","))
	}
	return nil
}

func maxAtoms(rt sim.RoundTrace) int {
	if len(rt.Atoms) == 0 {
		return 1
	}
	return len(rt.Atoms)
}

// Stats summarizes barrier efficiency over the trace.
type Stats struct {
	Rounds          int
	MeanOccupancy   float64 // atoms per round / engines (needs engines)
	MemBlockedFrac  float64 // share of span beyond compute-only time
	TotalCycles     int64
	TotalComputeMax int64
}

// Summarize computes trace statistics for n engines.
func (c *Collector) Summarize(engines int) Stats {
	var st Stats
	st.Rounds = len(c.Rounds)
	if st.Rounds == 0 {
		return st
	}
	var occ float64
	var blocked int64
	for _, rt := range c.Rounds {
		occ += float64(len(rt.Atoms)) / float64(engines)
		blocked += rt.End - rt.ComputeEnd
		st.TotalComputeMax += rt.ComputeEnd - rt.Start
	}
	st.MeanOccupancy = occ / float64(st.Rounds)
	st.TotalCycles = c.TotalCycles()
	if st.TotalCycles > 0 {
		st.MemBlockedFrac = float64(blocked) / float64(st.TotalCycles)
	}
	return st
}
