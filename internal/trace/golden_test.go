package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against the named testdata file, rewriting it under
// -update. Pinning exporter bytes keeps the formats stable for downstream
// consumers (Perfetto, plot scripts) and doubles as a whole-pipeline
// determinism check: the bytes embed every simulated cycle count.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update to accept):\ngot:  %.200s\nwant: %.200s",
			name, got, want)
	}
}

func TestChromeGolden(t *testing.T) {
	c, g, _ := collect(t, "tinybranch", 1)
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf, g); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrome_tinybranch.json", buf.Bytes())
}

func TestGanttGolden(t *testing.T) {
	c, g, _ := collect(t, "tinyconv", 1)
	var buf bytes.Buffer
	if err := c.WriteGantt(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	golden(t, "gantt_tinyconv.txt", buf.Bytes())
}

func TestPerfettoGolden(t *testing.T) {
	c, g, _ := collect(t, "tinybranch", 1)
	var buf bytes.Buffer
	if err := c.WritePerfetto(&buf, g); err != nil {
		t.Fatal(err)
	}
	golden(t, "perfetto_tinybranch.json", buf.Bytes())
}
