package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

func collect(t *testing.T, model string, batch int) (*Collector, *graph.Graph, sim.Report) {
	t.Helper()
	g := models.MustBuild(model)
	cfg := sim.DefaultConfig()
	cfg.Mesh = noc.NewMesh(2, 2, 32)
	res := anneal.SA(g, cfg.Engine, cfg.Dataflow, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, batch, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: 4, Mode: schedule.Greedy, EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow,
	})
	if err != nil {
		t.Fatal(err)
	}
	var c Collector
	cfg.Trace = c.Hook
	rep, err := sim.Run(d, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &c, g, rep
}

func TestCollectorCoversRun(t *testing.T) {
	c, _, rep := collect(t, "tinyresnet", 2)
	if len(c.Rounds) != rep.Rounds {
		t.Fatalf("traced %d rounds, report says %d", len(c.Rounds), rep.Rounds)
	}
	if c.TotalCycles() != rep.Cycles {
		t.Errorf("trace end %d != report cycles %d", c.TotalCycles(), rep.Cycles)
	}
	// Rounds are contiguous and ordered.
	prev := int64(0)
	for i, rt := range c.Rounds {
		if rt.Round != i {
			t.Fatalf("round index %d at position %d", rt.Round, i)
		}
		if rt.Start != prev {
			t.Fatalf("round %d starts at %d, want %d", i, rt.Start, prev)
		}
		if rt.End < rt.Start || rt.ComputeEnd > rt.End {
			t.Fatalf("round %d times inconsistent: %+v", i, rt)
		}
		prev = rt.End
	}
}

func TestChromeExport(t *testing.T) {
	c, g, _ := collect(t, "tinybranch", 1)
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf, g); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	// Every compute event carries a layer name from the graph.
	named := false
	for _, ev := range doc.TraceEvents {
		if name, ok := ev["name"].(string); ok && strings.Contains(name, "conv") {
			named = true
		}
	}
	if !named {
		t.Error("no layer-named events")
	}
}

func TestGanttExport(t *testing.T) {
	c, g, _ := collect(t, "tinyconv", 1)
	var buf bytes.Buffer
	if err := c.WriteGantt(&buf, g, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round     0") {
		t.Errorf("gantt output missing rounds:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 5 {
		t.Errorf("maxRounds not honored: %d lines", lines)
	}
}

// TestHookConcurrent hammers Hook from many goroutines; under -race this
// fails if Hook's append is unguarded (parallel sweeps share collectors).
func TestHookConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Hook(sim.RoundTrace{Round: i*each + j})
			}
		}(i)
	}
	wg.Wait()
	if len(c.Rounds) != writers*each {
		t.Fatalf("recorded %d rounds, want %d", len(c.Rounds), writers*each)
	}
	c.Sort()
	for i, rt := range c.Rounds {
		if rt.Round != i {
			t.Fatalf("after Sort, position %d holds round %d", i, rt.Round)
		}
	}
}

func TestPerfettoExport(t *testing.T) {
	c, g, _ := collect(t, "tinyresnet", 2)
	var buf bytes.Buffer
	if err := c.WritePerfetto(&buf, g); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// All three processes must be named, and the DRAM read lane populated
	// (every Round of this model fetches weights).
	var lanes, dramReads, nocCounters int
	for _, ev := range doc.TraceEvents {
		switch ev["name"] {
		case "process_name":
			lanes++
		case "dram-read":
			dramReads++
		case "flow_bytes":
			nocCounters++
		}
	}
	if lanes != 3 {
		t.Errorf("process_name records = %d, want 3", lanes)
	}
	if dramReads == 0 {
		t.Error("no dram-read spans")
	}
	if nocCounters == 0 {
		t.Error("no flow_bytes counter events")
	}
	// DRAM spans never extend past their Round's barrier ordering:
	// DRAMIssue <= DRAMReady and ComputeEnd <= DRAMEnd <= End.
	for _, rt := range c.Rounds {
		if rt.DRAMIssue > rt.DRAMReady {
			t.Fatalf("round %d: DRAM issue %d after ready %d", rt.Round, rt.DRAMIssue, rt.DRAMReady)
		}
		if rt.ComputeEnd > rt.DRAMEnd || rt.DRAMEnd > rt.End {
			t.Fatalf("round %d: span ordering violated: %+v", rt.Round, rt)
		}
	}
}

func TestSummarize(t *testing.T) {
	c, _, rep := collect(t, "tinyresnet", 3)
	st := c.Summarize(4)
	if st.Rounds != rep.Rounds {
		t.Errorf("Rounds = %d, want %d", st.Rounds, rep.Rounds)
	}
	if st.MeanOccupancy <= 0 || st.MeanOccupancy > 1 {
		t.Errorf("occupancy = %v", st.MeanOccupancy)
	}
	if st.TotalCycles != rep.Cycles {
		t.Errorf("cycles = %d, want %d", st.TotalCycles, rep.Cycles)
	}
	if st.MemBlockedFrac < 0 || st.MemBlockedFrac > 1 {
		t.Errorf("blocked frac = %v", st.MemBlockedFrac)
	}
	empty := (&Collector{}).Summarize(4)
	if empty.Rounds != 0 || empty.TotalCycles != 0 {
		t.Error("empty collector non-zero stats")
	}
}
