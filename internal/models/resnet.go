package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1
// expand, residual add) and returns the block output layer ID.
func bottleneck(b *builder, x, mid, out, stride int) int {
	shortcut := x
	if stride != 1 || b.out(x).Co != out {
		shortcut = b.convName("proj", x, out, 1, stride, 0)
	}
	y := b.conv(x, mid, 1, 1, 0)
	y = b.conv(y, mid, 3, stride, 1)
	y = b.conv(y, out, 1, 1, 0)
	return b.add(shortcut, y)
}

// resNetImageNet builds an ImageNet-style bottleneck ResNet with the given
// per-stage block counts.
func resNetImageNet(name string, blocks [4]int) *graph.Graph {
	b := newBuilder(name)
	x := b.input(224, 224, 3)
	x = b.conv(x, 64, 7, 2, 3)
	x = b.pool(x, 3, 2, 1)
	mids := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		mid := mids[stage]
		out := mid * 4
		for i := 0; i < blocks[stage]; i++ {
			stride := 1
			if i == 0 && stage > 0 {
				stride = 2
			}
			x = bottleneck(b, x, mid, out, stride)
		}
	}
	x = b.globalPool(x)
	b.fc(x, 1000)
	return b.finish()
}

// ResNet50 builds ResNet-50 (residual bypass structure, ~26M params).
func ResNet50() *graph.Graph { return resNetImageNet("resnet50", [4]int{3, 4, 6, 3}) }

// ResNet152 builds ResNet-152 (residual bypass structure, ~60M params).
func ResNet152() *graph.Graph { return resNetImageNet("resnet152", [4]int{3, 8, 36, 3}) }

// ResNet1001 builds a 1001-conv-layer bottleneck ResNet. The paper lists
// ResNet-1001 at 850M parameters, i.e. an ImageNet-width ultra-deep variant
// rather than the CIFAR pre-activation original; we distribute 333
// bottleneck blocks over the four ImageNet stages, weighted toward the
// middle stages as in He et al.'s deep configurations, which lands in the
// same parameter regime (hundreds of millions).
func ResNet1001() *graph.Graph {
	return resNetImageNet("resnet1001", [4]int{33, 83, 183, 34})
}
