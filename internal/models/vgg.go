package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// VGG19 builds VGG-19 (layer-cascaded structure, 137M params with the
// classifier). It is the paper's pure-cascade workload: no explicit layer
// parallelism, so all of AD's gain must come from layer fusion and
// utilization-aware atom sizes (paper Sec. V-B).
func VGG19() *graph.Graph {
	b := newBuilder("vgg19")
	x := b.input(224, 224, 3)
	stage := func(co, n int) {
		for i := 0; i < n; i++ {
			x = b.conv(x, co, 3, 1, 1)
		}
		x = b.pool(x, 2, 2, 0)
	}
	stage(64, 2)
	stage(128, 2)
	stage(256, 4)
	stage(512, 4)
	stage(512, 4)
	// Classifier: 7x7x512 flattened to 25088, then 4096-4096-1000.
	x = b.fc(x, 4096) // reads the flattened 25088-dim vector
	// The first FC consumes the 7x7x512 tensor; patch Ci to the flattened
	// size so the parameter count matches the real network.
	fcLayer := b.g.Layer(x)
	fcLayer.Shape.Ci = 7 * 7 * 512
	x = b.fc(x, 4096)
	b.fc(x, 1000)
	return b.finish()
}
