package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// MobileNetV2 builds MobileNetV2 (inverted residuals with linear
// bottlenecks, ~3.4M params). It is not in the paper's Table I but
// rounds out the zoo's depthwise-workload coverage next to EfficientNet,
// and is a common target for orchestration studies.
func MobileNetV2() *graph.Graph {
	b := newBuilder("mobilenetv2")
	x := b.input(224, 224, 3)
	x = b.conv(x, 32, 3, 2, 1)

	block := func(in, co, stride, expand int) int {
		ci := b.out(in).Co
		y := in
		if expand != 1 {
			y = b.conv(y, ci*expand, 1, 1, 0)
		}
		y = b.dwconv(y, 3, stride, 1)
		y = b.conv(y, co, 1, 1, 0)
		if stride == 1 && ci == co {
			y = b.add(in, y)
		}
		return y
	}

	type stage struct{ expand, co, depth, stride int }
	stages := []stage{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for _, s := range stages {
		for i := 0; i < s.depth; i++ {
			stride := 1
			if i == 0 {
				stride = s.stride
			}
			x = block(x, s.co, stride, s.expand)
		}
	}
	x = b.conv(x, 1280, 1, 1, 0)
	x = b.globalPool(x)
	b.fc(x, 1000)
	return b.finish()
}

// VGG16 builds VGG-16 — the 13-conv sibling of VGG-19, included because
// much of the resource-partitioning literature (CNN-Partition, TGPA)
// evaluates on it.
func VGG16() *graph.Graph {
	b := newBuilder("vgg16")
	x := b.input(224, 224, 3)
	stage := func(co, n int) {
		for i := 0; i < n; i++ {
			x = b.conv(x, co, 3, 1, 1)
		}
		x = b.pool(x, 2, 2, 0)
	}
	stage(64, 2)
	stage(128, 2)
	stage(256, 3)
	stage(512, 3)
	stage(512, 3)
	x = b.fc(x, 4096)
	b.g.Layer(x).Shape.Ci = 7 * 7 * 512 // flattened classifier input
	x = b.fc(x, 4096)
	b.fc(x, 1000)
	return b.finish()
}
