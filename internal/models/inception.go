package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// InceptionV3 builds Inception-v3 (branching-cell structure, ~24M params).
// All five module families (A, B reduction, C, D reduction, E) are present
// with the standard filter counts, giving the scheduler the same-depth
// branch parallelism the paper exploits (Fig. 6 parallelism type 2).
func InceptionV3() *graph.Graph {
	b := newBuilder("inceptionv3")
	x := b.input(299, 299, 3)

	// Stem.
	x = b.conv(x, 32, 3, 2, 0)
	x = b.conv(x, 32, 3, 1, 0)
	x = b.conv(x, 64, 3, 1, 1)
	x = b.pool(x, 3, 2, 0)
	x = b.conv(x, 80, 1, 1, 0)
	x = b.conv(x, 192, 3, 1, 0)
	x = b.pool(x, 3, 2, 0) // 35x35x192

	// Module A: 1x1 / 5x5 / double-3x3 / pool-proj branches.
	moduleA := func(x, poolProj int) int {
		b1 := b.conv(x, 64, 1, 1, 0)
		b2 := b.conv(b.conv(x, 48, 1, 1, 0), 64, 5, 1, 2)
		b3 := b.conv(x, 64, 1, 1, 0)
		b3 = b.conv(b3, 96, 3, 1, 1)
		b3 = b.conv(b3, 96, 3, 1, 1)
		b4 := b.conv(b.pool(x, 3, 1, 1), poolProj, 1, 1, 0)
		return b.concat(b1, b2, b3, b4)
	}
	x = moduleA(x, 32) // 35x35x256
	x = moduleA(x, 64) // 35x35x288
	x = moduleA(x, 64) // 35x35x288

	// Reduction B: stride-2 3x3 / double-3x3 / pool.
	{
		b1 := b.conv(x, 384, 3, 2, 0)
		b2 := b.conv(x, 64, 1, 1, 0)
		b2 = b.conv(b2, 96, 3, 1, 1)
		b2 = b.conv(b2, 96, 3, 2, 0)
		b3 := b.pool(x, 3, 2, 0)
		x = b.concat(b1, b2, b3) // 17x17x768
	}

	// Module C: factorized 7x7 branches.
	moduleC := func(x, c7 int) int {
		b1 := b.conv(x, 192, 1, 1, 0)
		b2 := b.conv(x, c7, 1, 1, 0)
		b2 = b.convRect(b2, c7, 1, 7, 1, 0, 3)
		b2 = b.convRect(b2, 192, 7, 1, 1, 3, 0)
		b3 := b.conv(x, c7, 1, 1, 0)
		b3 = b.convRect(b3, c7, 7, 1, 1, 3, 0)
		b3 = b.convRect(b3, c7, 1, 7, 1, 0, 3)
		b3 = b.convRect(b3, c7, 7, 1, 1, 3, 0)
		b3 = b.convRect(b3, 192, 1, 7, 1, 0, 3)
		b4 := b.conv(b.pool(x, 3, 1, 1), 192, 1, 1, 0)
		return b.concat(b1, b2, b3, b4)
	}
	x = moduleC(x, 128)
	x = moduleC(x, 160)
	x = moduleC(x, 160)
	x = moduleC(x, 192)

	// Reduction D.
	{
		b1 := b.conv(x, 192, 1, 1, 0)
		b1 = b.conv(b1, 320, 3, 2, 0)
		b2 := b.conv(x, 192, 1, 1, 0)
		b2 = b.convRect(b2, 192, 1, 7, 1, 0, 3)
		b2 = b.convRect(b2, 192, 7, 1, 1, 3, 0)
		b2 = b.conv(b2, 192, 3, 2, 0)
		b3 := b.pool(x, 3, 2, 0)
		x = b.concat(b1, b2, b3) // 8x8x1280
	}

	// Module E: expanded-filter-bank branches.
	moduleE := func(x int) int {
		b1 := b.conv(x, 320, 1, 1, 0)
		b2 := b.conv(x, 384, 1, 1, 0)
		b2a := b.convRect(b2, 384, 1, 3, 1, 0, 1)
		b2b := b.convRect(b2, 384, 3, 1, 1, 1, 0)
		b3 := b.conv(x, 448, 1, 1, 0)
		b3 = b.conv(b3, 384, 3, 1, 1)
		b3a := b.convRect(b3, 384, 1, 3, 1, 0, 1)
		b3b := b.convRect(b3, 384, 3, 1, 1, 1, 0)
		b4 := b.conv(b.pool(x, 3, 1, 1), 192, 1, 1, 0)
		return b.concat(b1, b2a, b2b, b3a, b3b, b4)
	}
	x = moduleE(x)
	x = moduleE(x) // 8x8x2048

	x = b.globalPool(x)
	b.fc(x, 1000)
	return b.finish()
}
