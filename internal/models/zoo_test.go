package models

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

func TestAllModelsBuild(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := Build(name)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if g.NumLayers() < 3 {
				t.Errorf("%s: only %d layers", name, g.NumLayers())
			}
			if g.TotalMACs() <= 0 {
				t.Errorf("%s: non-positive MAC count", name)
			}
			// Every model ends in a classifier; its graph must have
			// exactly one source (the input).
			inputs := 0
			for _, l := range g.Layers {
				if l.Kind == graph.OpInput {
					inputs++
				}
			}
			if inputs != 1 {
				t.Errorf("%s: %d input layers, want 1", name, inputs)
			}
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Error("Build(nope) succeeded")
	}
}

// TestParameterRegimes checks each paper workload lands in the right
// parameter regime (Table I). Exact counts differ from the paper because
// BN/activation layers are fused (see package comment), but the order of
// magnitude and relative ordering must hold.
func TestParameterRegimes(t *testing.T) {
	cases := []struct {
		name     string
		min, max float64 // millions of parameters
	}{
		{"vgg19", 120, 150},      // paper: 137M
		{"resnet50", 20, 32},     // paper: 26M
		{"resnet152", 50, 70},    // paper: 60M
		{"resnet1001", 300, 900}, // paper: 850M
		{"inceptionv3", 18, 32},  // paper: 27M
		{"nasnet", 40, 130},      // paper: 89M
		{"pnasnet", 40, 130},     // paper: 86M
		{"efficientnet", 1.5, 8}, // paper: 2M
	}
	for _, c := range cases {
		g := MustBuild(c.name)
		m := float64(g.TotalParams()) / 1e6
		if m < c.min || m > c.max {
			t.Errorf("%s: %.1fM params, want within [%.0f, %.0f]M", c.name, m, c.min, c.max)
		}
	}
}

// TestStructuralCharacteristics verifies the topological property Table I
// attributes to each workload class.
func TestStructuralCharacteristics(t *testing.T) {
	count := func(g *graph.Graph, k graph.OpKind) int {
		n := 0
		for _, l := range g.Layers {
			if l.Kind == k {
				n++
			}
		}
		return n
	}
	// VGG is a pure cascade: no eltwise, no concat, every layer has at
	// most one consumer.
	vgg := MustBuild("vgg19")
	if count(vgg, graph.OpEltwise) != 0 || count(vgg, graph.OpConcat) != 0 {
		t.Error("vgg19 should have no eltwise/concat layers")
	}
	for _, l := range vgg.Layers {
		if len(vgg.Consumers(l.ID)) > 1 {
			t.Errorf("vgg19 layer %s has %d consumers, want <=1", l.Name, len(vgg.Consumers(l.ID)))
		}
	}
	// ResNets have residual adds.
	if count(MustBuild("resnet50"), graph.OpEltwise) != 16 {
		t.Errorf("resnet50 add count = %d, want 16", count(MustBuild("resnet50"), graph.OpEltwise))
	}
	// Inception has concats and no adds.
	inc := MustBuild("inceptionv3")
	if count(inc, graph.OpConcat) != 11 {
		t.Errorf("inceptionv3 concat count = %d, want 11", count(inc, graph.OpConcat))
	}
	// NAS nets have both adds and concats (irregular wiring).
	for _, n := range []string{"nasnet", "pnasnet"} {
		g := MustBuild(n)
		if count(g, graph.OpEltwise) == 0 || count(g, graph.OpConcat) == 0 {
			t.Errorf("%s should have both eltwise and concat layers", n)
		}
	}
	// EfficientNet is depthwise-heavy.
	eff := MustBuild("efficientnet")
	if count(eff, graph.OpDepthwiseConv) != 16 {
		t.Errorf("efficientnet dwconv count = %d, want 16", count(eff, graph.OpDepthwiseConv))
	}
}

// TestResNetDepthOrdering: deeper variants must have strictly greater
// graph depth and layer counts.
func TestResNetDepthOrdering(t *testing.T) {
	r50 := MustBuild("resnet50")
	r152 := MustBuild("resnet152")
	r1001 := MustBuild("resnet1001")
	if !(r50.MaxDepth() < r152.MaxDepth() && r152.MaxDepth() < r1001.MaxDepth()) {
		t.Errorf("depth ordering violated: %d, %d, %d",
			r50.MaxDepth(), r152.MaxDepth(), r1001.MaxDepth())
	}
	if !(r50.NumLayers() < r152.NumLayers() && r152.NumLayers() < r1001.NumLayers()) {
		t.Errorf("layer-count ordering violated: %d, %d, %d",
			r50.NumLayers(), r152.NumLayers(), r1001.NumLayers())
	}
}

// TestShapeConsistency walks every edge and checks producer/consumer
// tensor shapes are compatible.
func TestShapeConsistency(t *testing.T) {
	for _, name := range PaperWorkloads {
		g := MustBuild(name)
		for _, l := range g.Layers {
			if len(l.Inputs) == 0 {
				continue
			}
			switch l.Kind {
			case graph.OpEltwise:
				for _, in := range l.Inputs {
					p := g.Layer(in).Shape
					if p.Ho != l.Shape.Ho || p.Wo != l.Shape.Wo || p.Co != l.Shape.Co {
						t.Errorf("%s/%s: eltwise input %s shape %dx%dx%d != out %dx%dx%d",
							name, l.Name, g.Layer(in).Name, p.Ho, p.Wo, p.Co,
							l.Shape.Ho, l.Shape.Wo, l.Shape.Co)
					}
				}
			case graph.OpConcat:
				sum := 0
				for _, in := range l.Inputs {
					p := g.Layer(in).Shape
					if p.Ho != l.Shape.Ho || p.Wo != l.Shape.Wo {
						t.Errorf("%s/%s: concat input %s spatial %dx%d != out %dx%d",
							name, l.Name, g.Layer(in).Name, p.Ho, p.Wo, l.Shape.Ho, l.Shape.Wo)
					}
					sum += p.Co
				}
				if sum != l.Shape.Co {
					t.Errorf("%s/%s: concat channels %d != out %d", name, l.Name, sum, l.Shape.Co)
				}
			case graph.OpConv, graph.OpDepthwiseConv, graph.OpPool:
				p := g.Layer(l.Inputs[0]).Shape
				if p.Ho != l.Shape.Hi || p.Wo != l.Shape.Wi {
					t.Errorf("%s/%s: input spatial %dx%d != declared Hi/Wi %dx%d",
						name, l.Name, p.Ho, p.Wo, l.Shape.Hi, l.Shape.Wi)
				}
				// VGG's first FC flattens, so only conv-likes check Ci.
				if p.Co != l.Shape.Ci {
					t.Errorf("%s/%s: input channels %d != declared Ci %d",
						name, l.Name, p.Co, l.Shape.Ci)
				}
			}
		}
	}
}
