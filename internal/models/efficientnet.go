package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// EfficientNet builds EfficientNet-B0: seven MBConv stages (inverted
// residual bottlenecks with depthwise convolutions) between a conv stem and
// a 1x1 head. Squeeze-and-excitation blocks are omitted (their global-pool
// + tiny-FC side branches contribute <1% of MACs and no PE-array-relevant
// structure); the paper lists EfficientNet at 2M params, consistent with
// the SE-less backbone.
func EfficientNet() *graph.Graph {
	b := newBuilder("efficientnet")
	x := b.input(224, 224, 3)
	x = b.conv(x, 32, 3, 2, 1)

	// mbconv appends one inverted-residual block.
	mbconv := func(in, co, k, stride, expand int) int {
		ci := b.out(in).Co
		y := in
		if expand != 1 {
			y = b.conv(y, ci*expand, 1, 1, 0)
		}
		y = b.dwconv(y, k, stride, k/2)
		y = b.conv(y, co, 1, 1, 0)
		if stride == 1 && ci == co {
			y = b.add(in, y)
		}
		return y
	}

	type stage struct{ co, depth, k, stride, expand int }
	stages := []stage{
		{16, 1, 3, 1, 1},
		{24, 2, 3, 2, 6},
		{40, 2, 5, 2, 6},
		{80, 3, 3, 2, 6},
		{112, 3, 5, 1, 6},
		{192, 4, 5, 2, 6},
		{320, 1, 3, 1, 6},
	}
	for _, s := range stages {
		for i := 0; i < s.depth; i++ {
			stride := 1
			if i == 0 {
				stride = s.stride
			}
			x = mbconv(x, s.co, s.k, stride, s.expand)
		}
	}
	x = b.conv(x, 1280, 1, 1, 0)
	x = b.globalPool(x)
	b.fc(x, 1000)
	return b.finish()
}
