package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// DeepChain is a synthetic 1000+-compute-layer workload for exercising
// the search and scheduling paths at transformer/LLM-scale graph depth
// (ResNet-1001 is the deepest real zoo model; this one is deeper still
// and deliberately cheap per layer). The tensors stay small — 16x16
// spatial, 16-48 channels — so a single SA iteration is dominated by the
// per-layer bookkeeping the delta-evaluation refactor targets, not by
// the cost oracle, and the full pipeline stays affordable in CI.
//
// Structure: repeated blocks of [conv3x3, conv1x1, residual add] with a
// depthwise conv every 8th block and a strided stage transition every
// 256 compute layers, ending in global pool + FC. The mix keeps the
// candidate-list shapes heterogeneous (different cycle floors per kind)
// so the unified-cycle search is non-trivial.
func DeepChain() *graph.Graph {
	b := newBuilder("deepchain1k")
	x := b.input(16, 16, 16)
	x = b.conv(x, 32, 3, 1, 1)
	compute := 1
	block := 0
	for compute < 1024 {
		y := b.conv(x, 32, 3, 1, 1)
		y = b.conv(y, 32, 1, 1, 0)
		compute += 2
		if block%8 == 7 {
			y = b.dwconv(y, 3, 1, 1)
			compute++
		}
		x = b.add(x, y)
		block++
		if compute%256 < 2 && compute > 200 && b.out(x).Ho > 4 {
			x = b.conv(x, 48, 3, 2, 1)
			x = b.conv(x, 32, 1, 1, 0)
			compute += 2
		}
	}
	x = b.globalPool(x)
	b.fc(x, 100)
	return b.finish()
}
