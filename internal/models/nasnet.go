package models

import "github.com/atomic-dataflow/atomicflow/internal/graph"

// NAS-generated networks. NASNet-A and PNASNet-5 are defined by searched
// cells wired in irregular topology; each cell combines two hidden states
// (the previous two cell outputs) through five two-input blocks whose
// results are concatenated. We reproduce the published cell structures with
// separable convolutions (depthwise + pointwise pairs) and pooling ops,
// which gives the scheduler exactly the irregular multi-branch atom DAGs
// the paper targets (PNASNet cells appear in the paper's Fig. 6).

// fit projects src to F channels (1x1 conv) and, when reduce is set,
// halves its spatial dims so both cell inputs agree in shape.
func fit(b *builder, src, f int, reduce bool) int {
	stride := 1
	if reduce {
		stride = 2
	}
	if b.out(src).Co == f && stride == 1 {
		return src
	}
	return b.conv(src, f, 1, stride, 0)
}

// nasnetNormalCell is the NASNet-A normal cell: five blocks over the two
// hidden states h (current) and hp (previous).
func nasnetNormalCell(b *builder, hp, h, f int) int {
	hp = fit(b, hp, f, b.out(hp).Ho != b.out(h).Ho)
	h = fit(b, h, f, false)
	b1 := b.add(b.sepconv(h, f, 3, 1, 1), h)
	b2 := b.add(b.sepconv(hp, f, 3, 1, 1), b.sepconv(h, f, 5, 1, 2))
	b3 := b.add(b.pool(h, 3, 1, 1), hp)
	b4 := b.add(b.pool(hp, 3, 1, 1), b.pool(hp, 3, 1, 1))
	b5 := b.add(b.sepconv(hp, f, 5, 1, 2), b.sepconv(hp, f, 3, 1, 1))
	return b.concat(b1, b2, b3, b4, b5)
}

// nasnetReductionCell halves spatial dims and is wired per NASNet-A.
func nasnetReductionCell(b *builder, hp, h, f int) int {
	hp = fit(b, hp, f, b.out(hp).Ho != b.out(h).Ho)
	h = fit(b, h, f, false)
	b1 := b.add(b.sepconv(h, f, 5, 2, 2), b.sepconv(hp, f, 7, 2, 3))
	b2 := b.add(b.pool(h, 3, 2, 1), b.sepconv(hp, f, 7, 2, 3))
	b3 := b.add(b.pool(h, 3, 2, 1), b.sepconv(hp, f, 5, 2, 2))
	b4 := b.add(b.pool(b1, 3, 1, 1), b2)
	b5 := b.add(b.sepconv(b1, f, 3, 1, 1), b3)
	return b.concat(b2, b4, b5)
}

// NASNet builds NASNet-A Large (6 @ 4032): stem, two early reduction
// cells, then three stacks of six normal cells separated by reduction
// cells, with the filter count doubling at each reduction (168/336/672).
func NASNet() *graph.Graph {
	b := newBuilder("nasnet")
	x := b.input(331, 331, 3)
	stem := b.conv(x, 96, 3, 2, 0)
	f := 168
	r0 := nasnetReductionCell(b, stem, stem, f/4)
	r1 := nasnetReductionCell(b, stem, r0, f/2)
	hp, h := r0, r1
	for stack := 0; stack < 3; stack++ {
		for i := 0; i < 6; i++ {
			hp, h = h, nasnetNormalCell(b, hp, h, f)
		}
		if stack < 2 {
			f *= 2
			hp, h = h, nasnetReductionCell(b, hp, h, f)
		}
	}
	g := b.globalPool(h)
	b.fc(g, 1000)
	return b.finish()
}

// pnasCell is the PNASNet-5 cell: five blocks discovered by progressive
// search, combining separable convs of mixed kernel sizes with max pooling.
// The same cell serves normal (stride 1) and reduction (stride 2) duty.
func pnasCell(b *builder, hp, h, f, stride int) int {
	hp = fit(b, hp, f, b.out(hp).Ho != b.out(h).Ho)
	h = fit(b, h, f, false)
	pooled := func(src int) int {
		if stride == 1 {
			return b.pool(src, 3, 1, 1)
		}
		return b.pool(src, 3, 2, 1)
	}
	strided := func(src, k int) int { return b.sepconv(src, f, k, stride, k/2) }
	b1 := b.add(strided(hp, 5), pooled(hp))
	b2 := b.add(strided(h, 7), pooled(h))
	b3 := b.add(strided(h, 5), strided(h, 3))
	b4 := b.add(b.sepconv(b3, f, 3, 1, 1), pooled(hp))
	id5 := h
	if stride != 1 {
		id5 = b.conv(h, f, 1, stride, 0)
	}
	b5 := b.add(strided(hp, 3), id5)
	return b.concat(b1, b2, b3, b4, b5)
}

// PNASNet builds PNASNet-5 Large: three stacks of four normal cells with
// reduction cells between, F=216 doubling per reduction.
func PNASNet() *graph.Graph {
	b := newBuilder("pnasnet")
	x := b.input(331, 331, 3)
	stem := b.conv(x, 96, 3, 2, 0)
	f := 216
	r0 := pnasCell(b, stem, stem, f/4, 2)
	r1 := pnasCell(b, stem, r0, f/2, 2)
	hp, h := r0, r1
	for stack := 0; stack < 3; stack++ {
		for i := 0; i < 4; i++ {
			hp, h = h, pnasCell(b, hp, h, f, 1)
		}
		if stack < 2 {
			f *= 2
			hp, h = h, pnasCell(b, hp, h, f, 2)
		}
	}
	g := b.globalPool(h)
	b.fc(g, 1000)
	return b.finish()
}

// PNASCell builds a single PNASNet cell on small tensors — the example
// topology used in the paper's Fig. 6 parallelism analysis.
func PNASCell() *graph.Graph {
	b := newBuilder("pnascell")
	x := b.input(28, 28, 32)
	prev := b.conv(x, 32, 1, 1, 0)
	cur := b.conv(x, 32, 3, 1, 1)
	out := pnasCell(b, prev, cur, 32, 1)
	g := b.globalPool(out)
	b.fc(g, 10)
	return b.finish()
}
