// Package models is the workload front end of the framework: it constructs
// the eight DNN inference graphs evaluated in the paper (Table I) plus small
// synthetic networks used in tests and examples.
//
// The paper imports models through ONNX; this repository has no network
// access and no external files, so the zoo builds the same graphs
// programmatically with real tensor shapes. BatchNorm and activation
// functions are treated as fused into their producer layers (standard
// practice in accelerator toolchains), so our layer counts differ from
// Table I, which counts them separately; the structural characteristics the
// scheduler keys on (cascades, residual bypasses, branching cells,
// NAS-generated irregularity) are preserved. See DESIGN.md §1.
package models

import (
	"fmt"
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// Builder constructs one workload graph.
type Builder func() *graph.Graph

var registry = map[string]Builder{
	"vgg19":        VGG19,
	"resnet50":     ResNet50,
	"resnet152":    ResNet152,
	"resnet1001":   ResNet1001,
	"inceptionv3":  InceptionV3,
	"nasnet":       NASNet,
	"pnasnet":      PNASNet,
	"efficientnet": EfficientNet,
	"tinyconv":     TinyConv,
	"mobilenetv2":  MobileNetV2,
	"vgg16":        VGG16,
	"tinyresnet":   TinyResNet,
	"tinybranch":   TinyBranch,
	"pnascell":     PNASCell,
	"deepchain1k":  DeepChain,
}

// PaperWorkloads lists the eight models of the paper's Table I, in the
// paper's order.
var PaperWorkloads = []string{
	"vgg19", "resnet50", "resnet152", "inceptionv3",
	"nasnet", "pnasnet", "efficientnet", "resnet1001",
}

// Fig2Workloads lists the four models used in the paper's Fig. 2.
var Fig2Workloads = []string{"resnet50", "inceptionv3", "nasnet", "efficientnet"}

// Build constructs the named model, returning an error for unknown names.
// The returned graph is finalized.
func Build(name string) (*graph.Graph, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(), nil
}

// MustBuild is Build for known-good names; it panics on error.
func MustBuild(name string) *graph.Graph {
	g, err := Build(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns all registered model names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// builder provides the shared graph-construction helpers used by the zoo.
type builder struct {
	g   *graph.Graph
	seq int
}

func newBuilder(name string) *builder { return &builder{g: graph.New(name)} }

func (b *builder) name(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s_%d", prefix, b.seq)
}

// input adds the network input pseudo-layer.
func (b *builder) input(h, w, c int) int {
	return b.g.AddLayer("input", graph.OpInput, graph.Shape{Hi: h, Wi: w, Ci: c, Ho: h, Wo: w, Co: c})
}

// conv adds a CONV layer reading from src; returns its ID.
func (b *builder) conv(src, co, k, stride, pad int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name("conv"), graph.OpConv,
		graph.ConvShape(s.Ho, s.Wo, s.Co, co, k, stride, pad), src)
}

// convName is conv with an explicit name prefix, for readable DOT dumps.
func (b *builder) convName(prefix string, src, co, k, stride, pad int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name(prefix), graph.OpConv,
		graph.ConvShape(s.Ho, s.Wo, s.Co, co, k, stride, pad), src)
}

// convRect adds a CONV with a rectangular kernel (e.g. 1x7), as used by
// Inception-v3 factorized convolutions.
func (b *builder) convRect(src, co, kh, kw, stride, padH, padW int) int {
	s := b.out(src)
	ho := (s.Ho+2*padH-kh)/stride + 1
	wo := (s.Wo+2*padW-kw)/stride + 1
	return b.g.AddLayer(b.name("conv"), graph.OpConv, graph.Shape{
		Hi: s.Ho, Wi: s.Wo, Ci: s.Co, Ho: ho, Wo: wo, Co: co,
		Kh: kh, Kw: kw, Stride: stride, Pad: padH,
	}, src)
}

// dwconv adds a depthwise CONV (channels preserved).
func (b *builder) dwconv(src, k, stride, pad int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name("dwconv"), graph.OpDepthwiseConv,
		graph.ConvShape(s.Ho, s.Wo, s.Co, s.Co, k, stride, pad), src)
}

// sepconv models a separable conv as depthwise k x k followed by a 1x1
// pointwise conv to co channels (NASNet/PNASNet building block).
func (b *builder) sepconv(src, co, k, stride, pad int) int {
	dw := b.dwconv(src, k, stride, pad)
	return b.conv(dw, co, 1, 1, 0)
}

// pool adds a pooling layer.
func (b *builder) pool(src, k, stride, pad int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name("pool"), graph.OpPool,
		graph.PoolShape(s.Ho, s.Wo, s.Co, k, stride, pad), src)
}

// globalPool reduces spatial dims to 1x1.
func (b *builder) globalPool(src int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name("gpool"), graph.OpGlobalPool, graph.Shape{
		Hi: s.Ho, Wi: s.Wo, Ci: s.Co, Ho: 1, Wo: 1, Co: s.Co, Kh: s.Ho, Kw: s.Wo, Stride: 1,
	}, src)
}

// fc adds a fully-connected layer.
func (b *builder) fc(src, co int) int {
	s := b.out(src)
	return b.g.AddLayer(b.name("fc"), graph.OpFC, graph.FCShape(s.Co, co), src)
}

// add joins two or more equal-shaped tensors element-wise.
func (b *builder) add(srcs ...int) int {
	s := b.out(srcs[0])
	return b.g.AddLayer(b.name("add"), graph.OpEltwise,
		graph.EltwiseShape(s.Ho, s.Wo, s.Co), srcs...)
}

// concat joins tensors along the channel dimension.
func (b *builder) concat(srcs ...int) int {
	s := b.out(srcs[0])
	c := 0
	for _, id := range srcs {
		c += b.out(id).Co
	}
	return b.g.AddLayer(b.name("concat"), graph.OpConcat, graph.Shape{
		Hi: s.Ho, Wi: s.Wo, Ci: c, Ho: s.Ho, Wo: s.Wo, Co: c, Kh: 1, Kw: 1, Stride: 1,
	}, srcs...)
}

func (b *builder) out(id int) graph.Shape { return b.g.Layer(id).Shape }

func (b *builder) finish() *graph.Graph {
	if err := b.g.Finalize(); err != nil {
		panic(fmt.Sprintf("models: %s: %v", b.g.Name, err))
	}
	return b.g
}

// TinyConv is a 4-conv cascade on small tensors, for unit tests.
func TinyConv() *graph.Graph {
	b := newBuilder("tinyconv")
	x := b.input(32, 32, 3)
	x = b.conv(x, 16, 3, 1, 1)
	x = b.conv(x, 16, 3, 1, 1)
	x = b.conv(x, 32, 3, 2, 1)
	x = b.conv(x, 32, 3, 1, 1)
	x = b.globalPool(x)
	b.fc(x, 10)
	return b.finish()
}

// TinyResNet is a 2-block residual net on small tensors, for unit tests.
func TinyResNet() *graph.Graph {
	b := newBuilder("tinyresnet")
	x := b.input(32, 32, 3)
	x = b.conv(x, 16, 3, 1, 1)
	for i := 0; i < 2; i++ {
		y := b.conv(x, 16, 3, 1, 1)
		y = b.conv(y, 16, 3, 1, 1)
		x = b.add(x, y)
	}
	x = b.globalPool(x)
	b.fc(x, 10)
	return b.finish()
}

// TinyBranch is a small 3-branch inception-style net, for unit tests.
func TinyBranch() *graph.Graph {
	b := newBuilder("tinybranch")
	x := b.input(16, 16, 8)
	a := b.conv(x, 8, 1, 1, 0)
	c := b.conv(x, 8, 3, 1, 1)
	d := b.conv(b.conv(x, 8, 1, 1, 0), 8, 5, 1, 2)
	m := b.concat(a, c, d)
	m = b.globalPool(m)
	b.fc(m, 10)
	return b.finish()
}
