package anneal

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

func TestChainSeed(t *testing.T) {
	// Chain 0 keeps the run seed: a one-chain portfolio must be the
	// classic single-chain trajectory.
	if got := chainSeed(42, 0); got != 42 {
		t.Errorf("chainSeed(42, 0) = %d, want 42", got)
	}
	// Derived seeds are deterministic, pairwise distinct and never zero
	// (zero would silently mean "default" elsewhere).
	seen := map[int64]int{}
	for _, runSeed := range []int64{1, 2, 42, -7} {
		for i := 0; i < 16; i++ {
			s := chainSeed(runSeed, i)
			if s == 0 {
				t.Errorf("chainSeed(%d, %d) = 0", runSeed, i)
			}
			if s != chainSeed(runSeed, i) {
				t.Errorf("chainSeed(%d, %d) not deterministic", runSeed, i)
			}
			seen[s]++
		}
	}
	// splitmix64's finalizer should spread (seed, index) pairs without
	// collisions at this tiny scale.
	for s, n := range seen {
		if n > 1 {
			t.Errorf("seed %d produced by %d distinct (run, chain) pairs", s, n)
		}
	}
}

// sameResult compares every externally-visible field of two Results.
func sameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.FinalVar != b.FinalVar || a.FinalCV != b.FinalCV ||
		a.MeanCycle != b.MeanCycle || a.Iters != b.Iters {
		t.Errorf("%s: scalars diverged: Var %v/%v CV %v/%v Mean %v/%v Iters %d/%d",
			label, a.FinalVar, b.FinalVar, a.FinalCV, b.FinalCV,
			a.MeanCycle, b.MeanCycle, a.Iters, b.Iters)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace[%d] = %v vs %v", label, i, a.Trace[i], b.Trace[i])
		}
	}
	if len(a.Spec) != len(b.Spec) {
		t.Fatalf("%s: spec sizes %d vs %d", label, len(a.Spec), len(b.Spec))
	}
	for lid, p := range a.Spec {
		if b.Spec[lid] != p {
			t.Errorf("%s: layer %d spec %+v vs %+v", label, lid, p, b.Spec[lid])
		}
	}
}

// TestPortfolioDeterministicAcrossGOMAXPROCS is the tentpole property:
// a fixed (graph, seed, chains) tuple yields a bit-identical Result
// whether the chains run on one OS thread or genuinely interleave.
func TestPortfolioDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	opt := Options{MaxIters: 160, Seed: 1, Chains: 4}

	prev := runtime.GOMAXPROCS(1)
	serial := SA(g, cfg, engine.KCPartition, opt)
	runtime.GOMAXPROCS(4)
	parallel := SA(g, cfg, engine.KCPartition, opt)
	parallel2 := SA(g, cfg, engine.KCPartition, opt)
	runtime.GOMAXPROCS(prev)

	sameResult(t, "GOMAXPROCS 1 vs 4", serial, parallel)
	sameResult(t, "repeat at GOMAXPROCS 4", parallel, parallel2)
	if _, err := atom.Build(g, 1, parallel.Spec); err != nil {
		t.Errorf("portfolio spec unusable: %v", err)
	}
}

// TestPortfolioSeedAndWidthMatter pins that the knobs do something: a
// different seed or a different width must be allowed to change the
// outcome (they explore different trajectories), while Chains: 1 through
// the portfolio knob must be byte-for-byte the classic single chain.
func TestPortfolioSeedAndWidthMatter(t *testing.T) {
	g := models.MustBuild("tinyconv")
	cfg := engine.Default()

	classic := SA(g, cfg, engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	viaKnob := SA(g, cfg, engine.KCPartition, Options{MaxIters: 100, Seed: 42, Chains: 1})
	sameResult(t, "Chains:1 vs unset", classic, viaKnob)
}

// TestPortfolioConvergesLikeSA: the portfolio keeps the SA contract —
// non-increasing best-energy trace, usable spec, sane mean cycle — at
// several widths, including widths that don't divide MaxIters evenly.
func TestPortfolioConvergesLikeSA(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	for _, k := range []int{2, 3, 4} {
		res := SA(g, cfg, engine.KCPartition, Options{MaxIters: 100, Seed: 7, Chains: k})
		if len(res.Trace) == 0 {
			t.Fatalf("chains=%d: empty trace", k)
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i] > res.Trace[i-1]+1e-9 {
				t.Fatalf("chains=%d: best-energy trace not monotone at %d", k, i)
			}
		}
		if res.MeanCycle <= 0 {
			t.Errorf("chains=%d: MeanCycle = %v", k, res.MeanCycle)
		}
		if _, err := atom.Build(g, 1, res.Spec); err != nil {
			t.Errorf("chains=%d: Build: %v", k, err)
		}
	}
}

// TestPortfolioGA runs the GA comparator as the last portfolio member
// and requires the combined run to stay deterministic and usable.
func TestPortfolioGA(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	opt := Options{MaxIters: 120, Seed: 5, Chains: 3, PortfolioGA: true}
	a := SA(g, cfg, engine.KCPartition, opt)
	b := SA(g, cfg, engine.KCPartition, opt)
	sameResult(t, "portfolio+GA repeat", a, b)
	if _, err := atom.Build(g, 1, a.Spec); err != nil {
		t.Errorf("Build: %v", err)
	}
}

// TestPortfolioCancellation: a cancelled context truncates the portfolio
// — every chain stops at its next iteration check, the GA member stops at
// its next generation, and the reduction still returns a usable
// best-so-far spec instead of hanging or panicking.
func TestPortfolioCancellation(t *testing.T) {
	g := models.MustBuild("tinyconv")
	cfg := engine.Default()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: chains must do no Metropolis work
	done := make(chan Result, 1)
	go func() {
		done <- SA(g, cfg, engine.KCPartition,
			Options{MaxIters: 5000, Seed: 3, Chains: 4, PortfolioGA: true, Ctx: ctx})
	}()
	select {
	case res := <-done:
		if res.Iters != 0 {
			t.Errorf("cancelled portfolio ran %d iterations, want 0", res.Iters)
		}
		if _, err := atom.Build(g, 1, res.Spec); err != nil {
			t.Errorf("best-so-far spec unusable: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled portfolio did not return")
	}
}

// TestPortfolioMetrics checks the per-chain observability: the width
// gauge, the per-chain accept/reject split summing to the aggregate
// iteration counter, and a wall-time gauge per member.
func TestPortfolioMetrics(t *testing.T) {
	g := models.MustBuild("tinyconv")
	reg := obs.New()
	const k = 4
	SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 120, Seed: 42, Chains: k, Metrics: reg})
	snap := reg.Snapshot()
	if got := snap.Gauge("anneal_chains"); got != k {
		t.Errorf("anneal_chains = %v, want %d", got, k)
	}
	var perChain int64
	for i := 0; i < k; i++ {
		acc := snap.Counter(obs.Name("anneal_chain_accepts_total", "chain", i))
		rej := snap.Counter(obs.Name("anneal_chain_rejects_total", "chain", i))
		if acc+rej == 0 {
			t.Errorf("chain %d recorded no Metropolis decisions", i)
		}
		perChain += acc + rej
	}
	if iters := snap.Counter("anneal_iterations_total"); perChain != iters {
		t.Errorf("per-chain accepts+rejects = %d, want %d (the aggregate)", perChain, iters)
	}
	if agg := snap.Counter("anneal_accepts_total") + snap.Counter("anneal_rejects_total"); agg != snap.Counter("anneal_iterations_total") {
		t.Errorf("aggregate accepts+rejects = %d, want %d", agg, snap.Counter("anneal_iterations_total"))
	}
}
