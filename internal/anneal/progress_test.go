package anneal

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// TestProgressHookIsObservationOnly is the determinism contract behind
// the fleet dashboard: attaching a Progress hook — which segments the
// single-chain loop and piggybacks on portfolio barriers — must leave
// the Result byte-identical to a hookless run, at every width.
func TestProgressHookIsObservationOnly(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	for _, chains := range []int{1, 2, 4} {
		base := Options{MaxIters: 160, Seed: 9, Chains: chains, ExchangeEvery: 32}
		plain := SA(g, cfg, engine.KCPartition, base)

		hooked := base
		var batches [][]Sample
		hooked.Progress = func(s []Sample) {
			cp := make([]Sample, len(s))
			copy(cp, s)
			batches = append(batches, cp)
		}
		observed := SA(g, cfg, engine.KCPartition, hooked)

		sameResult(t, "progress hook, chains="+string(rune('0'+chains)), plain, observed)
		if len(batches) == 0 {
			t.Fatalf("chains=%d: hook never fired", chains)
		}
		checkBatches(t, batches, chains)
	}
}

func checkBatches(t *testing.T, batches [][]Sample, chains int) {
	t.Helper()
	final := batches[len(batches)-1]
	for _, s := range final {
		if !s.Final {
			t.Fatalf("chains=%d: last batch has non-final sample %+v", chains, s)
		}
	}
	for bi, batch := range batches[:len(batches)-1] {
		for _, s := range batch {
			if s.Final {
				t.Fatalf("chains=%d: batch %d marked final early", chains, bi)
			}
		}
	}
	// Per-chain iteration counts never move backwards, best energy never
	// rises, and the CV derives from BestE/BestS.
	lastIter := map[int]int{}
	lastBest := map[int]float64{}
	for bi, batch := range batches {
		if chains > 1 && bi < len(batches)-1 && len(batch) != chains {
			t.Fatalf("barrier batch %d has %d samples, want %d", bi, len(batch), chains)
		}
		for _, s := range batch {
			if prev, ok := lastIter[s.Chain]; ok && s.Iters < prev {
				t.Fatalf("chain %d iterations went backwards: %d after %d", s.Chain, s.Iters, prev)
			}
			lastIter[s.Chain] = s.Iters
			if prev, ok := lastBest[s.Chain]; ok && s.BestE > prev+1e-9 && !s.Adopted {
				t.Fatalf("chain %d best energy rose without adoption: %v after %v", s.Chain, s.BestE, prev)
			}
			lastBest[s.Chain] = s.BestE
			if s.BestS > 0 && s.CV() <= 0 && s.BestE > 0 {
				t.Fatalf("chain %d: CV() = %v with BestE %v BestS %v", s.Chain, s.CV(), s.BestE, s.BestS)
			}
		}
	}
}

// TestProgressSingleChainCadence pins the emission schedule: one batch
// per ExchangeEvery segment plus the final batch, each of exactly one
// sample.
func TestProgressSingleChainCadence(t *testing.T) {
	g := models.MustBuild("tinyconv")
	cfg := engine.Default()
	var batches int
	opt := Options{MaxIters: 100, Seed: 3, ExchangeEvery: 25}
	opt.Progress = func(s []Sample) {
		if len(s) != 1 {
			t.Fatalf("single-chain batch has %d samples", len(s))
		}
		batches++
	}
	res := SA(g, cfg, engine.KCPartition, opt)
	// 100 iters / 25 per segment = 4 barrier batches, + 1 final — unless
	// the chain converged early, which only shortens the schedule.
	if batches < 2 || batches > 5 {
		t.Fatalf("saw %d batches for 100 iters @ 25 (want 2..5, iters ran %d)", batches, res.Iters)
	}
}
