package anneal

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/cost/surrogate"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// surrogateSolve runs one cold SA solve with a fresh memo and a fresh
// surrogate model wired the way Orchestrate wires them, returning the
// result plus the oracle and model stats.
func surrogateSolve(g *graph.Graph, seed int64) (Result, cost.Stats, surrogate.Stats) {
	m := surrogate.New()
	orc := cost.NewMemo(cost.Direct{})
	cost.AttachSampler(orc, m)
	res := SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 200, Seed: seed, Oracle: orc, Surrogate: m})
	return res, orc.Stats(), m.Stats()
}

// TestSurrogateMissReduction is the headline perf property: on a cold
// solve of a many-unique-shape workload, surrogate-filtered candidate
// generation must cut exact engine evaluations (memo misses) by at least
// 40% versus the unfiltered search.
func TestSurrogateMissReduction(t *testing.T) {
	g := models.MustBuild("resnet50")

	exact := cost.NewMemo(cost.Direct{})
	SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 200, Seed: 1, Oracle: exact})
	base := exact.Stats()
	if base.Misses == 0 {
		t.Fatal("baseline solve issued no evaluations")
	}

	_, filt, ss := surrogateSolve(g, 1)
	t.Logf("misses: exact %d -> surrogate %d (%.1f%% cut); model: %+v",
		base.Misses, filt.Misses,
		100*(1-float64(filt.Misses)/float64(base.Misses)), ss)
	if ss.FilterCalls == 0 {
		t.Fatal("surrogate filter never engaged on resnet50")
	}
	if ss.ExactEvalsSkipped == 0 {
		t.Fatal("surrogate skipped no exact evaluations")
	}
	if filt.Misses > base.Misses*6/10 {
		t.Errorf("surrogate misses = %d, want <= 60%% of exact %d",
			filt.Misses, base.Misses)
	}
}

// TestSurrogateDeterministic pins the run-to-run contract: a fresh model
// per solve trains on an identical evaluation stream (sequential
// first-occurrence candidate generation), so two solves are identical.
func TestSurrogateDeterministic(t *testing.T) {
	g := models.MustBuild("resnet50")
	a, astat, _ := surrogateSolve(g, 42)
	b, bstat, _ := surrogateSolve(g, 42)
	if a.FinalVar != b.FinalVar || a.Iters != b.Iters || a.MeanCycle != b.MeanCycle {
		t.Errorf("same seed diverged under surrogate: var %v/%v iters %v/%v S %v/%v",
			a.FinalVar, b.FinalVar, a.Iters, b.Iters, a.MeanCycle, b.MeanCycle)
	}
	for lid, p := range a.Spec {
		if b.Spec[lid] != p {
			t.Errorf("layer %d spec differs: %+v vs %+v", lid, p, b.Spec[lid])
		}
	}
	if astat.Misses != bstat.Misses || astat.Evaluations != bstat.Evaluations {
		t.Errorf("evaluation streams differ: %+v vs %+v", astat, bstat)
	}
}

// TestSurrogateSolutionQuality bounds the accuracy cost of filtering: the
// filtered search's unified cycle S must stay within 2% of the exact
// search's on the same seed, and the spec must still build a valid DAG.
func TestSurrogateSolutionQuality(t *testing.T) {
	g := models.MustBuild("resnet50")
	exact := SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 200, Seed: 1})
	filt, _, _ := surrogateSolve(g, 1)
	// One-sided: the refinement pass sometimes beats the exact search;
	// only a regression is a failure.
	if rel := (filt.MeanCycle - exact.MeanCycle) / exact.MeanCycle; rel > 0.02 {
		t.Errorf("surrogate S %.1f vs exact %.1f (%.2f%% worse), want within 2%%",
			filt.MeanCycle, exact.MeanCycle, 100*rel)
	}
	if _, err := atom.Build(g, 2, filt.Spec); err != nil {
		t.Errorf("Build with surrogate spec: %v", err)
	}
}

// TestSurrogateColdModelFallsBack: with coarse splitting every
// candidate list stays below the filter's minimum-size gate, so the
// filter must stay out of the way and the result must be bit-identical
// to the exact search.
func TestSurrogateColdModelFallsBack(t *testing.T) {
	g := models.MustBuild("tinyconv")
	exact := SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 100, Seed: 7, MaxSplits: 3})
	m := surrogate.New()
	orc := cost.NewMemo(cost.Direct{})
	cost.AttachSampler(orc, m)
	filt := SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 100, Seed: 7, MaxSplits: 3, Oracle: orc, Surrogate: m})
	ss := m.Stats()
	if ss.ExactEvalsSkipped != 0 {
		t.Fatalf("filter engaged below the list-size gate: %+v", ss)
	}
	if exact.FinalVar != filt.FinalVar || exact.MeanCycle != filt.MeanCycle {
		t.Errorf("unengaged surrogate changed the result: S %v vs %v",
			filt.MeanCycle, exact.MeanCycle)
	}
	for lid, p := range exact.Spec {
		if filt.Spec[lid] != p {
			t.Errorf("layer %d spec differs: %+v vs %+v", lid, p, filt.Spec[lid])
		}
	}
}

// TestSurrogateCandidateListInvariants re-runs a filtered solve and
// checks the structural invariants move scoring depends on: per-layer
// candidate lists sorted by cycles, de-duplicated, and every deferred
// candidate admitted by refine carrying its exact (not predicted) cost.
func TestSurrogateCandidateListInvariants(t *testing.T) {
	g := models.MustBuild("resnet50")
	m := surrogate.New()
	orc := cost.NewMemo(cost.Direct{})
	cost.AttachSampler(orc, m)
	cfg := engine.Default()
	s := newSearch(g, cfg, engine.KCPartition,
		Options{MaxIters: 200, Seed: 1, Oracle: orc, Surrogate: m})
	if m.Stats().ExactEvalsSkipped == 0 {
		t.Fatal("filter never engaged; invariants below would be vacuous")
	}
	for i, lc := range s.lcAt {
		cands := lc.cands
		if len(cands) == 0 {
			t.Fatalf("layer slot %d: empty candidate list", i)
		}
		for j := 1; j < len(cands); j++ {
			if cands[j].cycles < cands[j-1].cycles {
				t.Errorf("layer slot %d: candidates unsorted at %d (%d < %d)",
					i, j, cands[j].cycles, cands[j-1].cycles)
			}
		}
		// Every admitted candidate carries the exact engine cost, never a
		// surrogate prediction — the ALWAYS-rescore-exactly invariant.
		sh := lc.layer.Shape
		for j, c := range cands {
			task := engine.Task{Kind: lc.layer.Kind, Hp: c.part.Hp, Wp: c.part.Wp,
				Ci: sh.Ci, Cop: c.part.Cop, Kh: sh.Kh, Kw: sh.Kw, Stride: sh.Stride}
			if lc.layer.Kind == graph.OpDepthwiseConv {
				task.Ci = 1
			}
			if want := engine.Evaluate(cfg, engine.KCPartition, task).Cycles; c.cycles != want {
				t.Errorf("layer slot %d cand %d: stored cycles %d != exact %d",
					i, j, c.cycles, want)
			}
		}
	}
}
