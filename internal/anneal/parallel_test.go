package anneal

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestParallelForPanic pins the pool's panic contract: a panic inside fn
// is re-raised on the caller with its original value instead of killing
// the process from an anonymous goroutine, and the pool still drains
// (wg.Wait returns) before the re-raise.
func TestParallelForPanic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force the worker-pool path on 1-core machines
	defer runtime.GOMAXPROCS(prev)

	var ran atomic.Int64
	defer func() {
		r := recover()
		if r != "boom 3" {
			t.Fatalf("recovered %v, want the worker's original panic value", r)
		}
		// Indices other than the panicking one must have run: the pool
		// drains the remaining work rather than abandoning it mid-flight.
		if n := ran.Load(); n < 1 {
			t.Errorf("ran = %d workers' worth of indices, want > 0", n)
		}
	}()
	parallelFor(16, func(i int) {
		if i == 3 {
			panic("boom 3")
		}
		ran.Add(1)
	})
	t.Fatal("parallelFor returned normally despite a panicking fn")
}

// TestParallelForPanicSequential covers the workers<=1 fallback, which
// must propagate panics exactly like a plain loop.
func TestParallelForPanicSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	defer func() {
		if r := recover(); r != "seq" {
			t.Fatalf("recovered %v, want seq", r)
		}
	}()
	parallelFor(4, func(i int) {
		if i == 2 {
			panic("seq")
		}
	})
	t.Fatal("sequential parallelFor swallowed the panic")
}

// TestParallelForCompletes is the baseline: every index runs exactly once.
func TestParallelForCompletes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	hits := make([]atomic.Int32, 100)
	parallelFor(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, n)
		}
	}
}
