// Package anneal implements the paper's Algorithm 1: simulated-annealing
// atomic tensor generation, which chooses per-layer atom sizes
// [h_p, w_p, c_p^o] such that (1) the spatially-unrolled dimensions are
// quantized to the PE array so each engine runs at high utilization, and
// (2) the execution cycles of all layers' atoms concentrate around one
// unified value, minimizing load imbalance between atoms co-scheduled in
// the same Round. A genetic-algorithm comparator (used by the paper's
// Fig. 5b) is provided for evaluation.
package anneal

import (
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// candidate is one feasible atom size for a layer, pre-priced.
type candidate struct {
	part   atom.Partition
	cycles int64   // engine cycles of one (full) tile
	util   float64 // PE utilization of one tile
	tiles  int     // atoms the partition induces on the layer
}

// deferredCand is a feasible atom size the surrogate filter priced but
// did not spend an exact evaluation on. The refinement pass after SA
// re-admits deferred candidates whose predicted cycles land near the
// final unified cycle, evaluating them exactly then (see surrogate.go).
type deferredCand struct {
	part  atom.Partition
	tiles int
	pred  int64 // surrogate-predicted cycles (never reported anywhere)
}

// layerCands holds a layer's candidate list sorted by cycles ascending,
// plus (in surrogate mode) the enumerated-but-unevaluated remainder.
type layerCands struct {
	layer    *graph.Layer
	cands    []candidate
	deferred []deferredCand
}

// pick returns the index of the best candidate for a target cycle count:
// among candidates within ±25% of the target, the one with the fewest
// output-channel tiles wins (every extra channel tile re-reads the whole
// input tensor once, multiplying NoC/DRAM traffic); ties and the
// no-candidate-in-window case fall back to nearest-cycles.
func (lc *layerCands) pick(target int64) int {
	c := lc.cands
	i := sort.Search(len(c), func(i int) bool { return c[i].cycles >= target })
	nearest := i
	if i == len(c) {
		nearest = len(c) - 1
	} else if i > 0 && target-c[i-1].cycles <= c[i].cycles-target {
		nearest = i - 1
	}
	lo, hi := target-target/4, target+target/4
	// Within the window: keep near-peak PE utilization (target 1), then
	// minimize channel tiles (target 2: every extra channel tile
	// re-reads the whole input once), then nearest cycles.
	maxUtil := 0.0
	for j := range c {
		if c[j].cycles >= lo && c[j].cycles <= hi && c[j].util > maxUtil {
			maxUtil = c[j].util
		}
	}
	best, bestTiles := -1, 0
	for j := range c {
		if c[j].cycles < lo || c[j].cycles > hi || c[j].util < 0.9*maxUtil {
			continue
		}
		ct := channelTiles(lc.layer, c[j].part.Cop)
		if best < 0 || ct < bestTiles ||
			(ct == bestTiles && absDiff(c[j].cycles, target) < absDiff(c[best].cycles, target)) {
			best, bestTiles = j, ct
		}
	}
	if best >= 0 {
		return best
	}
	return nearest
}

func channelTiles(l *graph.Layer, cop int) int {
	if cop <= 0 {
		return 1
	}
	return (l.Shape.Co + cop - 1) / cop
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// genCandidates enumerates feasible atom sizes for one compute layer.
// Spatially-unrolled dims are quantized to the PE array per the dataflow
// (paper Sec. IV-A: sizes are [c0, c1, c2*PEx, c3*PEy] under KC-P);
// candidates whose working set cannot fit in the usable buffer fraction
// are discarded, and tile counts are capped to keep the atomic DAG
// tractable.
//
// With Options.Surrogate installed and ready, feasible partitions are
// first priced by the learned model and exact Evaluate calls are spent
// only on the selected survivors; the remainder comes back as the
// deferred list for the post-search refinement pass. Without a surrogate
// (or before it is ready) every feasible partition is evaluated exactly
// and deferred is nil.
func genCandidates(l *graph.Layer, cfg engine.Config, df engine.Dataflow, opt Options, orc cost.Oracle) ([]candidate, []deferredCand) {
	s := l.Shape
	var hs, ws, cs []int
	// Channel extents always quantize to at least the column width even
	// when channels are temporal (YX-P): finer slices cannot raise
	// utilization, but they shred the atomic DAG — every dense consumer
	// depends on all of a layer's channel tiles, so Cop=1 atoms explode
	// the edge count quadratically.
	cq := cfg.PEy
	switch {
	case l.Kind == graph.OpDepthwiseConv:
		// No cross-channel reuse: channel dim quantizes to PEy under
		// KC-P (kernel occupies the rows), spatial dims under YX-P.
		if df == engine.KCPartition {
			hs, ws = splitSizes(s.Ho, 1, opt.maxSplits()), splitSizes(s.Wo, 1, opt.maxSplits())
		} else {
			hs, ws = splitSizes(s.Ho, cfg.PEx, opt.maxSplits()), splitSizes(s.Wo, cfg.PEy, opt.maxSplits())
		}
		cs = splitSizes(s.Co, cq, opt.maxSplits())
	case df == engine.KCPartition:
		hs, ws = splitSizes(s.Ho, 1, opt.maxSplits()), splitSizes(s.Wo, 1, opt.maxSplits())
		cs = splitSizes(s.Co, cq, opt.maxSplits())
	case df == engine.FlexPartition:
		// Sizes [c0, c1*PEz, c2*PEx, c3*PEy] (paper Sec. VI-A): width
		// quantizes to the third array dimension.
		hs, ws = splitSizes(s.Ho, 1, opt.maxSplits()), splitSizes(s.Wo, cfg.PEzOf(), opt.maxSplits())
		cs = splitSizes(s.Co, cq, opt.maxSplits())
	default: // YXPartition
		hs, ws = splitSizes(s.Ho, cfg.PEx, opt.maxSplits()), splitSizes(s.Wo, cfg.PEy, opt.maxSplits())
		cs = splitSizes(s.Co, cq, opt.maxSplits())
	}
	budget := int64(float64(cfg.BufferBytes) * opt.bufferFraction())
	// Weights stream through the buffer in per-pass windows (the array
	// consumes PEx x PEy values per kernel position), so the residency
	// requirement is a double-buffered window, not the full slice — full
	// slices are cached opportunistically by the buffer manager when room
	// remains (Algorithm 3 treats them as evictable entries).
	weightWindow := int64(4 * cfg.PEx * cfg.PEy * s.Kh * s.Kw)
	var pend []pendingCand
	for _, hp := range hs {
		for _, wp := range ws {
			for _, cp := range cs {
				p := atom.Partition{Hp: hp, Wp: wp, Cop: cp}
				tiles := p.Tiles(l)
				if tiles > opt.maxTiles() {
					continue
				}
				t := engine.Task{Kind: l.Kind, Hp: hp, Wp: wp, Ci: s.Ci, Cop: cp,
					Kh: s.Kh, Kw: s.Kw, Stride: s.Stride}
				if l.Kind == graph.OpDepthwiseConv {
					t.Ci = 1
				}
				w := t.WeightBytes()
				if w > weightWindow {
					w = weightWindow
				}
				if inputWindow(t)+t.OutputBytes()+w > budget {
					continue
				}
				pend = append(pend, pendingCand{part: p, task: t, tiles: tiles})
			}
		}
	}
	// Warm-started searches narrow the enumeration to a window around the
	// prior solution's partition before any oracle evaluation is spent
	// (no-op without Options.WarmStart — see warm.go).
	pend = warmPrune(l, opt, pend)
	cands, deferred := evaluatePending(pend, cfg, df, opt, orc)
	// Prefer atoms whose weight slice can actually be cached in an
	// engine's buffer (Algorithm 3 stores weights opportunistically, but
	// a slice above ~3/4 of the buffer always streams from DRAM and is
	// re-fetched by every atom that needs it). Keep uncacheable sizes
	// only when no cacheable candidate exists (e.g. very wide FC layers).
	if len(cands) > 0 {
		cacheable := cands[:0]
		limit := int64(cfg.BufferBytes) * 3 / 4
		for _, c := range cands {
			wb := int64(s.Ci) * int64(c.part.Cop) * int64(s.Kh) * int64(s.Kw)
			if l.Kind == graph.OpDepthwiseConv {
				wb = int64(c.part.Cop) * int64(s.Kh) * int64(s.Kw)
			}
			if wb <= limit {
				cacheable = append(cacheable, c)
			}
		}
		if len(cacheable) > 0 {
			cands = cacheable
		}
	}
	// Target (1) of Sec. IV-A — high PE utilization — precedes balance:
	// drop candidates far below the layer's best achievable utilization
	// (tiny tiles of fill/drain-bound layers would otherwise be selected
	// as "closest to the unified cycle" while wasting the array).
	if len(cands) > 0 {
		maxU := 0.0
		for _, c := range cands {
			if c.util > maxU {
				maxU = c.util
			}
		}
		kept := cands[:0]
		for _, c := range cands {
			if c.util >= 0.6*maxU {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		// Nothing fits the buffer: fall back to one array-quantized tile
		// per spatial position so the pipeline still produces a
		// (memory-thrashing) schedule with a bounded atom count.
		p := atom.Partition{Hp: min(s.Ho, cfg.PEx), Wp: min(s.Wo, cfg.PEy), Cop: s.Co}
		t := engine.Task{Kind: l.Kind, Hp: p.Hp, Wp: p.Wp, Ci: s.Ci, Cop: p.Cop,
			Kh: s.Kh, Kw: s.Kw, Stride: s.Stride}
		if l.Kind == graph.OpDepthwiseConv {
			t.Ci = 1
		}
		c := orc.Evaluate(cfg, df, t)
		cands = append(cands, candidate{part: p, cycles: c.Cycles, util: c.Utilization, tiles: p.Tiles(l)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cycles < cands[j].cycles })
	return cands, deferred
}

// splitSizes enumerates tile extents for a dimension of size n, quantized
// up to multiples of q (capped at n), using the distinct values of
// ceil(n/k). The count is capped at maxSplits, biased toward coarse tiles
// (few, large atoms) plus the finest few.
func splitSizes(n, q, maxSplits int) []int {
	if q <= 0 {
		q = 1
	}
	seen := make(map[int]bool)
	var sizes []int
	add := func(sz int) {
		if sz < 1 {
			sz = 1
		}
		// Quantize up to a multiple of q, capped at n.
		if q > 1 {
			sz = ((sz + q - 1) / q) * q
		}
		if sz > n {
			sz = n
		}
		if !seen[sz] {
			seen[sz] = true
			sizes = append(sizes, sz)
		}
	}
	// Distinct ceil(n/k) values: k and n/k enumerate them all.
	for k := 1; k*k <= n; k++ {
		add((n + k - 1) / k)
		add(k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > maxSplits {
		// Keep the coarsest maxSplits-2 plus the two finest.
		kept := append([]int(nil), sizes[:maxSplits-2]...)
		kept = append(kept, sizes[len(sizes)-2], sizes[len(sizes)-1])
		sizes = kept
	}
	return sizes
}

// inputWindow returns the input residency an atom really needs: input
// channels are consumed in temporal chunks (like weights), so only a
// double-buffered 32-channel window of the input tile must be resident;
// the full slab streams through. Element-wise and pooling tasks consume
// their inputs once, streaming fully.
func inputWindow(t engine.Task) int64 {
	in := t.InputBytes()
	switch t.Kind {
	case graph.OpConv, graph.OpFC:
		if t.Ci > 32 {
			return in / int64(t.Ci) * 32
		}
	case graph.OpDepthwiseConv:
		if t.Cop > 32 {
			return in / int64(t.Cop) * 32
		}
	}
	return in
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
