package anneal

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// This file is the O(Δ) move-evaluation machinery of the search inner
// loop. Algorithm 1 scores ~MaxIters candidate states, and each one is
// the argmin image of a slightly shifted unified-cycle target, so almost
// every layer keeps the candidate it already had. Two structures turn
// that observation into an asymptotic win:
//
//   - accum: exact integer sums S1 = Σ cycles and S2 = Σ cycles² over the
//     state's energy-participating layers. Integer addition is
//     associative and commutative, so the sums are order-independent by
//     construction, and mean/variance are derived from them in one
//     deterministic float expression — a move updates the accumulators in
//     O(changed layers) and scoring is O(1).
//
//   - pickTable/walker: layerCands.pick(t) is a piecewise-constant
//     function of the integer target t. Each layer's breakpoints are
//     precomputed once per search, merged into one sorted event list, and
//     a walker slides a materialized argmin image along the target axis
//     by applying only the events between the old and new target —
//     O(changed layers) per move instead of O(all layers · candidates).
//
// The walker is cross-checked against the from-scratch argmin/pick path
// by Options.VerifyDelta (see (*search).verifyDelta) and by the
// apply/revert property and fuzz tests in delta_test.go.

// accum holds exact integer sums over a state's energy-participating
// layers: n layers, S1 = Σ cycles (int64) and S2 = Σ cycles² (unsigned
// 128-bit in s2hi:s2lo). The arithmetic is exact for cycles < 2^40 and
// n < 2^17 — far beyond any buffer-constrained atom (≤ ~10^7 cycles) or
// workload depth this repository can represent — so two accumulators
// built from the same multiset of cycles are bit-identical regardless of
// the order the layers were added, removed or re-added in.
type accum struct {
	n          int
	s1         int64
	s2hi, s2lo uint64
}

// add folds one layer's cycles into the sums (the layer count n is
// managed by the state constructors, not by add/sub: a move replaces a
// layer's cycles, it never changes how many layers participate).
func (a *accum) add(c int64) {
	a.s1 += c
	hi, lo := bits.Mul64(uint64(c), uint64(c))
	var carry uint64
	a.s2lo, carry = bits.Add64(a.s2lo, lo, 0)
	a.s2hi, _ = bits.Add64(a.s2hi, hi, carry)
}

// sub removes one layer's cycles from the sums.
func (a *accum) sub(c int64) {
	a.s1 -= c
	hi, lo := bits.Mul64(uint64(c), uint64(c))
	var borrow uint64
	a.s2lo, borrow = bits.Sub64(a.s2lo, lo, 0)
	a.s2hi, _ = bits.Sub64(a.s2hi, hi, borrow)
}

// twoPow64 scales the high limb of a 128-bit value into a float64.
const twoPow64 float64 = 1 << 64

// meanVariance derives the state's unified cycle S (mean) and energy E
// (variance) from the accumulators. The variance numerator n·S2 − S1² is
// computed exactly in 128-bit integers (it is ≥ 0 by Cauchy-Schwarz) and
// only the final division rounds, so the result is a pure function of
// the integer sums — any two states with identical accumulators score
// bit-identically, in any build order.
func (a accum) meanVariance() (mean, variance float64) {
	if a.n == 0 {
		return 0, 0
	}
	n := uint64(a.n)
	// n·S2, keeping the low 128 bits (the true value fits, see type doc).
	hi, lo := bits.Mul64(a.s2lo, n)
	hi += a.s2hi * n
	// − S1² (S1 ≥ 0: it is a sum of nonnegative cycle counts).
	sqhi, sqlo := bits.Mul64(uint64(a.s1), uint64(a.s1))
	var borrow uint64
	lo, borrow = bits.Sub64(lo, sqlo, 0)
	hi, _ = bits.Sub64(hi, sqhi, borrow)

	nf := float64(a.n)
	mean = float64(a.s1) / nf
	variance = (float64(hi)*twoPow64 + float64(lo)) / (nf * nf)
	return mean, variance
}

// mean returns only the unified cycle S.
func (a accum) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.s1) / float64(a.n)
}

// variance returns only the energy E.
func (a accum) variance() float64 {
	_, v := a.meanVariance()
	return v
}

// set points layer i (an index into search.all) at candidate c, keeping
// the accumulators in sync for energy-participating layers. Straggler
// layers (i ≥ nOrder) update only the choice: they are excluded from the
// variance but still follow the target so finish() assembles them.
func (st *state) set(s *search, i, c int) {
	old := st.choice[i]
	if old == c {
		return
	}
	st.choice[i] = c
	if i < s.nOrder {
		st.acc.sub(s.lcAt[i].cands[old].cycles)
		st.acc.add(s.lcAt[i].cands[c].cycles)
	}
}

// accumOf rebuilds a state's accumulators from scratch — the reference
// the property tests and VerifyDelta compare incremental results against.
func (s *search) accumOf(st state) accum {
	a := accum{n: s.nOrder}
	for i := 0; i < s.nOrder; i++ {
		a.add(s.lcAt[i].cands[st.choice[i]].cycles)
	}
	return a
}

// targetOf maps a float unified-cycle target onto the integer domain
// pick operates in. Targets below 1 clamp up (a cycle count cannot be
// fractional) and absurdly large ones clamp before the float→int
// conversion becomes platform-defined.
func targetOf(target float64) int64 {
	const maxTarget = int64(1) << 62
	if !(target >= 1) { // also catches NaN
		return 1
	}
	if target >= float64(maxTarget) {
		return maxTarget
	}
	return int64(target)
}

// pickTable is the piecewise-constant form of one layer's pick function:
// choices[k] is pick(t) for targets in [ts[k-1], ts[k]) with the implied
// ts[-1] = 1 and ts[len(ts)-1] extending to +∞. Adjacent equal segments
// are merged, so every boundary is a real decision change.
type pickTable struct {
	ts      []int64
	choices []int32
}

// pickEvent is one layer's decision boundary in the merged, t-sorted
// event list: for targets < t the layer picks before, at ≥ t it picks
// after. The walker applies events forward or backward as the target
// slides.
type pickEvent struct {
	t             int64
	layer         int32
	before, after int32
}

// minT returns the smallest t in [1, hi] satisfying the monotone
// predicate, or hi+1 if none does.
func minT(hi int64, pred func(int64) bool) int64 {
	lo := int64(1)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if pred(lo) {
		return lo
	}
	return hi + 1
}

// buildPickTable computes the exact piecewise-constant form of lc.pick.
//
// pick(t) can change value only where one of its ingredients changes:
//
//   - a candidate enters the ±25% window (t + t/4 reaches its cycles) or
//     leaves it (t − t/4 passes its cycles) — both thresholds are
//     monotone in t and found by binary search; window membership also
//     fixes maxUtil and the utilization-eligibility set;
//   - the nearest-candidate fallback switches between neighbours — at
//     the candidates' cycles values and the midpoints between
//     consecutive ones (integer absDiff comparisons flip there);
//   - the in-window tie-break by |cycles − t| flips between two
//     candidates with equal channel-tile counts — at the pair's
//     midpoint. Only pairs within a 2x cycles ratio can ever share a
//     window (the window spans at most [3t/4, 5t/4], a 5/3 ratio), so
//     wider pairs are pruned.
//
// The superset of those boundaries is enumerated, pick is evaluated once
// per segment, and equal neighbours are merged. The result is validated
// against direct pick evaluation by VerifyDelta and the fuzz tests.
func buildPickTable(lc layerCands) pickTable {
	c := lc.cands
	m := len(c)
	if m <= 1 {
		return pickTable{} // constant function, no boundaries
	}
	var bps []int64
	addBP := func(t int64) {
		if t >= 2 { // segment 0 starts at t = 1; boundaries below 2 are vacuous
			bps = append(bps, t)
		}
	}
	tiles := make([]int, m)
	for j := range c {
		tiles[j] = channelTiles(lc.layer, c[j].part.Cop)
	}
	for j := range c {
		cy := c[j].cycles
		// Window entry/exit thresholds.
		hi := cy + 1
		if hi < 1 {
			hi = 1
		}
		addBP(minT(hi, func(t int64) bool { return t+t/4 >= cy }))
		addBP(minT(2*cy+8, func(t int64) bool { return t-t/4 > cy }))
		// sort.Search / nearest boundaries.
		addBP(cy)
		addBP(cy + 1)
		if j > 0 {
			mid := (c[j-1].cycles + cy) / 2
			addBP(mid)
			addBP(mid + 1)
		}
		// Tie-break midpoints between window-compatible equal-tile pairs.
		for k := j + 1; k < m && c[k].cycles <= 2*cy; k++ {
			if tiles[k] != tiles[j] {
				continue
			}
			mid := (cy + c[k].cycles) / 2
			addBP(mid)
			addBP(mid + 1)
		}
	}
	slices.Sort(bps)
	bps = slices.Compact(bps)

	// Evaluate each segment once and merge equal neighbours.
	ts := make([]int64, 0, len(bps))
	choices := []int32{int32(lc.pick(1))}
	for _, t := range bps {
		ch := int32(lc.pick(t))
		if ch != choices[len(choices)-1] {
			ts = append(ts, t)
			choices = append(choices, ch)
		}
	}
	return pickTable{ts: ts, choices: choices}
}

// buildDeltaIndex precomputes every layer's pick table and flattens the
// boundaries into the search-wide sorted event list the walkers replay.
func (s *search) buildDeltaIndex() {
	tables := make([]pickTable, len(s.all))
	// A pick table is a pure function of the candidate list and the
	// layer's Co (via channelTiles), and shape-identical layers share one
	// cands slice (see newSearch) — so build one table per distinct slice,
	// keyed by its backing-array identity.
	type tableKey struct {
		c  *candidate
		co int
	}
	keys := make([]tableKey, len(s.all))
	uniq := make(map[tableKey]int, len(s.all))
	var uniqIdx []int
	for i := range s.all {
		lc := s.lcAt[i]
		if len(lc.cands) > 0 {
			keys[i] = tableKey{&lc.cands[0], lc.layer.Shape.Co}
		}
		if _, ok := uniq[keys[i]]; !ok {
			uniq[keys[i]] = i
			uniqIdx = append(uniqIdx, i)
		}
	}
	parallelFor(len(uniqIdx), func(j int) {
		i := uniqIdx[j]
		tables[i] = buildPickTable(s.lcAt[i])
	})
	for i := range s.all {
		if j := uniq[keys[i]]; j != i {
			tables[i] = tables[j]
		}
	}
	total := 0
	for _, tb := range tables {
		total += len(tb.ts)
	}
	events := make([]pickEvent, 0, total)
	for i, tb := range tables {
		for k, t := range tb.ts {
			events = append(events, pickEvent{t: t, layer: int32(i), before: tb.choices[k], after: tb.choices[k+1]})
		}
	}
	// Sort by boundary then layer: deterministic, and same-t events touch
	// distinct layers so their application order is immaterial.
	slices.SortFunc(events, func(a, b pickEvent) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		return int(a.layer - b.layer)
	})
	s.events = events
}

// walker slides a materialized argmin image along the unified-cycle
// target axis. Invariant: st equals s.argmin(float64(t)) — with
// bit-identical accumulators — and events[0..pos-1] are exactly the
// boundaries at or below t. moveTo costs O(boundaries crossed), so an SA
// move prices in O(changed layers) while a full rebuild would walk every
// layer's candidate list.
type walker struct {
	s   *search
	st  state
	t   int64
	pos int
}

// newWalker materializes the argmin image at the given target (one full
// from-scratch build; every subsequent move is incremental).
func (s *search) newWalker(target float64) *walker {
	t := targetOf(target)
	w := &walker{s: s, st: s.argmin(target), t: t}
	w.pos = sort.Search(len(s.events), func(i int) bool { return s.events[i].t > t })
	return w
}

// moveTo slides the image to a new target, applying only the pick
// boundaries crossed on the way.
func (w *walker) moveTo(target float64) {
	t := targetOf(target)
	s := w.s
	if t > w.t {
		for w.pos < len(s.events) && s.events[w.pos].t <= t {
			ev := s.events[w.pos]
			w.st.set(s, int(ev.layer), int(ev.after))
			w.pos++
		}
	} else if t < w.t {
		for w.pos > 0 && s.events[w.pos-1].t > t {
			ev := s.events[w.pos-1]
			w.st.set(s, int(ev.layer), int(ev.before))
			w.pos--
		}
	}
	w.t = t
}

// verifyDelta cross-checks a walker against the from-scratch reference:
// the argmin image rebuilt by direct pick evaluation must match the
// incrementally-maintained choices exactly, the rebuilt accumulators
// must be integer-identical, and the derived energies must agree to ulp
// scale. Any divergence is a bug in the delta machinery (a missed pick
// boundary, a drifted accumulator), never a legitimate outcome, so it
// panics. Enabled by Options.VerifyDelta; the verify-delta CI leg runs
// the whole zoo determinism matrix under it.
func (s *search) verifyDelta(w *walker, target float64) {
	ref := s.argmin(target)
	for i := range ref.choice {
		if ref.choice[i] != w.st.choice[i] {
			panic(fmt.Sprintf(
				"anneal: delta divergence at target %g: layer %d (id %d) picked %d incrementally, %d from scratch",
				target, i, s.all[i], w.st.choice[i], ref.choice[i]))
		}
	}
	if ref.acc != w.st.acc {
		panic(fmt.Sprintf(
			"anneal: accumulator divergence at target %g: incremental %+v, rebuilt %+v",
			target, w.st.acc, ref.acc))
	}
	// Identical accumulators imply identical derived floats; spell the
	// ulp-scale check out anyway so a future divergence reports energies.
	im, iv := w.st.acc.meanVariance()
	rm, rv := ref.acc.meanVariance()
	if !ulpClose(im, rm) || !ulpClose(iv, rv) {
		panic(fmt.Sprintf(
			"anneal: energy divergence at target %g: incremental (S=%v, E=%v), full (S=%v, E=%v)",
			target, im, iv, rm, rv))
	}
}

// ulpClose reports whether two float64s agree to ~ulp scale (relative
// 1e-12, matching a couple of rounding steps at double precision).
func ulpClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	return d <= 1e-12*m
}
