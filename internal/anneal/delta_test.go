package anneal

import (
	"math"
	"math/rand"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func testSearch(t testing.TB, model string) *search {
	t.Helper()
	g := models.MustBuild(model)
	return newSearch(g, engine.Default(), engine.KCPartition, Options{})
}

// TestAccumApplyRevert is the delta-machinery property test: a random
// sequence of set() calls — including reverts back to earlier choices —
// must leave the state's accumulators integer-identical to a from-scratch
// rebuild. Exactness, not approximation: accum is integer arithmetic, so
// any drift at all is a bug.
func TestAccumApplyRevert(t *testing.T) {
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell"} {
		t.Run(model, func(t *testing.T) {
			s := testSearch(t, model)
			rng := rand.New(rand.NewSource(11))
			st := s.randomState(rng)
			if got := s.accumOf(st); got != st.acc {
				t.Fatalf("randomState accum %+v != rebuilt %+v", st.acc, got)
			}
			// Interleave applies with exact reverts of the previous move.
			type move struct{ i, old int }
			var undo []move
			for step := 0; step < 2000; step++ {
				if len(undo) > 0 && rng.Intn(3) == 0 {
					m := undo[len(undo)-1]
					undo = undo[:len(undo)-1]
					st.set(s, m.i, m.old)
				} else {
					i := rng.Intn(len(s.all))
					undo = append(undo, move{i, st.choice[i]})
					st.set(s, i, rng.Intn(len(s.lcAt[i].cands)))
				}
				if step%97 == 0 {
					if got := s.accumOf(st); got != st.acc {
						t.Fatalf("step %d: incremental accum %+v != rebuilt %+v", step, st.acc, got)
					}
				}
			}
			// Unwind everything: the state must return to its exact origin.
			for len(undo) > 0 {
				m := undo[len(undo)-1]
				undo = undo[:len(undo)-1]
				st.set(s, m.i, m.old)
			}
			if got := s.accumOf(st); got != st.acc {
				t.Fatalf("after full unwind: incremental accum %+v != rebuilt %+v", st.acc, got)
			}
		})
	}
}

// TestAccumMeanVariance checks the 128-bit variance derivation against a
// widened two-pass float computation on adversarial cycle sets (huge,
// near-equal values whose naive E[x²]−mean² cancels catastrophically).
func TestAccumMeanVariance(t *testing.T) {
	cases := [][]int64{
		{},
		{5},
		{1, 1, 1, 1},
		{1, 2, 3, 4, 5},
		{1 << 39, 1<<39 + 1, 1<<39 + 2},
		{999999999999, 999999999998, 1000000000000},
	}
	for _, cycles := range cases {
		var a accum
		a.n = len(cycles)
		for _, c := range cycles {
			a.add(c)
		}
		mean, variance := a.meanVariance()
		var wantMean, wantVar float64
		if n := len(cycles); n > 0 {
			var sum float64
			for _, c := range cycles {
				sum += float64(c)
			}
			wantMean = sum / float64(n)
			for _, c := range cycles {
				d := float64(c) - wantMean
				wantVar += d * d
			}
			wantVar /= float64(n)
		}
		if !ulpClose(mean, wantMean) {
			t.Errorf("cycles %v: mean = %v, want %v", cycles, mean, wantMean)
		}
		// The two-pass float reference itself rounds, so allow a loose
		// relative tolerance; the exact-integer path is the ground truth.
		if d := variance - wantVar; math.Abs(d) > 1e-6*(wantVar+1) {
			t.Errorf("cycles %v: variance = %v, want ~%v", cycles, variance, wantVar)
		}
		if variance < 0 {
			t.Errorf("cycles %v: negative variance %v", cycles, variance)
		}
	}
}

// TestWalkerMatchesArgmin drives a walker through random target jumps —
// large and small, up and down, including sub-1 and enormous targets —
// and demands exact agreement with the from-scratch argmin at every stop.
func TestWalkerMatchesArgmin(t *testing.T) {
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell", "mobilenetv2"} {
		t.Run(model, func(t *testing.T) {
			s := testSearch(t, model)
			rng := rand.New(rand.NewSource(23))
			w := s.newWalker(100)
			s.verifyDelta(w, 100)
			for step := 0; step < 400; step++ {
				var target float64
				switch step % 4 {
				case 0: // local jitter, the SA-typical move
					target = float64(w.t) * (0.8 + 0.4*rng.Float64())
				case 1: // wide jump
					target = math.Exp(rng.Float64() * 20)
				case 2: // tiny / degenerate
					target = rng.Float64() * 2
				default: // exact integer boundaries
					target = float64(1 + rng.Int63n(1<<20))
				}
				w.moveTo(target)
				s.verifyDelta(w, target)
			}
		})
	}
}

// TestPickTableExhaustive sweeps every integer target in [1, 4·max
// cycles] for a small model and checks the table-driven segments against
// direct pick evaluation — no sampling, every boundary placement proven.
func TestPickTableExhaustive(t *testing.T) {
	s := testSearch(t, "tinyconv")
	for i := range s.all {
		lc := s.lcAt[i]
		if len(lc.cands) <= 1 {
			continue // constant pick, empty table by construction
		}
		tb := buildPickTable(lc)
		maxCy := lc.cands[len(lc.cands)-1].cycles
		for _, c := range lc.cands {
			if c.cycles > maxCy {
				maxCy = c.cycles
			}
		}
		hi := 4 * maxCy
		if hi > 1<<22 {
			hi = 1 << 22
		}
		seg := 0
		for target := int64(1); target <= hi; target++ {
			for seg < len(tb.ts) && tb.ts[seg] <= target {
				seg++
			}
			if got, want := int(tb.choices[seg]), lc.pick(target); got != want {
				t.Fatalf("layer %d target %d: table picks %d, pick() %d", s.all[i], target, got, want)
			}
		}
	}
}

// TestSAWithVerifyDelta runs full searches — single-chain, portfolio, and
// GA-slotted portfolio — under the cross-checking harness: every move of
// every chain is compared against a from-scratch recomputation.
func TestSAWithVerifyDelta(t *testing.T) {
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch"} {
		g := models.MustBuild(model)
		SA(g, engine.Default(), engine.KCPartition,
			Options{MaxIters: 150, Seed: 9, VerifyDelta: true})
		SA(g, engine.Default(), engine.KCPartition,
			Options{MaxIters: 150, Seed: 9, Chains: 3, VerifyDelta: true})
		SA(g, engine.Default(), engine.KCPartition,
			Options{MaxIters: 100, Seed: 9, Chains: 3, PortfolioGA: true, VerifyDelta: true})
	}
}

// TestVerifyDeltaNeutral: the harness must never change the trajectory.
func TestVerifyDeltaNeutral(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	plain := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 120, Seed: 4})
	checked := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 120, Seed: 4, VerifyDelta: true})
	if plain.FinalVar != checked.FinalVar || plain.MeanCycle != checked.MeanCycle || plain.Iters != checked.Iters {
		t.Errorf("VerifyDelta perturbed the search: %v/%v/%d vs %v/%v/%d",
			plain.FinalVar, plain.MeanCycle, plain.Iters,
			checked.FinalVar, checked.MeanCycle, checked.Iters)
	}
}

// FuzzMoveSequence feeds arbitrary byte strings as walker move sequences:
// each pair of bytes encodes one target jump (direction, magnitude). The
// walker must agree exactly with the from-scratch argmin after every jump
// and the accumulators must match a full rebuild.
func FuzzMoveSequence(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0xff, 0x80, 0x10, 0x42})
	f.Add([]byte{0xff, 0xff, 0x00, 0x00})
	f.Add([]byte{0x7f, 0x20, 0x9c, 0x03, 0xee, 0x51, 0x08})
	s := func() *search {
		g := models.MustBuild("tinybranch")
		return newSearch(g, engine.Default(), engine.KCPartition, Options{})
	}()
	f.Fuzz(func(t *testing.T, seq []byte) {
		w := s.newWalker(64)
		target := 64.0
		for i := 0; i+1 < len(seq); i += 2 {
			// Byte 0 scales a multiplicative step in [x1/8, x8); byte 1
			// adds jitter so boundaries land on odd offsets too.
			factor := math.Exp((float64(seq[i])/255*2 - 1) * math.Ln2 * 3)
			target = target*factor + float64(seq[i+1]) - 128
			w.moveTo(target)
			s.verifyDelta(w, target)
			if got := s.accumOf(w.st); got != w.st.acc {
				t.Fatalf("move %d (target %g): accum %+v != rebuilt %+v", i/2, target, w.st.acc, got)
			}
		}
	})
}
