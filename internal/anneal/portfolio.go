package anneal

import (
	"sync"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// This file is the parallel search portfolio: Options.Chains
// independently-seeded SA chains (optionally with the GA comparator in
// the last slot) run concurrently over one shared candidate space,
// exchange best states at deterministic iteration barriers, and reduce to
// a single winner.
//
// Determinism argument, in three parts:
//
//  1. Chain trajectories. Each chain owns a private RNG seeded by a pure
//     function of (Options.Seed, chain index), so between barriers its
//     path depends only on its seed and on the state it held when the
//     segment started — never on scheduling. parallelFor only changes
//     which OS thread executes a chain, not what the chain computes.
//  2. Barriers. Exchanges happen when every chain has finished the same
//     chain-local iteration count (a parallelFor join), and the exchange
//     itself runs sequentially on the caller: global best = lowest bestE
//     with ties broken by lowest chain index (float comparison, no map
//     iteration). What a chain resumes with is therefore a deterministic
//     function of all chains' deterministic segment results.
//  3. Reduction. The winner is again (lowest bestE, lowest index), and
//     the final polish sweep reduces its grid in index order.
//
// Together: a fixed (graph, hardware, Options.Seed, Options.Chains)
// tuple yields a bit-identical Result for any GOMAXPROCS or goroutine
// interleaving. Cancellation is the one sanctioned exception — it
// truncates chains mid-segment wherever they happen to be, exactly like
// single-chain SA returns its best-so-far.

// chainSeed derives chain i's RNG seed from the run seed. Chain 0 keeps
// the run seed itself so a one-chain portfolio is the classic trajectory;
// the rest take a splitmix64 stream (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"), whose finalizer decorrelates even
// consecutive run seeds into well-spread chain seeds.
func chainSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	x := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15 // golden-ratio gamma
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1 // keep the "0 means default" seed convention out of chains
	}
	return s
}

// gaMember is the genetic-algorithm portfolio slot: no exchangeable
// single-point state, so it runs start-to-finish concurrently with the
// SA segment loop and joins at the reduction.
type gaMember struct {
	idx     int
	best    state
	bestE   float64
	trace   []float64
	gens    int
	elapsed float64 // seconds
}

// portfolioSA is the Chains > 1 entry behind SA.
func portfolioSA(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options) Result {
	sctx := newSearch(g, cfg, df, opt)
	m := newSAMetrics(opt)
	K := opt.chains()

	// The iteration budget is the portfolio total: K chains of
	// ceil(MaxIters/K) iterations do ~MaxIters Metropolis steps combined,
	// so Chains trades nothing away on total work — it only spreads the
	// same budget over cores, with exchanges re-focusing strayed chains.
	perChain := (opt.maxIters() + K - 1) / K

	nSA := K
	var ga *gaMember
	if opt.PortfolioGA {
		nSA = K - 1
		ga = &gaMember{idx: K - 1}
	}

	chains := make([]*saChain, nSA)
	for i := range chains {
		chains[i] = newChain(i, chainSeed(opt.seed(), i), sctx, opt)
	}

	// Launch the GA member (if any) alongside the whole segment loop.
	var gaWG sync.WaitGroup
	if ga != nil {
		gaWG.Add(1)
		go func() {
			defer gaWG.Done()
			start := time.Now()
			gopt := GAOptions{Options: opt}
			gopt.MaxIters = perChain
			ga.best, ga.bestE, ga.trace, ga.gens = runGA(sctx, gopt, chainSeed(opt.seed(), ga.idx))
			ga.elapsed = time.Since(start).Seconds()
		}()
	}

	exchanges := int64(0)
	for done := 0; done < perChain; {
		n := opt.exchangeEvery()
		if done+n > perChain {
			n = perChain - done
		}
		parallelFor(len(chains), func(i int) {
			if !chains[i].converged {
				chains[i].run(sctx, opt, n, m)
			}
		})
		done += n
		if opt.cancelled() || done >= perChain {
			break
		}
		anyConverged := false
		for _, c := range chains {
			if c.converged {
				anyConverged = true
			}
		}
		if anyConverged {
			// One chain hit the epsilon target: the portfolio is done
			// (deterministic — convergence is a property of the segment
			// results, inspected only at the barrier).
			break
		}
		// Exchange barrier: chains whose current energy trails the global
		// best adopt it (parallel-tempering style greedy restart). Their
		// RNGs are untouched, so the next segment stays seeded.
		gb := 0
		for i := 1; i < len(chains); i++ {
			if chains[i].bestE < chains[gb].bestE {
				gb = i
			}
		}
		adopted := make([]bool, len(chains))
		for i, c := range chains {
			if c.idx == chains[gb].idx || chains[gb].bestE >= c.E {
				continue
			}
			// Adoption only moves the scalars: the chain's next proposal is
			// the argmin image of a target drawn around the adopted S, which
			// the walker reaches incrementally from wherever it stands.
			c.E, c.S = chains[gb].bestE, chains[gb].bestS
			c.lenAbs = c.S * opt.lenFrac()
			if c.E < c.bestE {
				c.best, c.bestE, c.bestS = cloneState(chains[gb].best), c.E, c.S
			}
			c.adoptions++
			adopted[i] = true
			exchanges++
		}
		if opt.Progress != nil {
			// The barrier runs sequentially on this goroutine, so sampling
			// here reads settled chain state; the hook only observes.
			samples := make([]Sample, len(chains))
			for i, c := range chains {
				samples[i] = c.sample(adopted[i])
			}
			opt.Progress(samples)
		}
	}
	gaWG.Wait()

	// Deterministic reduction: lowest best energy wins, ties broken by
	// chain index (the GA member holds the highest index).
	win := chains[0]
	for _, c := range chains[1:] {
		if c.bestE < win.bestE {
			win = c
		}
	}
	best, bestE, bestS := win.best, win.bestE, win.bestS
	trace, iters, temp := win.trace, win.iters, win.temp
	if ga != nil && ga.bestE < bestE {
		best, bestE, bestS = ga.best, ga.bestE, ga.best.acc.mean()
		trace, iters, temp = ga.trace, ga.gens, 0
	}

	best = sctx.refine(best, bestS)
	best, bestE, bestS = sctx.polish(opt, best, bestE, bestS)
	if n := len(trace); n > 0 && bestE < trace[n-1] {
		trace = append(trace, bestE)
	}
	if opt.Progress != nil {
		// Final batch: every member's closing state, with the winner's
		// post-polish energy on the winning slot.
		fin := make([]Sample, 0, K)
		for _, c := range chains {
			s := c.sample(false)
			s.Final = true
			if c == win && (ga == nil || ga.bestE >= c.bestE) {
				s.BestE, s.BestS = bestE, bestS
			}
			fin = append(fin, s)
		}
		if ga != nil {
			s := Sample{Chain: ga.idx, Iters: ga.gens, BestE: ga.bestE, BestS: ga.best.acc.mean(), Final: true}
			if ga.bestE < win.bestE {
				s.BestE, s.BestS = bestE, bestS
			}
			fin = append(fin, s)
		}
		opt.Progress(fin)
	}

	// Per-chain observability: accept/reject split, barrier adoptions and
	// wall time per portfolio member, plus portfolio-level aggregates.
	// Flushed once here — the hot loop only touches chain-local fields.
	if opt.Metrics != nil {
		reg := opt.Metrics
		reg.Gauge("anneal_chains").SetInt(int64(K))
		reg.Counter("anneal_exchanges_total").Add(exchanges)
		for _, c := range chains {
			reg.Counter(obs.Name("anneal_chain_accepts_total", "chain", c.idx)).Add(c.accepts)
			reg.Counter(obs.Name("anneal_chain_rejects_total", "chain", c.idx)).Add(c.rejects)
			reg.Counter(obs.Name("anneal_chain_exchanges_total", "chain", c.idx)).Add(c.adoptions)
			reg.Gauge(obs.Name("anneal_chain_seconds", "chain", c.idx)).Set(c.elapsed.Seconds())
		}
		if ga != nil {
			reg.Gauge(obs.Name("anneal_chain_seconds", "chain", ga.idx)).Set(ga.elapsed)
			reg.Counter(obs.Name("anneal_chain_generations_total", "chain", ga.idx)).Add(int64(ga.gens))
		}
	}
	m.tempFinal.Set(temp)
	res := sctx.finish(best, bestE, bestS, trace, iters)
	m.finalCV.Set(res.FinalCV)
	return res
}
