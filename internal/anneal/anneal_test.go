package anneal

import (
	"math"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func TestSplitSizes(t *testing.T) {
	sizes := splitSizes(64, 16, 10)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	for _, s := range sizes {
		if s < 1 || s > 64 {
			t.Errorf("size %d out of range", s)
		}
		if s != 64 && s%16 != 0 {
			t.Errorf("size %d not a multiple of 16", s)
		}
	}
	// Coarsest candidate must be the whole dimension.
	if sizes[0] != 64 {
		t.Errorf("coarsest = %d, want 64", sizes[0])
	}
}

func TestSplitSizesCap(t *testing.T) {
	sizes := splitSizes(224, 1, 8)
	if len(sizes) > 8 {
		t.Errorf("got %d sizes, cap is 8", len(sizes))
	}
	// Finest candidates retained.
	hasFine := false
	for _, s := range sizes {
		if s <= 2 {
			hasFine = true
		}
	}
	if !hasFine {
		t.Errorf("finest sizes dropped: %v", sizes)
	}
}

func TestGenCandidatesQuantization(t *testing.T) {
	g := models.TinyConv()
	l := g.Layer(3) // 16x16x32 conv
	cfg := engine.Default()
	cands := genCandidates(l, cfg, engine.KCPartition, Options{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.part.Cop != l.Shape.Co && c.part.Cop%cfg.PEy != 0 {
			t.Errorf("KC-P candidate Cop=%d not quantized to PEy", c.part.Cop)
		}
	}
	// Sorted ascending by cycles.
	for i := 1; i < len(cands); i++ {
		if cands[i].cycles < cands[i-1].cycles {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestGenCandidatesBufferConstraint(t *testing.T) {
	g := models.MustBuild("vgg19")
	// fc1 weights (25088x4096) cannot fit a 128 KB buffer whole; every
	// candidate's working set must respect the budget or be the fallback.
	var fc *graph.Layer
	for _, l := range g.Layers {
		if l.Kind == graph.OpFC && l.Shape.Ci > 20000 {
			fc = l
		}
	}
	if fc == nil {
		t.Fatal("no big FC found")
	}
	cfg := engine.Default()
	opt := Options{}
	budget := int64(float64(cfg.BufferBytes) * opt.bufferFraction())
	window := int64(4 * cfg.PEx * cfg.PEy * fc.Shape.Kh * fc.Shape.Kw)
	cands := genCandidates(fc, cfg, engine.KCPartition, opt)
	for _, c := range cands {
		tk := engine.Task{Kind: fc.Kind, Hp: c.part.Hp, Wp: c.part.Wp,
			Ci: fc.Shape.Ci, Cop: c.part.Cop, Kh: 1, Kw: 1, Stride: 1}
		// Weights and input channels stream: only double-buffered
		// windows must reside.
		w := tk.WeightBytes()
		if w > window {
			w = window
		}
		if inputWindow(tk)+tk.OutputBytes()+w > budget && len(cands) > 1 {
			t.Errorf("candidate %+v streaming working set exceeds budget %d", c.part, budget)
		}
	}
}

func TestPickNearest(t *testing.T) {
	lc := layerCands{cands: []candidate{
		{cycles: 10}, {cycles: 100}, {cycles: 1000},
	}}
	cases := []struct {
		target int64
		want   int
	}{{1, 0}, {10, 0}, {54, 0}, {56, 1}, {400, 1}, {999, 2}, {5000, 2}}
	for _, c := range cases {
		if got := lc.pick(c.target); got != c.want {
			t.Errorf("pick(%d) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestSAReducesVariance(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	res := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 200, Seed: 7})
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	first, last := res.Trace[0], res.Trace[len(res.Trace)-1]
	if last > first {
		t.Errorf("best-energy trace rose: %v -> %v", first, last)
	}
	// Trace of best energy must be non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-9 {
			t.Fatalf("best-energy trace not monotone at %d", i)
		}
	}
	if res.MeanCycle <= 0 {
		t.Errorf("MeanCycle = %v", res.MeanCycle)
	}
}

func TestSACoversAllLayers(t *testing.T) {
	g := models.MustBuild("tinybranch")
	res := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 50})
	for _, l := range g.Layers {
		switch l.Kind {
		case graph.OpInput, graph.OpConcat:
			if _, ok := res.Spec[l.ID]; ok {
				t.Errorf("spec contains %v layer %s", l.Kind, l.Name)
			}
		default:
			if _, ok := res.Spec[l.ID]; !ok {
				t.Errorf("spec missing layer %s (%v)", l.Name, l.Kind)
			}
		}
	}
	// Result spec must produce a valid DAG.
	if _, err := atom.Build(g, 2, res.Spec); err != nil {
		t.Errorf("Build with SA spec: %v", err)
	}
}

func TestSACyclesConcentrate(t *testing.T) {
	// On a real workload the post-SA coefficient of variation must be
	// well below the trivial whole-layer partition's (Fig. 5a: cycles
	// concentrate in one region).
	g := models.MustBuild("resnet50")
	cfg := engine.Default()
	res := SA(g, cfg, engine.KCPartition, Options{MaxIters: 300, Seed: 3})

	// Whole-layer CV for comparison.
	var cycles []float64
	for _, lid := range g.ComputeLayers() {
		c := engine.Evaluate(cfg, engine.KCPartition, engine.TaskFromLayer(g.Layer(lid)))
		cycles = append(cycles, float64(c.Cycles))
	}
	mean, varr := meanVar(cycles)
	wholeCV := math.Sqrt(varr) / mean

	// The discrete candidate grid floors the CV around 0.25-0.3 on
	// ResNet-50 (matching the visible spread of the paper's Fig. 5a
	// histograms); require a solid improvement over whole layers.
	if res.FinalCV >= 0.35 || res.FinalCV >= wholeCV/2 {
		t.Errorf("SA CV = %.3f, want < 0.35 and < %.3f (whole-layer CV/2)",
			res.FinalCV, wholeCV/2)
	}
}

func TestSADeterministicForSeed(t *testing.T) {
	g := models.MustBuild("tinyconv")
	a := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	b := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	if a.FinalVar != b.FinalVar || a.Iters != b.Iters {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", a.FinalVar, a.Iters, b.FinalVar, b.Iters)
	}
	for lid, p := range a.Spec {
		if b.Spec[lid] != p {
			t.Errorf("layer %d spec differs: %+v vs %+v", lid, p, b.Spec[lid])
		}
	}
}

func TestGAConvergesButSlower(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	sa := SA(g, cfg, engine.KCPartition, Options{MaxIters: 150, Seed: 5})
	ga := GA(g, cfg, engine.KCPartition, GAOptions{Options: Options{MaxIters: 150, Seed: 5}})
	if len(ga.Trace) == 0 {
		t.Fatal("GA produced no trace")
	}
	// Both must produce usable specs.
	for _, res := range []Result{sa, ga} {
		if _, err := atom.Build(g, 1, res.Spec); err != nil {
			t.Errorf("Build: %v", err)
		}
	}
	// Paper's Fig 5b: SA stops at lower variance. Allow equality for the
	// tiny test workload.
	if sa.FinalVar > ga.FinalVar*1.5+1 {
		t.Errorf("SA final var %.1f much worse than GA %.1f", sa.FinalVar, ga.FinalVar)
	}
}

func TestSAUnderFlexDataflow(t *testing.T) {
	// The Discussion adaptation: SA over the 3D-array quantization must
	// produce a valid spec whose width extents are PEz multiples (or the
	// full dimension).
	g := models.MustBuild("tinyconv")
	cfg := engine.FlexDefault()
	res := SA(g, cfg, engine.FlexPartition, Options{MaxIters: 80})
	for lid, p := range res.Spec {
		l := g.Layer(lid)
		if !l.Kind.IsCompute() {
			continue
		}
		if p.Wp != l.Shape.Wo && p.Wp%cfg.PEzOf() != 0 {
			t.Errorf("layer %s Wp=%d not quantized to PEz=%d", l.Name, p.Wp, cfg.PEzOf())
		}
	}
	if _, err := atom.Build(g, 1, res.Spec); err != nil {
		t.Errorf("Build: %v", err)
	}
}

func TestVectorPartitionBounds(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	var add *graph.Layer
	for _, l := range g.Layers {
		if l.Kind == graph.OpEltwise {
			add = l
		}
	}
	p := vectorPartition(add, cfg, 100, 1024)
	if p.Hp < 1 || p.Wp < 1 || p.Cop < 1 {
		t.Errorf("invalid vector partition %+v", p)
	}
	if err := p.Validate(add); err != nil {
		t.Error(err)
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return
}
