package anneal

import (
	"math"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

func TestSplitSizes(t *testing.T) {
	sizes := splitSizes(64, 16, 10)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	for _, s := range sizes {
		if s < 1 || s > 64 {
			t.Errorf("size %d out of range", s)
		}
		if s != 64 && s%16 != 0 {
			t.Errorf("size %d not a multiple of 16", s)
		}
	}
	// Coarsest candidate must be the whole dimension.
	if sizes[0] != 64 {
		t.Errorf("coarsest = %d, want 64", sizes[0])
	}
}

func TestSplitSizesCap(t *testing.T) {
	sizes := splitSizes(224, 1, 8)
	if len(sizes) > 8 {
		t.Errorf("got %d sizes, cap is 8", len(sizes))
	}
	// Finest candidates retained.
	hasFine := false
	for _, s := range sizes {
		if s <= 2 {
			hasFine = true
		}
	}
	if !hasFine {
		t.Errorf("finest sizes dropped: %v", sizes)
	}
}

func TestGenCandidatesQuantization(t *testing.T) {
	g := models.TinyConv()
	l := g.Layer(3) // 16x16x32 conv
	cfg := engine.Default()
	cands, _ := genCandidates(l, cfg, engine.KCPartition, Options{}, cost.Direct{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.part.Cop != l.Shape.Co && c.part.Cop%cfg.PEy != 0 {
			t.Errorf("KC-P candidate Cop=%d not quantized to PEy", c.part.Cop)
		}
	}
	// Sorted ascending by cycles.
	for i := 1; i < len(cands); i++ {
		if cands[i].cycles < cands[i-1].cycles {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestGenCandidatesBufferConstraint(t *testing.T) {
	g := models.MustBuild("vgg19")
	// fc1 weights (25088x4096) cannot fit a 128 KB buffer whole; every
	// candidate's working set must respect the budget or be the fallback.
	var fc *graph.Layer
	for _, l := range g.Layers {
		if l.Kind == graph.OpFC && l.Shape.Ci > 20000 {
			fc = l
		}
	}
	if fc == nil {
		t.Fatal("no big FC found")
	}
	cfg := engine.Default()
	opt := Options{}
	budget := int64(float64(cfg.BufferBytes) * opt.bufferFraction())
	window := int64(4 * cfg.PEx * cfg.PEy * fc.Shape.Kh * fc.Shape.Kw)
	cands, _ := genCandidates(fc, cfg, engine.KCPartition, opt, cost.Direct{})
	for _, c := range cands {
		tk := engine.Task{Kind: fc.Kind, Hp: c.part.Hp, Wp: c.part.Wp,
			Ci: fc.Shape.Ci, Cop: c.part.Cop, Kh: 1, Kw: 1, Stride: 1}
		// Weights and input channels stream: only double-buffered
		// windows must reside.
		w := tk.WeightBytes()
		if w > window {
			w = window
		}
		if inputWindow(tk)+tk.OutputBytes()+w > budget && len(cands) > 1 {
			t.Errorf("candidate %+v streaming working set exceeds budget %d", c.part, budget)
		}
	}
}

func TestPickNearest(t *testing.T) {
	lc := layerCands{cands: []candidate{
		{cycles: 10}, {cycles: 100}, {cycles: 1000},
	}}
	cases := []struct {
		target int64
		want   int
	}{{1, 0}, {10, 0}, {54, 0}, {56, 1}, {400, 1}, {999, 2}, {5000, 2}}
	for _, c := range cases {
		if got := lc.pick(c.target); got != c.want {
			t.Errorf("pick(%d) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestSAReducesVariance(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	res := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 200, Seed: 7})
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	first, last := res.Trace[0], res.Trace[len(res.Trace)-1]
	if last > first {
		t.Errorf("best-energy trace rose: %v -> %v", first, last)
	}
	// Trace of best energy must be non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-9 {
			t.Fatalf("best-energy trace not monotone at %d", i)
		}
	}
	if res.MeanCycle <= 0 {
		t.Errorf("MeanCycle = %v", res.MeanCycle)
	}
}

func TestSACoversAllLayers(t *testing.T) {
	g := models.MustBuild("tinybranch")
	res := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 50})
	for _, l := range g.Layers {
		switch l.Kind {
		case graph.OpInput, graph.OpConcat:
			if _, ok := res.Spec[l.ID]; ok {
				t.Errorf("spec contains %v layer %s", l.Kind, l.Name)
			}
		default:
			if _, ok := res.Spec[l.ID]; !ok {
				t.Errorf("spec missing layer %s (%v)", l.Name, l.Kind)
			}
		}
	}
	// Result spec must produce a valid DAG.
	if _, err := atom.Build(g, 2, res.Spec); err != nil {
		t.Errorf("Build with SA spec: %v", err)
	}
}

func TestSACyclesConcentrate(t *testing.T) {
	// On a real workload the post-SA coefficient of variation must be
	// well below the trivial whole-layer partition's (Fig. 5a: cycles
	// concentrate in one region).
	g := models.MustBuild("resnet50")
	cfg := engine.Default()
	res := SA(g, cfg, engine.KCPartition, Options{MaxIters: 300, Seed: 3})

	// Whole-layer CV for comparison.
	var cycles []float64
	for _, lid := range g.ComputeLayers() {
		c := engine.Evaluate(cfg, engine.KCPartition, engine.TaskFromLayer(g.Layer(lid)))
		cycles = append(cycles, float64(c.Cycles))
	}
	mean, varr := meanVar(cycles)
	wholeCV := math.Sqrt(varr) / mean

	// The discrete candidate grid floors the CV around 0.25-0.3 on
	// ResNet-50 (matching the visible spread of the paper's Fig. 5a
	// histograms); require a solid improvement over whole layers.
	if res.FinalCV >= 0.35 || res.FinalCV >= wholeCV/2 {
		t.Errorf("SA CV = %.3f, want < 0.35 and < %.3f (whole-layer CV/2)",
			res.FinalCV, wholeCV/2)
	}
}

func TestSADeterministicForSeed(t *testing.T) {
	g := models.MustBuild("tinyconv")
	a := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	b := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	if a.FinalVar != b.FinalVar || a.Iters != b.Iters {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", a.FinalVar, a.Iters, b.FinalVar, b.Iters)
	}
	for lid, p := range a.Spec {
		if b.Spec[lid] != p {
			t.Errorf("layer %d spec differs: %+v vs %+v", lid, p, b.Spec[lid])
		}
	}
}

func TestGAConvergesButSlower(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	sa := SA(g, cfg, engine.KCPartition, Options{MaxIters: 150, Seed: 5})
	ga := GA(g, cfg, engine.KCPartition, GAOptions{Options: Options{MaxIters: 150, Seed: 5}})
	if len(ga.Trace) == 0 {
		t.Fatal("GA produced no trace")
	}
	// Both must produce usable specs.
	for _, res := range []Result{sa, ga} {
		if _, err := atom.Build(g, 1, res.Spec); err != nil {
			t.Errorf("Build: %v", err)
		}
	}
	// Paper's Fig 5b: SA stops at lower variance. Allow equality for the
	// tiny test workload.
	if sa.FinalVar > ga.FinalVar*1.5+1 {
		t.Errorf("SA final var %.1f much worse than GA %.1f", sa.FinalVar, ga.FinalVar)
	}
}

func TestSAUnderFlexDataflow(t *testing.T) {
	// The Discussion adaptation: SA over the 3D-array quantization must
	// produce a valid spec whose width extents are PEz multiples (or the
	// full dimension).
	g := models.MustBuild("tinyconv")
	cfg := engine.FlexDefault()
	res := SA(g, cfg, engine.FlexPartition, Options{MaxIters: 80})
	for lid, p := range res.Spec {
		l := g.Layer(lid)
		if !l.Kind.IsCompute() {
			continue
		}
		if p.Wp != l.Shape.Wo && p.Wp%cfg.PEzOf() != 0 {
			t.Errorf("layer %s Wp=%d not quantized to PEz=%d", l.Name, p.Wp, cfg.PEzOf())
		}
	}
	if _, err := atom.Build(g, 1, res.Spec); err != nil {
		t.Errorf("Build: %v", err)
	}
}

func TestVectorPartitionBounds(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	var add *graph.Layer
	for _, l := range g.Layers {
		if l.Kind == graph.OpEltwise {
			add = l
		}
	}
	p := vectorPartition(add, cfg, 100, 1024, cost.Direct{})
	if p.Hp < 1 || p.Wp < 1 || p.Cop < 1 {
		t.Errorf("invalid vector partition %+v", p)
	}
	if err := p.Validate(add); err != nil {
		t.Error(err)
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return
}

func TestOptionsDefaults(t *testing.T) {
	// The zero Options must resolve to the documented defaults. Temp in
	// particular is pinned: raising it to the often-assumed 1.0 would
	// change every seeded SA trajectory in the repository.
	var o Options
	if got := o.temp(); got != 0.1 {
		t.Errorf("temp() = %v, want 0.1", got)
	}
	if got := o.maxIters(); got != 600 {
		t.Errorf("maxIters() = %v, want 600", got)
	}
	if got := o.lenFrac(); got != 0.25 {
		t.Errorf("lenFrac() = %v, want 0.25", got)
	}
	if got := o.epsilon(); got != 0.01 {
		t.Errorf("epsilon() = %v, want 0.01", got)
	}
	if got := o.lambda(); got != 0.98 {
		t.Errorf("lambda() = %v, want 0.98", got)
	}
	if got := o.seed(); got != 1 {
		t.Errorf("seed() = %v, want 1", got)
	}
	if got := o.maxTiles(); got != 1024 {
		t.Errorf("maxTiles() = %v, want 1024", got)
	}
	if got := o.maxSplits(); got != 10 {
		t.Errorf("maxSplits() = %v, want 10", got)
	}
	if got := o.bufferFraction(); got != 0.5 {
		t.Errorf("bufferFraction() = %v, want 0.5", got)
	}
}

func TestSADeterministicAcrossOracles(t *testing.T) {
	// Memoization must be invisible to the search: the same seed yields
	// bit-identical results whether atoms are priced directly, through a
	// fresh memo (the nil default), or through the full instrumented
	// stack. Run with -race this also exercises the parallel candidate
	// generation against each oracle kind.
	g := models.MustBuild("tinyresnet")
	cfg := engine.Default()
	base := Options{MaxIters: 120, Seed: 42}

	oracles := map[string]cost.Oracle{
		"nil":          nil,
		"direct":       cost.Direct{},
		"memo":         cost.NewMemo(cost.Direct{}),
		"instrumented": cost.Default(),
	}
	var want *Result
	for name, orc := range oracles {
		opt := base
		opt.Oracle = orc
		res := SA(g, cfg, engine.KCPartition, opt)
		if want == nil {
			w := res
			want = &w
			continue
		}
		if res.FinalVar != want.FinalVar || res.Iters != want.Iters ||
			res.MeanCycle != want.MeanCycle || res.FinalCV != want.FinalCV {
			t.Errorf("%s oracle diverged: Var %v/%v iters %d/%d",
				name, res.FinalVar, want.FinalVar, res.Iters, want.Iters)
		}
		if len(res.Trace) != len(want.Trace) {
			t.Fatalf("%s oracle trace length %d, want %d", name, len(res.Trace), len(want.Trace))
		}
		for i := range res.Trace {
			if res.Trace[i] != want.Trace[i] {
				t.Fatalf("%s oracle trace[%d] = %v, want %v", name, i, res.Trace[i], want.Trace[i])
			}
		}
		for lid, p := range want.Spec {
			if res.Spec[lid] != p {
				t.Errorf("%s oracle layer %d spec %+v, want %+v", name, lid, res.Spec[lid], p)
			}
		}
	}
}

func TestSAOracleHitRate(t *testing.T) {
	// Candidate generation dedupes shape-identical layers before touching
	// the oracle, so a single search mostly issues distinct tasks — but a
	// second search of the same workload through the same memo must be
	// served (almost) entirely from cache: that is what sharing the run's
	// oracle across anneal/schedule/sim buys.
	g := models.MustBuild("resnet50")
	orc := cost.NewMemo(cost.Direct{})
	SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 300, Seed: 1, Oracle: orc})
	first := orc.Stats()
	if first.Evaluations == 0 {
		t.Fatal("oracle saw no evaluations")
	}
	SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 300, Seed: 1, Oracle: orc})
	second := orc.Stats().Sub(first)
	if second.Evaluations == 0 {
		t.Fatal("second search bypassed the oracle")
	}
	if hr := second.HitRate(); hr <= 0.99 {
		t.Errorf("repeat-search hit rate %.1f%% on resnet50, want > 99%%", 100*hr)
	}
}

func TestSAMetrics(t *testing.T) {
	g := models.MustBuild("tinyconv")
	reg := obs.New()
	res := SA(g, engine.Default(), engine.KCPartition,
		Options{MaxIters: 100, Seed: 42, Metrics: reg})
	snap := reg.Snapshot()
	iters := snap.Counter("anneal_iterations_total")
	if iters != int64(res.Iters) {
		t.Errorf("anneal_iterations_total = %d, want %d", iters, res.Iters)
	}
	if got := snap.Counter("anneal_accepts_total") + snap.Counter("anneal_rejects_total"); got != iters {
		t.Errorf("accepts+rejects = %d, want %d", got, iters)
	}
	if snap.Histograms["anneal_temperature"].Count != iters {
		t.Errorf("temperature trajectory has %d points, want %d",
			snap.Histograms["anneal_temperature"].Count, iters)
	}
	if snap.Gauge("anneal_temperature_final") <= 0 {
		t.Error("final temperature not recorded")
	}

	// Instrumentation must not perturb the seeded trajectory.
	plain := SA(g, engine.Default(), engine.KCPartition, Options{MaxIters: 100, Seed: 42})
	if plain.FinalVar != res.FinalVar || plain.Iters != res.Iters {
		t.Errorf("metrics changed the search: %v/%d vs %v/%d",
			plain.FinalVar, plain.Iters, res.FinalVar, res.Iters)
	}
}
