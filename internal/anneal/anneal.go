package anneal

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/cost/surrogate"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// Options tunes Algorithm 1. Zero values select the defaults noted on
// each field.
type Options struct {
	MaxIters       int     // ite_max (default 600)
	Len            float64 // movement length as a fraction of the state (default 0.25)
	Epsilon        float64 // convergence threshold on CV^2 = Var/Mean^2 (default 0.01)
	Temp           float64 // initial temperature (default 0.1)
	Lambda         float64 // temperature decay per iteration (default 0.98)
	Seed           int64   // RNG seed (default 1)
	MaxTilesPerLay int     // atom-count cap per layer (default 1024)
	MaxSplits      int     // candidate extents per dimension (default 10)
	BufferFraction float64 // usable fraction of the engine buffer (default 0.5, rest for double buffering)

	// Oracle prices candidate atoms (default: a fresh memoized oracle per
	// search). Pass the run's shared oracle so candidate generation reuses
	// evaluations cached by scheduling and simulation of the same workload.
	Oracle cost.Oracle

	// Metrics, when non-nil, receives the search's accept/reject
	// counters, temperature trajectory and accepted energy deltas (see
	// internal/obs). The nil default costs nothing.
	Metrics *obs.Registry

	// Ctx, when non-nil, lets callers abandon the search: SA polls it
	// each iteration and returns the best state found so far as soon as
	// it is cancelled. Cancellation only truncates the search — an
	// uncancelled context never perturbs the seeded trajectory.
	Ctx context.Context

	// Chains is the width of the search portfolio (default 1). With
	// Chains > 1 the iteration budget MaxIters is split across that many
	// concurrently-run, independently-seeded SA chains (seeds derived
	// from Seed via splitmix64) that exchange best states at
	// deterministic iteration barriers — total Metropolis work stays
	// ~MaxIters while the wall-clock drops with available cores. The
	// result is bit-identical for a fixed (Seed, Chains) pair regardless
	// of GOMAXPROCS; Chains <= 1 is exactly the classic single-chain
	// Algorithm 1 trajectory.
	Chains int

	// ExchangeEvery is the chain-local iteration count between the
	// portfolio's best-state exchange barriers (default 50). Only
	// meaningful with Chains > 1.
	ExchangeEvery int

	// PortfolioGA, when true and Chains > 1, devotes the last portfolio
	// slot to the genetic-algorithm comparator instead of an SA chain.
	// The GA member runs its own generational trajectory (it has no
	// single-point state to exchange) and competes only in the final
	// reduction.
	PortfolioGA bool

	// Surrogate, when non-nil, enables the two-tier cost oracle: candidate
	// generation scores every enumerated partition with the learned model
	// and spends exact Evaluate calls only on the survivors (plus an
	// exploration floor), and a post-search refinement pass re-admits
	// deferred partitions predicted near the final unified cycle,
	// exact-evaluating them then. Accepted states and final schedules are
	// always priced from exactly-evaluated candidates — no surrogate
	// number ever reaches a Result.
	//
	// Determinism contract: nil (the default) leaves every code path
	// untouched, so results are bit-identical to builds without the
	// surrogate. A fresh model still yields a deterministic search for a
	// fixed (graph, hardware, Options) tuple — candidate generation runs
	// sequentially in first-occurrence layer order when a surrogate is
	// installed, so the training stream and every filter decision are
	// scheduling-independent. A model shared across solves is
	// history-dependent: what it learned earlier changes which candidates
	// later solves evaluate (cycles stay exact either way).
	Surrogate *surrogate.Model

	// WarmStart, when non-empty, seeds the search from a prior solution
	// of the same graph: chain 0's initial state takes each listed
	// layer's nearest surviving candidate instead of a random draw (the
	// remaining chains keep their seeded random starts, preserving
	// exploration), and candidate enumeration is pruned to a window
	// around the listed partitions — plus an exploration floor — so the
	// exact cost oracle prices far fewer partitions. Deterministic: the
	// map is just more input to the (graph, hardware, Options) tuple.
	// Empty (the default) leaves every code path untouched, so all
	// pinned digests are unaffected. Keys are graph layer IDs; entries
	// for unknown layers are ignored.
	WarmStart map[int]atom.Partition

	// VerifyDelta cross-checks every incrementally-scored move against a
	// from-scratch recomputation (full argmin rebuild + exact accumulator
	// rebuild) and panics on any divergence — see (*search).verifyDelta.
	// It is a correctness harness for the O(Δ) move-evaluation machinery,
	// run by a dedicated CI leg over the whole zoo; it never changes the
	// search trajectory, only its cost.
	VerifyDelta bool

	// Progress, when non-nil, receives one Sample per portfolio chain at
	// every ExchangeEvery iteration barrier, plus a final batch (Final
	// set) after the polish sweep. The hook runs on the coordinating
	// goroutine between chain segments — never concurrently with chain
	// execution — and only observes: chain RNGs and states are untouched
	// while it runs, so installing it leaves every trajectory (and every
	// pinned digest) bit-identical. Single-chain searches are segmented
	// into ExchangeEvery-sized runs to create the observation points; the
	// segmentation itself is invisible because the Metropolis loop is a
	// pure per-iteration recurrence. Keep the hook cheap — the whole
	// search blocks while it executes.
	Progress func([]Sample)
}

// Sample is one per-chain observation of search progress, delivered
// through Options.Progress. Energies are the raw cycle variance the
// search minimizes; CV converts to the paper's scale-free load-balance
// metric.
type Sample struct {
	Chain     int     // portfolio slot index (0 for single-chain SA)
	Iters     int     // chain-local Metropolis iterations executed so far
	Temp      float64 // current temperature (0 for the GA slot)
	BestE     float64 // best energy (cycle variance) this chain has seen
	BestS     float64 // unified cycle of that best state
	Adopted   bool    // chain adopted the global best at this barrier
	Converged bool    // chain hit the epsilon target
	Final     bool    // emitted once, after the polish sweep
}

// CV returns the sample's coefficient of variation sqrt(BestE)/BestS
// (0 when BestS is 0).
func (s Sample) CV() float64 {
	if s.BestS <= 0 {
		return 0
	}
	return math.Sqrt(s.BestE) / s.BestS
}

func (o Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 600
	}
	return o.MaxIters
}
func (o Options) lenFrac() float64 {
	if o.Len <= 0 {
		return 0.25
	}
	return o.Len
}
func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.01
	}
	return o.Epsilon
}
func (o Options) temp() float64 {
	if o.Temp <= 0 {
		return 0.1
	}
	return o.Temp
}
func (o Options) lambda() float64 {
	if o.Lambda <= 0 || o.Lambda >= 1 {
		return 0.98
	}
	return o.Lambda
}
func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}
func (o Options) maxTiles() int {
	if o.MaxTilesPerLay <= 0 {
		return 1024
	}
	return o.MaxTilesPerLay
}
func (o Options) maxSplits() int {
	if o.MaxSplits <= 2 {
		return 10
	}
	return o.MaxSplits
}
func (o Options) bufferFraction() float64 {
	if o.BufferFraction <= 0 || o.BufferFraction > 1 {
		return 0.5
	}
	return o.BufferFraction
}
func (o Options) chains() int {
	if o.Chains <= 1 {
		return 1
	}
	return o.Chains
}
func (o Options) exchangeEvery() int {
	if o.ExchangeEvery <= 0 {
		return 50
	}
	return o.ExchangeEvery
}

// Result is the outcome of atomic tensor generation.
type Result struct {
	Spec        atom.Spec       // chosen partition per layer (compute + vector layers)
	LayerCycles map[int]int64   // nominal per-atom cycles of each compute layer
	LayerUtil   map[int]float64 // PE utilization of each compute layer's atoms
	Trace       []float64       // energy (Var of cycles) after each iteration
	Iters       int             // iterations executed
	FinalVar    float64         // final energy
	FinalCV     float64         // final coefficient of variation of atom cycles
	MeanCycle   float64         // the unified execution cycle S
	Dataflow    engine.Dataflow // echo of the input
	Candidates  map[int]int     // candidate-list length per layer (diagnostics)
	cands       map[int]layerCands
}

// state is one assignment of candidate indices to compute layers, stored
// densely in search.all order (participating layers first, stragglers
// after), together with the exact integer sums its energy derives from.
// Every constructor and mutator (randomState, argmin, walker.moveTo,
// crossover, mutate) keeps acc in sync with choice, so scoring a state —
// or re-scoring it after an O(Δ) move — never walks the layers again.
type state struct {
	choice []int // search.all index -> candidate index
	acc    accum // S1/S2 sums over the first nOrder choices
}

// saMetrics bundles the run-wide search instruments. Every instrument is
// a nil-safe no-op when Options.Metrics is nil, and all of them are
// atomic, so concurrent portfolio chains share one set: the aggregate
// counters then sum over chains.
type saMetrics struct {
	iters     *obs.Counter
	accepts   *obs.Counter
	rejects   *obs.Counter
	tempHist  *obs.Histogram
	delta     *obs.Histogram
	tempFinal *obs.Gauge
	finalCV   *obs.Gauge
}

func newSAMetrics(opt Options) saMetrics {
	// Search observability: Metropolis accept/reject rates, the
	// temperature trajectory and the energy deltas of accepted moves.
	return saMetrics{
		iters:     opt.Metrics.Counter("anneal_iterations_total"),
		accepts:   opt.Metrics.Counter("anneal_accepts_total"),
		rejects:   opt.Metrics.Counter("anneal_rejects_total"),
		tempHist:  opt.Metrics.Histogram("anneal_temperature", obs.ExpBuckets(1e-4, 2, 12)),
		delta:     opt.Metrics.Histogram("anneal_accepted_energy_delta", obs.ExpBuckets(1, 8, 12)),
		tempFinal: opt.Metrics.Gauge("anneal_temperature_final"),
		finalCV:   opt.Metrics.Gauge("anneal_final_cv"),
	}
}

// saChain is one Metropolis trajectory of Algorithm 1. A chain owns its
// RNG, so its path is a pure function of its seed and of the states
// injected at exchange barriers — never of goroutine scheduling. The
// single-chain SA path and every portfolio member run the same code.
//
// The accepted state is held as scalars only (E, S): Algorithm 1's
// proposal is the argmin image of the shifted target, which depends on
// the current state only through S, so the chain never needs the current
// choice vector — just the walker's incrementally-maintained proposal
// and a materialized snapshot of the best state seen.
type saChain struct {
	idx int
	rng *rand.Rand

	w    *walker // incremental argmin image (the move proposal)
	E, S float64 // energy / unified cycle of the accepted state

	best         state
	bestE, bestS float64

	temp, lenAbs float64
	trace        []float64
	iters        int
	converged    bool

	// Per-chain observability, flushed to labeled instruments by the
	// portfolio after the reduction.
	accepts, rejects int64
	adoptions        int64
	elapsed          time.Duration
}

// newChain seeds a chain and draws its random initial state
// (Algorithm 1 lines 1-7).
func newChain(idx int, seed int64, sctx *search, opt Options) *saChain {
	c := &saChain{idx: idx, rng: rand.New(rand.NewSource(seed))}
	// Line 1-4: random initialization of every layer's atom size. A
	// warm-started search seeds chain 0 from the prior solution instead;
	// the other chains keep their random draws so the portfolio still
	// explores.
	var cur state
	if idx == 0 && len(opt.WarmStart) > 0 {
		cur = sctx.warmState(opt.WarmStart)
	} else {
		cur = sctx.randomState(c.rng)
	}
	// Line 5-7: initial unified cycle S = mean, energy E = Var.
	c.S, c.E = cur.acc.meanVariance()
	c.best, c.bestE, c.bestS = cur, c.E, c.S
	c.temp = opt.temp()
	c.lenAbs = c.S * opt.lenFrac()
	// The proposal walker pays its one full argmin build here; every move
	// after is incremental.
	c.w = sctx.newWalker(c.S)
	return c
}

// run executes up to n more Metropolis iterations, stopping early on
// convergence or context cancellation (Algorithm 1 lines 8-25).
func (c *saChain) run(sctx *search, opt Options, n int, m saMetrics) {
	start := time.Now()
	defer func() { c.elapsed += time.Since(start) }()
	for done := 0; done < n; done++ {
		if opt.cancelled() {
			return
		}
		// Line 10: neighboring state.
		Smove := c.S + (c.rng.Float64()*2-1)*c.lenAbs
		if Smove < 1 {
			Smove = 1
		}
		// Line 11-14: re-pick each layer's atom closest to S^move — an
		// O(changed layers) slide of the walker, scored in O(1) from the
		// exact accumulators.
		c.w.moveTo(Smove)
		moveS, Emove := c.w.st.acc.meanVariance()
		if opt.VerifyDelta {
			sctx.verifyDelta(c.w, Smove)
		}
		// Line 16-22: Metropolis acceptance with decaying temperature.
		// Energies are normalized by the squared state (i.e. compared as
		// squared coefficients of variation) so the temperature schedule
		// is scale-free across workloads.
		c.temp *= opt.lambda()
		c.iters++
		m.iters.Inc()
		m.tempHist.Observe(c.temp)
		p := math.Exp((c.E - Emove) / (opt.lambda() * c.temp * (c.S*c.S + 1)))
		if c.rng.Float64() <= p {
			c.accepts++
			m.accepts.Inc()
			m.delta.Observe(math.Abs(c.E - Emove))
			c.E, c.S = Emove, moveS
			c.lenAbs = c.S * opt.lenFrac()
			// E only changes on acceptance (or barrier adoption, handled
			// by the portfolio), so the best-state snapshot — the one
			// O(layers) copy left on this path — happens exactly on
			// strict improvement.
			if c.E < c.bestE {
				c.best, c.bestE, c.bestS = cloneState(c.w.st), c.E, c.S
			}
		} else {
			c.rejects++
			m.rejects.Inc()
		}
		c.trace = append(c.trace, c.bestE)
		// Line 23-25: convergence on normalized variance.
		if c.bestE/(c.bestS*c.bestS+1) <= opt.epsilon() {
			c.converged = true
			return
		}
	}
}

// sample snapshots the chain's progress for Options.Progress. Called
// only between segments on the coordinating goroutine, so the reads are
// unsynchronized by construction.
func (c *saChain) sample(adopted bool) Sample {
	return Sample{
		Chain:     c.idx,
		Iters:     c.iters,
		Temp:      c.temp,
		BestE:     c.bestE,
		BestS:     c.bestS,
		Adopted:   adopted,
		Converged: c.converged,
	}
}

// polish is the deterministic post-search sweep ("for better
// convergence"): a grid of unified-cycle targets around the best state,
// keeping the minimum. The grid is cut into contiguous ascending chunks,
// one walker per chunk, so each worker pays one full argmin build and
// then slides: a grid point costs only the pick boundaries between it
// and its predecessor. Scores come from the exact integer accumulators,
// so chunking is invisible to the result, and the index-ordered
// strict-less-than reduction keeps the sweep bit-identical to the
// sequential one for any GOMAXPROCS.
func (s *search) polish(opt Options, best state, bestE, bestS float64) (state, float64, float64) {
	const n = 97
	lo, hi := bestS*0.2, bestS*2.5
	targets := make([]float64, n)
	for i := range targets {
		targets[i] = lo + (hi-lo)*float64(i)/(n-1)
	}
	es := make([]float64, n)
	ms := make([]float64, n)
	const chunks = 8
	per := (n + chunks - 1) / chunks
	parallelFor(chunks, func(ci int) {
		start, end := ci*per, ci*per+per
		if end > n {
			end = n
		}
		if start >= end {
			return
		}
		w := s.newWalker(targets[start])
		for i := start; i < end; i++ {
			if opt.cancelled() {
				es[i] = math.Inf(1)
				continue
			}
			w.moveTo(targets[i])
			if opt.VerifyDelta {
				s.verifyDelta(w, targets[i])
			}
			ms[i], es[i] = w.st.acc.meanVariance()
		}
	})
	win := -1
	for i := 0; i < n; i++ {
		if es[i] < bestE {
			bestE, bestS, win = es[i], ms[i], i
		}
	}
	if win >= 0 {
		// Rebuild the winning image once; argmin is a pure function of the
		// target, so this is the state the walker scored.
		best = s.argmin(targets[win])
	}
	return best, bestE, bestS
}

// SA runs the simulated-annealing search of Algorithm 1 and returns the
// per-layer atom sizes plus the convergence trace. With Options.Chains
// greater than one it runs the parallel portfolio instead (same contract,
// ~Chains-fold less wall-clock on enough cores).
func SA(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options) Result {
	if opt.chains() > 1 {
		return portfolioSA(g, cfg, df, opt)
	}
	sctx := newSearch(g, cfg, df, opt)
	m := newSAMetrics(opt)
	c := newChain(0, opt.seed(), sctx, opt)
	if opt.Progress == nil {
		c.run(sctx, opt, opt.maxIters(), m)
	} else {
		// Segment the budget exactly like the portfolio's barrier loop.
		// run() is a pure per-iteration recurrence, so slicing MaxIters
		// into ExchangeEvery-sized runs changes nothing about the
		// trajectory — it only creates safe points to observe from.
		total := opt.maxIters()
		for done := 0; done < total && !c.converged && !opt.cancelled(); {
			n := opt.exchangeEvery()
			if done+n > total {
				n = total - done
			}
			c.run(sctx, opt, n, m)
			done += n
			opt.Progress([]Sample{c.sample(false)})
		}
	}
	best := sctx.refine(c.best, c.bestS)
	best, bestE, bestS := sctx.polish(opt, best, c.bestE, c.bestS)
	if n := len(c.trace); n > 0 && bestE < c.trace[n-1] {
		c.trace = append(c.trace, bestE)
	}
	if opt.Progress != nil {
		fin := c.sample(false)
		fin.BestE, fin.BestS, fin.Final = bestE, bestS, true
		opt.Progress([]Sample{fin})
	}
	m.tempFinal.Set(c.temp)
	res := sctx.finish(best, bestE, bestS, c.trace, c.iters)
	m.finalCV.Set(res.FinalCV)
	return res
}

// search carries the immutable per-layer candidate lists.
type search struct {
	g     *graph.Graph
	cfg   engine.Config
	df    engine.Dataflow
	opt   Options
	orc   cost.Oracle
	cands map[int]layerCands
	order []int   // compute layer IDs participating in the energy
	scale float64 // energy normalization for the acceptance test

	// Dense mirrors of the candidate lists for the search inner loops:
	// all is order followed by stragglers; lcAt[i] is all[i]'s candidates.
	all    []int
	lcAt   []layerCands
	nOrder int // first nOrder entries of all participate in the energy

	// events is the t-sorted union of every layer's pick boundaries —
	// the index the walkers slide over (see delta.go).
	events []pickEvent

	// stragglers are layers whose minimum achievable atom cycle is far
	// above the typical layer's (e.g. a weight-bound FC whose coarsest
	// serialization already exceeds every CONV option). They can never
	// meet a common unified cycle, so they are excluded from the variance
	// (they would anchor S uselessly high, starving Round packing) and
	// simply take their closest candidate at assembly time.
	stragglers []int
}

func newSearch(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options) *search {
	s := &search{g: g, cfg: cfg, df: df, opt: opt,
		orc: cost.Or(opt.Oracle), cands: make(map[int]layerCands)}
	// Candidate generation is embarrassingly parallel per layer, and a pure
	// function of (kind, shape, cfg, df, opt) — so layers with identical
	// shapes share one generated list (deep networks repeat the same block
	// hundreds of times), and the worker pool changes nothing about the
	// candidate lists — and therefore nothing about the seeded SA/GA
	// trajectory — only the wall-clock. The shared slices are read-only
	// everywhere downstream.
	ids := g.ComputeLayers()
	built := make([]layerCands, len(ids))
	type candKey struct {
		kind  graph.OpKind
		shape graph.Shape
	}
	keys := make([]candKey, len(ids))
	uniq := make(map[candKey]int, len(ids))
	var uniqIdx []int
	for i, lid := range ids {
		l := g.Layer(lid)
		keys[i] = candKey{l.Kind, l.Shape}
		if _, ok := uniq[keys[i]]; !ok {
			uniq[keys[i]] = i
			uniqIdx = append(uniqIdx, i)
		}
	}
	if opt.Surrogate != nil {
		// Surrogate mode generates sequentially in first-occurrence order:
		// each shape's exact evaluations train the model before the next
		// shape is filtered, and the filter decisions become a pure
		// function of the (graph, hardware, Options) tuple instead of a
		// race between workers and the online fitter.
		for k := range uniqIdx {
			l := g.Layer(ids[uniqIdx[k]])
			c, d := genCandidates(l, cfg, df, opt, s.orc)
			built[uniqIdx[k]] = layerCands{layer: l, cands: c, deferred: d}
		}
	} else {
		parallelFor(len(uniqIdx), func(k int) {
			l := g.Layer(ids[uniqIdx[k]])
			c, _ := genCandidates(l, cfg, df, opt, s.orc)
			built[uniqIdx[k]] = layerCands{layer: l, cands: c}
		})
	}
	for i, lid := range ids {
		if j := uniq[keys[i]]; j != i {
			built[i] = layerCands{layer: g.Layer(lid), cands: built[j].cands, deferred: built[j].deferred}
		}
	}
	var all []int
	var mins []int64
	for i, lid := range ids {
		s.cands[lid] = built[i]
		all = append(all, lid)
		mins = append(mins, s.cands[lid].cands[0].cycles)
	}
	medianMin := median(mins)
	for i, lid := range all {
		if medianMin > 0 && mins[i] > 4*medianMin {
			s.stragglers = append(s.stragglers, lid)
		} else {
			s.order = append(s.order, lid)
		}
	}
	if len(s.order) == 0 { // degenerate graph: keep everything
		s.order, s.stragglers = all, nil
	}
	s.nOrder = len(s.order)
	s.all = append(append(make([]int, 0, len(all)), s.order...), s.stragglers...)
	s.lcAt = make([]layerCands, len(s.all))
	for i, lid := range s.all {
		s.lcAt[i] = s.cands[lid]
	}
	// Normalize acceptance energies by the square of a typical cycle
	// count so temperature is scale-free across workloads. Iterate layers
	// in graph order, not map order: float addition is order-sensitive,
	// and the scale feeds SA acceptance, so a map walk here would make
	// whole annealing trajectories vary run to run.
	var sum float64
	var n int
	for _, lid := range all {
		for _, c := range s.cands[lid].cands {
			sum += float64(c.cycles)
			n++
		}
	}
	if n > 0 {
		m := sum / float64(n)
		s.scale = m*m + 1
	} else {
		s.scale = 1
	}
	s.buildDeltaIndex()
	return s
}

// randomState draws a uniform candidate per participating layer, with the
// accumulators built alongside. Layers are weighted uniformly in the
// energy: weighting by atom count would reward the degenerate attractor
// of one layer shattered into thousands of identical tiny atoms (the
// variance collapses because the tiny atoms become the population).
func (s *search) randomState(rng *rand.Rand) state {
	st := state{choice: make([]int, len(s.all)), acc: accum{n: s.nOrder}}
	for i := 0; i < s.nOrder; i++ {
		c := rng.Intn(len(s.lcAt[i].cands))
		st.choice[i] = c
		st.acc.add(s.lcAt[i].cands[c].cycles)
	}
	// Stragglers keep the zero value: the minimum-cycle candidate.
	return st
}

// argmin picks, for every layer, the candidate closest to target cycles
// (Algorithm 1 line 13). Stragglers participate too: with the target
// below their floor this selects their minimum-cycle candidate.
func (s *search) argmin(target float64) state {
	t := targetOf(target)
	st := state{choice: make([]int, len(s.all)), acc: accum{n: s.nOrder}}
	for i := range s.all {
		c := s.lcAt[i].pick(t)
		st.choice[i] = c
		if i < s.nOrder {
			st.acc.add(s.lcAt[i].cands[c].cycles)
		}
	}
	return st
}

// median returns the middle value of xs (xs is not modified).
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	slices.Sort(cp)
	return cp[len(cp)/2]
}

// finish assembles the Result: compute-layer partitions from the chosen
// state plus heuristic partitions for vector-unit layers sized to the
// unified cycle S.
func (s *search) finish(st state, E, S float64, trace []float64, iters int) Result {
	res := Result{
		Spec:        make(atom.Spec),
		LayerCycles: make(map[int]int64),
		LayerUtil:   make(map[int]float64),
		Trace:       trace,
		Iters:       iters,
		FinalVar:    E,
		MeanCycle:   S,
		Dataflow:    s.df,
		Candidates:  make(map[int]int),
		cands:       s.cands,
	}
	if S > 0 {
		res.FinalCV = math.Sqrt(E) / S
	}
	for i, lid := range s.all {
		c := s.lcAt[i].cands[st.choice[i]]
		res.Spec[lid] = c.part
		res.LayerCycles[lid] = c.cycles
		res.LayerUtil[lid] = c.util
		res.Candidates[lid] = len(s.lcAt[i].cands)
	}
	// Vector-unit layers (pool/eltwise/global-pool): tile along H (and C)
	// so one atom's vector time is at most the unified cycle S.
	for _, l := range s.g.Layers {
		if l.Kind.IsCompute() || l.Kind == graph.OpConcat || l.Kind == graph.OpInput {
			continue
		}
		res.Spec[l.ID] = vectorPartition(l, s.cfg, S, s.opt.maxTiles(), s.orc)
	}
	return res
}

// vectorPartition sizes a vector-unit layer's atoms so each takes at most
// targetCycles on the vector unit, splitting along H first, then C.
func vectorPartition(l *graph.Layer, cfg engine.Config, targetCycles float64, maxTiles int, orc cost.Oracle) atom.Partition {
	sh := l.Shape
	whole := orc.Evaluate(cfg, engine.KCPartition, engine.TaskFromLayer(l))
	if targetCycles < 1 {
		targetCycles = 1
	}
	parts := int(math.Ceil(float64(whole.Cycles) / targetCycles))
	if parts < 1 {
		parts = 1
	}
	if parts > maxTiles {
		parts = maxTiles
	}
	hp := ceilDiv(sh.Ho, parts)
	cop := sh.Co
	if hp < 1 {
		hp = 1
	}
	if remaining := ceilDiv(parts, sh.Ho); hp == 1 && remaining > 1 {
		cop = ceilDiv(sh.Co, remaining)
		if cop < 1 {
			cop = 1
		}
	}
	return atom.Partition{Hp: hp, Wp: sh.Wo, Cop: cop}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// parallelFor runs fn(0..n-1) on a bounded worker pool and waits for all.
// Callers write results into index i of a pre-sized slice, so output
// ordering is deterministic regardless of execution order. A panic in fn
// is recovered on the worker and re-raised with its original value on the
// calling goroutine once the pool drains — an anonymous goroutine must
// never take the whole process down, and callers keep the stack-unwinding
// semantics of the sequential loop.
func parallelFor(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
