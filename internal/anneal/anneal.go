package anneal

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// Options tunes Algorithm 1. Zero values select the defaults noted on
// each field.
type Options struct {
	MaxIters       int     // ite_max (default 600)
	Len            float64 // movement length as a fraction of the state (default 0.25)
	Epsilon        float64 // convergence threshold on CV^2 = Var/Mean^2 (default 0.01)
	Temp           float64 // initial temperature (default 0.1)
	Lambda         float64 // temperature decay per iteration (default 0.98)
	Seed           int64   // RNG seed (default 1)
	MaxTilesPerLay int     // atom-count cap per layer (default 1024)
	MaxSplits      int     // candidate extents per dimension (default 10)
	BufferFraction float64 // usable fraction of the engine buffer (default 0.5, rest for double buffering)

	// Oracle prices candidate atoms (default: a fresh memoized oracle per
	// search). Pass the run's shared oracle so candidate generation reuses
	// evaluations cached by scheduling and simulation of the same workload.
	Oracle cost.Oracle

	// Metrics, when non-nil, receives the search's accept/reject
	// counters, temperature trajectory and accepted energy deltas (see
	// internal/obs). The nil default costs nothing.
	Metrics *obs.Registry

	// Ctx, when non-nil, lets callers abandon the search: SA polls it
	// each iteration and returns the best state found so far as soon as
	// it is cancelled. Cancellation only truncates the search — an
	// uncancelled context never perturbs the seeded trajectory.
	Ctx context.Context

	// Chains is the width of the search portfolio (default 1). With
	// Chains > 1 the iteration budget MaxIters is split across that many
	// concurrently-run, independently-seeded SA chains (seeds derived
	// from Seed via splitmix64) that exchange best states at
	// deterministic iteration barriers — total Metropolis work stays
	// ~MaxIters while the wall-clock drops with available cores. The
	// result is bit-identical for a fixed (Seed, Chains) pair regardless
	// of GOMAXPROCS; Chains <= 1 is exactly the classic single-chain
	// Algorithm 1 trajectory.
	Chains int

	// ExchangeEvery is the chain-local iteration count between the
	// portfolio's best-state exchange barriers (default 50). Only
	// meaningful with Chains > 1.
	ExchangeEvery int

	// PortfolioGA, when true and Chains > 1, devotes the last portfolio
	// slot to the genetic-algorithm comparator instead of an SA chain.
	// The GA member runs its own generational trajectory (it has no
	// single-point state to exchange) and competes only in the final
	// reduction.
	PortfolioGA bool
}

func (o Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 600
	}
	return o.MaxIters
}
func (o Options) lenFrac() float64 {
	if o.Len <= 0 {
		return 0.25
	}
	return o.Len
}
func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.01
	}
	return o.Epsilon
}
func (o Options) temp() float64 {
	if o.Temp <= 0 {
		return 0.1
	}
	return o.Temp
}
func (o Options) lambda() float64 {
	if o.Lambda <= 0 || o.Lambda >= 1 {
		return 0.98
	}
	return o.Lambda
}
func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}
func (o Options) maxTiles() int {
	if o.MaxTilesPerLay <= 0 {
		return 1024
	}
	return o.MaxTilesPerLay
}
func (o Options) maxSplits() int {
	if o.MaxSplits <= 2 {
		return 10
	}
	return o.MaxSplits
}
func (o Options) bufferFraction() float64 {
	if o.BufferFraction <= 0 || o.BufferFraction > 1 {
		return 0.5
	}
	return o.BufferFraction
}
func (o Options) chains() int {
	if o.Chains <= 1 {
		return 1
	}
	return o.Chains
}
func (o Options) exchangeEvery() int {
	if o.ExchangeEvery <= 0 {
		return 50
	}
	return o.ExchangeEvery
}

// Result is the outcome of atomic tensor generation.
type Result struct {
	Spec        atom.Spec       // chosen partition per layer (compute + vector layers)
	LayerCycles map[int]int64   // nominal per-atom cycles of each compute layer
	LayerUtil   map[int]float64 // PE utilization of each compute layer's atoms
	Trace       []float64       // energy (Var of cycles) after each iteration
	Iters       int             // iterations executed
	FinalVar    float64         // final energy
	FinalCV     float64         // final coefficient of variation of atom cycles
	MeanCycle   float64         // the unified execution cycle S
	Dataflow    engine.Dataflow // echo of the input
	Candidates  map[int]int     // candidate-list length per layer (diagnostics)
	cands       map[int]layerCands
}

// state is one assignment of candidate indices to compute layers, stored
// densely in search.all order (participating layers first, stragglers
// after). The dense form keeps the SA/GA inner loops (mean/variance over
// every layer, recomputed per iteration and per sort comparison) free of
// map lookups.
type state struct {
	choice []int // search.all index -> candidate index
}

// saMetrics bundles the run-wide search instruments. Every instrument is
// a nil-safe no-op when Options.Metrics is nil, and all of them are
// atomic, so concurrent portfolio chains share one set: the aggregate
// counters then sum over chains.
type saMetrics struct {
	iters     *obs.Counter
	accepts   *obs.Counter
	rejects   *obs.Counter
	tempHist  *obs.Histogram
	delta     *obs.Histogram
	tempFinal *obs.Gauge
	finalCV   *obs.Gauge
}

func newSAMetrics(opt Options) saMetrics {
	// Search observability: Metropolis accept/reject rates, the
	// temperature trajectory and the energy deltas of accepted moves.
	return saMetrics{
		iters:     opt.Metrics.Counter("anneal_iterations_total"),
		accepts:   opt.Metrics.Counter("anneal_accepts_total"),
		rejects:   opt.Metrics.Counter("anneal_rejects_total"),
		tempHist:  opt.Metrics.Histogram("anneal_temperature", obs.ExpBuckets(1e-4, 2, 12)),
		delta:     opt.Metrics.Histogram("anneal_accepted_energy_delta", obs.ExpBuckets(1, 8, 12)),
		tempFinal: opt.Metrics.Gauge("anneal_temperature_final"),
		finalCV:   opt.Metrics.Gauge("anneal_final_cv"),
	}
}

// saChain is one Metropolis trajectory of Algorithm 1. A chain owns its
// RNG, so its path is a pure function of its seed and of the states
// injected at exchange barriers — never of goroutine scheduling. The
// single-chain SA path and every portfolio member run the same code.
type saChain struct {
	idx int
	rng *rand.Rand

	cur  state
	E, S float64

	best         state
	bestE, bestS float64

	temp, lenAbs float64
	trace        []float64
	iters        int
	converged    bool

	// Per-chain observability, flushed to labeled instruments by the
	// portfolio after the reduction.
	accepts, rejects int64
	adoptions        int64
	elapsed          time.Duration
}

// newChain seeds a chain and draws its random initial state
// (Algorithm 1 lines 1-7).
func newChain(idx int, seed int64, sctx *search, opt Options) *saChain {
	c := &saChain{idx: idx, rng: rand.New(rand.NewSource(seed))}
	// Line 1-4: random initialization of every layer's atom size.
	c.cur = sctx.randomState(c.rng)
	// Line 5-7: initial unified cycle S = mean, energy E = Var.
	c.S = sctx.mean(c.cur)
	c.E = sctx.variance(c.cur, c.S)
	c.best, c.bestE, c.bestS = c.cur, c.E, c.S
	c.temp = opt.temp()
	c.lenAbs = c.S * opt.lenFrac()
	return c
}

// run executes up to n more Metropolis iterations, stopping early on
// convergence or context cancellation (Algorithm 1 lines 8-25).
func (c *saChain) run(sctx *search, opt Options, n int, m saMetrics) {
	start := time.Now()
	defer func() { c.elapsed += time.Since(start) }()
	for done := 0; done < n; done++ {
		if opt.cancelled() {
			return
		}
		// Line 10: neighboring state.
		Smove := c.S + (c.rng.Float64()*2-1)*c.lenAbs
		if Smove < 1 {
			Smove = 1
		}
		// Line 11-14: re-pick each layer's atom closest to S^move.
		next := sctx.argmin(Smove)
		Emove := sctx.variance(next, sctx.mean(next))
		// Line 16-22: Metropolis acceptance with decaying temperature.
		// Energies are normalized by the squared state (i.e. compared as
		// squared coefficients of variation) so the temperature schedule
		// is scale-free across workloads.
		c.temp *= opt.lambda()
		c.iters++
		m.iters.Inc()
		m.tempHist.Observe(c.temp)
		p := math.Exp((c.E - Emove) / (opt.lambda() * c.temp * (c.S*c.S + 1)))
		if c.rng.Float64() <= p {
			c.accepts++
			m.accepts.Inc()
			m.delta.Observe(math.Abs(c.E - Emove))
			c.cur, c.E, c.S = next, Emove, sctx.mean(next)
			c.lenAbs = c.S * opt.lenFrac()
		} else {
			c.rejects++
			m.rejects.Inc()
		}
		if c.E < c.bestE {
			c.best, c.bestE, c.bestS = c.cur, c.E, c.S
		}
		c.trace = append(c.trace, c.bestE)
		// Line 23-25: convergence on normalized variance.
		if c.bestE/(c.bestS*c.bestS+1) <= opt.epsilon() {
			c.converged = true
			return
		}
	}
}

// polish is the deterministic post-search sweep ("for better
// convergence"): a grid of unified-cycle targets around the best state,
// keeping the minimum. Grid points are independent, so they are priced on
// the worker pool and reduced in index order with a strict less-than —
// bit-identical to the sequential sweep for any GOMAXPROCS.
func (s *search) polish(opt Options, best state, bestE, bestS float64) (state, float64, float64) {
	const n = 97
	lo, hi := bestS*0.2, bestS*2.5
	sts := make([]state, n)
	es := make([]float64, n)
	ms := make([]float64, n)
	parallelFor(n, func(i int) {
		if opt.cancelled() {
			es[i] = math.Inf(1)
			return
		}
		S := lo + (hi-lo)*float64(i)/(n-1)
		st := s.argmin(S)
		m := s.mean(st)
		sts[i], ms[i], es[i] = st, m, s.variance(st, m)
	})
	for i := 0; i < n; i++ {
		if es[i] < bestE {
			best, bestE, bestS = sts[i], es[i], ms[i]
		}
	}
	return best, bestE, bestS
}

// SA runs the simulated-annealing search of Algorithm 1 and returns the
// per-layer atom sizes plus the convergence trace. With Options.Chains
// greater than one it runs the parallel portfolio instead (same contract,
// ~Chains-fold less wall-clock on enough cores).
func SA(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options) Result {
	if opt.chains() > 1 {
		return portfolioSA(g, cfg, df, opt)
	}
	sctx := newSearch(g, cfg, df, opt)
	m := newSAMetrics(opt)
	c := newChain(0, opt.seed(), sctx, opt)
	c.run(sctx, opt, opt.maxIters(), m)
	best, bestE, bestS := sctx.polish(opt, c.best, c.bestE, c.bestS)
	if n := len(c.trace); n > 0 && bestE < c.trace[n-1] {
		c.trace = append(c.trace, bestE)
	}
	m.tempFinal.Set(c.temp)
	res := sctx.finish(best, bestE, bestS, c.trace, c.iters)
	m.finalCV.Set(res.FinalCV)
	return res
}

// search carries the immutable per-layer candidate lists.
type search struct {
	g     *graph.Graph
	cfg   engine.Config
	df    engine.Dataflow
	opt   Options
	orc   cost.Oracle
	cands map[int]layerCands
	order []int   // compute layer IDs participating in the energy
	scale float64 // energy normalization for the acceptance test

	// Dense mirrors of the candidate lists for the search inner loops:
	// all is order followed by stragglers; lcAt[i] is all[i]'s candidates.
	all    []int
	lcAt   []layerCands
	nOrder int // first nOrder entries of all participate in the energy

	// stragglers are layers whose minimum achievable atom cycle is far
	// above the typical layer's (e.g. a weight-bound FC whose coarsest
	// serialization already exceeds every CONV option). They can never
	// meet a common unified cycle, so they are excluded from the variance
	// (they would anchor S uselessly high, starving Round packing) and
	// simply take their closest candidate at assembly time.
	stragglers []int
}

func newSearch(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options) *search {
	s := &search{g: g, cfg: cfg, df: df, opt: opt,
		orc: cost.Or(opt.Oracle), cands: make(map[int]layerCands)}
	// Candidate generation is embarrassingly parallel per layer:
	// genCandidates is a pure function of (layer, cfg, df, opt), so the
	// worker pool changes nothing about the candidate lists — and therefore
	// nothing about the seeded SA/GA trajectory — only the wall-clock.
	ids := g.ComputeLayers()
	built := make([]layerCands, len(ids))
	parallelFor(len(ids), func(i int) {
		l := g.Layer(ids[i])
		built[i] = layerCands{layer: l, cands: genCandidates(l, cfg, df, opt, s.orc)}
	})
	var all []int
	var mins []int64
	for i, lid := range ids {
		s.cands[lid] = built[i]
		all = append(all, lid)
		mins = append(mins, s.cands[lid].cands[0].cycles)
	}
	medianMin := median(mins)
	for i, lid := range all {
		if medianMin > 0 && mins[i] > 4*medianMin {
			s.stragglers = append(s.stragglers, lid)
		} else {
			s.order = append(s.order, lid)
		}
	}
	if len(s.order) == 0 { // degenerate graph: keep everything
		s.order, s.stragglers = all, nil
	}
	s.nOrder = len(s.order)
	s.all = append(append(make([]int, 0, len(all)), s.order...), s.stragglers...)
	s.lcAt = make([]layerCands, len(s.all))
	for i, lid := range s.all {
		s.lcAt[i] = s.cands[lid]
	}
	// Normalize acceptance energies by the square of a typical cycle
	// count so temperature is scale-free across workloads. Iterate layers
	// in graph order, not map order: float addition is order-sensitive,
	// and the scale feeds SA acceptance, so a map walk here would make
	// whole annealing trajectories vary run to run.
	var sum float64
	var n int
	for _, lid := range all {
		for _, c := range s.cands[lid].cands {
			sum += float64(c.cycles)
			n++
		}
	}
	if n > 0 {
		m := sum / float64(n)
		s.scale = m*m + 1
	} else {
		s.scale = 1
	}
	return s
}

func (s *search) randomState(rng *rand.Rand) state {
	st := state{choice: make([]int, len(s.all))}
	for i := 0; i < s.nOrder; i++ {
		st.choice[i] = rng.Intn(len(s.lcAt[i].cands))
	}
	// Stragglers keep the zero value: the minimum-cycle candidate.
	return st
}

// argmin picks, for every layer, the candidate closest to target cycles
// (Algorithm 1 line 13). Stragglers participate too: with the target
// below their floor this selects their minimum-cycle candidate.
func (s *search) argmin(target float64) state {
	st := state{choice: make([]int, len(s.all))}
	for i := range s.all {
		st.choice[i] = s.lcAt[i].pick(int64(target))
	}
	return st
}

// median returns the middle value of xs (xs is not modified).
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	sortInt64(cp)
	return cp[len(cp)/2]
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// mean returns the mean per-layer atom execution cycle of the state.
// Layers are weighted uniformly: weighting by atom count would reward the
// degenerate attractor of one layer shattered into thousands of identical
// tiny atoms (the variance collapses because the tiny atoms become the
// population).
func (s *search) mean(st state) float64 {
	var sum float64
	for i := 0; i < s.nOrder; i++ {
		sum += float64(s.lcAt[i].cands[st.choice[i]].cycles)
	}
	if s.nOrder == 0 {
		return 0
	}
	return sum / float64(s.nOrder)
}

// variance returns the variance of per-layer atom execution cycles — the
// system energy of Algorithm 1.
func (s *search) variance(st state, mean float64) float64 {
	var sum float64
	for i := 0; i < s.nOrder; i++ {
		d := float64(s.lcAt[i].cands[st.choice[i]].cycles) - mean
		sum += d * d
	}
	if s.nOrder == 0 {
		return 0
	}
	return sum / float64(s.nOrder)
}

// finish assembles the Result: compute-layer partitions from the chosen
// state plus heuristic partitions for vector-unit layers sized to the
// unified cycle S.
func (s *search) finish(st state, E, S float64, trace []float64, iters int) Result {
	res := Result{
		Spec:        make(atom.Spec),
		LayerCycles: make(map[int]int64),
		LayerUtil:   make(map[int]float64),
		Trace:       trace,
		Iters:       iters,
		FinalVar:    E,
		MeanCycle:   S,
		Dataflow:    s.df,
		Candidates:  make(map[int]int),
		cands:       s.cands,
	}
	if S > 0 {
		res.FinalCV = math.Sqrt(E) / S
	}
	for i, lid := range s.all {
		c := s.lcAt[i].cands[st.choice[i]]
		res.Spec[lid] = c.part
		res.LayerCycles[lid] = c.cycles
		res.LayerUtil[lid] = c.util
		res.Candidates[lid] = len(s.lcAt[i].cands)
	}
	// Vector-unit layers (pool/eltwise/global-pool): tile along H (and C)
	// so one atom's vector time is at most the unified cycle S.
	for _, l := range s.g.Layers {
		if l.Kind.IsCompute() || l.Kind == graph.OpConcat || l.Kind == graph.OpInput {
			continue
		}
		res.Spec[l.ID] = vectorPartition(l, s.cfg, S, s.opt.maxTiles(), s.orc)
	}
	return res
}

// vectorPartition sizes a vector-unit layer's atoms so each takes at most
// targetCycles on the vector unit, splitting along H first, then C.
func vectorPartition(l *graph.Layer, cfg engine.Config, targetCycles float64, maxTiles int, orc cost.Oracle) atom.Partition {
	sh := l.Shape
	whole := orc.Evaluate(cfg, engine.KCPartition, engine.TaskFromLayer(l))
	if targetCycles < 1 {
		targetCycles = 1
	}
	parts := int(math.Ceil(float64(whole.Cycles) / targetCycles))
	if parts < 1 {
		parts = 1
	}
	if parts > maxTiles {
		parts = maxTiles
	}
	hp := ceilDiv(sh.Ho, parts)
	cop := sh.Co
	if hp < 1 {
		hp = 1
	}
	if remaining := ceilDiv(parts, sh.Ho); hp == 1 && remaining > 1 {
		cop = ceilDiv(sh.Co, remaining)
		if cop < 1 {
			cop = 1
		}
	}
	return atom.Partition{Hp: hp, Wp: sh.Wo, Cop: cop}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// parallelFor runs fn(0..n-1) on a bounded worker pool and waits for all.
// Callers write results into index i of a pre-sized slice, so output
// ordering is deterministic regardless of execution order. A panic in fn
// is recovered on the worker and re-raised with its original value on the
// calling goroutine once the pool drains — an anonymous goroutine must
// never take the whole process down, and callers keep the stack-unwinding
// semantics of the sequential loop.
func parallelFor(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
