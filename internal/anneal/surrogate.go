package anneal

import (
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// This file is the annealer side of the two-tier cost oracle
// (internal/cost/surrogate): the survivor selection that decides which
// enumerated partitions get an exact engine evaluation, and the
// post-search refinement pass that re-admits deferred partitions near
// the final unified cycle. Both run only when Options.Surrogate is set;
// the default path never touches them.

const (
	// surrogateMinPend gates filtering: below this many feasible
	// partitions the survivor floor would keep almost everything anyway.
	surrogateMinPend = 48
	// surrogateKeepCap bounds the exact evaluations spent per filtered
	// list: when more partitions pass the predicted cuts, evenly spaced
	// ranks of their predicted-cycles order survive, so the list keeps
	// its full dynamic range at bounded cost.
	surrogateKeepCap = 128
	// surrogateUtilMargin loosens the pipeline's 0.6*maxU utilization
	// cut when it is applied to predictions instead of exact costs —
	// borderline partitions get an exact evaluation rather than being
	// dropped on a slightly-off prediction.
	surrogateUtilMargin = 0.55
	// surrogateExplore is the exploration floor: every N-th partition in
	// enumeration order survives regardless of its prediction, bounding
	// the damage of a locally-wrong model.
	surrogateExplore = 16
	// surrogateProbeRelMAE bounds the model's mean relative error on the
	// exploration floor before the rest of the list may be filtered. The
	// global readiness gates are backward-looking; this probe checks the
	// model against the distribution of THIS list, catching extrapolation
	// to shapes unlike anything in the training stream.
	surrogateProbeRelMAE = 0.02
	// surrogateRefine caps the deferred partitions re-admitted per
	// candidate list by the post-search refinement pass.
	surrogateRefine = 8
)

// pendingCand is one feasible partition awaiting pricing.
type pendingCand struct {
	part  atom.Partition
	task  engine.Task
	tiles int
}

// evaluatePending prices a layer's feasible partitions. Exact path (no
// surrogate, model not ready, or too few partitions to be worth
// filtering): every partition is evaluated, deferred is nil — byte-for-
// byte the candidate list the pre-surrogate code built. Filtered path:
// the snapshot predicts all partitions, survivors are exactly evaluated
// and the rest are returned as deferred with their predicted cycles.
func evaluatePending(pend []pendingCand, cfg engine.Config, df engine.Dataflow, opt Options, orc cost.Oracle) ([]candidate, []deferredCand) {
	if model := opt.Surrogate; model != nil && len(pend) >= surrogateMinPend {
		if sn := model.Snapshot(); sn != nil {
			preds := make([]float64, len(pend))
			allOK := true
			for i := range pend {
				p, ok := sn.Predict(cfg, df, pend[i].task)
				if !ok {
					allOK = false
					break
				}
				preds[i] = p
			}
			if allOK && probeAgrees(pend, preds, cfg, df, orc) {
				keep := surrogateSurvivors(pend, preds, cfg)
				var cands []candidate
				var deferred []deferredCand
				for i := range pend {
					if keep[i] {
						c := orc.Evaluate(cfg, df, pend[i].task)
						cands = append(cands, candidate{part: pend[i].part,
							cycles: c.Cycles, util: c.Utilization, tiles: pend[i].tiles})
					} else {
						deferred = append(deferred, deferredCand{part: pend[i].part,
							tiles: pend[i].tiles, pred: int64(preds[i])})
					}
				}
				model.FilterObserved(len(cands), len(deferred))
				return cands, deferred
			}
		}
	}
	var cands []candidate
	for i := range pend {
		c := orc.Evaluate(cfg, df, pend[i].task)
		cands = append(cands, candidate{part: pend[i].part,
			cycles: c.Cycles, util: c.Utilization, tiles: pend[i].tiles})
	}
	return cands, nil
}

// probeAgrees exact-evaluates the exploration floor (every
// surrogateExplore-th partition — survivors either way) and reports
// whether the predictions match those evaluations to within
// surrogateProbeRelMAE mean relative error. The floor evaluations are
// memoized, so on agreement the main survivor loop re-reads them as
// cache hits, and on disagreement the full exact pass wastes nothing.
func probeAgrees(pend []pendingCand, preds []float64, cfg engine.Config, df engine.Dataflow, orc cost.Oracle) bool {
	relSum := 0.0
	n := 0
	for i := 0; i < len(pend); i += surrogateExplore {
		c := orc.Evaluate(cfg, df, pend[i].task)
		y := float64(c.Cycles)
		if y < 1 {
			y = 1
		}
		e := preds[i] - y
		if e < 0 {
			e = -e
		}
		relSum += e / y
		n++
	}
	return relSum/float64(n) <= surrogateProbeRelMAE
}

// surrogateSurvivors marks which pending partitions get exact
// evaluations by emulating, on predictions, the two cuts genCandidates
// applies after exact evaluation: the weight-cacheability preference
// (pure arithmetic — no prediction needed) and the utilization floor
// (predicted work-per-cycle, with a margin for model error). Partitions
// those cuts would discard are exactly the ones an evaluation would be
// wasted on. When more partitions pass than the per-list cap, evenly
// spaced ranks of their predicted-cycles order survive, keeping the full
// dynamic range the pick tables need at bounded cost. An every-N-th
// enumeration-order floor survives regardless, bounding the damage of a
// locally-wrong model. Deterministic: stable sorts, ties break on
// enumeration index.
func surrogateSurvivors(pend []pendingCand, preds []float64, cfg engine.Config) []bool {
	n := len(pend)
	keep := make([]bool, n)
	// Cacheability preference: when any partition's weight slice fits in
	// 3/4 of the buffer, the pipeline drops every one that does not.
	anyCacheable := false
	for i := range pend {
		if cacheableWeight(pend[i].task, cfg) {
			anyCacheable = true
			break
		}
	}
	// Utilization floor over the eligible set: work per predicted cycle
	// is proportional to utilization (the constant PE-count denominator
	// cancels in the ratio test).
	util := make([]float64, n)
	maxu := 0.0
	for i := range pend {
		util[i] = float64(pend[i].task.MACs()) / preds[i] // preds clamped >= 1
		if util[i] > maxu && (!anyCacheable || cacheableWeight(pend[i].task, cfg)) {
			maxu = util[i]
		}
	}
	var idx []int
	for i := range pend {
		if anyCacheable && !cacheableWeight(pend[i].task, cfg) {
			continue
		}
		if util[i] >= surrogateUtilMargin*maxu {
			idx = append(idx, i)
		}
	}
	if len(idx) <= surrogateKeepCap {
		for _, i := range idx {
			keep[i] = true
		}
	} else {
		sort.SliceStable(idx, func(a, b int) bool { return preds[idx[a]] < preds[idx[b]] })
		for k := 0; k < surrogateKeepCap; k++ {
			keep[idx[k*(len(idx)-1)/(surrogateKeepCap-1)]] = true
		}
	}
	for i := 0; i < n; i += surrogateExplore {
		keep[i] = true
	}
	return keep
}

// cacheableWeight reports whether the task's weight slice fits the
// opportunistic cache budget (3/4 of the engine buffer) — the same rule
// genCandidates and refine apply. Task.Ci is already 1 for depthwise, so
// the product matches the pipeline's per-kind formulas.
func cacheableWeight(t engine.Task, cfg engine.Config) bool {
	wb := int64(t.Ci) * int64(t.Cop) * int64(t.Kh) * int64(t.Kw)
	return wb <= int64(cfg.BufferBytes)*3/4
}

// refine is the second tier's closing step: after the search has settled
// on a unified cycle, deferred partitions whose predicted cycles land
// within ±30% of it are exact-evaluated (at most surrogateRefine per
// candidate list, closest predictions first) and merged into the
// candidate lists under the same cacheability and utilization rules
// genCandidates applies. The returned state is best with its choice
// indices remapped onto the merged lists — the chosen candidates and
// their cycles are untouched, so the accumulators (and hence bestE and
// bestS) remain exact. The caller's polish sweep then runs over the
// enriched lists and harvests any improvement. No-op without a
// surrogate or when nothing was deferred near the target.
func (s *search) refine(best state, targetS float64) state {
	if s.opt.Surrogate == nil || !(targetS > 0) {
		return best
	}
	// Group layers by candidate-slice identity: shape-identical layers
	// share one cands/deferred pair (see newSearch) and must keep sharing
	// after the merge. First-occurrence order keeps the pass
	// deterministic (and the oracle memoizes, so shared lists cost one
	// evaluation set regardless of the sharing degree).
	type gkey struct {
		c  *candidate
		co int
	}
	groups := make(map[gkey][]int)
	var order []gkey
	for i := range s.all {
		lc := s.lcAt[i]
		if len(lc.cands) == 0 || len(lc.deferred) == 0 {
			continue
		}
		k := gkey{&lc.cands[0], lc.layer.Shape.Co}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	if len(order) == 0 {
		return best
	}
	target := targetOf(targetS)
	lo, hi := target-3*(target/10), target+3*(target/10)
	changed := false
	for _, gk := range order {
		layers := groups[gk]
		lc := s.lcAt[layers[0]]
		var near []deferredCand
		for _, d := range lc.deferred {
			if d.pred >= lo && d.pred <= hi {
				near = append(near, d)
			}
		}
		if len(near) == 0 {
			continue
		}
		sort.SliceStable(near, func(a, b int) bool {
			return absDiff(near[a].pred, target) < absDiff(near[b].pred, target)
		})
		if len(near) > surrogateRefine {
			near = near[:surrogateRefine]
		}
		sh := lc.layer.Shape
		maxU := 0.0
		for _, c := range lc.cands {
			if c.util > maxU {
				maxU = c.util
			}
		}
		limit := int64(s.cfg.BufferBytes) * 3 / 4
		var admitted []candidate
		for _, d := range near {
			wb := int64(sh.Ci) * int64(d.part.Cop) * int64(sh.Kh) * int64(sh.Kw)
			if lc.layer.Kind == graph.OpDepthwiseConv {
				wb = int64(d.part.Cop) * int64(sh.Kh) * int64(sh.Kw)
			}
			if wb > limit {
				continue
			}
			t := engine.Task{Kind: lc.layer.Kind, Hp: d.part.Hp, Wp: d.part.Wp,
				Ci: sh.Ci, Cop: d.part.Cop, Kh: sh.Kh, Kw: sh.Kw, Stride: sh.Stride}
			if lc.layer.Kind == graph.OpDepthwiseConv {
				t.Ci = 1
			}
			c := s.orc.Evaluate(s.cfg, s.df, t)
			if c.Utilization < 0.6*maxU {
				continue
			}
			admitted = append(admitted, candidate{part: d.part,
				cycles: c.Cycles, util: c.Utilization, tiles: d.tiles})
		}
		if len(admitted) == 0 {
			continue
		}
		// Merge with a stable sort, tracking where each old index lands so
		// the chosen candidates keep their identity.
		merged := make([]candidate, 0, len(lc.cands)+len(admitted))
		merged = append(merged, lc.cands...)
		merged = append(merged, admitted...)
		pos := make([]int, len(merged))
		for i := range pos {
			pos[i] = i
		}
		sort.SliceStable(pos, func(a, b int) bool { return merged[pos[a]].cycles < merged[pos[b]].cycles })
		sorted := make([]candidate, len(merged))
		remap := make([]int, len(lc.cands))
		for newIdx, oldIdx := range pos {
			sorted[newIdx] = merged[oldIdx]
			if oldIdx < len(lc.cands) {
				remap[oldIdx] = newIdx
			}
		}
		admittedParts := make(map[atom.Partition]bool, len(admitted))
		for _, a := range admitted {
			admittedParts[a.part] = true
		}
		var remaining []deferredCand
		for _, d := range lc.deferred {
			if !admittedParts[d.part] {
				remaining = append(remaining, d)
			}
		}
		for _, i := range layers {
			nlc := s.lcAt[i]
			nlc.cands, nlc.deferred = sorted, remaining
			s.lcAt[i] = nlc
			s.cands[s.all[i]] = nlc
			best.choice[i] = remap[best.choice[i]]
		}
		changed = true
	}
	if changed {
		// The pick boundaries moved with the candidate lists; one rebuild
		// re-indexes the walkers the polish sweep is about to create.
		s.buildDeltaIndex()
	}
	return best
}
