package anneal

import (
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// This file is the warm-start path: seeding a search from a prior
// solution of the same graph (typically retrieved from the serving
// layer's persistent store for a different hardware spec) instead of a
// cold random draw, and pruning candidate enumeration to a window
// around the prior partitions so the exact cost oracle is consulted
// far less often. Both are deterministic functions of
// (graph, hardware, Options) — Options.WarmStart is just more input —
// and both are no-ops when WarmStart is empty, so the default path and
// every pinned digest are untouched.

const (
	// warmMinPend gates enumeration pruning: below this many feasible
	// partitions the window would save almost nothing.
	warmMinPend = 16
	// warmKeepMin is the floor on a pruned list; windows that would cut
	// below it are discarded and the full list evaluated.
	warmKeepMin = 6
	// warmExplore keeps every N-th feasible partition in enumeration
	// order regardless of the window, bounding the damage of a warm
	// partition that is wrong for the new hardware.
	warmExplore = 8
	// warmRatio bounds each partition dimension to within this factor of
	// the warm partition's extent (in either direction).
	warmRatio = 2
)

// warmPrune applies the warm-start candidate window to one layer's
// feasible partitions: keep those within warmRatio per dimension of the
// prior solution's partition for this layer, plus an every-N-th
// exploration floor. Layers absent from the warm map (and short lists)
// are untouched. Shape-identical layers share candidate lists (see
// newSearch), so the window of a group's first-occurrence layer governs
// the whole group — deterministic, since first occurrence is graph
// order.
func warmPrune(l *graph.Layer, opt Options, pend []pendingCand) []pendingCand {
	if len(opt.WarmStart) == 0 || len(pend) < warmMinPend {
		return pend
	}
	w, ok := opt.WarmStart[l.ID]
	if !ok {
		return pend
	}
	kept := make([]pendingCand, 0, len(pend)/2)
	for i := range pend {
		if i%warmExplore == 0 || withinWarmWindow(pend[i].part, w) {
			kept = append(kept, pend[i])
		}
	}
	if len(kept) < warmKeepMin {
		return pend
	}
	return kept
}

func withinWarmWindow(p, w atom.Partition) bool {
	return ratioOK(p.Hp, w.Hp) && ratioOK(p.Wp, w.Wp) && ratioOK(p.Cop, w.Cop)
}

func ratioOK(a, b int) bool {
	if a < 1 || b < 1 {
		return false
	}
	if a < b {
		a, b = b, a
	}
	return a <= warmRatio*b
}

// warmState builds chain 0's initial state from the warm partitions:
// every layer present in the map takes its nearest candidate (exact
// partition match when the hardware still admits it), and the remainder
// target the matched layers' mean cycle through the ordinary pick —
// so unmatched layers land where the warm solution's balance point is,
// not at a random draw. Entirely deterministic; the chain's RNG is not
// consumed, which is fine because warm start is its own search mode,
// not a replay of the cold trajectory.
func (s *search) warmState(warm map[int]atom.Partition) state {
	st := state{choice: make([]int, len(s.all)), acc: accum{n: s.nOrder}}
	matched := make([]bool, len(s.all))
	var sum float64
	var n int
	for i, lid := range s.all {
		p, ok := warm[lid]
		if !ok {
			continue
		}
		c := s.lcAt[i].nearestPart(p)
		st.choice[i] = c
		matched[i] = true
		if i < s.nOrder {
			sum += float64(s.lcAt[i].cands[c].cycles)
			n++
		}
	}
	target := int64(1)
	if n > 0 {
		target = targetOf(sum / float64(n))
	}
	for i := range s.all {
		if !matched[i] {
			st.choice[i] = s.lcAt[i].pick(target)
		}
	}
	for i := 0; i < s.nOrder; i++ {
		st.acc.add(s.lcAt[i].cands[st.choice[i]].cycles)
	}
	return st
}

// nearestPart returns the candidate whose partition is closest to p: an
// exact match when one exists, otherwise minimum L1 distance over
// (Hp, Wp, Cop) with ties broken by lowest index — deterministic for
// any candidate ordering.
func (lc *layerCands) nearestPart(p atom.Partition) int {
	best, bestD := 0, int64(-1)
	for j := range lc.cands {
		q := lc.cands[j].part
		if q == p {
			return j
		}
		d := absInt(q.Hp-p.Hp) + absInt(q.Wp-p.Wp) + absInt(q.Cop-p.Cop)
		if bestD < 0 || d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

func absInt(x int) int64 {
	if x < 0 {
		return int64(-x)
	}
	return int64(x)
}
