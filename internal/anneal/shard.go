package anneal

import (
	"fmt"
	"slices"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// This file is the distributed face of the search portfolio: a Shard is
// the subset of a portfolio's chains one fleet worker owns, exposed as
// the exact primitives internal/fleet's coordinator needs to replicate
// portfolioSA's barrier loop across processes.
//
// The determinism argument extends portfolioSA's (see portfolio.go):
//
//   - A chain's trajectory is a pure function of (graph, hardware,
//     Options, chain index). newSearch is itself a pure function of its
//     inputs when Options.Surrogate is nil — candidate generation,
//     shape dedup and the delta index do not depend on scheduling — so
//     two processes that decode the same graph and options build
//     bit-identical candidate spaces, and chainSeed gives shard-resident
//     chains the same seeds they would have had in-process.
//   - Only scalars and choice vectors cross a barrier. A chain's state
//     is (choice []int, accum), and the accumulators are exact integer
//     sums rebuildable from the choice vector alone (accumOf), so
//     shipping choices over a wire and rebuilding loses nothing.
//     Energies travel as float64 and Go's JSON encoding round-trips
//     float64 exactly (shortest-representation encoding).
//   - The coordinator replays portfolioSA's exchange fold verbatim:
//     global best = lowest BestE with ties to the lowest chain index,
//     adoption exactly when the global best energy undercuts a chain's
//     current energy. Adopt applies the same scalar updates (and the
//     same conditional best-state clone) the in-process barrier does.
//   - FinishRemote is portfolioSA's tail — refine, polish, trace
//     append, finish — run on the winner's shipped closing state.
//
// Together: a fleet solve over any worker partition of the chain set
// produces the same Result bytes as SA() with the same Options.
// The GA portfolio slot has no exchangeable state and is not supported
// here; NewShard rejects Options.PortfolioGA.

// ChainStat is one chain's scalar snapshot at a segment boundary —
// everything the coordinator's exchange fold needs, nothing more.
type ChainStat struct {
	Chain     int     `json:"chain"`
	E         float64 `json:"e"`      // current accepted energy
	S         float64 `json:"s"`      // current unified cycle
	BestE     float64 `json:"best_e"` // best energy seen
	BestS     float64 `json:"best_s"` // unified cycle of that best
	Temp      float64 `json:"temp"`   // current temperature
	Iters     int     `json:"iters"`  // chain-local iterations executed
	Converged bool    `json:"converged"`
	Adoptions int64   `json:"adoptions"`
}

// ChainFinal is the winning chain's closing state, shipped once at
// reduction time: the best choice vector (the accumulators are rebuilt
// from it exactly), its energies, and the convergence trace.
type ChainFinal struct {
	Chain  int       `json:"chain"`
	Choice []int     `json:"choice"`
	BestE  float64   `json:"best_e"`
	BestS  float64   `json:"best_s"`
	Trace  []float64 `json:"trace"`
	Iters  int       `json:"iters"`
	Temp   float64   `json:"temp"`
}

// Exported Options accessors for internal/fleet: the coordinator and
// workers must agree on the normalized portfolio geometry, so both read
// it through the same defaulting logic.

// NumChains returns the normalized portfolio width (>= 1).
func (o Options) NumChains() int { return o.chains() }

// SegmentIters returns the chain-local iteration count between exchange
// barriers.
func (o Options) SegmentIters() int { return o.exchangeEvery() }

// PerChainIters returns each chain's share of the iteration budget —
// portfolioSA's ceil(MaxIters/Chains) split.
func (o Options) PerChainIters() int {
	k := o.chains()
	return (o.maxIters() + k - 1) / k
}

// RunSeed returns the normalized run seed.
func (o Options) RunSeed() int64 { return o.seed() }

// ChainSeed derives chain i's RNG seed from the run seed — the same
// splitmix64 stream portfolioSA uses, exported so remote shards seed
// their chains identically to in-process ones.
func ChainSeed(seed int64, i int) int64 { return chainSeed(seed, i) }

// Shard is the subset of a portfolio's chains one worker owns. All
// methods are called from a single protocol-handling goroutine;
// RunSegment parallelizes internally exactly like portfolioSA.
type Shard struct {
	sctx   *search
	opt    Options
	m      saMetrics
	idx    []int // owned global chain indices, ascending
	chains []*saChain
	byIdx  map[int]*saChain
}

// NewShard builds the candidate space and seeds the owned chains.
// chainIdx are global portfolio indices in [0, opt.NumChains()); they
// need not be contiguous. The shard's chains start in exactly the state
// portfolioSA would have given them.
func NewShard(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options, chainIdx []int) (*Shard, error) {
	if opt.PortfolioGA {
		return nil, fmt.Errorf("anneal: shard does not support the GA portfolio slot")
	}
	if opt.Surrogate != nil {
		return nil, fmt.Errorf("anneal: shard does not support surrogate mode (history-dependent candidate lists cannot be replicated across processes)")
	}
	k := opt.chains()
	idx := append([]int(nil), chainIdx...)
	slices.Sort(idx)
	for i, ci := range idx {
		if ci < 0 || ci >= k {
			return nil, fmt.Errorf("anneal: chain index %d out of portfolio [0,%d)", ci, k)
		}
		if i > 0 && idx[i-1] == ci {
			return nil, fmt.Errorf("anneal: duplicate chain index %d", ci)
		}
	}
	sh := &Shard{
		sctx:  newSearch(g, cfg, df, opt),
		opt:   opt,
		m:     newSAMetrics(opt),
		idx:   idx,
		byIdx: make(map[int]*saChain, len(idx)),
	}
	for _, ci := range idx {
		c := newChain(ci, chainSeed(opt.seed(), ci), sh.sctx, opt)
		sh.chains = append(sh.chains, c)
		sh.byIdx[ci] = c
	}
	return sh, nil
}

// Chains returns the owned global chain indices, ascending.
func (sh *Shard) Chains() []int { return append([]int(nil), sh.idx...) }

// RunSegment advances every non-converged owned chain by n iterations
// and returns their snapshots, ordered by global chain index. The
// parallelFor matches portfolioSA's: it changes which thread runs a
// chain, never what the chain computes.
func (sh *Shard) RunSegment(n int) []ChainStat {
	parallelFor(len(sh.chains), func(i int) {
		if !sh.chains[i].converged {
			sh.chains[i].run(sh.sctx, sh.opt, n, sh.m)
		}
	})
	stats := make([]ChainStat, len(sh.chains))
	for i, c := range sh.chains {
		stats[i] = ChainStat{
			Chain: c.idx, E: c.E, S: c.S, BestE: c.bestE, BestS: c.bestS,
			Temp: c.temp, Iters: c.iters, Converged: c.converged,
			Adoptions: c.adoptions,
		}
	}
	return stats
}

// BestChoice returns a copy of the chain's best-state choice vector —
// what the coordinator ships to adopting chains on other shards.
func (sh *Shard) BestChoice(chain int) ([]int, error) {
	c, ok := sh.byIdx[chain]
	if !ok {
		return nil, fmt.Errorf("anneal: chain %d not on this shard", chain)
	}
	return append([]int(nil), c.best.choice...), nil
}

// Adopt applies one exchange-barrier adoption to an owned chain:
// exactly portfolioSA's scalar updates, with the best-state clone
// rebuilt from the shipped choice vector when (and only when) the
// adopted energy undercuts the chain's best. The caller has already
// applied the barrier's adoption condition (bestE < chain.E); choice
// may be nil when bestE >= chain.bestE — the clone branch is dead then
// and the vector need not cross the wire.
func (sh *Shard) Adopt(chain int, bestE, bestS float64, choice []int) error {
	c, ok := sh.byIdx[chain]
	if !ok {
		return fmt.Errorf("anneal: chain %d not on this shard", chain)
	}
	c.E, c.S = bestE, bestS
	c.lenAbs = c.S * sh.opt.lenFrac()
	if c.E < c.bestE {
		if choice == nil {
			return fmt.Errorf("anneal: adoption for chain %d improves its best but carries no state", chain)
		}
		c.best, c.bestE, c.bestS = sh.stateOf(choice), c.E, c.S
	}
	c.adoptions++
	return nil
}

// Final returns the chain's closing state for the portfolio reduction.
func (sh *Shard) Final(chain int) (ChainFinal, error) {
	c, ok := sh.byIdx[chain]
	if !ok {
		return ChainFinal{}, fmt.Errorf("anneal: chain %d not on this shard", chain)
	}
	return ChainFinal{
		Chain: c.idx, Choice: append([]int(nil), c.best.choice...),
		BestE: c.bestE, BestS: c.bestS,
		Trace: append([]float64(nil), c.trace...),
		Iters: c.iters, Temp: c.temp,
	}, nil
}

// stateOf materializes a state from a shipped choice vector, rebuilding
// the exact integer accumulators (accumOf) so the result is
// bit-identical to the state the vector was copied from.
func (sh *Shard) stateOf(choice []int) state {
	return sh.sctx.stateOf(choice)
}

func (s *search) stateOf(choice []int) state {
	st := state{choice: append([]int(nil), choice...)}
	st.acc = s.accumOf(st)
	return st
}

// ValidChoice reports whether a shipped choice vector indexes this
// shard's candidate lists — the protocol-level sanity check before a
// vector from the wire reaches stateOf.
func (sh *Shard) ValidChoice(choice []int) error {
	if len(choice) != len(sh.sctx.all) {
		return fmt.Errorf("anneal: choice length %d, want %d", len(choice), len(sh.sctx.all))
	}
	for i, c := range choice {
		if c < 0 || c >= len(sh.sctx.lcAt[i].cands) {
			return fmt.Errorf("anneal: choice[%d] = %d out of %d candidates", i, c, len(sh.sctx.lcAt[i].cands))
		}
	}
	return nil
}

// FinishRemote is portfolioSA's tail, run by the coordinator on the
// winning chain's shipped closing state: the same refine + polish +
// trace-append + finish sequence, over a candidate space rebuilt from
// the same (graph, hardware, options) tuple the workers used — so a
// fleet solve's Result is bit-identical to the in-process portfolio's.
// opt here is the coordinator's full Options (Oracle, Metrics, Ctx and
// Progress intact); only the wire-clean subset needs to have matched
// what the workers ran with. closing, when non-empty, holds every
// surviving chain's last barrier snapshot and feeds the final Progress
// batch exactly like portfolioSA's — the winner's slot carries the
// post-polish energies.
func FinishRemote(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt Options, fin ChainFinal, closing []ChainStat) (Result, error) {
	if opt.Surrogate != nil {
		return Result{}, fmt.Errorf("anneal: FinishRemote does not support surrogate mode")
	}
	sctx := newSearch(g, cfg, df, opt)
	if len(fin.Choice) != len(sctx.all) {
		return Result{}, fmt.Errorf("anneal: final choice length %d, want %d", len(fin.Choice), len(sctx.all))
	}
	for i, c := range fin.Choice {
		if c < 0 || c >= len(sctx.lcAt[i].cands) {
			return Result{}, fmt.Errorf("anneal: final choice[%d] = %d out of %d candidates", i, c, len(sctx.lcAt[i].cands))
		}
	}
	m := newSAMetrics(opt)
	best := sctx.stateOf(fin.Choice)
	bestE, bestS := fin.BestE, fin.BestS
	trace := append([]float64(nil), fin.Trace...)

	best = sctx.refine(best, bestS)
	best, bestE, bestS = sctx.polish(opt, best, bestE, bestS)
	if n := len(trace); n > 0 && bestE < trace[n-1] {
		trace = append(trace, bestE)
	}
	if opt.Progress != nil && len(closing) > 0 {
		samples := make([]Sample, 0, len(closing))
		for _, st := range closing {
			s := Sample{
				Chain: st.Chain, Iters: st.Iters, Temp: st.Temp,
				BestE: st.BestE, BestS: st.BestS, Converged: st.Converged,
				Final: true,
			}
			if st.Chain == fin.Chain {
				s.BestE, s.BestS = bestE, bestS
			}
			samples = append(samples, s)
		}
		opt.Progress(samples)
	}
	m.tempFinal.Set(fin.Temp)
	res := sctx.finish(best, bestE, bestS, trace, fin.Iters)
	m.finalCV.Set(res.FinalCV)
	return res, nil
}
