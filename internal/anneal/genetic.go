package anneal

import (
	"math/rand"
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// GAOptions tunes the genetic-algorithm comparator used by the paper's
// Fig. 5b convergence study.
type GAOptions struct {
	Options
	Population int     // default 24
	Elite      int     // individuals copied unchanged (default 2)
	MutateProb float64 // per-gene mutation probability (default 0.08)
}

func (o GAOptions) population() int {
	if o.Population <= 1 {
		return 24
	}
	return o.Population
}
func (o GAOptions) elite() int {
	if o.Elite <= 0 {
		return 2
	}
	return o.Elite
}
func (o GAOptions) mutateProb() float64 {
	if o.MutateProb <= 0 {
		return 0.08
	}
	return o.MutateProb
}

// GA runs a genetic algorithm over the same candidate space as SA:
// an individual is a per-layer candidate choice; fitness is the negated
// variance of atom execution cycles. Its Trace records the best energy per
// generation (one generation ~ one Trace entry, like SA's per-iteration
// trace), exhibiting the mutation-driven rises the paper observes.
func GA(g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt GAOptions) Result {
	sctx := newSearch(g, cfg, df, opt.Options)
	best, bestE, trace, gens := runGA(sctx, opt, opt.seed())
	return sctx.finish(best, bestE, best.acc.mean(), trace, gens)
}

// runGA is the GA trajectory on an existing search context, so a
// portfolio can run it as one member against SA chains sharing the same
// candidate lists. It polls cancellation between generations (returning
// the best-so-far) and is otherwise a pure function of (sctx, opt, seed).
func runGA(sctx *search, opt GAOptions, seed int64) (state, float64, []float64, int) {
	rng := rand.New(rand.NewSource(seed))

	pop := make([]state, opt.population())
	for i := range pop {
		pop[i] = sctx.randomState(rng)
	}
	// States carry exact accumulators, so fitness is O(1) per call — the
	// per-generation sort no longer walks every layer per comparison.
	energy := func(st state) float64 { return st.acc.variance() }

	best := pop[0]
	bestE := energy(best)
	var trace []float64
	gens := 0
	for gens = 0; gens < opt.maxIters(); gens++ {
		if opt.cancelled() {
			break
		}
		// Rank by energy ascending (lower variance = fitter).
		sort.Slice(pop, func(i, j int) bool { return energy(pop[i]) < energy(pop[j]) })
		if e := energy(pop[0]); e < bestE {
			bestE, best = e, cloneState(pop[0])
		}
		// Unlike SA's monotone best-trace, GA's trace follows the current
		// generation's champion, which mutation can make worse — the
		// abrupt rises/falls the paper notes in Fig. 5b.
		trace = append(trace, energy(pop[0]))
		if m := best.acc.mean(); bestE/(m*m+1) <= opt.epsilon() {
			gens++
			break
		}
		next := make([]state, 0, len(pop))
		for i := 0; i < opt.elite() && i < len(pop); i++ {
			next = append(next, cloneState(pop[i]))
		}
		for len(next) < len(pop) {
			a := tournament(pop, energy, rng)
			b := tournament(pop, energy, rng)
			child := crossover(sctx, a, b, rng)
			mutate(sctx, &child, rng, opt.mutateProb())
			next = append(next, child)
		}
		pop = next
	}
	return best, bestE, trace, gens
}

func cloneState(st state) state {
	return state{choice: append([]int(nil), st.choice...), acc: st.acc}
}

func tournament(pop []state, energy func(state) float64, rng *rand.Rand) state {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if energy(a) <= energy(b) {
		return a
	}
	return b
}

func crossover(s *search, a, b state, rng *rand.Rand) state {
	// Straggler genes keep the zero value (their minimum-cycle candidate);
	// only energy-participating layers cross over, as in the SA moves. The
	// child's accumulators are built alongside the genes.
	c := state{choice: make([]int, len(s.all)), acc: accum{n: s.nOrder}}
	for i := 0; i < s.nOrder; i++ {
		g := a.choice[i]
		if rng.Intn(2) != 0 {
			g = b.choice[i]
		}
		c.choice[i] = g
		c.acc.add(s.lcAt[i].cands[g].cycles)
	}
	return c
}

// mutate flips genes in place; set keeps the accumulators in sync.
func mutate(s *search, st *state, rng *rand.Rand, prob float64) {
	for i := 0; i < s.nOrder; i++ {
		if rng.Float64() < prob {
			st.set(s, i, rng.Intn(len(s.lcAt[i].cands)))
		}
	}
}
