package serve

import (
	"testing"
)

// FuzzSolveRequest exercises the /solve request surface with arbitrary
// bytes: ParseRequest must never panic, anything it accepts must carry a
// decoded graph and a non-empty cache key, and parsing the same bytes
// twice must produce the same key (the canonicalization the cache and
// singleflight layers depend on).
func FuzzSolveRequest(f *testing.F) {
	f.Add([]byte(`{"model":"tinyconv"}`))
	f.Add([]byte(`{"model":"resnet50","batch":4,"seed":7,"sa_iters":100,"mode":"greedy"}`))
	f.Add([]byte(`{"graph":{"name":"m","layers":[` +
		`{"name":"in","op":"Input","shape":{"ho":8,"wo":8,"co":3}},` +
		`{"name":"c1","op":"Conv","inputs":["in"],"shape":{"hi":8,"wi":8,"ci":3,"ho":8,"wo":8,"co":4,"kh":3,"kw":3,"stride":1,"pad":1}}]}}`))
	f.Add([]byte(`{"model":"tinyconv","hardware":{"mesh_w":4,"mesh_h":2,"link_bytes":16,"dataflow":"yxp","double_buffer":false}}`))
	f.Add([]byte(`{"model":"tinyconv","trace":true,"timeout_ms":1000}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"graph":{"name":"x","layers":[]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if req.Key() == "" {
			t.Fatal("accepted request with empty cache key")
		}
		if req.graph == nil {
			t.Fatal("accepted request with no decoded graph")
		}
		again, err := ParseRequest(data)
		if err != nil {
			t.Fatalf("same bytes rejected on second parse: %v", err)
		}
		if again.Key() != req.Key() {
			t.Fatalf("unstable cache key: %s vs %s", req.Key(), again.Key())
		}
	})
}
