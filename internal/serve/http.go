package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/obs/dash"
)

// StatusClientClosedRequest reports a waiter whose client went away
// before the solve finished (nginx's 499 convention; net/http has no
// name for it).
const StatusClientClosedRequest = 499

// Handler mounts the service endpoints:
//
//	POST /solve     orchestrate a workload, returning the solution JSON
//	GET  /healthz   liveness + queue/worker/cache occupancy
//	GET  /metrics   Prometheus text exposition of the serving metrics
//	GET  /metrics.json  JSON snapshot of the same registry
//	GET  /debug/dash    the live fleet dashboard (embedded web UI)
//	GET  /debug/dash/state.json     active solves + fleet gauges
//	GET  /debug/dash/sessions.json  recent session history
//	GET  /debug/dash/events         server-sent-event stream
//	     /debug/pprof/  the standard Go profiling endpoints
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	obsH := obs.Handler(s.reg)
	// Uptime is refreshed at scrape time rather than by a ticker: the
	// gauge is exact whenever anyone reads it and costs nothing between
	// scrapes.
	metricsH := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.uptime.Set(time.Since(s.started).Seconds())
		obsH.ServeHTTP(w, r)
	})
	mux.Handle("/metrics", metricsH)
	mux.Handle("/metrics.json", metricsH)
	mux.Handle("/debug/pprof/", obsH)
	dashH := dash.Handler(s.dash, s.reg)
	dashW := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.uptime.Set(time.Since(s.started).Seconds())
		dashH.ServeHTTP(w, r)
	})
	mux.Handle("/debug/dash", dashW)
	mux.Handle("/debug/dash/", dashW)
	return mux
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	span := obs.StartSpan(s.m.reqLatency)
	defer span.End()
	s.m.requests.Inc()
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST a solve request")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes()))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	req, err := parseRequest(body, s.cfg.DefaultChains, s.cfg.DefaultSurrogate, s.cfg.DefaultWarmStart)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res, src, fl, err := s.lookup(req)
	switch {
	case err == nil && res != nil:
		s.writeResult(w, res, src)
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "admission queue full")
		return
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}

	// Wait for the flight under this request's deadline: the server
	// default, tightened by a request-supplied timeout_ms.
	ctx := r.Context()
	timeout := s.cfg.requestTimeout()
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	var cancel context.CancelFunc
	ctx, cancel = context.WithTimeout(ctx, timeout)
	defer cancel()

	select {
	case <-fl.done:
		if fl.err != nil {
			s.writeSolveError(w, fl.err)
			return
		}
		s.writeResult(w, fl.res, "miss")
	case <-ctx.Done():
		s.abandon(req.Key(), fl)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the solve finished")
		} else {
			s.writeError(w, StatusClientClosedRequest, "client closed request")
		}
	}
}

// writeSolveError maps an orchestration failure onto an HTTP status: a
// cancelled or expired search is the server's fault (504 during drain
// timeout / abandoned flights), anything else is a plain 500.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusGatewayTimeout
	}
	s.writeError(w, code, err.Error())
}

func (s *Server) writeResult(w http.ResponseWriter, res *solveResult, status string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Adserve-Cache", status)
	w.Header().Set("X-Adserve-Digest", res.digest)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	inflight := len(s.flights)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"workers":        s.cfg.workers(),
		"workers_busy":   s.busyCount.Load(),
		"queue_depth":    len(s.queue),
		"queue_capacity": s.cfg.queueDepth(),
		"flights":        inflight,
		"cache_entries":  s.cache.len(),
		"uptime_ms":      time.Since(s.started).Milliseconds(),
	})
}
