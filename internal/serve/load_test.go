package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadBodies is the 3-model request mix of the in-repo load test.
var loadBodies = []string{
	`{"model":"tinyconv","sa_iters":60}`,
	`{"model":"tinyresnet","sa_iters":60}`,
	`{"model":"tinybranch","sa_iters":60}`,
}

// TestServeLoad100 is the in-repo load test: 100 concurrent /solve
// requests over a 3-model mix must all complete, the search must run
// exactly once per distinct request (everything else deduplicated or
// cached), the hit ratio must be visible in /metrics, and the cached
// path must answer with p50 latency under 5ms.
func TestServeLoad100(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8})

	const n = 100
	var wg sync.WaitGroup
	codes := make([]int, n)
	digests := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSolve(t, ts, loadBodies[i%len(loadBodies)])
			codes[i] = resp.StatusCode
			var sr SolveResponse
			if json.Unmarshal(body, &sr) == nil {
				digests[i] = sr.Digest
			}
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d (%s): status %d", i, loadBodies[i%len(loadBodies)], code)
		}
	}
	// Identical requests must yield identical solutions.
	for i := range digests {
		if digests[i] != digests[i%len(loadBodies)] {
			t.Errorf("request %d digest %s != first same-model digest %s",
				i, digests[i], digests[i%len(loadBodies)])
		}
	}
	// The search ran once per distinct key; the other 97 were joined or
	// cache-served.
	if got := s.m.solves.Value(); got != int64(len(loadBodies)) {
		t.Errorf("serve_solves_total = %d, want %d", got, len(loadBodies))
	}
	if joined, hits := s.m.dedup.Value(), s.m.cacheHits.Value(); joined+hits != n-int64(len(loadBodies)) {
		t.Errorf("dedup %d + hits %d != %d", joined, hits, n-len(loadBodies))
	}

	// Cache hit ratio is reported on /metrics.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "serve_cache_hit_ratio") ||
		!strings.Contains(buf.String(), "serve_solves_total 3") {
		t.Errorf("/metrics missing load-test evidence:\n%s", buf.String())
	}

	// Cached-path latency: 51 sequential repeats of a warm key.
	lats := make([]time.Duration, 51)
	for i := range lats {
		start := time.Now()
		r, _ := postSolve(t, ts, loadBodies[0])
		lats[i] = time.Since(start)
		if r.Header.Get("X-Adserve-Cache") != "hit" {
			t.Fatalf("repeat %d not served from cache", i)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p50 := lats[len(lats)/2]; p50 > 5*time.Millisecond {
		t.Errorf("cached-path p50 = %v, want < 5ms", p50)
	}
}

// BenchmarkSolveCached measures the cached /solve path end to end over
// HTTP — the latency a repeat query pays once its solution is resident.
func BenchmarkSolveCached(b *testing.B) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()
	body := `{"model":"tinyconv","sa_iters":60}`
	warm, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkSolveColdChains measures an uncached /solve running a 4-chain
// search portfolio end to end over HTTP. Every iteration changes the
// seed, so each request misses the solution cache and pays the full
// search — the number this bench tracks is the cold-path latency the
// portfolio is supposed to cut on multicore runners.
func BenchmarkSolveColdChains(b *testing.B) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"model":"tinyconv","sa_iters":400,"chains":4,"seed":%d}`, i+1)
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Adserve-Cache"); got != "miss" {
			b.Fatalf("request %d served %q, want a cold miss", i, got)
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkSolveColdFleet is BenchmarkSolveColdChains with the search
// distributed: the same uncached 4-chain requests run on a two-worker
// TCP fleet instead of in-process. Results are bit-identical by
// contract, so against BenchmarkSolveColdChains this isolates the wire
// protocol's cost (frame encode/decode plus the exchange barriers) —
// the overhead a real multi-host fleet pays to scale the portfolio.
func BenchmarkSolveColdFleet(b *testing.B) {
	co := startFleet(b, 2)
	s := New(Config{Workers: 2, Fleet: co})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"model":"tinyconv","sa_iters":400,"chains":4,"seed":%d}`, i+1)
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Adserve-Cache"); got != "miss" {
			b.Fatalf("request %d served %q, want a cold miss", i, got)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	if fb := s.m.fleetFallbacks.Value(); fb != 0 {
		b.Fatalf("%d of %d solves fell back in-process; bench did not measure the fleet", fb, b.N)
	}
}

// BenchmarkSolveColdSurrogate is BenchmarkSolveColdDeep with the
// two-tier cost oracle switched on per request: the server-lifetime
// surrogate model prices candidate partitions and exact engine
// evaluations are spent only on survivors. Compared against
// BenchmarkSolveColdDeep this tracks the cold-path latency the learned
// filter buys (the CI bench smoke publishes both).
func BenchmarkSolveColdSurrogate(b *testing.B) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"model":"deepchain1k","sa_iters":400,"seed":%d,"surrogate":true}`, i+1)
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Adserve-Cache"); got != "miss" {
			b.Fatalf("request %d served %q, want a cold miss", i, got)
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkSolveColdDeep measures an uncached /solve over the 1026-layer
// deepchain1k model — the transformer-depth stress case the incremental
// (delta) move evaluation in internal/anneal targets. Every iteration
// changes the seed so each request misses the cache and pays the full
// search; the number this bench tracks is how cold-path latency scales
// with graph depth.
func BenchmarkSolveColdDeep(b *testing.B) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"model":"deepchain1k","sa_iters":400,"seed":%d}`, i+1)
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Adserve-Cache"); got != "miss" {
			b.Fatalf("request %d served %q, want a cold miss", i, got)
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		resp.Body.Close()
	}
}
