package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	atomicflow "github.com/atomic-dataflow/atomicflow"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// newTestServer spins up a Server behind httptest and tears both down at
// test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

// TestSingleflightDedup is the serve-layer concurrency contract: N
// concurrent identical requests run the search once and every caller
// receives bit-identical bytes.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const n = 16
	body := `{"model":"tinyconv","sa_iters":60}`

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postSolve(t, ts, body)
			codes[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body differs\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := s.m.solves.Value(); got != 1 {
		t.Errorf("search ran %d times, want exactly 1", got)
	}
	// Every non-originating request either joined the flight or hit the
	// cache after the flight finished.
	if joined, hits := s.m.dedup.Value(), s.m.cacheHits.Value(); joined+hits != n-1 {
		t.Errorf("dedup %d + cache hits %d != %d", joined, hits, n-1)
	}
	var sr SolveResponse
	if err := json.Unmarshal(bodies[0], &sr); err != nil {
		t.Fatalf("response: %v", err)
	}
	if sr.Digest == "" || sr.Report.Cycles <= 0 || sr.Rounds <= 0 {
		t.Errorf("implausible solution: %+v", sr)
	}
}

// TestCacheHit verifies the repeat-request path: second identical request
// is served from cache with identical bytes, and the hit ratio shows up
// in the Prometheus exposition.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"model":"tinybranch","sa_iters":60}`
	resp1, b1 := postSolve(t, ts, body)
	resp2, b2 := postSolve(t, ts, body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Adserve-Cache"); got != "hit" {
		t.Errorf("second request X-Adserve-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached body differs from original")
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "serve_cache_hit_ratio") {
		t.Errorf("/metrics missing serve_cache_hit_ratio:\n%s", buf.String())
	}
}

// TestBackpressure fills the worker and the queue, then asserts the next
// request is refused with 429 + Retry-After instead of queuing unbounded
// work — and that the refusal does not poison later service.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.solveHook = func() { <-gate }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})

	var wg sync.WaitGroup
	start := func(body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := postSolve(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("accepted request failed: %d %s", resp.StatusCode, b)
			}
		}()
	}
	// R1 occupies the worker (held at the gate), R2 fills the queue slot.
	start(`{"model":"tinyconv","sa_iters":60}`)
	waitFor(t, func() bool { return s.busyCount.Load() == 1 })
	start(`{"model":"tinyresnet","sa_iters":60}`)
	waitFor(t, func() bool { return len(s.queue) == 1 })

	resp, _ := postSolve(t, ts, `{"model":"tinybranch","sa_iters":60}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if got := s.m.rejected.Value(); got != 1 {
		t.Errorf("serve_queue_rejected_total = %d, want 1", got)
	}

	close(gate) // release the worker; R1 and R2 must both complete
	wg.Wait()
	resp, _ = postSolve(t, ts, `{"model":"tinybranch","sa_iters":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-backpressure request: status %d, want 200", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains holds a worker mid-solve with one request
// running and one queued, starts Shutdown, and asserts (a) new requests
// are refused, (b) both accepted requests still complete with 200, and
// (c) Shutdown returns only after the drain.
func TestGracefulShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.solveHook = func() { <-gate }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i, body := range []string{
		`{"model":"tinyconv","sa_iters":60}`,
		`{"model":"tinyresnet","sa_iters":60}`,
	} {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, _ := postSolve(t, ts, body)
			codes[i] = resp.StatusCode
		}(i, body)
	}
	waitFor(t, func() bool { return s.busyCount.Load() == 1 && len(s.queue) == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	resp, _ := postSolve(t, ts, `{"model":"tinybranch","sa_iters":60}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", resp.StatusCode)
	}
	// The worker is provably still held at the solveHook gate, so
	// Shutdown cannot have completed yet: any value on shutdownDone here
	// is the bug itself — no timed window needed.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before drain: %v", err)
	default:
	}

	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("accepted request %d lost during drain: status %d", i, code)
		}
	}
}

// TestServedMatchesDirect is the serving half of the determinism
// acceptance: for every zoo model the digest returned through the server
// equals the digest of a direct Orchestrate call with the same knobs.
func TestServedMatchesDirect(t *testing.T) {
	names := []string{"tinyconv", "tinyresnet", "tinybranch"}
	if !testing.Short() {
		names = append([]string(nil), models.PaperWorkloads...)
	}
	// Reduced sizes keep the 8-model sweep affordable under -race; the
	// digests still pin the full anneal→schedule→map→simulate pipeline.
	const saIters, maxTiles = 120, 128
	_, ts := newTestServer(t, Config{})
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			resp, body := postSolve(t, ts,
				fmt.Sprintf(`{"model":%q,"sa_iters":%d,"max_tiles":%d}`, name, saIters, maxTiles))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var sr SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			g, err := atomicflow.LoadModel(name)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := atomicflow.Orchestrate(g, atomicflow.Options{
				SAIters: saIters, MaxTilesPerLayer: maxTiles,
			})
			if err != nil {
				t.Fatal(err)
			}
			if direct := sol.Digest(); direct != sr.Digest {
				t.Errorf("served digest %s != direct digest %s", sr.Digest, direct)
			}
		})
	}
}

// TestSolveValidation covers the request-surface error paths.
func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty", `{}`, 400},
		{"junk", `{"model":`, 400},
		{"both model and graph", `{"model":"tinyconv","graph":{"name":"x","layers":[]}}`, 400},
		{"unknown model", `{"model":"nope"}`, 400},
		{"bad mode", `{"model":"tinyconv","mode":"magic"}`, 400},
		{"batch too big", `{"model":"tinyconv","batch":1000}`, 400},
		{"bad mesh", `{"model":"tinyconv","hardware":{"mesh_w":99}}`, 400},
		{"negative timeout", `{"model":"tinyconv","timeout_ms":-1}`, 400},
		{"bad graph", `{"graph":{"name":"x","layers":[{"name":"a","op":"Conv","inputs":["missing"]}]}}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSolve(t, ts, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
		})
	}
	resp, err := ts.Client().Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}

// TestInlineGraphSolve submits a workload through the exchange format
// rather than by zoo name and checks the solution digest matches the
// same graph loaded directly — the ONNX-analogue round trip.
func TestInlineGraphSolve(t *testing.T) {
	g, err := atomicflow.LoadModel("tinyconv")
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := atomicflow.WriteModel(&doc, g); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"graph":%s,"sa_iters":60}`, doc.String())
	resp, respBody := postSolve(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, respBody)
	}
	var sr SolveResponse
	if err := json.Unmarshal(respBody, &sr); err != nil {
		t.Fatal(err)
	}
	sol, err := atomicflow.Orchestrate(g, atomicflow.Options{SAIters: 60})
	if err != nil {
		t.Fatal(err)
	}
	if direct := sol.Digest(); direct != sr.Digest {
		t.Errorf("inline-graph digest %s != direct digest %s", sr.Digest, direct)
	}
}

// TestHealthz checks the liveness document and its drain transition.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 7})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
	if h["queue_capacity"].(float64) != 7 || h["workers"].(float64) != 2 {
		t.Errorf("healthz config echo wrong: %v", h)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: status %d, want 503", resp.StatusCode)
	}
}

// waitFor polls cond for up to 5s; the deadline only trips on bugs.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
