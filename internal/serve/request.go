package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/modelio"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Request is the /solve body. Exactly one of Model (a bundled zoo name)
// or Graph (an inline internal/modelio JSON document) selects the
// workload; the remaining fields tune the orchestration and the hardware
// model. Zero values select the library defaults, and ParseRequest
// normalizes them before the cache key is computed, so requests that
// spell the defaults out hash identically to requests that omit them.
type Request struct {
	Model string          `json:"model,omitempty"`
	Graph json.RawMessage `json:"graph,omitempty"`

	Batch    int    `json:"batch,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	SAIters  int    `json:"sa_iters,omitempty"`
	Chains   int    `json:"chains,omitempty"` // annealing portfolio width (default: server's -chains, else 1)
	MaxTiles int    `json:"max_tiles,omitempty"`
	Mode     string `json:"mode,omitempty"` // "dp" (default) or "greedy"

	Hardware *HardwareSpec `json:"hardware,omitempty"`

	// Trace includes the Chrome trace-event document of the simulated
	// execution in the response (and in the cached entry).
	Trace bool `json:"trace,omitempty"`

	// TimeoutMS overrides the server's per-request deadline, clamped to
	// the server maximum. Not part of the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// VerifyDelta runs the search with incremental-vs-full cross-checking
	// enabled (see atomicflow.Options.VerifyDelta). Like TimeoutMS it is
	// not part of the cache key: the harness never changes the solution,
	// only how expensively it is searched, so a verified request may be
	// answered from an unverified entry and vice versa. The server's
	// -verify-delta flag forces it on for every request.
	VerifyDelta bool `json:"verify_delta,omitempty"`

	// Surrogate opts into the two-tier learned cost oracle (see
	// atomicflow.Options.Surrogate). Tri-state: omitted takes the
	// server's -surrogate default, explicit true/false pins it. UNLIKE
	// verify_delta this IS part of the cache key — the surrogate filters
	// which candidate partitions the search considers, so surrogate-on
	// and surrogate-off solutions are legitimately different bytes and
	// must never be served from each other's entries. (Cycles in both are
	// exact; only the searched candidate set differs.)
	Surrogate *bool `json:"surrogate,omitempty"`

	// WarmStart opts into seeding the search from the persistent
	// store's best related record (same graph solved under a different
	// key — typically other hardware). Tri-state like Surrogate: omitted
	// takes the server's -warm-start default, explicit true/false pins
	// it. Part of the cache key — a warm-started search explores a
	// different trajectory, so warm and cold entries are legitimately
	// different bytes. On a server without a store (or when no donor
	// exists yet) a warm request simply solves cold.
	WarmStart *bool `json:"warm_start,omitempty"`

	graph     *graph.Graph // decoded workload
	graphHash string       // sha256 of the canonical modelio encoding
	key       string       // full cache key, set by ParseRequest
}

// HardwareSpec overrides a subset of the default hardware model. Zero
// fields keep the paper's Sec. V-A defaults.
type HardwareSpec struct {
	MeshW        int    `json:"mesh_w,omitempty"`
	MeshH        int    `json:"mesh_h,omitempty"`
	LinkBytes    int    `json:"link_bytes,omitempty"`
	BufferBytes  int64  `json:"buffer_bytes,omitempty"`
	Dataflow     string `json:"dataflow,omitempty"` // "kcp" (default) or "yxp"
	NaiveMapping bool   `json:"naive_mapping,omitempty"`
	DoubleBuffer *bool  `json:"double_buffer,omitempty"` // default true
}

// Request validation bounds. They exist to keep one malformed or hostile
// request from monopolizing a worker, not to be generous: a request at
// every limit is still a few seconds of search.
const (
	MaxBatch       = 64
	MaxSAIters     = 20000
	MaxChains      = 16
	MaxTilesLimit  = 4096
	MaxMeshDim     = 32
	MaxLinkBytes   = 1024
	MaxBufferBytes = 1 << 30
)

// ParseRequest decodes, validates and normalizes a /solve body and
// computes its canonical cache key. It never panics on arbitrary input
// (fuzzed by FuzzSolveRequest), and parsing the same bytes twice yields
// the same key.
func ParseRequest(data []byte) (*Request, error) {
	return parseRequest(data, 0, false, false)
}

// parseRequest is ParseRequest with server-level defaults applied before
// normalization: a request that omits "chains" takes defChains (0 keeps
// the library default of 1), one that omits "surrogate" takes
// defSurrogate, and one that omits "warm_start" takes defWarm. Defaults
// must land before the cache key is computed — the key states the chain
// count, surrogate mode and warm-start mode a cached solution was
// actually searched with, so an explicit chains=1 (or surrogate=false,
// or warm_start=false) request can never be answered from a
// differently-searched entry or vice versa.
func parseRequest(data []byte, defChains int, defSurrogate, defWarm bool) (*Request, error) {
	var r Request
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("serve: bad request body: %w", err)
	}
	if r.Chains == 0 {
		r.Chains = defChains
	}
	if r.Surrogate == nil {
		v := defSurrogate
		r.Surrogate = &v
	}
	if r.WarmStart == nil {
		v := defWarm
		r.WarmStart = &v
	}
	if err := r.normalize(); err != nil {
		return nil, err
	}
	return &r, nil
}

func (r *Request) normalize() error {
	switch {
	case r.Model != "" && len(r.Graph) > 0:
		return fmt.Errorf("serve: request has both model and graph; pick one")
	case r.Model == "" && len(r.Graph) == 0:
		return fmt.Errorf("serve: request needs a model name or an inline graph")
	case r.Model != "":
		g, err := models.Build(r.Model)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		r.graph = g
	default:
		g, err := modelio.Decode(r.Graph)
		if err != nil {
			return fmt.Errorf("serve: inline graph: %w", err)
		}
		r.graph = g
	}
	// Canonical graph identity: re-encode the decoded graph so whitespace,
	// field order and default spellings in the submitted JSON cannot split
	// the cache.
	canon, err := modelio.Encode(r.graph)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	sum := sha256.Sum256(canon)
	r.graphHash = hex.EncodeToString(sum[:])

	if r.Batch == 0 {
		r.Batch = 1
	}
	if r.Batch < 1 || r.Batch > MaxBatch {
		return fmt.Errorf("serve: batch %d out of range [1,%d]", r.Batch, MaxBatch)
	}
	if r.Seed == 0 {
		r.Seed = 1 // the search treats seed 0 as 1; normalize for the key
	}
	if r.SAIters == 0 {
		r.SAIters = 600
	}
	if r.SAIters < 1 || r.SAIters > MaxSAIters {
		return fmt.Errorf("serve: sa_iters %d out of range [1,%d]", r.SAIters, MaxSAIters)
	}
	if r.Chains == 0 {
		r.Chains = 1
	}
	if r.Chains < 1 || r.Chains > MaxChains {
		return fmt.Errorf("serve: chains %d out of range [1,%d]", r.Chains, MaxChains)
	}
	if r.MaxTiles == 0 {
		r.MaxTiles = 1024
	}
	if r.MaxTiles < 1 || r.MaxTiles > MaxTilesLimit {
		return fmt.Errorf("serve: max_tiles %d out of range [1,%d]", r.MaxTiles, MaxTilesLimit)
	}
	switch r.Mode {
	case "":
		r.Mode = "dp"
	case "dp", "greedy":
	default:
		return fmt.Errorf("serve: unknown mode %q (want dp or greedy)", r.Mode)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	if r.Surrogate == nil {
		f := false
		r.Surrogate = &f
	}
	if r.WarmStart == nil {
		f := false
		r.WarmStart = &f
	}
	if r.Hardware == nil {
		r.Hardware = &HardwareSpec{}
	}
	if err := r.Hardware.normalize(); err != nil {
		return err
	}
	r.key = r.computeKey()
	return nil
}

func (h *HardwareSpec) normalize() error {
	def := sim.DefaultConfig()
	if h.MeshW == 0 {
		h.MeshW = def.Mesh.W
	}
	if h.MeshH == 0 {
		h.MeshH = def.Mesh.H
	}
	if h.MeshW < 1 || h.MeshW > MaxMeshDim || h.MeshH < 1 || h.MeshH > MaxMeshDim {
		return fmt.Errorf("serve: mesh %dx%d out of range [1,%d]", h.MeshW, h.MeshH, MaxMeshDim)
	}
	if h.LinkBytes == 0 {
		h.LinkBytes = def.Mesh.LinkBytes
	}
	if h.LinkBytes < 1 || h.LinkBytes > MaxLinkBytes {
		return fmt.Errorf("serve: link_bytes %d out of range [1,%d]", h.LinkBytes, MaxLinkBytes)
	}
	if h.BufferBytes < 0 || h.BufferBytes > MaxBufferBytes {
		return fmt.Errorf("serve: buffer_bytes %d out of range [0,%d]", h.BufferBytes, MaxBufferBytes)
	}
	switch h.Dataflow {
	case "":
		h.Dataflow = "kcp"
	case "kcp", "yxp":
	default:
		return fmt.Errorf("serve: unknown dataflow %q (want kcp or yxp)", h.Dataflow)
	}
	if h.DoubleBuffer == nil {
		t := true
		h.DoubleBuffer = &t
	}
	return nil
}

// Key returns the canonical cache key: a digest over the canonical graph
// encoding, the normalized orchestration options and the normalized
// hardware spec. Two requests with the same key are guaranteed the same
// solution, which is what licenses the cache and the singleflight dedup.
func (r *Request) Key() string { return r.key }

func (r *Request) computeKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "graph %s\n", r.graphHash)
	fmt.Fprintf(h, "batch %d seed %d iters %d chains %d tiles %d mode %s trace %t surrogate %t warm %t\n",
		r.Batch, r.Seed, r.SAIters, r.Chains, r.MaxTiles, r.Mode, r.Trace, *r.Surrogate, *r.WarmStart)
	hw := r.Hardware
	fmt.Fprintf(h, "hw %dx%d link %d buf %d df %s naive %t dbuf %t\n",
		hw.MeshW, hw.MeshH, hw.LinkBytes, hw.BufferBytes, hw.Dataflow,
		hw.NaiveMapping, *hw.DoubleBuffer)
	return hex.EncodeToString(h.Sum(nil))
}

// hardware assembles the request's accelerator model on top of base.
func (r *Request) hardware(base sim.Config) sim.Config {
	hw := base
	h := r.Hardware
	hw.Mesh = noc.NewMesh(h.MeshW, h.MeshH, h.LinkBytes)
	if h.BufferBytes > 0 {
		hw.BufferBytes = h.BufferBytes
	}
	if h.Dataflow == "yxp" {
		hw.Dataflow = engine.YXPartition
	} else {
		hw.Dataflow = engine.KCPartition
	}
	hw.NaiveMapping = h.NaiveMapping
	hw.DoubleBuffer = *h.DoubleBuffer
	return hw
}
