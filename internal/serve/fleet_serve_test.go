package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/fleet"
	"github.com/atomic-dataflow/atomicflow/internal/store"
)

// startFleet brings up a coordinator on a loopback TCP listener with n
// dialed-in workers — the same wire path adserve -fleet-listen and
// adworker use, not an in-process shortcut — and tears it all down with
// the test.
func startFleet(tb testing.TB, n int) *fleet.Coordinator {
	tb.Helper()
	co := fleet.NewCoordinator(fleet.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("fleet listen: %v", err)
	}
	go co.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fleet.RunWorker(ctx, ln.Addr().String(), fleet.WorkerOptions{Name: name})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for co.NumWorkers() < n {
		if time.Now().After(deadline) {
			tb.Fatalf("only %d/%d workers joined within 5s", co.NumWorkers(), n)
		}
		time.Sleep(time.Millisecond)
	}
	tb.Cleanup(func() {
		cancel()
		co.Close()
		ln.Close()
		wg.Wait()
	})
	return co
}

// fleetWorkerCounts is the worker matrix for the determinism test. CI's
// fleet-faults job pins one count per matrix leg via FLEET_WORKERS; a
// plain `go test` run covers all three.
func fleetWorkerCounts(tb testing.TB) []int {
	env := os.Getenv("FLEET_WORKERS")
	if env == "" {
		return []int{1, 2, 4}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			tb.Fatalf("bad FLEET_WORKERS %q", env)
		}
		out = append(out, n)
	}
	return out
}

// TestServeFleetMatchesInProcess is the end-to-end determinism contract:
// a server whose solves run on a TCP worker fleet answers /solve with
// exactly the digests a fleetless server computes in-process, for every
// worker count — sharding the chain portfolio must not change a single
// byte of any solution.
func TestServeFleetMatchesInProcess(t *testing.T) {
	bodies := []string{
		`{"model":"tinyconv","sa_iters":200,"chains":4,"seed":7}`,
		`{"model":"tinyresnet","sa_iters":200,"chains":4,"seed":7}`,
	}
	want := map[string]string{}
	_, ref := newTestServer(t, Config{Workers: 1})
	for _, b := range bodies {
		resp, body := postSolve(t, ref, b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference solve %s: %d %s", b, resp.StatusCode, body)
		}
		want[b] = resp.Header.Get("X-Adserve-Digest")
	}

	for _, w := range fleetWorkerCounts(t) {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			co := startFleet(t, w)
			s, ts := newTestServer(t, Config{Workers: 1, Fleet: co})
			for _, b := range bodies {
				resp, body := postSolve(t, ts, b)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("fleet solve %s: %d %s", b, resp.StatusCode, body)
				}
				if src := resp.Header.Get("X-Adserve-Cache"); src != "miss" {
					t.Fatalf("fleet solve was %q, want miss", src)
				}
				if got := resp.Header.Get("X-Adserve-Digest"); got != want[b] {
					t.Fatalf("fleet digest %q != in-process digest %q for %s", got, want[b], b)
				}
			}
			// Every request must actually have run on the fleet; a silent
			// in-process fallback would make the digest check vacuous.
			if got := s.m.fleetSolves.Value(); got != int64(len(bodies)) {
				t.Fatalf("fleet solved %d of %d requests (fallbacks %d)",
					got, len(bodies), s.m.fleetFallbacks.Value())
			}
		})
	}
}

// TestServeFleetFallsBackWhenFleetEmpty pins the degradation contract at
// the serve layer: a coordinator with no workers must not fail requests —
// the server solves in-process, counts the fallback, and the bytes still
// match the fleetless answer (the fallback runs the same search).
func TestServeFleetFallsBackWhenFleetEmpty(t *testing.T) {
	co := fleet.NewCoordinator(fleet.Options{})
	t.Cleanup(func() { co.Close() })
	s, ts := newTestServer(t, Config{Workers: 1, Fleet: co})
	_, ref := newTestServer(t, Config{Workers: 1})

	body := `{"model":"tinyconv","sa_iters":120,"chains":2,"seed":5}`
	wantResp, wantBody := postSolve(t, ref, body)
	if wantResp.StatusCode != http.StatusOK {
		t.Fatalf("reference solve: %d %s", wantResp.StatusCode, wantBody)
	}
	resp, b := postSolve(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with empty fleet: %d %s", resp.StatusCode, b)
	}
	if got, want := resp.Header.Get("X-Adserve-Digest"), wantResp.Header.Get("X-Adserve-Digest"); got != want {
		t.Fatalf("fallback digest %q != in-process digest %q", got, want)
	}
	if s.m.fleetFallbacks.Value() != 1 || s.m.fleetSolves.Value() != 0 {
		t.Fatalf("fallbacks=%d fleetSolves=%d, want 1/0",
			s.m.fleetFallbacks.Value(), s.m.fleetSolves.Value())
	}
}

// TestStoreReplayAcrossRestart is the persistence contract: after the
// serving process restarts (new Server, new Store handle, same
// directory), a repeated request is answered from the store with the
// byte-identical body — no re-solve — and the hit backfills the LRU so
// the next repeat is an ordinary cache hit.
func TestStoreReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 1, Store: st1})
	body := `{"model":"tinybranch","sa_iters":120,"seed":3}`
	resp1, b1 := postSolve(t, ts1, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d %s", resp1.StatusCode, b1)
	}
	if src := resp1.Header.Get("X-Adserve-Cache"); src != "miss" {
		t.Fatalf("first solve was %q, want miss", src)
	}

	// "Restart": drain the first server, then bring up a second one over
	// a fresh Store handle on the same directory.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 1, Store: st2})

	resp2, b2 := postSolve(t, ts2, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed solve: %d %s", resp2.StatusCode, b2)
	}
	if src := resp2.Header.Get("X-Adserve-Cache"); src != "store" {
		t.Fatalf("post-restart repeat was %q, want store", src)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("store replay changed the body:\n%s\nvs\n%s", b1, b2)
	}
	if d1, d2 := resp1.Header.Get("X-Adserve-Digest"), resp2.Header.Get("X-Adserve-Digest"); d1 != d2 {
		t.Fatalf("digest %q != %q across restart", d1, d2)
	}
	if s2.m.storeHits.Value() != 1 {
		t.Fatalf("store hits = %d, want 1", s2.m.storeHits.Value())
	}

	// The store hit backfilled the LRU: a second repeat never touches
	// the store again.
	resp3, _ := postSolve(t, ts2, body)
	if src := resp3.Header.Get("X-Adserve-Cache"); src != "hit" {
		t.Fatalf("second repeat was %q, want hit", src)
	}
	if s2.m.storeHits.Value() != 1 {
		t.Fatalf("store hits grew to %d on an LRU-served repeat", s2.m.storeHits.Value())
	}
}

// TestWarmStartEfficiency is the acceptance criterion for the warm-start
// path: solving a resnet-family graph warm-started from a stored
// solution of the same graph under different hardware must land within
// 2% of the cold solve's final cycles while issuing at most half the
// exact-Evaluate (oracle miss) calls.
func TestWarmStartEfficiency(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Donor: tinyresnet solved on the default 8x8 mesh, persisted.
	_, donorTS := newTestServer(t, Config{Workers: 1, Store: st})
	if resp, body := postSolve(t, donorTS, `{"model":"tinyresnet","sa_iters":300,"seed":11}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("donor solve: %d %s", resp.StatusCode, body)
	}

	// Same graph on a 4x4 mesh. Cold reference runs on a storeless
	// server; the warm run shares the store. Each server owns a fresh
	// cost oracle, so its cost_memo_misses gauge after the single solve
	// is exactly that solve's exact-Evaluate count.
	req := `{"model":"tinyresnet","sa_iters":300,"seed":11,"hardware":{"mesh_w":4,"mesh_h":4}%s}`
	coldSrv, coldTS := newTestServer(t, Config{Workers: 1})
	respC, bodyC := postSolve(t, coldTS, fmt.Sprintf(req, ""))
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %d %s", respC.StatusCode, bodyC)
	}
	coldMisses := coldSrv.m.memoMisses.Value()

	warmSrv, warmTS := newTestServer(t, Config{Workers: 1, Store: st})
	respW, bodyW := postSolve(t, warmTS, fmt.Sprintf(req, `,"warm_start":true`))
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", respW.StatusCode, bodyW)
	}
	warmMisses := warmSrv.m.memoMisses.Value()
	if warmSrv.m.warmStarts.Value() != 1 {
		t.Fatalf("warm solve did not use the donor (warm_starts=%d)", warmSrv.m.warmStarts.Value())
	}

	var cold, warm SolveResponse
	if err := json.Unmarshal(bodyC, &cold); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyW, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.Report.Cycles <= 0 || warm.Report.Cycles <= 0 {
		t.Fatalf("cycles: cold %v, warm %v", cold.Report.Cycles, warm.Report.Cycles)
	}
	rel := math.Abs(float64(warm.Report.Cycles)-float64(cold.Report.Cycles)) / float64(cold.Report.Cycles)
	if rel > 0.02 {
		t.Fatalf("warm cycles %v vs cold %v: %.2f%% apart, want <=2%%",
			warm.Report.Cycles, cold.Report.Cycles, 100*rel)
	}
	if warmMisses*2 > coldMisses {
		t.Fatalf("warm start evaluated %v candidates exactly vs cold %v, want <=50%%",
			warmMisses, coldMisses)
	}
	t.Logf("cold: %v cycles, %v misses; warm: %v cycles, %v misses (%.1f%%)",
		cold.Report.Cycles, coldMisses, warm.Report.Cycles, warmMisses, 100*warmMisses/coldMisses)
}

// TestWarmStartColdWithoutStore pins the storeless-server behavior the
// request doc promises: warm_start=true on a server with no store (or no
// donor) solves cold and succeeds — the flag only changes the cache key.
func TestWarmStartColdWithoutStore(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postSolve(t, ts, `{"model":"tinyconv","sa_iters":80,"warm_start":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve without store: %d %s", resp.StatusCode, body)
	}
	if s.m.warmStarts.Value() != 0 {
		t.Fatalf("warm_starts = %d on a storeless server", s.m.warmStarts.Value())
	}

	// warm_start participates in the cache key: the cold spelling of the
	// same request is a distinct entry, not a cache hit.
	resp2, _ := postSolve(t, ts, `{"model":"tinyconv","sa_iters":80}`)
	if src := resp2.Header.Get("X-Adserve-Cache"); src != "miss" {
		t.Fatalf("cold spelling was %q, want miss (distinct key)", src)
	}
}
