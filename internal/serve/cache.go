package serve

import (
	"container/list"
	"sync"
)

// solveResult is one finished solve: the canonical response body served
// verbatim to every waiter and every later cache hit, so identical
// requests receive bit-identical bytes.
type solveResult struct {
	body   []byte
	digest string
}

// lruCache is a mutex-guarded LRU of solve results. The serving layer's
// working set is small (distinct (graph, config, seed) triples), so a
// plain list+map beats anything cleverer.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *solveResult
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*solveResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *lruCache) add(key string, res *solveResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
