// Package serve is the orchestration-as-a-service layer: a stdlib-only
// HTTP server that accepts workload graphs (the internal/modelio JSON
// format) plus a hardware spec and returns the full atomic-dataflow
// solution — schedule, mapping-derived Report, predicted cycles/energy
// and an optional execution trace.
//
// The serving pipeline is built from four pieces, in request order:
//
//   - a solution cache keyed by the canonical (graph digest, config
//     digest, seed) triple, so repeat queries cost a map lookup;
//   - singleflight deduplication, so N concurrent identical requests run
//     the search once and all receive bit-identical bytes;
//   - a bounded admission queue with backpressure — when the queue is
//     full /solve answers 429 with Retry-After instead of absorbing
//     unbounded work;
//   - a fixed worker pool running the anneal → schedule → map → simulate
//     pipeline through the public atomicflow facade, with per-request
//     deadlines threaded as context.Context into the search itself.
//
// Orchestration is deterministic for a fixed request (pinned by the
// cross-zoo determinism matrix), which is what makes caching and
// deduplication sound: a solution is a pure function of its key.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	atomicflow "github.com/atomic-dataflow/atomicflow"
	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/fleet"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/obs/dash"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/store"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// Workers is the solve worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU solution cache (default 256).
	CacheEntries int
	// RequestTimeout is the per-request deadline, also the cap for
	// request-supplied timeout_ms (default 2m).
	RequestTimeout time.Duration
	// DefaultChains is the annealing portfolio width applied to requests
	// that omit "chains" (default 1, the sequential search). Applied
	// during request normalization, so it participates in the cache key.
	DefaultChains int
	// VerifyDelta forces incremental-vs-full search cross-checking on for
	// every request (see atomicflow.Options.VerifyDelta). A correctness
	// harness, not part of the cache key — it never changes solutions.
	VerifyDelta bool
	// DefaultSurrogate applies the two-tier learned cost oracle to
	// requests that omit "surrogate" (default off). Applied during
	// request normalization, so it participates in the cache key: unlike
	// VerifyDelta, the surrogate changes which candidates the search
	// evaluates, so surrogate-on and -off entries must stay distinct. The
	// server keeps one long-lived model trained from the shared oracle's
	// whole evaluation stream regardless of this default; the flag only
	// selects whether requests use it to filter.
	DefaultSurrogate bool
	// MaxBodyBytes bounds the /solve request body (default 8 MiB).
	MaxBodyBytes int64
	// Fleet, when non-nil, distributes non-surrogate portfolio solves
	// across the coordinator's registered workers; a fleet that is
	// empty, busy or lost mid-solve falls back to the in-process search
	// (which is bit-identical for an undegraded fleet, so the cache
	// stays sound). The server takes over the coordinator's event feed
	// for its dashboard. The caller owns the coordinator's lifecycle.
	Fleet *fleet.Coordinator
	// Store, when non-nil, persists every finished solve: repeat
	// requests after a restart are served the stored bytes without
	// re-solving, and warm-start requests seed their search from the
	// best related record (same graph, different key). The caller owns
	// the store's directory.
	Store *store.Store
	// DefaultWarmStart applies warm-starting to requests that omit
	// "warm_start" (default off). Like DefaultSurrogate it participates
	// in the cache key — a warm-started search explores a different
	// trajectory, so warm and cold entries must stay distinct.
	DefaultWarmStart bool
	// Hardware is the base accelerator model requests override (default
	// atomicflow.DefaultHardware).
	Hardware *atomicflow.HardwareConfig
	// Metrics receives the serving metrics and is exported at /metrics
	// (default: a fresh registry).
	Metrics *obs.Registry
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 256
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 2 * time.Minute
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 8 << 20
}

// flight is one in-progress solve shared by every concurrent request
// with the same key. Waiters hold a reference; when the last waiter
// abandons (client gone, deadline hit) the flight's context is cancelled
// so the search stops instead of warming a cache nobody asked to keep.
type flight struct {
	done     chan struct{}
	res      *solveResult
	err      error
	waiters  int
	finished bool
	cancel   context.CancelFunc
}

type job struct {
	req *Request
	fl  *flight
	ctx context.Context
}

// Server is the orchestration service. Create with New, mount Handler on
// an http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	base    atomicflow.HardwareConfig
	oracle  atomicflow.CostOracle // shared across requests (sharded cache)
	surr    *atomicflow.SurrogateModel
	fleet   *fleet.Coordinator // nil: all solves run in-process
	store   *store.Store       // nil: no persistence, no warm starts
	dash    *dash.Store
	cache   *lruCache
	queue   chan *job
	wg      sync.WaitGroup
	baseCtx context.Context
	stopAll context.CancelFunc
	started time.Time

	mu       sync.Mutex
	flights  map[string]*flight
	draining bool

	busyCount atomic.Int64
	m         serveMetrics

	// solveHook, when non-nil, runs at the top of every solve on the
	// worker goroutine. Tests use it to hold a worker mid-job and make
	// backpressure and drain scenarios deterministic.
	solveHook func()
}

type serveMetrics struct {
	requests   *obs.Counter
	rejected   *obs.Counter
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	dedup      *obs.Counter
	solves     *obs.Counter
	solveErrs  *obs.Counter
	hitRatio   *obs.Gauge
	queueDepth *obs.Gauge
	queueCap   *obs.Gauge
	workers    *obs.Gauge
	busy       *obs.Gauge
	uptime     *obs.Gauge
	reqLatency *obs.Histogram
	solveTime  *obs.Histogram

	// Cost-oracle cache visibility (updated after every solve).
	memoEntries *obs.Gauge
	memoHits    *obs.Gauge
	memoMisses  *obs.Gauge
	memoDedups  *obs.Gauge
	memoSampled *obs.Gauge

	// Fleet and persistent-store visibility (zero-valued and inert when
	// the server runs without a fleet or store).
	fleetWorkers   *obs.Gauge
	fleetSolves    *obs.Counter
	fleetFallbacks *obs.Counter
	storeHits      *obs.Counter
	storeRecords   *obs.Gauge
	warmStarts     *obs.Counter
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	base := atomicflow.DefaultHardware()
	if cfg.Hardware != nil {
		base = *cfg.Hardware
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		base:    base,
		oracle:  atomicflow.NewCostOracle(),
		fleet:   cfg.Fleet,
		store:   cfg.Store,
		cache:   newLRU(cfg.cacheEntries()),
		queue:   make(chan *job, cfg.queueDepth()),
		baseCtx: ctx,
		stopAll: cancel,
		started: time.Now(),
		flights: make(map[string]*flight),
	}
	lat := obs.ExpBuckets(1e-4, 4, 12) // 100µs .. ~400s
	s.m = serveMetrics{
		requests:   reg.Counter("serve_requests_total"),
		rejected:   reg.Counter("serve_queue_rejected_total"),
		cacheHits:  reg.Counter("serve_cache_hits_total"),
		cacheMiss:  reg.Counter("serve_cache_misses_total"),
		dedup:      reg.Counter("serve_dedup_joined_total"),
		solves:     reg.Counter("serve_solves_total"),
		solveErrs:  reg.Counter("serve_solve_errors_total"),
		hitRatio:   reg.Gauge("serve_cache_hit_ratio"),
		queueDepth: reg.Gauge("serve_queue_depth"),
		queueCap:   reg.Gauge("serve_queue_capacity"),
		workers:    reg.Gauge("serve_workers"),
		busy:       reg.Gauge("serve_workers_busy"),
		uptime:     reg.Gauge("serve_uptime_seconds"),
		reqLatency: reg.Histogram("serve_request_seconds", lat),
		solveTime:  reg.Histogram("serve_solve_seconds", lat),

		memoEntries: reg.Gauge("cost_memo_entries"),
		memoHits:    reg.Gauge("cost_memo_hits"),
		memoMisses:  reg.Gauge("cost_memo_misses"),
		memoDedups:  reg.Gauge("cost_memo_dedups"),
		memoSampled: reg.Gauge("cost_memo_sampled"),

		fleetWorkers:   reg.Gauge("serve_fleet_workers"),
		fleetSolves:    reg.Counter("serve_fleet_solves_total"),
		fleetFallbacks: reg.Counter("serve_fleet_fallbacks_total"),
		storeHits:      reg.Counter("serve_store_hits_total"),
		storeRecords:   reg.Gauge("serve_store_records"),
		warmStarts:     reg.Counter("serve_warm_starts_total"),
	}
	s.m.queueCap.SetInt(int64(cfg.queueDepth()))
	s.m.workers.SetInt(int64(cfg.workers()))
	// Fleet identity: a constant-1 build_info gauge carrying the binary's
	// version labels (Prometheus convention), so dashboards and scrapes
	// can tell one deploy from another.
	reg.Gauge(buildInfoName()).Set(1)
	// The live dashboard's stores. Always on: feeding them costs ring
	// appends on already-slow paths (request admission, solve lifecycle,
	// exchange barriers), and bounded memory. Mounted at /debug/dash.
	s.dash = dash.NewStore(dash.Config{})
	// The fleet coordinator's lifecycle feed drives the dashboard's
	// fleet panel; worker join/loss also refreshes the worker gauge.
	if s.fleet != nil {
		s.m.fleetWorkers.SetInt(int64(s.fleet.NumWorkers()))
		s.fleet.SetOnEvent(func(ev fleet.Event) {
			s.m.fleetWorkers.SetInt(int64(s.fleet.NumWorkers()))
			kind := dash.EvFleet
			if ev.Type == "solve_degraded" {
				kind = dash.EvDegraded
			}
			detail := ev.Type
			if ev.Detail != "" {
				detail += ": " + ev.Detail
			}
			s.dash.Publish(kind, "", ev.Worker, detail)
		})
	}
	if s.store != nil {
		s.m.storeRecords.SetInt(int64(s.store.Len()))
	}
	// One long-lived surrogate trains from every exact evaluation the
	// shared oracle computes, across all requests — training is a cheap
	// rank-1 update on the miss path only, and whether a given request
	// *uses* the model to filter is its own (cache-keyed) choice.
	s.surr = atomicflow.NewSurrogateModel()
	s.surr.Instrument(reg)
	cost.AttachSampler(s.oracle, s.surr)
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the server's registry (exported at /metrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Dash returns the server's live-dashboard store (served at /debug/dash).
func (s *Server) Dash() *dash.Store { return s.dash }

// buildInfoName assembles the labeled build_info gauge name: the
// binary's module version (or VCS revision when stamped), the Go
// toolchain and GOMAXPROCS. Computed once at startup — none of these
// change while the process lives.
func buildInfoName() string {
	version := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
				version = kv.Value[:12]
			}
		}
	}
	return fmt.Sprintf(`build_info{go_version=%q,gomaxprocs="%d",version=%q}`,
		runtime.Version(), runtime.GOMAXPROCS(0), version)
}

// solveID is the dashboard's short handle for a request: enough key
// prefix to be unique in any realistic event window, short enough to
// scan in a table.
func solveID(req *Request) string {
	if k := req.Key(); len(k) >= 12 {
		return k[:12]
	}
	return req.Key()
}

// modelName labels a request for humans: the zoo name, or the inline
// graph's own name.
func modelName(req *Request) string {
	if req.Model != "" {
		return req.Model
	}
	if req.graph != nil && req.graph.Name != "" {
		return req.graph.Name
	}
	return "inline"
}

// Shutdown drains the server: new work is refused with 503, queued and
// in-flight solves complete and their waiters are answered. If ctx
// expires first, the remaining solves are cancelled (their waiters see a
// cancellation error) and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // intake is guarded by draining under mu
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stopAll()
		<-done
		return ctx.Err()
	}
}

// lookup returns a cached result, or joins/starts a flight for key.
// Exactly one of res, fl is non-nil unless err is set; errQueueFull and
// errDraining report backpressure and shutdown.
var (
	errQueueFull = fmt.Errorf("serve: queue full")
	errDraining  = fmt.Errorf("serve: draining")
)

func (s *Server) lookup(req *Request) (*solveResult, string, *flight, error) {
	if res, ok := s.cache.get(req.Key()); ok {
		s.m.cacheHits.Inc()
		s.updateHitRatio()
		s.dash.Publish(dash.EvCached, solveID(req), modelName(req), "")
		return res, "hit", nil, nil
	}
	// The persistent store outlives restarts: a record under this exact
	// key holds the bytes a previous process served, so answer with them
	// (and backfill the in-memory LRU) instead of re-solving.
	if s.store != nil {
		if rec, ok := s.store.Get(req.Key()); ok && len(rec.Body) > 0 {
			res := &solveResult{body: rec.Body, digest: rec.Digest}
			s.cache.add(req.Key(), res)
			s.m.cacheHits.Inc()
			s.m.storeHits.Inc()
			s.updateHitRatio()
			s.dash.Publish(dash.EvStoreHit, solveID(req), modelName(req), "")
			return res, "store", nil, nil
		}
	}
	s.m.cacheMiss.Inc()
	s.updateHitRatio()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, "", nil, errDraining
	}
	if fl, ok := s.flights[req.Key()]; ok {
		fl.waiters++
		s.m.dedup.Inc()
		s.dash.Publish(dash.EvDedup, solveID(req), modelName(req),
			fmt.Sprintf("waiters=%d", fl.waiters))
		return nil, "", fl, nil
	}
	jctx, jcancel := context.WithCancel(s.baseCtx)
	fl := &flight{done: make(chan struct{}), waiters: 1, cancel: jcancel}
	select {
	case s.queue <- &job{req: req, fl: fl, ctx: jctx}:
		s.flights[req.Key()] = fl
		s.m.queueDepth.SetInt(int64(len(s.queue)))
		s.dash.Publish(dash.EvAdmitted, solveID(req), modelName(req),
			fmt.Sprintf("queue=%d", len(s.queue)))
		return nil, "", fl, nil
	default:
		jcancel()
		s.m.rejected.Inc()
		s.dash.Publish(dash.EvRejected, solveID(req), modelName(req), "queue full")
		return nil, "", nil, errQueueFull
	}
}

// abandon drops one waiter from a flight; the last waiter out cancels
// the underlying search and unlinks the flight so a later identical
// request starts fresh instead of joining a cancelled solve.
func (s *Server) abandon(key string, fl *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.waiters--
	if fl.waiters > 0 || fl.finished {
		return
	}
	fl.cancel()
	if s.flights[key] == fl {
		delete(s.flights, key)
	}
}

func (s *Server) updateHitRatio() {
	hits := float64(s.m.cacheHits.Value())
	total := hits + float64(s.m.cacheMiss.Value())
	if total > 0 {
		s.m.hitRatio.Set(hits / total)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.m.queueDepth.SetInt(int64(len(s.queue)))
		s.m.busy.SetInt(s.busyCount.Add(1))
		res, err := s.runJob(jb)
		s.m.busy.SetInt(s.busyCount.Add(-1))
		s.finish(jb, res, err)
	}
}

func (s *Server) runJob(jb *job) (*solveResult, error) {
	if s.solveHook != nil {
		s.solveHook()
	}
	if err := jb.ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: abandoned before start: %w", err)
	}
	span := obs.StartSpan(s.m.solveTime)
	defer span.End()
	s.m.solves.Inc()

	req := jb.req
	id, model := solveID(req), modelName(req)
	hw := req.hardware(s.base)
	hw.Oracle = s.oracle
	opt := atomicflow.Options{
		Batch:            req.Batch,
		Hardware:         &hw,
		Seed:             req.Seed,
		SAIters:          req.SAIters,
		Chains:           req.Chains,
		MaxTilesPerLayer: req.MaxTiles,
		VerifyDelta:      req.VerifyDelta || s.cfg.VerifyDelta,
		Surrogate:        *req.Surrogate,
		SurrogateModel:   s.surr,
		Progress:         s.dashProgress(id, model),
		Context:          jb.ctx,
	}
	if req.Mode == "greedy" {
		opt.Mode = schedule.Greedy
	}
	var traceBuf bytes.Buffer
	if req.Trace {
		opt.TraceWriter = &traceBuf
	}
	// Warm start: seed the search from the store's best related record —
	// the same graph solved under a different key (typically different
	// hardware). No donor yet means the request simply solves cold.
	if *req.WarmStart && s.store != nil {
		if donor, ok := s.store.Related(req.graphHash, req.Key()); ok && len(donor.Parts) > 0 {
			opt.WarmStart = donor.Parts
			s.m.warmStarts.Inc()
			s.dash.Publish(dash.EvWarmStart, id, model,
				fmt.Sprintf("donor %.12s (%s)", donor.Key, donor.Model))
		}
	}
	s.dash.SolveStarted(id, model, req.Chains)
	ready0 := s.surr.Stats().SegmentsReady
	start := time.Now()
	sol, err := atomicflow.OrchestrateWith(req.graph, opt, s.searchFunc(req))
	s.publishOracleGauges()
	// The learned oracle's trust gate is fleet state, not request state:
	// surface every readiness flip as an event so operators can correlate
	// solve-behavior changes with the model coming (or falling) online.
	if ready1 := s.surr.Stats().SegmentsReady; ready1 != ready0 {
		s.dash.Publish(dash.EvSurrogate, id, model,
			fmt.Sprintf("segments_ready %d -> %d", ready0, ready1))
	}
	if err != nil {
		s.m.solveErrs.Inc()
		s.dash.SolveFinished(dash.Session{
			ID: id, Model: model, Chains: req.Chains,
			DurMS: time.Since(start).Milliseconds(), Error: err.Error(),
		})
		return nil, err
	}
	resp := SolveResponse{
		Model:       req.Model,
		Digest:      sol.Digest(),
		Atoms:       sol.Atoms,
		Rounds:      sol.Rounds,
		AtomCycleCV: sol.AtomCycleCV,
		SearchMS:    float64(sol.SearchTime.Microseconds()) / 1e3,
		Report:      sol.Report,
	}
	if req.Trace {
		resp.Trace = json.RawMessage(traceBuf.Bytes())
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.m.solveErrs.Inc()
		return nil, fmt.Errorf("serve: encode response: %w", err)
	}
	res := &solveResult{body: body, digest: resp.Digest}
	s.cache.add(req.Key(), res)
	// Persist the finished solve: the exact bytes for replay after a
	// restart, plus the solved partitions as warm-start seed material
	// for related requests. Persistence failure is a log-free downgrade
	// to cache-only operation, never a request failure.
	if s.store != nil {
		if perr := s.store.Put(store.Record{
			Key:       req.Key(),
			GraphHash: req.graphHash,
			Model:     model,
			Digest:    resp.Digest,
			Body:      body,
			Parts:     sol.Partitions(),
			SavedUnix: time.Now().Unix(),
		}); perr == nil {
			s.m.storeRecords.SetInt(int64(s.store.Len()))
		}
	}
	s.dash.SolveFinished(dash.Session{
		ID: id, Model: model, Chains: req.Chains,
		DurMS:  time.Since(start).Milliseconds(),
		Digest: resp.Digest, Rounds: sol.Rounds, Atoms: sol.Atoms,
		FinalCV: sol.AtomCycleCV,
	})
	return res, nil
}

// searchFunc selects the atom-generation search for one request: the
// distributed fleet when one is configured and the request is
// distributable, otherwise nil (OrchestrateWith runs anneal.SA
// in-process). Surrogate solves stay local — they are pinned to the
// server's long-lived learned model, which cannot be shipped — as do
// VerifyDelta solves, whose cross-checking harness is in-process only.
// Any fleet failure (no workers, a concurrent distributed solve,
// workers lost before setup) falls back to the in-process portfolio:
// its result is bit-identical to an undegraded fleet solve, so the
// cache stays sound either way.
func (s *Server) searchFunc(req *Request) atomicflow.SearchFunc {
	if s.fleet == nil || *req.Surrogate || req.VerifyDelta || s.cfg.VerifyDelta {
		return nil
	}
	return func(g *graph.Graph, cfg engine.Config, df engine.Dataflow, aopt anneal.Options) (anneal.Result, error) {
		ctx := aopt.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		res, err := s.fleet.Solve(ctx, g, cfg, df, aopt)
		if err != nil {
			if ctx.Err() != nil {
				return anneal.Result{}, err
			}
			s.m.fleetFallbacks.Inc()
			s.dash.Publish(dash.EvFleet, solveID(req), modelName(req),
				fmt.Sprintf("fleet unavailable, solving in-process: %v", err))
			return anneal.SA(g, cfg, df, aopt), nil
		}
		s.m.fleetSolves.Inc()
		return res, nil
	}
}

// dashProgress adapts the annealer's per-chain progress samples into the
// dashboard's stores: every batch lands in the active solve's series,
// and multi-chain exchange barriers additionally publish a
// chain_exchange event with the barrier's adoption count. Pure
// observation — the hook reads the samples it is handed and never
// touches search state.
func (s *Server) dashProgress(id, model string) func([]atomicflow.SearchSample) {
	return func(samples []atomicflow.SearchSample) {
		pts := make([]dash.ChainSample, len(samples))
		adopted, final := 0, false
		for i, sm := range samples {
			pts[i] = dash.ChainSample{
				Chain: sm.Chain, Iters: sm.Iters, Temp: sm.Temp,
				BestE: sm.BestE, BestCV: sm.CV(), Adopted: sm.Adopted,
			}
			if sm.Adopted {
				adopted++
			}
			if sm.Final {
				final = true
			}
		}
		s.dash.SolveProgress(id, pts)
		if len(samples) > 1 && !final {
			s.dash.Publish(dash.EvExchange, id, model,
				fmt.Sprintf("iters=%d adopted=%d", samples[0].Iters, adopted))
		}
	}
}

// publishOracleGauges refreshes the cost_memo_* gauges from the shared
// oracle — production visibility into the evaluation cache that was
// previously a black box. Gauges, not counters: the oracle owns the
// monotone values and the registry mirrors its latest reading.
func (s *Server) publishOracleGauges() {
	if st, ok := cost.StatsOf(s.oracle); ok {
		s.m.memoHits.SetInt(st.Hits)
		s.m.memoMisses.SetInt(st.Misses)
		s.m.memoDedups.SetInt(st.Dedups)
		s.m.memoSampled.SetInt(st.Sampled)
	}
	if l, ok := s.oracle.(interface{ Len() int }); ok {
		s.m.memoEntries.SetInt(int64(l.Len()))
	}
}

// finish publishes a flight's outcome and wakes its waiters.
func (s *Server) finish(jb *job, res *solveResult, err error) {
	s.mu.Lock()
	jb.fl.res, jb.fl.err = res, err
	jb.fl.finished = true
	if s.flights[jb.req.Key()] == jb.fl {
		delete(s.flights, jb.req.Key())
	}
	s.mu.Unlock()
	jb.fl.cancel() // release the context's resources
	close(jb.fl.done)
}

// SolveResponse is the /solve response body. The same marshaled bytes
// are served to every waiter of a flight and every later cache hit;
// cache status travels in the X-Adserve-Cache header so bodies stay
// bit-identical.
type SolveResponse struct {
	Model       string            `json:"model,omitempty"`
	Digest      string            `json:"digest"`
	Atoms       int               `json:"atoms"`
	Rounds      int               `json:"rounds"`
	AtomCycleCV float64           `json:"atom_cycle_cv"`
	SearchMS    float64           `json:"search_ms"`
	Report      atomicflow.Report `json:"report"`
	Trace       json.RawMessage   `json:"trace,omitempty"`
}
