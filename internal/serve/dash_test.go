package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/obs/dash"
)

// TestDashSolveLifecycle drives a real solve through the server with an
// SSE client attached and asserts the dashboard's promise: the stream
// delivers solve_started, chain_exchange and solve_finished for it, the
// session lands in history with the response's digest, and the active
// set is empty again afterwards.
func TestDashSolveLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// Attach SSE before solving so nothing can be missed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/dash/events", nil)
	res, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatalf("dial SSE: %v", err)
	}
	defer res.Body.Close()
	types := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(res.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				types <- line[7:]
			}
		}
		close(types)
	}()

	resp, body := postSolve(t, ts, `{"model":"tinyresnet","sa_iters":200,"chains":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// The event stream must carry the full lifecycle, in order.
	want := []string{string(dash.EvStarted), string(dash.EvExchange), string(dash.EvFinished)}
	deadline := time.After(10 * time.Second)
	for _, w := range want {
		for {
			select {
			case ty, ok := <-types:
				if !ok {
					t.Fatalf("SSE stream closed before %q", w)
				}
				if ty == w {
					goto next
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q on the event stream", w)
			}
		}
	next:
	}

	// sessions.json records the solve with the digest the client got.
	var sessDoc struct {
		Sessions []dash.Session `json:"sessions"`
	}
	getJSON(t, ts, "/debug/dash/sessions.json", &sessDoc)
	if len(sessDoc.Sessions) != 1 {
		t.Fatalf("history has %d sessions, want 1", len(sessDoc.Sessions))
	}
	sess := sessDoc.Sessions[0]
	if sess.Digest != sr.Digest {
		t.Fatalf("session digest %q != response digest %q", sess.Digest, sr.Digest)
	}
	if sess.Model != "tinyresnet" || sess.Chains != 2 || sess.Error != "" {
		t.Fatalf("session = %+v", sess)
	}
	if sess.Rounds != sr.Rounds {
		t.Fatalf("session rounds %d != response rounds %d", sess.Rounds, sr.Rounds)
	}

	// Nothing is left active, and the request-stage events were
	// published too (the admission event preceded the solve).
	var state dash.State
	getJSON(t, ts, "/debug/dash/state.json", &state)
	if len(state.Active) != 0 {
		t.Fatalf("%d solves still active", len(state.Active))
	}
	found := false
	for _, ev := range s.Dash().Recent(0) {
		if ev.Type == dash.EvAdmitted {
			found = true
		}
	}
	if !found {
		t.Fatal("no request_admitted event in the ring")
	}
}

// TestDashConcurrentSolvesTracked mirrors the CI smoke job in-process:
// two different solves run concurrently and both must appear in session
// history with distinct ids; cache hits and dedup joins publish their
// own request-stage events instead of new sessions.
func TestDashConcurrentSolvesTracked(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	bodies := []string{
		`{"model":"tinyconv","sa_iters":120,"chains":2}`,
		`{"model":"tinyresnet","sa_iters":120,"chains":2}`,
	}
	var wg sync.WaitGroup
	for _, b := range bodies {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			resp, body := postSolve(t, ts, b)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("solve %s: %d %s", b, resp.StatusCode, body)
			}
		}(b)
	}
	wg.Wait()

	var sessDoc struct {
		Sessions []dash.Session `json:"sessions"`
	}
	getJSON(t, ts, "/debug/dash/sessions.json", &sessDoc)
	if len(sessDoc.Sessions) != 2 {
		t.Fatalf("history has %d sessions, want 2", len(sessDoc.Sessions))
	}
	ids := map[string]bool{}
	models := map[string]bool{}
	for _, sess := range sessDoc.Sessions {
		ids[sess.ID] = true
		models[sess.Model] = true
		if sess.Digest == "" || sess.DurMS < 0 {
			t.Fatalf("bad session %+v", sess)
		}
	}
	if len(ids) != 2 || !models["tinyconv"] || !models["tinyresnet"] {
		t.Fatalf("sessions = %+v", sessDoc.Sessions)
	}

	// A repeat request is a cache hit: one request_cached event, no new
	// session.
	resp, _ := postSolve(t, ts, bodies[0])
	if resp.Header.Get("X-Adserve-Cache") != "hit" {
		t.Fatalf("repeat was %q, want hit", resp.Header.Get("X-Adserve-Cache"))
	}
	cached := 0
	for _, ev := range s.Dash().Recent(0) {
		if ev.Type == dash.EvCached {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("%d request_cached events, want 1", cached)
	}
	getJSON(t, ts, "/debug/dash/sessions.json", &sessDoc)
	if len(sessDoc.Sessions) != 2 {
		t.Fatalf("cache hit grew history to %d sessions", len(sessDoc.Sessions))
	}
}

// TestServeMetricsLint scrapes the live /metrics endpoint after real
// traffic and feeds the body through the promtool-equivalent linter —
// the satellite gate that the exporter (including the hand-formatted
// multi-label build_info) stays spec-clean.
func TestServeMetricsLint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, body := postSolve(t, ts, `{"model":"tinyconv","sa_iters":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := obs.LintPrometheus(res.Body); err != nil {
		t.Fatalf("/metrics failed lint: %v", err)
	}
}

// TestBuildInfoAndUptimeExported pins satellite 1: build_info carries
// its labels on the text exposition and serve_uptime_seconds advances
// between scrapes.
func TestBuildInfoAndUptimeExported(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	scrape := func() string {
		res, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(res.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	out := scrape()
	for _, want := range []string{"build_info{", "go_version=", "gomaxprocs=", "serve_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	uptime := func(doc string) float64 {
		for _, line := range strings.Split(doc, "\n") {
			if strings.HasPrefix(line, "serve_uptime_seconds ") {
				var v float64
				if _, err := fmt.Sscan(line[len("serve_uptime_seconds "):], &v); err == nil {
					return v
				}
			}
		}
		t.Fatalf("no serve_uptime_seconds sample:\n%s", doc)
		return 0
	}
	u1 := uptime(out)
	// Uptime must advance between scrapes. Poll instead of sleeping a
	// fixed interval: the test waits exactly as long as the clock needs.
	waitFor(t, func() bool { return uptime(scrape()) > u1 })

	// /metrics.json mirrors both.
	var snap obs.Snapshot
	getJSON(t, ts, "/metrics.json", &snap)
	if snap.Gauges["serve_uptime_seconds"] <= 0 {
		t.Fatalf("metrics.json uptime = %v", snap.Gauges["serve_uptime_seconds"])
	}
	foundInfo := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "build_info{") && v == 1 {
			foundInfo = true
		}
	}
	if !foundInfo {
		t.Fatalf("metrics.json missing build_info gauge: %v", snap.Gauges)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	res, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}
