package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRequestDeadlineCancelsSearch sends a request whose deadline cannot
// be met and asserts (a) the caller gets a prompt 504, (b) the abandoned
// search actually stops (the worker frees up far sooner than the full
// search would take), and (c) no goroutines leak across the whole
// server lifecycle.
func TestRequestDeadlineCancelsSearch(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())

	// nasnet at full effort takes ~700ms+; a 50ms deadline must abandon.
	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"model":"nasnet","timeout_ms":50}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > time.Second {
		t.Errorf("504 took %v, want prompt deadline response", elapsed)
	}

	// The last waiter abandoned the flight, so its context was cancelled
	// and the worker must come free without finishing the search.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flights) == 0 && s.busyCount.Load() == 0
	})

	// A fresh request for the same key must start a new flight (not join
	// the cancelled one) and succeed.
	resp2, body := postSolve(t, ts, `{"model":"tinyconv","sa_iters":60}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: %d %s", resp2.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()

	// Goroutine accounting: workers, flights and HTTP plumbing must all
	// be gone. Allow slack for runtime/test goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDeadlineCancelsInflight covers the impatient-drain path:
// when Shutdown's context expires, in-flight searches are cancelled and
// their waiters receive a cancellation error rather than hanging.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	respc := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json",
			strings.NewReader(`{"model":"nasnet"}`))
		if err != nil {
			respc <- -1
			return
		}
		resp.Body.Close()
		respc <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.busyCount.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	select {
	case code := <-respc:
		// The waiter must be answered (504 for the cancelled search).
		if code != http.StatusGatewayTimeout {
			t.Errorf("in-flight request answered %d, want 504", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight waiter hung after forced shutdown")
	}
}
