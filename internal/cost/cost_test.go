package cost

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// randTask draws a random but well-formed engine task.
func randTask(rng *rand.Rand) engine.Task {
	kinds := []graph.OpKind{
		graph.OpConv, graph.OpDepthwiseConv, graph.OpFC,
		graph.OpPool, graph.OpEltwise, graph.OpActivation, graph.OpGlobalPool,
	}
	t := engine.Task{
		Kind:     kinds[rng.Intn(len(kinds))],
		Hp:       1 + rng.Intn(64),
		Wp:       1 + rng.Intn(64),
		Ci:       1 + rng.Intn(256),
		Cop:      1 + rng.Intn(256),
		Kh:       1 + rng.Intn(3),
		Kw:       1 + rng.Intn(3),
		Stride:   1 + rng.Intn(2),
		Replicas: rng.Intn(4),
	}
	if t.Kind == graph.OpFC {
		t.Hp, t.Wp, t.Kh, t.Kw, t.Stride = 1, 1, 1, 1, 1
	}
	return t
}

// TestMemoMatchesDirect is the cache-correctness property: for randomized
// tasks across every dataflow, the memoized oracle returns a Cost
// byte-identical to direct engine.Evaluate — both on the miss that fills
// the cache and on the hit that reads it back.
func TestMemoMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	memo := NewMemo(Direct{})
	variants := []struct {
		cfg engine.Config
		df  engine.Dataflow
	}{
		{engine.Default(), engine.KCPartition},
		{engine.Default(), engine.YXPartition},
		{engine.FlexDefault(), engine.FlexPartition},
	}
	for i := 0; i < 3000; i++ {
		v := variants[rng.Intn(len(variants))]
		task := randTask(rng)
		want := engine.Evaluate(v.cfg, v.df, task)
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("miss path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("hit path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
	}
	st := memo.Stats()
	if st.Hits < 3000 {
		t.Errorf("hits = %d, want >= 3000 (every task re-evaluated once)", st.Hits)
	}
	if st.Evaluations != st.Hits+st.Misses {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestMemoConcurrent hammers one memo from many goroutines over an
// overlapping task set; run under -race this checks the striped locking,
// and every result must still equal the direct evaluation.
func TestMemoConcurrent(t *testing.T) {
	cfg := engine.Default()
	tasks := make([]engine.Task, 200)
	rng := rand.New(rand.NewSource(11))
	for i := range tasks {
		tasks[i] = randTask(rng)
	}
	memo := NewMemo(Direct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				task := tasks[r.Intn(len(tasks))]
				df := engine.Dataflow(r.Intn(2)) // KC-P or YX-P
				got := memo.Evaluate(cfg, df, task)
				if want := engine.Evaluate(cfg, df, task); got != want {
					select {
					case errs <- "memo diverged from direct under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := memo.Stats()
	if st.Evaluations != 8*2000 {
		t.Errorf("evaluations = %d, want %d", st.Evaluations, 8*2000)
	}
	if st.Misses > int64(len(tasks)*2) {
		t.Errorf("misses = %d, want <= %d (one per unique key, modulo benign races)",
			st.Misses, len(tasks)*2)
	}
	if memo.Len() > len(tasks)*2 {
		t.Errorf("cache holds %d entries for %d unique keys", memo.Len(), len(tasks)*2)
	}
}

// blockingOracle parks every evaluation until release is closed, so a
// test can pile concurrent misses of one key onto a single in-flight
// leader. calls counts how often the engine model actually ran.
type blockingOracle struct {
	entered chan struct{}
	release chan struct{}
	calls   int32
	panics  bool
}

func (b *blockingOracle) Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost {
	atomic.AddInt32(&b.calls, 1)
	b.entered <- struct{}{}
	<-b.release
	if b.panics {
		panic("engine model failure")
	}
	return engine.Evaluate(cfg, df, t)
}

// TestMemoDedup pins the singleflight contract: N goroutines missing the
// same key concurrently run the engine model exactly once — one miss, and
// N-1 dedup joins that all observe the leader's result.
func TestMemoDedup(t *testing.T) {
	const joiners = 7
	b := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{})}
	memo := NewMemo(b)
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}
	want := engine.Evaluate(cfg, engine.KCPartition, task)

	results := make(chan engine.Cost, joiners+1)
	for i := 0; i < joiners+1; i++ {
		go func() { results <- memo.Evaluate(cfg, engine.KCPartition, task) }()
	}
	<-b.entered // the leader is inside the engine model
	// Wait until every other goroutine has parked on the in-flight call;
	// Dedups is incremented before blocking, so it is the join count.
	for memo.Stats().Dedups < joiners {
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	for i := 0; i < joiners+1; i++ {
		if got := <-results; got != want {
			t.Fatalf("result %d = %+v, want %+v", i, got, want)
		}
	}
	st := memo.Stats()
	if st.Misses != 1 || st.Dedups != joiners || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss, %d dedup joins, 0 hits", st, joiners)
	}
	if st.Evaluations != joiners+1 {
		t.Errorf("evaluations = %d, want %d (every caller counted once)", st.Evaluations, joiners+1)
	}
	if b.calls != 1 {
		t.Errorf("engine model ran %d times, want 1", b.calls)
	}
	// Post-dedup reads are plain cache hits.
	if got := memo.Evaluate(cfg, engine.KCPartition, task); got != want {
		t.Fatalf("post-dedup hit = %+v, want %+v", got, want)
	}
	if st := memo.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d, want 1 after the dedup settled", st.Hits)
	}
}

// TestMemoDedupPanic checks a panicking leader wakes its joiners with the
// same panic value and unregisters the in-flight entry, so a later retry
// re-runs the engine model instead of deadlocking or caching garbage.
func TestMemoDedupPanic(t *testing.T) {
	b := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{}), panics: true}
	memo := NewMemo(b)
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}

	recovered := make(chan any, 2)
	eval := func() {
		defer func() { recovered <- recover() }()
		memo.Evaluate(cfg, engine.KCPartition, task)
	}
	go eval()
	<-b.entered
	go eval()
	for memo.Stats().Dedups < 1 {
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	for i := 0; i < 2; i++ {
		if r := <-recovered; r != "engine model failure" {
			t.Fatalf("caller %d recovered %v, want the oracle's panic value", i, r)
		}
	}
	// The failed flight must not be cached: a retry evaluates again.
	b.panics = false
	b.release = make(chan struct{})
	close(b.release)
	done := make(chan engine.Cost, 1)
	go func() { done <- memo.Evaluate(cfg, engine.KCPartition, task) }()
	<-b.entered
	if got, want := <-done, engine.Evaluate(cfg, engine.KCPartition, task); got != want {
		t.Fatalf("retry = %+v, want %+v", got, want)
	}
	if b.calls != 2 {
		t.Errorf("engine model ran %d times, want 2 (failed flight + retry)", b.calls)
	}
}

// TestInstrumentedStats checks the full Default() stack reports the
// evaluations/hits/misses triple and the Sub/HitRate helpers.
func TestInstrumentedStats(t *testing.T) {
	orc := Default()
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}
	for i := 0; i < 10; i++ {
		orc.Evaluate(cfg, engine.KCPartition, task)
	}
	st := orc.Stats()
	if st.Evaluations != 10 || st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 10 evaluations, 9 hits, 1 miss", st)
	}
	if got := st.HitRate(); got != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
	prev := st
	orc.Evaluate(cfg, engine.YXPartition, task)
	d := orc.Stats().Sub(prev)
	if d.Evaluations != 1 || d.Misses != 1 || d.Hits != 0 {
		t.Errorf("delta = %+v, want 1 evaluation / 1 miss", d)
	}
}

// TestOrResolution pins the nil-oracle default: consumers get a fresh
// memoized oracle, and a provided oracle passes through unchanged.
func TestOrResolution(t *testing.T) {
	if _, ok := Or(nil).(*Memo); !ok {
		t.Errorf("Or(nil) = %T, want *Memo", Or(nil))
	}
	d := Direct{}
	if got := Or(d); got != Oracle(d) {
		t.Errorf("Or(Direct{}) did not pass through")
	}
}
