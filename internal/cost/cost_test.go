package cost

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// randTask draws a random but well-formed engine task.
func randTask(rng *rand.Rand) engine.Task {
	kinds := []graph.OpKind{
		graph.OpConv, graph.OpDepthwiseConv, graph.OpFC,
		graph.OpPool, graph.OpEltwise, graph.OpActivation, graph.OpGlobalPool,
	}
	t := engine.Task{
		Kind:     kinds[rng.Intn(len(kinds))],
		Hp:       1 + rng.Intn(64),
		Wp:       1 + rng.Intn(64),
		Ci:       1 + rng.Intn(256),
		Cop:      1 + rng.Intn(256),
		Kh:       1 + rng.Intn(3),
		Kw:       1 + rng.Intn(3),
		Stride:   1 + rng.Intn(2),
		Replicas: rng.Intn(4),
	}
	if t.Kind == graph.OpFC {
		t.Hp, t.Wp, t.Kh, t.Kw, t.Stride = 1, 1, 1, 1, 1
	}
	return t
}

// TestMemoMatchesDirect is the cache-correctness property: for randomized
// tasks across every dataflow, the memoized oracle returns a Cost
// byte-identical to direct engine.Evaluate — both on the miss that fills
// the cache and on the hit that reads it back.
func TestMemoMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	memo := NewMemo(Direct{})
	variants := []struct {
		cfg engine.Config
		df  engine.Dataflow
	}{
		{engine.Default(), engine.KCPartition},
		{engine.Default(), engine.YXPartition},
		{engine.FlexDefault(), engine.FlexPartition},
	}
	for i := 0; i < 3000; i++ {
		v := variants[rng.Intn(len(variants))]
		task := randTask(rng)
		want := engine.Evaluate(v.cfg, v.df, task)
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("miss path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("hit path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
	}
	st := memo.Stats()
	if st.Hits < 3000 {
		t.Errorf("hits = %d, want >= 3000 (every task re-evaluated once)", st.Hits)
	}
	if st.Evaluations != st.Hits+st.Misses {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestMemoConcurrent hammers one memo from many goroutines over an
// overlapping task set; run under -race this checks the striped locking,
// and every result must still equal the direct evaluation.
func TestMemoConcurrent(t *testing.T) {
	cfg := engine.Default()
	tasks := make([]engine.Task, 200)
	rng := rand.New(rand.NewSource(11))
	for i := range tasks {
		tasks[i] = randTask(rng)
	}
	memo := NewMemo(Direct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				task := tasks[r.Intn(len(tasks))]
				df := engine.Dataflow(r.Intn(2)) // KC-P or YX-P
				got := memo.Evaluate(cfg, df, task)
				if want := engine.Evaluate(cfg, df, task); got != want {
					select {
					case errs <- "memo diverged from direct under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := memo.Stats()
	if st.Evaluations != 8*2000 {
		t.Errorf("evaluations = %d, want %d", st.Evaluations, 8*2000)
	}
	if st.Misses > int64(len(tasks)*2) {
		t.Errorf("misses = %d, want <= %d (one per unique key, modulo benign races)",
			st.Misses, len(tasks)*2)
	}
	if memo.Len() > len(tasks)*2 {
		t.Errorf("cache holds %d entries for %d unique keys", memo.Len(), len(tasks)*2)
	}
}

// TestInstrumentedStats checks the full Default() stack reports the
// evaluations/hits/misses triple and the Sub/HitRate helpers.
func TestInstrumentedStats(t *testing.T) {
	orc := Default()
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}
	for i := 0; i < 10; i++ {
		orc.Evaluate(cfg, engine.KCPartition, task)
	}
	st := orc.Stats()
	if st.Evaluations != 10 || st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 10 evaluations, 9 hits, 1 miss", st)
	}
	if got := st.HitRate(); got != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
	prev := st
	orc.Evaluate(cfg, engine.YXPartition, task)
	d := orc.Stats().Sub(prev)
	if d.Evaluations != 1 || d.Misses != 1 || d.Hits != 0 {
		t.Errorf("delta = %+v, want 1 evaluation / 1 miss", d)
	}
}

// TestOrResolution pins the nil-oracle default: consumers get a fresh
// memoized oracle, and a provided oracle passes through unchanged.
func TestOrResolution(t *testing.T) {
	if _, ok := Or(nil).(*Memo); !ok {
		t.Errorf("Or(nil) = %T, want *Memo", Or(nil))
	}
	d := Direct{}
	if got := Or(d); got != Oracle(d) {
		t.Errorf("Or(Direct{}) did not pass through")
	}
}
