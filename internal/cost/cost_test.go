package cost

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// randTask draws a random but well-formed engine task.
func randTask(rng *rand.Rand) engine.Task {
	kinds := []graph.OpKind{
		graph.OpConv, graph.OpDepthwiseConv, graph.OpFC,
		graph.OpPool, graph.OpEltwise, graph.OpActivation, graph.OpGlobalPool,
	}
	t := engine.Task{
		Kind:     kinds[rng.Intn(len(kinds))],
		Hp:       1 + rng.Intn(64),
		Wp:       1 + rng.Intn(64),
		Ci:       1 + rng.Intn(256),
		Cop:      1 + rng.Intn(256),
		Kh:       1 + rng.Intn(3),
		Kw:       1 + rng.Intn(3),
		Stride:   1 + rng.Intn(2),
		Replicas: rng.Intn(4),
	}
	if t.Kind == graph.OpFC {
		t.Hp, t.Wp, t.Kh, t.Kw, t.Stride = 1, 1, 1, 1, 1
	}
	return t
}

// TestMemoMatchesDirect is the cache-correctness property: for randomized
// tasks across every dataflow, the memoized oracle returns a Cost
// byte-identical to direct engine.Evaluate — both on the miss that fills
// the cache and on the hit that reads it back.
func TestMemoMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	memo := NewMemo(Direct{})
	variants := []struct {
		cfg engine.Config
		df  engine.Dataflow
	}{
		{engine.Default(), engine.KCPartition},
		{engine.Default(), engine.YXPartition},
		{engine.FlexDefault(), engine.FlexPartition},
	}
	for i := 0; i < 3000; i++ {
		v := variants[rng.Intn(len(variants))]
		task := randTask(rng)
		want := engine.Evaluate(v.cfg, v.df, task)
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("miss path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
		if got := memo.Evaluate(v.cfg, v.df, task); got != want {
			t.Fatalf("hit path: memo = %+v, direct = %+v (task %+v, df %v)",
				got, want, task, v.df)
		}
	}
	st := memo.Stats()
	if st.Hits < 3000 {
		t.Errorf("hits = %d, want >= 3000 (every task re-evaluated once)", st.Hits)
	}
	if st.Evaluations != st.Hits+st.Misses {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

// TestMemoConcurrent hammers one memo from many goroutines over an
// overlapping task set; run under -race this checks the striped locking,
// and every result must still equal the direct evaluation.
func TestMemoConcurrent(t *testing.T) {
	cfg := engine.Default()
	tasks := make([]engine.Task, 200)
	rng := rand.New(rand.NewSource(11))
	for i := range tasks {
		tasks[i] = randTask(rng)
	}
	memo := NewMemo(Direct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				task := tasks[r.Intn(len(tasks))]
				df := engine.Dataflow(r.Intn(2)) // KC-P or YX-P
				got := memo.Evaluate(cfg, df, task)
				if want := engine.Evaluate(cfg, df, task); got != want {
					select {
					case errs <- "memo diverged from direct under concurrency":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := memo.Stats()
	if st.Evaluations != 8*2000 {
		t.Errorf("evaluations = %d, want %d", st.Evaluations, 8*2000)
	}
	if st.Misses > int64(len(tasks)*2) {
		t.Errorf("misses = %d, want <= %d (one per unique key, modulo benign races)",
			st.Misses, len(tasks)*2)
	}
	if memo.Len() > len(tasks)*2 {
		t.Errorf("cache holds %d entries for %d unique keys", memo.Len(), len(tasks)*2)
	}
}

// blockingOracle parks every evaluation until release is closed, so a
// test can pile concurrent misses of one key onto a single in-flight
// leader. calls counts how often the engine model actually ran.
type blockingOracle struct {
	entered chan struct{}
	release chan struct{}
	calls   int32
	panics  bool
}

func (b *blockingOracle) Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost {
	atomic.AddInt32(&b.calls, 1)
	b.entered <- struct{}{}
	<-b.release
	if b.panics {
		panic("engine model failure")
	}
	return engine.Evaluate(cfg, df, t)
}

// TestMemoDedup pins the singleflight contract: N goroutines missing the
// same key concurrently run the engine model exactly once — one miss, and
// N-1 dedup joins that all observe the leader's result.
func TestMemoDedup(t *testing.T) {
	const joiners = 7
	b := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{})}
	memo := NewMemo(b)
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}
	want := engine.Evaluate(cfg, engine.KCPartition, task)

	results := make(chan engine.Cost, joiners+1)
	for i := 0; i < joiners+1; i++ {
		go func() { results <- memo.Evaluate(cfg, engine.KCPartition, task) }()
	}
	<-b.entered // the leader is inside the engine model
	// Wait until every other goroutine has parked on the in-flight call;
	// Dedups is incremented before blocking, so it is the join count.
	for memo.Stats().Dedups < joiners {
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	for i := 0; i < joiners+1; i++ {
		if got := <-results; got != want {
			t.Fatalf("result %d = %+v, want %+v", i, got, want)
		}
	}
	st := memo.Stats()
	if st.Misses != 1 || st.Dedups != joiners || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss, %d dedup joins, 0 hits", st, joiners)
	}
	if st.Evaluations != joiners+1 {
		t.Errorf("evaluations = %d, want %d (every caller counted once)", st.Evaluations, joiners+1)
	}
	if b.calls != 1 {
		t.Errorf("engine model ran %d times, want 1", b.calls)
	}
	// Post-dedup reads are plain cache hits.
	if got := memo.Evaluate(cfg, engine.KCPartition, task); got != want {
		t.Fatalf("post-dedup hit = %+v, want %+v", got, want)
	}
	if st := memo.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d, want 1 after the dedup settled", st.Hits)
	}
}

// TestMemoDedupPanic checks a panicking leader wakes its joiners with the
// same panic value and unregisters the in-flight entry, so a later retry
// re-runs the engine model instead of deadlocking or caching garbage.
func TestMemoDedupPanic(t *testing.T) {
	b := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{}), panics: true}
	memo := NewMemo(b)
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}

	recovered := make(chan any, 2)
	eval := func() {
		defer func() { recovered <- recover() }()
		memo.Evaluate(cfg, engine.KCPartition, task)
	}
	go eval()
	<-b.entered
	go eval()
	for memo.Stats().Dedups < 1 {
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	for i := 0; i < 2; i++ {
		if r := <-recovered; r != "engine model failure" {
			t.Fatalf("caller %d recovered %v, want the oracle's panic value", i, r)
		}
	}
	// The failed flight must not be cached: a retry evaluates again.
	b.panics = false
	b.release = make(chan struct{})
	close(b.release)
	done := make(chan engine.Cost, 1)
	go func() { done <- memo.Evaluate(cfg, engine.KCPartition, task) }()
	<-b.entered
	if got, want := <-done, engine.Evaluate(cfg, engine.KCPartition, task); got != want {
		t.Fatalf("retry = %+v, want %+v", got, want)
	}
	if b.calls != 2 {
		t.Errorf("engine model ran %d times, want 2 (failed flight + retry)", b.calls)
	}
}

// TestInstrumentedStats checks the full Default() stack reports the
// evaluations/hits/misses triple and the Sub/HitRate helpers.
func TestInstrumentedStats(t *testing.T) {
	orc := Default()
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}
	for i := 0; i < 10; i++ {
		orc.Evaluate(cfg, engine.KCPartition, task)
	}
	st := orc.Stats()
	if st.Evaluations != 10 || st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 10 evaluations, 9 hits, 1 miss", st)
	}
	if got := st.HitRate(); got != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
	prev := st
	orc.Evaluate(cfg, engine.YXPartition, task)
	d := orc.Stats().Sub(prev)
	if d.Evaluations != 1 || d.Misses != 1 || d.Hits != 0 {
		t.Errorf("delta = %+v, want 1 evaluation / 1 miss", d)
	}
}

// TestOrResolution pins the nil-oracle default: consumers get a fresh
// memoized oracle, and a provided oracle passes through unchanged.
func TestOrResolution(t *testing.T) {
	if _, ok := Or(nil).(*Memo); !ok {
		t.Errorf("Or(nil) = %T, want *Memo", Or(nil))
	}
	d := Direct{}
	if got := Or(d); got != Oracle(d) {
		t.Errorf("Or(Direct{}) did not pass through")
	}
}

// TestStatsEdgeCases pins the zero-value and delta behaviour of the
// Stats helpers that accounting code leans on.
func TestStatsEdgeCases(t *testing.T) {
	var zero Stats
	if got := zero.HitRate(); got != 0 {
		t.Errorf("zero HitRate = %v, want 0 (not NaN)", got)
	}
	if got := zero.String(); got != "0 evaluations (0 hits, 0 misses, 0.0% hit-rate)" {
		t.Errorf("zero String = %q", got)
	}
	// Dedup joins only surface in String once one happened.
	withDedup := Stats{Evaluations: 4, Hits: 1, Misses: 1, Dedups: 2}
	if got := withDedup.String(); got != "4 evaluations (1 hits, 1 misses, 2 dedup joins, 50.0% hit-rate)" {
		t.Errorf("dedup String = %q", got)
	}
	// Miss-only streams have a 0 hit-rate, hit-only streams 1.
	if got := (Stats{Evaluations: 3, Misses: 3}).HitRate(); got != 0 {
		t.Errorf("miss-only HitRate = %v, want 0", got)
	}
	if got := (Stats{Evaluations: 3, Hits: 3}).HitRate(); got != 1 {
		t.Errorf("hit-only HitRate = %v, want 1", got)
	}
	// Sub covers every field, including Sampled, and X.Sub(X) is zero.
	a := Stats{Evaluations: 10, Hits: 4, Misses: 5, Dedups: 1, Sampled: 5}
	b := Stats{Evaluations: 25, Hits: 12, Misses: 10, Dedups: 3, Sampled: 10}
	if d := b.Sub(a); d != (Stats{Evaluations: 15, Hits: 8, Misses: 5, Dedups: 2, Sampled: 5}) {
		t.Errorf("Sub = %+v", d)
	}
	if d := a.Sub(a); d != (Stats{}) {
		t.Errorf("self-delta = %+v, want zero", d)
	}
}

// TestStatsOf pins the uniform accounting contract over the three oracle
// stacks consumers actually build: Default(), Or(nil), and bare Direct.
func TestStatsOf(t *testing.T) {
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}

	orc := Default()
	orc.Evaluate(cfg, engine.KCPartition, task)
	if st, ok := StatsOf(orc); !ok || st.Evaluations != 1 || st.Misses != 1 {
		t.Errorf("StatsOf(Default()) = %+v, %v", st, ok)
	}

	// The Or(nil) fallback is a bare *Memo, but still accountable — the
	// deliberate asymmetry documented on Or.
	fallback := Or(nil)
	fallback.Evaluate(cfg, engine.KCPartition, task)
	fallback.Evaluate(cfg, engine.KCPartition, task)
	if st, ok := StatsOf(fallback); !ok || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("StatsOf(Or(nil)) = %+v, %v", st, ok)
	}

	if _, ok := StatsOf(Direct{}); ok {
		t.Error("StatsOf(Direct{}) reported ok for a stat-less oracle")
	}
}

// recordingSampler captures every sample the oracle forwards.
type recordingSampler struct {
	mu    sync.Mutex
	tasks []engine.Task
}

func (r *recordingSampler) Sample(cfg engine.Config, df engine.Dataflow, t engine.Task, c engine.Cost) {
	r.mu.Lock()
	r.tasks = append(r.tasks, t)
	r.mu.Unlock()
}

// TestSamplerMissOnly pins the training-stream contract: the sampler sees
// each unique evaluation exactly once (on the miss), never on cache hits,
// and dedup joiners do not re-forward the leader's result.
func TestSamplerMissOnly(t *testing.T) {
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}

	memo := NewMemo(Direct{})
	rec := &recordingSampler{}
	memo.SetSampler(rec)
	for i := 0; i < 5; i++ {
		memo.Evaluate(cfg, engine.KCPartition, task) // 1 miss + 4 hits
	}
	memo.Evaluate(cfg, engine.YXPartition, task) // second miss
	if got := len(rec.tasks); got != 2 {
		t.Fatalf("sampler saw %d samples, want 2 (misses only)", got)
	}
	if st := memo.Stats(); st.Sampled != 2 {
		t.Errorf("Sampled = %d, want 2", st.Sampled)
	}

	// Dedup joiners must not multiply the training stream: one leader
	// miss with 3 concurrent joiners is still one sample.
	b := &blockingOracle{entered: make(chan struct{}, 1), release: make(chan struct{})}
	dmemo := NewMemo(b)
	drec := &recordingSampler{}
	dmemo.SetSampler(drec)
	task2 := engine.Task{Kind: graph.OpConv, Hp: 4, Wp: 4, Ci: 8, Cop: 8, Kh: 1, Kw: 1, Stride: 1}
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			dmemo.Evaluate(cfg, engine.KCPartition, task2)
			done <- struct{}{}
		}()
	}
	<-b.entered
	for dmemo.Stats().Dedups < 3 {
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := len(drec.tasks); got != 1 {
		t.Errorf("sampler saw %d samples across a dedup pile-up, want 1", got)
	}

	// Detaching stops the stream without disturbing the cache.
	memo.SetSampler(nil)
	memo.Evaluate(cfg, engine.FlexPartition, task) // third miss, unsampled
	if got := len(rec.tasks); got != 2 {
		t.Errorf("detached sampler still saw samples: %d", got)
	}
	if st := memo.Stats(); st.Misses != 3 || st.Sampled != 2 {
		t.Errorf("stats after detach = %+v, want 3 misses / 2 sampled", st)
	}
}

// TestAttachSampler pins the duck-typed attach path used by Orchestrate:
// it reaches the Memo inside Default() through the Instrumented wrapper,
// and reports false for oracles with no miss stream.
func TestAttachSampler(t *testing.T) {
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 8, Wp: 8, Ci: 16, Cop: 16, Kh: 3, Kw: 3, Stride: 1}

	orc := Default()
	rec := &recordingSampler{}
	if !AttachSampler(orc, rec) {
		t.Fatal("AttachSampler(Default(), ...) = false")
	}
	orc.Evaluate(cfg, engine.KCPartition, task)
	orc.Evaluate(cfg, engine.KCPartition, task)
	if len(rec.tasks) != 1 {
		t.Errorf("forwarded sampler saw %d samples, want 1", len(rec.tasks))
	}
	if AttachSampler(Direct{}, rec) {
		t.Error("AttachSampler(Direct{}, ...) = true for a sampler-less oracle")
	}

	// Len forwards through the Instrumented wrapper too.
	if got := orc.Len(); got != 1 {
		t.Errorf("Instrumented.Len = %d, want 1", got)
	}
	if got := NewInstrumented(Direct{}).Len(); got != 0 {
		t.Errorf("Len over non-Memo inner = %d, want 0", got)
	}
}
