// Package cost is the central cost oracle: the layer between the
// search/scheduling code and the engine model. The paper's Algorithm 1
// treats the engine model as a black-box Cycle(atom) oracle; MAESTRO-style
// analytical oracles are cheap and repeatable, and atoms produced by the
// same layer partition are identical tasks evaluated thousands of times
// per SA run — so every consumer (annealer, schedulers, baselines,
// simulator) goes through an Oracle instead of calling engine.Evaluate
// directly, and one shared memoizing oracle spans candidate generation,
// annealing, scheduling and simulation of the same workload.
//
// Three stacked implementations are provided:
//
//   - Direct: the no-op adapter over engine.Evaluate.
//   - Memo: a sharded, mutex-striped cache keyed by the comparable
//     (engine.Config, engine.Dataflow, engine.Task) triple, safe for
//     concurrent use.
//   - Instrumented: a wrapper counting evaluations (and, when it wraps a
//     Memo, cache hits and misses) for observability.
//
// The conventional stack is Instrumented(Memo(Direct)), built by Default.
package cost

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
)

// Oracle prices a task on an engine under a dataflow — the Cycle() oracle
// of the paper's Algorithm 1. Implementations must be safe for concurrent
// use by multiple goroutines.
type Oracle interface {
	Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost
}

// Sampler observes exact evaluations as they are computed. A Memo with a
// sampler installed forwards every cache miss — the one moment a real
// engine-model computation happens — to it, which is how the learned
// surrogate (internal/cost/surrogate) trains from the evaluation stream
// the search pays for anyway. Implementations must be safe for concurrent
// use; hits and dedup joins are never sampled, so the hook adds nothing
// to the hot path.
type Sampler interface {
	Sample(cfg engine.Config, df engine.Dataflow, t engine.Task, c engine.Cost)
}

// AttachSampler installs s on the first oracle in the stack that supports
// sampling (Memo, or Instrumented forwarding to its inner Memo) and
// reports whether it did. Oracles without a miss stream (Direct, custom
// implementations) are left alone — the caller's surrogate then simply
// never trains and every consumer falls back to exact evaluation.
func AttachSampler(o Oracle, s Sampler) bool {
	type samplable interface{ SetSampler(Sampler) }
	if a, ok := o.(samplable); ok {
		a.SetSampler(s)
		return true
	}
	return false
}

// Direct adapts engine.Evaluate with no caching. The engine model is a
// pure function, so the zero value is ready to use and trivially
// goroutine-safe.
type Direct struct{}

// Evaluate calls the engine model directly.
func (Direct) Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost {
	return engine.Evaluate(cfg, df, t)
}

// Key is the comparable cache identity of one evaluation. Config, Dataflow
// and Task are flat scalar structs, so the triple is directly usable as a
// map key and two keys are equal exactly when the evaluations are.
type Key struct {
	Cfg  engine.Config
	DF   engine.Dataflow
	Task engine.Task
}

// numShards stripes the cache so concurrent candidate generation and
// simulation do not serialize on one lock. Power of two for cheap masking.
const numShards = 64

type shard struct {
	mu       sync.RWMutex
	m        map[Key]engine.Cost
	inflight map[Key]*inflightCall
}

// inflightCall is one first-miss evaluation in progress. Duplicate
// concurrent misses of the same Key park on done instead of re-running
// the engine model; the leader publishes c (or the panic it hit) before
// closing done, so joiners observe a fully-written result.
type inflightCall struct {
	done     chan struct{}
	c        engine.Cost
	panicked any
}

// Memo is a memoizing Oracle: results of the inner oracle are cached
// forever (the engine model is pure, so entries never invalidate). Safe
// for concurrent use.
type Memo struct {
	inner   Oracle
	shards  [numShards]shard
	hits    atomic.Int64
	misses  atomic.Int64
	dedups  atomic.Int64
	sampled atomic.Int64
	sampler atomic.Pointer[samplerBox]
}

// samplerBox wraps the interface value so the sampler can be swapped
// atomically (atomic.Pointer needs a concrete pointee type).
type samplerBox struct{ s Sampler }

// SetSampler installs (or, with nil, removes) the miss-stream observer.
// Safe to call concurrently with Evaluate; in-flight misses use whichever
// sampler they load.
func (m *Memo) SetSampler(s Sampler) {
	if s == nil {
		m.sampler.Store(nil)
		return
	}
	m.sampler.Store(&samplerBox{s: s})
}

// NewMemo returns a memoizing oracle over inner (Direct{} if nil).
func NewMemo(inner Oracle) *Memo {
	if inner == nil {
		inner = Direct{}
	}
	m := &Memo{inner: inner}
	for i := range m.shards {
		m.shards[i].m = make(map[Key]engine.Cost)
		m.shards[i].inflight = make(map[Key]*inflightCall)
	}
	return m
}

// Evaluate returns the cached cost, computing and storing it on first use.
// Concurrent duplicate misses are deduplicated per key (a lightweight
// shard-local singleflight): the first caller evaluates, the rest join its
// result — K portfolio chains hitting the same fresh Key cost one engine
// evaluation, not K. Joins are counted separately in Stats.
func (m *Memo) Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost {
	k := Key{Cfg: cfg, DF: df, Task: t}
	sh := &m.shards[shardOf(k)]
	sh.mu.RLock()
	c, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		m.hits.Add(1)
		return c
	}
	sh.mu.Lock()
	if c, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		m.hits.Add(1)
		return c
	}
	if call, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		m.dedups.Add(1)
		<-call.done
		if call.panicked != nil {
			panic(call.panicked)
		}
		return call.c
	}
	call := &inflightCall{done: make(chan struct{})}
	sh.inflight[k] = call
	sh.mu.Unlock()
	m.misses.Add(1)
	defer func() {
		if r := recover(); r != nil {
			// Unregister and wake joiners with the same panic value so a
			// failing engine model cannot strand them on done forever.
			call.panicked = r
			sh.mu.Lock()
			delete(sh.inflight, k)
			sh.mu.Unlock()
			close(call.done)
			panic(r)
		}
	}()
	c = m.inner.Evaluate(cfg, df, t)
	if box := m.sampler.Load(); box != nil {
		// Miss-stream hook: exactly one Sample per engine-model run, on
		// the goroutine that paid for it. Joiners and hits never sample.
		box.s.Sample(cfg, df, t, c)
		m.sampled.Add(1)
	}
	call.c = c
	sh.mu.Lock()
	sh.m[k] = c
	delete(sh.inflight, k)
	sh.mu.Unlock()
	close(call.done)
	return c
}

// Len returns the number of cached entries.
func (m *Memo) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports the cache behaviour so far.
func (m *Memo) Stats() Stats {
	h, mi, d := m.hits.Load(), m.misses.Load(), m.dedups.Load()
	return Stats{Evaluations: h + mi + d, Hits: h, Misses: mi, Dedups: d,
		Sampled: m.sampled.Load()}
}

// shardOf mixes the task-varying key fields into a shard index. Only the
// fields that differ between tasks of one run matter for spread; the
// engine config is typically constant.
func shardOf(k Key) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211 // FNV-64 prime
	}
	mix(int64(k.Task.Kind))
	mix(int64(k.Task.Hp))
	mix(int64(k.Task.Wp))
	mix(int64(k.Task.Ci))
	mix(int64(k.Task.Cop))
	mix(int64(k.Task.Kh))
	mix(int64(k.Task.Kw))
	mix(int64(k.Task.Stride))
	mix(int64(k.Task.Replicas))
	mix(int64(k.DF))
	mix(int64(k.Cfg.PEx))
	mix(int64(k.Cfg.PEy))
	return h % numShards
}

// Stats is one observability snapshot of an oracle stack.
type Stats struct {
	Evaluations int64 // Oracle.Evaluate calls observed
	Hits        int64 // served from a Memo cache
	Misses      int64 // computed by the engine model
	Dedups      int64 // concurrent duplicate misses joined to an in-flight evaluation
	Sampled     int64 // misses forwarded to an installed Sampler (surrogate training)
}

// HitRate returns Hits/(Hits+Misses), 0 when nothing was evaluated.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Sub returns the delta since an earlier snapshot — per-experiment
// accounting over a long-lived shared oracle.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Evaluations: s.Evaluations - prev.Evaluations,
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		Dedups:      s.Dedups - prev.Dedups,
		Sampled:     s.Sampled - prev.Sampled,
	}
}

// String formats the snapshot for logs. Dedup joins only appear once one
// happened, so single-threaded logs keep their familiar shape.
func (s Stats) String() string {
	if s.Dedups > 0 {
		return fmt.Sprintf("%d evaluations (%d hits, %d misses, %d dedup joins, %.1f%% hit-rate)",
			s.Evaluations, s.Hits, s.Misses, s.Dedups, 100*s.HitRate())
	}
	return fmt.Sprintf("%d evaluations (%d hits, %d misses, %.1f%% hit-rate)",
		s.Evaluations, s.Hits, s.Misses, 100*s.HitRate())
}

// Instrumented counts the evaluations flowing through an oracle. When the
// wrapped oracle is a *Memo, Stats also reports its hits and misses, so
// the conventional Instrumented(Memo(Direct)) stack yields the full
// evaluations/hits/misses triple.
type Instrumented struct {
	inner Oracle
	calls atomic.Int64
}

// NewInstrumented wraps inner (Direct{} if nil) with call counting.
func NewInstrumented(inner Oracle) *Instrumented {
	if inner == nil {
		inner = Direct{}
	}
	return &Instrumented{inner: inner}
}

// Evaluate counts the call and delegates.
func (i *Instrumented) Evaluate(cfg engine.Config, df engine.Dataflow, t engine.Task) engine.Cost {
	i.calls.Add(1)
	return i.inner.Evaluate(cfg, df, t)
}

// Stats reports calls seen plus the wrapped Memo's cache behaviour.
func (i *Instrumented) Stats() Stats {
	st := Stats{Evaluations: i.calls.Load()}
	if m, ok := i.inner.(*Memo); ok {
		ms := m.Stats()
		st.Hits, st.Misses, st.Dedups, st.Sampled = ms.Hits, ms.Misses, ms.Dedups, ms.Sampled
	}
	return st
}

// SetSampler forwards the miss-stream observer to the wrapped Memo, so
// the conventional Default() stack accepts a sampler without unwrapping.
// A non-Memo inner oracle has no miss stream; the call is then a no-op.
func (i *Instrumented) SetSampler(s Sampler) {
	if m, ok := i.inner.(*Memo); ok {
		m.SetSampler(s)
	}
}

// Len reports the wrapped Memo's cached-entry count (0 for a non-Memo
// inner oracle) — production cache-size visibility for consumers holding
// the Default() stack.
func (i *Instrumented) Len() int {
	if m, ok := i.inner.(*Memo); ok {
		return m.Len()
	}
	return 0
}

// Default returns the conventional full stack: an instrumented memoizing
// oracle over the engine model.
func Default() *Instrumented { return NewInstrumented(NewMemo(Direct{})) }

// Or returns o when non-nil, else a fresh memoized oracle — the resolution
// every consumer applies to its optional Oracle field. A nil oracle still
// caches within the consuming stage; passing one shared oracle across
// stages is what makes the cache span candidate generation, annealing,
// scheduling and simulation.
//
// Note the deliberate asymmetry with Default(): the fallback is a bare
// *Memo, not Instrumented(Memo(...)) — a per-stage fallback cache nobody
// holds a handle to has no reader for an extra call counter, so the
// cheaper stack wins. The fallback is still fully Stats()-capable
// ((*Memo).Stats reports the evaluations/hits/misses/dedups it saw), and
// StatsOf retrieves those counters uniformly from either stack, so
// per-stage accounting works even for consumers that passed nil.
func Or(o Oracle) Oracle {
	if o != nil {
		return o
	}
	return NewMemo(Direct{})
}

// StatsOf extracts the counters from any oracle that keeps them (*Memo,
// *Instrumented, or any custom oracle with a Stats() method), reporting
// ok=false for stat-less oracles like Direct. This is the uniform
// accounting path over the Default(), Or(nil) and user-supplied stacks.
func StatsOf(o Oracle) (Stats, bool) {
	type statser interface{ Stats() Stats }
	if s, ok := o.(statser); ok {
		return s.Stats(), true
	}
	return Stats{}, false
}
