// Package surrogate is the learned first tier of the two-tier cost
// oracle: a pure-Go, online-fitted ridge regression that predicts
// engine.Evaluate cycles from engineered atom features (see features.go).
//
// The model trains passively from the evaluation stream the memoizing
// oracle already sees — cost.Memo feeds every cache miss through a
// Sampler hook — and is consulted by the annealer's candidate generation
// as a cheap filter: all enumerated partitions are scored by the
// surrogate, and exact evaluation is spent only on the survivors (plus an
// exploration floor). Accepted states and final schedules are always
// re-scored exactly, so no surrogate number ever reaches a Report.
//
// The fit is segmented by (operator class x dataflow): within one segment
// the engine's closed-form cycle count is linear in the feature vector,
// so a tiny ridge system per segment reproduces it near-exactly —
// segmentation is the one-hot x full-interaction encoding the issue's
// single-model formulation would need, with 9 independent 15x15 solves
// instead of one ill-conditioned 135-feature system. A segment only
// participates in filtering once its prequential (predict-then-train)
// R-squared clears a readiness bar, so a cold or badly-fit model degrades
// to the exact path, never to wrong filtering.
//
// A non-linear upgrade (e.g. gradient-boosted stumps over the same
// features) can replace the per-segment fitter behind the same
// Sample/Snapshot/Predict surface.
package surrogate

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

const (
	// minSamples is the per-segment sample count before the first fit.
	minSamples = 48
	// refitEvery batches subsequent refits: the Gram matrix absorbs every
	// sample immediately, the solve is amortized.
	refitEvery = 64
	// readyMinPreds is the shadow-prediction count a fitted segment must
	// accumulate before its accuracy estimate is trusted. Small workloads
	// can produce a lucky first window right after the initial fit; 64
	// shadow predictions make the estimate honest before any filtering.
	readyMinPreds = 64
	// readyR2 is the prequential R-squared bar for filtering.
	readyR2 = 0.95
	// readyRelMAE is the prequential mean relative error bar. R-squared is
	// dominated by the largest tasks; on workloads whose tasks are a few
	// hundred cycles, a model can score R-squared 0.99 while still
	// misranking candidates by 10% — relative error catches that.
	readyRelMAE = 0.02
)

// segment is one (operator class, dataflow) ridge system plus its online
// accuracy bookkeeping. All fields are guarded by mu.
type segment struct {
	mu sync.Mutex

	// Normal equations, accumulated online: A += x xᵀ, b += y x.
	n       int64
	a       [NumFeatures][NumFeatures]float64
	b       [NumFeatures]float64
	lastFit int64

	fitted bool
	w      [NumFeatures]float64

	// Prequential accuracy: every post-fit sample is first predicted with
	// the frozen weights, then absorbed — an honest out-of-sample error
	// estimate with zero extra evaluations (Welford mean/M2 give the
	// variance for R-squared).
	predN  int64
	absErr float64
	relErr float64
	sqErr  float64
	meanY  float64
	m2Y    float64
	ready  bool
}

// r2Locked returns the prequential R-squared (call with mu held).
func (s *segment) r2Locked() float64 {
	if s.predN < 2 || s.m2Y <= 0 {
		return 0
	}
	return 1 - s.sqErr/s.m2Y
}

// refitLocked solves the ridge system (call with mu held). The
// regularizer scales with the Gram trace so feature magnitude (byte
// counts vs remainders) does not pick the effective lambda; on a
// non-positive-definite system the lambda is escalated, and if it still
// fails the segment simply stays on its previous weights.
func (s *segment) refitLocked() bool {
	d := NumFeatures
	trace := 0.0
	for i := 0; i < d; i++ {
		trace += s.a[i][i]
	}
	lambda := 1e-10*trace/float64(d) + 1e-12
	for attempt := 0; attempt < 4; attempt++ {
		var m [NumFeatures][NumFeatures]float64
		for i := 0; i < d; i++ {
			m[i] = s.a[i]
			m[i][i] += lambda
		}
		if w, ok := cholSolve(&m, &s.b); ok {
			s.w = w
			s.fitted = true
			s.lastFit = s.n
			return true
		}
		lambda *= 1e3
	}
	return false
}

// cholSolve solves m w = b for symmetric positive-definite m via an
// in-place Cholesky decomposition. Deterministic: fixed loop order, no
// pivoting.
func cholSolve(m *[NumFeatures][NumFeatures]float64, b *[NumFeatures]float64) ([NumFeatures]float64, bool) {
	const d = NumFeatures
	var l [d][d]float64
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return [d]float64{}, false
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward then back substitution.
	var y [d]float64
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * y[k]
		}
		y[i] = sum / l[i][i]
	}
	var w [d]float64
	for i := d - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < d; k++ {
			sum -= l[k][i] * w[k]
		}
		w[i] = sum / l[i][i]
	}
	return w, true
}

// Model is the online-learned surrogate. The zero value is not usable;
// create with New. All methods are safe for concurrent use and nil-safe,
// so a nil *Model threads through option structs as "surrogate off".
type Model struct {
	segs [numSegments]segment

	samples     atomic.Int64
	refits      atomic.Int64
	predictions atomic.Int64
	filterCalls atomic.Int64
	skipped     atomic.Int64

	// Optional obs instruments (nil-safe no-ops until Instrument).
	mSamples *obs.Counter
	mRefits  *obs.Counter
	mPreds   *obs.Counter
	mFilter  *obs.Counter
	mSkipped *obs.Counter
	gR2      *obs.Gauge
	gMAE     *obs.Gauge
	gReady   *obs.Gauge
}

// New returns an empty model; it starts filtering only after enough
// samples have flowed through Sample and the fit has proven itself.
func New() *Model { return &Model{} }

// Instrument attaches obs instruments (surrogate_* counters and the
// online accuracy gauges). A nil registry is a no-op; instruments update
// from Sample/FilterObserved, so the hot Evaluate path stays untouched.
func (m *Model) Instrument(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.mSamples = reg.Counter("surrogate_samples_total")
	m.mRefits = reg.Counter("surrogate_refits_total")
	m.mPreds = reg.Counter("surrogate_predictions_total")
	m.mFilter = reg.Counter("surrogate_filter_calls_total")
	m.mSkipped = reg.Counter("surrogate_exact_evals_skipped_total")
	m.gR2 = reg.Gauge("surrogate_r2")
	m.gMAE = reg.Gauge("surrogate_mae")
	m.gReady = reg.Gauge("surrogate_segments_ready")
}

// Sample feeds one exact evaluation into the online fitter. It implements
// cost.Sampler, so a Model plugs directly into cost.Memo's miss hook: the
// surrogate trains on exactly the stream of engine-model computations the
// search pays for anyway. Cost: one feature extraction, one dot product
// and a rank-1 Gram update under a per-segment mutex — only on cache
// misses, never on the hit path.
func (m *Model) Sample(cfg engine.Config, df engine.Dataflow, t engine.Task, c engine.Cost) {
	if m == nil {
		return
	}
	// Concat/Input are zero-cost pass-throughs in the engine model; their
	// (nonzero features, zero cycles) pairs would poison the vector
	// segment's fit.
	if t.Kind == graph.OpConcat || t.Kind == graph.OpInput {
		return
	}
	reps := float64(1)
	if t.Replicas > 1 {
		reps = float64(t.Replicas)
	}
	y := float64(c.Cycles) / reps
	var x [NumFeatures]float64
	features(cfg, df, t, &x)

	seg := &m.segs[segmentOf(t.Kind, df)]
	seg.mu.Lock()
	if seg.fitted {
		pred := dot(&seg.w, &x)
		e := pred - y
		seg.predN++
		if e < 0 {
			e = -e
		}
		seg.absErr += e
		seg.relErr += e / math.Max(y, 1)
		seg.sqErr += (pred - y) * (pred - y)
		d1 := y - seg.meanY
		seg.meanY += d1 / float64(seg.predN)
		seg.m2Y += d1 * (y - seg.meanY)
		seg.ready = seg.predN >= readyMinPreds && seg.r2Locked() >= readyR2 &&
			seg.relErr/float64(seg.predN) <= readyRelMAE
	}
	for i := 0; i < NumFeatures; i++ {
		if x[i] == 0 {
			continue
		}
		for j := 0; j < NumFeatures; j++ {
			seg.a[i][j] += x[i] * x[j]
		}
		seg.b[i] += y * x[i]
	}
	seg.n++
	refit := (!seg.fitted && seg.n >= minSamples) ||
		(seg.fitted && seg.n-seg.lastFit >= refitEvery)
	if refit {
		refit = seg.refitLocked()
	}
	seg.mu.Unlock()

	m.samples.Add(1)
	m.mSamples.Inc()
	if refit {
		m.refits.Add(1)
		m.mRefits.Inc()
		m.publishGauges()
	}
}

func dot(w, x *[NumFeatures]float64) float64 {
	s := 0.0
	for i := 0; i < NumFeatures; i++ {
		s += w[i] * x[i]
	}
	return s
}

// FilterObserved records one candidate-filter application: kept
// partitions were evaluated exactly, skipped ones were priced by the
// surrogate alone. Called by the annealer.
func (m *Model) FilterObserved(kept, skipped int) {
	if m == nil {
		return
	}
	m.filterCalls.Add(1)
	m.skipped.Add(int64(skipped))
	m.mFilter.Inc()
	m.mSkipped.Add(int64(skipped))
	m.publishGauges()
}

// publishGauges refreshes the accuracy gauges from the segment state.
func (m *Model) publishGauges() {
	if m.gR2 == nil && m.gMAE == nil && m.gReady == nil {
		return
	}
	st := m.Stats()
	m.gR2.Set(st.R2)
	m.gMAE.Set(st.MAE)
	m.gReady.SetInt(int64(st.SegmentsReady))
}

// Snapshot freezes the current per-segment weights into an immutable
// predictor. Prediction through a snapshot is a pure function — the
// filter takes one snapshot per candidate batch, so concurrent training
// can never shift a decision mid-batch. Returns nil on a nil model.
func (m *Model) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	sn := &Snapshot{m: m}
	any := false
	for i := range m.segs {
		seg := &m.segs[i]
		seg.mu.Lock()
		if seg.fitted && seg.ready {
			sn.ready[i] = true
			sn.w[i] = seg.w
			any = true
		}
		seg.mu.Unlock()
	}
	if !any {
		return nil
	}
	return sn
}

// Snapshot is a frozen predictor (see Model.Snapshot).
type Snapshot struct {
	m     *Model
	ready [numSegments]bool
	w     [numSegments][NumFeatures]float64
}

// Predict returns the surrogate's cycle estimate for one evaluation, or
// ok=false when the evaluation's segment has not met the readiness bar —
// the caller must fall back to exact evaluation. Estimates are clamped to
// >= 1 cycle.
func (sn *Snapshot) Predict(cfg engine.Config, df engine.Dataflow, t engine.Task) (cycles float64, ok bool) {
	if sn == nil {
		return 0, false
	}
	seg := segmentOf(t.Kind, df)
	if !sn.ready[seg] {
		return 0, false
	}
	var x [NumFeatures]float64
	features(cfg, df, t, &x)
	p := dot(&sn.w[seg], &x)
	if t.Replicas > 1 {
		p *= float64(t.Replicas)
	}
	if !(p >= 1) { // also catches NaN
		p = 1
	}
	sn.m.predictions.Add(1)
	sn.m.mPreds.Inc()
	return p, true
}

// Stats is a point-in-time summary of the model.
type Stats struct {
	Samples           int64   // exact evaluations absorbed by the fitter
	Refits            int64   // ridge solves performed
	Predictions       int64   // surrogate predictions served to filters
	FilterCalls       int64   // candidate batches filtered
	ExactEvalsSkipped int64   // enumerated partitions not exactly evaluated
	SegmentsReady     int     // segments past the readiness bar
	MAE               float64 // prequential mean absolute error (cycles)
	RelMAE            float64 // prequential mean relative error
	R2                float64 // prequential R-squared, pooled over segments
}

// Stats summarizes the model's training and filtering activity. The
// accuracy numbers are prequential (each sample predicted before it was
// absorbed), pooled across fitted segments.
func (m *Model) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	st := Stats{
		Samples:           m.samples.Load(),
		Refits:            m.refits.Load(),
		Predictions:       m.predictions.Load(),
		FilterCalls:       m.filterCalls.Load(),
		ExactEvalsSkipped: m.skipped.Load(),
	}
	var predN int64
	var absErr, relErr, sqErr, m2 float64
	for i := range m.segs {
		seg := &m.segs[i]
		seg.mu.Lock()
		if seg.ready {
			st.SegmentsReady++
		}
		predN += seg.predN
		absErr += seg.absErr
		relErr += seg.relErr
		sqErr += seg.sqErr
		m2 += seg.m2Y
		seg.mu.Unlock()
	}
	if predN > 0 {
		st.MAE = absErr / float64(predN)
		st.RelMAE = relErr / float64(predN)
	}
	if m2 > 0 {
		st.R2 = 1 - sqErr/m2
	}
	return st
}
