package surrogate

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// randConvTask draws a plausible conv/FC tile — the shapes candidate
// generation actually enumerates.
func randConvTask(rng *rand.Rand) engine.Task {
	ks := []int{1, 3, 5, 7}
	k := ks[rng.Intn(len(ks))]
	return engine.Task{
		Kind:   graph.OpConv,
		Hp:     1 + rng.Intn(64),
		Wp:     1 + rng.Intn(64),
		Ci:     1 + rng.Intn(512),
		Cop:    1 + rng.Intn(512),
		Kh:     k,
		Kw:     k,
		Stride: 1 + rng.Intn(2),
	}
}

// feed trains the model with n random conv samples under df.
func feed(m *Model, cfg engine.Config, df engine.Dataflow, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t := randConvTask(rng)
		m.Sample(cfg, df, t, engine.Evaluate(cfg, df, t))
	}
}

// TestModelLearnsEngine: the engine's cycle count is exactly linear in
// the engineered features within one (class, dataflow) segment, so the
// ridge fit should reproduce it almost exactly on held-out tasks.
func TestModelLearnsEngine(t *testing.T) {
	cfg := engine.Default()
	for _, df := range []engine.Dataflow{engine.KCPartition, engine.YXPartition} {
		m := New()
		feed(m, cfg, df, 300, 7)
		sn := m.Snapshot()
		if sn == nil {
			t.Fatalf("df %v: model not ready after 300 samples (stats %+v)", df, m.Stats())
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			task := randConvTask(rng)
			exact := float64(engine.Evaluate(cfg, df, task).Cycles)
			pred, ok := sn.Predict(cfg, df, task)
			if !ok {
				t.Fatalf("df %v: segment not ready at predict time", df)
			}
			if rel := math.Abs(pred-exact) / exact; rel > 0.02 {
				t.Errorf("df %v task %+v: pred %.1f vs exact %.0f (rel err %.4f)",
					df, task, pred, exact, rel)
			}
		}
		st := m.Stats()
		if st.Samples != 300 || st.Refits == 0 || st.SegmentsReady == 0 {
			t.Errorf("df %v: unexpected stats %+v", df, st)
		}
		if st.R2 < 0.99 {
			t.Errorf("df %v: prequential R2 %.4f below 0.99", df, st.R2)
		}
	}
}

// TestPredictScalesReplicas: the engine multiplies cycles by the replica
// count; features are per-replica and Predict scales back up.
func TestPredictScalesReplicas(t *testing.T) {
	cfg := engine.Default()
	df := engine.KCPartition
	m := New()
	feed(m, cfg, df, 200, 11)
	sn := m.Snapshot()
	if sn == nil {
		t.Fatal("model not ready")
	}
	task := engine.Task{Kind: graph.OpConv, Hp: 16, Wp: 16, Ci: 64, Cop: 64, Kh: 3, Kw: 3, Stride: 1}
	p1, ok1 := sn.Predict(cfg, df, task)
	task.Replicas = 4
	p4, ok4 := sn.Predict(cfg, df, task)
	if !ok1 || !ok4 {
		t.Fatal("predictions not served")
	}
	if math.Abs(p4-4*p1) > 1e-6*p4 {
		t.Errorf("replicas=4 prediction %.2f != 4 x %.2f", p4, p1)
	}
}

// TestSnapshotFrozen: a snapshot must keep predicting with the weights it
// froze even while the model keeps training — the candidate filter takes
// one snapshot per batch and its decisions may not shift mid-batch.
func TestSnapshotFrozen(t *testing.T) {
	cfg := engine.Default()
	df := engine.KCPartition
	m := New()
	feed(m, cfg, df, 200, 3)
	sn := m.Snapshot()
	if sn == nil {
		t.Fatal("model not ready")
	}
	task := engine.Task{Kind: graph.OpConv, Hp: 14, Wp: 14, Ci: 256, Cop: 256, Kh: 3, Kw: 3, Stride: 1}
	before, _ := sn.Predict(cfg, df, task)
	feed(m, cfg, df, 500, 17) // concurrent-era training
	after, _ := sn.Predict(cfg, df, task)
	if before != after {
		t.Errorf("snapshot prediction drifted: %.4f -> %.4f", before, after)
	}
}

// TestNilSafety: a nil model (surrogate off) must thread through every
// call site as a no-op.
func TestNilSafety(t *testing.T) {
	var m *Model
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConv, Hp: 1, Wp: 1, Ci: 1, Cop: 1, Kh: 1, Kw: 1, Stride: 1}
	m.Sample(cfg, engine.KCPartition, task, engine.Cost{Cycles: 1})
	m.FilterObserved(1, 2)
	m.Instrument(nil)
	if m.Snapshot() != nil {
		t.Error("nil model produced a snapshot")
	}
	if st := m.Stats(); st != (Stats{}) {
		t.Errorf("nil model stats %+v", st)
	}
	var sn *Snapshot
	if _, ok := sn.Predict(cfg, engine.KCPartition, task); ok {
		t.Error("nil snapshot served a prediction")
	}
}

// TestColdModelNotReady: before enough samples the snapshot is nil, so
// consumers fall back to exact evaluation.
func TestColdModelNotReady(t *testing.T) {
	m := New()
	if m.Snapshot() != nil {
		t.Fatal("empty model claims readiness")
	}
	feed(m, engine.Default(), engine.KCPartition, minSamples-1, 5)
	if m.Snapshot() != nil {
		t.Fatal("model claims readiness below minSamples")
	}
}

// TestZeroCostKindsIgnored: Concat/Input evaluations must not enter the
// vector segment's fit.
func TestZeroCostKindsIgnored(t *testing.T) {
	m := New()
	cfg := engine.Default()
	task := engine.Task{Kind: graph.OpConcat, Hp: 8, Wp: 8, Ci: 8, Cop: 8, Kh: 1, Kw: 1, Stride: 1}
	m.Sample(cfg, engine.KCPartition, task, engine.Cost{})
	task.Kind = graph.OpInput
	m.Sample(cfg, engine.KCPartition, task, engine.Cost{})
	if st := m.Stats(); st.Samples != 0 {
		t.Errorf("zero-cost kinds were sampled: %+v", st)
	}
}

// TestConcurrentSample: the fitter must survive concurrent training and
// snapshotting (the memoizing oracle samples from many goroutines).
func TestConcurrentSample(t *testing.T) {
	cfg := engine.Default()
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			feed(m, cfg, engine.KCPartition, 100, seed)
			m.Snapshot()
		}(int64(w + 1))
	}
	wg.Wait()
	if st := m.Stats(); st.Samples != 800 {
		t.Errorf("lost samples: %+v", st)
	}
}

// TestSegmentIsolation: training only conv under KC-P must not make the
// depthwise or vector segments (or other dataflows) claim readiness.
func TestSegmentIsolation(t *testing.T) {
	cfg := engine.Default()
	m := New()
	feed(m, cfg, engine.KCPartition, 200, 23)
	sn := m.Snapshot()
	if sn == nil {
		t.Fatal("model not ready")
	}
	dw := engine.Task{Kind: graph.OpDepthwiseConv, Hp: 14, Wp: 14, Ci: 1, Cop: 96, Kh: 3, Kw: 3, Stride: 1}
	if _, ok := sn.Predict(cfg, engine.KCPartition, dw); ok {
		t.Error("untrained depthwise segment served a prediction")
	}
	conv := engine.Task{Kind: graph.OpConv, Hp: 14, Wp: 14, Ci: 64, Cop: 64, Kh: 3, Kw: 3, Stride: 1}
	if _, ok := sn.Predict(cfg, engine.YXPartition, conv); ok {
		t.Error("untrained YX-P segment served a prediction")
	}
}

// FuzzSurrogateFeatures: feature extraction must be total — it never
// panics and always produces finite values, over valid task ranges and
// degenerate/hostile ones alike (the extractor runs on whatever the
// oracle's miss stream carries).
func FuzzSurrogateFeatures(f *testing.F) {
	f.Add(int8(1), 16, 16, 64, 64, 3, 3, 1, 1, 16, 16, 0, 1)
	f.Add(int8(3), 1, 1, 25088, 4096, 1, 1, 1, 0, 16, 16, 8, 16)
	f.Add(int8(4), 0, -5, 0, 1<<30, -3, 7, 0, 1<<20, 0, -1, 3, 0)
	f.Add(int8(120), 1<<30, 1<<30, 1<<30, 1<<30, 1<<30, 1<<30, 1<<30, 1<<30, 1, 1, 2, 1)
	f.Fuzz(func(t *testing.T, kind int8, hp, wp, ci, cop, kh, kw, stride, reps, pex, pey, df, macs int) {
		cfg := engine.Config{PEx: pex, PEy: pey, MACsPerPE: macs,
			VectorLanes: 16, BufferBytes: 128 << 10, PortBytes: 8, FreqMHz: 500}
		task := engine.Task{Kind: graph.OpKind(kind), Hp: hp, Wp: wp, Ci: ci,
			Cop: cop, Kh: kh, Kw: kw, Stride: stride, Replicas: reps}
		x := Features(cfg, engine.Dataflow(df), task)
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d not finite: %v (task %+v cfg %+v)", i, v, task, cfg)
			}
		}
		if x[0] != 1 {
			t.Fatalf("bias feature %v != 1", x[0])
		}
	})
}
