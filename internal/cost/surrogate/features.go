package surrogate

import (
	"math"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// NumFeatures is the length of the engineered feature vector. The features
// mirror the multiplicative structure of the closed-form engine model
// (pass counts x per-pass work under each dataflow, fill/drain charges,
// vector-lane occupancy) plus the quantization remainders and byte
// footprints that distinguish well- and badly-shaped tiles — so a linear
// model over them can reproduce the engine almost exactly, and a future
// non-linear upgrade (gradient-boosted stumps) has informative splits.
const NumFeatures = 15

// Feature vector layout (all float64, always finite):
//
//	 0  bias (1)
//	 1  KC-P work:      passes_KC * per-pass inner loop
//	 2  KC-P fill/drain: passes_KC * (PEx + PEy)
//	 3  YX-P work:      passes_YX * per-pass inner loop
//	 4  YX-P fill/drain: passes_YX * (PEx + PEy)
//	 5  Flex-P work:    passes_Flex * per-pass inner loop
//	 6  Flex-P fill/drain: passes_Flex * (PEx + PEy)
//	 7  vector-unit cycles: ceil(elements / VectorLanes)
//	 8  Hp mod PEx      (spatial row quantization remainder)
//	 9  Cop mod PEy     (output-channel column quantization remainder)
//	10  Ci mod PEx      (input-channel row quantization remainder)
//	11  input bytes
//	12  weight bytes
//	13  output bytes
//	14  kernel area Kh*Kw
//
// Pass/inner terms are computed per operator class (dense conv/FC,
// depthwise, vector) exactly as the engine's loop nests count them, so
// within one (class, dataflow) segment the true cycle function is linear
// in this vector. Replicas are normalized out: features describe one
// replica and Predict scales by the replica count, matching the engine's
// exact cycles*reps factorization.

// numSegments is the segmented-model count: 3 operator classes x 3
// dataflows. Segmentation is equivalent to a dataflow/class one-hot fully
// interacted with every feature, but keeps each fit tiny and exact.
const numSegments = 9

// classOf buckets operator kinds by which engine loop nest prices them.
func classOf(kind graph.OpKind) int {
	switch kind {
	case graph.OpConv, graph.OpFC:
		return 0
	case graph.OpDepthwiseConv:
		return 1
	default:
		return 2 // vector unit (pool/eltwise/activation/global-pool/unknown)
	}
}

// segmentOf maps an evaluation onto its model segment. Dataflows outside
// the known range clamp to Flex so the function is total.
func segmentOf(kind graph.OpKind, df engine.Dataflow) int {
	d := int(df)
	if d < 0 {
		d = 0
	}
	if d > 2 {
		d = 2
	}
	return classOf(kind)*3 + d
}

// posF clamps a dimension to >= 1 as a float64, keeping feature
// extraction total over arbitrary (even degenerate) task fields.
func posF(v int) float64 {
	if v < 1 {
		return 1
	}
	return float64(v)
}

// cdivF is ceil(a/b) in float64 (b already clamped positive).
func cdivF(a, b float64) float64 { return math.Ceil(a / b) }

// features fills x with the engineered vector for one evaluation,
// normalized to a single replica. It never panics and always produces
// finite values: dimensions are clamped to >= 1 and all arithmetic is
// float64, so hostile or degenerate tasks (fuzzed inputs) degrade to
// garbage-but-finite features instead of overflow or division by zero.
func features(cfg engine.Config, df engine.Dataflow, t engine.Task, x *[NumFeatures]float64) {
	pex, pey := posF(cfg.PEx), posF(cfg.PEy)
	pez := posF(cfg.PEzOf())
	macs := posF(cfg.MACsPerPE)
	lanes := posF(cfg.VectorLanes)
	hp, wp := posF(t.Hp), posF(t.Wp)
	ci, cop := posF(t.Ci), posF(t.Cop)
	kh, kw := posF(t.Kh), posF(t.Kw)
	fd := pex + pey // the engine's per-pass fill/drain charge

	*x = [NumFeatures]float64{}
	x[0] = 1
	switch classOf(t.Kind) {
	case 0: // dense conv / FC
		passKC := cdivF(ci, pex) * cdivF(cop, pey)
		x[1] = passKC * math.Floor(hp*wp*kh*kw/macs)
		x[2] = passKC * fd
		passYX := cdivF(hp, pex) * cdivF(wp, pey)
		x[3] = passYX * math.Floor(ci*cop*kh*kw/macs)
		x[4] = passYX * fd
		passFx := cdivF(ci, pex) * cdivF(cop, pey) * cdivF(wp, pez)
		x[5] = passFx * math.Floor(hp*kh*kw/macs)
		x[6] = passFx * fd
	case 1: // depthwise: kernel window on the rows, no Ci factor
		passKC := cdivF(kh*kw, pex) * cdivF(cop, pey)
		x[1] = passKC * math.Floor(hp*wp/macs)
		x[2] = passKC * fd
		passYX := cdivF(hp, pex) * cdivF(wp, pey)
		x[3] = passYX * math.Floor(cop*kh*kw/macs)
		x[4] = passYX * fd
		passFx := cdivF(kh*kw, pex) * cdivF(cop, pey) * cdivF(wp, pez)
		x[5] = passFx * math.Floor(hp/macs)
		x[6] = passFx * fd
	default: // vector unit
		elems := hp * wp * cop
		if t.Kind == graph.OpPool || t.Kind == graph.OpGlobalPool {
			elems *= kh * kw
		}
		x[7] = math.Ceil(elems / lanes)
	}
	x[8] = math.Mod(hp, pex)
	x[9] = math.Mod(cop, pey)
	x[10] = math.Mod(ci, pex)
	// Byte footprints, recomputed in floats (the Task methods use int64
	// arithmetic that can overflow on fuzzed extents).
	stride := posF(t.Stride)
	hi := (hp-1)*stride + kh
	wi := (wp-1)*stride + kw
	switch t.Kind {
	case graph.OpEltwise:
		x[11] = 2 * hp * wp * cop
	case graph.OpDepthwiseConv:
		x[11] = hi * wi * cop
	default:
		x[11] = hi * wi * ci
	}
	switch t.Kind {
	case graph.OpConv, graph.OpFC:
		x[12] = ci * cop * kh * kw
	case graph.OpDepthwiseConv:
		x[12] = cop * kh * kw
	}
	x[13] = hp * wp * cop
	x[14] = kh * kw

	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			x[i] = 0
		}
	}
}

// Features returns the engineered vector for one evaluation — exposed for
// tests and the feature-extraction fuzz target.
func Features(cfg engine.Config, df engine.Dataflow, t engine.Task) [NumFeatures]float64 {
	var x [NumFeatures]float64
	features(cfg, df, t, &x)
	return x
}
