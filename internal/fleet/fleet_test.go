package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// checkGoroutines arranges for the test to fail if it leaks goroutines:
// the count is captured now and re-checked after all cleanups (so after
// the coordinator and workers registered later in the test have shut
// down), with a GC+poll loop absorbing runtime stragglers.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before+3 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// connPair returns the two ends of a loopback TCP connection. The
// fault tests need real kernel buffering: net.Pipe's zero-buffer
// rendezvous deadlocks on traffic no real network blocks on (a stale
// reply the coordinator hasn't asked for yet meeting the coordinator's
// next request).
func connPair(t *testing.T) (worker, coord net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		wc.Close()
		t.Fatalf("accept: %v", r.err)
	}
	return wc, r.c
}

// pipeWorker runs a worker over one end of a loopback connection and
// registers the other end with the coordinator, optionally wrapping
// either side in a fault-injecting transport. It returns the worker
// session's exit channel; cleanup waits for the session to end.
func pipeWorker(t *testing.T, co *Coordinator, name string,
	wrapCoord, wrapWorker func(net.Conn) Transport) <-chan error {
	t.Helper()
	cw, cc := connPair(t)
	wt := NewTransport(cw)
	if wrapWorker != nil {
		wt = wrapWorker(cw)
	}
	ct := NewTransport(cc)
	if wrapCoord != nil {
		ct = wrapCoord(cc)
	}
	done := make(chan error, 1)
	go func() { done <- ServeConn(wt, WorkerOptions{Name: name}) }()
	added := make(chan error, 1)
	go func() {
		_, err := co.AddWorker(ct)
		added <- err
	}()
	if err := <-added; err != nil {
		t.Fatalf("AddWorker(%s): %v", name, err)
	}
	t.Cleanup(func() {
		wt.Close() // cleanups run LIFO, before the coordinator's Close
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Errorf("worker %s session did not end", name)
		}
	})
	return done
}

// newFleet builds a coordinator with n healthy pipe workers, torn down
// with the test.
func newFleet(t *testing.T, opts Options, n int) *Coordinator {
	t.Helper()
	co := NewCoordinator(opts)
	t.Cleanup(func() { co.Close() })
	for i := 0; i < n; i++ {
		pipeWorker(t, co, fmt.Sprintf("w%d", i), nil, nil)
	}
	return co
}

func testOptions(seed int64) anneal.Options {
	return anneal.Options{MaxIters: 400, Seed: seed, Chains: 4, ExchangeEvery: 50, MaxTilesPerLay: 256}
}

// resultJSON is the comparison key for bit-identity: every exported
// Result field, with Go's exact float64 round-trip.
func resultJSON(t *testing.T, res anneal.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

func fleetSolve(t *testing.T, co *Coordinator, g *graph.Graph, opt anneal.Options) anneal.Result {
	t.Helper()
	res, err := co.Solve(context.Background(), g, engine.Default(), engine.KCPartition, opt)
	if err != nil {
		t.Fatalf("fleet solve: %v", err)
	}
	return res
}

// TestFleetMatchesPortfolio pins the tentpole contract: a distributed
// solve over 1, 2 or 4 workers returns bit-identical results to the
// in-process chain portfolio with the same options.
func TestFleetMatchesPortfolio(t *testing.T) {
	checkGoroutines(t)
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch"} {
		t.Run(model, func(t *testing.T) {
			g := models.MustBuild(model)
			opt := testOptions(7)
			want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
			for _, workers := range []int{1, 2, 4} {
				co := newFleet(t, Options{Heartbeat: -1}, workers)
				got := resultJSON(t, fleetSolve(t, co, g, opt))
				if got != want {
					t.Errorf("W=%d: fleet result diverges from in-process portfolio\nfleet: %.120s\nlocal: %.120s", workers, got, want)
				}
				co.Close()
			}
		})
	}
}

// TestFleetMoreWorkersThanChains pins that surplus workers idle out
// rather than perturb the assignment: 4 chains over 6 workers uses the
// first 4 by name.
func TestFleetMoreWorkersThanChains(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(11)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := newFleet(t, Options{Heartbeat: -1}, 6)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("fleet result diverges with surplus workers")
	}
}

// TestFleetSingleChain: a Chains=1 portfolio distributes too (one
// worker owns the one chain) and stays identical to classic SA.
func TestFleetSingleChain(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := anneal.Options{MaxIters: 300, Seed: 3, Chains: 1, MaxTilesPerLay: 256}
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := newFleet(t, Options{Heartbeat: -1}, 2)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("single-chain fleet result diverges from SA")
	}
}

// TestFleetWarmStartParity: WarmStart crosses the wire and yields the
// same result as the in-process warm-started portfolio.
func TestFleetWarmStartParity(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyresnet")
	cold := anneal.SA(g, engine.Default(), engine.KCPartition, testOptions(5))
	opt := testOptions(5)
	opt.WarmStart = cold.Spec
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := newFleet(t, Options{Heartbeat: -1}, 2)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("warm-started fleet result diverges from in-process warm start")
	}
}

func TestFleetNoWorkers(t *testing.T) {
	checkGoroutines(t)
	co := NewCoordinator(Options{Heartbeat: -1})
	defer co.Close()
	g := models.MustBuild("tinyconv")
	_, err := co.Solve(context.Background(), g, engine.Default(), engine.KCPartition, testOptions(1))
	if err != ErrNoWorkers {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestFleetRejectsGAPortfolio(t *testing.T) {
	checkGoroutines(t)
	co := newFleet(t, Options{Heartbeat: -1}, 1)
	g := models.MustBuild("tinyconv")
	opt := testOptions(1)
	opt.PortfolioGA = true
	if _, err := co.Solve(context.Background(), g, engine.Default(), engine.KCPartition, opt); err == nil {
		t.Fatal("GA portfolio accepted by fleet solve")
	}
}

// TestProtocolVersionMismatch: a worker speaking a different protocol
// version is refused at the handshake.
func TestProtocolVersionMismatch(t *testing.T) {
	checkGoroutines(t)
	co := NewCoordinator(Options{Heartbeat: -1})
	defer co.Close()
	cw, cc := net.Pipe()
	defer cw.Close()
	added := make(chan error, 1)
	go func() {
		_, err := co.AddWorker(NewTransport(cc))
		added <- err
	}()
	wt := NewTransport(cw)
	if err := wt.WriteFrame(replyFrame(MsgHello, 0, Hello{Proto: ProtocolVersion + 1, Name: "old"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := <-added; err == nil {
		t.Fatal("mismatched protocol version accepted")
	}
	f, err := wt.ReadFrame()
	if err == nil && f.Type != MsgError {
		t.Fatalf("worker got %d, want MsgError", f.Type)
	}
	if co.NumWorkers() != 0 {
		t.Fatalf("worker registered despite version mismatch")
	}
}

// TestHeartbeatReapsDeadWorker: a worker that stops answering pings is
// retired by the reaper.
func TestHeartbeatReapsDeadWorker(t *testing.T) {
	checkGoroutines(t)
	co := NewCoordinator(Options{Heartbeat: 20 * time.Millisecond})
	t.Cleanup(func() { co.Close() })
	cw, cc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(NewTransport(cw), WorkerOptions{Name: "doomed"}) }()
	added := make(chan error, 1)
	go func() {
		_, err := co.AddWorker(NewTransport(cc))
		added <- err
	}()
	if err := <-added; err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if n := co.NumWorkers(); n != 1 {
		t.Fatalf("NumWorkers = %d, want 1", n)
	}
	cw.Close() // the worker dies
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for co.NumWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper did not retire the dead worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
