// Package fleet distributes the SA chain portfolio across processes: a
// coordinator (embedded in adserve) owns admission, caching and the
// exchange barriers, and N workers (adworker) each run a shard of the
// chains over a small length-prefixed TCP protocol.
//
// The wire format is deliberately tiny: every message is one frame,
//
//	uint32 length | uint8 type | uint64 seq | payload (JSON)
//
// with the length prefix covering type+seq+payload (so a frame costs 4
// bytes of framing plus 9 of header). Big-endian throughout. Payloads
// are JSON because everything that crosses the wire is either scalars
// or choice vectors — Go's encoding round-trips float64 and int64
// exactly, which is what the bit-identical determinism contract needs
// (see internal/anneal/shard.go).
//
// seq is a per-connection request counter. The coordinator drives every
// connection in lockstep — one outstanding request at a time — and
// retries reuse the request's original seq, so the worker can dedup
// redundant deliveries (it caches its last reply and resends it for a
// repeated seq) and the coordinator can skip stale replies. That gives
// at-most-once execution over a transport allowed to drop, delay or
// duplicate frames.
package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameBytes caps a frame's framed length (type + seq + payload). A
// frame for even the largest zoo model is a few MB of JSON; anything
// past this is a corrupt or hostile peer.
const MaxFrameBytes = 64 << 20

// frameHeader is type+seq, the framed bytes before the payload.
const frameHeader = 1 + 8

// MsgType tags a frame. Values are part of the wire protocol: never
// renumber, only append.
type MsgType uint8

// Frame is one decoded wire frame.
type Frame struct {
	Type    MsgType
	Seq     uint64
	Payload []byte
}

// ErrShortFrame reports that the buffer ends before the frame does —
// the caller should read more bytes and retry.
var ErrShortFrame = errors.New("fleet: short frame")

// EncodeFrame appends the frame's wire encoding to dst.
func EncodeFrame(dst []byte, f Frame) ([]byte, error) {
	n := frameHeader + len(f.Payload)
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("fleet: frame of %d bytes exceeds cap %d", n, MaxFrameBytes)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, byte(f.Type))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	return append(dst, f.Payload...), nil
}

// DecodeFrame decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. ErrShortFrame means b holds
// only a prefix of a (plausibly valid) frame; any other error means the
// stream is corrupt and the connection should be dropped. Never panics,
// for any input — FuzzFleetDecode holds it to that.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrShortFrame
	}
	n := binary.BigEndian.Uint32(b)
	if n < frameHeader {
		return Frame{}, 0, fmt.Errorf("fleet: frame length %d below header size %d", n, frameHeader)
	}
	if n > MaxFrameBytes {
		return Frame{}, 0, fmt.Errorf("fleet: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	if uint32(len(b)-4) < n {
		return Frame{}, 0, ErrShortFrame
	}
	body := b[4 : 4+int(n)]
	f := Frame{
		Type: MsgType(body[0]),
		Seq:  binary.BigEndian.Uint64(body[1:9]),
	}
	if len(body) > frameHeader {
		f.Payload = append([]byte(nil), body[frameHeader:]...)
	}
	return f, 4 + int(n), nil
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, f Frame) error {
	buf, err := EncodeFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < frameHeader {
		return Frame{}, fmt.Errorf("fleet: frame length %d below header size %d", n, frameHeader)
	}
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("fleet: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f := Frame{
		Type: MsgType(body[0]),
		Seq:  binary.BigEndian.Uint64(body[1:9]),
	}
	if len(body) > frameHeader {
		f.Payload = body[frameHeader:]
	}
	return f, nil
}
