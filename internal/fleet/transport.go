package fleet

import (
	"bufio"
	"net"
	"time"
)

// Transport is one frame-oriented connection between the coordinator
// and a worker. Both sides drive it in strict lockstep from a single
// goroutine at a time, so implementations need no internal locking.
//
// The interface exists so the fault-injection tests can wrap a real
// codec around a misbehaving byte stream (drops, delays, duplicates,
// mid-frame cuts) without touching protocol code — and so in-process
// tests can wire a coordinator to workers over net.Pipe.
type Transport interface {
	// WriteFrame sends one frame.
	WriteFrame(Frame) error
	// ReadFrame blocks for the next frame.
	ReadFrame() (Frame, error)
	// SetDeadline bounds subsequent reads and writes; the zero time
	// removes the bound. Expired deadlines surface as timeout errors
	// from ReadFrame/WriteFrame.
	SetDeadline(time.Time) error
	// Close tears the connection down; blocked reads and writes fail.
	Close() error
}

// connTransport is the production Transport: a net.Conn with buffered
// reads and writes under the frame codec.
type connTransport struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewTransport wraps a net.Conn (TCP in production, net.Pipe in tests)
// in the frame codec.
func NewTransport(c net.Conn) Transport {
	return &connTransport{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

func (t *connTransport) WriteFrame(f Frame) error {
	if err := writeFrame(t.bw, f); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *connTransport) ReadFrame() (Frame, error) { return readFrame(t.br) }

func (t *connTransport) SetDeadline(d time.Time) error { return t.c.SetDeadline(d) }

func (t *connTransport) Close() error { return t.c.Close() }
