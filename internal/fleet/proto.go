package fleet

import (
	"encoding/json"
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
)

// ProtocolVersion is checked in the Hello/Welcome handshake; peers on
// different versions refuse each other. Bump on any wire change.
const ProtocolVersion = 1

// Message types. The request/reply pairing is strict lockstep: the
// coordinator sends one request per connection at a time and the worker
// answers with the paired reply type (or MsgError).
const (
	MsgHello       MsgType = 1  // worker → coordinator, on connect
	MsgWelcome     MsgType = 2  // coordinator → worker, handshake reply
	MsgPing        MsgType = 3  // heartbeat request
	MsgPong        MsgType = 4  // heartbeat reply
	MsgSolveStart  MsgType = 5  // ship SolveSpec, build the shard
	MsgSolveReady  MsgType = 6  // shard built (candidate space + chains)
	MsgRunSegment  MsgType = 7  // advance owned chains n iterations
	MsgSegmentDone MsgType = 8  // per-chain snapshots at the barrier
	MsgStateReq    MsgType = 9  // fetch one chain's best choice vector
	MsgState       MsgType = 10 // that vector
	MsgAdopt       MsgType = 11 // apply exchange-barrier adoptions
	MsgAdoptDone   MsgType = 12 // adoptions applied
	MsgFinalReq    MsgType = 13 // fetch the winning chain's closing state
	MsgFinal       MsgType = 14 // that state
	MsgRelease     MsgType = 15 // drop the shard (solve over)
	MsgReleased    MsgType = 16 // shard dropped
	MsgError       MsgType = 17 // reply: request failed (worker still up)
)

// Hello opens a worker connection.
type Hello struct {
	Proto int    `json:"proto"`
	Name  string `json:"name,omitempty"` // advisory; coordinator may rename
}

// Welcome accepts a worker; Name is the registered (possibly assigned)
// worker name.
type Welcome struct {
	Proto int    `json:"proto"`
	Name  string `json:"name"`
}

// WireOptions is the subset of anneal.Options that crosses the wire:
// every field that shapes the candidate space or a chain trajectory,
// and nothing that doesn't (Oracle, Metrics, Ctx, Progress stay on
// their own side; Surrogate and PortfolioGA are rejected for fleet
// solves). All fields round-trip exactly through JSON.
type WireOptions struct {
	MaxIters       int                    `json:"max_iters"`
	Len            float64                `json:"len"`
	Epsilon        float64                `json:"epsilon"`
	Temp           float64                `json:"temp"`
	Lambda         float64                `json:"lambda"`
	Seed           int64                  `json:"seed"`
	MaxTilesPerLay int                    `json:"max_tiles"`
	MaxSplits      int                    `json:"max_splits"`
	BufferFraction float64                `json:"buffer_fraction"`
	Chains         int                    `json:"chains"`
	ExchangeEvery  int                    `json:"exchange_every"`
	WarmStart      map[int]atom.Partition `json:"warm_start,omitempty"`
}

// wireOptionsOf extracts the wire-clean subset of opt.
func wireOptionsOf(opt anneal.Options) WireOptions {
	return WireOptions{
		MaxIters:       opt.MaxIters,
		Len:            opt.Len,
		Epsilon:        opt.Epsilon,
		Temp:           opt.Temp,
		Lambda:         opt.Lambda,
		Seed:           opt.Seed,
		MaxTilesPerLay: opt.MaxTilesPerLay,
		MaxSplits:      opt.MaxSplits,
		BufferFraction: opt.BufferFraction,
		Chains:         opt.Chains,
		ExchangeEvery:  opt.ExchangeEvery,
		WarmStart:      opt.WarmStart,
	}
}

// Options expands the wire subset back into anneal.Options. The worker
// leaves Oracle nil (a fresh memoized oracle per shard — memoization
// caches exact values, so sharing or not sharing it never changes a
// trajectory) and Metrics/Ctx/Progress nil.
func (w WireOptions) Options() anneal.Options {
	return anneal.Options{
		MaxIters:       w.MaxIters,
		Len:            w.Len,
		Epsilon:        w.Epsilon,
		Temp:           w.Temp,
		Lambda:         w.Lambda,
		Seed:           w.Seed,
		MaxTilesPerLay: w.MaxTilesPerLay,
		MaxSplits:      w.MaxSplits,
		BufferFraction: w.BufferFraction,
		Chains:         w.Chains,
		ExchangeEvery:  w.ExchangeEvery,
		WarmStart:      w.WarmStart,
	}
}

// SolveSpec is everything a worker needs to build its shard: the
// canonical graph document (modelio encoding), the hardware tuple, the
// wire-clean options and the shard's global chain indices.
type SolveSpec struct {
	Graph    json.RawMessage `json:"graph"`
	Engine   engine.Config   `json:"engine"`
	Dataflow engine.Dataflow `json:"dataflow"`
	Opt      WireOptions     `json:"opt"`
	Chains   []int           `json:"chains"`
}

// SolveStart carries the spec.
type SolveStart struct {
	Spec SolveSpec `json:"spec"`
}

// Ack is the empty success reply (MsgSolveReady, MsgAdoptDone,
// MsgReleased, MsgPong).
type Ack struct{}

// RunSegment asks the worker to advance every non-converged owned
// chain by N iterations.
type RunSegment struct {
	N int `json:"n"`
}

// SegmentDone returns the owned chains' snapshots, ordered by global
// chain index.
type SegmentDone struct {
	Stats []anneal.ChainStat `json:"stats"`
}

// StateReq asks for one owned chain's best choice vector.
type StateReq struct {
	Chain int `json:"chain"`
}

// State is the reply.
type State struct {
	Chain  int   `json:"chain"`
	Choice []int `json:"choice"`
}

// Adoption is one exchange-barrier adoption for an owned chain. Choice
// is present only when the adopted energy undercuts the chain's own
// best (the only case the clone branch runs — see anneal.Shard.Adopt).
type Adoption struct {
	Chain  int     `json:"chain"`
	BestE  float64 `json:"best_e"`
	BestS  float64 `json:"best_s"`
	Choice []int   `json:"choice,omitempty"`
}

// Adopt carries a barrier's adoptions for this worker's chains.
type Adopt struct {
	Adoptions []Adoption `json:"adoptions"`
}

// FinalReq asks for the winning chain's closing state.
type FinalReq struct {
	Chain int `json:"chain"`
}

// Final is the reply.
type Final struct {
	Final anneal.ChainFinal `json:"final"`
}

// ErrMsg is the payload of a MsgError reply: the request failed for an
// application reason (bad spec, unknown chain); the worker itself is
// still healthy. Connection-level trouble has no payload — it surfaces
// as read/write errors.
type ErrMsg struct {
	Err string `json:"err"`
}

// errorFrame builds a MsgError reply for seq.
func errorFrame(seq uint64, err error) Frame {
	body, _ := json.Marshal(ErrMsg{Err: err.Error()})
	return Frame{Type: MsgError, Seq: seq, Payload: body}
}

// replyFrame builds a reply frame of type t for seq with a JSON payload.
func replyFrame(t MsgType, seq uint64, payload any) Frame {
	body, err := json.Marshal(payload)
	if err != nil {
		return errorFrame(seq, fmt.Errorf("fleet: encoding %d reply: %w", t, err))
	}
	return Frame{Type: t, Seq: seq, Payload: body}
}

// decodeErr extracts the error from a MsgError frame.
func decodeErr(f Frame) error {
	var e ErrMsg
	if err := json.Unmarshal(f.Payload, &e); err != nil || e.Err == "" {
		return fmt.Errorf("fleet: peer reported an unspecified error")
	}
	return fmt.Errorf("fleet: peer: %s", e.Err)
}
