package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/modelio"
)

// WorkerOptions configures one worker connection.
type WorkerOptions struct {
	// Name is advertised in the handshake; the coordinator may assign a
	// different one (returned in Welcome) if it collides.
	Name string
	// IdleTimeout bounds the wait for the next request; the
	// coordinator's heartbeat pings reset it, so an expiry means the
	// coordinator is gone and the connection should be retired
	// (RunWorker then reconnects). Default 2m; < 0 disables.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives connection-lifecycle lines.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) idle() time.Duration {
	if o.IdleTimeout < 0 {
		return 0
	}
	if o.IdleTimeout == 0 {
		return 2 * time.Minute
	}
	return o.IdleTimeout
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// workerState is one connection's protocol state: the current shard
// plus the at-most-once bookkeeping. seqs are per-connection and
// monotonic; a repeated seq is a retry of a request whose reply was
// lost, answered from the cache without re-executing (re-running a
// RunSegment would corrupt the chain trajectories), and a lower seq is
// a stale duplicate, dropped without reply.
type workerState struct {
	shard     *anneal.Shard
	lastSeq   uint64
	lastReply *Frame
}

// ServeConn runs the worker side of one coordinator connection until
// the connection fails, idles out, or is closed. The caller owns the
// transport's lifetime on error paths; ServeConn closes it on return.
func ServeConn(t Transport, opt WorkerOptions) error {
	defer t.Close()

	// Handshake: Hello out, Welcome back, versions must agree.
	_ = t.SetDeadline(time.Now().Add(10 * time.Second))
	hello := replyFrame(MsgHello, 0, Hello{Proto: ProtocolVersion, Name: opt.Name})
	if err := t.WriteFrame(hello); err != nil {
		return fmt.Errorf("fleet: sending hello: %w", err)
	}
	f, err := t.ReadFrame()
	if err != nil {
		return fmt.Errorf("fleet: awaiting welcome: %w", err)
	}
	if f.Type == MsgError {
		return decodeErr(f)
	}
	if f.Type != MsgWelcome {
		return fmt.Errorf("fleet: expected welcome, got message type %d", f.Type)
	}
	var w Welcome
	if err := json.Unmarshal(f.Payload, &w); err != nil {
		return fmt.Errorf("fleet: decoding welcome: %w", err)
	}
	if w.Proto != ProtocolVersion {
		return fmt.Errorf("fleet: coordinator speaks protocol %d, this worker %d", w.Proto, ProtocolVersion)
	}
	opt.logf("fleet worker %q: registered", w.Name)

	st := &workerState{}
	idle := opt.idle()
	for {
		if idle > 0 {
			_ = t.SetDeadline(time.Now().Add(idle))
		} else {
			_ = t.SetDeadline(time.Time{})
		}
		f, err := t.ReadFrame()
		if err != nil {
			return err
		}
		if st.lastReply != nil && f.Seq == st.lastSeq {
			// Retry of the last request: resend the cached reply.
			if err := t.WriteFrame(*st.lastReply); err != nil {
				return err
			}
			continue
		}
		if f.Seq <= st.lastSeq {
			continue // stale duplicate of an older request
		}
		reply := st.handle(f)
		st.lastSeq, st.lastReply = f.Seq, &reply
		if err := t.WriteFrame(reply); err != nil {
			return err
		}
	}
}

// handle executes one fresh request and builds its reply.
func (st *workerState) handle(f Frame) Frame {
	switch f.Type {
	case MsgPing:
		return replyFrame(MsgPong, f.Seq, Ack{})

	case MsgSolveStart:
		var req SolveStart
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding solve spec: %w", err))
		}
		g, err := modelio.Decode(req.Spec.Graph)
		if err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding graph: %w", err))
		}
		sh, err := anneal.NewShard(g, req.Spec.Engine, req.Spec.Dataflow, req.Spec.Opt.Options(), req.Spec.Chains)
		if err != nil {
			return errorFrame(f.Seq, err)
		}
		// A SolveStart always replaces the current shard: after a
		// setup-phase reassignment the coordinator re-sends the spec
		// with a new chain set before anything has run.
		st.shard = sh
		return replyFrame(MsgSolveReady, f.Seq, Ack{})

	case MsgRunSegment:
		if st.shard == nil {
			return errorFrame(f.Seq, fmt.Errorf("no shard loaded"))
		}
		var req RunSegment
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding segment request: %w", err))
		}
		if req.N <= 0 {
			return errorFrame(f.Seq, fmt.Errorf("segment of %d iterations", req.N))
		}
		return replyFrame(MsgSegmentDone, f.Seq, SegmentDone{Stats: st.shard.RunSegment(req.N)})

	case MsgStateReq:
		if st.shard == nil {
			return errorFrame(f.Seq, fmt.Errorf("no shard loaded"))
		}
		var req StateReq
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding state request: %w", err))
		}
		choice, err := st.shard.BestChoice(req.Chain)
		if err != nil {
			return errorFrame(f.Seq, err)
		}
		return replyFrame(MsgState, f.Seq, State{Chain: req.Chain, Choice: choice})

	case MsgAdopt:
		if st.shard == nil {
			return errorFrame(f.Seq, fmt.Errorf("no shard loaded"))
		}
		var req Adopt
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding adoptions: %w", err))
		}
		for _, a := range req.Adoptions {
			if a.Choice != nil {
				if err := st.shard.ValidChoice(a.Choice); err != nil {
					return errorFrame(f.Seq, err)
				}
			}
			if err := st.shard.Adopt(a.Chain, a.BestE, a.BestS, a.Choice); err != nil {
				return errorFrame(f.Seq, err)
			}
		}
		return replyFrame(MsgAdoptDone, f.Seq, Ack{})

	case MsgFinalReq:
		if st.shard == nil {
			return errorFrame(f.Seq, fmt.Errorf("no shard loaded"))
		}
		var req FinalReq
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return errorFrame(f.Seq, fmt.Errorf("decoding final request: %w", err))
		}
		fin, err := st.shard.Final(req.Chain)
		if err != nil {
			return errorFrame(f.Seq, err)
		}
		return replyFrame(MsgFinal, f.Seq, Final{Final: fin})

	case MsgRelease:
		st.shard = nil
		return replyFrame(MsgReleased, f.Seq, Ack{})

	default:
		return errorFrame(f.Seq, fmt.Errorf("unknown message type %d", f.Type))
	}
}

// Dial connects to a coordinator and serves one worker session until
// the connection ends or ctx is cancelled.
func Dial(ctx context.Context, addr string, opt WorkerOptions) error {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	t := NewTransport(c)
	stop := context.AfterFunc(ctx, func() { t.Close() })
	defer stop()
	return ServeConn(t, opt)
}

// RunWorker dials the coordinator and serves sessions until ctx is
// cancelled, reconnecting with capped exponential backoff — the adworker
// main loop.
func RunWorker(ctx context.Context, addr string, opt WorkerOptions) error {
	const maxBackoff = 30 * time.Second
	backoff := time.Second
	for {
		start := time.Now()
		err := Dial(ctx, addr, opt)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(start) > maxBackoff {
			backoff = time.Second // the last session was healthy for a while
		}
		opt.logf("fleet worker: session with %s ended (%v); reconnecting in %s", addr, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
