package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFleetDecode holds DecodeFrame to its contract on arbitrary bytes:
// never panic, never read past the buffer, and on success consume
// exactly one well-formed frame that re-encodes to the same bytes.
func FuzzFleetDecode(f *testing.F) {
	// Well-formed frames.
	for _, fr := range []Frame{
		{Type: MsgPing, Seq: 1},
		{Type: MsgHello, Seq: 0, Payload: []byte(`{"proto":1,"name":"w0"}`)},
		{Type: MsgSegmentDone, Seq: 42, Payload: []byte(`{"stats":[{"chain":0,"e":1.5}]}`)},
		{Type: MsgError, Seq: 7, Payload: []byte(`{"err":"boom"}`)},
	} {
		buf, err := EncodeFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1]) // truncated payload
		f.Add(buf[:2])          // truncated length prefix
	}
	// Malformed lengths: below the header floor and above the cap.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 8, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrameBytes+1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			return
		}
		if n < 4+frameHeader || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		re, err := EncodeFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}
