package fleet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

// The fault-injection suite: a flaky Transport double drops, delays,
// duplicates and mid-frame-cuts traffic, and the tests pin the
// coordinator's three survival behaviours — same-seq retry with
// at-most-once worker execution, setup-phase reassignment that stays
// bit-identical, and mid-solve degradation to the surviving chains.
// Every test runs the goroutine-leak accounting from fleet_test.go.

type faultKind int

const (
	faultNone  faultKind = iota
	faultDrop            // swallow the frame
	faultDup             // deliver it twice
	faultDelay           // sleep past the peer's deadline, then deliver
	faultCut             // write half the encoded frame, then sever the conn
)

// flakyTransport wraps the real codec over a net.Conn and misdelivers
// chosen writes. Frames are counted per direction from 0 (the handshake
// frame is write 0 on both sides). It implements Transport, so either
// side of a connection can be made flaky without touching protocol
// code.
// Deliveries go through a serializing mutex so delayed and duplicated
// frames (delivered from spawned goroutines — net.Pipe is unbuffered,
// so a synchronous sleep or double-write would wedge the event loop the
// way no buffered network does) never interleave mid-frame; they may
// reorder against later traffic, which is exactly what the seq
// discipline has to absorb.
type flakyTransport struct {
	c     net.Conn
	inner Transport
	delay time.Duration

	mu     sync.Mutex
	n      int
	faults map[int]faultKind
	every  int       // every-th write gets everyKind (0 = table only)
	kind   faultKind // used with every

	wmu sync.Mutex // serializes frame deliveries
}

func newFlaky(c net.Conn, faults map[int]faultKind) *flakyTransport {
	return &flakyTransport{c: c, inner: NewTransport(c), faults: faults, delay: 300 * time.Millisecond}
}

func newFlakyEvery(c net.Conn, every int, kind faultKind) *flakyTransport {
	return &flakyTransport{c: c, inner: NewTransport(c), every: every, kind: kind, delay: 300 * time.Millisecond}
}

func (f *flakyTransport) pick() faultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := f.faults[f.n]
	if k == faultNone && f.every > 0 && f.n > 0 && f.n%f.every == 0 {
		k = f.kind
	}
	f.n++
	return k
}

func (f *flakyTransport) deliver(fr Frame) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	return f.inner.WriteFrame(fr)
}

func (f *flakyTransport) WriteFrame(fr Frame) error {
	switch f.pick() {
	case faultDrop:
		return nil
	case faultDup:
		if err := f.deliver(fr); err != nil {
			return err
		}
		go f.deliver(fr)
		return nil
	case faultDelay:
		go func() {
			time.Sleep(f.delay)
			f.deliver(fr)
		}()
		return nil
	case faultCut:
		buf, err := EncodeFrame(nil, fr)
		if err != nil {
			return err
		}
		f.wmu.Lock()
		f.c.Write(buf[:len(buf)/2])
		f.c.Close()
		f.wmu.Unlock()
		return nil
	default:
		return f.deliver(fr)
	}
}

func (f *flakyTransport) ReadFrame() (Frame, error)     { return f.inner.ReadFrame() }
func (f *flakyTransport) SetDeadline(d time.Time) error { return f.inner.SetDeadline(d) }
func (f *flakyTransport) Close() error                  { return f.inner.Close() }

// faultOptions keeps retry cadence fast so delay/timeout tests stay
// quick: 100ms per attempt, 3 attempts, 10ms first backoff.
func faultOptions() Options {
	return Options{
		Heartbeat:       -1,
		SetupTimeout:    2 * time.Second,
		SegmentTimeout:  2 * time.Second,
		ExchangeTimeout: 500 * time.Millisecond,
		RetryBase:       10 * time.Millisecond,
	}
}

// TestFaultDroppedRequestsRetried: every 3rd coordinator→worker frame
// vanishes; same-seq retries push the solve through and the result
// stays bit-identical to the clean portfolio.
func TestFaultDroppedRequestsRetried(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(7)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	pipeWorker(t, co, "w0", func(c net.Conn) Transport { return newFlakyEvery(c, 3, faultDrop) }, nil)
	pipeWorker(t, co, "w1", nil, nil)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges under dropped requests")
	}
}

// TestFaultDroppedRepliesRetried: the worker's replies get lost
// instead; the retry re-asks under the same seq, the worker answers
// from its reply cache without re-running the segment, and the result
// is still bit-identical.
func TestFaultDroppedRepliesRetried(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(7)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	pipeWorker(t, co, "w0", nil, func(c net.Conn) Transport { return newFlakyEvery(c, 3, faultDrop) })
	pipeWorker(t, co, "w1", nil, nil)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges under dropped replies (segment re-executed?)")
	}
}

// TestFaultDuplicatedFrames: both directions duplicate aggressively;
// seq dedup on the worker and stale-reply skipping on the coordinator
// keep execution at-most-once and the result bit-identical.
func TestFaultDuplicatedFrames(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(9)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	pipeWorker(t, co, "w0",
		func(c net.Conn) Transport { return newFlakyEvery(c, 2, faultDup) },
		nil)
	pipeWorker(t, co, "w1",
		nil,
		func(c net.Conn) Transport { return newFlakyEvery(c, 2, faultDup) })
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges under duplicated frames")
	}
}

// TestFaultDelayedReply: one reply arrives after the coordinator's
// deadline. The retry (same seq) is answered from the worker's cache;
// the late original is skipped as a stale duplicate; the segment ran
// once.
func TestFaultDelayedReply(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(13)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	fo := faultOptions()
	fo.SetupTimeout = 150 * time.Millisecond
	fo.SegmentTimeout = 150 * time.Millisecond
	co := NewCoordinator(fo)
	t.Cleanup(func() { co.Close() })
	// Worker-side write 2 is its first RunSegment reply (0 = hello,
	// 1 = solve-ready).
	pipeWorker(t, co, "w0", nil, func(c net.Conn) Transport {
		return newFlaky(c, map[int]faultKind{2: faultDelay})
	})
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges under a delayed reply")
	}
}

// TestFaultSetupReassignment: one worker's connection dies mid-frame
// during SolveStart delivery. Nothing has executed, so the coordinator
// reassigns the whole portfolio to the survivor and the result is
// bit-identical to the clean solve.
func TestFaultSetupReassignment(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(21)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	var events []Event
	var evMu sync.Mutex
	co.SetOnEvent(func(e Event) {
		evMu.Lock()
		events = append(events, e)
		evMu.Unlock()
	})
	// Coordinator-side write 1 is SolveStart (0 = welcome): cut it.
	pipeWorker(t, co, "w0", func(c net.Conn) Transport {
		return newFlaky(c, map[int]faultKind{1: faultCut})
	}, nil)
	pipeWorker(t, co, "w1", nil, nil)
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges after setup reassignment")
	}
	evMu.Lock()
	defer evMu.Unlock()
	lost := false
	for _, e := range events {
		if e.Type == "worker_lost" && e.Worker == "w0" {
			lost = true
		}
	}
	if !lost {
		t.Errorf("no worker_lost event for the cut worker; events: %+v", events)
	}
}

// TestFaultMidSolveDegradation: a worker dies after chains have run.
// The solve degrades to the survivor's chains and still completes with
// a valid result (the full-width digest is no longer pinned — that is
// the documented trade).
func TestFaultMidSolveDegradation(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(31)
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	degraded := make(chan Event, 16)
	co.SetOnEvent(func(e Event) {
		if e.Type == "solve_degraded" {
			select {
			case degraded <- e:
			default:
			}
		}
	})
	// Coordinator-side write 2 is the second request (welcome=0,
	// SolveStart=1): the first RunSegment dies mid-frame.
	pipeWorker(t, co, "w0", func(c net.Conn) Transport {
		return newFlaky(c, map[int]faultKind{2: faultCut})
	}, nil)
	pipeWorker(t, co, "w1", nil, nil)
	res := fleetSolve(t, co, g, opt)
	if len(res.Spec) == 0 {
		t.Fatalf("degraded solve returned an empty spec")
	}
	select {
	case <-degraded:
	default:
		t.Errorf("no solve_degraded event observed")
	}
	if n := co.NumWorkers(); n != 1 {
		t.Errorf("NumWorkers = %d after degradation, want 1", n)
	}
}

// TestFaultAllWorkersLost: every worker dies mid-solve; the solve
// reports ErrNoWorkers so the caller can fall back to the in-process
// portfolio.
func TestFaultAllWorkersLost(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(37)
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	for i, name := range []string{"w0", "w1"} {
		_ = i
		pipeWorker(t, co, name, func(c net.Conn) Transport {
			return newFlaky(c, map[int]faultKind{2: faultCut})
		}, nil)
	}
	_, err := co.Solve(context.Background(), g, engine.Default(), engine.KCPartition, opt)
	if err != ErrNoWorkers {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestFaultWorkerRejoins: a worker lost to faults reconnects (as
// RunWorker would) and the next solve uses it again.
func TestFaultWorkerRejoins(t *testing.T) {
	checkGoroutines(t)
	g := models.MustBuild("tinyconv")
	opt := testOptions(41)
	want := resultJSON(t, anneal.SA(g, engine.Default(), engine.KCPartition, opt))
	co := NewCoordinator(faultOptions())
	t.Cleanup(func() { co.Close() })
	pipeWorker(t, co, "w0", func(c net.Conn) Transport {
		return newFlaky(c, map[int]faultKind{2: faultCut})
	}, nil)
	pipeWorker(t, co, "w1", nil, nil)
	if res := fleetSolve(t, co, g, opt); len(res.Spec) == 0 {
		t.Fatalf("degraded solve returned an empty spec")
	}
	// w0's connection is gone; rejoin with a healthy one and verify the
	// fleet is whole again and bit-identical.
	pipeWorker(t, co, "w0", nil, nil)
	deadline := time.Now().Add(5 * time.Second)
	for co.NumWorkers() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rejoined worker not registered; have %d", co.NumWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := resultJSON(t, fleetSolve(t, co, g, opt)); got != want {
		t.Errorf("result diverges after the worker rejoined")
	}
}
