package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/modelio"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// The coordinator replays portfolioSA's barrier loop over the wire (see
// internal/anneal/shard.go for the determinism argument). Its failure
// model, in increasing severity:
//
//   - Transient transport trouble (drop, delay, duplicate): every
//     request is retried with exponential backoff under the same seq;
//     the worker's reply cache makes delivery at-most-once, so retries
//     never re-run a segment.
//   - Worker lost during setup (before any chain has run): the
//     coordinator reassigns chains over the surviving workers and
//     restarts the SolveStart round. Nothing has executed, so the solve
//     stays bit-identical to the single-process portfolio.
//   - Worker lost mid-solve: its chains are dropped from the portfolio
//     and the solve degrades to the survivors. The result is a valid
//     solve of a narrower portfolio — correct, deterministic given the
//     loss point, but not pinned to the full-width digests.
//   - All workers lost: ErrNoWorkers; the caller (internal/serve) falls
//     back to the in-process portfolio, which is bit-identical to the
//     undegraded fleet result.
type Coordinator struct {
	opt Options

	mu      sync.Mutex
	workers map[string]*workerConn
	nextID  int
	ln      net.Listener
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// solveMu serializes distributed solves: the protocol is lockstep
	// per connection and shards are per-solve state, so one solve runs
	// at a time and callers finding the fleet busy solve locally.
	solveMu sync.Mutex

	mWorkers  *obs.Gauge
	mSolves   *obs.Counter
	mRetries  *obs.Counter
	mDegraded *obs.Counter
	mLost     *obs.Counter
}

// Options configures a Coordinator. The zero value is production-ready.
type Options struct {
	// Heartbeat is the idle-worker ping interval (default 5s; < 0
	// disables the reaper — tests that inject long delays use this).
	Heartbeat time.Duration
	// SetupTimeout bounds one SolveStart round trip — it covers
	// candidate-space construction on the worker (default 2m).
	SetupTimeout time.Duration
	// SegmentTimeout bounds one RunSegment round trip (default 2m).
	SegmentTimeout time.Duration
	// ExchangeTimeout bounds the small barrier RPCs — state fetch,
	// adopt, final, release, ping (default 15s).
	ExchangeTimeout time.Duration
	// Attempts is the per-request delivery attempt count (default 3).
	Attempts int
	// RetryBase is the first retry's backoff, doubled per attempt
	// (default 25ms).
	RetryBase time.Duration
	// Metrics, when non-nil, receives fleet_* gauges and counters.
	Metrics *obs.Registry
	// OnEvent, when non-nil, receives lifecycle events (worker
	// joined/lost, solve degraded) — the serve layer forwards them to
	// the dashboard. Called from coordinator goroutines; must not block.
	OnEvent func(Event)
	// Logf, when non-nil, receives lifecycle log lines.
	Logf func(format string, args ...any)
}

// Event is one coordinator lifecycle event.
type Event struct {
	Type   string // "worker_joined", "worker_lost", "solve_degraded"
	Worker string
	Detail string
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat < 0 {
		return 0
	}
	if o.Heartbeat == 0 {
		return 5 * time.Second
	}
	return o.Heartbeat
}

func (o Options) setupTimeout() time.Duration {
	if o.SetupTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.SetupTimeout
}

func (o Options) segmentTimeout() time.Duration {
	if o.SegmentTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.SegmentTimeout
}

func (o Options) exchangeTimeout() time.Duration {
	if o.ExchangeTimeout <= 0 {
		return 15 * time.Second
	}
	return o.ExchangeTimeout
}

func (o Options) attempts() int {
	if o.Attempts <= 0 {
		return 3
	}
	return o.Attempts
}

func (o Options) retryBase() time.Duration {
	if o.RetryBase <= 0 {
		return 25 * time.Millisecond
	}
	return o.RetryBase
}

// ErrNoWorkers reports that a fleet solve could not run (or finish)
// because no workers survived. Callers fall back to the in-process
// portfolio.
var ErrNoWorkers = errors.New("fleet: no workers available")

// ErrBusy reports that a distributed solve is already in flight; the
// caller should solve locally rather than queue behind it.
var ErrBusy = errors.New("fleet: a distributed solve is already running")

// errWorkerLost marks a connection whose request could not be delivered
// within the retry budget.
var errWorkerLost = errors.New("fleet: worker lost")

// workerConn is the coordinator's handle on one worker. mu serializes
// RPCs (lockstep per connection); seq is the request counter shared
// with the worker's dedup cache.
type workerConn struct {
	name string
	t    Transport
	mu   sync.Mutex
	seq  uint64
	lost bool
}

// NewCoordinator starts a coordinator (and its heartbeat reaper, unless
// disabled). Callers feed it connections via Serve or AddWorker and
// must Close it.
func NewCoordinator(opt Options) *Coordinator {
	co := &Coordinator{
		opt:     opt,
		workers: make(map[string]*workerConn),
		stop:    make(chan struct{}),
	}
	if reg := opt.Metrics; reg != nil {
		co.mWorkers = reg.Gauge("fleet_workers")
		co.mSolves = reg.Counter("fleet_solves_total")
		co.mRetries = reg.Counter("fleet_retries_total")
		co.mDegraded = reg.Counter("fleet_degraded_chains_total")
		co.mLost = reg.Counter("fleet_workers_lost_total")
	}
	if hb := opt.heartbeat(); hb > 0 {
		co.wg.Add(1)
		go co.reaper(hb)
	}
	return co
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.opt.Logf != nil {
		co.opt.Logf(format, args...)
	}
}

func (co *Coordinator) event(typ, worker, detail string) {
	co.mu.Lock()
	fn := co.opt.OnEvent
	co.mu.Unlock()
	if fn != nil {
		fn(Event{Type: typ, Worker: worker, Detail: detail})
	}
}

// SetOnEvent installs (or replaces) the lifecycle-event callback after
// construction. The serve layer wires its dashboard this way: the
// coordinator is built (and starts accepting workers) before the server
// that owns the dashboard exists.
func (co *Coordinator) SetOnEvent(fn func(Event)) {
	co.mu.Lock()
	co.opt.OnEvent = fn
	co.mu.Unlock()
}

// Serve accepts worker connections until the listener is closed (by
// Close or externally). It returns nil on clean shutdown.
func (co *Coordinator) Serve(ln net.Listener) error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		ln.Close()
		return errors.New("fleet: coordinator closed")
	}
	co.ln = ln
	co.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			co.mu.Lock()
			closed := co.closed
			co.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			if _, err := co.AddWorker(NewTransport(c)); err != nil {
				co.logf("fleet: rejected connection from %s: %v", c.RemoteAddr(), err)
			}
		}()
	}
}

// AddWorker runs the coordinator side of the handshake on t and, on
// success, registers the worker and returns its name. The transport is
// closed on failure. Tests use this directly to register in-memory
// (net.Pipe or fault-injecting) transports.
func (co *Coordinator) AddWorker(t Transport) (string, error) {
	_ = t.SetDeadline(time.Now().Add(10 * time.Second))
	f, err := t.ReadFrame()
	if err != nil {
		t.Close()
		return "", fmt.Errorf("fleet: awaiting hello: %w", err)
	}
	if f.Type != MsgHello {
		t.Close()
		return "", fmt.Errorf("fleet: expected hello, got message type %d", f.Type)
	}
	var hello Hello
	if err := json.Unmarshal(f.Payload, &hello); err != nil {
		t.Close()
		return "", fmt.Errorf("fleet: decoding hello: %w", err)
	}
	if hello.Proto != ProtocolVersion {
		_ = t.WriteFrame(errorFrame(f.Seq, fmt.Errorf("protocol %d unsupported, coordinator speaks %d", hello.Proto, ProtocolVersion)))
		t.Close()
		return "", fmt.Errorf("fleet: worker speaks protocol %d, want %d", hello.Proto, ProtocolVersion)
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		t.Close()
		return "", errors.New("fleet: coordinator closed")
	}
	name := hello.Name
	if name == "" {
		name = fmt.Sprintf("w%03d", co.nextID)
	}
	for {
		if _, taken := co.workers[name]; !taken {
			break
		}
		co.nextID++
		name = fmt.Sprintf("%s-%d", hello.Name, co.nextID)
		if hello.Name == "" {
			name = fmt.Sprintf("w%03d", co.nextID)
		}
	}
	co.nextID++
	w := &workerConn{name: name, t: t}
	co.workers[name] = w
	n := len(co.workers)
	co.mu.Unlock()

	if err := t.WriteFrame(replyFrame(MsgWelcome, f.Seq, Welcome{Proto: ProtocolVersion, Name: name})); err != nil {
		co.removeWorker(w, fmt.Sprintf("welcome failed: %v", err))
		return "", fmt.Errorf("fleet: sending welcome: %w", err)
	}
	_ = t.SetDeadline(time.Time{})
	if co.mWorkers != nil {
		co.mWorkers.SetInt(int64(n))
	}
	co.logf("fleet: worker %q joined (%d total)", name, n)
	co.event("worker_joined", name, "")
	return name, nil
}

// WorkerNames returns the registered workers' names, sorted.
func (co *Coordinator) WorkerNames() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	names := make([]string, 0, len(co.workers))
	for n := range co.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumWorkers returns the registered worker count.
func (co *Coordinator) NumWorkers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.workers)
}

// Close tears down the coordinator: stops the reaper, closes the
// listener and every worker connection, and waits for helper
// goroutines.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	close(co.stop)
	if co.ln != nil {
		co.ln.Close()
	}
	workers := make([]*workerConn, 0, len(co.workers))
	for _, w := range co.workers {
		workers = append(workers, w)
	}
	co.workers = make(map[string]*workerConn)
	co.mu.Unlock()
	for _, w := range workers {
		w.t.Close()
	}
	co.wg.Wait()
	return nil
}

// removeWorker drops w from the registry and closes its transport.
func (co *Coordinator) removeWorker(w *workerConn, reason string) {
	co.mu.Lock()
	cur, ok := co.workers[w.name]
	if ok && cur == w {
		delete(co.workers, w.name)
	}
	n := len(co.workers)
	co.mu.Unlock()
	w.t.Close()
	if !ok || cur != w {
		return
	}
	if co.mWorkers != nil {
		co.mWorkers.SetInt(int64(n))
	}
	if co.mLost != nil {
		co.mLost.Add(1)
	}
	co.logf("fleet: worker %q lost: %s (%d remain)", w.name, reason, n)
	co.event("worker_lost", w.name, reason)
}

// liveWorkers snapshots the registered workers, sorted by name — the
// deterministic order shard assignment is computed over.
func (co *Coordinator) liveWorkers() []*workerConn {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := make([]*workerConn, 0, len(co.workers))
	for _, w := range co.workers {
		ws = append(ws, w)
	}
	slices.SortFunc(ws, func(a, b *workerConn) int {
		switch {
		case a.name < b.name:
			return -1
		case a.name > b.name:
			return 1
		}
		return 0
	})
	return ws
}

// reaper pings idle workers every interval and retires the unreachable.
// A worker busy with an RPC (its lock is held) is skipped — segment
// compute time must not count against liveness.
func (co *Coordinator) reaper(every time.Duration) {
	defer co.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-tick.C:
		}
		for _, w := range co.liveWorkers() {
			if !w.mu.TryLock() {
				continue // mid-RPC: provably alive or about to be retired by the RPC path
			}
			err := func() error {
				defer w.mu.Unlock()
				if w.lost {
					return errWorkerLost
				}
				w.seq++
				f := Frame{Type: MsgPing, Seq: w.seq}
				_ = w.t.SetDeadline(time.Now().Add(every))
				if err := w.t.WriteFrame(f); err != nil {
					w.lost = true
					return err
				}
				for {
					rf, err := w.t.ReadFrame()
					if err != nil {
						w.lost = true
						return err
					}
					if rf.Seq < f.Seq {
						continue // stale reply from an earlier request
					}
					if rf.Seq > f.Seq {
						w.lost = true
						return fmt.Errorf("fleet: reply seq %d ahead of ping %d", rf.Seq, f.Seq)
					}
					return nil
				}
			}()
			if err != nil {
				co.removeWorker(w, fmt.Sprintf("heartbeat: %v", err))
			}
		}
	}
}

// rpc delivers one request to w and returns its reply, retrying with
// exponential backoff under the same seq (the worker dedups). A nil
// error with a MsgError frame is an application failure — the worker is
// healthy but refused; any transport-level failure marks the worker
// lost and the caller must removeWorker it.
func (co *Coordinator) rpc(w *workerConn, typ MsgType, payload any, timeout time.Duration) (Frame, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return Frame{}, fmt.Errorf("fleet: encoding request: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lost {
		return Frame{}, errWorkerLost
	}
	w.seq++
	f := Frame{Type: typ, Seq: w.seq, Payload: body}
	var lastErr error
	for attempt := 0; attempt < co.opt.attempts(); attempt++ {
		if attempt > 0 {
			time.Sleep(co.opt.retryBase() << (attempt - 1))
			if co.mRetries != nil {
				co.mRetries.Add(1)
			}
		}
		_ = w.t.SetDeadline(time.Now().Add(timeout))
		if err := w.t.WriteFrame(f); err != nil {
			lastErr = err
			continue
		}
		for {
			rf, err := w.t.ReadFrame()
			if err != nil {
				lastErr = err
				break // timeout or cut: next attempt resends under the same seq
			}
			if rf.Seq < f.Seq {
				continue // duplicate reply to an earlier request
			}
			if rf.Seq > f.Seq {
				lastErr = fmt.Errorf("fleet: reply seq %d ahead of request %d", rf.Seq, f.Seq)
				break
			}
			return rf, nil
		}
	}
	w.lost = true
	if lastErr == nil {
		lastErr = errWorkerLost
	}
	return Frame{}, lastErr
}

// shardPlan maps each team member to its contiguous block of global
// chain indices: worker j of W gets chains [j*K/W, (j+1)*K/W) — the
// same fair split for any worker count, over name-sorted workers.
func shardPlan(team []*workerConn, k int) map[*workerConn][]int {
	plan := make(map[*workerConn][]int, len(team))
	w := len(team)
	for j, wc := range team {
		lo, hi := j*k/w, (j+1)*k/w
		idx := make([]int, 0, hi-lo)
		for ci := lo; ci < hi; ci++ {
			idx = append(idx, ci)
		}
		plan[wc] = idx
	}
	return plan
}

// Solve runs one distributed portfolio solve and returns a Result
// bit-identical to anneal.SA with the same (graph, hardware, Options) —
// as long as no worker is lost after setup (see the failure model
// above). opt's Oracle/Metrics/Progress/Ctx apply on the coordinator
// side only; Surrogate and PortfolioGA are unsupported.
func (co *Coordinator) Solve(ctx context.Context, g *graph.Graph, cfg engine.Config, df engine.Dataflow, opt anneal.Options) (anneal.Result, error) {
	if opt.Surrogate != nil {
		return anneal.Result{}, errors.New("fleet: surrogate mode is history-dependent and cannot be distributed")
	}
	if opt.PortfolioGA {
		return anneal.Result{}, errors.New("fleet: the GA portfolio slot is not distributable")
	}
	if !co.solveMu.TryLock() {
		return anneal.Result{}, ErrBusy
	}
	defer co.solveMu.Unlock()
	if co.mSolves != nil {
		co.mSolves.Add(1)
	}

	graphDoc, err := modelio.Encode(g)
	if err != nil {
		return anneal.Result{}, fmt.Errorf("fleet: encoding graph: %w", err)
	}
	k := opt.NumChains()
	base := SolveSpec{Graph: graphDoc, Engine: cfg, Dataflow: df, Opt: wireOptionsOf(opt)}

	// Setup: assign shards and ship specs. A delivery failure here costs
	// nothing — no chain has run — so the round restarts over the
	// survivors until a whole team is ready (bit-identical reassignment).
	var team []*workerConn
	var plan map[*workerConn][]int
	for {
		if err := ctx.Err(); err != nil {
			return anneal.Result{}, err
		}
		ws := co.liveWorkers()
		if len(ws) == 0 {
			return anneal.Result{}, ErrNoWorkers
		}
		if len(ws) > k {
			ws = ws[:k]
		}
		plan = shardPlan(ws, k)
		type setupRes struct {
			w   *workerConn
			f   Frame
			err error
		}
		results := make([]setupRes, len(ws))
		var wg sync.WaitGroup
		for i, w := range ws {
			wg.Add(1)
			go func() {
				defer wg.Done()
				spec := base
				spec.Chains = plan[w]
				f, err := co.rpc(w, MsgSolveStart, SolveStart{Spec: spec}, co.opt.setupTimeout())
				results[i] = setupRes{w: w, f: f, err: err}
			}()
		}
		wg.Wait()
		ok := true
		for _, r := range results {
			switch {
			case r.err != nil:
				co.removeWorker(r.w, fmt.Sprintf("solve setup: %v", r.err))
				ok = false
			case r.f.Type == MsgError:
				// Deterministic refusal (bad spec): every worker would
				// refuse identically, so fail the solve.
				co.releaseTeam(ws)
				return anneal.Result{}, decodeErr(r.f)
			}
		}
		if ok {
			team = ws
			break
		}
	}

	// owner maps each live chain to its worker; stats holds each live
	// chain's latest barrier snapshot.
	owner := make(map[int]*workerConn, k)
	for w, idx := range plan {
		for _, ci := range idx {
			owner[ci] = w
		}
	}
	stats := make(map[int]anneal.ChainStat, k)

	// dropWorker removes w from the team mid-solve and degrades the
	// portfolio by its chains.
	dropWorker := func(w *workerConn, reason string) {
		co.removeWorker(w, reason)
		dropped := 0
		for _, ci := range plan[w] {
			delete(owner, ci)
			delete(stats, ci)
			dropped++
		}
		team = slices.DeleteFunc(team, func(x *workerConn) bool { return x == w })
		if co.mDegraded != nil && dropped > 0 {
			co.mDegraded.Add(int64(dropped))
		}
		co.event("solve_degraded", w.name, fmt.Sprintf("dropped %d chains: %s", dropped, reason))
	}

	liveChains := func() []int {
		ids := make([]int, 0, len(stats))
		for ci := range stats {
			ids = append(ids, ci)
		}
		sort.Ints(ids)
		return ids
	}

	// Barrier loop — the wire image of portfolioSA's segment loop.
	perChain := opt.PerChainIters()
	exchanges := int64(0)
	var solveErr error
	for done := 0; done < perChain; {
		n := opt.SegmentIters()
		if done+n > perChain {
			n = perChain - done
		}
		type segRes struct {
			w   *workerConn
			f   Frame
			err error
		}
		results := make([]segRes, len(team))
		var wg sync.WaitGroup
		for i, w := range team {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, err := co.rpc(w, MsgRunSegment, RunSegment{N: n}, co.opt.segmentTimeout())
				results[i] = segRes{w: w, f: f, err: err}
			}()
		}
		wg.Wait()
		for _, r := range results {
			switch {
			case r.err != nil:
				dropWorker(r.w, fmt.Sprintf("segment: %v", r.err))
			case r.f.Type == MsgError:
				solveErr = decodeErr(r.f)
			default:
				var sd SegmentDone
				if err := json.Unmarshal(r.f.Payload, &sd); err != nil {
					dropWorker(r.w, fmt.Sprintf("segment reply: %v", err))
					continue
				}
				for _, st := range sd.Stats {
					if _, live := owner[st.Chain]; live {
						stats[st.Chain] = st
					}
				}
			}
		}
		if solveErr != nil {
			co.releaseTeam(team)
			return anneal.Result{}, solveErr
		}
		if len(stats) == 0 {
			return anneal.Result{}, ErrNoWorkers
		}
		done += n
		if (opt.Ctx != nil && opt.Ctx.Err() != nil) || ctx.Err() != nil || done >= perChain {
			break
		}
		anyConverged := false
		for _, st := range stats {
			if st.Converged {
				anyConverged = true
			}
		}
		if anyConverged {
			break
		}

		// Exchange barrier: the fold portfolioSA runs in-process —
		// global best by (lowest BestE, lowest chain index), adoption
		// wherever it undercuts a chain's current energy. Losing the
		// best chain's owner while fetching its state restarts the fold
		// over the survivors.
		adopted := make(map[int]bool)
		for {
			ids := liveChains()
			if len(ids) == 0 {
				return anneal.Result{}, ErrNoWorkers
			}
			gb := ids[0]
			for _, ci := range ids[1:] {
				if stats[ci].BestE < stats[gb].BestE {
					gb = ci
				}
			}
			gbStat := stats[gb]
			byWorker := make(map[*workerConn][]Adoption)
			needState := false
			for _, ci := range ids {
				c := stats[ci]
				if ci == gb || gbStat.BestE >= c.E {
					continue
				}
				a := Adoption{Chain: ci, BestE: gbStat.BestE, BestS: gbStat.BestS}
				if gbStat.BestE < c.BestE {
					needState = true
					a.Choice = []int{} // placeholder until fetched
				}
				byWorker[owner[ci]] = append(byWorker[owner[ci]], a)
			}
			var gbChoice []int
			if needState {
				w := owner[gb]
				f, err := co.rpc(w, MsgStateReq, StateReq{Chain: gb}, co.opt.exchangeTimeout())
				if err != nil {
					dropWorker(w, fmt.Sprintf("state fetch: %v", err))
					continue // refold over the survivors
				}
				if f.Type == MsgError {
					co.releaseTeam(team)
					return anneal.Result{}, decodeErr(f)
				}
				var st State
				if err := json.Unmarshal(f.Payload, &st); err != nil {
					dropWorker(w, fmt.Sprintf("state reply: %v", err))
					continue
				}
				gbChoice = st.Choice
			}
			type adoptRes struct {
				w   *workerConn
				f   Frame
				err error
			}
			targets := make([]*workerConn, 0, len(byWorker))
			for w := range byWorker {
				targets = append(targets, w)
			}
			results := make([]adoptRes, len(targets))
			var wg sync.WaitGroup
			for i, w := range targets {
				wg.Add(1)
				go func() {
					defer wg.Done()
					req := Adopt{Adoptions: byWorker[w]}
					for j := range req.Adoptions {
						if req.Adoptions[j].Choice != nil {
							req.Adoptions[j].Choice = gbChoice
						}
					}
					f, err := co.rpc(w, MsgAdopt, req, co.opt.exchangeTimeout())
					results[i] = adoptRes{w: w, f: f, err: err}
				}()
			}
			wg.Wait()
			for _, r := range results {
				switch {
				case r.err != nil:
					// The worker (and its un-adopted chains) leave the
					// portfolio; survivors already adopted correctly.
					dropWorker(r.w, fmt.Sprintf("adopt: %v", r.err))
				case r.f.Type == MsgError:
					solveErr = decodeErr(r.f)
				default:
					for _, a := range byWorker[r.w] {
						adopted[a.Chain] = true
						exchanges++
					}
				}
			}
			if solveErr != nil {
				co.releaseTeam(team)
				return anneal.Result{}, solveErr
			}
			break
		}
		if opt.Progress != nil {
			ids := liveChains()
			samples := make([]anneal.Sample, 0, len(ids))
			for _, ci := range ids {
				st := stats[ci]
				samples = append(samples, anneal.Sample{
					Chain: st.Chain, Iters: st.Iters, Temp: st.Temp,
					BestE: st.BestE, BestS: st.BestS,
					Adopted: adopted[ci], Converged: st.Converged,
				})
			}
			opt.Progress(samples)
		}
	}

	// Reduction: (lowest BestE, lowest index) wins; fetch its closing
	// state, falling to the next-best chain if its owner dies first.
	var fin anneal.ChainFinal
	for {
		ids := liveChains()
		if len(ids) == 0 {
			return anneal.Result{}, ErrNoWorkers
		}
		win := ids[0]
		for _, ci := range ids[1:] {
			if stats[ci].BestE < stats[win].BestE {
				win = ci
			}
		}
		w := owner[win]
		f, err := co.rpc(w, MsgFinalReq, FinalReq{Chain: win}, co.opt.exchangeTimeout())
		if err != nil {
			dropWorker(w, fmt.Sprintf("final fetch: %v", err))
			continue
		}
		if f.Type == MsgError {
			co.releaseTeam(team)
			return anneal.Result{}, decodeErr(f)
		}
		var fr Final
		if err := json.Unmarshal(f.Payload, &fr); err != nil {
			dropWorker(w, fmt.Sprintf("final reply: %v", err))
			continue
		}
		fin = fr.Final
		break
	}
	co.releaseTeam(team)

	closing := make([]anneal.ChainStat, 0, len(stats))
	for _, ci := range liveChains() {
		closing = append(closing, stats[ci])
	}
	if reg := opt.Metrics; reg != nil {
		reg.Gauge("anneal_chains").SetInt(int64(k))
		reg.Counter("anneal_exchanges_total").Add(exchanges)
	}
	return anneal.FinishRemote(g, cfg, df, opt, fin, closing)
}

// releaseTeam best-effort drops every team member's shard so the next
// solve starts clean even if this one aborted.
func (co *Coordinator) releaseTeam(team []*workerConn) {
	var wg sync.WaitGroup
	for _, w := range team {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := co.rpc(w, MsgRelease, Ack{}, co.opt.exchangeTimeout()); err != nil {
				co.removeWorker(w, fmt.Sprintf("release: %v", err))
			}
		}()
	}
	wg.Wait()
}
