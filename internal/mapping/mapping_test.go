package mapping

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

func TestZigZagOrder(t *testing.T) {
	m := New(noc.NewMesh(4, 2, 8), &atom.DAG{})
	want := []int{0, 1, 2, 3, 7, 6, 5, 4}
	got := m.ZigZag()
	if len(got) != len(want) {
		t.Fatalf("zigzag len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zigzag = %v, want %v", got, want)
		}
	}
	// Consecutive zig-zag slots are mesh-adjacent (1 hop).
	mesh := noc.NewMesh(4, 2, 8)
	for i := 1; i < len(got); i++ {
		if mesh.Hops(got[i-1], got[i]) != 1 {
			t.Errorf("zigzag slots %d,%d not adjacent", got[i-1], got[i])
		}
	}
}

// fig7DAG reproduces the paper's Fig. 7 situation: layer 3 atoms depend on
// layer 1 and layer 2 atoms produced in the previous round.
func fig7DAG(t *testing.T) (*atom.DAG, []int, []int) {
	t.Helper()
	g := graph.New("fig7")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 12, Wo: 4, Co: 4})
	l1 := g.AddLayer("l1", graph.OpConv, graph.ConvShape(12, 4, 4, 4, 1, 1, 0), in)
	l2 := g.AddLayer("l2", graph.OpConv, graph.ConvShape(12, 4, 4, 4, 1, 1, 0), in)
	g.AddLayer("l3", graph.OpEltwise, graph.EltwiseShape(12, 4, 4), l1, l2)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := atom.Spec{
		l1: {Hp: 4, Wp: 4, Cop: 4}, // 3 atoms
		l2: {Hp: 4, Wp: 4, Cop: 4}, // 3 atoms
		3:  {Hp: 4, Wp: 4, Cop: 4}, // l3: 3 atoms
	}
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	var prev, cur []int
	for _, a := range d.Atoms {
		switch a.Layer {
		case l1, l2:
			prev = append(prev, a.ID)
		case 3:
			cur = append(cur, a.ID)
		}
	}
	return d, prev, cur
}

func TestPlaceRoundReducesHops(t *testing.T) {
	d, prev, cur := fig7DAG(t)
	mesh := noc.NewMesh(3, 2, 8)
	m := New(mesh, d)

	// Round t: place layers 1 and 2 with the identity permutation.
	r0 := m.PlaceRound(prev, func(int) int { return -1 })
	locate := r0.Engine

	// Round t+1: the mapper's choice must beat or match the worst
	// permutation's cost.
	r1 := m.PlaceRound(cur, locate)
	// Compute the cost of the chosen placement independently.
	var chosen int64
	for _, id := range cur {
		a := d.Atoms[id]
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 || src == r1.Engine(id) {
				continue
			}
			chosen += a.DepBytes[di] * int64(mesh.Hops(src, r1.Engine(id)))
		}
	}
	if chosen != r1.ByteHops {
		t.Errorf("reported ByteHops %d != recomputed %d", r1.ByteHops, chosen)
	}
	// Worst case: reverse placement of the 3 atoms.
	var worst int64
	rev := m.ZigZag()
	for i, id := range cur {
		e := rev[len(cur)-1-i]
		a := d.Atoms[id]
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 || src == e {
				continue
			}
			worst += a.DepBytes[di] * int64(mesh.Hops(src, e))
		}
	}
	if chosen > worst {
		t.Errorf("optimized cost %d > naive reversed cost %d", chosen, worst)
	}
}

func TestPlacementIsInjective(t *testing.T) {
	g := models.MustBuild("tinybranch")
	spec := make(atom.Spec)
	for _, lid := range g.ComputeLayers() {
		l := g.Layer(lid)
		spec[lid] = atom.Partition{Hp: l.Shape.Ho, Wp: l.Shape.Wo, Cop: (l.Shape.Co + 1) / 2}
	}
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	mesh := noc.NewMesh(4, 4, 8)
	m := New(mesh, d)
	// Take the first 8 non-input atoms as one synthetic round.
	var round []int
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput && len(round) < 8 {
			round = append(round, a.ID)
		}
	}
	res := m.PlaceRound(round, func(int) int { return -1 })
	seen := make(map[int]bool)
	for _, id := range round {
		e := res.Engine(id)
		if e < 0 {
			t.Fatalf("atom %d unplaced", id)
		}
		if seen[e] {
			t.Fatalf("engine %d assigned twice", e)
		}
		seen[e] = true
	}
}

func TestSameLayerAtomsAdjacent(t *testing.T) {
	d, prev, _ := fig7DAG(t)
	mesh := noc.NewMesh(3, 2, 8)
	m := New(mesh, d)
	res := m.PlaceRound(prev, func(int) int { return -1 })
	// Atoms of one layer occupy consecutive zig-zag slots.
	slotOf := make(map[int]int)
	for i, e := range m.ZigZag() {
		slotOf[e] = i
	}
	byLayer := map[int][]int{}
	for _, id := range prev {
		byLayer[d.Atoms[id].Layer] = append(byLayer[d.Atoms[id].Layer], slotOf[res.Engine(id)])
	}
	for layer, slots := range byLayer {
		lo, hi := slots[0], slots[0]
		for _, s := range slots {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo != len(slots)-1 {
			t.Errorf("layer %d slots %v not contiguous", layer, slots)
		}
	}
}

// TestCostTableMatchesTransferCost pins the dense permutation evaluator
// (buildCostTable + permCost) to the reference transferCost walk on every
// permutation of a multi-group Round, so the search ranks permutations
// identically and placements stay bit-for-bit reproducible.
func TestCostTableMatchesTransferCost(t *testing.T) {
	d, prev, cur := fig7DAG(t)
	mesh := noc.NewMesh(3, 3, 8) // 9 slots: fits the 9-atom synthetic Round
	m := New(mesh, d)
	r0 := m.PlaceRound(prev, func(int) int { return -1 })
	locate := r0.Engine
	// Synthetic 3-group Round: cur holds one group per layer after
	// grouping, so extend it with prev's layers for a multi-group case.
	round := append(append([]int(nil), cur...), prev...)
	groups := m.groupByLayer(round)
	if len(groups) < 3 {
		t.Fatalf("want >= 3 groups, got %d", len(groups))
	}
	m.buildCostTable(groups, locate)
	perm := make([]int, len(groups))
	for i := range perm {
		perm[i] = i
	}
	permute(perm, func(p []int) {
		want := m.transferCost(groups, p, locate)
		if got := m.permCost(p); got != want {
			t.Fatalf("perm %v: permCost = %d, transferCost = %d", p, got, want)
		}
	})
}

// TestPlaceRoundScratchReuse checks that back-to-back placements on one
// Mapper (the per-Round reuse path) match placements on fresh Mappers.
func TestPlaceRoundScratchReuse(t *testing.T) {
	d, prev, cur := fig7DAG(t)
	mesh := noc.NewMesh(3, 2, 8)
	shared := New(mesh, d)
	none := func(int) int { return -1 }
	for round := 0; round < 2; round++ {
		atoms := prev
		if round == 1 {
			atoms = cur
		}
		got := shared.PlaceRound(atoms, none)
		want := New(mesh, d).PlaceRound(atoms, none)
		if got.ByteHops != want.ByteHops || got.NumPlaced() != want.NumPlaced() {
			t.Fatalf("round %d: reused mapper differs: %+v vs %+v", round, got, want)
		}
		for _, id := range want.Placed() {
			if got.Engine(id) != want.Engine(id) {
				t.Fatalf("round %d: atom %d on engine %d, want %d", round, id, got.Engine(id), want.Engine(id))
			}
		}
	}
}

func TestHillClimbManyGroups(t *testing.T) {
	// More than maxExhaustive layer groups triggers hill climbing; the
	// result must still be a valid injective placement.
	g := graph.New("many")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 8, Wo: 8, Co: 4})
	var layers []int
	for i := 0; i < 9; i++ {
		layers = append(layers, g.AddLayer(
			"l"+string(rune('a'+i)), graph.OpConv,
			graph.ConvShape(8, 8, 4, 4, 1, 1, 0), in))
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	d, err := atom.Build(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mesh := noc.NewMesh(3, 3, 8)
	m := New(mesh, d)
	var round []int
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput {
			round = append(round, a.ID)
		}
	}
	res := m.PlaceRound(round, func(int) int { return -1 })
	if res.NumPlaced() != 9 {
		t.Fatalf("placed %d atoms, want 9", res.NumPlaced())
	}
	seen := make(map[int]bool)
	for _, id := range res.Placed() {
		e := res.Engine(id)
		if seen[e] {
			t.Fatal("duplicate engine assignment")
		}
		seen[e] = true
	}
}
