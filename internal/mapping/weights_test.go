package mapping

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// weightAffinityDAG: one conv layer with 4 channel-slice atoms per round
// over two "rounds" (we place round 2's atoms while round 1's weights sit
// on specific engines).
func weightAffinityDAG(t *testing.T) *atom.DAG {
	t.Helper()
	g := graph.New("wa")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 8, Wo: 8, Co: 8})
	c := g.AddLayer("c", graph.OpConv, graph.ConvShape(8, 8, 8, 64, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	// 2 spatial x 4 channel tiles = 8 atoms; co-slices repeat between
	// the two spatial halves.
	d, err := atom.Build(g, 1, atom.Spec{c: {Hp: 4, Wp: 8, Cop: 16}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWeightAffinityRefinement(t *testing.T) {
	d := weightAffinityDAG(t)
	mesh := noc.NewMesh(2, 2, 32)
	m := New(mesh, d)

	// Find the conv atoms: first 4 share h-range [0,4), second 4 [4,8);
	// slices repeat across the halves.
	var first, second []int
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpConv {
			continue
		}
		if a.Region.H0 == 0 {
			first = append(first, a.ID)
		} else {
			second = append(second, a.ID)
		}
	}
	if len(first) != 4 || len(second) != 4 {
		t.Fatalf("unexpected tiling: %d/%d", len(first), len(second))
	}

	// Round 1 placed slices c0=0,16,32,48 on engines 0..3 (by atom order).
	r1 := m.PlaceRound(first, func(int) int { return -1 })
	sliceEngine := map[int]int{} // c0 -> engine
	for _, id := range first {
		sliceEngine[d.Atoms[id].Region.C0] = r1.Engine(id)
	}

	// Round 2: weights for slice c0 are cached exactly where round 1 ran
	// that slice.
	weights := func(e, id int) bool {
		return sliceEngine[d.Atoms[id].Region.C0] == e
	}
	r2 := m.PlaceRoundWeighted(second, func(int) int { return -1 }, weights)
	// Every atom must land on the engine holding its slice (ifmap costs
	// are zero here, so weight affinity decides).
	for _, id := range second {
		want := sliceEngine[d.Atoms[id].Region.C0]
		if r2.Engine(id) != want {
			t.Errorf("atom %d (c0=%d) on engine %d, want %d (weight holder)",
				id, d.Atoms[id].Region.C0, r2.Engine(id), want)
		}
	}
}

func TestRefinementRespectsIfmapCost(t *testing.T) {
	// When no engine holds weights, the refinement must leave the
	// ifmap-optimal placement intact (all atomCostAt weight terms equal).
	d := weightAffinityDAG(t)
	mesh := noc.NewMesh(2, 2, 32)
	m := New(mesh, d)
	var convs []int
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpConv && len(convs) < 4 {
			convs = append(convs, a.ID)
		}
	}
	noWeights := func(int, int) bool { return false }
	base := m.PlaceRound(convs, func(int) int { return -1 })
	refined := m.PlaceRoundWeighted(convs, func(int) int { return -1 }, noWeights)
	if base.ByteHops != refined.ByteHops {
		t.Errorf("uniform weights changed cost: %d vs %d", base.ByteHops, refined.ByteHops)
	}
}
