// Package mapping implements the paper's atom-engine mapping stage
// (Sec. IV-C): given the atoms of one Round, choose which physical engine
// runs each atom so that inter-engine tensor transfers travel the fewest
// NoC hops. As in the paper, atoms are laid onto the 2D mesh in zig-zag
// order with same-layer atoms adjacent, and the free variable is the
// permutation P of the involved layers; TransferCost(P) = Σ D(i,j) x Size
// is minimized by exhaustive permutation search for small M and pairwise-
// swap hill climbing above that.
package mapping

import (
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// maxExhaustive is the largest layer-group count for which all M!
// permutations are tried (6! = 720 cost evaluations).
const maxExhaustive = 6

// Locator reports where an atom's output currently resides: the engine
// index, or -1 if it is off-chip (in DRAM) or not yet produced.
type Locator func(atomID int) int

// WeightLocator reports whether an engine's buffer already caches the
// weight slice an atom needs, so placement can exploit weight reuse.
// A nil WeightLocator disables the weight-affinity refinement.
type WeightLocator func(engineID, atomID int) bool

// dramHopEquivalent converts a byte refetched from DRAM into the
// placement cost of a byte moved one NoC hop (7 pJ/bit HBM vs 0.61
// pJ/bit/hop NoC ≈ 11; rounded down to keep ifmap locality dominant).
const dramHopEquivalent = 8

// Mapper places Rounds onto a mesh.
type Mapper struct {
	mesh   *noc.Mesh
	dag    *atom.DAG
	zigzag []int // engine indices in zig-zag (snake) order
}

// New returns a Mapper for the DAG on the mesh.
func New(mesh *noc.Mesh, dag *atom.DAG) *Mapper {
	m := &Mapper{mesh: mesh, dag: dag}
	m.zigzag = make([]int, 0, mesh.Engines())
	for y := 0; y < mesh.H; y++ {
		if y%2 == 0 {
			for x := 0; x < mesh.W; x++ {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		} else {
			for x := mesh.W - 1; x >= 0; x-- {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		}
	}
	return m
}

// Result is the placement of one Round.
type Result struct {
	EngineOf map[int]int // atom ID -> engine index
	ByteHops int64       // Σ bytes x hops of on-chip input transfers
	Perms    int         // permutations evaluated (diagnostics)
}

// group is the placement unit: the Round's atoms of one (sample, layer).
type group struct {
	atoms []int
}

// PlaceRound assigns each Round atom an engine. locate reports the engine
// holding each dependency's output (-1 = off-chip, no NoC cost — the DRAM
// cost does not depend on P).
func (m *Mapper) PlaceRound(roundAtoms []int, locate Locator) Result {
	return m.PlaceRoundWeighted(roundAtoms, locate, nil)
}

// PlaceRoundWeighted is PlaceRound with an optional weight-affinity
// refinement: after the layer permutation fixes each group's slot range,
// atoms are swapped within their group to land on engines that already
// cache their weight slices, as long as the combined ifmap-hop +
// weight-refetch cost improves.
func (m *Mapper) PlaceRoundWeighted(roundAtoms []int, locate Locator, weights WeightLocator) Result {
	groups := m.groupByLayer(roundAtoms)
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	eval := func(perm []int) int64 { return m.transferCost(groups, perm, locate) }

	best := append([]int(nil), order...)
	bestCost := eval(best)
	perms := 1
	if len(groups) > 1 && len(groups) <= maxExhaustive {
		permute(order, func(p []int) {
			perms++
			if c := eval(p); c < bestCost {
				bestCost = c
				copy(best, p)
			}
		})
	} else if len(groups) > maxExhaustive {
		// Pairwise-swap hill climbing, restarted until a full pass makes
		// no improvement.
		improved := true
		for improved {
			improved = false
			for i := 0; i < len(best); i++ {
				for j := i + 1; j < len(best); j++ {
					best[i], best[j] = best[j], best[i]
					perms++
					if c := eval(best); c < bestCost {
						bestCost = c
						improved = true
					} else {
						best[i], best[j] = best[j], best[i]
					}
				}
			}
		}
	}

	res := Result{EngineOf: make(map[int]int, len(roundAtoms)), ByteHops: bestCost, Perms: perms}
	slot := 0
	for _, gi := range best {
		for _, id := range groups[gi].atoms {
			res.EngineOf[id] = m.zigzag[slot]
			slot++
		}
	}
	if weights != nil {
		m.refineForWeights(groups, best, res.EngineOf, locate, weights)
		res.ByteHops = m.placementCost(res.EngineOf, locate)
	}
	return res
}

// placementCost recomputes the ifmap byte-hop cost of a final placement.
func (m *Mapper) placementCost(engineOf map[int]int, locate Locator) int64 {
	var cost int64
	for id, dst := range engineOf {
		a := m.dag.Atoms[id]
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 || src == dst {
				continue
			}
			cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
		}
	}
	return cost
}

// atomCostAt prices running atom id on engine e: ifmap fetch hops plus the
// DRAM-equivalent cost of a weight slice the engine does not hold.
func (m *Mapper) atomCostAt(id, e int, locate Locator, weights WeightLocator) int64 {
	a := m.dag.Atoms[id]
	var cost int64
	for di, dep := range a.Deps {
		src := locate(dep)
		if src < 0 || src == e {
			continue
		}
		cost += a.DepBytes[di] * int64(m.mesh.Hops(src, e))
	}
	if !weights(e, id) {
		cost += a.Task.WeightBytes() * dramHopEquivalent
	}
	return cost
}

// refineForWeights hill-climbs within each group's slots, swapping atom
// pairs whenever the combined cost drops.
func (m *Mapper) refineForWeights(groups []group, perm []int, engineOf map[int]int, locate Locator, weights WeightLocator) {
	for _, gi := range perm {
		atoms := groups[gi].atoms
		improved := true
		for pass := 0; improved && pass < 4; pass++ {
			improved = false
			for i := 0; i < len(atoms); i++ {
				for j := i + 1; j < len(atoms); j++ {
					a, b := atoms[i], atoms[j]
					ea, eb := engineOf[a], engineOf[b]
					cur := m.atomCostAt(a, ea, locate, weights) + m.atomCostAt(b, eb, locate, weights)
					swp := m.atomCostAt(a, eb, locate, weights) + m.atomCostAt(b, ea, locate, weights)
					if swp < cur {
						engineOf[a], engineOf[b] = eb, ea
						improved = true
					}
				}
			}
		}
	}
}

// groupByLayer buckets the Round's atoms into (sample, layer) groups,
// preserving the scheduler's deterministic order.
func (m *Mapper) groupByLayer(roundAtoms []int) []group {
	idx := make(map[int64]int)
	var groups []group
	for _, id := range roundAtoms {
		a := m.dag.Atoms[id]
		k := int64(a.Sample)<<32 | int64(a.Layer)
		gi, ok := idx[k]
		if !ok {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, group{})
		}
		groups[gi].atoms = append(groups[gi].atoms, id)
	}
	for i := range groups {
		sort.Ints(groups[i].atoms)
	}
	return groups
}

// transferCost prices one layer permutation: place groups in zig-zag
// sequence and sum hop-weighted bytes of every on-chip dependency fetch.
func (m *Mapper) transferCost(groups []group, perm []int, locate Locator) int64 {
	engineOf := make(map[int]int, len(groups)*2)
	slot := 0
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			engineOf[id] = m.zigzag[slot]
			slot++
		}
	}
	var cost int64
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			dst := engineOf[id]
			a := m.dag.Atoms[id]
			for di, dep := range a.Deps {
				src := locate(dep)
				if src < 0 || src == dst {
					continue
				}
				cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
			}
		}
	}
	return cost
}

// permute calls visit with every permutation of order (Heap's algorithm).
// visit must not retain the slice.
func permute(order []int, visit func([]int)) {
	n := len(order)
	c := make([]int, n)
	visit(order)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				order[0], order[i] = order[i], order[0]
			} else {
				order[c[i]], order[i] = order[i], order[c[i]]
			}
			visit(order)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// ZigZag exposes the snake order for tests and the LS baseline.
func (m *Mapper) ZigZag() []int { return append([]int(nil), m.zigzag...) }
