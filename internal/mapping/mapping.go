// Package mapping implements the paper's atom-engine mapping stage
// (Sec. IV-C): given the atoms of one Round, choose which physical engine
// runs each atom so that inter-engine tensor transfers travel the fewest
// NoC hops. As in the paper, atoms are laid onto the 2D mesh in zig-zag
// order with same-layer atoms adjacent, and the free variable is the
// permutation P of the involved layers; TransferCost(P) = Σ D(i,j) x Size
// is minimized by branch-and-bound permutation search for small M and
// pairwise-swap hill climbing above that.
package mapping

import (
	"sort"
	"sync"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// maxExhaustive is the largest layer-group count for which the optimal
// permutation is found exactly (branch-and-bound over at most 6! = 720
// leaves; pruning typically visits far fewer).
const maxExhaustive = 6

// Locator reports where an atom's output currently resides: the engine
// index, or -1 if it is off-chip (in DRAM) or not yet produced.
type Locator func(atomID int) int

// WeightLocator reports whether an engine's buffer already caches the
// weight slice an atom needs, so placement can exploit weight reuse.
// A nil WeightLocator disables the weight-affinity refinement.
type WeightLocator func(engineID, atomID int) bool

// dramHopEquivalent converts a byte refetched from DRAM into the
// placement cost of a byte moved one NoC hop (7 pJ/bit HBM vs 0.61
// pJ/bit/hop NoC ≈ 11; rounded down to keep ifmap locality dominant).
const dramHopEquivalent = 8

// Mapper places Rounds onto a mesh. One goroutine at a time may call
// PlaceRound/PlaceRoundWeighted (the scratch buffers below are reused
// across calls), but Recycle is safe to call concurrently with placement:
// the pipelined simulator recycles round t's Result on the timing
// goroutine while the prep goroutine is already placing round t+1.
type Mapper struct {
	mesh    *noc.Mesh
	dag     *atom.DAG
	zigzag  []int   // engine indices in zig-zag (snake) order
	zigHops []int64 // src engine x zig-zag slot -> hop count (row-major)

	// Permutation-search scratch (see buildCostTable).
	gidx      map[int64]int
	groupsBuf []group
	atomPool  [][]int
	orderBuf  []int
	bestBuf   []int
	sizes     []int   // group -> atom count
	groupCost []int64 // group x base-slot byte-hop costs
	atomRows  []int64 // per-atom cost per slot (row-major; reused by refine)
	rowOf     []int32 // atom ID -> atomRows row (valid for the current Round)
	slotOf    []int32 // engine index -> zig-zag slot (current Round)
	minFrom   []int64 // group x base suffix minima (branch-and-bound bound)
	ctSlots   int     // slot count of the current table

	// Weight-refinement scratch (see refineForWeights).
	refEng  []int
	refPos  []int
	refCost []int64

	// Result free list (see Recycle). Guarded by freeMu because results
	// are recycled by the simulator's timing goroutine while the prep
	// goroutine allocates the next Round's placement.
	freeMu  sync.Mutex
	freeEng [][]int32
	freePl  [][]int
}

// New returns a Mapper for the DAG on the mesh.
func New(mesh *noc.Mesh, dag *atom.DAG) *Mapper {
	m := &Mapper{gidx: make(map[int64]int)}
	m.Reset(mesh, dag)
	return m
}

// Reset re-targets a pooled Mapper at a (possibly different) mesh and DAG,
// keeping its scratch allocations. The recycled-Result free list survives
// when the atom count is unchanged (entries are sized by NumAtoms) and is
// dropped otherwise.
func (m *Mapper) Reset(mesh *noc.Mesh, dag *atom.DAG) {
	if m.dag != nil && m.dag.NumAtoms() != dag.NumAtoms() {
		m.freeMu.Lock()
		m.freeEng = m.freeEng[:0]
		m.freePl = m.freePl[:0]
		m.freeMu.Unlock()
	}
	m.mesh, m.dag = mesh, dag
	m.zigzag = m.zigzag[:0]
	for y := 0; y < mesh.H; y++ {
		if y%2 == 0 {
			for x := 0; x < mesh.W; x++ {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		} else {
			for x := mesh.W - 1; x >= 0; x-- {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		}
	}
	// Hop counts from every source engine to every zig-zag slot, so the
	// cost-table inner loop reads a contiguous row instead of gathering
	// through the zigzag permutation per dependency.
	ne := mesh.Engines()
	zh := growInt64s(&m.zigHops, ne*ne)
	for src := 0; src < ne; src++ {
		hr := mesh.HopsRow(src)
		for s, e := range m.zigzag {
			zh[src*ne+s] = int64(hr[e])
		}
	}
}

// Result is the placement of one Round. The atom-to-engine assignment is
// a dense NumAtoms-sized slice (no per-Round map): read it through
// Engine, iterate the Round's atoms through Placed. Returning a Result to
// its Mapper with Recycle lets the next Round reuse the slice.
type Result struct {
	engineOf []int32 // atom ID -> engine index, -1 when not placed
	placed   []int   // the atom IDs placed this Round, in slot order
	ByteHops int64   // Σ bytes x hops of on-chip input transfers
	Perms    int     // permutation-search nodes evaluated (diagnostics)
}

// Engine returns the engine assigned to atom id, or -1 if the Result does
// not place it.
func (r Result) Engine(id int) int {
	if id < 0 || id >= len(r.engineOf) {
		return -1
	}
	return int(r.engineOf[id])
}

// Placed returns the atom IDs this Result places, in zig-zag slot order.
// The slice is owned by the Result; do not retain it past Recycle.
func (r Result) Placed() []int { return r.placed }

// NumPlaced returns how many atoms the Result places.
func (r Result) NumPlaced() int { return len(r.placed) }

// Recycle returns res's backing storage to the Mapper for the next
// PlaceRound call. Only the entries placed by res are cleared, so the
// cost is O(atoms in the Round), not O(NumAtoms). res must not be used
// afterwards. Safe to call from a different goroutine than the placer.
func (m *Mapper) Recycle(res *Result) {
	if res.engineOf == nil {
		return
	}
	for _, id := range res.placed {
		res.engineOf[id] = -1
	}
	m.freeMu.Lock()
	m.freeEng = append(m.freeEng, res.engineOf)
	m.freePl = append(m.freePl, res.placed[:0])
	m.freeMu.Unlock()
	res.engineOf, res.placed = nil, nil
}

// newResult pops a recycled engine slice (all -1) and placed slice, or
// allocates fresh ones sized for the DAG.
func (m *Mapper) newResult() ([]int32, []int) {
	m.freeMu.Lock()
	var eng []int32
	var pl []int
	if n := len(m.freeEng); n > 0 {
		eng = m.freeEng[n-1]
		m.freeEng = m.freeEng[:n-1]
	}
	if n := len(m.freePl); n > 0 {
		pl = m.freePl[n-1]
		m.freePl = m.freePl[:n-1]
	}
	m.freeMu.Unlock()
	if eng == nil {
		eng = make([]int32, m.dag.NumAtoms())
		for i := range eng {
			eng[i] = -1
		}
	}
	return eng, pl
}

// group is the placement unit: the Round's atoms of one (sample, layer).
type group struct {
	atoms []int
}

// PlaceRound assigns each Round atom an engine. locate reports the engine
// holding each dependency's output (-1 = off-chip, no NoC cost — the DRAM
// cost does not depend on P).
func (m *Mapper) PlaceRound(roundAtoms []int, locate Locator) Result {
	return m.PlaceRoundWeighted(roundAtoms, locate, nil)
}

// PlaceRoundWeighted is PlaceRound with an optional weight-affinity
// refinement: after the layer permutation fixes each group's slot range,
// atoms are swapped within their group to land on engines that already
// cache their weight slices, as long as the combined ifmap-hop +
// weight-refetch cost improves.
func (m *Mapper) PlaceRoundWeighted(roundAtoms []int, locate Locator, weights WeightLocator) Result {
	groups := m.groupByLayer(roundAtoms)
	m.buildCostTable(groups, locate)
	order := m.orderBuf[:0]
	for i := range groups {
		order = append(order, i)
	}
	m.orderBuf = order

	best := append(m.bestBuf[:0], order...)
	m.bestBuf = best
	bestCost := m.permCost(best)
	perms := 1
	if len(groups) > 1 && len(groups) <= maxExhaustive {
		bestCost, perms = m.branchAndBound(len(groups), best, bestCost)
	} else if len(groups) > maxExhaustive {
		// Pairwise-swap hill climbing, restarted until a full pass makes
		// no improvement.
		improved := true
		for improved {
			improved = false
			for i := 0; i < len(best); i++ {
				for j := i + 1; j < len(best); j++ {
					best[i], best[j] = best[j], best[i]
					perms++
					if c := m.permCost(best); c < bestCost {
						bestCost = c
						improved = true
					} else {
						best[i], best[j] = best[j], best[i]
					}
				}
			}
		}
	}

	eng, placed := m.newResult()
	res := Result{engineOf: eng, placed: placed, ByteHops: bestCost, Perms: perms}
	slot := 0
	for _, gi := range best {
		for _, id := range groups[gi].atoms {
			res.engineOf[id] = int32(m.zigzag[slot])
			res.placed = append(res.placed, id)
			slot++
		}
	}
	if weights != nil {
		m.refineForWeights(groups, best, res.engineOf, weights)
		res.ByteHops = m.placementCost(&res, locate)
	}
	return res
}

// branchAndBound searches the M! layer permutations with prefix pruning
// on the cost table: a prefix is abandoned when its cost plus a lower
// bound on every unplaced group (the suffix minimum of that group's cost
// row from the current base slot on) already exceeds the best complete
// permutation. It returns the best cost and the number of nodes priced.
//
// Tie-breaking reproduces the previous exhaustive search exactly (pinned
// by the golden/determinism digests): that search visited permutations in
// Heap's-algorithm order starting from the identity and kept the FIRST
// one achieving the minimum (strict <). Equivalently, ties resolve to the
// smallest Heap rank — so when a leaf merely equals bestCost, it wins
// only if its precomputed Heap rank is smaller.
func (m *Mapper) branchAndBound(M int, best []int, bestCost int64) (int64, int) {
	slots := m.ctSlots
	// Suffix minima: minFrom[g*slots+b] = min over b' in [b, maxBase(g)]
	// of groupCost[g*slots+b'], where maxBase(g) = slots - size(g) is the
	// last base the group can legally occupy. Bases grow monotonically
	// along a permutation, so the value at the current base lower-bounds
	// the group's eventual cost wherever it lands.
	minFrom := growInt64s(&m.minFrom, M*slots)
	for g := 0; g < M; g++ {
		maxBase := slots - m.sizes[g]
		row := m.groupCost[g*slots : (g+1)*slots]
		mf := minFrom[g*slots : (g+1)*slots]
		min := row[maxBase]
		for b := maxBase; b >= 0; b-- {
			if row[b] < min {
				min = row[b]
			}
			mf[b] = min
		}
	}

	ranks := heapRanks(M)
	bestRank := ranks[packPerm(best[:M])] // identity start = rank 0
	nodes := 1
	var perm [maxExhaustive]int
	var dfs func(depth, base int, used uint32, prefix int64)
	dfs = func(depth, base int, used uint32, prefix int64) {
		if depth == M {
			nodes++
			if r := ranks[packPerm(perm[:M])]; prefix < bestCost ||
				(prefix == bestCost && r < bestRank) {
				bestCost, bestRank = prefix, r
				copy(best, perm[:M])
			}
			return
		}
		// Prune only on strictly-greater bounds: an equal bound may still
		// hide an equal-cost leaf with a smaller Heap rank.
		lb := prefix
		for g := 0; g < M; g++ {
			if used&(1<<g) == 0 {
				lb += minFrom[g*slots+base]
			}
		}
		if lb > bestCost {
			return
		}
		for g := 0; g < M; g++ {
			if used&(1<<g) != 0 {
				continue
			}
			perm[depth] = g
			dfs(depth+1, base+m.sizes[g], used|1<<g, prefix+m.groupCost[g*slots+base])
		}
	}
	dfs(0, 0, 0, 0)
	return bestCost, nodes
}

// packPerm encodes a permutation of 0..len-1 (len ≤ 6) into 3 bits per
// element — the key of the Heap-rank tables.
func packPerm(p []int) uint32 {
	var k uint32
	for _, v := range p {
		k = k<<3 | uint32(v)
	}
	return k
}

var (
	heapRankTabs [maxExhaustive + 1]map[uint32]int
	heapRankOnce [maxExhaustive + 1]sync.Once
)

// heapRanks returns the table mapping each packed permutation of 0..n-1
// to its visit rank under Heap's algorithm (identity = 0) — the tie-break
// order of the historical exhaustive search. Built once per n, at most
// 720 entries.
func heapRanks(n int) map[uint32]int {
	heapRankOnce[n].Do(func() {
		tab := make(map[uint32]int)
		ord := make([]int, n)
		for i := range ord {
			ord[i] = i
		}
		rank := 0
		permute(ord, func(p []int) {
			tab[packPerm(p)] = rank
			rank++
		})
		heapRankTabs[n] = tab
	})
	return heapRankTabs[n]
}

// placementCost recomputes the ifmap byte-hop cost of a final placement.
func (m *Mapper) placementCost(res *Result, locate Locator) int64 {
	var cost int64
	for _, id := range res.placed {
		dst := int(res.engineOf[id])
		a := m.dag.Atoms[id]
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 || src == dst {
				continue
			}
			cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
		}
	}
	return cost
}

// refineForWeights hill-climbs within each group's slots, swapping atom
// pairs whenever the combined cost drops. The group's candidate engines
// are fixed by the permutation (swaps only permute atoms among them), and
// buffer residency does not change during placement, so every atom-engine
// cost — ifmap fetch hops plus the DRAM-equivalent price of a weight
// slice the engine does not hold — is assembled into one dense n x n
// matrix and each swap check is four lookups. The ifmap hop term is not
// recomputed here at all: buildCostTable already priced every (atom,
// slot) pair, so the matrix is filled from its cached rows.
func (m *Mapper) refineForWeights(groups []group, perm []int, engineOf []int32, weights WeightLocator) {
	slots := m.ctSlots
	for _, gi := range perm {
		atoms := groups[gi].atoms
		n := len(atoms)
		if n < 2 {
			continue
		}
		eng := growInts(&m.refEng, n)
		for j, id := range atoms {
			eng[j] = int(engineOf[id])
		}
		cost := growInt64s(&m.refCost, n*n)
		for i, id := range atoms {
			row := m.atomRows[int(m.rowOf[id])*slots : (int(m.rowOf[id])+1)*slots]
			ci := cost[i*n : (i+1)*n]
			wb := m.dag.Atoms[id].Task.WeightBytes() * dramHopEquivalent
			for j, e := range eng {
				c := row[m.slotOf[e]]
				if !weights(e, id) {
					c += wb
				}
				ci[j] = c
			}
		}
		// pos[i] is the slot (index into eng) atom i currently occupies.
		pos := growInts(&m.refPos, n)
		for i := range pos {
			pos[i] = i
		}
		improved := true
		for pass := 0; improved && pass < 4; pass++ {
			improved = false
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					pi, pj := pos[i], pos[j]
					cur := cost[i*n+pi] + cost[j*n+pj]
					swp := cost[i*n+pj] + cost[j*n+pi]
					if swp < cur {
						pos[i], pos[j] = pj, pi
						improved = true
					}
				}
			}
		}
		for i, id := range atoms {
			engineOf[id] = int32(eng[pos[i]])
		}
	}
}

// buildCostTable fills the Mapper's permutation-search table for the
// Round: groupCost[gi*slots+base] is the ifmap byte-hop cost of landing
// group gi's atoms on zig-zag slots base..base+size-1. Dependency sources
// are fixed by locate (they were placed in earlier Rounds), so the cost
// of a group depends only on its base slot — a permutation's TransferCost
// is the sum of M lookups along its prefix bases (see permCost).
func (m *Mapper) buildCostTable(groups []group, locate Locator) {
	slots := 0
	for _, g := range groups {
		slots += len(g.atoms)
	}
	m.ctSlots = slots
	sizes := growInts(&m.sizes, len(groups))
	groupCost := growInt64s(&m.groupCost, len(groups)*slots)
	// Each atom's per-slot cost row is kept (with a lookup index by atom
	// ID and an engine -> slot inverse) so refineForWeights can price
	// intra-group swaps without re-walking any dependency lists. Stale
	// rowOf/slotOf entries from earlier Rounds are never read: refinement
	// only queries this Round's atoms and slot engines.
	ne := m.mesh.Engines()
	atomRows := growInt64s(&m.atomRows, slots*slots)
	rowOf := growInt32s(&m.rowOf, m.dag.NumAtoms())
	slotOf := growInt32s(&m.slotOf, ne)
	for s := 0; s < slots; s++ {
		slotOf[m.zigzag[s]] = int32(s)
	}
	r := 0
	for gi, g := range groups {
		sizes[gi] = len(g.atoms)
		gc := groupCost[gi*slots : (gi+1)*slots]
		for b := range gc {
			gc[b] = 0
		}
		for k, id := range g.atoms {
			a := m.dag.Atoms[id]
			row := atomRows[r*slots : (r+1)*slots]
			rowOf[id] = int32(r)
			r++
			for s := range row {
				row[s] = 0
			}
			for di, dep := range a.Deps {
				src := locate(dep)
				if src < 0 {
					continue
				}
				bytes := a.DepBytes[di]
				zh := m.zigHops[src*ne : src*ne+slots]
				for s, h := range zh {
					row[s] += bytes * h
				}
			}
			// A group at base b puts its k-th atom on slot b+k.
			for b := 0; b+len(g.atoms) <= slots; b++ {
				gc[b] += row[b+k]
			}
		}
	}
}

// permCost prices one layer permutation from the cost table built by
// buildCostTable: O(M) lookups, no allocation, exactly equal to
// transferCost on the same groups and locator.
func (m *Mapper) permCost(perm []int) int64 {
	var c int64
	base := 0
	for _, gi := range perm {
		c += m.groupCost[gi*m.ctSlots+base]
		base += m.sizes[gi]
	}
	return c
}

// growInts returns *buf resized to n, reusing its capacity.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growInt32s returns *buf resized to n, reusing its capacity.
func growInt32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growInt64s returns *buf resized to n, reusing its capacity.
func growInt64s(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// groupByLayer buckets the Round's atoms into (sample, layer) groups,
// preserving the scheduler's deterministic order. The group headers and
// per-group atom slices are pooled on the Mapper and reused across
// Rounds; the returned slice is valid until the next call.
func (m *Mapper) groupByLayer(roundAtoms []int) []group {
	clear(m.gidx)
	groups := m.groupsBuf[:0]
	for _, id := range roundAtoms {
		a := m.dag.Atoms[id]
		k := int64(a.Sample)<<32 | int64(a.Layer)
		gi, ok := m.gidx[k]
		if !ok {
			gi = len(groups)
			m.gidx[k] = gi
			if gi == len(m.atomPool) {
				m.atomPool = append(m.atomPool, nil)
			}
			groups = append(groups, group{atoms: m.atomPool[gi][:0]})
		}
		groups[gi].atoms = append(groups[gi].atoms, id)
	}
	for i := range groups {
		m.atomPool[i] = groups[i].atoms // return grown capacity to the pool
		sort.Ints(groups[i].atoms)
	}
	m.groupsBuf = groups
	return groups
}

// transferCost prices one layer permutation: place groups in zig-zag
// sequence and sum hop-weighted bytes of every on-chip dependency fetch.
func (m *Mapper) transferCost(groups []group, perm []int, locate Locator) int64 {
	engineOf := make(map[int]int, len(groups)*2)
	slot := 0
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			engineOf[id] = m.zigzag[slot]
			slot++
		}
	}
	var cost int64
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			dst := engineOf[id]
			a := m.dag.Atoms[id]
			for di, dep := range a.Deps {
				src := locate(dep)
				if src < 0 || src == dst {
					continue
				}
				cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
			}
		}
	}
	return cost
}

// permute calls visit with every permutation of order (Heap's algorithm).
// visit must not retain the slice. It remains the executable definition
// of the historical search order the branch-and-bound tie-break
// reproduces (and builds the Heap-rank tables).
func permute(order []int, visit func([]int)) {
	n := len(order)
	c := make([]int, n)
	visit(order)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				order[0], order[i] = order[i], order[0]
			} else {
				order[c[i]], order[i] = order[i], order[c[i]]
			}
			visit(order)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// ZigZag exposes the snake order for tests and the LS baseline.
func (m *Mapper) ZigZag() []int { return append([]int(nil), m.zigzag...) }
