// Package mapping implements the paper's atom-engine mapping stage
// (Sec. IV-C): given the atoms of one Round, choose which physical engine
// runs each atom so that inter-engine tensor transfers travel the fewest
// NoC hops. As in the paper, atoms are laid onto the 2D mesh in zig-zag
// order with same-layer atoms adjacent, and the free variable is the
// permutation P of the involved layers; TransferCost(P) = Σ D(i,j) x Size
// is minimized by exhaustive permutation search for small M and pairwise-
// swap hill climbing above that.
package mapping

import (
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// maxExhaustive is the largest layer-group count for which all M!
// permutations are tried (6! = 720 cost evaluations).
const maxExhaustive = 6

// Locator reports where an atom's output currently resides: the engine
// index, or -1 if it is off-chip (in DRAM) or not yet produced.
type Locator func(atomID int) int

// WeightLocator reports whether an engine's buffer already caches the
// weight slice an atom needs, so placement can exploit weight reuse.
// A nil WeightLocator disables the weight-affinity refinement.
type WeightLocator func(engineID, atomID int) bool

// dramHopEquivalent converts a byte refetched from DRAM into the
// placement cost of a byte moved one NoC hop (7 pJ/bit HBM vs 0.61
// pJ/bit/hop NoC ≈ 11; rounded down to keep ifmap locality dominant).
const dramHopEquivalent = 8

// Mapper places Rounds onto a mesh. A Mapper is owned by one goroutine
// (each sim.Run builds its own): the scratch buffers below are reused
// across PlaceRound calls so a Round's placement search allocates only
// its Result.
type Mapper struct {
	mesh   *noc.Mesh
	dag    *atom.DAG
	zigzag []int // engine indices in zig-zag (snake) order

	// Permutation-search scratch (see buildCostTable).
	gidx      map[int64]int
	groupsBuf []group
	atomPool  [][]int
	orderBuf  []int
	bestBuf   []int
	sizes     []int   // group -> atom count
	groupCost []int64 // group x base-slot byte-hop costs
	rowBuf    []int64 // one atom's cost per slot
	ctSlots   int     // slot count of the current table

	// Weight-refinement scratch (see refineForWeights).
	refEng  []int
	refPos  []int
	refCost []int64
}

// New returns a Mapper for the DAG on the mesh.
func New(mesh *noc.Mesh, dag *atom.DAG) *Mapper {
	m := &Mapper{mesh: mesh, dag: dag, gidx: make(map[int64]int)}
	m.zigzag = make([]int, 0, mesh.Engines())
	for y := 0; y < mesh.H; y++ {
		if y%2 == 0 {
			for x := 0; x < mesh.W; x++ {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		} else {
			for x := mesh.W - 1; x >= 0; x-- {
				m.zigzag = append(m.zigzag, mesh.EngineAt(x, y))
			}
		}
	}
	return m
}

// Result is the placement of one Round.
type Result struct {
	EngineOf map[int]int // atom ID -> engine index
	ByteHops int64       // Σ bytes x hops of on-chip input transfers
	Perms    int         // permutations evaluated (diagnostics)
}

// group is the placement unit: the Round's atoms of one (sample, layer).
type group struct {
	atoms []int
}

// PlaceRound assigns each Round atom an engine. locate reports the engine
// holding each dependency's output (-1 = off-chip, no NoC cost — the DRAM
// cost does not depend on P).
func (m *Mapper) PlaceRound(roundAtoms []int, locate Locator) Result {
	return m.PlaceRoundWeighted(roundAtoms, locate, nil)
}

// PlaceRoundWeighted is PlaceRound with an optional weight-affinity
// refinement: after the layer permutation fixes each group's slot range,
// atoms are swapped within their group to land on engines that already
// cache their weight slices, as long as the combined ifmap-hop +
// weight-refetch cost improves.
func (m *Mapper) PlaceRoundWeighted(roundAtoms []int, locate Locator, weights WeightLocator) Result {
	groups := m.groupByLayer(roundAtoms)
	m.buildCostTable(groups, locate)
	order := m.orderBuf[:0]
	for i := range groups {
		order = append(order, i)
	}
	m.orderBuf = order
	// eval prices one layer permutation in M table lookups; it equals
	// transferCost(groups, perm, locate) exactly (pinned by tests), so
	// the search visits and ranks permutations identically.
	eval := m.permCost

	best := append(m.bestBuf[:0], order...)
	m.bestBuf = best
	bestCost := eval(best)
	perms := 1
	if len(groups) > 1 && len(groups) <= maxExhaustive {
		permute(order, func(p []int) {
			perms++
			if c := eval(p); c < bestCost {
				bestCost = c
				copy(best, p)
			}
		})
	} else if len(groups) > maxExhaustive {
		// Pairwise-swap hill climbing, restarted until a full pass makes
		// no improvement.
		improved := true
		for improved {
			improved = false
			for i := 0; i < len(best); i++ {
				for j := i + 1; j < len(best); j++ {
					best[i], best[j] = best[j], best[i]
					perms++
					if c := eval(best); c < bestCost {
						bestCost = c
						improved = true
					} else {
						best[i], best[j] = best[j], best[i]
					}
				}
			}
		}
	}

	res := Result{EngineOf: make(map[int]int, len(roundAtoms)), ByteHops: bestCost, Perms: perms}
	slot := 0
	for _, gi := range best {
		for _, id := range groups[gi].atoms {
			res.EngineOf[id] = m.zigzag[slot]
			slot++
		}
	}
	if weights != nil {
		m.refineForWeights(groups, best, res.EngineOf, locate, weights)
		res.ByteHops = m.placementCost(res.EngineOf, locate)
	}
	return res
}

// placementCost recomputes the ifmap byte-hop cost of a final placement.
func (m *Mapper) placementCost(engineOf map[int]int, locate Locator) int64 {
	var cost int64
	for id, dst := range engineOf {
		a := m.dag.Atoms[id]
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 || src == dst {
				continue
			}
			cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
		}
	}
	return cost
}

// fillAtomCosts writes into cost[i*n+j] the price of running atoms[i] on
// eng[j]: ifmap fetch hops plus the DRAM-equivalent cost of a weight
// slice the engine does not hold. Dependencies are resolved once per
// atom and priced against a shared hop row, not once per engine pair.
func (m *Mapper) fillAtomCosts(atoms, eng []int, cost []int64, locate Locator, weights WeightLocator) {
	n := len(eng)
	for i, id := range atoms {
		a := m.dag.Atoms[id]
		ci := cost[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for di, dep := range a.Deps {
			src := locate(dep)
			if src < 0 {
				continue
			}
			bytes := a.DepBytes[di]
			hr := m.mesh.HopsRow(src)
			for j, e := range eng {
				ci[j] += bytes * int64(hr[e])
			}
		}
		wb := a.Task.WeightBytes() * dramHopEquivalent
		for j, e := range eng {
			if !weights(e, id) {
				ci[j] += wb
			}
		}
	}
}

// refineForWeights hill-climbs within each group's slots, swapping atom
// pairs whenever the combined cost drops. The group's candidate engines
// are fixed by the permutation (swaps only permute atoms among them), and
// buffer residency does not change during placement, so every atom-engine
// cost is precomputed into one dense n x n matrix and each swap check is
// four lookups — this was the simulator's hottest path before.
func (m *Mapper) refineForWeights(groups []group, perm []int, engineOf map[int]int, locate Locator, weights WeightLocator) {
	for _, gi := range perm {
		atoms := groups[gi].atoms
		n := len(atoms)
		if n < 2 {
			continue
		}
		eng := growInts(&m.refEng, n)
		for j, id := range atoms {
			eng[j] = engineOf[id]
		}
		cost := growInt64s(&m.refCost, n*n)
		m.fillAtomCosts(atoms, eng, cost, locate, weights)
		// pos[i] is the slot (index into eng) atom i currently occupies.
		pos := growInts(&m.refPos, n)
		for i := range pos {
			pos[i] = i
		}
		improved := true
		for pass := 0; improved && pass < 4; pass++ {
			improved = false
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					pi, pj := pos[i], pos[j]
					cur := cost[i*n+pi] + cost[j*n+pj]
					swp := cost[i*n+pj] + cost[j*n+pi]
					if swp < cur {
						pos[i], pos[j] = pj, pi
						improved = true
					}
				}
			}
		}
		for i, id := range atoms {
			engineOf[id] = eng[pos[i]]
		}
	}
}

// buildCostTable fills the Mapper's permutation-search table for the
// Round: groupCost[gi*slots+base] is the ifmap byte-hop cost of landing
// group gi's atoms on zig-zag slots base..base+size-1. Dependency sources
// are fixed by locate (they were placed in earlier Rounds), so the cost
// of a group depends only on its base slot — a permutation's TransferCost
// is the sum of M lookups along its prefix bases (see permCost).
func (m *Mapper) buildCostTable(groups []group, locate Locator) {
	slots := 0
	for _, g := range groups {
		slots += len(g.atoms)
	}
	m.ctSlots = slots
	sizes := growInts(&m.sizes, len(groups))
	groupCost := growInt64s(&m.groupCost, len(groups)*slots)
	row := growInt64s(&m.rowBuf, slots)
	for gi, g := range groups {
		sizes[gi] = len(g.atoms)
		gc := groupCost[gi*slots : (gi+1)*slots]
		for b := range gc {
			gc[b] = 0
		}
		for k, id := range g.atoms {
			a := m.dag.Atoms[id]
			for s := range row {
				row[s] = 0
			}
			for di, dep := range a.Deps {
				src := locate(dep)
				if src < 0 {
					continue
				}
				bytes := a.DepBytes[di]
				hr := m.mesh.HopsRow(src)
				for s, e := range m.zigzag[:slots] {
					row[s] += bytes * int64(hr[e])
				}
			}
			// A group at base b puts its k-th atom on slot b+k.
			for b := 0; b+len(g.atoms) <= slots; b++ {
				gc[b] += row[b+k]
			}
		}
	}
}

// permCost prices one layer permutation from the cost table built by
// buildCostTable: O(M) lookups, no allocation, exactly equal to
// transferCost on the same groups and locator.
func (m *Mapper) permCost(perm []int) int64 {
	var c int64
	base := 0
	for _, gi := range perm {
		c += m.groupCost[gi*m.ctSlots+base]
		base += m.sizes[gi]
	}
	return c
}

// growInts returns *buf resized to n, reusing its capacity.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growInt64s returns *buf resized to n, reusing its capacity.
func growInt64s(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// groupByLayer buckets the Round's atoms into (sample, layer) groups,
// preserving the scheduler's deterministic order. The group headers and
// per-group atom slices are pooled on the Mapper and reused across
// Rounds; the returned slice is valid until the next call.
func (m *Mapper) groupByLayer(roundAtoms []int) []group {
	clear(m.gidx)
	groups := m.groupsBuf[:0]
	for _, id := range roundAtoms {
		a := m.dag.Atoms[id]
		k := int64(a.Sample)<<32 | int64(a.Layer)
		gi, ok := m.gidx[k]
		if !ok {
			gi = len(groups)
			m.gidx[k] = gi
			if gi == len(m.atomPool) {
				m.atomPool = append(m.atomPool, nil)
			}
			groups = append(groups, group{atoms: m.atomPool[gi][:0]})
		}
		groups[gi].atoms = append(groups[gi].atoms, id)
	}
	for i := range groups {
		m.atomPool[i] = groups[i].atoms // return grown capacity to the pool
		sort.Ints(groups[i].atoms)
	}
	m.groupsBuf = groups
	return groups
}

// transferCost prices one layer permutation: place groups in zig-zag
// sequence and sum hop-weighted bytes of every on-chip dependency fetch.
func (m *Mapper) transferCost(groups []group, perm []int, locate Locator) int64 {
	engineOf := make(map[int]int, len(groups)*2)
	slot := 0
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			engineOf[id] = m.zigzag[slot]
			slot++
		}
	}
	var cost int64
	for _, gi := range perm {
		for _, id := range groups[gi].atoms {
			dst := engineOf[id]
			a := m.dag.Atoms[id]
			for di, dep := range a.Deps {
				src := locate(dep)
				if src < 0 || src == dst {
					continue
				}
				cost += a.DepBytes[di] * int64(m.mesh.Hops(src, dst))
			}
		}
	}
	return cost
}

// permute calls visit with every permutation of order (Heap's algorithm).
// visit must not retain the slice.
func permute(order []int, visit func([]int)) {
	n := len(order)
	c := make([]int, n)
	visit(order)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				order[0], order[i] = order[i], order[0]
			} else {
				order[c[i]], order[i] = order[i], order[c[i]]
			}
			visit(order)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// ZigZag exposes the snake order for tests and the LS baseline.
func (m *Mapper) ZigZag() []int { return append([]int(nil), m.zigzag...) }
