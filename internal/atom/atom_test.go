package atom

import (
	"testing"
	"testing/quick"

	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func buildDAG(t *testing.T, g *graph.Graph, batch int, spec Spec) *DAG {
	t.Helper()
	d, err := Build(g, batch, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestWholeLayerSingleAtom(t *testing.T) {
	g := models.TinyConv()
	d := buildDAG(t, g, 1, nil)
	// One atom per non-concat layer.
	want := 0
	for _, l := range g.Layers {
		if l.Kind != graph.OpConcat {
			want++
		}
	}
	if d.NumAtoms() != want {
		t.Errorf("NumAtoms = %d, want %d", d.NumAtoms(), want)
	}
}

func TestTileCounts(t *testing.T) {
	g := models.TinyConv() // conv1: 32x32x16
	conv1 := g.Layer(1)
	spec := Spec{conv1.ID: {Hp: 16, Wp: 16, Cop: 8}}
	d := buildDAG(t, g, 1, spec)
	atoms := d.AtomsOf(0, conv1.ID)
	if len(atoms) != 2*2*2 {
		t.Errorf("conv1 atoms = %d, want 8", len(atoms))
	}
	// Regions must exactly cover the output tensor without overlap.
	var covered int64
	for _, id := range atoms {
		covered += d.Atoms[id].OutputBytes()
	}
	if covered != conv1.OutputBytes() {
		t.Errorf("atom regions cover %d bytes, want %d", covered, conv1.OutputBytes())
	}
}

func TestRaggedTiling(t *testing.T) {
	g := models.TinyConv()
	conv1 := g.Layer(1) // 32x32x16
	spec := Spec{conv1.ID: {Hp: 10, Wp: 32, Cop: 16}}
	d := buildDAG(t, g, 1, spec)
	atoms := d.AtomsOf(0, conv1.ID)
	if len(atoms) != 4 {
		t.Fatalf("atoms = %d, want 4 (32 = 10+10+10+2)", len(atoms))
	}
	last := d.Atoms[atoms[3]]
	if got := last.Region.H1 - last.Region.H0; got != 2 {
		t.Errorf("last tile height = %d, want 2", got)
	}
	if last.Task.Hp != 2 {
		t.Errorf("last tile Task.Hp = %d, want 2", last.Task.Hp)
	}
}

func TestConvReceptiveFieldDeps(t *testing.T) {
	// Two stacked 3x3 convs, both split in half along H: the lower half
	// of conv2 needs both halves of conv1 (1-pixel halo crosses the cut).
	g := graph.New("halo")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 8, Wo: 8, Co: 4})
	c1 := g.AddLayer("c1", graph.OpConv, graph.ConvShape(8, 8, 4, 4, 3, 1, 1), in)
	c2 := g.AddLayer("c2", graph.OpConv, graph.ConvShape(8, 8, 4, 4, 3, 1, 1), c1)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		c1: {Hp: 4, Wp: 8, Cop: 4},
		c2: {Hp: 4, Wp: 8, Cop: 4},
	}
	d := buildDAG(t, g, 1, spec)
	c1Atoms := d.AtomsOf(0, c1)
	c2Atoms := d.AtomsOf(0, c2)
	if len(c1Atoms) != 2 || len(c2Atoms) != 2 {
		t.Fatalf("atom counts = %d, %d; want 2, 2", len(c1Atoms), len(c2Atoms))
	}
	// c2 top tile covers output rows [0,4); it reads input rows [0,5)
	// which spans c1 tile [0,4) and tile [4,8).
	top := d.Atoms[c2Atoms[0]]
	if len(top.Deps) != 2 {
		t.Errorf("c2 top tile deps = %v, want both c1 tiles", top.Deps)
	}
}

func TestStridedConvDeps(t *testing.T) {
	// Stride-2 conv: output tile [0,2) needs input rows [0,5) with k=3,
	// i.e. only the first input tile when input split at 8.
	g := graph.New("stride")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 16, Wo: 16, Co: 4})
	c1 := g.AddLayer("c1", graph.OpConv, graph.ConvShape(16, 16, 4, 4, 3, 1, 1), in)
	c2 := g.AddLayer("c2", graph.OpConv, graph.ConvShape(16, 16, 4, 4, 3, 2, 1), c1)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		c1: {Hp: 8, Wp: 16, Cop: 4},
		c2: {Hp: 2, Wp: 8, Cop: 4}, // c2 output is 8x8
	}
	d := buildDAG(t, g, 1, spec)
	top := d.Atoms[d.AtomsOf(0, c2)[0]]
	// Output rows [0,2), stride 2, pad 1, k 3 -> input rows [0, 4): only
	// c1's first H-tile.
	if len(top.Deps) != 1 {
		t.Errorf("strided top tile deps = %d, want 1", len(top.Deps))
	}
}

func TestConcatElision(t *testing.T) {
	g := models.TinyBranch()
	d := buildDAG(t, g, 1, nil)
	// No atom may belong to a concat layer.
	for _, a := range d.Atoms {
		if g.Layer(a.Layer).Kind == graph.OpConcat {
			t.Fatalf("atom %v belongs to a concat layer", a)
		}
	}
	// The global pool (consumer of the concat) must depend on all three
	// branch outputs.
	var gpID int
	for _, l := range g.Layers {
		if l.Kind == graph.OpGlobalPool {
			gpID = l.ID
		}
	}
	gp := d.Atoms[d.AtomsOf(0, gpID)[0]]
	branchLayers := make(map[int]bool)
	for _, dep := range gp.Deps {
		branchLayers[d.Atoms[dep].Layer] = true
	}
	if len(branchLayers) != 3 {
		t.Errorf("global pool depends on %d branch layers, want 3", len(branchLayers))
	}
}

func TestConcatChannelRouting(t *testing.T) {
	// conv reading only the second producer's channels through a concat
	// must depend only on that producer.
	g := graph.New("ccr")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 4, Wo: 4, Co: 4})
	a := g.AddLayer("a", graph.OpConv, graph.ConvShape(4, 4, 4, 8, 1, 1, 0), in)
	b := g.AddLayer("b", graph.OpConv, graph.ConvShape(4, 4, 4, 8, 1, 1, 0), in)
	cat := g.AddLayer("cat", graph.OpConcat, graph.Shape{Hi: 4, Wi: 4, Ci: 16, Ho: 4, Wo: 4, Co: 16, Kh: 1, Kw: 1, Stride: 1}, a, b)
	// Depthwise conv partitioned along channels: tiles map 1:1 to input
	// channels, so the second-half tile touches only producer b.
	dw := g.AddLayer("dw", graph.OpDepthwiseConv, graph.ConvShape(4, 4, 16, 16, 3, 1, 1), cat)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := Spec{dw: {Hp: 4, Wp: 4, Cop: 8}}
	d := buildDAG(t, g, 1, spec)
	atoms := d.AtomsOf(0, dw)
	if len(atoms) != 2 {
		t.Fatalf("dw atoms = %d, want 2", len(atoms))
	}
	second := d.Atoms[atoms[1]]
	if len(second.Deps) != 1 || d.Atoms[second.Deps[0]].Layer != b {
		t.Errorf("second dw tile deps = %v, want only layer b", second.Deps)
	}
}

func TestBatchReplication(t *testing.T) {
	g := models.TinyResNet()
	d1 := buildDAG(t, g, 1, nil)
	d3 := buildDAG(t, g, 3, nil)
	if d3.NumAtoms() != 3*d1.NumAtoms() {
		t.Errorf("batch 3 atoms = %d, want %d", d3.NumAtoms(), 3*d1.NumAtoms())
	}
	// No edges may cross samples.
	for _, a := range d3.Atoms {
		for _, dep := range a.Deps {
			if d3.Atoms[dep].Sample != a.Sample {
				t.Fatalf("cross-sample edge %v -> %v", d3.Atoms[dep], a)
			}
		}
	}
}

func TestDepsAreAcyclicAndOrdered(t *testing.T) {
	for _, name := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell"} {
		g := models.MustBuild(name)
		spec := make(Spec)
		for _, lid := range g.ComputeLayers() {
			l := g.Layer(lid)
			spec[lid] = Partition{
				Hp: max(1, l.Shape.Ho/2), Wp: max(1, l.Shape.Wo/2),
				Cop: max(1, l.Shape.Co/2),
			}
		}
		d := buildDAG(t, g, 2, spec)
		for _, a := range d.Atoms {
			for _, dep := range a.Deps {
				if dep >= a.ID {
					t.Fatalf("%s: dep %d not before atom %d", name, dep, a.ID)
				}
			}
		}
	}
}

func TestConsumersInverseOfDeps(t *testing.T) {
	g := models.TinyBranch()
	d := buildDAG(t, g, 1, nil)
	for _, a := range d.Atoms {
		for _, dep := range a.Deps {
			found := false
			for _, c := range d.Consumers(dep) {
				if c == a.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("consumers(%d) missing %d", dep, a.ID)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := models.TinyConv()
	if _, err := Build(g, 0, nil); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := Build(g, 1, Spec{1: {Hp: 0, Wp: 1, Cop: 1}}); err == nil {
		t.Error("zero partition accepted")
	}
}

func TestValidateOnZooDAGs(t *testing.T) {
	for _, name := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell"} {
		g := models.MustBuild(name)
		spec := make(Spec)
		for _, lid := range g.ComputeLayers() {
			l := g.Layer(lid)
			spec[lid] = Partition{Hp: max(1, l.Shape.Ho/3), Wp: max(1, l.Shape.Wo/2), Cop: max(1, l.Shape.Co/2)}
		}
		d := buildDAG(t, g, 2, spec)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: for any partition of a conv chain, every atom's region is
// non-empty, within bounds, and regions of one layer tile it exactly.
func TestPartitionCoverageProperty(t *testing.T) {
	g := models.TinyConv()
	conv2 := g.Layer(2) // 32x32x16
	f := func(hpRaw, wpRaw, cpRaw uint8) bool {
		spec := Spec{conv2.ID: {
			Hp: int(hpRaw%32) + 1, Wp: int(wpRaw%32) + 1, Cop: int(cpRaw%16) + 1,
		}}
		d, err := Build(g, 1, spec)
		if err != nil {
			return false
		}
		var covered int64
		for _, id := range d.AtomsOf(0, conv2.ID) {
			r := d.Atoms[id].Region
			if r.empty() || r.H1 > 32 || r.W1 > 32 || r.C1 > 16 {
				return false
			}
			covered += r.Bytes()
		}
		return covered == conv2.OutputBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
