// Package atom implements the paper's central abstraction: the atomic DAG
// (Sec. III). Each DNN layer is partitioned into atoms — sub-tiles of its
// output tensor sized [h_p, w_p, c_p^o] — and atom-level data-dependency
// edges are derived by back-projecting each atom's receptive field onto
// its producer layers' tilings. A batch of B inferences is represented as
// B replicated sub-DAGs inside one unified DAG, enabling batch-level
// parallelism (paper Fig. 6, parallelism type 4).
//
// Concat layers are elided during DAG construction: concatenation along
// channels is pure addressing on-chip, so consumers of a concat resolve
// their input channel ranges directly to the concat's producers.
package atom

import (
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// Partition describes how one layer's output tensor is tiled into atoms.
type Partition struct {
	Hp, Wp, Cop int // tile extents along Ho, Wo, Co
}

// Tiles returns the atom count the partition induces on the layer.
func (p Partition) Tiles(l *graph.Layer) int {
	s := l.Shape
	return ceilDiv(s.Ho, p.Hp) * ceilDiv(s.Wo, p.Wp) * ceilDiv(s.Co, p.Cop)
}

// Validate checks the partition against the layer's shape.
func (p Partition) Validate(l *graph.Layer) error {
	if p.Hp <= 0 || p.Wp <= 0 || p.Cop <= 0 {
		return fmt.Errorf("atom: layer %s: non-positive partition %+v", l.Name, p)
	}
	return nil
}

// WholeLayer returns the trivial partition producing exactly one atom.
func WholeLayer(l *graph.Layer) Partition {
	s := l.Shape
	return Partition{Hp: s.Ho, Wp: s.Wo, Cop: s.Co}
}

// Spec maps layer IDs to partitions. Layers without an entry get a single
// atom (WholeLayer). Concat and Input layers never need entries.
type Spec map[int]Partition

// Region is a half-open sub-box of a layer's output tensor.
type Region struct {
	H0, H1 int // [H0, H1) along Ho
	W0, W1 int
	C0, C1 int // along Co
}

// Bytes returns the INT8 footprint of the region.
func (r Region) Bytes() int64 {
	return int64(r.H1-r.H0) * int64(r.W1-r.W0) * int64(r.C1-r.C0)
}

func (r Region) empty() bool { return r.H1 <= r.H0 || r.W1 <= r.W0 || r.C1 <= r.C0 }

// Atom is one vertex of the atomic DAG: the Region of one layer's output
// for one batch sample, plus the engine.Task that prices its execution.
type Atom struct {
	ID     int
	Layer  int // layer ID in the source graph
	Sample int // batch index
	Index  int // tile index within (Layer, Sample), row-major (h, w, c)
	Region Region
	Task   engine.Task

	// Deps lists producer atom IDs; DepBytes[i] is the byte volume of the
	// overlap between Deps[i]'s output region and this atom's receptive
	// field — the actual tensor traffic of the edge. Atoms of input layers
	// have no deps (their data is in DRAM).
	Deps     []int
	DepBytes []int64
}

// OutputBytes returns the atom's produced tensor bytes.
func (a *Atom) OutputBytes() int64 { return a.Region.Bytes() }

// String implements fmt.Stringer with the paper's "layer-index" notation.
func (a *Atom) String() string {
	return fmt.Sprintf("atom{L%d-%d s%d [%d:%d,%d:%d,%d:%d]}",
		a.Layer, a.Index, a.Sample,
		a.Region.H0, a.Region.H1, a.Region.W0, a.Region.W1, a.Region.C0, a.Region.C1)
}

// grid records the regular tiling of one (layer, sample) so that
// region→atom lookups are O(overlap) instead of O(atoms).
type grid struct {
	part       Partition
	nH, nW, nC int
	base       int // first atom ID of this grid
}

// DAG is the atomic computation graph.
type DAG struct {
	Graph *graph.Graph
	Batch int
	Atoms []*Atom

	consumers [][]int
	grids     []map[int]grid // per sample: layerID -> grid (concat/elided layers absent)
}

// NumAtoms returns the vertex count.
func (d *DAG) NumAtoms() int { return len(d.Atoms) }

// Consumers returns the atom IDs that consume atom id's output.
// The returned slice must not be modified.
func (d *DAG) Consumers(id int) []int { return d.consumers[id] }

// AtomsOf returns the atom IDs of one (layer, sample), or nil if the layer
// is elided (concat).
func (d *DAG) AtomsOf(sample, layerID int) []int {
	g, ok := d.grids[sample][layerID]
	if !ok {
		return nil
	}
	n := g.nH * g.nW * g.nC
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.base + i
	}
	return ids
}

// Validate checks the DAG's structural invariants: dependency edges point
// strictly backward (acyclicity by construction order), every edge has a
// positive byte weight no larger than the producer's output, and each
// (layer, sample) grid exactly tiles its output tensor.
func (d *DAG) Validate() error {
	for _, a := range d.Atoms {
		if len(a.Deps) != len(a.DepBytes) {
			return fmt.Errorf("atom %d: %d deps but %d weights", a.ID, len(a.Deps), len(a.DepBytes))
		}
		for i, dep := range a.Deps {
			if dep >= a.ID {
				return fmt.Errorf("atom %d: forward dep %d", a.ID, dep)
			}
			if a.DepBytes[i] <= 0 || a.DepBytes[i] > d.Atoms[dep].OutputBytes() {
				return fmt.Errorf("atom %d: dep %d carries %d bytes (producer has %d)",
					a.ID, dep, a.DepBytes[i], d.Atoms[dep].OutputBytes())
			}
		}
	}
	for s := 0; s < d.Batch; s++ {
		for lid, gr := range d.grids[s] {
			l := d.Graph.Layer(lid)
			var covered int64
			n := gr.nH * gr.nW * gr.nC
			for i := 0; i < n; i++ {
				covered += d.Atoms[gr.base+i].Region.Bytes()
			}
			if covered != l.OutputBytes() {
				return fmt.Errorf("layer %d sample %d: atoms cover %d of %d bytes",
					lid, s, covered, l.OutputBytes())
			}
		}
	}
	return nil
}

// Build constructs the atomic DAG for the workload graph under the given
// per-layer partition spec and batch size.
func Build(g *graph.Graph, batch int, spec Spec) (*DAG, error) {
	if batch < 1 {
		return nil, fmt.Errorf("atom: batch %d < 1", batch)
	}
	d := &DAG{Graph: g, Batch: batch, grids: make([]map[int]grid, batch)}
	for s := 0; s < batch; s++ {
		d.grids[s] = make(map[int]grid)
		for _, lid := range g.Topo() {
			l := g.Layer(lid)
			if l.Kind == graph.OpConcat {
				continue // elided: pure channel addressing
			}
			part, ok := spec[lid]
			if !ok {
				part = WholeLayer(l)
			}
			if err := part.Validate(l); err != nil {
				return nil, err
			}
			if err := d.addLayerAtoms(s, l, part); err != nil {
				return nil, err
			}
		}
	}
	d.consumers = make([][]int, len(d.Atoms))
	for _, a := range d.Atoms {
		for _, dep := range a.Deps {
			d.consumers[dep] = append(d.consumers[dep], a.ID)
		}
	}
	return d, nil
}

// addLayerAtoms tiles one (layer, sample) and wires dependency edges.
func (d *DAG) addLayerAtoms(sample int, l *graph.Layer, part Partition) error {
	s := l.Shape
	nH, nW, nC := ceilDiv(s.Ho, part.Hp), ceilDiv(s.Wo, part.Wp), ceilDiv(s.Co, part.Cop)
	d.grids[sample][l.ID] = grid{part: part, nH: nH, nW: nW, nC: nC, base: len(d.Atoms)}
	idx := 0
	for ih := 0; ih < nH; ih++ {
		for iw := 0; iw < nW; iw++ {
			for ic := 0; ic < nC; ic++ {
				r := Region{
					H0: ih * part.Hp, H1: min((ih+1)*part.Hp, s.Ho),
					W0: iw * part.Wp, W1: min((iw+1)*part.Wp, s.Wo),
					C0: ic * part.Cop, C1: min((ic+1)*part.Cop, s.Co),
				}
				a := &Atom{
					ID:     len(d.Atoms),
					Layer:  l.ID,
					Sample: sample,
					Index:  idx,
					Region: r,
					Task:   taskFor(l, r),
				}
				a.Deps, a.DepBytes = d.depsFor(sample, l, r)
				d.Atoms = append(d.Atoms, a)
				idx++
			}
		}
	}
	return nil
}

// taskFor builds the engine.Task pricing an atom covering region r of l.
func taskFor(l *graph.Layer, r Region) engine.Task {
	s := l.Shape
	t := engine.Task{
		Kind: l.Kind,
		Hp:   r.H1 - r.H0, Wp: r.W1 - r.W0,
		Ci: s.Ci, Cop: r.C1 - r.C0,
		Kh: s.Kh, Kw: s.Kw, Stride: s.Stride,
	}
	if l.Kind == graph.OpDepthwiseConv {
		t.Ci = 1
	}
	return t
}

// depsFor resolves the producer atoms whose outputs overlap the input
// receptive field of region r of layer l in the given sample, together
// with the per-edge overlap volume in bytes.
func (d *DAG) depsFor(sample int, l *graph.Layer, r Region) ([]int, []int64) {
	var deps []int
	var bytes []int64
	pos := make(map[int]int)
	for _, ref := range inputRegions(d.Graph, l, r) {
		d.collectOverlaps(sample, ref, func(id int, overlap int64) {
			if i, ok := pos[id]; ok {
				bytes[i] += overlap
			} else {
				pos[id] = len(deps)
				deps = append(deps, id)
				bytes = append(bytes, overlap)
			}
		})
	}
	// Multiple refs can overlap the same producer region (e.g. eltwise
	// inputs resolving to one atom); cap at the producer's output size.
	for i, id := range deps {
		if lim := d.Atoms[id].OutputBytes(); bytes[i] > lim {
			bytes[i] = lim
		}
	}
	return deps, bytes
}

// regionRef names a required region of one producer layer's output.
type regionRef struct {
	layer  int
	region Region
}

// inputRegions back-projects output region r of layer l onto its producer
// layers, resolving through concat layers recursively.
func inputRegions(g *graph.Graph, l *graph.Layer, r Region) []regionRef {
	s := l.Shape
	var refs []regionRef
	switch l.Kind {
	case graph.OpInput:
		return nil
	case graph.OpFC, graph.OpGlobalPool:
		// Consumes the producer's whole tensor. (GlobalPool could in
		// principle restrict channels, but it is never partitioned —
		// keeping the full extent is always correct.)
		for _, in := range l.Inputs {
			p := g.Layer(in).Shape
			full := Region{H0: 0, H1: p.Ho, W0: 0, W1: p.Wo, C0: 0, C1: p.Co}
			refs = append(refs, resolve(g, in, full)...)
		}
		return refs
	case graph.OpEltwise:
		for _, in := range l.Inputs {
			refs = append(refs, resolve(g, in, r)...)
		}
		return refs
	case graph.OpActivation:
		for _, in := range l.Inputs {
			refs = append(refs, resolve(g, in, r)...)
		}
		return refs
	}
	// Conv-like (Conv, DWConv, Pool): spatial receptive field with halo.
	stride, pad := s.Stride, s.Pad
	if stride <= 0 {
		stride = 1
	}
	h0 := max(0, r.H0*stride-pad)
	h1 := min(s.Hi, (r.H1-1)*stride-pad+s.Kh)
	w0 := max(0, r.W0*stride-pad)
	w1 := min(s.Wi, (r.W1-1)*stride-pad+s.Kw)
	var c0, c1 int
	switch l.Kind {
	case graph.OpDepthwiseConv, graph.OpPool:
		c0, c1 = r.C0, r.C1 // channel-preserving
	default:
		c0, c1 = 0, s.Ci // dense conv consumes all input channels
	}
	in := l.Inputs[0]
	return resolve(g, in, Region{H0: h0, H1: h1, W0: w0, W1: w1, C0: c0, C1: c1})
}

// resolve maps a required region of layer `lid`'s output through any
// concat layers down to concrete (non-concat) producer regions.
func resolve(g *graph.Graph, lid int, r Region) []regionRef {
	l := g.Layer(lid)
	if l.Kind != graph.OpConcat {
		if r.empty() {
			return nil
		}
		return []regionRef{{layer: lid, region: r}}
	}
	var refs []regionRef
	off := 0
	for _, in := range l.Inputs {
		pc := g.Layer(in).Shape.Co
		lo, hi := max(r.C0, off), min(r.C1, off+pc)
		if lo < hi {
			sub := r
			sub.C0, sub.C1 = lo-off, hi-off
			refs = append(refs, resolve(g, in, sub)...)
		}
		off += pc
	}
	return refs
}

// collectOverlaps visits the IDs of producer atoms whose regions overlap
// ref within the sample, passing the overlap volume in bytes.
func (d *DAG) collectOverlaps(sample int, ref regionRef, visit func(id int, overlap int64)) {
	gr, ok := d.grids[sample][ref.layer]
	if !ok {
		// Producer was itself elided (concat feeding concat): resolve
		// another level down. This cannot recurse unboundedly because
		// resolve() already flattened concat chains; reaching here means
		// a bug in construction order.
		panic(fmt.Sprintf("atom: no grid for layer %d sample %d", ref.layer, sample))
	}
	r := ref.region
	p := gr.part
	ih0, ih1 := r.H0/p.Hp, (r.H1-1)/p.Hp
	iw0, iw1 := r.W0/p.Wp, (r.W1-1)/p.Wp
	ic0, ic1 := r.C0/p.Cop, (r.C1-1)/p.Cop
	for ih := ih0; ih <= ih1 && ih < gr.nH; ih++ {
		for iw := iw0; iw <= iw1 && iw < gr.nW; iw++ {
			for ic := ic0; ic <= ic1 && ic < gr.nC; ic++ {
				id := gr.base + (ih*gr.nW+iw)*gr.nC + ic
				visit(id, overlapBytes(d.Atoms[id].Region, r))
			}
		}
	}
}

// overlapBytes returns the intersection volume of two regions.
func overlapBytes(a, b Region) int64 {
	h := int64(min(a.H1, b.H1) - max(a.H0, b.H0))
	w := int64(min(a.W1, b.W1) - max(a.W0, b.W0))
	c := int64(min(a.C1, b.C1) - max(a.C0, b.C0))
	if h <= 0 || w <= 0 || c <= 0 {
		return 0
	}
	return h * w * c
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
