package buffer

import (
	"testing"
	"testing/quick"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// TestCapacityInvariantProperty replays random configurations and checks
// the core safety property of Algorithm 3: no engine's resident bytes
// ever exceed its capacity, across every Round.
func TestCapacityInvariantProperty(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	res := anneal.SA(g, engine.Default(), engine.KCPartition, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, 2, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{Engines: 4, Mode: schedule.Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	f := func(capRaw uint16) bool {
		capacity := int64(capRaw)*64 + 512 // 512 B .. ~4.2 MB
		m, err := New(d, s, 4, capacity)
		if err != nil {
			return false
		}
		for rt := range s.Rounds {
			p := make(PlacementMap)
			for i, id := range s.Rounds[rt].Atoms {
				p[id] = i
			}
			if _, err := m.ExecuteRound(rt, p); err != nil {
				return false
			}
			for e := 0; e < 4; e++ {
				if m.Used(e) > capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestConservationProperty: for any capacity, the bytes a consumer reads
// (on-chip + DRAM) must cover every dependency edge exactly once — data
// is never silently dropped or double-counted.
func TestConservationProperty(t *testing.T) {
	g := models.MustBuild("tinybranch")
	res := anneal.SA(g, engine.Default(), engine.KCPartition, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, 2, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{Engines: 4, Mode: schedule.Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	var wantInput int64
	for _, a := range d.Atoms {
		for _, b := range a.DepBytes {
			wantInput += b
		}
	}
	f := func(capRaw uint16) bool {
		capacity := int64(capRaw)*128 + 1024
		m, err := New(d, s, 4, capacity)
		if err != nil {
			return false
		}
		var total int64
		for rt := range s.Rounds {
			p := make(PlacementMap)
			for i, id := range s.Rounds[rt].Atoms {
				p[id] = i
			}
			io, err := m.ExecuteRound(rt, p)
			if err != nil {
				return false
			}
			total += io.InputBytesTotal
			if io.InputBytesOnChip > io.InputBytesTotal {
				return false
			}
		}
		return total == wantInput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWriteOnceProperty: an atom's output is written back to DRAM at most
// once regardless of how many times eviction pressure hits it.
func TestWriteOnceProperty(t *testing.T) {
	g := models.MustBuild("tinyconv")
	res := anneal.SA(g, engine.Default(), engine.KCPartition, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, 3, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{Engines: 2, Mode: schedule.Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny buffer maximizes eviction churn.
	m, err := New(d, s, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var written int64
	for rt := range s.Rounds {
		p := make(PlacementMap)
		for i, id := range s.Rounds[rt].Atoms {
			p[id] = i
		}
		io, err := m.ExecuteRound(rt, p)
		if err != nil {
			t.Fatal(err)
		}
		for e := range io.DRAMWriteBytes {
			written += io.DRAMWriteBytes[e]
		}
	}
	// Upper bound: every atom written exactly once.
	var allOut int64
	for _, a := range d.Atoms {
		allOut += a.OutputBytes()
	}
	if written > allOut {
		t.Errorf("wrote %d bytes > one copy of all outputs (%d)", written, allOut)
	}
}
