// Package buffer implements the paper's distributed on-chip buffering
// strategy (Sec. IV-C, Algorithm 3). Each engine's global buffer holds
// produced atom outputs (ofmaps) and weight slices. When storing a new
// tensor overflows the buffer, the resident entry with the largest
// *invalid occupation* — (earliest reuse Round − current Round) × tensor
// size — is written back to external memory; entries with no remaining
// consumer are released without write-back.
//
// Because DNN inference is static, the manager runs at compile time,
// replaying the schedule Round by Round and emitting the exact DRAM/NoC/
// SRAM traffic of each Round for the simulator and the energy model.
package buffer

import (
	"fmt"
	"slices"
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// entryKind distinguishes buffered tensors.
type entryKind int

const (
	kindOutput entryKind = iota // an atom's produced ofmap tile
	kindWeight                  // a layer's weight slice for one co-range
)

// entry is one resident tensor in an engine's buffer.
type entry struct {
	kind  entryKind
	atom  int  // for kindOutput
	wkey  wkey // for kindWeight
	bytes int64
}

// wkey identifies a weight slice: a layer and output-channel range
// (weights are shared across samples and spatial tiles).
type wkey struct {
	layer  int
	c0, c1 int
}

// wkeyLess orders weight keys by (layer, c0, c1) — the deterministic
// tie-break used when ranking eviction candidates.
func wkeyLess(a, b wkey) bool {
	if a.layer != b.layer {
		return a.layer < b.layer
	}
	if a.c0 != b.c0 {
		return a.c0 < b.c0
	}
	return a.c1 < b.c1
}

// tag packs the key into the non-zero multicast tag of a Flow. Weight
// tags live in a namespace disjoint from ifmap (atom-ID) tags.
func (k wkey) tag() int64 {
	return 1<<60 | int64(k.layer)<<40 | int64(k.c0)<<20 | int64(k.c1)
}

// Flow is one inter-engine tensor movement within a Round. Flows sharing
// a non-zero Tag and the same Src carry the same tensor (a weight slice
// broadcast): the NoC delivers them as one multicast tree, serializing the
// bytes once per tree link instead of once per destination.
type Flow struct {
	Src, Dst int
	Bytes    int64
	Tag      int64
}

// GroupKey returns the multicast-group key of the flow within its (Src)
// namespace: tagged flows share their Tag (one tree per tensor), while
// unicast flows get a unique negative key per destination so each forms
// its own group. The NoC simulator sorts flows by (Src, |key|, key, Dst)
// and treats equal (Src, key) runs as one multicast tree.
func (f Flow) GroupKey() int64 {
	if f.Tag != 0 {
		return f.Tag
	}
	return -int64(f.Dst) - 1
}

// Placement resolves an atom to the engine that runs it this Round, or
// -1 when the atom is not placed. *mapping.Result satisfies it; tests and
// baselines can use a PlacementMap.
type Placement interface {
	Engine(atomID int) int
}

// PlacementMap adapts a plain atom→engine map to Placement.
type PlacementMap map[int]int

// Engine implements Placement; absent atoms report -1.
func (p PlacementMap) Engine(id int) int {
	e, ok := p[id]
	if !ok {
		return -1
	}
	return e
}

// RoundIO is the data movement of one Round, per engine where relevant.
type RoundIO struct {
	DRAMReadBytes  []int64 // per engine: weights + off-chip input fetches
	DRAMWriteBytes []int64 // per engine: evictions + unbufferable outputs
	SRAMReadBytes  []int64
	SRAMWriteBytes []int64
	Flows          []Flow // on-chip transfers between engines

	// Reuse accounting for Table II.
	InputBytesTotal  int64 // all input tensor bytes consumed this Round
	InputBytesOnChip int64 // the subset served from distributed buffers
}

// reset prepares io for a new Round of `engines` engines, reusing its
// per-engine slices and Flows capacity.
func (io *RoundIO) reset(engines int) {
	for _, s := range []*[]int64{
		&io.DRAMReadBytes, &io.DRAMWriteBytes, &io.SRAMReadBytes, &io.SRAMWriteBytes,
	} {
		if cap(*s) >= engines {
			*s = (*s)[:engines]
			for i := range *s {
				(*s)[i] = 0
			}
		} else {
			*s = make([]int64, engines)
		}
	}
	io.Flows = io.Flows[:0]
	io.InputBytesTotal, io.InputBytesOnChip = 0, 0
}

// Manager replays a schedule against the distributed buffers.
type Manager struct {
	dag      *atom.DAG
	sched    *schedule.Schedule
	engines  int
	capacity int64

	resident  []int            // atom ID -> engine holding its output, -1 if off-chip/absent
	written   []bool           // atom ID -> a copy exists in DRAM
	buffers   []map[int]*entry // per engine: atomID -> output entry
	wbuffers  []map[wkey]*entry
	wholders  map[wkey]map[int]bool // weight slice -> engines caching it

	// HasWeights memo: holder set of atom waID's weight slice (aliases a
	// wholders value, so it is dropped whenever replay mutates state).
	waID      int
	waNone    bool
	waHolders map[int]bool
	used      []int64
	round     int
	consRound [][]int32        // atom ID -> sorted consumer round list
	wRounds   map[wkey][]int32 // weight key -> sorted rounds where used

	evictions int64
	highWater int64 // largest bytes any engine's buffer ever held

	streamedBy map[wkey]int // ExecuteRound scratch, cleared per Round
}

// New builds a Manager for the DAG and schedule on `engines` buffers of
// capacityBytes each.
func New(d *atom.DAG, s *schedule.Schedule, engines int, capacityBytes int64) (*Manager, error) {
	m := &Manager{}
	if err := m.Reset(d, s, engines, capacityBytes); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset re-targets a Manager at a (possibly different) DAG and schedule,
// reusing its allocations: the resident/written arrays, the per-engine
// buffer maps and the consumer-round spine survive across runs, which is
// what lets the simulator pool Managers between sim.Run calls. A freshly
// Reset Manager replays identically to a freshly New'd one.
func (m *Manager) Reset(d *atom.DAG, s *schedule.Schedule, engines int, capacityBytes int64) error {
	if engines <= 0 || capacityBytes <= 0 {
		return fmt.Errorf("buffer: engines=%d capacity=%d", engines, capacityBytes)
	}
	m.dag, m.sched = d, s
	m.engines, m.capacity = engines, capacityBytes
	m.waID, m.waNone, m.waHolders = -1, false, nil
	n := d.NumAtoms()
	if cap(m.resident) >= n {
		m.resident = m.resident[:n]
		m.written = m.written[:n]
	} else {
		m.resident = make([]int, n)
		m.written = make([]bool, n)
	}
	for i := range m.resident {
		m.resident[i] = -1
		m.written[i] = false
	}
	if len(m.buffers) != engines {
		m.buffers = make([]map[int]*entry, engines)
		m.wbuffers = make([]map[wkey]*entry, engines)
		m.used = make([]int64, engines)
		for e := 0; e < engines; e++ {
			m.buffers[e] = make(map[int]*entry)
			m.wbuffers[e] = make(map[wkey]*entry)
		}
	} else {
		for e := 0; e < engines; e++ {
			clear(m.buffers[e])
			clear(m.wbuffers[e])
			m.used[e] = 0
		}
	}
	if m.wholders == nil {
		m.wholders = make(map[wkey]map[int]bool)
	} else {
		clear(m.wholders)
	}
	m.round = 0
	m.evictions, m.highWater = 0, 0
	// Consumer-round lists (for Algorithm 3's t_next search) and weight
	// usage rounds.
	if cap(m.consRound) >= n {
		m.consRound = m.consRound[:n]
		for i := range m.consRound {
			m.consRound[i] = m.consRound[i][:0]
		}
	} else {
		m.consRound = make([][]int32, n)
	}
	if m.wRounds == nil {
		m.wRounds = make(map[wkey][]int32)
	} else {
		clear(m.wRounds)
	}
	for _, a := range d.Atoms {
		r := s.AtomRound[a.ID]
		if r < 0 {
			continue // virtual input atom
		}
		for _, dep := range a.Deps {
			m.consRound[dep] = append(m.consRound[dep], int32(r))
		}
		if wk, ok := weightKeyOf(d, a); ok {
			m.wRounds[wk] = append(m.wRounds[wk], int32(r))
		}
	}
	for i := range m.consRound {
		slices.Sort(m.consRound[i])
	}
	for k := range m.wRounds {
		slices.Sort(m.wRounds[k])
	}
	return nil
}

// weightKeyOf returns the weight slice an atom needs, if any.
func weightKeyOf(d *atom.DAG, a *atom.Atom) (wkey, bool) {
	switch a.Task.Kind {
	case graph.OpConv, graph.OpFC, graph.OpDepthwiseConv:
		return wkey{layer: a.Layer, c0: a.Region.C0, c1: a.Region.C1}, true
	}
	return wkey{}, false
}

// Locate reports the engine currently holding atom id's output (-1 when
// off-chip). It implements mapping.Locator.
func (m *Manager) Locate(id int) int { return m.resident[id] }

// HasWeights reports whether engine e currently caches the weight slice
// atom id requires. It implements mapping.WeightLocator. Placement
// queries atom-major (every candidate engine for one atom, then the
// next atom), so the holder set of the last atom's weight key is
// memoized: one wholders lookup answers the whole row instead of one
// struct-keyed map probe per engine. The memo is invalidated whenever
// buffer state can change (ExecuteRoundInto, Reset).
func (m *Manager) HasWeights(e, id int) bool {
	if m.waID != id {
		m.waID = id
		wk, ok := weightKeyOf(m.dag, m.dag.Atoms[id])
		m.waNone = !ok
		m.waHolders = nil
		if ok {
			m.waHolders = m.wholders[wk]
		}
	}
	if m.waNone {
		return true // no weights needed: placement is free to ignore
	}
	return m.waHolders[e]
}

// Evictions returns the cumulative number of overflow write-backs.
func (m *Manager) Evictions() int64 { return m.evictions }

// HighWater returns the largest byte count any engine's buffer held at
// any point of the replay — how close the schedule came to capacity.
func (m *Manager) HighWater() int64 { return m.highWater }

// Capacity returns the per-engine buffer capacity in bytes.
func (m *Manager) Capacity() int64 { return m.capacity }

// ExecuteRound replays Round t with the given atom placement and returns
// its IO. Rounds must be executed in order starting from 0.
func (m *Manager) ExecuteRound(t int, placement Placement) (RoundIO, error) {
	var io RoundIO
	err := m.ExecuteRoundInto(t, placement, &io)
	return io, err
}

// ExecuteRoundInto is ExecuteRound writing into a caller-owned RoundIO,
// reusing its per-engine slices and Flows capacity — the pipelined
// simulator cycles a small ring of RoundIOs through it so the replay
// stops allocating after the first few Rounds.
func (m *Manager) ExecuteRoundInto(t int, placement Placement, io *RoundIO) error {
	if t != m.round {
		return fmt.Errorf("buffer: ExecuteRound(%d) out of order, want %d", t, m.round)
	}
	m.round++
	m.waID = -1 // replay mutates holder sets; drop the HasWeights memo
	io.reset(m.engines)
	roundAtoms := m.sched.Rounds[t].Atoms
	// Streamed (uncacheable) weight slices fetched from DRAM are still
	// broadcast on-chip within the Round: the first engine reads HBM and
	// forwards to later engines needing the same slice.
	if m.streamedBy == nil {
		m.streamedBy = make(map[wkey]int)
	} else {
		clear(m.streamedBy)
	}
	streamedBy := m.streamedBy
	// Phase 1: fetch inputs and weights for every atom in the Round.
	for _, id := range roundAtoms {
		e := placement.Engine(id)
		if e < 0 || e >= m.engines {
			return fmt.Errorf("buffer: atom %d has no valid placement", id)
		}
		a := m.dag.Atoms[id]
		for di, dep := range a.Deps {
			bytes := a.DepBytes[di]
			io.InputBytesTotal += bytes
			src := m.resident[dep]
			switch {
			case src == e:
				io.SRAMReadBytes[e] += bytes
				io.InputBytesOnChip += bytes
			case src >= 0:
				// The producing atom's tile often feeds several engines
				// in one Round (channel-partitioned consumers): tagging
				// by producer lets the NoC multicast it.
				io.Flows = append(io.Flows, Flow{Src: src, Dst: e, Bytes: bytes, Tag: int64(dep) + 1})
				io.SRAMReadBytes[src] += bytes
				io.SRAMWriteBytes[e] += bytes
				io.InputBytesOnChip += bytes
			default:
				io.DRAMReadBytes[e] += bytes
			}
		}
		if wk, ok := weightKeyOf(m.dag, a); ok {
			bytes := a.Task.WeightBytes()
			switch {
			case m.wbuffers[e][wk] != nil:
				// Local copy.
				io.SRAMReadBytes[e] += bytes
			case len(m.wholders[wk]) > 0:
				// Another engine caches the slice: forward over the NoC
				// instead of re-reading HBM (7 pJ/bit vs 0.61 pJ/bit/hop).
				src := nearestHolder(m.wholders[wk], e)
				io.Flows = append(io.Flows, Flow{Src: src, Dst: e, Bytes: bytes, Tag: wk.tag()})
				io.SRAMReadBytes[src] += bytes
				io.SRAMWriteBytes[e] += bytes
				m.store(e, &entry{kind: kindWeight, wkey: wk, bytes: bytes}, t, io)
			case streamedBy[wk] != 0:
				// Broadcast of a streamed slice within this Round.
				src := streamedBy[wk] - 1
				io.Flows = append(io.Flows, Flow{Src: src, Dst: e, Bytes: bytes, Tag: wk.tag()})
				io.SRAMReadBytes[src] += bytes
				io.SRAMWriteBytes[e] += bytes
			default:
				io.DRAMReadBytes[e] += bytes
				streamedBy[wk] = e + 1
				m.store(e, &entry{kind: kindWeight, wkey: wk, bytes: bytes}, t, io)
			}
		}
	}
	// Phase 2: retire consumed inputs whose last consumer has now run.
	for _, id := range roundAtoms {
		for _, dep := range m.dag.Atoms[id].Deps {
			if e := m.resident[dep]; e >= 0 && m.lastUse(dep) <= t {
				m.release(e, dep)
			}
		}
	}
	// Phase 3: store produced outputs.
	for _, id := range roundAtoms {
		e := placement.Engine(id)
		a := m.dag.Atoms[id]
		out := a.OutputBytes()
		io.SRAMWriteBytes[e] += out
		if m.lastUse(id) < 0 {
			// Final outputs (no consumers) stream to DRAM.
			io.DRAMWriteBytes[e] += out
			m.written[id] = true
			continue
		}
		if out > m.capacity {
			// Cannot ever fit: spill directly.
			io.DRAMWriteBytes[e] += out
			m.written[id] = true
			continue
		}
		m.store(e, &entry{kind: kindOutput, atom: id, bytes: out}, t, io)
		m.resident[id] = e
	}
	return nil
}

// store inserts an entry into engine e's buffer, evicting per Algorithm 3
// until it fits. Entries that could never pay for the evictions they force
// are not cached: weight slices above half the buffer stream through
// (their per-pass window is tiny), and outputs above the full capacity
// spill directly — without this guard a single oversized tensor would
// write back an entire buffer of useful ofmaps and still not fit.
func (m *Manager) store(e int, ent *entry, t int, io *RoundIO) {
	if (ent.kind == kindWeight && ent.bytes > m.capacity*3/4) ||
		(ent.kind == kindOutput && ent.bytes > m.capacity) {
		if ent.kind == kindOutput {
			io.DRAMWriteBytes[e] += ent.bytes
			m.written[ent.atom] = true
		}
		return
	}
	for m.used[e]+ent.bytes > m.capacity {
		if !m.evictOne(e, t, io) {
			// Nothing evictable (pathological tiny buffer): spill the
			// new entry itself.
			if ent.kind == kindOutput {
				io.DRAMWriteBytes[e] += ent.bytes
				m.written[ent.atom] = true
			}
			return
		}
	}
	m.used[e] += ent.bytes
	if m.used[e] > m.highWater {
		m.highWater = m.used[e]
	}
	if ent.kind == kindOutput {
		m.buffers[e][ent.atom] = ent
	} else {
		m.wbuffers[e][ent.wkey] = ent
		h := m.wholders[ent.wkey]
		if h == nil {
			h = make(map[int]bool)
			m.wholders[ent.wkey] = h
		}
		h[e] = true
	}
}

// nearestHolder picks the holder with the smallest index distance to e —
// a mesh-free proximity proxy (engine indices are row-major, so close
// indices are close on the mesh).
func nearestHolder(holders map[int]bool, e int) int {
	best, bestD := -1, 1<<30
	for h := range holders {
		d := h - e
		if d < 0 {
			d = -d
		}
		if d < bestD || (d == bestD && h < best) {
			best, bestD = h, d
		}
	}
	return best
}

// evictOne applies Algorithm 3 to engine e: release any entry with no
// future use; otherwise write back the entry with the largest invalid
// occupation (t_next − t) × size. Returns false if the buffer is empty.
//
// Candidates are ranked by an explicit total order — dead entries by
// smallest key, live victims by (occupation, kind, key) — never by map
// iteration order. Eviction choices shape DRAM traffic and flows, so
// letting Go's randomized map walk break ties would make whole Reports
// vary run to run.
func (m *Manager) evictOne(e, t int, io *RoundIO) bool {
	var victim *entry
	var victimOcc int64 = -1
	// Pass 1: free entries with no future use (paper line 8-12). The
	// current Round t still counts as a future use: eviction can run
	// mid-Round, before every fetch of Round t has been served, so
	// entries consumed this Round get occupation 0 (kept if possible)
	// rather than being dropped as dead.
	deadAtom := -1
	for id, ent := range m.buffers[e] {
		tn := m.nextUse(id, t-1)
		if tn < 0 {
			if deadAtom < 0 || id < deadAtom {
				deadAtom = id
			}
			continue
		}
		occ := int64(tn-t) * ent.bytes
		if occ > victimOcc || (occ == victimOcc && ent.atom < victim.atom) {
			victimOcc, victim = occ, ent
		}
	}
	if deadAtom >= 0 {
		m.release(e, deadAtom)
		return true
	}
	var deadW wkey
	haveDeadW := false
	for wk, ent := range m.wbuffers[e] {
		tn := m.nextWeightUse(wk, t-1)
		if tn < 0 {
			if !haveDeadW || wkeyLess(wk, deadW) {
				deadW, haveDeadW = wk, true
			}
			continue
		}
		// Weights are immutable in DRAM: evicting one costs a refetch but
		// no write-back, and the global reuse-round estimate is
		// optimistic (the next user may be another engine entirely), so
		// weight entries are biased toward eviction over dirty ofmaps.
		// On an occupation tie a dirty ofmap victim is kept over a weight
		// victim for the same reason.
		occ := 2 * int64(tn-t) * ent.bytes
		if occ > victimOcc ||
			(occ == victimOcc && victim.kind == kindWeight && wkeyLess(wk, victim.wkey)) {
			victimOcc, victim = occ, ent
		}
	}
	if haveDeadW {
		m.releaseWeight(e, deadW)
		return true
	}
	if victim == nil {
		return false
	}
	// Pass 2: write back the worst occupier.
	if victim.kind == kindOutput {
		if !m.written[victim.atom] {
			io.DRAMWriteBytes[e] += victim.bytes
			m.written[victim.atom] = true
		}
		m.release(e, victim.atom)
	} else {
		// Weights are immutable in DRAM: dropping is free.
		m.releaseWeight(e, victim.wkey)
	}
	m.evictions++
	return true
}

func (m *Manager) release(e, id int) {
	if ent, ok := m.buffers[e][id]; ok {
		m.used[e] -= ent.bytes
		delete(m.buffers[e], id)
		m.resident[id] = -1
	}
}

func (m *Manager) releaseWeight(e int, wk wkey) {
	if ent, ok := m.wbuffers[e][wk]; ok {
		m.used[e] -= ent.bytes
		delete(m.wbuffers[e], wk)
		if h := m.wholders[wk]; h != nil {
			delete(h, e)
		}
	}
}

// nextUse returns the earliest Round strictly after t that consumes atom
// id, or -1 if none remains.
func (m *Manager) nextUse(id, t int) int {
	lst := m.consRound[id]
	i := sort.Search(len(lst), func(i int) bool { return int(lst[i]) > t })
	if i == len(lst) {
		return -1
	}
	return int(lst[i])
}

// lastUse returns the final consuming Round of atom id, or -1 if none.
func (m *Manager) lastUse(id int) int {
	lst := m.consRound[id]
	if len(lst) == 0 {
		return -1
	}
	return int(lst[len(lst)-1])
}

// nextWeightUse returns the earliest Round strictly after t using the
// weight slice, or -1.
func (m *Manager) nextWeightUse(wk wkey, t int) int {
	lst := m.wRounds[wk]
	i := sort.Search(len(lst), func(i int) bool { return int(lst[i]) > t })
	if i == len(lst) {
		return -1
	}
	return int(lst[i])
}

// Used returns the bytes currently resident in engine e's buffer.
func (m *Manager) Used(e int) int64 { return m.used[e] }
