package buffer

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// pipeline builds DAG + schedule for a model and returns them.
func pipeline(t *testing.T, model string, batch, engines int) (*atom.DAG, *schedule.Schedule) {
	t.Helper()
	g := models.MustBuild(model)
	res := anneal.SA(g, engine.Default(), engine.KCPartition, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, batch, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: engines, Mode: schedule.Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

// naivePlacement maps round atoms to engines 0..n-1 in order.
func naivePlacement(s *schedule.Schedule, t int) PlacementMap {
	p := make(PlacementMap)
	for i, id := range s.Rounds[t].Atoms {
		p[id] = i
	}
	return p
}

// replay executes all rounds and accumulates IO.
func replay(t *testing.T, d *atom.DAG, s *schedule.Schedule, engines int, capacity int64) (RoundIO, *Manager) {
	t.Helper()
	m, err := New(d, s, engines, capacity)
	if err != nil {
		t.Fatal(err)
	}
	var total RoundIO
	total.DRAMReadBytes = make([]int64, engines)
	total.DRAMWriteBytes = make([]int64, engines)
	total.SRAMReadBytes = make([]int64, engines)
	total.SRAMWriteBytes = make([]int64, engines)
	for rt := range s.Rounds {
		io, err := m.ExecuteRound(rt, naivePlacement(s, rt))
		if err != nil {
			t.Fatalf("round %d: %v", rt, err)
		}
		for e := 0; e < engines; e++ {
			total.DRAMReadBytes[e] += io.DRAMReadBytes[e]
			total.DRAMWriteBytes[e] += io.DRAMWriteBytes[e]
			total.SRAMReadBytes[e] += io.SRAMReadBytes[e]
			total.SRAMWriteBytes[e] += io.SRAMWriteBytes[e]
		}
		total.Flows = append(total.Flows, io.Flows...)
		total.InputBytesTotal += io.InputBytesTotal
		total.InputBytesOnChip += io.InputBytesOnChip
	}
	return total, m
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestLargeBufferMostlyOnChip(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	io, m := replay(t, d, s, 4, 16<<20) // 16 MB: everything fits
	if m.Evictions() != 0 {
		t.Errorf("evictions = %d with a 16 MB buffer", m.Evictions())
	}
	// All inter-layer inputs served on-chip except fetches of the raw
	// network input (produced by the virtual input atom in DRAM).
	var inputLayerBytes int64
	for _, a := range d.Atoms {
		for di, dep := range a.Deps {
			if d.Atoms[dep].Task.Kind == graph.OpInput {
				inputLayerBytes += a.DepBytes[di]
			}
		}
	}
	if got := io.InputBytesTotal - io.InputBytesOnChip; got != inputLayerBytes {
		t.Errorf("off-chip input bytes = %d, want %d (network input only)", got, inputLayerBytes)
	}
}

func TestTinyBufferEvicts(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	ioBig, _ := replay(t, d, s, 4, 16<<20)
	ioTiny, mTiny := replay(t, d, s, 4, 4<<10) // 4 KB
	if mTiny.Evictions() == 0 {
		t.Error("no evictions with a 4 KB buffer")
	}
	if sum(ioTiny.DRAMReadBytes) <= sum(ioBig.DRAMReadBytes) {
		t.Errorf("tiny-buffer DRAM reads %d should exceed big-buffer %d",
			sum(ioTiny.DRAMReadBytes), sum(ioBig.DRAMReadBytes))
	}
	if ioTiny.InputBytesOnChip > ioBig.InputBytesOnChip {
		t.Error("tiny buffer should not increase on-chip reuse")
	}
}

func TestHighWaterTracksOccupancy(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	_, m := replay(t, d, s, 4, 16<<20)
	hw := m.HighWater()
	if hw <= 0 {
		t.Fatal("no occupancy recorded")
	}
	if hw > m.Capacity() {
		t.Fatalf("high-water %d exceeds capacity %d", hw, m.Capacity())
	}
	// A tighter buffer can never raise the high-water mark.
	_, mTiny := replay(t, d, s, 4, 4<<10)
	if mTiny.HighWater() > 4<<10 {
		t.Errorf("tiny-buffer high-water %d exceeds its capacity", mTiny.HighWater())
	}
}

func TestWeightCaching(t *testing.T) {
	// Same-layer atoms scheduled over consecutive rounds on one engine
	// with identical co-ranges must fetch weights once.
	g := graph.New("wc")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 8, Wo: 8, Co: 8})
	c := g.AddLayer("c", graph.OpConv, graph.ConvShape(8, 8, 8, 8, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := atom.Spec{c: {Hp: 2, Wp: 8, Cop: 8}} // 4 atoms, same weights
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Build(d, schedule.Options{Engines: 1, Mode: schedule.Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(d, s, 1, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	var weightReads int64
	for rt := range s.Rounds {
		io, err := m.ExecuteRound(rt, naivePlacement(s, rt))
		if err != nil {
			t.Fatal(err)
		}
		weightReads += io.DRAMReadBytes[0]
	}
	// Weight slice = 8*8*3*3 = 576 bytes, fetched once; plus input
	// fetches from DRAM.
	wantWeights := int64(8 * 8 * 3 * 3)
	var inputBytes int64
	for _, a := range d.Atoms {
		for di, dep := range a.Deps {
			if d.Atoms[dep].Task.Kind == graph.OpInput {
				inputBytes += a.DepBytes[di]
			}
		}
	}
	if weightReads != wantWeights+inputBytes {
		t.Errorf("DRAM reads = %d, want %d (weights once) + %d (inputs)",
			weightReads, wantWeights, inputBytes)
	}
}

func TestNoWritebackForDeadTensors(t *testing.T) {
	// In a pure cascade with ample buffer, intermediate outputs are
	// consumed next round and then released: DRAM writes must be only the
	// final layer's output.
	d, s := pipeline(t, "tinyconv", 1, 4)
	io, _ := replay(t, d, s, 4, 16<<20)
	var finalBytes int64
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpInput {
			continue
		}
		if len(d.Consumers(a.ID)) == 0 {
			finalBytes += a.OutputBytes()
		}
	}
	if got := sum(io.DRAMWriteBytes); got != finalBytes {
		t.Errorf("DRAM writes = %d, want %d (final outputs only)", got, finalBytes)
	}
}

func TestReuseRatioOrdering(t *testing.T) {
	// Bigger buffers must never reduce the on-chip reuse ratio.
	d, s := pipeline(t, "tinyresnet", 2, 4)
	sizes := []int64{2 << 10, 16 << 10, 128 << 10, 1 << 20}
	prev := -1.0
	for _, sz := range sizes {
		io, _ := replay(t, d, s, 4, sz)
		ratio := float64(io.InputBytesOnChip) / float64(io.InputBytesTotal)
		if ratio < prev-0.02 { // small tolerance for eviction-order noise
			t.Errorf("reuse ratio dropped from %.3f to %.3f at %d bytes", prev, ratio, sz)
		}
		prev = ratio
	}
}

func TestOutOfOrderRoundRejected(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	m, err := New(d, s, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteRound(1, naivePlacement(s, 1)); err == nil {
		t.Error("out-of-order round accepted")
	}
}

func TestInvalidPlacementRejected(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	m, err := New(d, s, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteRound(0, PlacementMap{}); err == nil {
		t.Error("missing placement accepted")
	}
}

func TestNewValidation(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	if _, err := New(d, s, 0, 1<<20); err == nil {
		t.Error("0 engines accepted")
	}
	if _, err := New(d, s, 4, 0); err == nil {
		t.Error("0 capacity accepted")
	}
}

func TestLocateTracksResidence(t *testing.T) {
	d, s := pipeline(t, "tinyconv", 1, 4)
	m, err := New(d, s, 4, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	p := naivePlacement(s, 0)
	if _, err := m.ExecuteRound(0, p); err != nil {
		t.Fatal(err)
	}
	for id, e := range p {
		// Atoms with future consumers must be resident where placed.
		if len(d.Consumers(id)) > 0 && m.Locate(id) != e {
			t.Errorf("atom %d resident at %d, want %d", id, m.Locate(id), e)
		}
	}
}
