package energy

import (
	"math"
	"testing"
)

func TestBreakdownAccumulation(t *testing.T) {
	m := Default()
	var b Breakdown
	b.AddMACs(m, 1000)
	b.AddSRAM(m, 100, 50)
	b.AddNoC(m, 200)
	b.AddDRAM(m, 10)
	b.AddStatic(m, 500)
	wantMAC := 0.3 * 1000
	wantSRAM := 2.74*100 + 3.29*50
	wantNoC := 4.88 * 200
	wantDRAM := 56.0 * 10
	wantStatic := 10.0 * 500
	if !close(b.MAC, wantMAC) || !close(b.SRAM, wantSRAM) || !close(b.NoC, wantNoC) ||
		!close(b.DRAM, wantDRAM) || !close(b.Static, wantStatic) {
		t.Errorf("breakdown = %+v", b)
	}
	if !close(b.TotalPJ(), wantMAC+wantSRAM+wantNoC+wantDRAM+wantStatic) {
		t.Errorf("TotalPJ = %v", b.TotalPJ())
	}
	if !close(b.TotalMJ(), b.TotalPJ()/1e9) {
		t.Errorf("TotalMJ = %v", b.TotalMJ())
	}
}

func TestAccumulate(t *testing.T) {
	m := Default()
	var a, b Breakdown
	a.AddMACs(m, 100)
	b.AddDRAM(m, 100)
	a.Accumulate(b)
	if !close(a.TotalPJ(), 0.3*100+56*100) {
		t.Errorf("after Accumulate: %+v", a)
	}
}

// The paper's core energy argument: one byte from HBM costs far more than
// one byte over several NoC hops, which costs more than a local SRAM read.
// The model must preserve this hierarchy or the buffering strategy has no
// reason to exist.
func TestEnergyHierarchy(t *testing.T) {
	m := Default()
	sramByte := m.SRAMReadpJB
	noc3Hops := m.NoCpJBHop * 3
	dramByte := m.DRAMpJB
	if !(sramByte < noc3Hops && noc3Hops < dramByte) {
		t.Errorf("energy hierarchy violated: SRAM %.2f, NoC(3 hops) %.2f, DRAM %.2f",
			sramByte, noc3Hops, dramByte)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-6 }
