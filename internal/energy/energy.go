// Package energy accounts for the accelerator's energy consumption using
// the constants the paper states (Sec. V-A): NoC 0.61 pJ/bit/hop (Tangram),
// HBM 7 pJ/bit (Cacti-3dd), and TSMC-28nm SRAM read power of 10.96 mW for
// a 128 KB macro at 0.9 V. MAC energy uses a typical 28nm INT8 figure.
package energy

// Model holds per-event energy costs in picojoules.
type Model struct {
	MACpJ        float64 // per INT8 multiply-accumulate
	SRAMReadpJB  float64 // per byte read from an engine's global buffer
	SRAMWritepJB float64 // per byte written to an engine's global buffer
	NoCpJBHop    float64 // per byte per mesh hop
	DRAMpJB      float64 // per byte to/from HBM
	StaticpJCyc  float64 // per engine per cycle (leakage + clock tree)
}

// Default returns the paper's energy model.
// SRAM: 10.96 mW at 500 MHz moving 8 B/cycle = 21.92 pJ/cycle = 2.74 pJ/B
// read; writes cost ~1.2x. NoC: 0.61 pJ/bit = 4.88 pJ/B per hop. HBM:
// 7 pJ/bit = 56 pJ/B.
func Default() Model {
	return Model{
		MACpJ:        0.3,
		SRAMReadpJB:  2.74,
		SRAMWritepJB: 3.29,
		NoCpJBHop:    4.88,
		DRAMpJB:      56,
		StaticpJCyc:  10,
	}
}

// Breakdown accumulates energy by component, in picojoules.
type Breakdown struct {
	MAC, SRAM, NoC, DRAM, Static float64
}

// AddMACs charges n MAC operations.
func (b *Breakdown) AddMACs(m Model, n int64) { b.MAC += m.MACpJ * float64(n) }

// AddSRAM charges buffer traffic in bytes.
func (b *Breakdown) AddSRAM(m Model, readBytes, writeBytes int64) {
	b.SRAM += m.SRAMReadpJB*float64(readBytes) + m.SRAMWritepJB*float64(writeBytes)
}

// AddNoC charges byte-hops of mesh traffic.
func (b *Breakdown) AddNoC(m Model, byteHops int64) { b.NoC += m.NoCpJBHop * float64(byteHops) }

// AddDRAM charges HBM traffic in bytes.
func (b *Breakdown) AddDRAM(m Model, bytes int64) { b.DRAM += m.DRAMpJB * float64(bytes) }

// AddStatic charges engine-cycles of static power.
func (b *Breakdown) AddStatic(m Model, engineCycles int64) {
	b.Static += m.StaticpJCyc * float64(engineCycles)
}

// TotalPJ returns total energy in picojoules.
func (b *Breakdown) TotalPJ() float64 { return b.MAC + b.SRAM + b.NoC + b.DRAM + b.Static }

// TotalMJ returns total energy in millijoules.
func (b *Breakdown) TotalMJ() float64 { return b.TotalPJ() / 1e9 }

// Accumulate adds another breakdown into b.
func (b *Breakdown) Accumulate(o Breakdown) {
	b.MAC += o.MAC
	b.SRAM += o.SRAM
	b.NoC += o.NoC
	b.DRAM += o.DRAM
	b.Static += o.Static
}
