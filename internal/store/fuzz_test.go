package store

import (
	"bytes"
	"testing"
)

// FuzzStoreRecord holds DecodeRecord to its contract on arbitrary
// bytes: never panic, reject anything whose checksum does not match,
// and round-trip what it accepts.
func FuzzStoreRecord(f *testing.F) {
	good, err := EncodeRecord(Record{
		Key: "ab12", GraphHash: "g1", Model: "tinyconv",
		Digest: "d", Body: []byte(`{"x":1}`), SavedUnix: 7,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])           // truncated record
	f.Add(good[:len(magic)+10])         // truncated checksum line
	f.Add([]byte("ADSTORE1\n"))         // magic only
	f.Add([]byte("NOTMAGIC\nxxxx"))     // bad magic
	bad := append([]byte(nil), good...) // bad SHA-256
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		re, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("re-encoding an accepted record: %v", err)
		}
		rr, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("round-tripping an accepted record: %v", err)
		}
		if rr.Key != r.Key || rr.GraphHash != r.GraphHash || !bytes.Equal(rr.Body, r.Body) {
			t.Fatalf("round trip mutated the record")
		}
	})
}
