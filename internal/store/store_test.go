package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
)

func rec(key, graph string, at int64) Record {
	return Record{
		Key:       key,
		GraphHash: graph,
		Model:     "tinyconv",
		Digest:    "d-" + key,
		Body:      []byte(`{"digest":"` + key + `"}`),
		Parts:     map[int]atom.Partition{1: {Hp: 2, Wp: 3, Cop: 4}},
		SavedUnix: at,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := rec("ab12", "g1", 100)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ab12")
	if !ok {
		t.Fatal("record missing after Put")
	}
	if !bytes.Equal(got.Body, r.Body) || got.Digest != r.Digest || got.GraphHash != r.GraphHash {
		t.Fatalf("round trip mutated the record: %+v", got)
	}
	if got.Parts[1] != r.Parts[1] {
		t.Fatalf("parts mutated: %+v", got.Parts)
	}
	if _, ok := s.Get("cd34"); ok {
		t.Fatal("hit on an absent key")
	}
}

func TestReopenServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := rec("ab12", "g1", 100)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d records, want 1", s2.Len())
	}
	got, ok := s2.Get("ab12")
	if !ok || !bytes.Equal(got.Body, r.Body) {
		t.Fatalf("reopened store does not serve identical bytes: ok=%v body=%q", ok, got.Body)
	}
}

func TestCorruptRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("ab12", "g1", 100)); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the stored body: checksum validation must reject it.
	path := filepath.Join(dir, "ab12.rec")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh Open skips it; a Get through the old index drops it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("corrupt record indexed")
	}
	if _, ok := s.Get("ab12"); ok {
		t.Fatal("corrupt record served")
	}
	if s.Len() != 0 {
		t.Fatal("corrupt record kept in the index after a failed Get")
	}
	// Torn temp files and stray content are ignored too.
	os.WriteFile(filepath.Join(dir, ".put-123"), []byte("torn"), 0o644)
	os.WriteFile(filepath.Join(dir, "zz.rec"), []byte("junk"), 0o644)
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 0 {
		t.Fatalf("stray files indexed: %d", s3.Len())
	}
}

func TestRecordKeyMustMatchFilename(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("ab12", "g1", 100)); err != nil {
		t.Fatal(err)
	}
	// A record copied under another name must not be served for that name.
	data, _ := os.ReadFile(filepath.Join(dir, "ab12.rec"))
	os.WriteFile(filepath.Join(dir, "cd34.rec"), data, 0o644)
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("cd34"); ok {
		t.Fatal("mismatched record served under the wrong key")
	}
}

func TestPutRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "ABCD", "xyz!", "no/slash"} {
		if err := s.Put(rec(key, "g1", 1)); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

func TestRelated(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	puts := []Record{
		rec("aa01", "g1", 100),
		rec("aa02", "g1", 300),
		rec("aa03", "g1", 300), // same age as aa02: smaller key wins
		rec("bb01", "g2", 900),
	}
	for _, r := range puts {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Related("g1", "zzzz")
	if !ok || got.Key != "aa02" {
		t.Fatalf("Related(g1) = %q, %v; want aa02", got.Key, ok)
	}
	// The requesting key itself is excluded.
	got, ok = s.Related("g1", "aa02")
	if !ok || got.Key != "aa03" {
		t.Fatalf("Related(g1, exclude aa02) = %q, %v; want aa03", got.Key, ok)
	}
	if _, ok := s.Related("g3", ""); ok {
		t.Fatal("donor invented for an unknown graph")
	}
	// Sole record for its graph, excluded: no donor.
	if _, ok := s.Related("g2", "bb01"); ok {
		t.Fatal("excluded key returned as its own donor")
	}
}

func TestPutReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("ab12", "g1", 100)); err != nil {
		t.Fatal(err)
	}
	r2 := rec("ab12", "g1", 200)
	r2.Body = []byte(`{"digest":"v2"}`)
	if err := s.Put(r2); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("ab12")
	if !ok || !bytes.Equal(got.Body, r2.Body) {
		t.Fatalf("replacement not served: %q", got.Body)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "ab12.rec" {
			t.Errorf("stray file %q in store dir", e.Name())
		}
	}
}
