// Package store is the serving layer's persistent solution store: a
// directory of digest-keyed solve records that survives restarts. It
// serves two purposes for internal/serve:
//
//   - Exact replay: a record keyed by the canonical cache key holds the
//     solve's response bytes, so a restarted coordinator answers a
//     repeated request with identical bytes without re-solving.
//   - Warm starts: a record also carries the solved partition per
//     layer, so a new request for the same graph under different
//     hardware can seed its search from the prior solution
//     (anneal.Options.WarmStart) instead of starting cold.
//
// Records are written atomically — encode to a temp file in the store
// directory, fsync, rename — so a crash mid-write leaves either the old
// record or none, never a torn one. Every record embeds a SHA-256 of
// its body; Open and Get skip (rather than serve) anything that fails
// validation, so a corrupt file degrades to a cache miss.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
)

// magic heads every record file; the version digit guards the envelope
// layout, while Record itself evolves by JSON field addition.
var magic = []byte("ADSTORE1\n")

// Record is one persisted solve.
type Record struct {
	// Key is the serving layer's canonical cache key (hex SHA-256 of
	// the normalized request) — the store's primary key.
	Key string `json:"key"`
	// GraphHash identifies the workload graph alone (canonical model
	// bytes hashed), shared by requests that differ only in hardware or
	// search knobs — the warm-start lookup key.
	GraphHash string `json:"graph_hash"`
	// Model is the human-readable workload name (diagnostics only).
	Model string `json:"model"`
	// Digest is the solution digest served in X-Adserve-Digest.
	Digest string `json:"digest"`
	// Body is the exact response body served for this key.
	Body []byte `json:"body"`
	// Parts is the solved partition per graph layer — what a related
	// request warm-starts from.
	Parts map[int]atom.Partition `json:"parts,omitempty"`
	// SavedUnix orders records for Related (most recent wins).
	SavedUnix int64 `json:"saved_unix"`
}

// EncodeRecord renders the on-disk envelope: magic, the body's SHA-256
// in hex on its own line, then the JSON record.
func EncodeRecord(r Record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(magic)+65+len(body))
	out = append(out, magic...)
	out = append(out, fmt.Sprintf("%x\n", sum)...)
	return append(out, body...), nil
}

// DecodeRecord parses and validates an envelope: magic, checksum line,
// checksum match, JSON shape, and a non-empty key. Never panics on
// arbitrary input — FuzzStoreRecord holds it to that.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	if !bytes.HasPrefix(data, magic) {
		return r, fmt.Errorf("store: bad magic")
	}
	rest := data[len(magic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl != 64 {
		return r, fmt.Errorf("store: malformed checksum line")
	}
	wantSum := string(rest[:64])
	body := rest[nl+1:]
	if fmt.Sprintf("%x", sha256.Sum256(body)) != wantSum {
		return r, fmt.Errorf("store: checksum mismatch")
	}
	if err := json.Unmarshal(body, &r); err != nil {
		return r, fmt.Errorf("store: decoding record: %w", err)
	}
	if !validKey(r.Key) {
		return r, fmt.Errorf("store: record key %q is not lowercase hex", r.Key)
	}
	return r, nil
}

// validKey keeps keys filesystem-safe: non-empty lowercase hex, as the
// serving layer's SHA-256 cache keys are.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// indexEntry is the in-memory view of one on-disk record — enough for
// Related without re-reading files.
type indexEntry struct {
	graphHash string
	savedUnix int64
}

// Store is a directory of records with an in-memory index. Safe for
// concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]indexEntry
}

// Open creates dir if needed and indexes every valid record in it.
// Files that fail validation (torn writes from a crash predating the
// atomic rename, manual corruption) are skipped, not fatal.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]indexEntry)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".rec") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		r, err := DecodeRecord(data)
		if err != nil || r.Key+".rec" != name {
			continue
		}
		s.index[r.Key] = indexEntry{graphHash: r.GraphHash, savedUnix: r.SavedUnix}
	}
	return s, nil
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Put persists r atomically, replacing any record under the same key.
func (s *Store) Put(r Record) error {
	if !validKey(r.Key) {
		return fmt.Errorf("store: record key %q is not lowercase hex", r.Key)
	}
	data, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, r.Key+".rec")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.index[r.Key] = indexEntry{graphHash: r.GraphHash, savedUnix: r.SavedUnix}
	s.mu.Unlock()
	return nil
}

// Get returns the record under key, if a valid one exists. A record
// that fails validation on read is dropped from the index and reported
// as a miss.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	_, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return Record{}, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, key+".rec"))
	if err != nil {
		s.drop(key)
		return Record{}, false
	}
	r, err := DecodeRecord(data)
	if err != nil || r.Key != key {
		s.drop(key)
		return Record{}, false
	}
	return r, true
}

func (s *Store) drop(key string) {
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
}

// Related returns the best warm-start donor for graphHash: the most
// recently saved record for the same graph under a different key (ties
// broken by smallest key, so the choice is deterministic for any scan
// order). The second return is false when no donor exists.
func (s *Store) Related(graphHash, excludeKey string) (Record, bool) {
	s.mu.Lock()
	best := ""
	var bestAt int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.index[k]
		if k == excludeKey || e.graphHash != graphHash {
			continue
		}
		if best == "" || e.savedUnix > bestAt {
			best, bestAt = k, e.savedUnix
		}
	}
	s.mu.Unlock()
	if best == "" {
		return Record{}, false
	}
	return s.Get(best)
}
