package schedule

import (
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// FromRounds builds a Schedule from an explicit Round list, validating that
// every non-virtual atom appears exactly once, Rounds respect the engine
// budget, and every dependency is scheduled strictly earlier. Baseline
// orchestration strategies (Layer-Sequential, Rammer-style rTask packing)
// use this to plug into the same buffer manager and simulator as atomic
// dataflow.
func FromRounds(d *atom.DAG, rounds [][]int, opt Options) (*Schedule, error) {
	if opt.Engines <= 0 {
		return nil, fmt.Errorf("schedule: Engines = %d", opt.Engines)
	}
	if err := opt.EngineCfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		AtomRound:     make([]int, d.NumAtoms()),
		ComputeCycles: make([]int64, d.NumAtoms()),
	}
	for i := range s.AtomRound {
		s.AtomRound[i] = -1
	}
	orc := cost.Or(opt.Oracle)
	for _, a := range d.Atoms {
		c := orc.Evaluate(opt.EngineCfg, opt.Dataflow, a.Task)
		s.ComputeCycles[a.ID] = c.Cycles
	}
	for t, atoms := range rounds {
		if len(atoms) == 0 {
			return nil, fmt.Errorf("schedule: round %d empty", t)
		}
		if len(atoms) > opt.Engines {
			return nil, fmt.Errorf("schedule: round %d has %d atoms > %d engines",
				t, len(atoms), opt.Engines)
		}
		for _, id := range atoms {
			if id < 0 || id >= d.NumAtoms() {
				return nil, fmt.Errorf("schedule: round %d: unknown atom %d", t, id)
			}
			if d.Atoms[id].Task.Kind == graph.OpInput {
				return nil, fmt.Errorf("schedule: round %d schedules virtual atom %d", t, id)
			}
			if s.AtomRound[id] != -1 {
				return nil, fmt.Errorf("schedule: atom %d scheduled twice", id)
			}
			s.AtomRound[id] = t
		}
		s.Rounds = append(s.Rounds, Round{Atoms: append([]int(nil), atoms...)})
	}
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpInput {
			continue
		}
		if s.AtomRound[a.ID] == -1 {
			return nil, fmt.Errorf("schedule: atom %d never scheduled", a.ID)
		}
		for _, dep := range a.Deps {
			if d.Atoms[dep].Task.Kind == graph.OpInput {
				continue
			}
			if s.AtomRound[dep] >= s.AtomRound[a.ID] {
				return nil, fmt.Errorf("schedule: atom %d (round %d) depends on %d (round %d)",
					a.ID, s.AtomRound[a.ID], dep, s.AtomRound[dep])
			}
		}
	}
	return s, nil
}
