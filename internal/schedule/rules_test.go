package schedule

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// siblingsGraph: input feeds A and B (same depth); both feed an add.
// A has many atoms, B few — rule 2 must pull B's atoms into A's rounds
// once A alone cannot fill the engines.
func siblingsGraph(t *testing.T) (*atom.DAG, int, int) {
	t.Helper()
	g := graph.New("sib")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 16, Wo: 4, Co: 4})
	a := g.AddLayer("a", graph.OpConv, graph.ConvShape(16, 4, 4, 4, 1, 1, 0), in)
	bl := g.AddLayer("b", graph.OpConv, graph.ConvShape(16, 4, 4, 4, 1, 1, 0), in)
	g.AddLayer("add", graph.OpEltwise, graph.EltwiseShape(16, 4, 4), a, bl)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := atom.Spec{
		a:  {Hp: 2, Wp: 4, Cop: 4}, // 8 atoms
		bl: {Hp: 8, Wp: 4, Cop: 4}, // 2 atoms
	}
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	return d, a, bl
}

func TestRule2SameDepthSiblings(t *testing.T) {
	d, a, bl := siblingsGraph(t)
	s, err := Build(d, Options{Engines: 5, Mode: Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	// With 5 engines and 8+2 same-depth atoms, some round must mix
	// layers a and b (rule 2 fills the gap left by a's remainder).
	mixed := false
	for _, r := range s.Rounds {
		seenA, seenB := false, false
		for _, id := range r.Atoms {
			switch d.Atoms[id].Layer {
			case a:
				seenA = true
			case bl:
				seenB = true
			}
		}
		if seenA && seenB {
			mixed = true
		}
	}
	if !mixed {
		t.Error("no round mixed same-depth siblings (rule 2 inert)")
	}
}

func TestDPUndoLogIntegrity(t *testing.T) {
	// Running DP twice over the same DAG must not corrupt shared state:
	// the second Build sees a fresh frontier and produces the identical
	// schedule (the lookahead's apply/rollback must be perfectly
	// balanced).
	d, _, _ := siblingsGraph(t)
	opt := Options{Engines: 3, Mode: DP, Lookahead: 4, MaxOptions: 5,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition}
	s1, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumRounds() != s2.NumRounds() {
		t.Fatalf("rounds differ: %d vs %d", s1.NumRounds(), s2.NumRounds())
	}
	for i := range s1.Rounds {
		for j := range s1.Rounds[i].Atoms {
			if s1.Rounds[i].Atoms[j] != s2.Rounds[i].Atoms[j] {
				t.Fatalf("round %d differs", i)
			}
		}
	}
}

func TestFromRoundsValidation(t *testing.T) {
	d, a, _ := siblingsGraph(t)
	opt := Options{Engines: 4, EngineCfg: engine.Default(), Dataflow: engine.KCPartition}
	atoms := d.AtomsOf(0, a)

	cases := map[string][][]int{
		"empty round":       {{}},
		"over budget":       {atoms[:5]},
		"duplicate atom":    {{atoms[0]}, {atoms[0]}},
		"unknown atom":      {{999999}},
		"missing atoms":     {{atoms[0]}},
		"dependency broken": nil, // built below
	}
	for label, rounds := range cases {
		if label == "dependency broken" {
			// Schedule the eltwise before its producers.
			var addAtom int
			for _, at := range d.Atoms {
				if at.Task.Kind == graph.OpEltwise {
					addAtom = at.ID
				}
			}
			rounds = [][]int{{addAtom}}
			rest := []int{}
			for _, at := range d.Atoms {
				if at.ID != addAtom && at.Task.Kind != graph.OpInput {
					rest = append(rest, at.ID)
				}
			}
			for off := 0; off < len(rest); off += 4 {
				end := off + 4
				if end > len(rest) {
					end = len(rest)
				}
				rounds = append(rounds, rest[off:end])
			}
		}
		if _, err := FromRounds(d, rounds, opt); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestFromRoundsAcceptsValid(t *testing.T) {
	d, _, _ := siblingsGraph(t)
	s, err := Build(d, Options{Engines: 4, Mode: Greedy,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([][]int, len(s.Rounds))
	for i, r := range s.Rounds {
		rounds[i] = r.Atoms
	}
	s2, err := FromRounds(d, rounds, Options{Engines: 4,
		EngineCfg: engine.Default(), Dataflow: engine.KCPartition})
	if err != nil {
		t.Fatal(err)
	}
	if s2.MakespanLB() != s.MakespanLB() {
		t.Errorf("round-tripped makespan %d != %d", s2.MakespanLB(), s.MakespanLB())
	}
}

// rebuildActiveDepth recomputes the rule-2 counters from first principles.
func (st *state) rebuildActiveDepth() map[int64]int {
	out := make(map[int64]int)
	for k, done := range st.traversed {
		if done && st.pending[k] > 0 {
			out[key(int(k>>32), st.g.Layer(int(k&0xffffffff)).Depth)]++
		}
	}
	return out
}

func TestActiveDepthIncremental(t *testing.T) {
	// Property: after any interleaving of apply/rollback — here a full DP
	// build, whose lookahead nests them several levels deep — the
	// incrementally-maintained activeDepth counters must equal a
	// from-scratch rebuild at every Round boundary.
	for _, model := range []string{"tinyresnet", "tinybranch", "pnascell"} {
		d := dagFor(t, model, 2)
		opt := Options{Engines: 3, Mode: DP, Lookahead: 3, MaxOptions: 5,
			EngineCfg: engine.Default(), Dataflow: engine.KCPartition}
		st := newState(d, opt)
		for st.remaining > 0 {
			comb := st.dpPick()
			if len(comb) == 0 {
				t.Fatalf("%s: deadlock with %d remaining", model, st.remaining)
			}
			st.apply(comb)
			want := st.rebuildActiveDepth()
			for k, v := range st.activeDepth {
				if v != want[k] {
					t.Fatalf("%s: activeDepth[%d] = %d, rebuild says %d", model, k, v, want[k])
				}
			}
			for k, v := range want {
				if st.activeDepth[k] != v {
					t.Fatalf("%s: activeDepth missing %d (want %d)", model, k, v)
				}
			}
		}
	}
}
