package schedule

import (
	"testing"
	"testing/quick"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
)

func opts(n int, m Mode) Options {
	return Options{Engines: n, Mode: m, EngineCfg: engine.Default(), Dataflow: engine.KCPartition}
}

func dagFor(t *testing.T, model string, batch int) *atom.DAG {
	t.Helper()
	g := models.MustBuild(model)
	res := anneal.SA(g, engine.Default(), engine.KCPartition, anneal.Options{MaxIters: 60})
	d, err := atom.Build(g, batch, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// checkValid asserts the schedule is a legal execution of the DAG.
func checkValid(t *testing.T, d *atom.DAG, s *Schedule, n int) {
	t.Helper()
	seenRound := make(map[int]int)
	for tIdx, r := range s.Rounds {
		if len(r.Atoms) == 0 {
			t.Fatalf("round %d empty", tIdx)
		}
		if len(r.Atoms) > n {
			t.Fatalf("round %d has %d atoms > %d engines", tIdx, len(r.Atoms), n)
		}
		for _, id := range r.Atoms {
			if _, dup := seenRound[id]; dup {
				t.Fatalf("atom %d scheduled twice", id)
			}
			seenRound[id] = tIdx
		}
	}
	// Every non-input atom scheduled exactly once, after all its deps.
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpInput {
			if _, ok := seenRound[a.ID]; ok {
				t.Fatalf("virtual input atom %d scheduled", a.ID)
			}
			continue
		}
		rt, ok := seenRound[a.ID]
		if !ok {
			t.Fatalf("atom %d never scheduled", a.ID)
		}
		if s.AtomRound[a.ID] != rt {
			t.Fatalf("AtomRound[%d] = %d, want %d", a.ID, s.AtomRound[a.ID], rt)
		}
		for _, dep := range a.Deps {
			if d.Atoms[dep].Task.Kind == graph.OpInput {
				continue
			}
			if dt := seenRound[dep]; dt >= rt {
				t.Fatalf("atom %d in round %d depends on atom %d in round %d",
					a.ID, rt, dep, dt)
			}
		}
	}
}

func TestGreedyValidSchedules(t *testing.T) {
	for _, model := range []string{"tinyconv", "tinyresnet", "tinybranch", "pnascell"} {
		d := dagFor(t, model, 2)
		s, err := Build(d, opts(4, Greedy))
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		checkValid(t, d, s, 4)
	}
}

func TestDPValidSchedules(t *testing.T) {
	for _, model := range []string{"tinyresnet", "pnascell"} {
		d := dagFor(t, model, 2)
		s, err := Build(d, opts(4, DP))
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		checkValid(t, d, s, 4)
	}
}

func TestDPNeverWorseThanGreedy(t *testing.T) {
	for _, model := range []string{"tinyresnet", "tinybranch", "pnascell"} {
		d := dagFor(t, model, 2)
		sg, err := Build(d, opts(4, Greedy))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := Build(d, opts(4, DP))
		if err != nil {
			t.Fatal(err)
		}
		// Small tolerance: lookahead uses an estimate, so tiny regressions
		// are possible in principle; they must stay negligible.
		if float64(sd.MakespanLB()) > 1.05*float64(sg.MakespanLB()) {
			t.Errorf("%s: DP makespan %d worse than greedy %d",
				model, sd.MakespanLB(), sg.MakespanLB())
		}
	}
}

func TestChainPipelining(t *testing.T) {
	// A deep cascade (VGG-like) where each layer has 4 atoms on 4 engines:
	// atom-level dependencies must let the scheduler overlap consecutive
	// layers (layer fusion), so the schedule takes fewer rounds than
	// #layers * ceil(atoms/engines) once warmed up.
	g := graph.New("cascade")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 32, Wo: 32, Co: 16})
	prev := in
	const L = 6
	for i := 0; i < L; i++ {
		prev = g.AddLayer(
			"c"+string(rune('a'+i)), graph.OpConv,
			graph.ConvShape(32, 32, 16, 16, 3, 1, 1), prev)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := make(atom.Spec)
	for id := 1; id <= L; id++ {
		spec[id] = atom.Partition{Hp: 8, Wp: 32, Cop: 16} // 4 atoms per layer
	}
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(d, opts(4, Greedy))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, s, 4)
	// Strict layer-sequential would need exactly L rounds of 4; the
	// halo dependencies force more rounds, but fused execution must not
	// serialize fully (2 rounds per layer = 12).
	if got := s.NumRounds(); got >= 2*L {
		t.Errorf("cascade rounds = %d, want < %d (fusion must overlap layers)", got, 2*L)
	}
}

func TestBatchRule4(t *testing.T) {
	// tinyconv atoms per sample are few; with 8 engines, the scheduler
	// must co-schedule atoms from multiple samples in one round.
	d := dagFor(t, "tinyconv", 4)
	s, err := Build(d, opts(8, Greedy))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, s, 8)
	crossSample := false
	for _, r := range s.Rounds {
		samples := make(map[int]bool)
		for _, id := range r.Atoms {
			samples[d.Atoms[id].Sample] = true
		}
		if len(samples) > 1 {
			crossSample = true
		}
	}
	if !crossSample {
		t.Error("no round mixed samples; batch parallelism unexploited")
	}
}

func TestSampleOrderLatency(t *testing.T) {
	// Rule 4 is latency-aware: sample 0's last atom must complete no
	// later than sample 1's (inference order preserved).
	d := dagFor(t, "tinyresnet", 3)
	s, err := Build(d, opts(4, Greedy))
	if err != nil {
		t.Fatal(err)
	}
	last := make([]int, d.Batch)
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpInput {
			continue
		}
		if r := s.AtomRound[a.ID]; r > last[a.Sample] {
			last[a.Sample] = r
		}
	}
	for i := 1; i < d.Batch; i++ {
		if last[i] < last[i-1] {
			t.Errorf("sample %d finished round %d before sample %d (round %d)",
				i, last[i], i-1, last[i-1])
		}
	}
}

func TestPriorityRule1Reuse(t *testing.T) {
	// With 2 engines and a layer of 6 atoms followed by a sibling layer,
	// rule 1 must keep draining the traversed layer before starting
	// siblings.
	g := graph.New("reuse")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 24, Wo: 8, Co: 8})
	a := g.AddLayer("a", graph.OpConv, graph.ConvShape(24, 8, 8, 8, 1, 1, 0), in)
	b := g.AddLayer("b", graph.OpConv, graph.ConvShape(24, 8, 8, 8, 1, 1, 0), in)
	g.AddLayer("add", graph.OpEltwise, graph.EltwiseShape(24, 8, 8), a, b)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := atom.Spec{
		a: {Hp: 4, Wp: 8, Cop: 8}, // 6 atoms
		b: {Hp: 4, Wp: 8, Cop: 8}, // 6 atoms
	}
	d, err := atom.Build(g, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(d, opts(2, Greedy))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, s, 2)
	// Round 0 starts layer a (topo-first); rounds 1 and 2 must stay on a
	// (rule 1) rather than interleaving b.
	for tIdx := 0; tIdx < 3; tIdx++ {
		for _, id := range s.Rounds[tIdx].Atoms {
			if d.Atoms[id].Layer != a {
				t.Fatalf("round %d contains layer %d, want only layer a=%d (rule 1)",
					tIdx, d.Atoms[id].Layer, a)
			}
		}
	}
}

func TestMakespanLB(t *testing.T) {
	d := dagFor(t, "tinyconv", 1)
	s, err := Build(d, opts(2, Greedy))
	if err != nil {
		t.Fatal(err)
	}
	var manual int64
	for _, r := range s.Rounds {
		var worst int64
		for _, id := range r.Atoms {
			if c := s.ComputeCycles[id]; c > worst {
				worst = c
			}
		}
		manual += worst
	}
	if s.MakespanLB() != manual {
		t.Errorf("MakespanLB = %d, want %d", s.MakespanLB(), manual)
	}
}

func TestBuildErrors(t *testing.T) {
	d := dagFor(t, "tinyconv", 1)
	if _, err := Build(d, Options{Engines: 0, EngineCfg: engine.Default()}); err == nil {
		t.Error("Engines=0 accepted")
	}
	bad := opts(4, Greedy)
	bad.EngineCfg.PEx = 0
	if _, err := Build(d, bad); err == nil {
		t.Error("invalid engine config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	d := dagFor(t, "pnascell", 2)
	a, err := Build(d, opts(4, DP))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(d, opts(4, DP))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRounds() != b.NumRounds() {
		t.Fatalf("round counts differ: %d vs %d", a.NumRounds(), b.NumRounds())
	}
	for i := range a.Rounds {
		if len(a.Rounds[i].Atoms) != len(b.Rounds[i].Atoms) {
			t.Fatalf("round %d sizes differ", i)
		}
		for j := range a.Rounds[i].Atoms {
			if a.Rounds[i].Atoms[j] != b.Rounds[i].Atoms[j] {
				t.Fatalf("round %d atom %d differs", i, j)
			}
		}
	}
}

// Property: for random engine counts, greedy schedules are always valid
// and use at least ceil(atoms/N) rounds.
func TestGreedyProperty(t *testing.T) {
	d := dagFor(t, "tinybranch", 2)
	nonVirtual := 0
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput {
			nonVirtual++
		}
	}
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		s, err := Build(d, opts(n, Greedy))
		if err != nil {
			return false
		}
		minRounds := (nonVirtual + n - 1) / n
		return s.NumRounds() >= minRounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
