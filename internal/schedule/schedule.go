// Package schedule implements the paper's Algorithm 2: atomic-DAG
// scheduling. The DAG is executed in discrete Rounds; each Round selects at
// most N ready atoms (one per engine), synchronized by the last to finish
// (paper Sec. III). The combination space per Round is pruned with the four
// priority rules of Sec. IV-B, and a bounded-lookahead dynamic program over
// the pruned option set picks the combination minimizing the Round cost
// plus the recursively-estimated cost of the remaining sub-DAG — exactly
// the paper's optimal-substructure formulation with the same pruning, made
// tractable by bounding recursion depth and option fan-out.
//
// Two modes are exposed: Greedy applies the priority rules alone and scales
// to DAGs with hundreds of thousands of atoms; DP (the default) explores
// MaxOptions alternatives per Round with Lookahead rounds of recursion and
// subsumes the greedy choice, so it never schedules worse.
package schedule

import (
	"context"
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// Mode selects the search effort.
type Mode int

const (
	// DP is bounded-lookahead dynamic programming over priority-pruned
	// options (the paper's Algorithm 2).
	DP Mode = iota
	// Greedy applies the priority rules with no lookahead.
	Greedy
)

// Options configures the scheduler.
type Options struct {
	Engines    int             // N, number of tensor engines (required)
	Mode       Mode            // search mode (default DP)
	Lookahead  int             // DP recursion depth in Rounds (default 3)
	MaxOptions int             // option fan-out per Round (default 4)
	EngineCfg  engine.Config   // engine pricing the atoms (required)
	Dataflow   engine.Dataflow // dataflow pricing the atoms

	// Oracle prices the atoms (default: a fresh memoized oracle). Pass the
	// run's shared oracle so scheduling reuses evaluations cached during
	// candidate generation.
	Oracle cost.Oracle

	// Ctx, when non-nil, lets callers abandon the search: Build polls it
	// between Rounds and returns the context's error once cancelled. An
	// uncancelled context never changes the schedule produced.
	Ctx context.Context
}

func (o Options) lookahead() int {
	if o.Lookahead <= 0 {
		return 3
	}
	return o.Lookahead
}

func (o Options) maxOptions() int {
	if o.MaxOptions <= 0 {
		return 4
	}
	return o.MaxOptions
}

// Round is one synchronized step: the chosen atoms run on distinct engines
// and the Round ends when the slowest finishes.
type Round struct {
	Atoms []int // atom IDs, at most Options.Engines of them
}

// Schedule is the ordered Round list plus lookup tables used by the
// mapping, buffering and simulation stages.
type Schedule struct {
	Rounds    []Round
	AtomRound []int // atom ID -> round index (-1 for virtual input atoms)

	// ComputeCycles caches each atom's engine cycles under the scheduling
	// engine config/dataflow.
	ComputeCycles []int64
}

// NumRounds returns the schedule length.
func (s *Schedule) NumRounds() int { return len(s.Rounds) }

// MakespanLB returns Σ_t max cycles in Round t — the compute-only lower
// bound on execution time that the scheduler optimizes.
func (s *Schedule) MakespanLB() int64 {
	var total int64
	for _, r := range s.Rounds {
		var worst int64
		for _, id := range r.Atoms {
			if c := s.ComputeCycles[id]; c > worst {
				worst = c
			}
		}
		total += worst
	}
	return total
}

// Build schedules the atomic DAG.
func Build(d *atom.DAG, opt Options) (*Schedule, error) {
	if opt.Engines <= 0 {
		return nil, fmt.Errorf("schedule: Engines = %d", opt.Engines)
	}
	if err := opt.EngineCfg.Validate(); err != nil {
		return nil, err
	}
	st := newState(d, opt)
	sched := &Schedule{
		AtomRound:     make([]int, d.NumAtoms()),
		ComputeCycles: st.cycles,
	}
	for i := range sched.AtomRound {
		sched.AtomRound[i] = -1
	}
	for st.remaining > 0 {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("schedule: %w", err)
			}
		}
		var comb []int
		if opt.Mode == Greedy {
			comb = st.greedyPick()
		} else {
			comb = st.dpPick()
		}
		if len(comb) == 0 {
			return nil, fmt.Errorf("schedule: deadlock with %d atoms remaining", st.remaining)
		}
		t := len(sched.Rounds)
		for _, id := range comb {
			sched.AtomRound[id] = t
		}
		sched.Rounds = append(sched.Rounds, Round{Atoms: comb})
		st.apply(comb)
	}
	return sched, nil
}

// state is the mutable scheduling frontier.
type state struct {
	d   *atom.DAG
	g   *graph.Graph
	opt Options

	cycles    []int64 // per-atom engine cycles
	indeg     []int
	scheduled []bool
	remaining int

	// ready atoms grouped per (sample, layer); layerOrder maps layer ID to
	// its topological position for deterministic ordering.
	ready      map[int64][]int // key = sample<<32 | layer
	readyCount int
	layerPos   []int

	// traversed marks (sample, layer) pairs with at least one scheduled
	// atom; pending counts unscheduled atoms per (sample, layer).
	traversed map[int64]bool
	pending   map[int64]int

	// activeDepth counts, per key(sample, depth), the traversed-but-
	// unfinished (sample, layer) pairs at that depth — the rule-2
	// reference set, maintained incrementally by apply/rollback so
	// pickWithPolicy (called ~MaxOptions·Lookahead times per Round by the
	// DP) reads it in O(1) instead of walking every traversed pair.
	activeDepth map[int64]int

	curSample   int
	samplesLeft []int // unscheduled atom count per sample

	totalWork int64 // Σ cycles of unscheduled atoms
	undoLog   []undo
}

type undo struct {
	comb        []int
	readyAdded  []int // atom IDs that became ready during this apply
	newTravKeys []int64
	prevSample  int
	workDelta   int64
}

func key(sample, layer int) int64 { return int64(sample)<<32 | int64(layer) }

// pairActive reports whether a (sample, layer) pair belongs to the rule-2
// reference set: traversed with unscheduled atoms left.
func (st *state) pairActive(k int64) bool {
	return st.traversed[k] && st.pending[k] > 0
}

// adjustActive reconciles the activeDepth counter after a pair's
// (traversed, pending) transition observed as was → is.
func (st *state) adjustActive(k int64, was, is bool) {
	if was == is {
		return
	}
	dk := key(int(k>>32), st.g.Layer(int(k&0xffffffff)).Depth)
	if is {
		st.activeDepth[dk]++
	} else {
		st.activeDepth[dk]--
	}
}

func newState(d *atom.DAG, opt Options) *state {
	st := &state{
		d:           d,
		g:           d.Graph,
		opt:         opt,
		cycles:      make([]int64, d.NumAtoms()),
		indeg:       make([]int, d.NumAtoms()),
		scheduled:   make([]bool, d.NumAtoms()),
		ready:       make(map[int64][]int),
		traversed:   make(map[int64]bool),
		pending:     make(map[int64]int),
		activeDepth: make(map[int64]int),
		layerPos:    make([]int, d.Graph.NumLayers()),
	}
	for i, lid := range d.Graph.Topo() {
		st.layerPos[lid] = i
	}
	st.samplesLeft = make([]int, d.Batch)
	orc := cost.Or(opt.Oracle)
	for _, a := range d.Atoms {
		c := orc.Evaluate(opt.EngineCfg, opt.Dataflow, a.Task)
		st.cycles[a.ID] = c.Cycles
		st.indeg[a.ID] = len(a.Deps)
	}
	// Virtual atoms (graph inputs) complete immediately: they model data
	// already resident in DRAM, not engine work.
	completedVirtual := make([]int, 0)
	for _, a := range d.Atoms {
		if a.Task.Kind == graph.OpInput {
			st.scheduled[a.ID] = true
			completedVirtual = append(completedVirtual, a.ID)
			continue
		}
		st.remaining++
		st.samplesLeft[a.Sample]++
		st.pending[key(a.Sample, a.Layer)]++
		st.totalWork += st.cycles[a.ID]
	}
	for _, a := range d.Atoms {
		if st.scheduled[a.ID] || st.indeg[a.ID] > 0 {
			continue
		}
		// Ready unless it waits on a virtual dep (handled below).
		st.pushReady(a.ID)
	}
	for _, id := range completedVirtual {
		for _, c := range d.Consumers(id) {
			st.indeg[c]--
			if st.indeg[c] == 0 && !st.scheduled[c] {
				st.pushReady(c)
			}
		}
	}
	return st
}

func (st *state) pushReady(id int) {
	a := st.d.Atoms[id]
	k := key(a.Sample, a.Layer)
	st.ready[k] = append(st.ready[k], id)
	st.readyCount++
}

// apply schedules a combination, updating the frontier, and records an
// undo entry for lookahead rollback.
func (st *state) apply(comb []int) {
	u := undo{comb: append([]int(nil), comb...), prevSample: st.curSample}
	for _, id := range comb {
		a := st.d.Atoms[id]
		k := key(a.Sample, a.Layer)
		wasActive := st.pairActive(k)
		st.scheduled[id] = true
		st.remaining--
		st.samplesLeft[a.Sample]--
		st.pending[k]--
		st.totalWork -= st.cycles[id]
		u.workDelta += st.cycles[id]
		// Remove from its ready list (atoms are taken front-first, but a
		// lookahead branch may take from the middle; scan).
		lst := st.ready[k]
		for i, v := range lst {
			if v == id {
				st.ready[k] = append(lst[:i], lst[i+1:]...)
				st.readyCount--
				break
			}
		}
		if !st.traversed[k] {
			st.traversed[k] = true
			u.newTravKeys = append(u.newTravKeys, k)
		}
		st.adjustActive(k, wasActive, st.pairActive(k))
		for _, c := range st.d.Consumers(id) {
			st.indeg[c]--
			if st.indeg[c] == 0 && !st.scheduled[c] {
				st.pushReady(c)
				u.readyAdded = append(u.readyAdded, c)
			}
		}
	}
	for st.curSample < st.d.Batch && st.samplesLeft[st.curSample] == 0 {
		st.curSample++
	}
	st.undoLog = append(st.undoLog, u)
}

// rollback undoes the most recent apply.
func (st *state) rollback() {
	u := st.undoLog[len(st.undoLog)-1]
	st.undoLog = st.undoLog[:len(st.undoLog)-1]
	// Remove the specific atoms that became ready during the apply.
	// Nested apply/rollback pairs may have reordered the lists, so
	// removal is by ID, not position.
	for i := len(u.readyAdded) - 1; i >= 0; i-- {
		id := u.readyAdded[i]
		a := st.d.Atoms[id]
		k := key(a.Sample, a.Layer)
		lst := st.ready[k]
		for j, v := range lst {
			if v == id {
				st.ready[k] = append(lst[:j], lst[j+1:]...)
				st.readyCount--
				break
			}
		}
	}
	for _, id := range u.comb {
		a := st.d.Atoms[id]
		k := key(a.Sample, a.Layer)
		wasActive := st.pairActive(k)
		st.scheduled[id] = false
		st.remaining++
		st.samplesLeft[a.Sample]++
		st.pending[k]++
		st.adjustActive(k, wasActive, st.pairActive(k))
		for _, c := range st.d.Consumers(id) {
			st.indeg[c]++
		}
		st.pushReady(id)
	}
	for _, k := range u.newTravKeys {
		wasActive := st.pairActive(k)
		delete(st.traversed, k)
		st.adjustActive(k, wasActive, false)
	}
	st.totalWork += u.workDelta
	st.curSample = u.prevSample
}
