package schedule

import "slices"

// greedyPick selects up to N ready atoms following the paper's four
// priority rules (Sec. IV-B):
//
//  1. remaining atoms of already-traversed layers (their ifmaps/weights are
//     on-chip);
//  2. atoms of not-yet-traversed layers at the same depth as an in-flight
//     traversed layer (they share common inputs, releasing buffer early);
//  3. atoms of other ready (dependent) layers in the current sample;
//  4. atoms of later samples, entered only when the current sample cannot
//     fill all engines.
func (st *state) greedyPick() []int {
	return st.pickWithPolicy(policy{})
}

// policy perturbs the greedy decision to generate DP alternatives.
type policy struct {
	stayInSample bool // never apply rule 4
	longestFirst bool // within a rule, prefer atoms with more cycles
	onlyRule1    bool // do not start new layers this Round
	deferRule2   bool // swap the order of rules 2 and 3
}

// candidateLayer is one (sample, layer) with ready atoms, bucketed by rule.
type candidateLayer struct {
	k      int64
	sample int
	layer  int
	rule   int
	pos    int // topological position, for deterministic ordering
}

// pickWithPolicy is the shared selection engine. The rule-2 reference set
// (depths of traversed-but-unfinished layers in the current sample) is
// read from the incrementally-maintained state.activeDepth counters — the
// DP lookahead calls this for every option at every recursion level, so
// rebuilding the set here from the traversed map would put an O(traversed
// pairs) walk inside the scheduler's innermost loop.
func (st *state) pickWithPolicy(p policy) []int {
	n := st.opt.Engines
	pick := make([]int, 0, n)

	var cands []candidateLayer
	for k, lst := range st.ready {
		if len(lst) == 0 {
			continue
		}
		sample := int(k >> 32)
		layer := int(k & 0xffffffff)
		var rule int
		switch {
		case sample == st.curSample && st.traversed[k]:
			rule = 1
		case sample == st.curSample && st.activeDepth[key(sample, st.g.Layer(layer).Depth)] > 0:
			rule = 2
		case sample == st.curSample:
			rule = 3
		default:
			rule = 4
		}
		if p.deferRule2 && rule == 2 {
			rule = 3
		} else if p.deferRule2 && rule == 3 {
			rule = 2
		}
		cands = append(cands, candidateLayer{
			k: k, sample: sample, layer: layer, rule: rule, pos: st.layerPos[layer],
		})
	}
	// (rule, sample, pos) is a total order — pos is unique per layer and
	// (sample, layer) is unique per entry — so the unstable sort is
	// deterministic.
	slices.SortFunc(cands, func(a, b candidateLayer) int {
		if a.rule != b.rule {
			return a.rule - b.rule
		}
		if a.sample != b.sample {
			return a.sample - b.sample
		}
		return a.pos - b.pos
	})

	for _, c := range cands {
		if len(pick) >= n {
			break
		}
		if p.onlyRule1 && c.rule > 1 && len(pick) > 0 {
			break
		}
		if p.stayInSample && c.rule == 4 {
			break
		}
		lst := append([]int(nil), st.ready[c.k]...)
		if p.longestFirst {
			slices.SortFunc(lst, func(i, j int) int {
				ci, cj := st.cycles[i], st.cycles[j]
				if ci != cj {
					if ci > cj {
						return -1
					}
					return 1
				}
				return i - j
			})
		} else {
			slices.Sort(lst)
		}
		for _, id := range lst {
			if len(pick) >= n {
				break
			}
			pick = append(pick, id)
		}
	}
	return pick
}

// dpPick evaluates up to MaxOptions priority-pruned combinations with
// bounded-lookahead recursion (the DP(G') of Algorithm 2) and returns the
// combination with the minimum total estimated cost.
func (st *state) dpPick() []int {
	options := st.options()
	if len(options) == 1 {
		return options[0]
	}
	bestIdx, bestCost := 0, int64(-1)
	for i, comb := range options {
		cost := st.combCost(comb) + st.lookaheadCost(comb, st.opt.lookahead()-1)
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	return options[bestIdx]
}

// options generates the pruned combination set for the current Round.
func (st *state) options() [][]int {
	policies := []policy{
		{},                   // pure priority rules
		{longestFirst: true}, // better Round packing of unequal atoms
		{stayInSample: true}, // lower latency for the current sample
		{onlyRule1: true},    // drain in-flight layers before widening
		{deferRule2: true},   // dependent layers before siblings
	}
	maxOpts := st.opt.maxOptions()
	var out [][]int
	seen := make(map[string]bool)
	for _, p := range policies {
		if len(out) >= maxOpts {
			break
		}
		comb := st.pickWithPolicy(p)
		if len(comb) == 0 {
			continue
		}
		sorted := append([]int(nil), comb...)
		slices.Sort(sorted)
		s := sig(sorted)
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, comb)
	}
	return out
}

// sig encodes a sorted int slice as a compact map key.
func sig(ids []int) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// combCost prices one Round: the engines synchronize on the slowest atom.
func (st *state) combCost(comb []int) int64 {
	var worst int64
	for _, id := range comb {
		if c := st.cycles[id]; c > worst {
			worst = c
		}
	}
	return worst
}

// lookaheadCost recursively schedules `depth` more Rounds greedily after
// applying comb, then closes with the packing lower bound
// remainingWork / N — the DP(G') estimate for the un-traversed sub-DAG.
func (st *state) lookaheadCost(comb []int, depth int) int64 {
	st.apply(comb)
	var cost int64
	if st.remaining == 0 {
		cost = 0
	} else if depth <= 0 {
		cost = st.totalWork / int64(st.opt.Engines)
	} else {
		options := st.options()
		best := int64(-1)
		for _, next := range options {
			c := st.combCost(next) + st.lookaheadCost(next, depth-1)
			if best < 0 || c < best {
				best = c
			}
		}
		if best < 0 {
			best = st.totalWork / int64(st.opt.Engines)
		}
		cost = best
	}
	st.rollback()
	return cost
}
