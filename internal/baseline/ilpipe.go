package baseline

import (
	"fmt"
	"math"

	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// ILPipe simulates the Inter-Layer Pipelining baseline [Tangram]: the
// layers are grouped into S contiguous pipeline stages mapped to adjacent
// engine regions, with engines allocated in proportion to each stage's
// computation. Intermediate tensors are forwarded on-chip between adjacent
// regions, so DRAM sees only the network input, the final output, and the
// weight streams of stages whose weights exceed their region's buffers.
// The fine-grained ALLO enhancement halves the pipeline fill/drain delay
// (the best case the paper grants the baseline).
//
// Its weaknesses — the ones the paper's Fig. 8/9 exposes — emerge
// naturally: batch-1 latency pays the full pipeline fill, and throughput
// is set by the slowest (imbalanced) stage while other regions idle.
func ILPipe(g *graph.Graph, batch int, cfg sim.Config) (sim.Report, error) {
	if err := cfg.Validate(); err != nil {
		return sim.Report{}, err
	}
	n := cfg.Mesh.Engines()
	units := scheduleUnits(g)
	if len(units) == 0 {
		return sim.Report{}, fmt.Errorf("baseline: no layers")
	}
	// Sweep the stage count (a Tangram designer picks the best segment
	// granularity) and keep the fastest pipeline.
	best := sim.Report{}
	found := false
	for s := 2; s <= minInt(n, len(units)); s *= 2 {
		rep := ilPipeWithStages(units, batch, cfg, s)
		if !found || rep.Cycles < best.Cycles {
			best, found = rep, true
		}
	}
	if !found {
		return ilPipeWithStages(units, batch, cfg, minInt(n, len(units))), nil
	}
	return best, nil
}

// ilPipeWithStages prices the pipeline with exactly s stages.
func ilPipeWithStages(units []*graph.Layer, batch int, cfg sim.Config, s int) sim.Report {
	n := cfg.Mesh.Engines()
	bounds := macBalancedBounds(units, s)

	// Engine allocation proportional to stage MACs (>=1 each).
	alloc := allocEngines(units, bounds, s, n)

	type stageCost struct {
		compute  int64
		total    int64
		dram     int64 // bytes
		noc      int64 // byte-hops
		sram     int64
		macs     int64
		interOut int64 // ofmap bytes forwarded to next stage
	}
	orc := cost.Or(cfg.Oracle)
	stages := make([]stageCost, s)
	for j := 0; j < s; j++ {
		m := alloc[j]
		var sc stageCost
		var weightBytes int64
		for i := bounds[j]; i < bounds[j+1]; i++ {
			l := units[i]
			sc.compute += layerEngineCycles(orc, l, cfg.Engine, cfg.Dataflow, m)
			sc.macs += l.MACs()
			weightBytes += l.WeightBytes()
			// Spatial splitting within the stage region means each of
			// its m engines reads the full layer weights per sample —
			// the same amplification the simulator charges LS and AD.
			_, tiles := evenSplit(l, m)
			copies := int64(minInt(tiles, m))
			if copies < 1 {
				copies = 1
			}
			sc.sram += l.InputBytes() + l.OutputBytes() + copies*l.WeightBytes()
		}
		last := units[bounds[j+1]-1]
		sc.interOut = last.OutputBytes()
		// Stage weights resident when they fit the region's buffers;
		// otherwise they stream from DRAM every sample.
		regionBuf := int64(m) * cfg.UsableBufferBytes()
		if weightBytes > regionBuf/2 {
			sc.dram += weightBytes
		}
		if j == 0 {
			sc.dram += units[0].InputBytes() // network input
		}
		if j == s-1 {
			sc.dram += sc.interOut // network output
		}
		// Inter-stage forwarding: adjacent regions, ~1-2 hops, serialized
		// on the boundary links.
		if j > 0 {
			in := units[bounds[j]].InputBytes()
			sc.noc = in * 2
			sc.compute += in / int64(cfg.Mesh.LinkBytes)
		}
		dramCycles := int64(float64(sc.dram)/cfg.DRAM.BytesPerCycle()) + cfg.DRAM.AccessLatency
		sc.total = sc.compute
		if dramCycles > sc.total {
			sc.total = dramCycles
		}
		stages[j] = sc
	}

	var beat, beatCompute, fill, fillCompute int64
	var dramPerSample, nocPerSample, sramPerSample, macsPerSample int64
	for _, sc := range stages {
		if sc.total > beat {
			beat = sc.total
		}
		if sc.compute > beatCompute {
			beatCompute = sc.compute
		}
		fill += sc.total
		fillCompute += sc.compute
		dramPerSample += sc.dram
		nocPerSample += sc.noc
		sramPerSample += sc.sram
		macsPerSample += sc.macs
	}
	// ALLO fine-grained pipelining: half the fill/drain delay alleviated.
	fillALLO := fill/2 + beat/2
	cycles := fillALLO + int64(batch-1)*beat
	computeCycles := fillCompute/2 + beatCompute/2 + int64(batch-1)*beatCompute

	var rep sim.Report
	rep.Cycles = cycles
	rep.TimeMS = float64(cycles) / (cfg.Engine.FreqMHz * 1e3)
	rep.Rounds = batch + s - 1
	rep.ComputeCycles = computeCycles
	rep.DRAMBlockedCycles = cycles - computeCycles
	rep.MACs = int64(batch) * macsPerSample
	rep.DRAMReadBytes = int64(batch) * (dramPerSample - stages[s-1].interOut)
	rep.DRAMWriteBytes = int64(batch) * stages[s-1].interOut
	rep.NoCByteHops = int64(batch) * nocPerSample
	totalPEs := float64(n * cfg.Engine.NumPEs() * cfg.Engine.MACsPerPE)
	if cycles > 0 {
		rep.PEUtilization = float64(rep.MACs) / (float64(cycles) * totalPEs)
	}
	if computeCycles > 0 {
		rep.ComputeUtil = float64(rep.MACs) / (float64(computeCycles) * totalPEs)
	}
	// Every inter-layer tensor stays on-chip: reuse covers all but the
	// network input.
	var interBytes, inputBytes int64
	for j, sc := range stages {
		if j > 0 {
			interBytes += sc.interOut
		}
	}
	inputBytes = units[0].InputBytes()
	if interBytes+inputBytes > 0 {
		rep.OnChipReuseRatio = float64(interBytes) / float64(interBytes+inputBytes)
	}

	rep.Energy.AddMACs(cfg.Energy, rep.MACs)
	rep.Energy.AddDRAM(cfg.Energy, rep.DRAMReadBytes+rep.DRAMWriteBytes)
	rep.Energy.AddSRAM(cfg.Energy, int64(batch)*sramPerSample/2, int64(batch)*sramPerSample/2)
	rep.Energy.AddNoC(cfg.Energy, rep.NoCByteHops)
	rep.Energy.AddStatic(cfg.Energy, cycles*int64(n))
	return rep
}

// macBalancedBounds splits units into s contiguous non-empty stages with
// roughly equal MACs: a cut is forced once the remaining units are only
// just enough to populate the remaining stages.
func macBalancedBounds(units []*graph.Layer, s int) []int {
	var total int64
	for _, l := range units {
		total += l.MACs() + 1
	}
	target := total / int64(s)
	bounds := []int{0}
	var acc int64
	for i, l := range units {
		acc += l.MACs() + 1
		after := len(units) - (i + 1) // units left past i
		need := s - len(bounds)       // interior cuts still required
		if need > 0 && after >= need && (acc >= target || after == need) {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	return append(bounds, len(units))
}

// allocEngines distributes n engines over stages proportionally to MACs,
// at least one each.
func allocEngines(units []*graph.Layer, bounds []int, s, n int) []int {
	macs := make([]float64, s)
	var total float64
	for j := 0; j < s; j++ {
		for i := bounds[j]; i < bounds[j+1]; i++ {
			macs[j] += float64(units[i].MACs() + 1)
		}
		total += macs[j]
	}
	alloc := make([]int, s)
	used := 0
	for j := 0; j < s; j++ {
		alloc[j] = maxInt(1, int(math.Floor(macs[j]/total*float64(n))))
		used += alloc[j]
	}
	// Distribute leftovers to the heaviest stages; trim overshoot from
	// the lightest.
	for used < n {
		j := argmaxRatio(macs, alloc)
		alloc[j]++
		used++
	}
	for used > n {
		j := argminRatio(macs, alloc)
		if alloc[j] > 1 {
			alloc[j]--
			used--
		} else {
			break
		}
	}
	return alloc
}

func argmaxRatio(macs []float64, alloc []int) int {
	best, bestV := 0, -1.0
	for j := range macs {
		v := macs[j] / float64(alloc[j])
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

func argminRatio(macs []float64, alloc []int) int {
	best, bestV := 0, math.MaxFloat64
	for j := range macs {
		if alloc[j] <= 1 {
			continue
		}
		v := macs[j] / float64(alloc[j])
		if v < bestV {
			best, bestV = j, v
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
