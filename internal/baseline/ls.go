package baseline

import (
	"sort"

	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// LS simulates the Layer-Sequential baseline: layers run strictly one at a
// time in topological order, each evenly partitioned across all engines.
// When a layer's even partition cannot occupy every engine, atoms of
// multiple batch samples are co-mapped in the same Round (the paper's
// enhanced LS for batch processing).
func LS(g *graph.Graph, batch int, cfg sim.Config) (sim.Report, error) {
	d, s, err := LSSchedule(g, batch, cfg)
	if err != nil {
		return sim.Report{}, err
	}
	return sim.Run(d, s, cfg)
}

// LSSchedule builds the LS atomic DAG and Round schedule without
// simulating, for reuse by Rammer and the experiments.
func LSSchedule(g *graph.Graph, batch int, cfg sim.Config) (*atom.DAG, *schedule.Schedule, error) {
	n := cfg.Mesh.Engines()
	spec, tiles := evenSpec(g, n)
	d, err := atom.Build(g, batch, spec)
	if err != nil {
		return nil, nil, err
	}
	var rounds [][]int
	for _, lid := range g.Topo() {
		l := g.Layer(lid)
		if l.Kind == graph.OpInput || l.Kind == graph.OpConcat {
			continue
		}
		// Samples co-mapped per Round: fill idle engines with the same
		// layer from subsequent samples.
		group := n / tiles[lid]
		if group < 1 {
			group = 1
		}
		for s0 := 0; s0 < batch; s0 += group {
			var round []int
			for smp := s0; smp < minInt(s0+group, batch); smp++ {
				round = append(round, d.AtomsOf(smp, lid)...)
			}
			// A layer with more tiles than engines needs several waves.
			for off := 0; off < len(round); off += n {
				rounds = append(rounds, round[off:minInt(off+n, len(round))])
			}
		}
	}
	s, err := schedule.FromRounds(d, rounds, schedule.Options{
		Engines: n, EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow, Oracle: cfg.Oracle,
	})
	if err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// LayerUtilization computes the per-layer PE utilization of the naive LS
// strategy (each layer evenly partitioned across all engines, batch 1,
// communication excluded) — the quantity plotted in the paper's Fig. 2 —
// and its layer-averaged mean over compute layers.
func LayerUtilization(orc cost.Oracle, g *graph.Graph, cfg engine.Config, df engine.Dataflow, n int) (perLayer []float64, avg float64) {
	orc = cost.Or(orc)
	ids := g.ComputeLayers()
	perLayer = make([]float64, 0, len(ids))
	for _, lid := range ids {
		l := g.Layer(lid)
		p, tiles := evenSplit(l, n)
		t := engine.Task{Kind: l.Kind, Hp: p.Hp, Wp: p.Wp, Ci: l.Shape.Ci, Cop: p.Cop,
			Kh: l.Shape.Kh, Kw: l.Shape.Kw, Stride: l.Shape.Stride}
		if l.Kind == graph.OpDepthwiseConv {
			t.Ci = 1
		}
		c := orc.Evaluate(cfg, df, t)
		// Engine-level utilization of the slowest wave, discounted by the
		// fraction of engines the layer occupies at all.
		occupancy := float64(minInt(tiles, n)) / float64(n)
		perLayer = append(perLayer, c.Utilization*occupancy)
	}
	for _, u := range perLayer {
		avg += u
	}
	if len(perLayer) > 0 {
		avg /= float64(len(perLayer))
	}
	return perLayer, avg
}

// UtilizationHistogram buckets per-layer utilization into bins of the
// given width (e.g. 0.1), for Fig. 2-style summaries.
func UtilizationHistogram(perLayer []float64, width float64) map[int]int {
	h := make(map[int]int)
	for _, u := range perLayer {
		h[int(u/width)]++
	}
	return h
}

// SortedLayerUtil returns a sorted copy, useful for percentile reporting.
func SortedLayerUtil(perLayer []float64) []float64 {
	out := append([]float64(nil), perLayer...)
	sort.Float64s(out)
	return out
}
