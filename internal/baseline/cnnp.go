package baseline

import (
	"fmt"
	"math"

	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// CNNP simulates the CNN-Partition baseline [51]: the N engines are
// clustered into K convolutional-layer processors (CLPs); the layers are
// split into K contiguous groups, one per CLP; a batch of images pipelines
// through the CLPs in layer-granularity segments (Fig. 3a). Each CLP reads
// its ifmaps and weights from off-chip memory and writes its ofmaps back,
// so every inter-CLP tensor crosses DRAM. The segment length is set by the
// slowest CLP. K is chosen by sweeping the divisors of N and keeping the
// best total time — with batch 1 this degenerates to K=1, i.e. the LS
// mapping, exactly as the paper notes.
func CNNP(g *graph.Graph, batch int, cfg sim.Config) (sim.Report, error) {
	if err := cfg.Validate(); err != nil {
		return sim.Report{}, err
	}
	if batch <= 1 {
		// A single image cannot pipeline across CLPs, so CNN-P degrades
		// to the LS mapping — the paper omits it from the latency figure
		// for exactly this reason (Sec. V-B).
		return LS(g, 1, cfg)
	}
	n := cfg.Mesh.Engines()
	units := scheduleUnits(g)
	if len(units) == 0 {
		return sim.Report{}, fmt.Errorf("baseline: no layers")
	}
	best := sim.Report{}
	found := false
	for _, k := range clpCounts(n, len(units)) {
		rep := cnnpWithK(g, units, batch, cfg, k)
		if !found || rep.Cycles < best.Cycles {
			best, found = rep, true
		}
	}
	return best, nil
}

// scheduleUnits lists the schedulable (non-virtual, non-concat) layers in
// topological order.
func scheduleUnits(g *graph.Graph) []*graph.Layer {
	var out []*graph.Layer
	for _, lid := range g.Topo() {
		l := g.Layer(lid)
		if l.Kind == graph.OpInput || l.Kind == graph.OpConcat {
			continue
		}
		out = append(out, l)
	}
	return out
}

// clpCounts enumerates candidate CLP counts: divisors of n capped by the
// layer count.
func clpCounts(n, layers int) []int {
	var ks []int
	for k := 1; k <= n && k <= layers; k *= 2 {
		if n%k == 0 {
			ks = append(ks, k)
		}
	}
	return ks
}

// layerTimes prices each unit on m engines: compute cycles, DRAM bytes
// (ifmap + weights + ofmap — CNN-P always round-trips through DRAM).
type layerTime struct {
	compute    int64
	dramBytes  int64
	macs       int64
	sramBytes  int64
	weightHops int64 // byte-hops of intra-CLP weight broadcast
}

func priceLayers(units []*graph.Layer, cfg sim.Config, m int) []layerTime {
	orc := cost.Or(cfg.Oracle)
	out := make([]layerTime, len(units))
	for i, l := range units {
		lt := layerTime{
			compute:   layerEngineCycles(orc, l, cfg.Engine, cfg.Dataflow, m),
			dramBytes: l.InputBytes() + l.WeightBytes() + l.OutputBytes(),
			macs:      l.MACs(),
		}
		// Feature maps stage through the CLP buffers once; weights are
		// broadcast to all m engines of the CLP (spatial splitting means
		// every engine consumes the full layer weights), so their SRAM
		// traffic is amplified m-fold — the same accounting the
		// event-driven simulator applies to LS and AD.
		_, tiles := evenSplit(l, m)
		copies := int64(minInt(tiles, m))
		if copies < 1 {
			copies = 1
		}
		lt.sramBytes = 2*(l.InputBytes()+l.OutputBytes()) + 2*copies*l.WeightBytes()
		lt.weightHops = copies * l.WeightBytes()
		out[i] = lt
	}
	return out
}

// cnnpWithK prices the pipeline with exactly k CLPs.
func cnnpWithK(g *graph.Graph, units []*graph.Layer, batch int, cfg sim.Config, k int) sim.Report {
	n := cfg.Mesh.Engines()
	m := n / k
	lt := priceLayers(units, cfg, m)
	bounds := balancedPartition(lt, k, cfg, k)

	// Per-CLP per-image time: compute overlapped with its DRAM streaming
	// (double buffering), whichever dominates. The k CLPs share HBM
	// bandwidth.
	perCLPBW := cfg.DRAM.BytesPerCycle() / float64(k)
	var segCompute, segTotal int64
	var totalDRAM, totalSRAM, totalMACs, totalWeightHops int64
	for j := 0; j < k; j++ {
		var comp, bytes, macs, sram int64
		for i := bounds[j]; i < bounds[j+1]; i++ {
			comp += lt[i].compute
			bytes += lt[i].dramBytes
			macs += lt[i].macs
			sram += lt[i].sramBytes
			totalWeightHops += lt[i].weightHops
		}
		dramCycles := int64(float64(bytes)/perCLPBW) + cfg.DRAM.AccessLatency
		t := comp
		if dramCycles > t {
			t = dramCycles
		}
		if t > segTotal {
			segTotal = t
		}
		if comp > segCompute {
			segCompute = comp
		}
		totalDRAM += bytes
		totalSRAM += sram
		totalMACs += macs
	}
	segments := int64(batch + k - 1)
	cycles := segments * segTotal

	var rep sim.Report
	rep.Cycles = cycles
	rep.TimeMS = float64(cycles) / (cfg.Engine.FreqMHz * 1e3)
	rep.Rounds = int(segments)
	rep.ComputeCycles = segments * segCompute
	rep.DRAMBlockedCycles = cycles - rep.ComputeCycles
	rep.MACs = int64(batch) * totalMACs
	rep.DRAMReadBytes = int64(batch) * (totalDRAM - outputBytes(units, bounds, k))
	rep.DRAMWriteBytes = int64(batch) * outputBytes(units, bounds, k)
	totalPEs := float64(n * cfg.Engine.NumPEs() * cfg.Engine.MACsPerPE)
	if cycles > 0 {
		rep.PEUtilization = float64(rep.MACs) / (float64(cycles) * totalPEs)
	}
	if rep.ComputeCycles > 0 {
		rep.ComputeUtil = float64(rep.MACs) / (float64(rep.ComputeCycles) * totalPEs)
	}
	// Intra-CLP scatter/gather traffic: tensors hop ~sqrt(m)/2 links,
	// plus the per-engine weight broadcast volume.
	hops := int64(math.Sqrt(float64(m))/2 + 1)
	rep.NoCByteHops = int64(batch) * (totalDRAM*hops/2 + totalWeightHops)
	rep.OnChipReuseRatio = 0 // every inter-layer tensor crosses DRAM

	rep.Energy.AddMACs(cfg.Energy, rep.MACs)
	rep.Energy.AddDRAM(cfg.Energy, rep.DRAMReadBytes+rep.DRAMWriteBytes)
	rep.Energy.AddSRAM(cfg.Energy, int64(batch)*totalSRAM/2, int64(batch)*totalSRAM/2)
	rep.Energy.AddNoC(cfg.Energy, rep.NoCByteHops)
	rep.Energy.AddStatic(cfg.Energy, cycles*int64(n))
	return rep
}

// outputBytes sums the DRAM write side (each layer's ofmap) of all units.
func outputBytes(units []*graph.Layer, bounds []int, k int) int64 {
	var t int64
	for j := 0; j < k; j++ {
		for i := bounds[j]; i < bounds[j+1]; i++ {
			t += units[i].OutputBytes()
		}
	}
	return t
}

// balancedPartition splits the unit sequence into k contiguous chunks
// minimizing the maximum chunk weight (compute + DRAM time), via binary
// search over the bottleneck. Returns k+1 chunk boundaries.
func balancedPartition(lt []layerTime, k int, cfg sim.Config, clps int) []int {
	perCLPBW := cfg.DRAM.BytesPerCycle() / float64(clps)
	weight := func(i int) int64 {
		d := int64(float64(lt[i].dramBytes) / perCLPBW)
		if d > lt[i].compute {
			return d
		}
		return lt[i].compute
	}
	var lo, hi int64
	for i := range lt {
		w := weight(i)
		if w > lo {
			lo = w
		}
		hi += w
	}
	fits := func(cap int64) bool {
		chunks, cur := 1, int64(0)
		for i := range lt {
			w := weight(i)
			if cur+w > cap {
				chunks++
				cur = 0
			}
			cur += w
		}
		return chunks <= k
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if fits(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Materialize boundaries for capacity lo.
	bounds := make([]int, 0, k+1)
	bounds = append(bounds, 0)
	cur := int64(0)
	for i := range lt {
		w := weight(i)
		if cur+w > lo && len(bounds) < k {
			bounds = append(bounds, i)
			cur = 0
		}
		cur += w
	}
	for len(bounds) < k {
		bounds = append(bounds, len(lt))
	}
	bounds = append(bounds, len(lt))
	return bounds
}
