package baseline

import (
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Rammer simulates a Rammer-style rTask scheduler (paper Sec. V-D, VI):
// operators are split into even rTasks (the LS partition — Rammer "does
// not discuss how the rTasks are generated") and independent operators
// are co-located onto idle engines by a greedy DAG packer. Unlike atomic
// dataflow it performs no utilization-aware atom sizing and no
// spatial-reuse-aware mapping (rTasks land on whatever engine is free,
// oblivious to where their operands live), so it sits between LS and AD:
// co-location fills idle engines, but task-engine mismatch and blind
// placement remain.
func Rammer(g *graph.Graph, batch int, cfg sim.Config) (sim.Report, error) {
	n := cfg.Mesh.Engines()
	spec, _ := evenSpec(g, n)
	d, err := atom.Build(g, batch, spec)
	if err != nil {
		return sim.Report{}, err
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: n, Mode: schedule.Greedy,
		EngineCfg: cfg.Engine, Dataflow: cfg.Dataflow, Oracle: cfg.Oracle,
	})
	if err != nil {
		return sim.Report{}, err
	}
	naive := cfg
	naive.NaiveMapping = true
	return sim.Run(d, s, naive)
}
