// Package baseline implements the orchestration strategies the paper
// compares against atomic dataflow (Sec. II-B, V-A):
//
//   - LS — Layer-Sequential: one layer at a time, evenly partitioned
//     across all engines, enhanced with multi-sample co-mapping for batch
//     workloads (as the paper's strengthened baseline).
//   - CNNP — CNN-Partition [Shen et al.]: engines clustered into CLPs, each
//     CLP owns a contiguous layer range, images pipeline through segments,
//     every CLP streams ifmaps/weights/ofmaps through DRAM.
//   - ILPipe — Inter-Layer Pipelining [Tangram]: engines partitioned
//     proportionally to per-stage compute, cascaded layers mapped to
//     adjacent regions, intermediate tensors forwarded on-chip, enhanced
//     with ALLO fine-grained pipelining that halves fill/drain delay.
//   - Rammer — rTask-style co-location (Sec. V-D): independent operators
//     packed onto idle engines like AD, but with no utilization-aware atom
//     sizing, no spatial-reuse-aware mapping and no inter-engine buffering.
//
// LS and Rammer plug into the same atomic-DAG buffer manager and
// event-driven simulator as atomic dataflow; CNN-P and IL-Pipe, whose
// execution models are segment/stage pipelines rather than Rounds, have
// dedicated analytic simulators built on the same engine/DRAM/NoC/energy
// substrates.
package baseline

import (
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
)

// evenSplit partitions a layer into at most n tiles, splitting the output
// H dimension first, then W, then channels — the layer-sequential strategy
// of TETRIS/Neurocube the paper's LS baseline models. The returned tile
// count is the number of engines the layer can actually occupy.
func evenSplit(l *graph.Layer, n int) (atom.Partition, int) {
	s := l.Shape
	nH := minInt(s.Ho, n)
	nW := minInt(s.Wo, n/nH)
	if nW < 1 {
		nW = 1
	}
	nC := minInt(s.Co, n/(nH*nW))
	if nC < 1 {
		nC = 1
	}
	p := atom.Partition{
		Hp:  ceilDiv(s.Ho, nH),
		Wp:  ceilDiv(s.Wo, nW),
		Cop: ceilDiv(s.Co, nC),
	}
	return p, p.Tiles(l)
}

// evenSpec builds the even-partition Spec for every non-virtual layer and
// returns per-layer tile counts.
func evenSpec(g *graph.Graph, n int) (atom.Spec, map[int]int) {
	spec := make(atom.Spec)
	tiles := make(map[int]int)
	for _, l := range g.Layers {
		if l.Kind == graph.OpInput || l.Kind == graph.OpConcat {
			continue
		}
		p, tc := evenSplit(l, n)
		spec[l.ID] = p
		tiles[l.ID] = tc
	}
	return spec, tiles
}

// layerEngineCycles prices one layer evenly split across n engines:
// the slowest tile's cycles (tiles run concurrently, one wave).
func layerEngineCycles(orc cost.Oracle, l *graph.Layer, cfg engine.Config, df engine.Dataflow, n int) int64 {
	p, tiles := evenSplit(l, n)
	t := engine.Task{Kind: l.Kind, Hp: p.Hp, Wp: p.Wp, Ci: l.Shape.Ci, Cop: p.Cop,
		Kh: l.Shape.Kh, Kw: l.Shape.Kw, Stride: l.Shape.Stride}
	if l.Kind == graph.OpDepthwiseConv {
		t.Ci = 1
	}
	c := orc.Evaluate(cfg, df, t)
	waves := ceilDiv(tiles, n)
	return c.Cycles * int64(waves)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
