package baseline

import (
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

func smallHW() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mesh = noc.NewMesh(4, 4, 32)
	return cfg
}

func TestEvenSplitBounds(t *testing.T) {
	g := models.MustBuild("resnet50")
	for _, lid := range g.ComputeLayers() {
		l := g.Layer(lid)
		for _, n := range []int{1, 4, 16, 64, 256} {
			p, tiles := evenSplit(l, n)
			if err := p.Validate(l); err != nil {
				t.Fatalf("%s n=%d: %v", l.Name, n, err)
			}
			if tiles > n && tiles > l.Shape.Ho*l.Shape.Wo*l.Shape.Co {
				t.Errorf("%s n=%d: %d tiles", l.Name, n, tiles)
			}
		}
	}
}

func TestEvenSplitPrefersSpatial(t *testing.T) {
	g := graph.New("s")
	in := g.AddLayer("input", graph.OpInput, graph.Shape{Ho: 56, Wo: 56, Co: 256})
	c := g.AddLayer("c", graph.OpConv, graph.ConvShape(56, 56, 64, 256, 3, 1, 1), in)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	p, tiles := evenSplit(g.Layer(c), 64)
	if p.Cop != 256 {
		t.Errorf("even split should not cut channels first: %+v", p)
	}
	if tiles > 64 {
		t.Errorf("tiles = %d > 64", tiles)
	}
}

func TestLSScheduleIsLayerSequential(t *testing.T) {
	g := models.MustBuild("tinybranch")
	cfg := smallHW()
	d, s, err := LSSchedule(g, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Within a round, exactly one layer may appear (LS never co-schedules
	// different layers).
	for i, r := range s.Rounds {
		layers := make(map[int]bool)
		for _, id := range r.Atoms {
			layers[d.Atoms[id].Layer] = true
		}
		if len(layers) != 1 {
			t.Errorf("round %d mixes %d layers", i, len(layers))
		}
	}
	// Layer order must be non-decreasing in topological position.
	lastPos := -1
	pos := map[int]int{}
	for i, lid := range g.Topo() {
		pos[lid] = i
	}
	for _, r := range s.Rounds {
		p := pos[d.Atoms[r.Atoms[0]].Layer]
		if p < lastPos {
			t.Fatalf("layer order regressed")
		}
		lastPos = p
	}
}

func TestLSBatchCoMapping(t *testing.T) {
	// With 64 engines, the tiny model's narrow layers (global pool, FC)
	// cannot fill the chip alone, so enhanced LS must co-map samples.
	g := models.MustBuild("tinyconv")
	cfg := sim.DefaultConfig()
	d, s, err := LSSchedule(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := false
	for _, r := range s.Rounds {
		samples := map[int]bool{}
		for _, id := range r.Atoms {
			samples[d.Atoms[id].Sample] = true
		}
		if len(samples) > 1 {
			mixed = true
		}
	}
	if !mixed {
		t.Error("enhanced LS never co-mapped samples")
	}
}

func TestLayerUtilizationRange(t *testing.T) {
	cfg := engine.Default()
	for _, name := range models.Fig2Workloads {
		g := models.MustBuild(name)
		perLayer, avg := LayerUtilization(nil, g, cfg, engine.KCPartition, 64)
		if len(perLayer) != len(g.ComputeLayers()) {
			t.Fatalf("%s: %d utils for %d layers", name, len(perLayer), len(g.ComputeLayers()))
		}
		for _, u := range perLayer {
			if u < 0 || u > 1 {
				t.Fatalf("%s: utilization %v out of range", name, u)
			}
		}
		// Fig. 2's core claim: naive LS leaves most of the array idle.
		if avg > 0.45 {
			t.Errorf("%s: naive LS average utilization %.2f, want < 0.45 (Fig. 2)", name, avg)
		}
		if avg <= 0 {
			t.Errorf("%s: zero utilization", name)
		}
	}
}

func TestAllBaselinesRun(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := smallHW()
	for name, run := range map[string]func(*graph.Graph, int, sim.Config) (sim.Report, error){
		"LS": LS, "CNNP": CNNP, "ILPipe": ILPipe, "Rammer": Rammer,
	} {
		rep, err := run(g, 2, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Cycles <= 0 || rep.MACs <= 0 {
			t.Errorf("%s: degenerate report %+v", name, rep)
		}
		if rep.PEUtilization <= 0 || rep.PEUtilization > 1 {
			t.Errorf("%s: utilization %v", name, rep.PEUtilization)
		}
		if rep.Energy.TotalPJ() <= 0 {
			t.Errorf("%s: no energy", name)
		}
	}
}

func TestCNNPEqualsLSAtBatch1(t *testing.T) {
	g := models.MustBuild("tinyresnet")
	cfg := smallHW()
	ls, err := LS(g, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CNNP(g, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Cycles != cp.Cycles {
		t.Errorf("CNN-P batch-1 cycles %d != LS %d (paper: identical mapping)", cp.Cycles, ls.Cycles)
	}
}

func TestCNNPBeatsLSOnThroughput(t *testing.T) {
	g := models.MustBuild("resnet50")
	cfg := sim.DefaultConfig()
	ls, err := LS(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CNNP(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycles >= ls.Cycles {
		t.Errorf("CNN-P batch cycles %d >= LS %d (paper Fig. 9: CNN-P exceeds LS)", cp.Cycles, ls.Cycles)
	}
}

func TestILPipePipelineEconomics(t *testing.T) {
	g := models.MustBuild("resnet50")
	cfg := sim.DefaultConfig()
	b1, err := ILPipe(g, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b16, err := ILPipe(g, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline amortizes fill: 16 samples must cost far less than 16x.
	if b16.Cycles >= 10*b1.Cycles {
		t.Errorf("IL-Pipe batch-16 %d vs batch-1 %d: no pipelining benefit", b16.Cycles, b1.Cycles)
	}
	// IL-Pipe's reuse ratio must be high (its design goal).
	if b16.OnChipReuseRatio < 0.8 {
		t.Errorf("IL-Pipe reuse = %.2f, want >= 0.8", b16.OnChipReuseRatio)
	}
}

func TestILPipeDRAMAdvantage(t *testing.T) {
	// IL-Pipe's design goal is fewer DRAM bytes than CNN-P (which
	// round-trips every tensor).
	g := models.MustBuild("resnet50")
	cfg := sim.DefaultConfig()
	il, err := ILPipe(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CNNP(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ilBytes := il.DRAMReadBytes + il.DRAMWriteBytes
	cpBytes := cp.DRAMReadBytes + cp.DRAMWriteBytes
	if ilBytes >= cpBytes {
		t.Errorf("IL-Pipe DRAM %d >= CNN-P %d", ilBytes, cpBytes)
	}
}

func TestRammerCoLocationBeatsLS(t *testing.T) {
	// On a branchy model with a batch, Rammer's greedy co-location packs
	// independent rTasks that LS leaves serialized.
	g := models.MustBuild("tinybranch")
	cfg := smallHW()
	r, err := Rammer(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LS(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Co-location compresses the schedule: independent rTasks share
	// Rounds that LS serializes. (It does not always win end-to-end in a
	// barrier-synchronized model — mixing unbalanced rTasks inflates the
	// Round maximum, which is exactly the imbalance SA eliminates.)
	if r.Rounds >= ls.Rounds {
		t.Errorf("Rammer rounds %d >= LS %d (co-location should compress)", r.Rounds, ls.Rounds)
	}
	// Rammer's placement is reuse-oblivious: its NoC traffic travels at
	// least as many byte-hops as LS's aligned zig-zag placement.
	if r.NoCByteHops < ls.NoCByteHops/2 {
		t.Errorf("Rammer byte-hops %d suspiciously low vs LS %d", r.NoCByteHops, ls.NoCByteHops)
	}
}

func TestBalancedPartitionInvariants(t *testing.T) {
	lt := make([]layerTime, 10)
	for i := range lt {
		lt[i] = layerTime{compute: int64(100 * (i + 1)), dramBytes: 100}
	}
	cfg := sim.DefaultConfig()
	for _, k := range []int{1, 2, 3, 5, 10} {
		b := balancedPartition(lt, k, cfg, k)
		if len(b) != k+1 || b[0] != 0 || b[k] != len(lt) {
			t.Fatalf("k=%d: bad bounds %v", k, b)
		}
		for j := 0; j < k; j++ {
			if b[j+1] < b[j] {
				t.Fatalf("k=%d: decreasing bounds %v", k, b)
			}
		}
	}
}

func TestMacBalancedBoundsNonEmpty(t *testing.T) {
	units := scheduleUnits(models.MustBuild("resnet50"))
	for _, s := range []int{2, 7, 31, 64, len(units)} {
		b := macBalancedBounds(units, s)
		if len(b) != s+1 {
			t.Fatalf("s=%d: %d bounds", s, len(b))
		}
		for j := 0; j < s; j++ {
			if b[j+1] <= b[j] {
				t.Fatalf("s=%d: empty stage %d in %v", s, j, b)
			}
		}
	}
}

func TestAllocEnginesSumsToN(t *testing.T) {
	units := scheduleUnits(models.MustBuild("inceptionv3"))
	for _, s := range []int{2, 8, 32} {
		bounds := macBalancedBounds(units, s)
		alloc := allocEngines(units, bounds, s, 64)
		total := 0
		for _, a := range alloc {
			if a < 1 {
				t.Fatalf("s=%d: stage with %d engines", s, a)
			}
			total += a
		}
		if total != 64 {
			t.Fatalf("s=%d: engines sum to %d", s, total)
		}
	}
}
