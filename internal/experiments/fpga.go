package experiments

import (
	"github.com/atomic-dataflow/atomicflow/internal/baseline"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/energy"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// FPGARow is one (workload, strategy) frame-rate measurement on the
// prototype configuration.
type FPGARow struct {
	Workload string
	Strategy string
	FPS      float64
	TimeMS   float64
}

// FPGAConfig returns the Sec. V-D prototype hardware: 2x2 engines, each
// with 32x32 INT8 MACs at 600 MHz. The per-engine buffer follows the
// paper's synthesis table (Fig. 14a: 269.5 BRAM tiles ~= 1.2 MB per
// engine) and the board memory is DDR4-class. (The paper's HAPS board is
// simulated with the prototype's parameters; the paper itself reports
// that its simulated and measured improvements agree.)
func FPGAConfig() sim.Config {
	eng := engine.Config{
		PEx: 32, PEy: 32, VectorLanes: 32,
		BufferBytes: 1 << 20, PortBytes: 16,
		FreqMHz: 600, MACsPerPE: 1,
	}
	d := dram.Default()
	d.EngineClockMHz = 600
	d.PeakGBps = 25.6 // DDR4-3200 board memory rather than HBM
	d.Channels = 2
	return sim.Config{
		Mesh:         noc.NewMesh(2, 2, 16),
		Engine:       eng,
		Dataflow:     engine.KCPartition,
		DRAM:         d,
		Energy:       energy.Default(),
		DoubleBuffer: true,
	}
}

// FPGA reproduces the Sec. V-D prototype measurements: VGG at
// 49.2/57.9/64.3 fps and ResNet-50 at 156.2/194.4/223.9 fps for
// LS/Rammer/AD. The quantity to match is the ordering and the relative
// improvement of AD over LS (~1.3-1.4x).
func FPGA(cfg Config) ([]FPGARow, error) {
	hw := FPGAConfig()
	if cfg.HW != nil {
		hw = *cfg.HW
	}
	if cfg.SerialSim {
		hw.Pipeline = false
	}
	batch := cfg.batch(8) // frame-rate measurement streams images
	var rows []FPGARow
	cfg.printf("FPGA prototype (Sec V-D) — 2x2 engines, 32x32 MACs, 600 MHz\n")
	for _, name := range cfg.workloads([]string{"vgg19", "resnet50"}) {
		g := mustModel(name)
		ls, err := baseline.LS(g, batch, hw)
		if err != nil {
			return nil, err
		}
		rammer, err := baseline.Rammer(g, batch, hw)
		if err != nil {
			return nil, err
		}
		ad, err := runAD(g, batch, hw, cfg.Mode, cfg.search())
		if err != nil {
			return nil, err
		}
		for _, r := range []struct {
			strat string
			rep   sim.Report
		}{{"LS", ls}, {"Rammer", rammer}, {"AD", ad}} {
			fps := float64(batch) / (r.rep.TimeMS / 1e3)
			rows = append(rows, FPGARow{Workload: name, Strategy: r.strat,
				FPS: fps, TimeMS: r.rep.TimeMS})
			cfg.printf("  %-10s %-7s %8.1f fps\n", name, r.strat, fps)
		}
	}
	return rows, nil
}
