package experiments

import (
	"strings"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/schedule"
)

// fast returns a Config that exercises each experiment's full code path
// on a reduced workload set, so the suite stays CI-sized.
func fast(workloads ...string) Config {
	return Config{Workloads: workloads, SAIters: 200, Mode: schedule.Greedy}
}

func find(rows []StrategyResult, workload, strategy, dataflow string) *StrategyResult {
	for i := range rows {
		r := &rows[i]
		if r.Workload == workload && r.Strategy == strategy && r.Dataflow == dataflow {
			return r
		}
	}
	return nil
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		// The paper's core motivation: naive LS wastes most of the chip
		// (13.5-26.9% average utilization).
		if r.Average <= 0.02 || r.Average > 0.45 {
			t.Errorf("%s: naive LS avg util %.3f outside the under-utilization regime", r.Workload, r.Average)
		}
	}
}

func TestFig5aConcentration(t *testing.T) {
	rows, err := Fig5a(fast("resnet50"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.CV > 0.45 {
		t.Errorf("CV = %.3f, want concentrated (< 0.45)", r.CV)
	}
	// Most atoms must fall in the central bins (0.5x-1.5x of the mean).
	total, central := 0, 0
	for bin, n := range r.Histogram {
		total += n
		if bin >= 2 && bin <= 5 {
			central += n
		}
	}
	if float64(central) < 0.6*float64(total) {
		t.Errorf("only %d/%d atoms within 0.5-1.5x mean", central, total)
	}
}

func TestFig5bSAvsGA(t *testing.T) {
	res, err := Fig5b(fast("resnet50"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SATrace) == 0 || len(res.GATrace) == 0 {
		t.Fatal("missing traces")
	}
	// Paper: SA stops at a variance no worse than GA's.
	if res.SAFinal > res.GAFinal*1.25 {
		t.Errorf("SA final Var %.3g much worse than GA %.3g", res.SAFinal, res.GAFinal)
	}
}

func TestFig8LatencyOrdering(t *testing.T) {
	rows, err := Fig8(fast("resnet50"))
	if err != nil {
		t.Fatal(err)
	}
	for _, df := range []string{"KC-P", "YX-P"} {
		ad := find(rows, "resnet50", "AD", df)
		ls := find(rows, "resnet50", "LS", df)
		il := find(rows, "resnet50", "IL-Pipe", df)
		if ad == nil || ls == nil || il == nil {
			t.Fatalf("%s: missing rows", df)
		}
		if ad.Report.TimeMS >= ls.Report.TimeMS {
			t.Errorf("%s: AD %.2fms not faster than LS %.2fms", df, ad.Report.TimeMS, ls.Report.TimeMS)
		}
		if ad.Report.TimeMS >= il.Report.TimeMS {
			t.Errorf("%s: AD %.2fms not faster than IL-Pipe %.2fms", df, ad.Report.TimeMS, il.Report.TimeMS)
		}
	}
	// Paper's ranges: AD/CNN-P(=LS) in 1.45-2.30x, AD/IL-Pipe 1.42-3.78x.
	// Our simulator lands near these; assert a generous envelope.
	ad := find(rows, "resnet50", "AD", "KC-P").Report.TimeMS
	ls := find(rows, "resnet50", "LS", "KC-P").Report.TimeMS
	if r := ls / ad; r < 1.2 || r > 6 {
		t.Errorf("AD speedup over LS = %.2fx, want within [1.2, 6]", r)
	}
}

func TestFig9ThroughputOrdering(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 8
	rows, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad := find(rows, "resnet50", "AD", "KC-P")
	cp := find(rows, "resnet50", "CNN-P", "KC-P")
	ls := find(rows, "resnet50", "LS", "KC-P")
	if ad.Report.TimeMS >= cp.Report.TimeMS {
		t.Errorf("AD %.2fms not faster than CNN-P %.2fms", ad.Report.TimeMS, cp.Report.TimeMS)
	}
	// Paper: CNN-P exceeds LS in all throughput cases.
	if cp.Report.TimeMS >= ls.Report.TimeMS {
		t.Errorf("CNN-P %.2fms not faster than LS %.2fms", cp.Report.TimeMS, ls.Report.TimeMS)
	}
}

func TestFig10StagesHelp(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 2
	rows, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TotalGain <= 1 {
		t.Errorf("total gain %.2fx, want > 1", r.TotalGain)
	}
	// Each stage must not hurt (small tolerance for interaction noise).
	for name, gain := range map[string]float64{"SA": r.SAGain, "reuse": r.ReuseGain, "DP": r.DPGain} {
		if gain < 0.95 {
			t.Errorf("stage %s gain %.2fx, want >= 0.95", name, gain)
		}
	}
	// On-chip reuse is a first-order effect in this simulator.
	if r.ReuseGain <= 1.0 {
		t.Errorf("reuse gain %.2fx, want > 1", r.ReuseGain)
	}
}

func TestFig11EnergyOrdering(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 4
	rows, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad := find(rows, "resnet50", "AD", "KC-P").Report.Energy.TotalMJ()
	ls := find(rows, "resnet50", "LS", "KC-P").Report.Energy.TotalMJ()
	cp := find(rows, "resnet50", "CNN-P", "KC-P").Report.Energy.TotalMJ()
	// Paper Fig 11: AD among the most energy-efficient; LS and CNN-P
	// worse (they round-trip tensors through DRAM).
	if ad >= ls || ad >= cp {
		t.Errorf("AD energy %.1f mJ not below LS %.1f / CNN-P %.1f", ad, ls, cp)
	}
}

func TestFig12UShape(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 1
	rows, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := SweetSpot(rows, "resnet50", 1)
	// Paper: the sweet spot is an intermediate grid (4x4-8x8), never the
	// monolithic array and never the finest slicing.
	if grid <= 1 || grid >= 16 {
		t.Errorf("sweet spot at %dx%d, want intermediate", grid, grid)
	}
	// Monolithic must lose to the sweet spot by a real margin.
	var mono, best float64
	for _, p := range rows {
		if p.Batch != 1 {
			continue
		}
		if p.Grid == 1 {
			mono = p.TimeMS
		}
		if p.Grid == grid {
			best = p.TimeMS
		}
	}
	if mono <= best {
		t.Errorf("monolithic %.2fms not slower than sweet spot %.2fms", mono, best)
	}
}

func TestFig13DiminishingReturns(t *testing.T) {
	cfg := fast("resnet50")
	rows, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKB := map[int]float64{}
	for _, p := range rows {
		byKB[p.BufferKB] = p.TimeMS
	}
	// Bigger buffers help overall...
	if byKB[512] > byKB[32]*1.02 {
		t.Errorf("512KB (%.2fms) worse than 32KB (%.2fms)", byKB[512], byKB[32])
	}
	// ...but the 128->512KB gain is smaller than the 32->128KB gain
	// (paper: growth slows beyond 128 KB).
	gainSmall := byKB[32] - byKB[128]
	gainLarge := byKB[128] - byKB[512]
	if gainLarge > gainSmall+0.01 {
		t.Errorf("late gain %.3fms exceeds early gain %.3fms; no flattening", gainLarge, gainSmall)
	}
}

func TestTable1Characterization(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Out: &sb}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.ParamsMillions <= 0 || r.GMACs <= 0 || r.Characteristic == "" {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if !strings.Contains(sb.String(), "resnet1001") {
		t.Error("printed table missing resnet1001")
	}
}

func TestTable2ADWins(t *testing.T) {
	cfg := fast("resnet50", "vgg19")
	cfg.Batch = 8
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ad := r.ComputeUtil["AD"]
		for _, strat := range []string{"LS", "CNN-P", "IL-Pipe"} {
			if ad <= r.ComputeUtil[strat] {
				t.Errorf("%s: AD util %.2f not above %s %.2f",
					r.Workload, ad, strat, r.ComputeUtil[strat])
			}
		}
		// Paper: NoC overhead 9.4-17.6%; allow a wider envelope.
		if r.NoCOverheadAD > 0.35 {
			t.Errorf("%s: NoC overhead %.2f too high", r.Workload, r.NoCOverheadAD)
		}
		// Paper: on-chip reuse 54.1-90.8%.
		if r.ReuseRatioAD < 0.4 {
			t.Errorf("%s: reuse ratio %.2f too low", r.Workload, r.ReuseRatioAD)
		}
	}
}

func TestFPGAOrdering(t *testing.T) {
	cfg := fast()
	cfg.Batch = 4
	rows, err := FPGA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fps := map[string]map[string]float64{}
	for _, r := range rows {
		if fps[r.Workload] == nil {
			fps[r.Workload] = map[string]float64{}
		}
		fps[r.Workload][r.Strategy] = r.FPS
	}
	// Paper Sec V-D ordering AD > Rammer > LS reproduces on ResNet-50.
	// On VGG our engine model prices LS's big spatially-split tiles as
	// efficiently as AD's atoms, so with only 4 large engines the three
	// strategies converge (recorded in EXPERIMENTS.md); assert AD stays
	// within a whisker instead of strictly winning.
	w := "resnet50"
	if !(fps[w]["AD"] > fps[w]["Rammer"] && fps[w]["Rammer"] > fps[w]["LS"]) {
		t.Errorf("%s: fps ordering violated: %+v", w, fps[w])
	}
	if r := fps[w]["AD"] / fps[w]["LS"]; r < 1.05 || r > 8 {
		t.Errorf("%s: AD/LS fps ratio %.2f outside [1.05, 8]", w, r)
	}
	if r := fps["vgg19"]["AD"] / fps["vgg19"]["LS"]; r < 0.9 {
		t.Errorf("vgg19: AD/LS fps ratio %.2f collapsed below 0.9", r)
	}
}
