package experiments

import "testing"

func TestTopologiesAblation(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 2
	rows, err := Topologies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byTopo := map[string]TopologyRow{}
	for _, r := range rows {
		byTopo[r.Topology] = r
	}
	// Torus shortens average routes: never more byte-hops than the mesh.
	if byTopo["torus"].ByteHops > byTopo["mesh"].ByteHops {
		t.Errorf("torus byte-hops %d > mesh %d", byTopo["torus"].ByteHops, byTopo["mesh"].ByteHops)
	}
	for _, r := range rows {
		if r.TimeMS <= 0 {
			t.Errorf("%s: no time", r.Topology)
		}
	}
}

func TestMappingAblation(t *testing.T) {
	cfg := fast("resnet50")
	cfg.Batch = 2
	rows, err := MappingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var naive, opt MappingRow
	for _, r := range rows {
		if r.Optimized {
			opt = r
		} else {
			naive = r
		}
	}
	// Optimized mapping must not slow execution, and its weight-affinity
	// refinement must cut DRAM traffic (it trades a few NoC hops for
	// fewer HBM refetches, so raw byte-hops may tick up slightly).
	if opt.TimeMS > naive.TimeMS*1.02 {
		t.Errorf("optimized mapping slower: %.3f vs %.3f ms", opt.TimeMS, naive.TimeMS)
	}
	if opt.DRAMBytes >= naive.DRAMBytes {
		t.Errorf("optimized DRAM %d >= naive %d", opt.DRAMBytes, naive.DRAMBytes)
	}
	if opt.ByteHops > naive.ByteHops*3/2 {
		t.Errorf("optimized byte-hops %d blew past naive %d", opt.ByteHops, naive.ByteHops)
	}
}

func TestLookaheadAblation(t *testing.T) {
	cfg := fast("pnascell")
	cfg.Batch = 4
	rows, err := LookaheadAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Deeper lookahead never worsens the makespan bound badly.
	if float64(rows[3].MakespanLB) > 1.05*float64(rows[0].MakespanLB) {
		t.Errorf("depth-5 makespan %d much worse than depth-1 %d",
			rows[3].MakespanLB, rows[0].MakespanLB)
	}
}
