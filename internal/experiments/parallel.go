package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) on a GOMAXPROCS-sized worker pool and waits for
// all of them. Callers write results into index-addressed slices and print
// after the loop, so sweep output stays in input order regardless of which
// worker finishes first. Per-point work (the seeded SA trajectory, the
// strategy list of a latency/throughput cell, the T0-T3 ablation chain)
// stays sequential inside fn, so parallelism never reorders anything a
// result depends on.
//
// A panic inside fn is caught on the worker, the remaining indices are
// drained without running, and the first panic value is re-raised on the
// caller once every worker has stopped — the same contract a plain
// sequential loop would give, minus the indices that were already in
// flight on other workers.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		panicked  atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicVal = r })
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
