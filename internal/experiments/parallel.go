package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) on a GOMAXPROCS-sized worker pool and waits for
// all of them. Callers write results into index-addressed slices and print
// after the loop, so sweep output stays in input order regardless of which
// worker finishes first. Per-point work (the seeded SA trajectory, the
// strategy list of a latency/throughput cell, the T0-T3 ablation chain)
// stays sequential inside fn, so parallelism never reorders anything a
// result depends on.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
