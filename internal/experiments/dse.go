package experiments

import (
	"math"

	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
)

// Fig12Point is one (workload, engine-count, batch) sample of the
// architectural design-space exploration.
type Fig12Point struct {
	Workload string
	Grid     int // engines per mesh side (grid x grid engines)
	Engines  int
	PEsPer   int // PE-array side per engine
	BufferKB int
	Batch    int
	TimeMS   float64
}

// Fig12Grids lists the engine-grid sides swept by Fig. 12: the total PE
// count (16384) and total buffer (8 MB) stay fixed while the chip is cut
// into 1x1 ... 16x16 engines.
var Fig12Grids = []int{1, 2, 4, 8, 16}

// Fig12 reproduces the engine-count sweep. Paper: all curves are
// U-shaped; the sweet spot falls around 4x4-8x8 engines, and doubling the
// batch does not change the trend.
func Fig12(cfg Config) ([]Fig12Point, error) {
	base := cfg.hw()
	cfg.printf("Fig 12 — scaling engine count at fixed 16384 PEs / 8 MB buffer\n")
	totalPEside := base.Engine.PEx * 8 // 16x16 per engine on the 8x8 default = 128
	totalBuffer := int64(base.Engine.BufferBytes) * 64
	batches := []int{cfg.batch(1), cfg.batch(1) * 2}
	// Enumerate the sweep up front, solve every point on the worker pool
	// (each point is an independent search + simulation), then print in
	// input order.
	var points []Fig12Point
	var bufBytes []int // exact per-point buffer size (BufferKB is display-rounded)
	for _, batch := range batches {
		for _, name := range cfg.workloads(models.PaperWorkloads) {
			for _, grid := range Fig12Grids {
				peSide := totalPEside / grid
				bb := int(totalBuffer / int64(grid*grid))
				points = append(points, Fig12Point{
					Workload: name, Grid: grid, Engines: grid * grid,
					PEsPer: peSide, BufferKB: bb >> 10, Batch: batch,
				})
				bufBytes = append(bufBytes, bb)
			}
		}
	}
	errs := make([]error, len(points))
	forEach(len(points), func(i int) {
		p := &points[i]
		g := mustModel(p.Workload)
		hw := base
		hw.Mesh = noc.NewMesh(p.Grid, p.Grid, base.Mesh.LinkBytes)
		hw.Engine.PEx, hw.Engine.PEy = p.PEsPer, p.PEsPer
		hw.Engine.BufferBytes = bufBytes[i]
		hw.BufferBytes = int64(hw.Engine.BufferBytes)
		rep, err := runAD(g, p.Batch, hw, cfg.Mode, cfg.search())
		if err != nil {
			errs[i] = err
			return
		}
		p.TimeMS = rep.TimeMS
	})
	for i, p := range points {
		if errs[i] != nil {
			return nil, errs[i]
		}
		cfg.printf("  %-14s b%-2d %2dx%-2d engines (%3dx%-3d PEs, %4d KB): %9.3f ms\n",
			p.Workload, p.Batch, p.Grid, p.Grid, p.PEsPer, p.PEsPer, p.BufferKB, p.TimeMS)
	}
	return points, nil
}

// SweetSpot returns the grid side minimizing time for one workload/batch
// within a Fig12 result set.
func SweetSpot(points []Fig12Point, workload string, batch int) (grid int, timeMS float64) {
	timeMS = math.MaxFloat64
	for _, p := range points {
		if p.Workload == workload && p.Batch == batch && p.TimeMS < timeMS {
			grid, timeMS = p.Grid, p.TimeMS
		}
	}
	return grid, timeMS
}

// Fig13Point is one (workload, buffer size) sample.
type Fig13Point struct {
	Workload string
	BufferKB int
	TimeMS   float64
}

// Fig13Buffers lists the per-engine buffer capacities swept by Fig. 13.
var Fig13Buffers = []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}

// Fig13 reproduces the buffer-size sweep on the 8x8-engine chip. Paper:
// performance improves with buffer size but the gains flatten beyond
// 128 KB per engine.
func Fig13(cfg Config) ([]Fig13Point, error) {
	base := cfg.hw()
	cfg.printf("Fig 13 — scaling per-engine buffer size\n")
	// Independent (workload, buffer) points: solve on the worker pool,
	// print in input order.
	var points []Fig13Point
	var bufBytes []int
	for _, name := range cfg.workloads(models.PaperWorkloads) {
		for _, buf := range Fig13Buffers {
			points = append(points, Fig13Point{Workload: name, BufferKB: buf >> 10})
			bufBytes = append(bufBytes, buf)
		}
	}
	errs := make([]error, len(points))
	forEach(len(points), func(i int) {
		p := &points[i]
		g := mustModel(p.Workload)
		hw := base
		hw.Engine.BufferBytes = bufBytes[i]
		hw.BufferBytes = int64(bufBytes[i])
		rep, err := runAD(g, cfg.batch(1), hw, cfg.Mode, cfg.search())
		if err != nil {
			errs[i] = err
			return
		}
		p.TimeMS = rep.TimeMS
	})
	for i, p := range points {
		if errs[i] != nil {
			return nil, errs[i]
		}
		cfg.printf("  %-14s %4d KB: %9.3f ms\n", p.Workload, p.BufferKB, p.TimeMS)
	}
	return points, nil
}
