package experiments

import (
	"github.com/atomic-dataflow/atomicflow/internal/baseline"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Table1Row characterizes one workload (paper Table I). Layer counts
// differ from the paper's because BatchNorm/activations are fused in our
// graphs (see internal/models); the structure column and parameter counts
// are directly comparable.
type Table1Row struct {
	Workload       string
	Layers         int
	ComputeLayers  int
	ParamsMillions float64
	GMACs          float64
	Depth          int
	Characteristic string
}

var characteristics = map[string]string{
	"vgg19":        "layer cascaded",
	"resnet50":     "residual bypass",
	"resnet152":    "residual bypass",
	"resnet1001":   "residual bypass",
	"inceptionv3":  "branching cells",
	"nasnet":       "NAS-generated",
	"pnasnet":      "NAS-generated",
	"efficientnet": "NAS-generated",
}

// Table1 reproduces the workload characterization table.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	cfg.printf("Table I — DNN workload characterization\n")
	cfg.printf("  %-14s %7s %8s %9s %8s %6s  %s\n",
		"model", "layers", "compute", "params", "GMACs", "depth", "structure")
	for _, name := range cfg.workloads(models.PaperWorkloads) {
		g := mustModel(name)
		row := Table1Row{
			Workload:       name,
			Layers:         g.NumLayers(),
			ComputeLayers:  len(g.ComputeLayers()),
			ParamsMillions: float64(g.TotalParams()) / 1e6,
			GMACs:          float64(g.TotalMACs()) / 1e9,
			Depth:          g.MaxDepth(),
			Characteristic: characteristics[name],
		}
		rows = append(rows, row)
		cfg.printf("  %-14s %7d %8d %8.1fM %8.1f %6d  %s\n",
			name, row.Layers, row.ComputeLayers, row.ParamsMillions, row.GMACs,
			row.Depth, row.Characteristic)
	}
	return rows, nil
}

// Table2Row is one workload column of the paper's Table II.
type Table2Row struct {
	Workload string
	// ComputeUtil holds PE utilization without memory delay per strategy
	// (LS, CNN-P, IL-Pipe, AD), batch 20.
	ComputeUtil map[string]float64
	// NoCOverheadAD is the fraction of AD's total time blocked on the NoC.
	NoCOverheadAD float64
	// ReuseRatioAD is AD's on-chip data reuse ratio.
	ReuseRatioAD float64
}

// Table2 reproduces Table II: (1) PE utilization averaged without memory
// access delay at batch 20 for the four strategies (paper: AD 78.8-95.0%,
// always the highest) and (2) AD's NoC overhead (9.4-17.6%) and on-chip
// reuse ratio (54.1-90.8%).
func Table2(cfg Config) ([]Table2Row, error) {
	hw := cfg.hw()
	batch := cfg.batch(20)
	var rows []Table2Row
	cfg.printf("Table II — PE utilization w/o memory delay (batch=%d), NoC overhead, reuse\n", batch)
	cfg.printf("  %-14s %6s %6s %6s %6s %8s %8s\n",
		"model", "LS", "CNN-P", "ILPipe", "AD", "NoC(AD)", "reuse(AD)")
	for _, name := range cfg.workloads(models.PaperWorkloads) {
		g := mustModel(name)
		row := Table2Row{Workload: name, ComputeUtil: make(map[string]float64)}

		type runner func(*graph.Graph, int, sim.Config) (sim.Report, error)
		for strat, run := range map[string]runner{
			"LS": baseline.LS, "CNN-P": baseline.CNNP, "IL-Pipe": baseline.ILPipe,
		} {
			rep, err := run(g, batch, hw)
			if err != nil {
				return nil, err
			}
			row.ComputeUtil[strat] = rep.ComputeUtil
		}
		ad, err := runAD(g, batch, hw, cfg.Mode, cfg.search())
		if err != nil {
			return nil, err
		}
		row.ComputeUtil["AD"] = ad.ComputeUtil
		row.NoCOverheadAD = ad.NoCOverheadFraction()
		row.ReuseRatioAD = ad.OnChipReuseRatio

		rows = append(rows, row)
		cfg.printf("  %-14s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %7.1f%% %7.1f%%\n",
			name, 100*row.ComputeUtil["LS"], 100*row.ComputeUtil["CNN-P"],
			100*row.ComputeUtil["IL-Pipe"], 100*row.ComputeUtil["AD"],
			100*row.NoCOverheadAD, 100*row.ReuseRatioAD)
	}
	return rows, nil
}
