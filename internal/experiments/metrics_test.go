package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/atomic-dataflow/atomicflow/internal/obs"
)

// TestFig8Metrics runs a small fig8-style comparison with a registry
// installed and checks the acceptance quantities — engine utilization,
// link traffic, DRAM row hits, barrier waits — come out non-zero through
// both exporters.
func TestFig8Metrics(t *testing.T) {
	reg := obs.New()
	cfg := Config{
		Workloads: []string{"tinyresnet"},
		SAIters:   60,
		Metrics:   reg,
	}
	if _, err := Fig8(cfg); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		obs.Name("sim_engine_busy_cycles", "engine", 0),
		"noc_link_bytes_total",
		"dram_row_hits_total",
		"anneal_iterations_total",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	if snap.Gauge("sim_pe_utilization") == 0 {
		t.Error("sim_pe_utilization = 0, want > 0")
	}
	bw, ok := snap.Histograms["sim_barrier_wait_cycles"]
	if !ok || bw.Count == 0 {
		t.Errorf("sim_barrier_wait_cycles empty: %+v", bw)
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sim_engine_busy_cycles{engine="0"}`,
		"noc_link_bytes_total",
		"dram_row_hits_total",
		"sim_barrier_wait_cycles_count",
		"# TYPE sim_barrier_wait_cycles histogram",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	var js bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded obs.Snapshot
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON exporter produced invalid JSON: %v", err)
	}
	if decoded.Counter("noc_link_bytes_total") != snap.Counter("noc_link_bytes_total") {
		t.Error("JSON round-trip diverged from snapshot")
	}
}
