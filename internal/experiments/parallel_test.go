package experiments

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachPanic mirrors the anneal pool's contract: a panicking sweep
// point is re-raised on the caller after the pool drains, and remaining
// indices are skipped instead of printing partial rows below a corrupt one.
func TestForEachPanic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer func() {
		if r := recover(); r != "point 5" {
			t.Fatalf("recovered %v, want the sweep point's panic value", r)
		}
	}()
	forEach(32, func(i int) {
		if i == 5 {
			panic("point 5")
		}
	})
	t.Fatal("forEach returned normally despite a panicking point")
}

// TestForEachCompletes pins the no-panic baseline: every index exactly once.
func TestForEachCompletes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	hits := make([]atomic.Int32, 64)
	forEach(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, n)
		}
	}
}
