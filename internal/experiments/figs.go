package experiments

import (
	"fmt"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/baseline"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Fig2Row is the per-workload result of the Fig. 2 experiment: layer-wise
// PE utilization of the naive LS strategy (each layer evenly partitioned
// across all engines), communication excluded.
type Fig2Row struct {
	Workload string
	PerLayer []float64
	Average  float64
}

// Fig2 reproduces the paper's Fig. 2 (paper averages: ResNet-50 26.91%,
// Inception-v3 17.48%, NasNet 18.34%, EfficientNet 13.53%).
func Fig2(cfg Config) ([]Fig2Row, error) {
	hw := cfg.hw()
	names := cfg.workloads(models.Fig2Workloads)
	rows := make([]Fig2Row, len(names))
	forEach(len(names), func(i int) {
		g := mustModel(names[i])
		perLayer, avg := baseline.LayerUtilization(hw.Oracle, g, hw.Engine, hw.Dataflow, hw.Mesh.Engines())
		rows[i] = Fig2Row{Workload: names[i], PerLayer: perLayer, Average: avg}
	})
	cfg.printf("Fig 2 — naive LS layer-wise PE utilization (no communication)\n")
	for _, row := range rows {
		cfg.printf("  %-14s avg %.2f%% over %d layers\n", row.Workload, 100*row.Average, len(row.PerLayer))
	}
	return rows, nil
}

// Fig5aRow holds the atom-cycle histogram of one workload after SA.
type Fig5aRow struct {
	Workload  string
	MeanCycle float64
	CV        float64
	// Histogram buckets cycles/mean into 0.25-wide bins; Histogram[i]
	// counts atoms in [0.25i, 0.25(i+1)) x mean.
	Histogram map[int]int
}

// Fig5a reproduces the atom execution-cycle distributions of Fig. 5(a):
// after SA, most atom cycles concentrate in one region.
func Fig5a(cfg Config) ([]Fig5aRow, error) {
	hw := cfg.hw()
	names := cfg.workloads(models.Fig2Workloads)
	rows := make([]Fig5aRow, len(names))
	forEach(len(names), func(i int) {
		g := mustModel(names[i])
		res := anneal.SA(g, hw.Engine, hw.Dataflow,
			cfg.search().anneal(hw))
		row := Fig5aRow{Workload: names[i], MeanCycle: res.MeanCycle, CV: res.FinalCV,
			Histogram: make(map[int]int)}
		for lid, cyc := range res.LayerCycles {
			tiles := res.Spec[lid].Tiles(g.Layer(lid))
			bin := int(float64(cyc) / res.MeanCycle / 0.25)
			row.Histogram[bin] += tiles
		}
		rows[i] = row
	})
	cfg.printf("Fig 5a — distribution of atom execution cycles after SA\n")
	for _, row := range rows {
		cfg.printf("  %-14s mean %.0f cycles, CV %.3f, histogram %v\n",
			row.Workload, row.MeanCycle, row.CV, row.Histogram)
	}
	return rows, nil
}

// Fig5bResult holds the SA and GA convergence traces.
type Fig5bResult struct {
	Workload         string
	SATrace, GATrace []float64
	SAFinal, GAFinal float64
	SAIters, GAIters int
}

// Fig5b reproduces Fig. 5(b): SA converges faster and to a lower variance
// than GA; GA's trace shows mutation-driven rises.
func Fig5b(cfg Config) (Fig5bResult, error) {
	hw := cfg.hw()
	name := "resnet50"
	if w := cfg.workloads(nil); len(w) > 0 {
		name = w[0]
	}
	g := mustModel(name)
	opt := cfg.search().anneal(hw)
	sa := anneal.SA(g, hw.Engine, hw.Dataflow, opt)
	ga := anneal.GA(g, hw.Engine, hw.Dataflow, anneal.GAOptions{Options: opt})
	res := Fig5bResult{
		Workload: name,
		SATrace:  sa.Trace, GATrace: ga.Trace,
		SAFinal: sa.FinalVar, GAFinal: ga.FinalVar,
		SAIters: sa.Iters, GAIters: ga.Iters,
	}
	cfg.printf("Fig 5b — convergence on %s: SA final Var %.3g (%d iters), GA final Var %.3g (%d gens)\n",
		name, res.SAFinal, res.SAIters, res.GAFinal, res.GAIters)
	return res, nil
}

// StrategyResult is one (workload, strategy) cell of Figs. 8, 9 and 11.
type StrategyResult struct {
	Workload string
	Strategy string
	Dataflow string
	Report   sim.Report
}

// latencyStrategies lists the Fig. 8 competitors. CNN-P is omitted because
// at batch 1 it degenerates to LS, exactly as in the paper.
var latencyStrategies = []string{"LS", "IL-Pipe", "AD"}

// Fig8 reproduces the inference-latency comparison (batch 1) under both
// KC-Partition and YX-Partition. Paper: AD beats CNN-P(=LS) by 1.45-2.30x
// and IL-Pipe by 1.42-3.78x.
func Fig8(cfg Config) ([]StrategyResult, error) {
	return latencyThroughput(cfg, cfg.batch(1), latencyStrategies, "Fig 8 — inference latency (batch=1)")
}

// throughputStrategies lists the Fig. 9/11 competitors.
var throughputStrategies = []string{"LS", "CNN-P", "IL-Pipe", "AD"}

// Fig9 reproduces the throughput comparison at batch 20. Paper: AD beats
// CNN-P by 1.12-1.38x (KC-P) and 1.08-1.42x (YX-P); CNN-P exceeds LS.
func Fig9(cfg Config) ([]StrategyResult, error) {
	return latencyThroughput(cfg, cfg.batch(20), throughputStrategies, "Fig 9 — throughput (batch=20)")
}

// Fig11 reproduces the energy comparison at batch 20 (paper: IL-Pipe and
// AD are the most energy-efficient strategies). It reuses the Fig. 9 runs
// and reports the energy side of the same reports.
func Fig11(cfg Config) ([]StrategyResult, error) {
	rows, err := latencyThroughput(cfg, cfg.batch(20), throughputStrategies, "Fig 11 — energy (batch=20)")
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.Dataflow != engine.KCPartition.String() {
			continue
		}
		cfg.printf("  %-14s %-8s %8.2f mJ (MAC %.1f SRAM %.1f NoC %.1f DRAM %.1f static %.1f)\n",
			r.Workload, r.Strategy, r.Report.Energy.TotalMJ(),
			r.Report.Energy.MAC/1e9, r.Report.Energy.SRAM/1e9, r.Report.Energy.NoC/1e9,
			r.Report.Energy.DRAM/1e9, r.Report.Energy.Static/1e9)
	}
	return rows, nil
}

func latencyThroughput(cfg Config, batch int, strategies []string, title string) ([]StrategyResult, error) {
	hw := cfg.hw()
	names := cfg.workloads(models.PaperWorkloads)

	// One sweep point per (dataflow, workload); the strategy list runs
	// sequentially inside a point so strategies on the same workload reuse
	// the cache lines the earlier strategies just priced.
	type point struct {
		df   engine.Dataflow
		name string
	}
	var points []point
	for _, df := range dataflows {
		for _, name := range names {
			points = append(points, point{df, name})
		}
	}
	rows := make([][]StrategyResult, len(points))
	errs := make([]error, len(points))
	forEach(len(points), func(i int) {
		p := points[i]
		pointHW := hw
		pointHW.Dataflow = p.df
		g := mustModel(p.name)
		out := make([]StrategyResult, 0, len(strategies))
		for _, strat := range strategies {
			var rep sim.Report
			var err error
			switch strat {
			case "LS":
				rep, err = baseline.LS(g, batch, pointHW)
			case "CNN-P":
				rep, err = baseline.CNNP(g, batch, pointHW)
			case "IL-Pipe":
				rep, err = baseline.ILPipe(g, batch, pointHW)
			case "AD":
				rep, err = runAD(g, batch, pointHW, cfg.Mode, cfg.search())
			default:
				err = fmt.Errorf("unknown strategy %q", strat)
			}
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s/%v: %w", p.name, strat, p.df, err)
				return
			}
			out = append(out, StrategyResult{
				Workload: p.name, Strategy: strat, Dataflow: p.df.String(), Report: rep,
			})
		}
		rows[i] = out
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	cfg.printf("%s\n", title)
	var flat []StrategyResult
	for i, group := range rows {
		for _, r := range group {
			flat = append(flat, r)
			cfg.printf("  %-5s %-14s %-8s %10.3f ms  util %5.1f%%  %8.1f mJ\n",
				points[i].df, r.Workload, r.Strategy, r.Report.TimeMS,
				100*r.Report.PEUtilization, r.Report.Energy.TotalMJ())
		}
	}
	return flat, nil
}

// Fig10Row is one workload's per-stage improvement breakdown.
type Fig10Row struct {
	Workload   string
	BaseMS     float64 // even-split atoms, layer-wise order, no reuse machinery
	SAGain     float64 // from SA atomic tensor generation (Sec. IV-A)
	DPGain     float64 // from DP-based atomic DAG scheduling (Sec. IV-B)
	ReuseGain  float64 // from mapping + buffering (Sec. IV-C)
	CombinedMS float64
	TotalGain  float64
}

// Fig10 reproduces the per-stage ablation by enabling the paper's three
// techniques cumulatively:
//
//	T0  even-split atoms, strict layer-wise order, no reuse machinery
//	T1  + SA atomic tensor generation (Algorithm 1)
//	T2  + DP graph-level scheduling   (Algorithm 2: flexible atom order)
//	T3  + mapping and buffering       (Algorithm 3: on-chip reuse)
//
// Paper: DP scheduling contributes 1.17-1.42x, SA atom generation
// 1.06-1.21x, on-chip data reuse 1.07-1.17x.
func Fig10(cfg Config) ([]Fig10Row, error) {
	hw := cfg.hw()
	batch := cfg.batch(4)
	names := cfg.workloads(models.PaperWorkloads)
	rows := make([]Fig10Row, len(names))
	errs := make([]error, len(names))
	forEach(len(names), func(i int) {
		name := names[i]
		g := mustModel(name)

		noReuse := hw
		noReuse.BufferBytes = 1
		noReuse.NaiveMapping = true

		// T0: even-split atoms in strict layer order, no reuse.
		t0, err := runLayerOrdered(g, batch, noReuse, nil, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		// T1: SA atoms, still layer-ordered, no reuse.
		sa := anneal.SA(g, hw.Engine, hw.Dataflow,
			cfg.search().anneal(hw))
		t1, err := runLayerOrdered(g, batch, noReuse, sa.Spec, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		// T2: + mapping and buffering (on-chip reuse), still layer order.
		t2, err := runLayerOrdered(g, batch, hw, sa.Spec, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		// T3: + graph-level DAG scheduling (full atomic dataflow) —
		// flexible ordering both packs Rounds better and tightens reuse
		// windows (atoms are consumed sooner, evicted less).
		t3, err := runAD(g, batch, hw, cfg.Mode, cfg.search())
		if err != nil {
			errs[i] = err
			return
		}

		rows[i] = Fig10Row{
			Workload:   name,
			BaseMS:     t0.TimeMS,
			SAGain:     speedup(t0.TimeMS, t1.TimeMS),
			ReuseGain:  speedup(t1.TimeMS, t2.TimeMS),
			DPGain:     speedup(t2.TimeMS, t3.TimeMS),
			CombinedMS: t3.TimeMS,
			TotalGain:  speedup(t0.TimeMS, t3.TimeMS),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cfg.printf("Fig 10 — per-stage performance improvements (batch=%d)\n", batch)
	for _, row := range rows {
		cfg.printf("  %-14s SA %5.2fx  DP %5.2fx  reuse %5.2fx  total %5.2fx\n",
			row.Workload, row.SAGain, row.DPGain, row.ReuseGain, row.TotalGain)
	}
	return rows, nil
}

// runLayerOrdered simulates atoms (spec nil = even split) executed in
// strict layer-wise order — the pre-graph-scheduling baseline of the
// Fig. 10 ablation.
func runLayerOrdered(g *graph.Graph, batch int, hw sim.Config, spec atom.Spec, cfg Config) (sim.Report, error) {
	if spec == nil {
		return baseline.Rammer(g, batch, hw)
	}
	d, err := atom.Build(g, batch, spec)
	if err != nil {
		return sim.Report{}, err
	}
	n := hw.Mesh.Engines()
	var rounds [][]int
	for _, lid := range g.Topo() {
		l := g.Layer(lid)
		if l.Kind == graph.OpInput || l.Kind == graph.OpConcat {
			continue
		}
		for smp := 0; smp < batch; smp++ {
			ids := d.AtomsOf(smp, lid)
			for off := 0; off < len(ids); off += n {
				end := off + n
				if end > len(ids) {
					end = len(ids)
				}
				rounds = append(rounds, ids[off:end])
			}
		}
	}
	s, err := schedule.FromRounds(d, rounds, schedule.Options{
		Engines: n, EngineCfg: hw.Engine, Dataflow: hw.Dataflow, Oracle: hw.Oracle,
	})
	if err != nil {
		return sim.Report{}, err
	}
	return sim.Run(d, s, hw)
}
