// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V). Each Fig*/Table* function runs the corresponding
// workloads through the atomic-dataflow pipeline and the baselines on the
// paper's hardware configuration, returning structured results and
// printing the same rows/series the paper reports.
//
// Absolute numbers come from this repository's simulator rather than the
// authors' testbed; the quantities to compare are the shapes — who wins,
// by what factor, where crossovers and sweet spots fall. EXPERIMENTS.md
// records paper-vs-measured for each experiment.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/cost/surrogate"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Config tunes an experiment run.
type Config struct {
	// HW is the hardware model (default sim.DefaultConfig()).
	HW *sim.Config
	// SerialSim disables the simulator's two-stage round pipeline
	// (sim.Config.Pipeline) in every simulation of the run — the
	// bit-identical but slower reference mode (-sim-pipeline=false on
	// cmd/adexp). Applied after HW, so it also overrides an explicit
	// hardware model.
	SerialSim bool
	// Workloads overrides the experiment's default model list (the
	// paper's). Fast mode for CI uses a small subset.
	Workloads []string
	// Batch overrides the experiment's batch size where meaningful.
	Batch int
	// SAIters bounds atom generation (default 400 — enough to converge
	// on every paper workload).
	SAIters int
	// Seed fixes the SA RNG.
	Seed int64
	// Chains is the annealing portfolio width threaded into every SA
	// search of the experiment (default 1 — the paper's sequential
	// Algorithm 1; higher values cut sweep wall-clock on multicore).
	Chains int
	// Mode selects the scheduling effort (default Greedy: the DP gain is
	// measured explicitly by Fig10).
	Mode schedule.Mode
	// VerifyDelta runs every SA search of the experiment with
	// incremental-vs-full cross-checking (see anneal.Options.VerifyDelta).
	// Purely a correctness harness: results are unchanged, searches cost
	// more. cmd/adexp exposes it as -verify-delta.
	VerifyDelta bool
	// Surrogate runs every SA search with the two-tier learned cost
	// oracle (see anneal.Options.Surrogate): one model per experiment,
	// trained from the experiment oracle's evaluation stream, filters
	// candidate generation. Results may differ slightly from exact mode;
	// reported cycles remain exact. cmd/adexp exposes it as -surrogate.
	Surrogate bool
	// Out receives the printed rows (nil = discard).
	Out io.Writer
	// Oracle prices atoms across the whole experiment run (default: a
	// fresh memoized oracle per experiment). cmd/adexp passes one
	// instrumented oracle for the entire invocation and prints its
	// evaluations/hits/misses per experiment.
	Oracle cost.Oracle
	// Metrics, when non-nil, collects counters and histograms across
	// every simulation of the experiment (see internal/obs). cmd/adexp
	// wires one registry for the whole invocation and can serve it live
	// (-metrics-addr) or dump a snapshot (-metrics-json).
	Metrics *obs.Registry
}

// hw assembles the hardware model with the run's cost oracle installed.
// When neither HW.Oracle nor Oracle is set, each experiment gets its own
// memoized oracle — the cache still spans every stage and workload of that
// experiment because hw() is called once per Fig*/Table* function.
func (c Config) hw() sim.Config {
	hw := sim.DefaultConfig()
	if c.HW != nil {
		hw = *c.HW
	}
	if hw.Oracle == nil {
		hw.Oracle = cost.Or(c.Oracle)
	}
	if hw.Metrics == nil {
		hw.Metrics = c.Metrics
	}
	if c.SerialSim {
		hw.Pipeline = false
	}
	return hw
}

func (c Config) workloads(def []string) []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return def
}

func (c Config) batch(def int) int {
	if c.Batch > 0 {
		return c.Batch
	}
	return def
}

func (c Config) saIters() int {
	if c.SAIters > 0 {
		return c.SAIters
	}
	return 400
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) chains() int {
	if c.Chains > 1 {
		return c.Chains
	}
	return 1
}

// searchOpts bundles the SA parameters threaded through every experiment
// pipeline — one value to pass instead of a trail of positional ints.
type searchOpts struct {
	saIters     int
	seed        int64
	chains      int
	verifyDelta bool
	surrogate   *surrogate.Model
}

func (c Config) search() searchOpts {
	so := searchOpts{
		saIters:     c.saIters(),
		seed:        c.seed(),
		chains:      c.chains(),
		verifyDelta: c.VerifyDelta,
	}
	if c.Surrogate {
		// One model per experiment: every workload's exact evaluations
		// train it, later workloads benefit from earlier filtering.
		so.surrogate = surrogate.New()
		so.surrogate.Instrument(c.Metrics)
	}
	return so
}

// anneal expands the search parameters into the full SA option set on a
// hardware model (oracle and metrics ride along from hw). With the
// surrogate enabled it also hooks the model into the oracle's
// exact-evaluation stream — idempotent, so repeated pipeline builds over
// one hardware model keep the single experiment-wide model.
func (so searchOpts) anneal(hw sim.Config) anneal.Options {
	if so.surrogate != nil {
		cost.AttachSampler(hw.Oracle, so.surrogate)
	}
	return anneal.Options{
		MaxIters:    so.saIters,
		Seed:        so.seed,
		Chains:      so.chains,
		VerifyDelta: so.verifyDelta,
		Surrogate:   so.surrogate,
		Oracle:      hw.Oracle,
		Metrics:     hw.Metrics,
	}
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return io.Discard
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.out(), format, args...)
}

// adPipeline holds the composed atomic-dataflow artifacts for one
// (workload, batch, hardware) point.
type adPipeline struct {
	graph *graph.Graph
	sa    anneal.Result
	dag   *atom.DAG
	sched *schedule.Schedule
}

// buildAD runs SA + DAG + scheduling for a workload. The hardware model's
// oracle is threaded through every stage, so candidate generation,
// scheduling and the later simulation share one cache.
func buildAD(g *graph.Graph, batch int, hw sim.Config, mode schedule.Mode, so searchOpts) (*adPipeline, error) {
	sa := anneal.SA(g, hw.Engine, hw.Dataflow, so.anneal(hw))
	d, err := atom.Build(g, batch, sa.Spec)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: hw.Mesh.Engines(), Mode: mode,
		EngineCfg: hw.Engine, Dataflow: hw.Dataflow, Oracle: hw.Oracle,
	})
	if err != nil {
		return nil, err
	}
	return &adPipeline{graph: g, sa: sa, dag: d, sched: s}, nil
}

// buildADWithLookahead is buildAD forcing DP mode at an explicit depth.
func buildADWithLookahead(g *graph.Graph, batch int, hw sim.Config, so searchOpts, lookahead int) (*adPipeline, error) {
	sa := anneal.SA(g, hw.Engine, hw.Dataflow, so.anneal(hw))
	d, err := atom.Build(g, batch, sa.Spec)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines: hw.Mesh.Engines(), Mode: schedule.DP, Lookahead: lookahead,
		EngineCfg: hw.Engine, Dataflow: hw.Dataflow, Oracle: hw.Oracle,
	})
	if err != nil {
		return nil, err
	}
	return &adPipeline{graph: g, sa: sa, dag: d, sched: s}, nil
}

// runAD is buildAD + simulation.
func runAD(g *graph.Graph, batch int, hw sim.Config, mode schedule.Mode, so searchOpts) (sim.Report, error) {
	p, err := buildAD(g, batch, hw, mode, so)
	if err != nil {
		return sim.Report{}, err
	}
	return sim.Run(p.dag, p.sched, hw)
}

// mustModel panics on unknown names (experiment model lists are static).
func mustModel(name string) *graph.Graph { return models.MustBuild(name) }

// speedup formats a/b as a ratio string.
func speedup(base, opt float64) float64 {
	if opt == 0 {
		return 0
	}
	return base / opt
}

// dataflows enumerated by the latency/throughput figures.
var dataflows = []engine.Dataflow{engine.KCPartition, engine.YXPartition}

// timeNow/timeSince isolate wall-clock use for the search-overhead rows.
func timeNow() time.Time            { return time.Now() }
func timeSince(t time.Time) float64 { return time.Since(t).Seconds() }
